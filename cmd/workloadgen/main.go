// Command workloadgen generates a query trace and writes it as CSV, for
// inspection or for replay by external tools. Each row records the arrival
// time, template, selectivity, sizing and headline budget of one query.
//
// Usage:
//
//	workloadgen [-queries N] [-interval D] [-seed S] [-arrival fixed|poisson]
//	            [-theta Z] [-phase N] [-o trace.csv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	queries := flag.Int("queries", 10_000, "queries to generate")
	interval := flag.Duration("interval", time.Second, "inter-query interval")
	seed := flag.Int64("seed", 1, "stream seed")
	arrival := flag.String("arrival", "fixed", "arrival process: fixed or poisson")
	theta := flag.Float64("theta", 1.1, "Zipf skew of template popularity")
	phase := flag.Int("phase", 20_000, "queries per workload-evolution phase")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	cat := catalog.Paper()
	var proc workload.ArrivalProcess
	switch *arrival {
	case "fixed":
		proc = workload.NewFixedArrival(*interval)
	case "poisson":
		proc = workload.NewPoissonArrival(*interval)
	default:
		fail(fmt.Errorf("unknown arrival process %q", *arrival))
	}
	gen, err := workload.NewGenerator(workload.Config{
		Catalog:     cat,
		Seed:        *seed,
		Arrival:     proc,
		Budgets:     experiments.PaperBudgetPolicy(),
		Theta:       *theta,
		PhaseLength: *phase,
	})
	if err != nil {
		fail(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	fmt.Fprintln(bw, "id,arrival_s,template,selectivity,scan_bytes,result_bytes,budget_usd,budget_tmax_s")
	for i := 0; i < *queries; i++ {
		q := gen.Next()
		scan, err := q.ScanBytes(cat)
		if err != nil {
			fail(err)
		}
		result, _ := q.ResultBytes(cat)
		fmt.Fprintf(bw, "%d,%.3f,%s,%.6g,%d,%d,%.6f,%.0f\n",
			q.ID, q.Arrival.Seconds(), q.Template.Name, q.Selectivity,
			scan, result,
			q.Budget.At(time.Millisecond).Dollars(), q.Budget.Tmax().Seconds())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "workloadgen:", err)
	os.Exit(1)
}
