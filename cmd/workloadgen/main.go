// Command workloadgen generates a query trace and either writes it as CSV
// (for inspection or replay by external tools) or replays it live against
// a running cloudcached daemon at a target QPS, measuring end-to-end
// throughput and verifying the economy's invariants from the outside.
//
// Trace mode (default):
//
//	workloadgen [-queries N] [-interval D] [-seed S] [-arrival fixed|poisson]
//	            [-theta Z] [-phase N] [-o trace.csv]
//
// Load mode (-serve):
//
//	workloadgen -serve http://localhost:8344 [-queries N] [-qps Q]
//	            [-clients C] [-tenants T] [-check] ...
//
// In load mode each generated query is POSTed to /v1/query with its
// budget, spread across T synthetic tenants so the daemon exercises all
// its shards; the client reports achieved QPS and request-latency
// percentiles, then fetches /v1/stats. With -check it exits non-zero if
// the served count does not match or any shard's account went negative.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	queries := flag.Int("queries", 10_000, "queries to generate")
	interval := flag.Duration("interval", time.Second, "inter-query interval")
	seed := flag.Int64("seed", 1, "stream seed")
	arrival := flag.String("arrival", "fixed", "arrival process: fixed or poisson")
	theta := flag.Float64("theta", 1.1, "Zipf skew of template popularity")
	phase := flag.Int("phase", 20_000, "queries per workload-evolution phase")
	out := flag.String("o", "-", "output file (- for stdout)")
	serve := flag.String("serve", "", "cloudcached base URL; empty writes a CSV trace instead")
	qps := flag.Float64("qps", 0, "target request rate against -serve (0 = unthrottled)")
	clients := flag.Int("clients", 8, "concurrent client connections in -serve mode")
	tenants := flag.Int("tenants", 16, "synthetic tenants the stream is spread across in -serve mode")
	check := flag.Bool("check", false, "verify server-side invariants after the run and exit non-zero on violation")
	flag.Parse()

	cat := catalog.Paper()
	var proc workload.ArrivalProcess
	switch *arrival {
	case "fixed":
		proc = workload.NewFixedArrival(*interval)
	case "poisson":
		proc = workload.NewPoissonArrival(*interval)
	default:
		fail(fmt.Errorf("unknown arrival process %q", *arrival))
	}
	gen, err := workload.NewGenerator(workload.Config{
		Catalog:     cat,
		Seed:        *seed,
		Arrival:     proc,
		Budgets:     experiments.PaperBudgetPolicy(),
		Theta:       *theta,
		PhaseLength: *phase,
	})
	if err != nil {
		fail(err)
	}

	if *serve != "" {
		if err := serveLoad(gen, *serve, *queries, *qps, *clients, *tenants, *check); err != nil {
			fail(err)
		}
		return
	}
	writeTrace(gen, cat, *queries, *out)
}

// writeTrace is the original CSV mode.
func writeTrace(gen *workload.Generator, cat *catalog.Catalog, queries int, out string) {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	fmt.Fprintln(bw, "id,arrival_s,template,selectivity,scan_bytes,result_bytes,budget_usd,budget_tmax_s")
	for i := 0; i < queries; i++ {
		q := gen.Next()
		scan, err := q.ScanBytes(cat)
		if err != nil {
			fail(err)
		}
		result, _ := q.ResultBytes(cat)
		fmt.Fprintf(bw, "%d,%.3f,%s,%.6g,%d,%d,%.6f,%.0f\n",
			q.ID, q.Arrival.Seconds(), q.Template.Name, q.Selectivity,
			scan, result,
			q.Budget.At(time.Millisecond).Dollars(), q.Budget.Tmax().Seconds())
	}
}

// loadResult tallies one replay run.
type loadResult struct {
	mu       sync.Mutex
	ok       int64
	declined int64
	failed   int64
	latency  *metrics.DurationStats
}

// serveLoad replays the generator stream against a cloudcached daemon.
func serveLoad(gen *workload.Generator, base string, queries int, qps float64, clients, tenants int, check bool) error {
	if clients < 1 {
		clients = 1
	}
	if tenants < 1 {
		tenants = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// The generator is single-owner: one producer goroutine feeds the
	// client pool, throttled to the target rate.
	type job struct {
		body   []byte
		tenant string
	}
	jobs := make(chan job, clients*2)
	go func() {
		defer close(jobs)
		var tick *time.Ticker
		if qps > 0 {
			if gap := time.Duration(float64(time.Second) / qps); gap > 0 {
				tick = time.NewTicker(gap)
				defer tick.Stop()
			}
			// Sub-nanosecond gaps degrade to unthrottled.
		}
		for i := 0; i < queries; i++ {
			q := gen.Next()
			req := server.QueryRequest{
				Tenant:      fmt.Sprintf("tenant-%03d", i%tenants),
				Template:    q.Template.Name,
				Selectivity: q.Selectivity,
				Budget: &server.BudgetJSON{
					Shape:    "step",
					PriceUSD: q.Budget.At(time.Millisecond).Dollars(),
					TmaxSec:  q.Budget.Tmax().Seconds(),
				},
			}
			body, err := json.Marshal(req)
			if err != nil {
				fail(err)
			}
			if tick != nil {
				<-tick.C
			}
			jobs <- job{body: body, tenant: req.Tenant}
		}
	}()

	res := &loadResult{latency: metrics.NewDurationStats(8192)}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(j.body))
				lat := time.Since(t0)
				if err != nil {
					res.mu.Lock()
					res.failed++
					res.mu.Unlock()
					continue
				}
				var qr server.Response
				decodeErr := json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				res.mu.Lock()
				if resp.StatusCode != http.StatusOK || decodeErr != nil {
					res.failed++
				} else {
					res.ok++
					if qr.Declined {
						res.declined++
					}
					res.latency.ObserveDuration(lat)
				}
				res.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	achieved := float64(res.ok+res.failed) / elapsed.Seconds()
	fmt.Printf("replayed %d queries in %.2fs: %d ok (%d declined), %d failed, %.0f req/s\n",
		queries, elapsed.Seconds(), res.ok, res.declined, res.failed, achieved)
	fmt.Printf("client latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
		res.latency.Percentile(50)*1000, res.latency.Percentile(95)*1000, res.latency.Percentile(99)*1000)

	// Pull the server's own view of the run.
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return fmt.Errorf("fetching stats: %w", err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding stats: %w", err)
	}
	busy := 0
	for _, sh := range st.PerShard {
		if sh.Queries > 0 {
			busy++
		}
	}
	fmt.Printf("server: scheme=%s shards=%d (%d busy) queries=%d cache_answered=%d invests=%d cost=$%.4f revenue=$%.4f credit=$%.4f\n",
		st.Scheme, st.Shards, busy, st.Queries, st.CacheAnswered, st.Investments,
		st.OperatingCostUSD, st.RevenueUSD, st.CreditUSD)

	if !check {
		return nil
	}
	// Invariants, observed from outside the process boundary: every
	// acknowledged query is accounted, no shard's conservative account
	// went negative, and at least two shards carried load (the stream is
	// spread across tenants).
	var violations []string
	if res.failed > 0 {
		violations = append(violations, fmt.Sprintf("%d requests failed", res.failed))
	}
	if st.Queries != res.ok {
		violations = append(violations, fmt.Sprintf("server counted %d queries, client got %d acks", st.Queries, res.ok))
	}
	for _, sh := range st.PerShard {
		if sh.CreditUSD < 0 {
			violations = append(violations, fmt.Sprintf("shard %d account negative: $%g", sh.Shard, sh.CreditUSD))
		}
		if sh.Declined > sh.Queries {
			violations = append(violations, fmt.Sprintf("shard %d declined %d of %d", sh.Shard, sh.Declined, sh.Queries))
		}
	}
	if st.Shards > 1 && busy < 2 {
		violations = append(violations, fmt.Sprintf("only %d of %d shards saw traffic", busy, st.Shards))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "workloadgen: INVARIANT VIOLATION:", v)
		}
		return fmt.Errorf("%d invariant violations", len(violations))
	}
	fmt.Println("invariants: OK")
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "workloadgen:", err)
	os.Exit(1)
}
