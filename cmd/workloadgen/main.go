// Command workloadgen generates a query trace and either writes it as CSV
// (for inspection or replay by external tools) or replays it live against
// a running cloudcached daemon at a target QPS, measuring end-to-end
// throughput and verifying the economy's invariants from the outside.
//
// Trace mode (default):
//
//	workloadgen [-queries N] [-interval D] [-seed S] [-arrival fixed|poisson]
//	            [-theta Z] [-phase N] [-o trace.csv]
//
// Load mode (-serve):
//
//	workloadgen -serve http://localhost:8344 [-queries N] [-qps Q]
//	            [-clients C] [-tenants T] [-batch B] [-check] ...
//	workloadgen -serve localhost:8345 -proto bin -batch 64
//	            -stats-url http://localhost:8344 [-check] ...
//	workloadgen -serve localhost:8345 -proto bin -pipeline 32 [-check] ...
//
// With -adversary <strategy> a hostile tenant stream (internal/adversary:
// free-rider, regret-inflater, shape-bluffer, flash-crowd, shard-storm) is
// merged into the honest stream in arrival order — in load mode the daemon
// must keep every economy invariant with the liar in the books, which is
// exactly what -check verifies from outside the process boundary.
//
// In load mode each generated query is submitted with its budget, spread
// across T synthetic tenants so the daemon exercises all its shards. With
// -proto http, batches of B ride POST /v1/query (B=1) or /v1/batch; with
// -proto bin they ride the length-prefixed binary protocol over C
// persistent connections — lockstep (v1, one batch outstanding per
// connection) by default, or multiplexed (v2) with -pipeline N, which
// keeps N tagged batches in flight per connection and lets the daemon
// complete them out of order. The client reports achieved QPS and
// request-latency percentiles, then fetches /v1/stats; pipelined runs
// skip the polling entirely and take the daemon's server-pushed stats
// stream over the same protocol instead. With -check it exits non-zero
// if the server's query-count delta over the run does not match the
// client's acks or any shard's account went negative.
//
// With -dump-trace N the client also fetches up to N of the daemon's
// sampled decision traces after the run — over GET /v1/trace on the
// HTTP front, or the multiplexed protocol's trace frame on the binary
// front — and prints them as JSON. The daemon must be sampling
// (cloudcached -trace-sample) for records to exist.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/budget"
	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/wire"
	"repro/internal/workload"
)

func main() {
	queries := flag.Int("queries", 10_000, "queries to generate")
	skip := flag.Int("skip", 0, "generate and discard this many queries first: resume a stream from query skip+1 (e.g. after a daemon restart)")
	interval := flag.Duration("interval", time.Second, "inter-query interval")
	seed := flag.Int64("seed", 1, "stream seed")
	arrival := flag.String("arrival", "fixed", "arrival process: fixed or poisson")
	theta := flag.Float64("theta", 1.1, "Zipf skew of template popularity")
	phase := flag.Int("phase", 20_000, "queries per workload-evolution phase")
	adversaryName := flag.String("adversary", "", "merge a hostile tenant stream into the replay: free-rider, regret-inflater, shape-bluffer, flash-crowd or shard-storm (empty disables)")
	adversaryHonest := flag.Bool("adversary-honest", false, "run the -adversary strategy's honest twin instead (same intent stream, truthful declarations)")
	out := flag.String("o", "-", "output file (- for stdout)")
	serve := flag.String("serve", "", "cloudcached address: an http://host:port base URL, or with -proto bin the binary listener's host:port; empty writes a CSV trace instead")
	proto := flag.String("proto", "http", "serving protocol: http (JSON) or bin (length-prefixed wire frames)")
	batch := flag.Int("batch", 1, "queries per submission batch in -serve mode")
	pipeline := flag.Int("pipeline", 0, "with -proto bin: keep this many tagged batches in flight per connection over the multiplexed v2 protocol (0 = lockstep v1)")
	qps := flag.Float64("qps", 0, "target request rate against -serve (0 = unthrottled)")
	clients := flag.Int("clients", 8, "concurrent client connections in -serve mode")
	tenants := flag.Int("tenants", 16, "synthetic tenants the stream is spread across in -serve mode")
	tenantSkew := flag.Float64("tenant-skew", 0, "Zipf skew of tenant popularity in -serve mode (0 = round-robin)")
	statsURL := flag.String("stats-url", "", "HTTP base URL for /v1/stats (defaults to -serve with -proto http; -proto bin fetches stats over the wire when unset)")
	check := flag.Bool("check", false, "verify server-side invariants after the run and exit non-zero on violation")
	tolerateErrors := flag.Bool("tolerate-errors", false, "with -check: accept per-query failures (degraded-cluster runs) — conservation invariants still apply to the queries that were acked")
	dumpTrace := flag.Int("dump-trace", 0, "after the run, fetch up to N sampled decision traces from the daemon and print them as JSON (0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	switch *logFormat {
	case "", "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	default:
		fail(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}

	cat := catalog.Paper()
	var proc workload.ArrivalProcess
	switch *arrival {
	case "fixed":
		proc = workload.NewFixedArrival(*interval)
	case "poisson":
		proc = workload.NewPoissonArrival(*interval)
	default:
		fail(fmt.Errorf("unknown arrival process %q", *arrival))
	}
	gcfg := workload.Config{
		Catalog:     cat,
		Seed:        *seed,
		Arrival:     proc,
		Budgets:     experiments.PaperBudgetPolicy(),
		Theta:       *theta,
		PhaseLength: *phase,
	}
	if *serve != "" && *tenantSkew > 0 {
		// Skewed tenant mixes come from the generator's own tenant
		// sampler (a dedicated RNG, so the query stream itself is
		// unchanged); skew 0 keeps the legacy round-robin spread below.
		gcfg.Tenants = *tenants
		gcfg.TenantTheta = *tenantSkew
	}
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		fail(err)
	}
	// The replay consumes any Source; with -adversary the hostile stream
	// rides along the honest one in arrival order. Its tenant tags
	// ("mallory", or mallory-0..3 for the storm) pass through the legacy
	// round-robin spread untouched, so the liar's ledger is visible in
	// the daemon's stats.
	var src workload.Source = gen
	if *adversaryName != "" {
		strat, err := adversary.Parse(*adversaryName)
		if err != nil {
			fail(err)
		}
		adv, err := adversary.New(adversary.Config{
			Strategy: strat,
			Catalog:  cat,
			Seed:     *seed + 1,
			Honest:   *adversaryHonest,
			MeanGap:  3 * *interval, // the adversary is ~1/4 of the merged stream
		})
		if err != nil {
			fail(err)
		}
		src = workload.NewMerge(gen, adv)
	}
	// Fast-forward the deterministic stream so a replay can resume where
	// an interrupted one stopped (the RNGs advance exactly as if the
	// skipped queries had been submitted).
	for i := 0; i < *skip; i++ {
		src.Next()
	}

	if *serve != "" {
		cfg := loadConfig{
			base:      *serve,
			proto:     *proto,
			queries:   *queries,
			skip:      *skip,
			qps:       *qps,
			clients:   *clients,
			tenants:   *tenants,
			batch:     *batch,
			pipeline:  *pipeline,
			statsURL:  *statsURL,
			check:     *check,
			tolerate:  *tolerateErrors,
			dumpTrace: *dumpTrace,
		}
		if err := serveLoad(src, cfg); err != nil {
			fail(err)
		}
		return
	}
	writeTrace(src, cat, *queries, *out)
}

// writeTrace is the original CSV mode.
func writeTrace(src workload.Source, cat *catalog.Catalog, queries int, out string) {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	fmt.Fprintln(bw, "id,arrival_s,template,selectivity,scan_bytes,result_bytes,budget_usd,budget_tmax_s")
	for i := 0; i < queries; i++ {
		q := src.Next()
		if q == nil {
			return
		}
		scan, err := q.ScanBytes(cat)
		if err != nil {
			fail(err)
		}
		result, _ := q.ResultBytes(cat)
		fmt.Fprintf(bw, "%d,%.3f,%s,%.6g,%d,%d,%.6f,%.0f\n",
			q.ID, q.Arrival.Seconds(), q.Template.Name, q.Selectivity,
			scan, result,
			q.Budget.At(time.Millisecond).Dollars(), q.Budget.Tmax().Seconds())
	}
}

// loadConfig parameterises one replay run.
type loadConfig struct {
	base      string
	proto     string
	queries   int
	skip      int
	qps       float64
	clients   int
	tenants   int
	batch     int
	pipeline  int
	statsURL  string
	check     bool
	tolerate  bool
	dumpTrace int
}

// genQuery is one generated query in protocol-agnostic form; the client
// runners convert it to JSON or wire records.
type genQuery struct {
	tenant      string
	template    string
	selectivity float64
	budget      server.BudgetJSON
}

// budgetJSON converts a budget function to its wire form, preserving the
// declared shape — an adversary's convex bluff must reach the daemon as a
// convex budget, not a step flattened through its t→0 price.
func budgetJSON(b budget.Func) server.BudgetJSON {
	switch v := b.(type) {
	case budget.Step:
		return server.BudgetJSON{Shape: "step", PriceUSD: v.Price.Dollars(), TmaxSec: v.TMax.Seconds()}
	case budget.Linear:
		return server.BudgetJSON{Shape: "linear", PriceUSD: v.Price.Dollars(), TmaxSec: v.TMax.Seconds()}
	case budget.Convex:
		return server.BudgetJSON{Shape: "convex", PriceUSD: v.Price.Dollars(), TmaxSec: v.TMax.Seconds(), K: v.K}
	case budget.Concave:
		return server.BudgetJSON{Shape: "concave", PriceUSD: v.Price.Dollars(), TmaxSec: v.TMax.Seconds(), K: v.K}
	default:
		// Unknown functional forms degrade to a step at the near-zero
		// price, which is how every budget used to ride the wire.
		return server.BudgetJSON{Shape: "step", PriceUSD: b.At(time.Millisecond).Dollars(), TmaxSec: b.Tmax().Seconds()}
	}
}

// runHTTPClient drains job batches over the JSON/HTTP front: singleton
// batches ride POST /v1/query, larger ones POST /v1/batch.
func runHTTPClient(client *http.Client, base string, jobs <-chan []genQuery, res *loadResult) {
	for batch := range jobs {
		var body []byte
		var err error
		single := len(batch) == 1
		if single {
			body, err = json.Marshal(httpRequestOf(batch[0]))
		} else {
			reqs := make([]server.QueryRequest, len(batch))
			for i, g := range batch {
				reqs[i] = httpRequestOf(g)
			}
			body, err = json.Marshal(reqs)
		}
		if err != nil {
			fail(err)
		}
		path := "/v1/batch"
		if single {
			path = "/v1/query"
		}
		t0 := time.Now()
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		lat := time.Since(t0)
		if err != nil {
			res.observe(0, 0, int64(len(batch)), 0)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			res.observe(0, 0, int64(len(batch)), 0)
			continue
		}
		var ok, declined, failed int64
		decodeOK := true
		if single {
			var qr server.Response
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				failed++
				decodeOK = false
			} else {
				ok++
				if qr.Declined {
					declined++
				}
			}
		} else {
			var items []server.BatchResponseItem
			if err := json.NewDecoder(resp.Body).Decode(&items); err != nil || len(items) != len(batch) {
				failed += int64(len(batch))
				decodeOK = false
			} else {
				for _, it := range items {
					if it.Response == nil {
						failed++
						continue
					}
					ok++
					if it.Response.Declined {
						declined++
					}
				}
			}
		}
		resp.Body.Close()
		// Undecodable replies count as failures and stay out of the
		// latency percentiles, like transport errors above.
		if !decodeOK {
			lat = 0
		}
		res.observe(ok, declined, failed, lat)
	}
}

func httpRequestOf(g genQuery) server.QueryRequest {
	sel := g.selectivity
	b := g.budget
	return server.QueryRequest{
		Tenant:      g.tenant,
		Template:    g.template,
		Selectivity: &sel,
		Budget:      &b,
	}
}

// runBinClient drains job batches over one persistent binary-protocol
// connection.
func runBinClient(addr string, jobs <-chan []genQuery, res *loadResult) {
	cl, err := wire.Dial(addr)
	if err != nil {
		// The whole connection failed: count everything this worker
		// would have sent as failed so the totals still add up.
		for batch := range jobs {
			res.observe(0, 0, int64(len(batch)), 0)
		}
		return
	}
	defer cl.Close()
	var qs []wire.Query
	for batch := range jobs {
		qs = qs[:0]
		for _, g := range batch {
			b := g.budget
			qs = append(qs, wire.Query{
				Tenant:         g.tenant,
				Template:       g.template,
				Selectivity:    g.selectivity,
				HasSelectivity: true,
				Budget:         &b,
			})
		}
		t0 := time.Now()
		replies, err := cl.Submit(qs)
		lat := time.Since(t0)
		if err != nil {
			res.observe(0, 0, int64(len(batch)), 0)
			continue
		}
		var ok, declined, failed int64
		for i := range replies {
			if replies[i].Err != "" {
				failed++
				continue
			}
			ok++
			if replies[i].Resp.Declined {
				declined++
			}
		}
		res.observe(ok, declined, failed, lat)
	}
}

// runMuxClient drains job batches over ONE multiplexed (protocol v2)
// connection, with `window` submitter goroutines keeping that many
// tagged batches in flight at once. The daemon completes them out of
// order as its shard groups finish; each submitter's latency clock only
// covers its own batch.
func runMuxClient(addr string, window int, jobs <-chan []genQuery, res *loadResult) {
	cl, err := wire.DialMux(addr)
	if err != nil {
		for batch := range jobs {
			res.observe(0, 0, int64(len(batch)), 0)
		}
		return
	}
	defer cl.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < window; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qs []wire.Query
			for batch := range jobs {
				qs = qs[:0]
				for _, g := range batch {
					b := g.budget
					qs = append(qs, wire.Query{
						Tenant:         g.tenant,
						Template:       g.template,
						Selectivity:    g.selectivity,
						HasSelectivity: true,
						Budget:         &b,
					})
				}
				t0 := time.Now()
				replies, err := cl.Submit(ctx, qs)
				lat := time.Since(t0)
				if err != nil {
					res.observe(0, 0, int64(len(batch)), 0)
					continue
				}
				var ok, declined, failed int64
				for i := range replies {
					if replies[i].Err != "" {
						failed++
						continue
					}
					ok++
					if replies[i].Resp.Declined {
						declined++
					}
				}
				res.observe(ok, declined, failed, lat)
			}
		}()
	}
	wg.Wait()
}

// loadResult tallies one replay run.
type loadResult struct {
	mu       sync.Mutex
	ok       int64
	declined int64
	failed   int64
	latency  *metrics.DurationStats
}

func (r *loadResult) observe(ok, declined, failed int64, lat time.Duration) {
	r.mu.Lock()
	r.ok += ok
	r.declined += declined
	r.failed += failed
	if lat > 0 {
		r.latency.ObserveDuration(lat)
	}
	r.mu.Unlock()
}

// serveLoad replays the source's stream against a cloudcached daemon
// over the selected protocol.
func serveLoad(src workload.Source, cfg loadConfig) error {
	if cfg.clients < 1 {
		cfg.clients = 1
	}
	if cfg.tenants < 1 {
		cfg.tenants = 1
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.proto == "bin" && cfg.batch > wire.MaxBatch {
		// The HTTP endpoint enforces its own (server-side) batch limit.
		return fmt.Errorf("-batch %d exceeds the wire protocol limit %d", cfg.batch, wire.MaxBatch)
	}
	switch cfg.proto {
	case "http", "bin":
	default:
		return fmt.Errorf("unknown protocol %q (want http or bin)", cfg.proto)
	}
	if cfg.pipeline < 0 {
		cfg.pipeline = 0
	}
	if cfg.pipeline > 0 && cfg.proto != "bin" {
		return fmt.Errorf("-pipeline needs -proto bin (the multiplexed protocol rides the binary front)")
	}
	if cfg.statsURL == "" && cfg.proto == "http" {
		cfg.statsURL = cfg.base
	}
	httpClient := &http.Client{Timeout: 30 * time.Second}

	// Stats come over HTTP when a stats URL is known; the binary front
	// fetches them over the wire protocol's stats frame instead, so a
	// bin-only replay needs no HTTP port at all.
	fetch := func(st *server.Stats) error {
		return fetchStats(httpClient, cfg.statsURL, st)
	}
	haveStats := cfg.statsURL != ""
	if !haveStats && cfg.proto == "bin" {
		haveStats = true
		if cfg.pipeline > 0 {
			// Pipelined runs never poll: each snapshot is a one-shot
			// server-pushed stats frame on a v2 connection.
			fetch = func(st *server.Stats) error {
				cl, err := wire.DialMux(cfg.base)
				if err != nil {
					return err
				}
				defer cl.Close()
				s, err := cl.Stats(context.Background())
				if err != nil {
					return err
				}
				*st = s
				return nil
			}
		} else {
			fetch = func(st *server.Stats) error {
				cl, err := wire.Dial(cfg.base)
				if err != nil {
					return err
				}
				defer cl.Close()
				s, err := cl.Stats()
				if err != nil {
					return err
				}
				*st = s
				return nil
			}
		}
	}
	if !haveStats && cfg.check {
		return fmt.Errorf("-check needs a stats source (-stats-url, or -proto bin/http)")
	}

	// The server's counters are cumulative over its lifetime; take a
	// baseline so the post-run check compares only this run's delta and
	// repeated replays against one daemon stay checkable.
	var before server.Stats
	if haveStats {
		if err := fetch(&before); err != nil {
			return fmt.Errorf("fetching baseline stats: %w", err)
		}
	}

	// The source is single-owner: one producer goroutine feeds the
	// client pool whole batches, throttled per query to the target rate.
	jobs := make(chan []genQuery, cfg.clients*2)
	go func() {
		defer close(jobs)
		var tick *time.Ticker
		if cfg.qps > 0 {
			if gap := time.Duration(float64(time.Second) / cfg.qps); gap > 0 {
				tick = time.NewTicker(gap)
				defer tick.Stop()
			}
			// Sub-nanosecond gaps degrade to unthrottled.
		}
		pending := make([]genQuery, 0, cfg.batch)
		for i := 0; i < cfg.queries; i++ {
			q := src.Next()
			if q == nil {
				break
			}
			if tick != nil {
				<-tick.C
			}
			// Skewed runs carry the generator's own tenant tag; the
			// legacy round-robin spread covers untagged streams. The
			// round-robin index counts from the stream's true position so
			// a resumed replay (-skip) tags queries exactly as the
			// uninterrupted one would.
			tenant := q.Tenant
			if tenant == "" {
				tenant = fmt.Sprintf("tenant-%03d", (cfg.skip+i)%cfg.tenants)
			}
			pending = append(pending, genQuery{
				tenant:      tenant,
				template:    q.Template.Name,
				selectivity: q.Selectivity,
				budget:      budgetJSON(q.Budget),
			})
			if len(pending) == cfg.batch {
				jobs <- pending
				pending = make([]genQuery, 0, cfg.batch)
			}
		}
		if len(pending) > 0 {
			jobs <- pending
		}
	}()

	// Pipelined runs also hold a live stats stream open for the duration:
	// the daemon pushes a snapshot every second on its own initiative,
	// replacing the poll loop an external dashboard would otherwise run.
	var statsPushes atomic.Int64
	var statsStream *wire.MuxClient
	if cfg.pipeline > 0 {
		if cl, err := wire.DialMux(cfg.base); err == nil {
			if sub, err := cl.SubscribeStats(1.0); err == nil {
				statsStream = cl
				go func() {
					for range sub.C {
						statsPushes.Add(1)
					}
				}()
			} else {
				cl.Close()
			}
		}
	}

	res := &loadResult{latency: metrics.NewDurationStats(8192)}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch cfg.proto {
			case "http":
				runHTTPClient(httpClient, cfg.base, jobs, res)
			case "bin":
				if cfg.pipeline > 0 {
					runMuxClient(cfg.base, cfg.pipeline, jobs, res)
				} else {
					runBinClient(cfg.base, jobs, res)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	protoName := cfg.proto
	if cfg.pipeline > 0 {
		protoName = fmt.Sprintf("bin-pipelined/%d", cfg.pipeline)
	}
	achieved := float64(res.ok+res.failed) / elapsed.Seconds()
	fmt.Printf("replayed %d queries in %.2fs over %s (batch=%d): %d ok (%d declined), %d failed, %.0f req/s\n",
		cfg.queries, elapsed.Seconds(), protoName, cfg.batch, res.ok, res.declined, res.failed, achieved)
	if statsStream != nil {
		_ = statsStream.Close()
		fmt.Printf("stats stream: %d server-pushed snapshots during the run\n", statsPushes.Load())
	}
	fmt.Printf("request latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
		res.latency.Percentile(50)*1000, res.latency.Percentile(95)*1000, res.latency.Percentile(99)*1000)

	if !haveStats {
		return nil
	}
	// Pull the server's own view of the run.
	var st server.Stats
	if err := fetch(&st); err != nil {
		return fmt.Errorf("fetching stats: %w", err)
	}
	busy := 0
	for _, sh := range st.PerShard {
		if sh.Queries > 0 {
			busy++
		}
	}
	fmt.Printf("server: scheme=%s provider=%s shards=%d (%d busy) queries=%d errors=%d cache_answered=%d invests=%d cost=$%.4f revenue=$%.4f credit=$%.4f\n",
		st.Scheme, st.Provider, st.Shards, busy, st.Queries, st.Errors, st.CacheAnswered, st.Investments,
		st.OperatingCostUSD, st.RevenueUSD, st.CreditUSD)
	if n := len(st.Tenants); n > 0 {
		hot := st.Tenants[0]
		for _, ts := range st.Tenants {
			if ts.Queries > hot.Queries {
				hot = ts
			}
		}
		fmt.Printf("server: %d tenant ledgers; hottest %s: %d queries, spend=$%.4f credit=$%.4f structures=%d\n",
			n, hot.Tenant, hot.Queries, hot.SpendUSD, hot.CreditUSD, hot.StructuresCharged)
	}

	if cfg.dumpTrace > 0 {
		if err := dumpTraces(httpClient, cfg); err != nil {
			return fmt.Errorf("dumping traces: %w", err)
		}
	}

	if !cfg.check {
		return nil
	}
	// Invariants, observed from outside the process boundary: every
	// acknowledged query is accounted (as a delta over the pre-run
	// baseline), no shard's conservative account went negative, and at
	// least two shards carried load (the stream is spread across
	// tenants).
	var violations []string
	if res.failed > 0 && !cfg.tolerate {
		violations = append(violations, fmt.Sprintf("%d requests failed", res.failed))
	}
	if delta := st.Queries - before.Queries; delta != res.ok && !cfg.tolerate {
		// A tolerated run can't reconcile the counter: a merged cluster
		// view omits an unreachable backend's counters entirely.
		violations = append(violations, fmt.Sprintf("server counted %d new queries, client got %d acks", delta, res.ok))
	}
	for _, sh := range st.PerShard {
		if sh.CreditUSD < 0 {
			violations = append(violations, fmt.Sprintf("shard %d account negative: $%g", sh.Shard, sh.CreditUSD))
		}
		if sh.Declined > sh.Queries {
			violations = append(violations, fmt.Sprintf("shard %d declined %d of %d", sh.Shard, sh.Declined, sh.Queries))
		}
	}
	// With -tolerate-errors a degraded cluster is expected: a dead
	// backend's shards are holes in the merged view, not idle shards.
	if st.Shards > 1 && busy < 2 && !cfg.tolerate {
		violations = append(violations, fmt.Sprintf("only %d of %d shards saw traffic", busy, st.Shards))
	}
	// Every query the economy handled carries a tenant, so the merged
	// tenant ledgers must account the server's whole query counter.
	if len(st.Tenants) > 0 {
		var tenantQ int64
		for _, ts := range st.Tenants {
			tenantQ += ts.Queries
		}
		if tenantQ != st.Queries {
			violations = append(violations, fmt.Sprintf("tenant ledgers account %d queries, server counted %d", tenantQ, st.Queries))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			slog.Error("workloadgen: invariant violation", "violation", v)
		}
		return fmt.Errorf("%d invariant violations", len(violations))
	}
	fmt.Println("invariants: OK")
	return nil
}

// dumpTraces fetches the daemon's sampled decision traces over whichever
// front the run used and prints them as JSON on stdout.
func dumpTraces(client *http.Client, cfg loadConfig) error {
	var view server.TraceView
	if cfg.proto == "bin" {
		// The trace frame rides the multiplexed protocol; a lockstep run
		// opens a v2 connection just for the dump (same listener).
		cl, err := wire.DialMux(cfg.base)
		if err != nil {
			return err
		}
		defer cl.Close()
		if view, err = cl.Trace(context.Background(), "", "", cfg.dumpTrace); err != nil {
			return err
		}
	} else {
		resp, err := client.Get(strings.TrimSuffix(cfg.statsURL, "/") + fmt.Sprintf("/v1/trace?n=%d", cfg.dumpTrace))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/trace: %s", resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return err
		}
	}
	fmt.Printf("decision traces: sample_every=%d, %d records\n", view.SampleEvery, len(view.Records))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(view.Records)
}

func fetchStats(client *http.Client, base string, st *server.Stats) error {
	resp, err := client.Get(strings.TrimSuffix(base, "/") + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(st)
}

func fail(err error) {
	slog.Error("workloadgen: fatal", "err", err)
	os.Exit(1)
}
