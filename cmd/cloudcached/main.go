// Command cloudcached is the online cloud-cache daemon: it serves the
// paper's self-tuned cache economy over HTTP, admitting concurrent live
// queries against N independent economy shards instead of replaying a
// synthetic stream through the offline simulator.
//
// API:
//
//	POST /v1/query      {"tenant","template","selectivity","budget":{"shape","price_usd","tmax_s"}}
//	POST /v1/batch      [QueryRequest, ...] — batched admission
//	GET  /v1/stats      live aggregate + per-shard economy metrics (?pretty=1 indents)
//	GET  /v1/structures resident structures (columns, indexes, CPU nodes)
//	GET  /healthz       liveness + headline counters
//
// With -listen-bin the daemon also serves the length-prefixed binary
// protocol (internal/server/wire) on a second port: persistent
// connections carrying query batches with no HTTP or JSON overhead —
// the high-throughput front.
//
// SIGINT/SIGTERM drain gracefully: in-flight queries are answered, tail
// rent is settled, and a final stats snapshot is printed to stdout.
//
// With -state-dir the economy state is durable: the drain writes a
// versioned, CRC-checked snapshot (accounts, regret ledgers, resident
// structures, clocks, counters) to <state-dir>/econ.snap, and the next
// boot restores it — resuming the same credit, tenants and cache instead
// of cold-starting. -checkpoint-interval adds periodic checkpoints so a
// crash loses at most one interval; a wire-protocol snapshot frame (or
// wire.Client.Snapshot) checkpoints on demand. A truncated or corrupt
// snapshot fails restore cleanly: the daemon logs it and boots fresh.
//
// Observability:
//
//	GET /v1/trace       sampled per-query decision traces (?tenant= ?template= ?n=)
//	GET /v1/events      economy event journal: invests, evictions, recoveries
//	GET /metrics        Prometheus text exposition (economy counters, mailbox
//	                    gauges, stage-latency histograms, runtime/GC gauges)
//
// -trace-sample N samples one query in N through the decision tracer
// (0 disables sampling; the gate is a single atomic load, so the decide
// loop pays ~nothing while off). -pprof mounts net/http/pprof under
// /debug/pprof/ on the HTTP mux.
//
// Usage:
//
//	cloudcached [-addr :8344] [-listen-bin :8345] [-shards 4]
//	            [-scheme econ-cheap] [-provider altruistic|selfish]
//	            [-sf 0] [-speedup 1] [-tick 1s] [-seed 1] [-mailbox 256]
//	            [-failure-floor USD] [-maint-failure-factor F]
//	            [-no-microbatch] [-state-dir DIR] [-checkpoint-interval D]
//	            [-trace-sample N] [-trace-ring N] [-journal-ring N]
//	            [-pprof] [-log-format text|json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/economy"
	"repro/internal/experiments"
	"repro/internal/money"
	"repro/internal/persist"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/wire"
)

func main() {
	addr := flag.String("addr", ":8344", "HTTP listen address")
	listenBin := flag.String("listen-bin", "", "binary-protocol listen address (length-prefixed wire frames); empty disables")
	shards := flag.Int("shards", 4, "independent economy shards")
	schemeName := flag.String("scheme", "econ-cheap", "caching scheme: bypass, econ-col, econ-cheap or econ-fast")
	sf := flag.Float64("sf", 0, "TPC-H scale factor for the back-end catalog (0 = the paper's 2.5 TB catalog)")
	speedup := flag.Float64("speedup", 1, "economy-time speedup: 1 serves in real time, 60 makes a wall second count as a minute of rent")
	tick := flag.Duration("tick", time.Second, "housekeeping cadence (rent accrual + build completion through idle time)")
	seed := flag.Int64("seed", 1, "per-shard RNG seed (selectivity draws for queries that omit one)")
	mailbox := flag.Int("mailbox", 256, "per-shard admission queue depth")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on shutdown")
	providerName := flag.String("provider", "altruistic", "economy accounting: altruistic (pooled account per shard) or selfish (per-tenant ledgers)")
	failureFloor := flag.Float64("failure-floor", 0, "minimum arrears (USD) before a used structure can fail; 0 keeps the default calibration")
	maintFactor := flag.Float64("maint-failure-factor", 0, "rent-vs-value ratio that evicts a structure (footnote 3); 0 keeps the default calibration")
	noMicroBatch := flag.Bool("no-microbatch", false, "disable the shard loops' mailbox group commit")
	stateDir := flag.String("state-dir", "", "directory for durable economy state: restore <dir>/econ.snap on boot, write it on drain/checkpoint; empty disables persistence")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "periodic state checkpoint cadence (0 disables; requires -state-dir)")
	traceSample := flag.Int64("trace-sample", 0, "decision-trace sampling period: 0 off, 1 every query, N one in N (runtime cost is one atomic load per query while off)")
	traceRing := flag.Int("trace-ring", 0, "per-shard decision-trace ring capacity (0 = default; negative disables the tracer entirely)")
	journalRing := flag.Int("journal-ring", 0, "per-shard, per-type economy event journal capacity (0 = default)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the HTTP mux")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	if err := setupLogging(*logFormat); err != nil {
		fail(err)
	}

	// The HTTP front comes up before the engine exists, behind an
	// atomically-swapped handler: while a (possibly large) snapshot
	// restore runs, /healthz answers 200 (the process is alive) and
	// everything else — /readyz included — answers 503 "restoring", so
	// a router's health loop sees a booting backend, not a dead one.
	var handlerRef atomic.Value
	handlerRef.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, `{"status":"ok","state":"restoring"}`+"\n")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"state":"restoring","ready":false}`+"\n")
	})))
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerRef.Load().(http.Handler).ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	provider, err := economy.ParseProvider(*providerName)
	if err != nil {
		fail(err)
	}
	cat := catalog.Paper()
	if *sf > 0 {
		cat = catalog.TPCH(*sf)
	}
	params := scheme.DefaultParams(cat)
	params.Provider = provider
	if *failureFloor > 0 {
		params.FailureFloor = money.FromDollars(*failureFloor)
	}
	if *maintFactor > 0 {
		params.MaintFailureFactor = *maintFactor
	}
	if *checkpointInterval > 0 && *stateDir == "" {
		fail(errors.New("-checkpoint-interval requires -state-dir"))
	}

	// Durable state: restore a previous snapshot when one exists. A
	// truncated or corrupt snapshot (CRC/decode failure) must not load
	// partial state — log it and boot fresh. A snapshot that decodes but
	// contradicts the flags (scheme, shards, provider, catalog) fails
	// startup loudly below instead: that is an operator error, and
	// silently discarding the economy's money would be worse.
	var snapshotPath string
	var restored *persist.Snapshot
	clock := server.NewWallClock(*speedup)
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fail(err)
		}
		snapshotPath = filepath.Join(*stateDir, "econ.snap")
		if data, err := os.ReadFile(snapshotPath); err == nil {
			t0 := time.Now()
			snap, err := persist.Decode(data)
			if err != nil {
				slog.Warn("cloudcached: snapshot unusable, starting fresh", "path", snapshotPath, "err", err)
			} else {
				restored = snap
				clock = server.NewWallClockAt(snap.Clock, *speedup)
				var q int64
				for _, sh := range snap.Shards {
					q += sh.Queries
				}
				slog.Info("cloudcached: restored snapshot",
					"path", snapshotPath, "shards", len(snap.Shards), "queries", q,
					"clock_s", snap.Clock.Seconds(), "bytes", len(data),
					"elapsed", time.Since(t0).Round(time.Millisecond))
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fail(err)
		}
	}

	srv, err := server.New(server.Config{
		Shards:            *shards,
		Scheme:            *schemeName,
		Params:            params,
		Clock:             clock,
		Budgets:           experiments.PaperBudgetPolicy(),
		TickEvery:         *tick,
		Seed:              *seed,
		MailboxDepth:      *mailbox,
		DisableMicroBatch: *noMicroBatch,
		SnapshotPath:      snapshotPath,
		CheckpointEvery:   *checkpointInterval,
		Restore:           restored,
		TraceRing:         *traceRing,
		TraceSampleEvery:  *traceSample,
		JournalRing:       *journalRing,
	})
	if err != nil {
		fail(err)
	}

	handler := srv.Handler()
	if *pprofOn {
		// Opt-in profiling on the same mux the API serves: the daemon's
		// admin surface, guarded by the flag rather than a separate port.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	// Engine built: swap the boot stub out for the real API. (Wrapped
	// in HandlerFunc so both stores share one concrete type —
	// atomic.Value rejects mixed types.)
	handlerRef.Store(http.Handler(http.HandlerFunc(handler.ServeHTTP)))
	slog.Info("cloudcached: serving",
		"scheme", *schemeName, "addr", *addr, "shards", srv.ShardCount(),
		"speedup", *speedup, "trace_sample", *traceSample, "pprof", *pprofOn)

	var binLn net.Listener
	if *listenBin != "" {
		binLn, err = net.Listen("tcp", *listenBin)
		if err != nil {
			fail(err)
		}
		go func() {
			slog.Info("cloudcached: binary protocol listening", "addr", *listenBin)
			if err := wire.Serve(binLn, srv); err != nil {
				errCh <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fail(err)
	case s := <-sig:
		slog.Info("cloudcached: draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admitting HTTP first (bounded by -drain-timeout), then drain
	// the shards. The engine drain always terminates — decisions are
	// CPU-bound and loops exit once their mailboxes empty — so waiting
	// unbounded here guarantees the final snapshot below is post-drain,
	// with every accepted query answered and tail rent settled.
	if err := httpSrv.Shutdown(ctx); err != nil {
		slog.Error("cloudcached: http shutdown", "err", err)
	}
	if binLn != nil {
		// Stop accepting binary connections; established connections see
		// ErrServerClosed on their next frame once the drain flips, and
		// batches accepted before that are still answered.
		_ = binLn.Close()
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		slog.Error("cloudcached: drain", "err", err)
	}
	if snapshotPath != "" {
		slog.Info("cloudcached: state persisted", "path", snapshotPath)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(srv.Stats()); err != nil {
		fail(err)
	}
}

// setupLogging installs the process-wide slog handler on stderr in the
// requested format.
func setupLogging(format string) error {
	switch format {
	case "", "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	default:
		return errors.New("unknown -log-format " + format + " (want text or json)")
	}
	return nil
}

func fail(err error) {
	slog.Error("cloudcached: fatal", "err", err)
	os.Exit(1)
}
