// Command figures regenerates the evaluation of "An economic model for
// self-tuned cloud caching" (ICDE 2009): Figure 4 (operating cost of four
// caching schemes at 1/10/30/60 s inter-query intervals), Figure 5 (average
// response time at the same points) and the ablation tables of DESIGN.md.
//
// Usage:
//
//	figures [-fig grid|ablation-a|ablation-budget|ablation-net|ablation-cachesize|ablation-amort|provider|adversary|all]
//	        [-queries N] [-seed S] [-interval D] [-tenants N] [-tenant-skew Z]
//
// The default 150000-query stream regenerates the full grid in about half a
// minute; the paper's million-query evolution sharpens the same shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "grid", "which figure to regenerate: grid (Fig. 4+5), ablation-a, ablation-budget, ablation-net, ablation-cachesize, ablation-amort, provider (altruistic vs selfish), adversary (hostile strategies vs honest twins), all")
	queries := flag.Int("queries", 150_000, "queries per simulation run")
	seed := flag.Int64("seed", 42, "workload seed")
	interval := flag.Duration("interval", time.Second, "inter-query interval for ablations")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = all cores); results are identical for any value")
	tenants := flag.Int("tenants", 2, "synthetic tenants for -fig provider")
	tenantSkew := flag.Float64("tenant-skew", 1.1, "Zipf skew of tenant popularity for -fig provider")
	verbose := flag.Bool("v", false, "print per-cell progress")
	flag.Parse()

	s := experiments.Settings{Queries: *queries, Seed: *seed, Workers: *workers}
	if *verbose {
		s.OnProgress = func(line string) { fmt.Println(line) }
	}

	run := func(name string) error {
		switch name {
		case "grid":
			cells, err := experiments.RunGrid(s)
			if err != nil {
				return err
			}
			fmt.Println("Figure 4 — operating cost of the caching schemes")
			fmt.Println(experiments.Fig4Table(cells))
			fmt.Println("Figure 5 — average response time of the caching schemes")
			fmt.Println(experiments.Fig5Table(cells))
		case "ablation-a":
			t, _, err := experiments.AblationRegretFraction(s, nil, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Ablation A — regret fraction a (Eq. 3), econ-cheap")
			fmt.Println(t)
		case "ablation-budget":
			t, _, err := experiments.AblationBudgetShape(s, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Ablation B — user budget shapes (Fig. 1), econ-cheap")
			fmt.Println(t)
		case "ablation-net":
			t, _, err := experiments.AblationNetworkThroughput(s, nil, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Ablation C — WAN throughput, econ-cheap")
			fmt.Println(t)
		case "ablation-cachesize":
			t, _, err := experiments.AblationCacheFraction(s, nil, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Ablation D — bypass cache size (30% ideal per [14])")
			fmt.Println(t)
		case "ablation-amort":
			t, _, err := experiments.AblationAmortization(s, nil, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Ablation E — amortization horizon n (Eq. 7)")
			fmt.Println(t)
		case "provider":
			s2 := s
			s2.Tenants = *tenants
			s2.TenantTheta = *tenantSkew
			t, _, err := experiments.AblationProvider(s2, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Provider — altruistic (pooled) vs selfish (per-tenant ledgers), econ-cheap")
			fmt.Println(t)
		case "adversary":
			t, err := experiments.AdversaryComparison(s, nil, *interval)
			if err != nil {
				return err
			}
			fmt.Println("Adversary — each hostile strategy vs its honest twin, both providers, econ-cheap")
			fmt.Println("(lying gain = honest-twin spend − lying spend; positive means the lie kept money)")
			fmt.Println(t)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	targets := []string{*fig}
	if *fig == "all" {
		targets = []string{"grid", "ablation-a", "ablation-budget", "ablation-net", "ablation-cachesize", "ablation-amort", "provider", "adversary"}
	}
	for _, name := range targets {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
}
