// Command cloudrouter is the stateless cluster front for cloudcached:
// it speaks the same binary wire protocol clients already use, owns the
// shard → backend map, and fans each batch out to the backends that run
// the economy. Routing is by the same tenant/template hash the backends
// shard by, so a query decided through the router is decided by exactly
// the shard that would have decided it in a single process.
//
// The router holds no durable state. At boot it asks every backend
// which shards it owns and converges on one owner per shard (freezing
// duplicate claims — the fresh-cluster case); a router restart re-learns
// the same map from the backends.
//
// Live shard migration: POST /admin/migrate?shard=K&to=N checkpoints
// the shard on its current owner, transfers the packet, installs it on
// backend N and cuts traffic over. Queries for the shard that arrive
// during the move are parked and replayed after cutover — the reply
// stream is byte-identical to one with no migration at all. The
// response reports the blackout window in milliseconds.
//
// API (HTTP):
//
//	GET  /healthz        process liveness
//	GET  /readyz         cluster readiness (non-200 while any backend is down)
//	GET  /metrics        Prometheus text: routed queries, reroutes, migrations,
//	                     blackout windows, per-backend health and reconnects
//	GET  /v1/stats       merged cluster stats, same shape as a backend's
//	POST /admin/migrate  live shard migration (?shard=K&to=N)
//
// Usage:
//
//	cloudrouter -listen-bin :8445 [-addr :8444]
//	            -backends 127.0.0.1:8345,127.0.0.1:8355
//	            [-backend-http http://127.0.0.1:8344,http://127.0.0.1:8354]
//	            [-health-interval 500ms] [-bootstrap-timeout 10s]
//	            [-log-format text|json]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server/wire"
)

func main() {
	addr := flag.String("addr", ":8444", "HTTP listen address (health, metrics, stats, migration admin)")
	listenBin := flag.String("listen-bin", ":8445", "binary-protocol listen address clients connect to")
	backends := flag.String("backends", "", "comma-separated backend wire addresses (required)")
	backendHTTP := flag.String("backend-http", "", "comma-separated backend HTTP base URLs, parallel to -backends (enables /readyz health probing)")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "backend health probe cadence (negative disables)")
	bootstrapTimeout := flag.Duration("bootstrap-timeout", 10*time.Second, "how long to retry unreachable backends at boot")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	if err := setupLogging(*logFormat); err != nil {
		fail(err)
	}
	if *backends == "" {
		fail(errors.New("-backends is required"))
	}
	addrs := strings.Split(*backends, ",")
	var httpURLs []string
	if *backendHTTP != "" {
		httpURLs = strings.Split(*backendHTTP, ",")
		if len(httpURLs) != len(addrs) {
			fail(errors.New("-backend-http must list one URL per -backends entry"))
		}
	}
	cfgs := make([]router.BackendConfig, len(addrs))
	for i, a := range addrs {
		cfgs[i] = router.BackendConfig{Addr: strings.TrimSpace(a)}
		if httpURLs != nil {
			cfgs[i].HTTPURL = strings.TrimRight(strings.TrimSpace(httpURLs[i]), "/")
		}
	}

	r, err := router.New(router.Config{
		Backends:         cfgs,
		HealthInterval:   *healthInterval,
		BootstrapTimeout: *bootstrapTimeout,
	})
	if err != nil {
		fail(err)
	}

	errCh := make(chan error, 2)
	httpSrv := &http.Server{Addr: *addr, Handler: r.HTTPHandler()}
	go func() {
		slog.Info("cloudrouter: http serving", "addr", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	binLn, err := net.Listen("tcp", *listenBin)
	if err != nil {
		fail(err)
	}
	go func() {
		slog.Info("cloudrouter: binary protocol listening",
			"addr", *listenBin, "backends", len(cfgs), "shards", r.Shards())
		if err := wire.ServeEngine(binLn, r); err != nil {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fail(err)
	case s := <-sig:
		slog.Info("cloudrouter: shutting down", "signal", s.String())
	}

	// The router holds no state to drain: stop accepting, close backend
	// pools, done. In-flight batches already handed to backends answer
	// on their own connections' timelines.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		slog.Error("cloudrouter: http shutdown", "err", err)
	}
	_ = binLn.Close()
	if err := r.Close(); err != nil {
		slog.Error("cloudrouter: close", "err", err)
	}
}

// setupLogging installs the process-wide slog handler on stderr in the
// requested format.
func setupLogging(format string) error {
	switch format {
	case "", "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	default:
		return errors.New("unknown -log-format " + format + " (want text or json)")
	}
	return nil
}

func fail(err error) {
	slog.Error("cloudrouter: fatal", "err", err)
	os.Exit(1)
}
