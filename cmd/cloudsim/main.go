// Command cloudsim runs one caching scheme against a synthetic scientific
// workload and prints the full accounting: operating cost by resource,
// response-time distribution, cache behaviour and the economy's account.
//
// Usage:
//
//	cloudsim [-scheme bypass|econ-col|econ-cheap|econ-fast] [-queries N]
//	         [-interval D] [-seed S] [-arrival fixed|poisson] [-dbsize bytes]
//	         [-provider altruistic|selfish] [-tenants N] [-tenant-skew Z]
//	         [-failure-floor USD] [-maint-failure-factor F]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/economy"
	"repro/internal/experiments"
	"repro/internal/money"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	schemeName := flag.String("scheme", "econ-cheap", "caching scheme: bypass, econ-col, econ-cheap, econ-fast")
	queries := flag.Int("queries", 100_000, "queries to simulate")
	interval := flag.Duration("interval", time.Second, "inter-query interval")
	seed := flag.Int64("seed", 1, "workload seed")
	arrival := flag.String("arrival", "fixed", "arrival process: fixed or poisson")
	dbBytes := flag.Int64("dbsize", catalog.PaperDatabaseBytes, "back-end database size in bytes")
	batch := flag.Int("batch", 0, "queries per generation batch handed to the settlement stage (0 = default)")
	providerName := flag.String("provider", "altruistic", "economy accounting: altruistic (pooled account) or selfish (per-tenant ledgers)")
	tenants := flag.Int("tenants", 0, "synthetic tenants the stream is spread across (0 = untagged)")
	tenantSkew := flag.Float64("tenant-skew", 1.1, "Zipf skew of tenant popularity")
	failureFloor := flag.Float64("failure-floor", 0, "minimum arrears (USD) before a used structure can fail; 0 keeps the default calibration")
	maintFactor := flag.Float64("maint-failure-factor", 0, "rent-vs-value ratio that evicts a structure (footnote 3); 0 keeps the default calibration")
	flag.Parse()

	provider, err := economy.ParseProvider(*providerName)
	if err != nil {
		fail(err)
	}
	cat := catalog.TPCH(catalog.ScaleFactorForBytes(*dbBytes))
	params := scheme.DefaultParams(cat)
	params.Provider = provider
	if *failureFloor > 0 {
		params.FailureFloor = money.FromDollars(*failureFloor)
	}
	if *maintFactor > 0 {
		params.MaintFailureFactor = *maintFactor
	}
	sch, err := experiments.NewScheme(*schemeName, params)
	if err != nil {
		fail(err)
	}

	var proc workload.ArrivalProcess
	switch *arrival {
	case "fixed":
		proc = workload.NewFixedArrival(*interval)
	case "poisson":
		proc = workload.NewPoissonArrival(*interval)
	default:
		fail(fmt.Errorf("unknown arrival process %q", *arrival))
	}

	gen, err := workload.NewGenerator(workload.Config{
		Catalog:     cat,
		Seed:        *seed,
		Arrival:     proc,
		Budgets:     experiments.PaperBudgetPolicy(),
		Tenants:     *tenants,
		TenantTheta: *tenantSkew,
	})
	if err != nil {
		fail(err)
	}

	start := time.Now()
	rep, err := sim.Run(sim.Config{
		Scheme:    sch,
		Generator: gen,
		Queries:   *queries,
		BatchSize: *batch,
		OnProgress: func(done int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d queries", done, *queries)
		},
		ProgressEvery: 25_000,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr)

	wall := time.Since(start)
	fmt.Printf("scheme            %s\n", rep.SchemeName)
	fmt.Printf("queries           %d (declined %d)\n", rep.Queries, rep.Declined)
	fmt.Printf("simulated span    %s\n", rep.Elapsed.Round(time.Second))
	fmt.Printf("wall time         %s (%.0f queries/s)\n",
		wall.Round(time.Millisecond), float64(rep.Queries)/wall.Seconds())
	fmt.Println()
	fmt.Printf("operating cost    %s\n", rep.OperatingCost)
	fmt.Printf("  execution       %s\n", rep.ExecCost)
	fmt.Printf("  builds          %s\n", rep.BuildCost)
	fmt.Printf("  storage rent    %s\n", rep.StorageCost)
	fmt.Printf("  node uptime     %s\n", rep.NodeCost)
	fmt.Printf("revenue           %s (profit %s)\n", rep.Revenue, rep.Profit)
	fmt.Println()
	fmt.Printf("mean response     %.2fs\n", rep.Response.Mean())
	fmt.Printf("p50 / p95 / p99   %.2fs / %.2fs / %.2fs\n",
		rep.Response.Percentile(50), rep.Response.Percentile(95), rep.Response.Percentile(99))
	fmt.Printf("cache answered    %d (%.1f%%)\n", rep.CacheAnswered,
		100*float64(rep.CacheAnswered)/float64(rep.Queries))
	fmt.Printf("investments       %d (failures %d)\n", rep.Investments, rep.Failures)
	fmt.Printf("resident at end   %.1f GB\n", float64(rep.FinalResidentBytes)/(1<<30))

	if len(rep.Tenants) > 0 {
		fmt.Println()
		fmt.Printf("tenant economies  (%s provider)\n", provider)
		fmt.Printf("%-12s %8s %8s %6s %10s %10s %10s %6s\n",
			"tenant", "queries", "hits", "decl", "spend", "credit", "invested", "built")
		for _, tr := range rep.Tenants {
			fmt.Printf("%-12s %8d %8d %6d %10.4f %10.4f %10.4f %6d\n",
				tr.Tenant, tr.Queries, tr.CacheAnswered, tr.Declined,
				tr.Spend.Dollars(), tr.Credit.Dollars(), tr.Invested.Dollars(),
				tr.StructuresCharged)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cloudsim:", err)
	os.Exit(1)
}
