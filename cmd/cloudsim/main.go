// Command cloudsim runs one caching scheme against a synthetic scientific
// workload and prints the full accounting: operating cost by resource,
// response-time distribution, cache behaviour and the economy's account.
//
// Usage:
//
//	cloudsim [-scheme bypass|econ-col|econ-cheap|econ-fast] [-queries N]
//	         [-interval D] [-seed S] [-arrival fixed|poisson] [-dbsize bytes]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	schemeName := flag.String("scheme", "econ-cheap", "caching scheme: bypass, econ-col, econ-cheap, econ-fast")
	queries := flag.Int("queries", 100_000, "queries to simulate")
	interval := flag.Duration("interval", time.Second, "inter-query interval")
	seed := flag.Int64("seed", 1, "workload seed")
	arrival := flag.String("arrival", "fixed", "arrival process: fixed or poisson")
	dbBytes := flag.Int64("dbsize", catalog.PaperDatabaseBytes, "back-end database size in bytes")
	batch := flag.Int("batch", 0, "queries per generation batch handed to the settlement stage (0 = default)")
	flag.Parse()

	cat := catalog.TPCH(catalog.ScaleFactorForBytes(*dbBytes))
	sch, err := experiments.NewScheme(*schemeName, scheme.DefaultParams(cat))
	if err != nil {
		fail(err)
	}

	var proc workload.ArrivalProcess
	switch *arrival {
	case "fixed":
		proc = workload.NewFixedArrival(*interval)
	case "poisson":
		proc = workload.NewPoissonArrival(*interval)
	default:
		fail(fmt.Errorf("unknown arrival process %q", *arrival))
	}

	gen, err := workload.NewGenerator(workload.Config{
		Catalog: cat,
		Seed:    *seed,
		Arrival: proc,
		Budgets: experiments.PaperBudgetPolicy(),
	})
	if err != nil {
		fail(err)
	}

	start := time.Now()
	rep, err := sim.Run(sim.Config{
		Scheme:    sch,
		Generator: gen,
		Queries:   *queries,
		BatchSize: *batch,
		OnProgress: func(done int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d queries", done, *queries)
		},
		ProgressEvery: 25_000,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr)

	wall := time.Since(start)
	fmt.Printf("scheme            %s\n", rep.SchemeName)
	fmt.Printf("queries           %d (declined %d)\n", rep.Queries, rep.Declined)
	fmt.Printf("simulated span    %s\n", rep.Elapsed.Round(time.Second))
	fmt.Printf("wall time         %s (%.0f queries/s)\n",
		wall.Round(time.Millisecond), float64(rep.Queries)/wall.Seconds())
	fmt.Println()
	fmt.Printf("operating cost    %s\n", rep.OperatingCost)
	fmt.Printf("  execution       %s\n", rep.ExecCost)
	fmt.Printf("  builds          %s\n", rep.BuildCost)
	fmt.Printf("  storage rent    %s\n", rep.StorageCost)
	fmt.Printf("  node uptime     %s\n", rep.NodeCost)
	fmt.Printf("revenue           %s (profit %s)\n", rep.Revenue, rep.Profit)
	fmt.Println()
	fmt.Printf("mean response     %.2fs\n", rep.Response.Mean())
	fmt.Printf("p50 / p95 / p99   %.2fs / %.2fs / %.2fs\n",
		rep.Response.Percentile(50), rep.Response.Percentile(95), rep.Response.Percentile(99))
	fmt.Printf("cache answered    %d (%.1f%%)\n", rep.CacheAnswered,
		100*float64(rep.CacheAnswered)/float64(rep.Queries))
	fmt.Printf("investments       %d (failures %d)\n", rep.Investments, rep.Failures)
	fmt.Printf("resident at end   %.1f GB\n", float64(rep.FinalResidentBytes)/(1<<30))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cloudsim:", err)
	os.Exit(1)
}
