// Package metrics provides the small statistics toolkit the simulator and
// the experiment harness report with: running means, percentile estimation
// over bounded reservoirs, counters and fixed-width table rendering.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Running accumulates a stream of float64 observations with O(1) memory.
type Running struct {
	n          int64
	mean, m2   float64
	min, max   float64
	sum        float64
	hasSamples bool
}

// Observe adds one sample.
func (r *Running) Observe(x float64) {
	r.n++
	r.sum += x
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
	if !r.hasSamples || x < r.min {
		r.min = x
	}
	if !r.hasSamples || x > r.max {
		r.max = x
	}
	r.hasSamples = true
}

// N returns the sample count.
func (r *Running) N() int64 { return r.n }

// Sum returns the sample total.
func (r *Running) Sum() float64 { return r.sum }

// Mean returns the running mean (0 with no samples).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// Var returns the unbiased sample variance (0 with <2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 {
	if !r.hasSamples {
		return 0
	}
	return r.min
}

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 {
	if !r.hasSamples {
		return 0
	}
	return r.max
}

// Reservoir keeps a bounded uniform sample of a stream for percentile
// estimation (Vitter's algorithm R) with a deterministic internal PRNG so
// simulations stay reproducible.
type Reservoir struct {
	cap   int
	seen  int64
	data  []float64
	state uint64
}

// NewReservoir creates a reservoir with the given capacity (minimum 1).
// The sample buffer is allocated up front so Observe never allocates —
// the serving hot path observes a response time per query.
func NewReservoir(capacity int) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, data: make([]float64, 0, capacity), state: 0x9E3779B97F4A7C15}
}

// SplitMix64 advances a SplitMix64 state and returns the next state and
// output. It is the one PRNG implementation shared by every component
// whose random state must be persistable as a plain uint64 (the
// reservoir's replacement draws, the serving layer's selectivity
// draws): a single uint64 restores the exact sequence, which math/rand
// cannot offer.
func SplitMix64(state uint64) (next, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// nextRand is a SplitMix64 step.
func (r *Reservoir) nextRand() uint64 {
	var out uint64
	r.state, out = SplitMix64(r.state)
	return out
}

// Observe adds one sample.
func (r *Reservoir) Observe(x float64) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	// Replace a random slot with probability cap/seen.
	j := r.nextRand() % uint64(r.seen)
	if j < uint64(r.cap) {
		r.data[j] = x
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the reservoir using
// linear interpolation. Returns 0 with no samples.
func (r *Reservoir) Quantile(q float64) float64 {
	sorted := make([]float64, len(r.data))
	copy(sorted, r.data)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted interpolates the q-quantile of an ascending sample set.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Seen reports how many samples were observed (not how many are retained).
func (r *Reservoir) Seen() int64 { return r.seen }

// Samples returns a copy of the retained sample set, for merging reservoirs
// across shards or exporting raw data. The copy is unsorted.
func (r *Reservoir) Samples() []float64 {
	out := make([]float64, len(r.data))
	copy(out, r.data)
	return out
}

// WeightedQuantilesOf estimates quantiles of samples carrying unequal
// weights, sorting once for all requested quantiles. This is the correct
// way to merge capped reservoirs from streams of different lengths: a
// reservoir that retained k of n observations contributes each sample
// with weight n/k, so a busy shard is not flattened to equal footing
// with an idle one. Uses midpoint positions with linear interpolation;
// values and weights must have equal length (weights <= 0 are skipped).
// Results are 0 with no positive-weight samples.
func WeightedQuantilesOf(values, weights []float64, qs ...float64) []float64 {
	type pair struct{ v, w float64 }
	ps := make([]pair, 0, len(values))
	total := 0.0
	for i, v := range values {
		if w := weights[i]; w > 0 {
			ps = append(ps, pair{v, w})
			total += w
		}
	}
	out := make([]float64, len(qs))
	if len(ps) == 0 || total <= 0 {
		return out
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	// pos[k] is the cumulative-midpoint position of sample k in [0,1].
	pos := make([]float64, len(ps))
	cum := 0.0
	for i, p := range ps {
		pos[i] = (cum + p.w/2) / total
		cum += p.w
	}
	for j, q := range qs {
		switch {
		case q <= pos[0]:
			out[j] = ps[0].v
		case q >= pos[len(ps)-1]:
			out[j] = ps[len(ps)-1].v
		default:
			i := sort.SearchFloat64s(pos, q)
			lo, hi := i-1, i
			frac := (q - pos[lo]) / (pos[hi] - pos[lo])
			out[j] = ps[lo].v*(1-frac) + ps[hi].v*frac
		}
	}
	return out
}

// RunningState is the exported form of a Running accumulator, for
// persistence. Restoring it reproduces the accumulator bit for bit, so
// means and variances continue exactly where they left off.
type RunningState struct {
	N          int64
	Mean       float64
	M2         float64
	Min        float64
	Max        float64
	Sum        float64
	HasSamples bool
}

// State exports the accumulator.
func (r *Running) State() RunningState {
	return RunningState{N: r.n, Mean: r.mean, M2: r.m2, Min: r.min, Max: r.max, Sum: r.sum, HasSamples: r.hasSamples}
}

// Restore adopts a previously exported state wholesale.
func (r *Running) Restore(st RunningState) {
	r.n, r.mean, r.m2, r.min, r.max, r.sum, r.hasSamples = st.N, st.Mean, st.M2, st.Min, st.Max, st.Sum, st.HasSamples
}

// ReservoirState is the exported form of a Reservoir, including the
// internal PRNG state, so a restored reservoir continues the exact
// replacement sequence of the original — percentile estimates after a
// restart are byte-identical to an uninterrupted run's.
type ReservoirState struct {
	Cap  int
	Seen int64
	Data []float64
	PRNG uint64
}

// State exports the reservoir (the sample slice is copied).
func (r *Reservoir) State() ReservoirState {
	return ReservoirState{Cap: r.cap, Seen: r.seen, Data: r.Samples(), PRNG: r.state}
}

// Restore adopts a previously exported state. The state's capacity wins
// over the receiver's so restored percentile behavior matches the
// original exactly; insane values are clamped rather than rejected.
// Seen in particular must stay >= len(Data) and >= 0, or the next
// Observe's replacement draw (mod seen) would divide by zero.
func (r *Reservoir) Restore(st ReservoirState) {
	if st.Cap < 1 {
		st.Cap = 1
	}
	n := len(st.Data)
	if n > st.Cap {
		n = st.Cap
	}
	// Full capacity up front, like NewReservoir: Observe after a restore
	// must stay allocation-free too.
	data := make([]float64, n, st.Cap)
	copy(data, st.Data[:n])
	if st.Seen < int64(n) {
		st.Seen = int64(n)
	}
	r.cap, r.seen, r.data, r.state = st.Cap, st.Seen, data, st.PRNG
}

// DurationStats couples a Running and a Reservoir for a duration-valued
// series, reporting in seconds.
type DurationStats struct {
	Running
	res *Reservoir
}

// DurationStatsState is the exported form of a DurationStats.
type DurationStatsState struct {
	Running   RunningState
	Reservoir ReservoirState
}

// State exports the statistics.
func (d *DurationStats) State() DurationStatsState {
	return DurationStatsState{Running: d.Running.State(), Reservoir: d.res.State()}
}

// Restore adopts a previously exported state.
func (d *DurationStats) Restore(st DurationStatsState) {
	d.Running.Restore(st.Running)
	d.res.Restore(st.Reservoir)
}

// MarshalJSON reports the series' headline statistics (count, mean and
// percentiles in seconds) instead of the opaque internals, so reports
// embedding a DurationStats serialize meaningfully — and golden-file
// tests pin the reported values.
func (d *DurationStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		N       int64   `json:"n"`
		MeanSec float64 `json:"mean_s"`
		P50Sec  float64 `json:"p50_s"`
		P95Sec  float64 `json:"p95_s"`
		P99Sec  float64 `json:"p99_s"`
		MaxSec  float64 `json:"max_s"`
	}{d.N(), d.Mean(), d.Percentile(50), d.Percentile(95), d.Percentile(99), d.Max()})
}

// NewDurationStats creates duration statistics with a percentile reservoir.
func NewDurationStats(reservoirCap int) *DurationStats {
	return &DurationStats{res: NewReservoir(reservoirCap)}
}

// ObserveDuration adds one duration sample.
func (d *DurationStats) ObserveDuration(t time.Duration) {
	s := t.Seconds()
	d.Observe(s)
	d.res.Observe(s)
}

// Percentile estimates a percentile in seconds (p in [0,100]).
func (d *DurationStats) Percentile(p float64) float64 {
	return d.res.Quantile(p / 100)
}

// Samples returns a copy of the reservoir's retained samples in seconds.
func (d *DurationStats) Samples() []float64 { return d.res.Samples() }

// Table renders aligned textual tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Shorter rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with right-padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }
