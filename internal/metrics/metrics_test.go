package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Min() != 0 || r.Max() != 0 || r.N() != 0 {
		t.Error("zero Running misbehaves")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 || r.Sum() != 40 {
		t.Errorf("N=%d Sum=%v", r.N(), r.Sum())
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population stddev of this classic set is 2; sample variance = 32/7.
	if got := r.Var(); math.Abs(got-32.0/7.0) > 1e-9 {
		t.Errorf("Var = %v, want %v", got, 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Observe(-3)
	if r.Mean() != -3 || r.Var() != 0 || r.Min() != -3 || r.Max() != -3 {
		t.Error("single negative sample misbehaves")
	}
}

func TestReservoirExact(t *testing.T) {
	// Fewer samples than capacity: quantiles are exact.
	r := NewReservoir(100)
	for i := 1; i <= 10; i++ {
		r.Observe(float64(i))
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := r.Quantile(1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := r.Quantile(0.5); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("median = %v, want 5.5", got)
	}
	if r.Seen() != 10 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirClampsQ(t *testing.T) {
	r := NewReservoir(4)
	r.Observe(1)
	r.Observe(2)
	if r.Quantile(-1) != 1 || r.Quantile(2) != 2 {
		t.Error("q clamp wrong")
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(4)
	if r.Quantile(0.5) != 0 {
		t.Error("empty reservoir quantile should be 0")
	}
}

func TestReservoirSubsamples(t *testing.T) {
	r := NewReservoir(64)
	for i := 0; i < 10000; i++ {
		r.Observe(float64(i % 100))
	}
	// Median of uniform 0..99 should be near 49.5.
	med := r.Quantile(0.5)
	if med < 25 || med > 75 {
		t.Errorf("median = %v, wildly off", med)
	}
	if r.Seen() != 10000 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirMinCapacity(t *testing.T) {
	r := NewReservoir(0)
	r.Observe(7)
	if got := r.Quantile(0.5); got != 7 {
		t.Errorf("capacity floor broken: %v", got)
	}
}

func TestDurationStats(t *testing.T) {
	d := NewDurationStats(16)
	for i := 1; i <= 4; i++ {
		d.ObserveDuration(time.Duration(i) * time.Second)
	}
	if got := d.Mean(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := d.Percentile(100); math.Abs(got-4) > 1e-9 {
		t.Errorf("p100 = %v", got)
	}
	if got := d.Percentile(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("p0 = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("scheme", "cost")
	tb.AddRow("bypass", "$1.00")
	tb.AddRow("econ-cheap") // short row padded
	out := tb.String()
	if !strings.Contains(out, "scheme") || !strings.Contains(out, "bypass") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("line count = %d\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	// All lines align to equal width per column: header width check.
	if !strings.HasPrefix(lines[1], "------") {
		t.Errorf("separator malformed: %q", lines[1])
	}
}

// Property: running mean stays within [min, max].
func TestRunningMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitudes: near-MaxFloat64 inputs overflow the
			// incremental mean, which is out of scope for seconds-
			// and dollars-valued series.
			r.Observe(math.Mod(x, 1e12))
		}
		if r.N() > 0 {
			slack := 1e-6 * (math.Abs(r.Min()) + math.Abs(r.Max()) + 1)
			ok = r.Mean() >= r.Min()-slack && r.Mean() <= r.Max()+slack
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		r := NewReservoir(128)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			r.Observe(x)
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return r.Quantile(qa) <= r.Quantile(qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedQuantilesOf(t *testing.T) {
	// Equal weights reduce to the ordinary quantile, within the midpoint
	// interpolation's resolution.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	got := WeightedQuantilesOf(append([]float64(nil), vals...), w, 0, 0.5, 1)
	if got[0] != 1 || got[2] != 10 {
		t.Errorf("extremes = %v, want min/max", got)
	}
	if got[1] < 5 || got[1] > 6 {
		t.Errorf("median = %g, want in [5,6]", got[1])
	}

	// A heavy sample dominates: 99% of the weight at 100 pulls the
	// median to 100 even though it is one value among many.
	vals = []float64{1, 2, 3, 100}
	w = []float64{1, 1, 1, 297}
	got = WeightedQuantilesOf(vals, w, 0.5)
	if got[0] < 99 {
		t.Errorf("weighted median = %g, want ~100", got[0])
	}

	// Zero/negative weights are skipped; empty input yields zeros.
	got = WeightedQuantilesOf([]float64{5, 7}, []float64{0, -1}, 0.5)
	if got[0] != 0 {
		t.Errorf("all-zero-weight median = %g, want 0", got[0])
	}
	if got := WeightedQuantilesOf(nil, nil, 0.5); got[0] != 0 {
		t.Errorf("empty median = %g, want 0", got[0])
	}
}

// TestStateRestoreContinuity: a restored DurationStats continues the
// exact sequence of the original — same means, same reservoir
// replacements — so statistics survive a snapshot/restore bit for bit.
func TestStateRestoreContinuity(t *testing.T) {
	a := NewDurationStats(8)
	for i := 1; i <= 100; i++ {
		a.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	b := NewDurationStats(8)
	b.Restore(a.State())
	for i := 101; i <= 200; i++ {
		a.ObserveDuration(time.Duration(i) * time.Millisecond)
		b.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Percentile(50) != b.Percentile(50) ||
		a.Percentile(99) != b.Percentile(99) {
		t.Errorf("restored stats diverged: n %d/%d mean %v/%v p50 %v/%v",
			a.N(), b.N(), a.Mean(), b.Mean(), a.Percentile(50), b.Percentile(50))
	}
}

// TestReservoirRestoreClampsSeen: hostile state claiming fewer
// observations than it retains must not leave a reservoir that panics
// (mod zero) on its next Observe.
func TestReservoirRestoreClampsSeen(t *testing.T) {
	for _, seen := range []int64{-5, 0, 1} {
		r := NewReservoir(1)
		r.Restore(ReservoirState{Cap: 1, Seen: seen, Data: []float64{1}, PRNG: 7})
		r.Observe(2) // must not panic
		if r.Seen() != 2 {
			t.Errorf("Seen after clamped restore (%d) + 1 observe = %d, want 2", seen, r.Seen())
		}
	}
}
