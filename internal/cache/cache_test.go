package cache

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/structure"
)

func colStruct(t *testing.T, table, col string) *structure.Structure {
	t.Helper()
	s, err := structure.ColumnStructure(catalog.TPCH(1), catalog.Col(table, col))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildLifecycle(t *testing.T) {
	c := New(0)
	st := colStruct(t, "lineitem", "l_shipdate")
	price := money.FromDollars(2)

	if err := c.StartBuild(st, 10*time.Second, price); err != nil {
		t.Fatal(err)
	}
	if !c.Building(st.ID) || c.Has(st.ID) {
		t.Error("build should be pending, not resident")
	}
	if c.PendingCount() != 1 {
		t.Error("PendingCount wrong")
	}
	// Not due yet.
	c.Advance(5 * time.Second)
	if done := c.CompleteDue(); len(done) != 0 {
		t.Error("build completed early")
	}
	// Due now.
	c.Advance(10 * time.Second)
	done := c.CompleteDue()
	if len(done) != 1 || done[0].S.ID != st.ID {
		t.Fatalf("CompleteDue = %v", done)
	}
	e := done[0]
	if e.BuiltAt != 10*time.Second || e.MaintPaidUntil != 10*time.Second {
		t.Errorf("entry times wrong: %+v", e)
	}
	if e.BuildPrice != price || e.AmortRemaining != price {
		t.Errorf("entry prices wrong: %+v", e)
	}
	if !c.Has(st.ID) || c.Building(st.ID) {
		t.Error("structure should now be resident")
	}
	if c.ResidentBytes() != st.Bytes {
		t.Errorf("ResidentBytes = %d, want %d", c.ResidentBytes(), st.Bytes)
	}
}

func TestStartBuildRejections(t *testing.T) {
	c := New(0)
	st := colStruct(t, "orders", "o_orderdate")
	if err := c.StartBuild(nil, 0, 0); err == nil {
		t.Error("nil structure accepted")
	}
	if err := c.StartBuild(st, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.StartBuild(st, 0, 0); err == nil {
		t.Error("duplicate pending build accepted")
	}
	c.CompleteDue()
	if err := c.StartBuild(st, 0, 0); err == nil {
		t.Error("build of resident structure accepted")
	}
}

func TestBuildReadyInPastClampsToNow(t *testing.T) {
	c := New(0)
	c.Advance(time.Minute)
	st := colStruct(t, "orders", "o_custkey")
	if err := c.StartBuild(st, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	done := c.CompleteDue()
	if len(done) != 1 || done[0].BuiltAt != time.Minute {
		t.Errorf("past-ready build should complete at current clock: %v", done)
	}
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	c := New(0)
	c.Advance(time.Minute)
	defer func() {
		if recover() == nil {
			t.Error("backwards clock did not panic")
		}
	}()
	c.Advance(time.Second)
}

func TestTouchAndLRU(t *testing.T) {
	c := New(0)
	a := colStruct(t, "lineitem", "l_quantity")
	b := colStruct(t, "lineitem", "l_discount")
	d := colStruct(t, "lineitem", "l_tax")
	for _, st := range []*structure.Structure{a, b, d} {
		if err := c.StartBuild(st, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.CompleteDue()

	c.Advance(10 * time.Second)
	c.Touch(a.ID)
	c.Advance(20 * time.Second)
	c.Touch(d.ID)
	// b never touched since build -> coldest.

	victims := c.LRUVictims(2)
	if len(victims) != 2 {
		t.Fatalf("victims = %d", len(victims))
	}
	if victims[0].S.ID != b.ID {
		t.Errorf("coldest = %s, want %s", victims[0].S.ID, b.ID)
	}
	if victims[1].S.ID != a.ID {
		t.Errorf("second = %s, want %s", victims[1].S.ID, a.ID)
	}
	// Uses counted.
	e, _ := c.Get(a.ID)
	if e.Uses != 1 || e.LastUsed != 10*time.Second {
		t.Errorf("entry = %+v", e)
	}
	// Touch of non-resident is a no-op.
	c.Touch("nope")
}

func TestLRUVictimsBounds(t *testing.T) {
	c := New(0)
	if got := c.LRUVictims(5); len(got) != 0 {
		t.Error("empty cache should have no victims")
	}
	if got := c.LRUVictims(-1); len(got) != 0 {
		t.Error("negative n should be empty")
	}
}

func TestEvict(t *testing.T) {
	c := New(0)
	st := colStruct(t, "part", "p_retailprice")
	c.StartBuild(st, 0, money.FromDollars(1))
	c.CompleteDue()
	e, ok := c.Evict(st.ID)
	if !ok || e.S.ID != st.ID {
		t.Fatal("evict failed")
	}
	if c.Has(st.ID) || c.ResidentBytes() != 0 {
		t.Error("evict did not clean up")
	}
	if _, ok := c.Evict(st.ID); ok {
		t.Error("double evict succeeded")
	}
}

func TestEnsureRoomEvictsLRU(t *testing.T) {
	cat := catalog.TPCH(1)
	a, _ := structure.ColumnStructure(cat, catalog.Col("lineitem", "l_quantity")) // 48MB
	b, _ := structure.ColumnStructure(cat, catalog.Col("lineitem", "l_tax"))      // 48MB
	cap := a.Bytes + b.Bytes
	c := New(cap)
	c.StartBuild(a, 0, 0)
	c.StartBuild(b, 0, 0)
	c.CompleteDue()
	c.Advance(time.Second)
	c.Touch(b.ID) // a becomes LRU

	// No room needed: no evictions.
	ev, ok := c.EnsureRoom(0)
	if !ok || len(ev) != 0 {
		t.Error("zero need must be free")
	}
	// Need half a column: evict exactly a.
	ev, ok = c.EnsureRoom(a.Bytes / 2)
	if !ok || len(ev) != 1 || ev[0].S.ID != a.ID {
		t.Errorf("EnsureRoom evicted %v", ev)
	}
	if c.Has(a.ID) || !c.Has(b.ID) {
		t.Error("wrong victim evicted")
	}
	// Impossible need: report false, evict nothing further.
	before := c.Len()
	if _, ok := c.EnsureRoom(cap * 2); ok {
		t.Error("impossible need accepted")
	}
	if c.Len() != before {
		t.Error("impossible need evicted structures")
	}
}

func TestEnsureRoomUnlimited(t *testing.T) {
	c := New(0)
	ev, ok := c.EnsureRoom(1 << 40)
	if !ok || len(ev) != 0 {
		t.Error("unlimited cache must always have room")
	}
}

func TestEnsureRoomSkipsCPUNodes(t *testing.T) {
	cat := catalog.TPCH(1)
	col, _ := structure.ColumnStructure(cat, catalog.Col("lineitem", "l_tax"))
	c := New(col.Bytes)
	c.StartBuild(structure.CPUNode(2), 0, 0)
	c.StartBuild(col, 0, 0)
	c.CompleteDue()
	// Cache is at capacity with the column; CPU node occupies no disk.
	ev, ok := c.EnsureRoom(col.Bytes / 2)
	if !ok {
		t.Fatal("EnsureRoom failed")
	}
	for _, e := range ev {
		if e.S.Kind == structure.KindCPUNode {
			t.Error("CPU node evicted for disk pressure")
		}
	}
	if !c.Has(structure.CPUNodeID(2)) {
		t.Error("CPU node should survive disk pressure")
	}
}

func TestNodeAccounting(t *testing.T) {
	c := New(0)
	if c.NodeCount() != 0 || c.MaxNodeOrdinal() != 1 {
		t.Error("empty cache node state wrong")
	}
	c.StartBuild(structure.CPUNode(2), 0, 0)
	c.StartBuild(structure.CPUNode(3), 0, 0)
	c.CompleteDue()
	if c.NodeCount() != 2 {
		t.Errorf("NodeCount = %d", c.NodeCount())
	}
	if c.MaxNodeOrdinal() != 3 {
		t.Errorf("MaxNodeOrdinal = %d", c.MaxNodeOrdinal())
	}
	c.Evict(structure.CPUNodeID(3))
	if c.MaxNodeOrdinal() != 2 {
		t.Errorf("after evict MaxNodeOrdinal = %d", c.MaxNodeOrdinal())
	}
}

func TestEntriesSorted(t *testing.T) {
	c := New(0)
	c.StartBuild(colStruct(t, "lineitem", "l_tax"), 0, 0)
	c.StartBuild(colStruct(t, "lineitem", "l_discount"), 0, 0)
	c.StartBuild(structure.CPUNode(2), 0, 0)
	c.CompleteDue()
	es := c.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].S.ID >= es[i].S.ID {
			t.Error("Entries not sorted by ID")
		}
	}
}

func TestNegativeCapacityMeansUnlimited(t *testing.T) {
	c := New(-5)
	if c.Capacity() != 0 {
		t.Error("negative capacity should normalize to 0")
	}
}

func TestForEach(t *testing.T) {
	c := New(0)
	c.StartBuild(colStruct(t, "lineitem", "l_tax"), 0, 0)
	c.StartBuild(colStruct(t, "lineitem", "l_discount"), 0, 0)
	c.CompleteDue()
	var n int
	var bytes int64
	c.ForEach(func(e *Entry) {
		n++
		bytes += e.S.Bytes
	})
	if n != 2 {
		t.Errorf("visited %d entries, want 2", n)
	}
	if bytes != c.ResidentBytes() {
		t.Errorf("ForEach bytes %d != ResidentBytes %d", bytes, c.ResidentBytes())
	}
	// Empty cache: no calls.
	empty := New(0)
	empty.ForEach(func(*Entry) { t.Error("callback on empty cache") })
}

func TestTouchSetsFirstUsed(t *testing.T) {
	c := New(0)
	st := colStruct(t, "orders", "o_totalprice")
	c.StartBuild(st, 0, 0)
	c.CompleteDue()
	c.Advance(10 * time.Second)
	c.Touch(st.ID)
	c.Advance(20 * time.Second)
	c.Touch(st.ID)
	e, _ := c.Get(st.ID)
	if e.FirstUsed != 10*time.Second {
		t.Errorf("FirstUsed = %v, want 10s (must not move on later touches)", e.FirstUsed)
	}
	if e.LastUsed != 20*time.Second || e.Uses != 2 {
		t.Errorf("LastUsed/Uses = %v/%d", e.LastUsed, e.Uses)
	}
}
