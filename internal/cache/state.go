package cache

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/money"
	"repro/internal/structure"
)

// EntryState is the exported form of one resident entry. The structure
// itself is stored by ID only: structures are immutable and derivable
// from the catalog, so restore reconstructs them through a resolver
// instead of persisting sizes that could drift from the catalog.
type EntryState struct {
	ID             structure.ID
	BuiltAt        time.Duration
	FirstUsed      time.Duration
	LastUsed       time.Duration
	Uses           int64
	BuildPrice     money.Amount
	AmortRemaining money.Amount
	MaintPaidUntil time.Duration
	UnpaidMaint    money.Amount
	EarnedValue    money.Amount
}

// PendingState is the exported form of one in-flight build.
type PendingState struct {
	ID             structure.ID
	ReadyAt        time.Duration
	BuildPrice     money.Amount
	AmortRemaining money.Amount
}

// State is the exported form of a Cache: clock, residency and pending
// builds. Entries and pending builds are sorted by ID so repeated
// snapshots of the same cache are byte-identical.
type State struct {
	Clock    time.Duration
	Capacity int64
	Entries  []EntryState
	Pending  []PendingState
}

// Snapshot exports the cache state.
func (c *Cache) Snapshot() State {
	st := State{Clock: c.clock, Capacity: c.capacity}
	for _, e := range c.Entries() {
		st.Entries = append(st.Entries, EntryState{
			ID:             e.S.ID,
			BuiltAt:        e.BuiltAt,
			FirstUsed:      e.FirstUsed,
			LastUsed:       e.LastUsed,
			Uses:           e.Uses,
			BuildPrice:     e.BuildPrice,
			AmortRemaining: e.AmortRemaining,
			MaintPaidUntil: e.MaintPaidUntil,
			UnpaidMaint:    e.UnpaidMaint,
			EarnedValue:    e.EarnedValue,
		})
	}
	for id, pb := range c.pending {
		st.Pending = append(st.Pending, PendingState{
			ID:             id,
			ReadyAt:        pb.readyAt,
			BuildPrice:     pb.entry.BuildPrice,
			AmortRemaining: pb.entry.AmortRemaining,
		})
	}
	sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].ID < st.Pending[j].ID })
	return st
}

// Restore replaces the cache's state with a previously exported one.
// Structures are rebuilt through resolve (typically economy.ResolveID
// over the scheme's catalog), so a snapshot taken against a different
// catalog fails loudly instead of restoring stale sizes. The receiving
// cache must be empty (fresh from New) and its capacity must match the
// snapshot's: a capacity change means the scheme was reconfigured and
// the snapshot no longer describes this cache.
func (c *Cache) Restore(st State, resolve func(structure.ID) (*structure.Structure, error)) error {
	if len(c.entries) != 0 || len(c.pending) != 0 {
		return fmt.Errorf("cache: restore into non-empty cache")
	}
	if c.capacity != st.Capacity {
		return fmt.Errorf("cache: snapshot capacity %d != configured %d", st.Capacity, c.capacity)
	}
	if st.Clock < 0 {
		return fmt.Errorf("cache: snapshot clock %v is negative", st.Clock)
	}
	entries := make(map[structure.ID]*Entry, len(st.Entries))
	var resident int64
	for _, es := range st.Entries {
		if _, dup := entries[es.ID]; dup {
			return fmt.Errorf("cache: duplicate entry %s in snapshot", es.ID)
		}
		s, err := resolve(es.ID)
		if err != nil {
			return fmt.Errorf("cache: restoring %s: %w", es.ID, err)
		}
		entries[es.ID] = &Entry{
			S:              s,
			BuiltAt:        es.BuiltAt,
			FirstUsed:      es.FirstUsed,
			LastUsed:       es.LastUsed,
			Uses:           es.Uses,
			BuildPrice:     es.BuildPrice,
			AmortRemaining: es.AmortRemaining,
			MaintPaidUntil: es.MaintPaidUntil,
			UnpaidMaint:    es.UnpaidMaint,
			EarnedValue:    es.EarnedValue,
		}
		resident += s.Bytes
	}
	pending := make(map[structure.ID]*pendingBuild, len(st.Pending))
	for _, ps := range st.Pending {
		if _, dup := pending[ps.ID]; dup {
			return fmt.Errorf("cache: duplicate pending build %s in snapshot", ps.ID)
		}
		if _, dup := entries[ps.ID]; dup {
			return fmt.Errorf("cache: %s both resident and pending in snapshot", ps.ID)
		}
		s, err := resolve(ps.ID)
		if err != nil {
			return fmt.Errorf("cache: restoring pending %s: %w", ps.ID, err)
		}
		pending[ps.ID] = &pendingBuild{
			entry: &Entry{
				S:              s,
				BuildPrice:     ps.BuildPrice,
				AmortRemaining: ps.AmortRemaining,
			},
			readyAt: ps.ReadyAt,
		}
	}
	c.clock = st.Clock
	c.entries = entries
	c.pending = pending
	c.resident = resident
	return nil
}
