package cache

import "repro/internal/money"

// AmortShare returns the amortized share of an entry's build cost that one
// more query should pay (Eq. 7: f_S = Build_S(S)/n). The share never
// exceeds what remains to be amortized, so fully amortized structures are
// free to use.
func AmortShare(e *Entry, n int64) money.Amount {
	if e == nil || n <= 0 || !e.AmortRemaining.IsPositive() {
		return 0
	}
	share := e.BuildPrice.DivInt(n)
	return money.MinAmount(share, e.AmortRemaining)
}

// MaintDue returns maintenance rent accrued against the entry and not yet
// recovered from any user: the stored arrears plus rent since
// MaintPaidUntil, priced by the caller-supplied rate function.
func MaintDue(e *Entry, priceSince func(*Entry) money.Amount) money.Amount {
	if e == nil {
		return 0
	}
	return e.UnpaidMaint.Add(priceSince(e))
}
