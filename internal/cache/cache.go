// Package cache tracks the state of the cloud cache: which structures
// (columns, indexes, CPU nodes) are resident, which are being built, how
// much disk they occupy, when each was last used, and how much maintenance
// rent has accrued against each since it was last paid off (§V-C
// footnote 3).
//
// The cache is purely mechanical: it does not price anything and takes no
// decisions. Schemes and the economy decide what to build and what to
// evict; the simulator advances the clock.
package cache

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/money"
	"repro/internal/structure"
)

// Entry is one resident structure plus its bookkeeping.
type Entry struct {
	S *structure.Structure

	// BuiltAt is when the structure became usable.
	BuiltAt time.Duration
	// FirstUsed is when a selected plan first employed the structure
	// (zero until then). Value rates are measured from first use so the
	// idle window while the rest of a plan's structure set was still
	// building does not dilute them.
	FirstUsed time.Duration
	// LastUsed is when a selected plan last employed the structure.
	LastUsed time.Duration
	// Uses counts selected plans that employed the structure.
	Uses int64

	// BuildPrice is what the cloud paid to build the structure, the
	// basis of amortization (Eq. 6) and of the maintenance-failure
	// threshold.
	BuildPrice money.Amount
	// AmortRemaining is the unamortized share of BuildPrice still to be
	// recovered from future queries.
	AmortRemaining money.Amount

	// MaintPaidUntil is the clock point up to which maintenance rent
	// has been charged to users (footnote 3: each selected plan pays the
	// accumulated maintenance since the previous payer).
	MaintPaidUntil time.Duration
	// UnpaidMaint is rent accrued but not yet recovered from any user.
	UnpaidMaint money.Amount
	// EarnedValue accumulates the measured value the structure has
	// produced: amortization shares collected plus its share of each
	// chosen plan's price advantage over the back-end alternative. The
	// economy's rent-vs-yield eviction compares rent since last use
	// against EarnedValue per use.
	EarnedValue money.Amount
}

// pendingBuild is an in-flight investment.
type pendingBuild struct {
	entry   *Entry
	readyAt time.Duration
}

// Cache is the mutable cache state. It is not safe for concurrent use; a
// simulation owns exactly one cache.
type Cache struct {
	clock    time.Duration
	entries  map[structure.ID]*Entry
	pending  map[structure.ID]*pendingBuild
	resident int64 // disk bytes of resident structures
	capacity int64 // 0 = unlimited (economy schemes); >0 = hard cap (net-only)

	// epoch counts mutations that can change what is resident or being
	// built (build starts, completions, evictions). Callers memoizing
	// residency-dependent computations (the optimizer's build pricing)
	// invalidate when it moves.
	epoch int64
}

// New creates an empty cache. capacityBytes of 0 means unlimited.
func New(capacityBytes int64) *Cache {
	if capacityBytes < 0 {
		capacityBytes = 0
	}
	return &Cache{
		entries:  make(map[structure.ID]*Entry),
		pending:  make(map[structure.ID]*pendingBuild),
		capacity: capacityBytes,
	}
}

// Clock returns the cache's current time.
func (c *Cache) Clock() time.Duration { return c.clock }

// Epoch returns the residency-mutation counter: it moves whenever a
// build starts, completes, or a structure is evicted, and never
// otherwise. Memoize residency-dependent results against it.
func (c *Cache) Epoch() int64 { return c.epoch }

// Advance moves the clock forward. Moving backwards is a programming error
// and panics: simulation time is monotone.
func (c *Cache) Advance(now time.Duration) {
	if now < c.clock {
		panic(fmt.Sprintf("cache: clock moved backwards: %v -> %v", c.clock, now))
	}
	c.clock = now
}

// Capacity returns the disk cap in bytes (0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity }

// ResidentBytes returns disk currently occupied by resident structures.
func (c *Cache) ResidentBytes() int64 { return c.resident }

// Has reports whether the structure is resident (built and not evicted).
func (c *Cache) Has(id structure.ID) bool {
	_, ok := c.entries[id]
	return ok
}

// Get returns the entry for a resident structure.
func (c *Cache) Get(id structure.ID) (*Entry, bool) {
	e, ok := c.entries[id]
	return e, ok
}

// Building reports whether a build for the structure is in flight.
func (c *Cache) Building(id structure.ID) bool {
	_, ok := c.pending[id]
	return ok
}

// Len returns the number of resident structures.
func (c *Cache) Len() int { return len(c.entries) }

// ForEach calls f for every resident entry in unspecified order. It is the
// allocation-free alternative to Entries for per-entry decisions that do
// not depend on iteration order. f must not add or remove entries.
func (c *Cache) ForEach(f func(*Entry)) {
	for _, e := range c.entries {
		f(e)
	}
}

// Entries returns resident entries sorted by structure ID for deterministic
// iteration.
func (c *Cache) Entries() []*Entry {
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].S.ID < out[j].S.ID })
	return out
}

// StartBuild registers an investment: the structure becomes resident at
// readyAt. Duplicate builds (already resident or already pending) are
// rejected so the economy cannot double-spend.
func (c *Cache) StartBuild(st *structure.Structure, readyAt time.Duration, buildPrice money.Amount) error {
	if st == nil {
		return fmt.Errorf("cache: nil structure")
	}
	if c.Has(st.ID) {
		return fmt.Errorf("cache: %s already resident", st.ID)
	}
	if c.Building(st.ID) {
		return fmt.Errorf("cache: %s already building", st.ID)
	}
	if readyAt < c.clock {
		readyAt = c.clock
	}
	c.pending[st.ID] = &pendingBuild{
		entry: &Entry{
			S:              st,
			BuildPrice:     buildPrice,
			AmortRemaining: buildPrice,
		},
		readyAt: readyAt,
	}
	c.epoch++
	return nil
}

// CompleteDue promotes pending builds whose ready time has passed. It
// returns the newly resident entries sorted by structure ID.
func (c *Cache) CompleteDue() []*Entry {
	var done []*Entry
	for id, pb := range c.pending {
		if pb.readyAt <= c.clock {
			pb.entry.BuiltAt = pb.readyAt
			pb.entry.LastUsed = pb.readyAt
			pb.entry.MaintPaidUntil = pb.readyAt
			c.entries[id] = pb.entry
			c.resident += pb.entry.S.Bytes
			done = append(done, pb.entry)
			delete(c.pending, id)
			c.epoch++
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].S.ID < done[j].S.ID })
	return done
}

// Touch records that a selected plan used the structure now.
func (c *Cache) Touch(id structure.ID) {
	if e, ok := c.entries[id]; ok {
		if e.Uses == 0 {
			e.FirstUsed = c.clock
		}
		e.LastUsed = c.clock
		e.Uses++
	}
}

// Evict removes a resident structure and returns its entry.
func (c *Cache) Evict(id structure.ID) (*Entry, bool) {
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	delete(c.entries, id)
	c.resident -= e.S.Bytes
	c.epoch++
	return e, true
}

// LRUVictims returns up to n resident structures in least-recently-used
// order, breaking ties by structure ID for determinism. CPU nodes are
// returned like any other structure; callers that only want disk residents
// can filter on Kind.
func (c *Cache) LRUVictims(n int) []*Entry {
	all := c.Entries()
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].LastUsed != all[j].LastUsed {
			return all[i].LastUsed < all[j].LastUsed
		}
		return all[i].S.ID < all[j].S.ID
	})
	if n > len(all) {
		n = len(all)
	}
	if n < 0 {
		n = 0
	}
	return all[:n]
}

// EnsureRoom evicts LRU disk structures until adding `need` bytes fits the
// capacity. It returns the evicted entries (possibly none). With no
// capacity cap it never evicts. Structures that would still not fit (need >
// capacity) leave the cache unchanged and report false.
func (c *Cache) EnsureRoom(need int64) ([]*Entry, bool) {
	if c.capacity == 0 || need <= 0 {
		return nil, true
	}
	if need > c.capacity {
		return nil, false
	}
	var evicted []*Entry
	for c.resident+need > c.capacity {
		victims := c.LRUVictims(c.Len())
		var victim *Entry
		for _, v := range victims {
			if v.S.Bytes > 0 {
				victim = v
				break
			}
		}
		if victim == nil {
			return evicted, false
		}
		c.Evict(victim.S.ID)
		evicted = append(evicted, victim)
	}
	return evicted, true
}

// NodeCount returns the number of resident extra CPU nodes.
func (c *Cache) NodeCount() int {
	n := 0
	for _, e := range c.entries {
		if e.S.Kind == structure.KindCPUNode {
			n++
		}
	}
	return n
}

// MaxNodeOrdinal returns the highest resident CPU node ordinal, or 1 when
// only the base worker exists. Plans may use nodes 1..MaxNodeOrdinal.
func (c *Cache) MaxNodeOrdinal() int {
	best := 1
	for _, e := range c.entries {
		if e.S.Kind == structure.KindCPUNode && e.S.NodeOrdinal > best {
			best = e.S.NodeOrdinal
		}
	}
	return best
}

// PendingCount returns the number of builds in flight.
func (c *Cache) PendingCount() int { return len(c.pending) }
