package adversary

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// testRig is one economy under attack: the adversary stream merged with
// an honest multi-tenant Zipf background, settled query by query.
type testRig struct {
	econ *economy.Economy
	opt  *optimizer.Optimizer
	ca   *cache.Cache
	src  workload.Source
	adv  *Source
}

func newRig(t *testing.T, strat Strategy, provider economy.Provider, honest bool, seed int64) *testRig {
	t.Helper()
	cat := catalog.TPCH(20)
	model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	ca := cache.New(0)
	opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 5000, AllowIndexes: true, AllowNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	econ, err := economy.New(economy.Config{
		Model:                 model,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             economy.SelectCheapest,
		Provider:              provider,
		RegretFraction:        0.0002,
		AmortN:                5000,
		InitialCredit:         money.FromDollars(25),
		Conservative:          true,
		UserAcceptsOverBudget: true,
		MaintFailureFactor:    1.0,
		FailureFloor:          money.FromDollars(0.0001),
		NeverUsedFloor:        money.FromDollars(0.5),
		InvestBackoff:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{
		Catalog: cat,
		Seed:    seed,
		Tenants: 3,
		Arrival: workload.NewFixedArrival(8 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := New(Config{
		Strategy: strat,
		Catalog:  cat,
		Seed:     seed + 1,
		Honest:   honest,
		MeanGap:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{econ: econ, opt: opt, ca: ca, src: workload.NewMerge(gen, adv), adv: adv}
}

// step settles the next merged query and returns it with its decision.
func (r *testRig) step(t *testing.T) (*workload.Query, economy.Decision, economy.QuoteResult) {
	t.Helper()
	q := r.src.Next()
	r.ca.Advance(q.Arrival)
	r.ca.CompleteDue()
	plans, err := r.opt.Enumerate(q, r.ca)
	if err != nil {
		t.Fatal(err)
	}
	var truthQuote economy.QuoteResult
	if q.Truth != nil {
		truthQuote = r.econ.Quote(plans, q.Truth)
	}
	d, err := r.econ.HandleQuery(q, plans)
	if err != nil {
		t.Fatal(err)
	}
	return q, d, truthQuote
}

// TestAdversaryStreamsHoldInvariants is the deterministic long-stream
// property test behind the fuzzer: every strategy, under both providers,
// merged with honest background traffic, must leave the economy's
// conservation laws intact at every audit point — and the free-rider's
// underbids must never beat their own honest counterfactual on the same
// decision (the "no tenant profits from lying" theorem for step-budget
// underbidding).
func TestAdversaryStreamsHoldInvariants(t *testing.T) {
	const n = 2000
	for _, strat := range All() {
		for _, provider := range []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish} {
			t.Run(fmt.Sprintf("%s/%s", strat, provider), func(t *testing.T) {
				rig := newRig(t, strat, provider, false, 1234)
				advTenants := map[string]bool{}
				for _, name := range rig.adv.Tenants() {
					advTenants[name] = true
				}
				var advQueries int
				for i := 0; i < n; i++ {
					q, d, truth := rig.step(t)
					if advTenants[q.Tenant] {
						advQueries++
						if strat == FreeRider && q.Truth != nil {
							// Underbid dominance, per decision: on the very
							// same market state, honesty would have been
							// charged at least as much and profited the
							// provider at least as much. A lie that beats
							// this is an economy bug, not an adversary win.
							if d.Charged > truth.Charged {
								t.Fatalf("query %d: underbid charged %v, honest declaration would pay %v",
									q.ID, d.Charged, truth.Charged)
							}
							if d.Profit > truth.Profit {
								t.Fatalf("query %d: underbid yielded provider profit %v, honesty %v — lying must not look better to settle",
									q.ID, d.Profit, truth.Profit)
							}
						}
					}
					if i%151 == 0 {
						if err := rig.econ.CheckInvariants(); err != nil {
							t.Fatalf("after %d queries: %v", i+1, err)
						}
					}
				}
				if err := rig.econ.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if advQueries == 0 {
					t.Fatal("merged stream carried no adversary queries")
				}
				seen := 0
				for _, ts := range rig.econ.TenantStats() {
					if advTenants[ts.Tenant] {
						seen++
						if ts.Queries == 0 {
							t.Errorf("adversary ledger %q settled no queries", ts.Tenant)
						}
					}
				}
				if seen == 0 {
					t.Fatal("no adversary ledger opened")
				}
			})
		}
	}
}

// TestHonestTwinSharesIntentStream pins the head-to-head methodology:
// a strategy and its honest twin must request the same work — same
// templates, same selectivities, same tenants — so any outcome delta is
// attributable to the lie, not to a different workload.
func TestHonestTwinSharesIntentStream(t *testing.T) {
	cat := catalog.TPCH(20)
	for _, strat := range All() {
		t.Run(string(strat), func(t *testing.T) {
			mk := func(honest bool) *Source {
				s, err := New(Config{Strategy: strat, Catalog: cat, Seed: 42, Honest: honest})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			lying, twin := mk(false), mk(true)
			declarationDiffers := false
			for i := 0; i < 600; i++ {
				a, b := lying.Next(), twin.Next()
				if strat != ShardStorm {
					// The storm twin deliberately re-spreads templates.
					if a.Template.Name != b.Template.Name {
						t.Fatalf("query %d: adversary requests %s, twin %s", i, a.Template.Name, b.Template.Name)
					}
					if a.Selectivity != b.Selectivity {
						t.Fatalf("query %d: selectivity %v vs %v", i, a.Selectivity, b.Selectivity)
					}
				}
				if a.Tenant != b.Tenant {
					t.Fatalf("query %d: tenant %q vs %q", i, a.Tenant, b.Tenant)
				}
				if a.Truth == nil || b.Truth == nil {
					t.Fatalf("query %d: adversary streams must carry the truthful budget", i)
				}
				if fmt.Sprint(a.Budget) != fmt.Sprint(b.Budget) {
					declarationDiffers = true
				}
				if fmt.Sprint(b.Budget) != fmt.Sprint(b.Truth) {
					t.Fatalf("query %d: honest twin declares %v but its truth is %v", i, b.Budget, b.Truth)
				}
			}
			switch strat {
			case FreeRider, RegretInflater, ShapeBluffer:
				if !declarationDiffers {
					t.Error("declaration strategy never declared anything different from the truth")
				}
			}
		})
	}
}

// TestSourceDeterminism pins reproducibility: the same seed yields the
// same stream.
func TestSourceDeterminism(t *testing.T) {
	cat := catalog.TPCH(20)
	for _, strat := range All() {
		mk := func() []*workload.Query {
			s, err := New(Config{Strategy: strat, Catalog: cat, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			return s.Batch(200, nil)
		}
		a, b := mk(), mk()
		for i := range a {
			if a[i].Template.Name != b[i].Template.Name || a[i].Arrival != b[i].Arrival ||
				a[i].Selectivity != b[i].Selectivity || a[i].Tenant != b[i].Tenant {
				t.Fatalf("%s: query %d differs across identical seeds", strat, i)
			}
		}
	}
}
