// Package adversary generates hostile tenant workloads for the economy:
// tenants that misdeclare budgets or shape their traffic to extract
// service they did not pay for. Every strategy has an honest twin — the
// identical stream with truthful declarations and undistorted timing —
// so "how much did lying pay?" is a measured head-to-head, not a
// narrative. The economy fuzzer and the `figures -fig adversary`
// experiment both build on this package.
package adversary

import (
	"fmt"
	"sort"
	"strings"
)

// Strategy names one hostile declaration or traffic pattern.
type Strategy string

const (
	// FreeRider underbids every query far below its truthful value and
	// rides structures other tenants financed: §VII-A over-budget
	// acceptance still serves the query at cost price, so the free-rider
	// consumes cached structures while its declared budgets never move
	// the regret books enough to charge it for construction.
	FreeRider Strategy = "free-rider"
	// RegretInflater declares an enormous headline price with a validity
	// window too short for any runnable plan, so it settles at cost
	// price — while the unaffordable fast plans accrue Eq. 2 regret
	// scaled by the inflated declaration, pushing the provider to build
	// structures the inflater never pays for.
	RegretInflater Strategy = "regret-inflater"
	// ShapeBluffer keeps the truthful peak price and deadline but
	// declares a back-loaded convex curve instead of its true step:
	// mid-speed plans price below the truthful willingness at selection
	// and settlement time, shaving the pay-your-bid margin the provider
	// would have collected.
	ShapeBluffer Strategy = "shape-bluffer"
	// FlashCrowd compresses its truthful long-run query rate into dense
	// bursts on one hot template separated by long silences: the burst
	// manufactures regret fast enough to trigger investment, then the
	// silence strands the freshly built structures with no paying
	// traffic to amortize them.
	FlashCrowd Strategy = "flash-crowd"
	// ShardStorm coordinates several sub-tenants on a single template —
	// one shard under the cluster router — to concentrate investment
	// there, then rotates the storm to the next template and leaves the
	// abandoned structures decaying into maintenance failure.
	ShardStorm Strategy = "shard-storm"
)

// All lists every strategy in stable order.
func All() []Strategy {
	return []Strategy{FreeRider, RegretInflater, ShapeBluffer, FlashCrowd, ShardStorm}
}

// Parse resolves a strategy name (as given to workloadgen -adversary).
func Parse(name string) (Strategy, error) {
	s := Strategy(strings.ToLower(strings.TrimSpace(name)))
	for _, known := range All() {
		if s == known {
			return s, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, known := range All() {
		names = append(names, string(known))
	}
	sort.Strings(names)
	return "", fmt.Errorf("adversary: unknown strategy %q (have %s)", name, strings.Join(names, ", "))
}

// String implements fmt.Stringer.
func (s Strategy) String() string { return string(s) }

// Description is a one-line summary for CLI help and experiment tables.
func (s Strategy) Description() string {
	switch s {
	case FreeRider:
		return "underbids every query and rides structures others financed"
	case RegretInflater:
		return "declares huge expired budgets to farm Eq. 2 regret at cost price"
	case ShapeBluffer:
		return "declares a back-loaded convex curve over a truthful step valuation"
	case FlashCrowd:
		return "bursts a hot template to trigger investment, then goes silent"
	case ShardStorm:
		return "coordinated sub-tenants storm one template, then abandon it"
	default:
		return "unknown strategy"
	}
}

// Target names the provider policy the strategy is designed to exploit.
// The adversary experiment measures whether the design actually pays;
// EXPERIMENTS.md records the outcome.
func (s Strategy) Target() string {
	switch s {
	case FreeRider, RegretInflater, FlashCrowd:
		// All three socialize construction costs: only the altruistic
		// provider's communal pool pays for structures a lying tenant
		// induced. The selfish provider's per-tenant ledgers contain
		// them — regret only ever spends the liar's own credit.
		return "altruistic"
	case ShapeBluffer:
		// The bluff shaves the pay-your-bid margin on settlement, which
		// both providers collect the same way.
		return "both"
	case ShardStorm:
		// Concentration attacks placement, not accounting: both
		// providers overbuild the stormed shard.
		return "both"
	default:
		return "unknown"
	}
}
