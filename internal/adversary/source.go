package adversary

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/budget"
	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/workload"
)

// Config parameterises one adversary stream.
type Config struct {
	// Strategy selects the attack. Required.
	Strategy Strategy
	// Catalog sizes the queries. Required.
	Catalog *catalog.Catalog
	// Templates is the template pool. Defaults to PaperTemplates().
	Templates []*workload.Template
	// Seed makes the stream reproducible.
	Seed int64
	// Tenant is the adversary's ledger name. Defaults to "mallory".
	// ShardStorm appends "-0" … "-3" for its coordinated sub-tenants.
	Tenant string
	// Honest builds the strategy's honest twin: the same templates,
	// selectivities and long-run rate, but truthful budget declarations
	// and undistorted timing. The exploitability of a strategy is the
	// adversary's outcome minus its honest twin's.
	Honest bool
	// MeanGap is the adversary's long-run mean inter-arrival time.
	// Defaults to 5 s.
	MeanGap time.Duration
	// Truth prices the adversary's honest willingness to pay. Defaults
	// to DefaultScaledPolicy — the same calibration honest tenants use.
	Truth *workload.ScaledPolicy
}

// Source emits one adversary tenant's query stream. It implements
// workload.Source; merge it with an honest background generator via
// workload.NewMerge. Every emitted query carries its truthful budget in
// Query.Truth so audits can quote the honest counterfactual.
type Source struct {
	cfg Config
	// rng drives the intent stream (templates, selectivities, hot-spot
	// rotation); timingRng drives everything that legitimately differs
	// between a strategy and its honest twin (arrival gaps, the honest
	// storm's load spreading). Splitting them keeps the intent stream
	// byte-identical across the twin pair.
	rng       *rand.Rand
	timingRng *rand.Rand
	clock     time.Duration
	next      int64

	hot       int // index of the currently targeted template
	burstLeft int // flash-crowd: queries remaining in the burst
	phaseLeft int // shard-storm: queries before the storm rotates
	storm     int // shard-storm: round-robin sub-tenant cursor
}

const (
	// Free-rider bid: 2 % of the truthful valuation.
	freeRideFraction = 0.02
	// Regret-inflater declaration: 100× the truthful price, expired
	// after 750 ms — outside every runnable plan, inside the fast plans
	// whose Eq. 2 regret it inflates.
	inflateFactor = 100
	inflateTMax   = 750 * time.Millisecond
	// Flash-crowd geometry: burstSize queries 20 ms apart, then silence
	// long enough to keep the long-run rate at MeanGap.
	burstSize = 30
	burstGap  = 20 * time.Millisecond
	// Shard-storm geometry: 4 coordinated sub-tenants, rotating target
	// every stormPhase queries.
	stormTenants = 4
	stormPhase   = 120
	stormGap     = 100 * time.Millisecond
)

// New validates the config and builds the adversary source.
func New(cfg Config) (*Source, error) {
	if _, err := Parse(string(cfg.Strategy)); err != nil {
		return nil, err
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("adversary: Config.Catalog is required")
	}
	if len(cfg.Templates) == 0 {
		cfg.Templates = workload.PaperTemplates()
	}
	for _, t := range cfg.Templates {
		if err := t.Validate(cfg.Catalog); err != nil {
			return nil, err
		}
	}
	if cfg.Tenant == "" {
		cfg.Tenant = "mallory"
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 5 * time.Second
	}
	if cfg.Truth == nil {
		cfg.Truth = workload.DefaultScaledPolicy()
	}
	return &Source{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		timingRng: rand.New(rand.NewSource(cfg.Seed ^ 0x5bd1e995bd1e995)),
	}, nil
}

// Tenants lists every ledger name the stream writes under.
func (s *Source) Tenants() []string {
	if s.cfg.Strategy != ShardStorm {
		return []string{s.cfg.Tenant}
	}
	out := make([]string, stormTenants)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", s.cfg.Tenant, i)
	}
	return out
}

// Next produces the adversary's next query. The template, selectivity
// and long-run rate draws are identical for the strategy and its honest
// twin — only the declaration (and, for the behavioral strategies, the
// timing) differs.
func (s *Source) Next() *workload.Query {
	tpl, tenant := s.pick()
	sel := tpl.SelMin + s.rng.Float64()*(tpl.SelMax-tpl.SelMin)
	s.clock += s.gap()
	s.next++

	q := &workload.Query{
		ID:          s.next,
		Tenant:      tenant,
		Template:    tpl,
		Selectivity: sel,
		Arrival:     s.clock,
	}
	scan, err := q.ScanBytes(s.cfg.Catalog)
	if err != nil {
		panic(fmt.Sprintf("adversary: sizing validated template: %v", err))
	}
	result, _ := q.ResultBytes(s.cfg.Catalog)
	truth := s.cfg.Truth.BudgetFor(q, scan, result)
	q.Truth = truth
	q.Budget = s.declare(truth)
	return q
}

// pick chooses the template and sub-tenant for the next query, advancing
// the strategy's targeting state.
func (s *Source) pick() (*workload.Template, string) {
	tpls := s.cfg.Templates
	tenant := s.cfg.Tenant
	switch s.cfg.Strategy {
	case FlashCrowd:
		// One hot template per burst; the draw advancing `hot` happens
		// on burst boundaries for twin parity (the honest twin keeps the
		// same hot-template sequence at uniform spacing).
		if s.burstLeft == 0 {
			s.burstLeft = burstSize
			s.hot = s.rng.Intn(len(tpls))
		}
		s.burstLeft--
		return tpls[s.hot], tenant
	case ShardStorm:
		if s.phaseLeft == 0 {
			s.phaseLeft = stormPhase
			s.hot = s.rng.Intn(len(tpls))
		}
		s.phaseLeft--
		sub := fmt.Sprintf("%s-%d", tenant, s.storm%stormTenants)
		s.storm++
		if s.cfg.Honest {
			// The honest twin spreads the same sub-tenants' load across
			// the pool instead of concentrating it.
			return tpls[s.timingRng.Intn(len(tpls))], sub
		}
		return tpls[s.hot], sub
	default:
		// The declaration strategies concentrate moderately on a hot
		// template (freeloading pays where structures are shared) but
		// keep enough spread to exercise many ledger entries.
		if s.next%97 == 0 || s.next == 0 {
			s.hot = s.rng.Intn(len(tpls))
		}
		if s.rng.Float64() < 0.7 {
			return tpls[s.hot], tenant
		}
		return tpls[s.rng.Intn(len(tpls))], tenant
	}
}

// gap draws the next inter-arrival gap.
func (s *Source) gap() time.Duration {
	switch s.cfg.Strategy {
	case FlashCrowd:
		if !s.cfg.Honest {
			if s.burstLeft == burstSize-1 {
				// First query of a burst: the preceding silence restores
				// the long-run rate the honest twin runs at uniformly.
				return time.Duration(burstSize) * (s.cfg.MeanGap - burstGap)
			}
			return burstGap
		}
	case ShardStorm:
		// The storm's lie is concentration, not timing: the twin keeps
		// the same dense cadence.
		return stormGap
	}
	// Exponential arrivals around the mean, floored at 1 ms.
	g := time.Duration(float64(s.cfg.MeanGap) * s.timingRng.ExpFloat64())
	if g < time.Millisecond {
		g = time.Millisecond
	}
	return g
}

// declare turns the truthful budget into the declared one.
func (s *Source) declare(truth budget.Func) budget.Func {
	if s.cfg.Honest {
		return truth
	}
	price, tmax := truthParams(truth)
	switch s.cfg.Strategy {
	case FreeRider:
		bid := price.MulFloat(freeRideFraction)
		if bid <= 0 {
			bid = money.Amount(1)
		}
		return budget.NewStep(bid, tmax)
	case RegretInflater:
		return budget.NewStep(price.MulInt(inflateFactor), inflateTMax)
	case ShapeBluffer:
		return budget.NewConvex(price, tmax, 2)
	default:
		// The behavioral strategies declare truthfully; the lie is in
		// the timing.
		return truth
	}
}

// truthParams recovers the (price, tmax) the truth policy baked into its
// step budget.
func truthParams(truth budget.Func) (money.Amount, time.Duration) {
	tmax := truth.Tmax()
	return truth.At(time.Nanosecond), tmax
}

// Batch appends the next n queries to buf and returns it.
func (s *Source) Batch(n int, buf []*workload.Query) []*workload.Query {
	for i := 0; i < n; i++ {
		buf = append(buf, s.Next())
	}
	return buf
}

// Clock reports the arrival time of the last query produced.
func (s *Source) Clock() time.Duration { return s.clock }

var _ workload.Source = (*Source)(nil)
