package money

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDollars(t *testing.T) {
	tests := []struct {
		in   float64
		want Amount
	}{
		{0, 0},
		{1, Dollar},
		{0.01, Cent},
		{0.000001, MicroDollar},
		{-2.5, -2*Dollar - 500*MilliDollar},
		{1.9999999, 2 * Dollar}, // rounds
		{math.NaN(), 0},
		{math.Inf(1), Max},
		{math.Inf(-1), Min},
		{1e30, Max},
		{-1e30, Min},
	}
	for _, tt := range tests {
		if got := FromDollars(tt.in); got != tt.want {
			t.Errorf("FromDollars(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestDollarsRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 1.25, -3.5, 0.000001, 123456.789012} {
		a := FromDollars(d)
		if got := a.Dollars(); math.Abs(got-d) > 1e-9 {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestAddSaturates(t *testing.T) {
	if got := Max.Add(Dollar); got != Max {
		t.Errorf("Max+1$ = %v, want Max", got)
	}
	if got := Min.Add(-Dollar); got != Min {
		t.Errorf("Min-1$ = %v, want Min", got)
	}
	if got := Dollar.Add(2 * Dollar); got != 3*Dollar {
		t.Errorf("1+2 = %v, want 3", got)
	}
}

func TestSubSaturates(t *testing.T) {
	if got := Min.Sub(Dollar); got != Min {
		t.Errorf("Min-1$ = %v, want Min", got)
	}
	if got := Max.Sub(-Dollar); got != Max {
		t.Errorf("Max-(-1$) = %v, want Max", got)
	}
	if got := Amount(0).Sub(Min); got != Max {
		t.Errorf("0-Min = %v, want Max (saturated)", got)
	}
	if got := FromDollars(5).Sub(FromDollars(3)); got != 2*Dollar {
		t.Errorf("5-3 = %v, want 2", got)
	}
}

func TestAddChecked(t *testing.T) {
	if _, err := Max.AddChecked(1); err != ErrOverflow {
		t.Errorf("expected overflow error, got %v", err)
	}
	got, err := Dollar.AddChecked(Cent)
	if err != nil || got != Dollar+Cent {
		t.Errorf("AddChecked = %v, %v", got, err)
	}
}

func TestMulInt(t *testing.T) {
	tests := []struct {
		a    Amount
		n    int64
		want Amount
	}{
		{Dollar, 3, 3 * Dollar},
		{Dollar, 0, 0},
		{0, 5, 0},
		{Dollar, -2, -2 * Dollar},
		{Max, 2, Max},
		{Min, 2, Min},
		{Max, -2, Min},
	}
	for _, tt := range tests {
		if got := tt.a.MulInt(tt.n); got != tt.want {
			t.Errorf("%v.MulInt(%d) = %v, want %v", tt.a, tt.n, got, tt.want)
		}
	}
}

func TestMulFloat(t *testing.T) {
	if got := Dollar.MulFloat(0.5); got != 500*MilliDollar {
		t.Errorf("1$*0.5 = %v", got)
	}
	if got := Dollar.MulFloat(math.NaN()); got != 0 {
		t.Errorf("NaN factor = %v, want 0", got)
	}
	if got := Max.MulFloat(2); got != Max {
		t.Errorf("Max*2 = %v, want Max", got)
	}
	if got := Max.MulFloat(-2); got != Min {
		t.Errorf("Max*-2 = %v, want Min", got)
	}
}

func TestDivInt(t *testing.T) {
	tests := []struct {
		a    Amount
		n    int64
		want Amount
	}{
		{10, 2, 5},
		{10, 3, 3},
		{11, 2, 6}, // rounds half away
		{-11, 2, -6},
		{11, -2, -6},
		{10, 0, 0}, // divide by zero -> 0 by contract
		{Dollar, 4, 250 * MilliDollar},
	}
	for _, tt := range tests {
		if got := tt.a.DivInt(tt.n); got != tt.want {
			t.Errorf("%d.DivInt(%d) = %d, want %d", tt.a, tt.n, got, tt.want)
		}
	}
}

func TestPredicatesAndNeg(t *testing.T) {
	if !Amount(0).IsZero() || Amount(1).IsZero() {
		t.Error("IsZero wrong")
	}
	if !Amount(-1).IsNegative() || Amount(1).IsNegative() {
		t.Error("IsNegative wrong")
	}
	if !Amount(1).IsPositive() || Amount(-1).IsPositive() {
		t.Error("IsPositive wrong")
	}
	if Amount(5).Neg() != -5 || Amount(-5).Abs() != 5 || Amount(5).Abs() != 5 {
		t.Error("Neg/Abs wrong")
	}
}

func TestCmpMinMax(t *testing.T) {
	if Amount(1).Cmp(2) != -1 || Amount(2).Cmp(1) != 1 || Amount(1).Cmp(1) != 0 {
		t.Error("Cmp wrong")
	}
	if MinAmount(1, 2) != 1 || MaxAmount(1, 2) != 2 {
		t.Error("MinAmount/MaxAmount wrong")
	}
}

func TestSum(t *testing.T) {
	if got := Sum(Dollar, 2*Dollar, -Dollar); got != 2*Dollar {
		t.Errorf("Sum = %v", got)
	}
	if got := Sum(); got != 0 {
		t.Errorf("empty Sum = %v", got)
	}
	if got := Sum(Max, Max); got != Max {
		t.Errorf("Sum saturation = %v", got)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		a    Amount
		want string
	}{
		{0, "$0.00"},
		{Dollar, "$1.00"},
		{Cent, "$0.01"},
		{MicroDollar, "$0.000001"},
		{-350 * Cent, "-$3.50"},
		{12*Dollar + 345678*MicroDollar, "$12.345678"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    Amount
		wantErr bool
	}{
		{"$1.25", Dollar + 25*Cent, false},
		{"1.25", Dollar + 25*Cent, false},
		{"-$0.03", -3 * Cent, false},
		{"3", 3 * Dollar, false},
		{" $2.50 ", 2*Dollar + 50*Cent, false},
		{"$0.000001", MicroDollar, false},
		{"$1.1234567", 0, true}, // too many frac digits
		{"", 0, true},
		{"$", 0, true},
		{"abc", 0, true},
		{"$1.", 0, true},
		{".5", 500 * MilliDollar, false},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, a := range []Amount{0, Dollar, -Dollar, Cent, MicroDollar, 123*Dollar + 456789*MicroDollar} {
		got, err := Parse(a.String())
		if err != nil {
			t.Errorf("Parse(%q) error: %v", a.String(), err)
			continue
		}
		if got != a {
			t.Errorf("round trip %v -> %v", a, got)
		}
	}
}

// Property: Add is commutative and associative within safe range.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(x, y int32) bool {
		a, b := Amount(x), Amount(y)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAssociativeProperty(t *testing.T) {
	f := func(x, y, z int32) bool {
		a, b, c := Amount(x), Amount(y), Amount(z)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub is the inverse of Add within safe range.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(x, y int32) bool {
		a, b := Amount(x), Amount(y)
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DivInt then MulInt differs from original by less than |n|.
func TestDivMulBoundProperty(t *testing.T) {
	f := func(x int32, n int16) bool {
		if n == 0 {
			return true
		}
		a := Amount(x)
		back := a.DivInt(int64(n)).MulInt(int64(n))
		diff := a.Sub(back).Abs()
		limit := Amount(n)
		if limit < 0 {
			limit = -limit
		}
		return diff <= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round trip is the identity.
func TestStringParseRoundTripProperty(t *testing.T) {
	f := func(x int64) bool {
		a := Amount(x % int64(Max/Dollar) * 7) // keep away from extremes
		got, err := Parse(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
