// Package money implements a fixed-point currency type used throughout the
// cloud-cache economy. All amounts are stored as integer micro-dollars
// (1e-6 $) so that account arithmetic is exact and order-independent; the
// economy accumulates millions of tiny charges (per-byte network prices,
// per-second storage rents) and float drift would otherwise change
// investment decisions between runs.
package money

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Amount is a monetary value in micro-dollars. The zero value is $0.
// Amount is deliberately a signed type: the economy tracks both credits
// (user payments) and debits (build costs, maintenance rents).
type Amount int64

// Common unit constants.
const (
	// MicroDollar is the smallest representable amount.
	MicroDollar Amount = 1
	// MilliDollar is one thousandth of a dollar.
	MilliDollar Amount = 1_000
	// Cent is one hundredth of a dollar.
	Cent Amount = 10_000
	// Dollar is one dollar.
	Dollar Amount = 1_000_000
)

// Max and Min are the representable extremes. They are used as saturation
// bounds by the checked arithmetic helpers.
const (
	Max Amount = math.MaxInt64
	Min Amount = math.MinInt64
)

// ErrOverflow is returned by checked arithmetic when the result does not fit
// in an Amount.
var ErrOverflow = errors.New("money: amount overflow")

// FromDollars converts a floating-point dollar value to an Amount, rounding
// half away from zero. It saturates at Max/Min for out-of-range inputs, which
// keeps workload generators safe to feed with arbitrary values.
func FromDollars(d float64) Amount {
	if math.IsNaN(d) {
		return 0
	}
	v := d * float64(Dollar)
	if v >= float64(Max) {
		return Max
	}
	if v <= float64(Min) {
		return Min
	}
	return Amount(math.Round(v))
}

// FromCents converts an integer number of cents into an Amount.
func FromCents(c int64) Amount { return Amount(c) * Cent }

// FromMicros wraps a raw micro-dollar count.
func FromMicros(m int64) Amount { return Amount(m) }

// Dollars reports the amount as a floating-point dollar value. It is intended
// for reporting only; decision logic must stay in integer space.
func (a Amount) Dollars() float64 { return float64(a) / float64(Dollar) }

// Micros reports the raw micro-dollar count.
func (a Amount) Micros() int64 { return int64(a) }

// IsZero reports whether the amount is exactly zero.
func (a Amount) IsZero() bool { return a == 0 }

// IsNegative reports whether the amount is strictly below zero.
func (a Amount) IsNegative() bool { return a < 0 }

// IsPositive reports whether the amount is strictly above zero.
func (a Amount) IsPositive() bool { return a > 0 }

// Neg returns the negated amount.
func (a Amount) Neg() Amount { return -a }

// Abs returns the absolute value of the amount.
func (a Amount) Abs() Amount {
	if a < 0 {
		return -a
	}
	return a
}

// Add returns a+b, saturating at the representable extremes on overflow.
// Saturation (rather than wrapping) means a runaway simulation produces an
// obviously pegged account instead of a sign flip.
func (a Amount) Add(b Amount) Amount {
	s, ok := addChecked(a, b)
	if ok {
		return s
	}
	if a > 0 {
		return Max
	}
	return Min
}

// Sub returns a-b with the same saturation behaviour as Add.
func (a Amount) Sub(b Amount) Amount {
	if b == Min {
		// -Min overflows; handle by adding Max then 1-saturating.
		return a.Add(Max).Add(1)
	}
	return a.Add(-b)
}

// AddChecked returns a+b and an ErrOverflow if the sum is unrepresentable.
func (a Amount) AddChecked(b Amount) (Amount, error) {
	s, ok := addChecked(a, b)
	if !ok {
		return 0, ErrOverflow
	}
	return s, nil
}

func addChecked(a, b Amount) (Amount, bool) {
	s := a + b
	// Overflow iff the operands share a sign that the sum does not.
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// MulInt returns a*n, saturating on overflow.
func (a Amount) MulInt(n int64) Amount {
	if a == 0 || n == 0 {
		return 0
	}
	p := int64(a) * n
	if p/n != int64(a) {
		if (a > 0) == (n > 0) {
			return Max
		}
		return Min
	}
	return Amount(p)
}

// MulFloat scales the amount by a float factor, rounding half away from zero
// and saturating on overflow. Factors come from the cost model (selectivity
// fractions, speedup overheads) where exactness is not required, but the
// result re-enters exact integer space immediately.
func (a Amount) MulFloat(f float64) Amount {
	if math.IsNaN(f) {
		return 0
	}
	v := float64(a) * f
	if v >= float64(Max) {
		return Max
	}
	if v <= float64(Min) {
		return Min
	}
	return Amount(math.Round(v))
}

// DivInt returns a/n rounded half away from zero. Dividing by zero returns 0;
// the economy treats "amortize over zero users" as "no charge yet".
func (a Amount) DivInt(n int64) Amount {
	if n == 0 {
		return 0
	}
	q := int64(a) / n
	r := int64(a) % n
	if r != 0 {
		ar, an := r, n
		if ar < 0 {
			ar = -ar
		}
		if an < 0 {
			an = -an
		}
		if 2*ar >= an { // round half away from zero
			if (a > 0) == (n > 0) {
				q++
			} else {
				q--
			}
		}
	}
	return Amount(q)
}

// Cmp compares two amounts, returning -1, 0 or +1.
func (a Amount) Cmp(b Amount) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// MinAmount returns the smaller of a and b.
func MinAmount(a, b Amount) Amount {
	if a < b {
		return a
	}
	return b
}

// MaxAmount returns the larger of a and b.
func MaxAmount(a, b Amount) Amount {
	if a > b {
		return a
	}
	return b
}

// Sum adds a slice of amounts with saturation.
func Sum(amounts ...Amount) Amount {
	var total Amount
	for _, a := range amounts {
		total = total.Add(a)
	}
	return total
}

// String renders the amount as a dollar string such as "$12.345678" with
// trailing zeros trimmed to cent precision, e.g. "$12.34", "$0.000001",
// "-$3.50".
func (a Amount) String() string {
	neg := a < 0
	v := a
	if neg {
		v = -v
	}
	whole := int64(v) / int64(Dollar)
	frac := int64(v) % int64(Dollar)
	s := fmt.Sprintf("%d.%06d", whole, frac)
	// Trim trailing zeros but keep at least two decimals.
	for strings.HasSuffix(s, "0") && !strings.HasSuffix(s, ".00") {
		trimmed := s[:len(s)-1]
		if dot := strings.IndexByte(trimmed, '.'); len(trimmed)-dot-1 < 2 {
			break
		}
		s = trimmed
	}
	if neg {
		return "-$" + s
	}
	return "$" + s
}

// Parse parses strings of the form "$1.25", "-$0.03", "1.25", "3" into an
// Amount. At most six fractional digits are honoured; extra digits are an
// error rather than silently truncated.
func Parse(s string) (Amount, error) {
	orig := s
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	s = strings.TrimPrefix(s, "$")
	if s == "" {
		return 0, fmt.Errorf("money: cannot parse %q", orig)
	}
	wholeStr, fracStr, hasFrac := strings.Cut(s, ".")
	if wholeStr == "" {
		wholeStr = "0"
	}
	whole, err := strconv.ParseInt(wholeStr, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("money: cannot parse %q: %v", orig, err)
	}
	var frac int64
	if hasFrac {
		if fracStr == "" || len(fracStr) > 6 {
			return 0, fmt.Errorf("money: cannot parse %q: fractional part must have 1-6 digits", orig)
		}
		frac, err = strconv.ParseInt(fracStr, 10, 64)
		if err != nil || frac < 0 {
			return 0, fmt.Errorf("money: cannot parse %q: bad fractional part", orig)
		}
		for i := len(fracStr); i < 6; i++ {
			frac *= 10
		}
	}
	if whole > int64(Max)/int64(Dollar)-1 {
		return 0, ErrOverflow
	}
	v := Amount(whole)*Dollar + Amount(frac)
	if neg {
		v = -v
	}
	return v, nil
}
