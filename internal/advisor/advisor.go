// Package advisor generates the candidate index pool for a workload,
// emulating the DB2 "recommend indexes" advisor the paper uses: "We use 65
// potentially useful indexes from DB2's recommend indexes mode
// recommendations" (§VII-A).
//
// Candidates are derived purely from the templates: every index a template
// names, every prefix of a multi-column candidate (a DB2 advisor always
// recommends leading-prefix variants), and optionally the pairwise
// combinations of a template's indexable columns per table.
package advisor

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Options control pool generation.
type Options struct {
	// IncludePrefixes adds every leading prefix of each multi-column
	// candidate.
	IncludePrefixes bool
	// IncludePairs adds (a,b) composites for each ordered pair of
	// distinct columns that appear in some candidate of the same table
	// within one template.
	IncludePairs bool
	// IncludeScanSingles adds a single-column index on every column a
	// template scans, except single-byte flag columns (an advisor does
	// not recommend an index on a char(1) flag). Requires a Catalog.
	IncludeScanSingles bool
	// Catalog resolves column types for IncludeScanSingles; the type
	// layout is scale-independent so any scale factor works.
	Catalog *catalog.Catalog
	// MaxWidth caps index width in columns (0 = unlimited).
	MaxWidth int
}

// DefaultOptions matches the paper pool: prefixes, pairs and scan singles
// enabled, indexes capped at three columns. With PaperTemplates this yields
// exactly the 65 candidates of §VII-A.
func DefaultOptions() Options {
	return Options{
		IncludePrefixes:    true,
		IncludePairs:       true,
		IncludeScanSingles: true,
		Catalog:            catalog.TPCH(1),
		MaxWidth:           3,
	}
}

// Pool is a deduplicated, deterministically ordered set of index candidates.
type Pool struct {
	defs []catalog.IndexDef
	ids  map[structure.ID]int
}

// Generate builds the candidate pool for the templates.
func Generate(templates []*workload.Template, opts Options) *Pool {
	p := &Pool{ids: make(map[structure.ID]int)}
	for _, tpl := range templates {
		perTableCols := make(map[string][]string)
		for _, def := range tpl.IndexCandidates {
			p.add(def, opts)
			if opts.IncludePrefixes {
				for w := 1; w < len(def.Columns); w++ {
					p.add(catalog.IndexDef{Table: def.Table, Columns: def.Columns[:w]}, opts)
				}
			}
			for _, col := range def.Columns {
				if !containsStr(perTableCols[def.Table], col) {
					perTableCols[def.Table] = append(perTableCols[def.Table], col)
				}
			}
		}
		if opts.IncludePairs {
			for table, cols := range perTableCols {
				for i := 0; i < len(cols); i++ {
					for j := 0; j < len(cols); j++ {
						if i == j {
							continue
						}
						p.add(catalog.IndexDef{Table: table, Columns: []string{cols[i], cols[j]}}, opts)
					}
				}
			}
		}
		if opts.IncludeScanSingles && opts.Catalog != nil {
			for _, ref := range tpl.Columns {
				if col, err := opts.Catalog.Resolve(ref); err == nil && col.Type == catalog.Char1 {
					continue
				}
				p.add(catalog.IndexDef{Table: ref.Table, Columns: []string{ref.Column}}, opts)
			}
		}
	}
	p.sort()
	return p
}

// add inserts a candidate if new and within the width cap.
func (p *Pool) add(def catalog.IndexDef, opts Options) {
	if len(def.Columns) == 0 {
		return
	}
	if opts.MaxWidth > 0 && len(def.Columns) > opts.MaxWidth {
		return
	}
	// Copy columns so later slicing of the source cannot alias.
	cols := make([]string, len(def.Columns))
	copy(cols, def.Columns)
	def = catalog.IndexDef{Table: def.Table, Columns: cols}
	id := structure.IndexID(def)
	if _, ok := p.ids[id]; ok {
		return
	}
	p.ids[id] = len(p.defs)
	p.defs = append(p.defs, def)
}

// sort orders the pool by index name for deterministic iteration and
// rebuilds the id map.
func (p *Pool) sort() {
	sort.Slice(p.defs, func(i, j int) bool { return p.defs[i].Name() < p.defs[j].Name() })
	for i, def := range p.defs {
		p.ids[structure.IndexID(def)] = i
	}
}

// Len returns the number of candidates.
func (p *Pool) Len() int { return len(p.defs) }

// Defs returns the candidates in deterministic order. The slice is shared;
// callers must not mutate it.
func (p *Pool) Defs() []catalog.IndexDef { return p.defs }

// Contains reports whether an index is in the pool.
func (p *Pool) Contains(id structure.ID) bool {
	_, ok := p.ids[id]
	return ok
}

// Validate checks every candidate against the catalog.
func (p *Pool) Validate(c *catalog.Catalog) error {
	for _, def := range p.defs {
		if err := def.Validate(c); err != nil {
			return err
		}
	}
	return nil
}

// PaperPool is the pool used by the paper-figure experiments: the seven
// TPC-H templates expanded with default options.
func PaperPool() *Pool {
	return Generate(workload.PaperTemplates(), DefaultOptions())
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
