package advisor

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/structure"
	"repro/internal/workload"
)

func TestPaperPoolHas65Indexes(t *testing.T) {
	p := PaperPool()
	if got := p.Len(); got != 65 {
		t.Fatalf("paper pool size = %d, want 65 (§VII-A)", got)
	}
}

func TestPaperPoolValidates(t *testing.T) {
	p := PaperPool()
	if err := p.Validate(catalog.TPCH(1)); err != nil {
		t.Fatalf("pool invalid: %v", err)
	}
	if err := p.Validate(catalog.Paper()); err != nil {
		t.Fatalf("pool invalid at paper scale: %v", err)
	}
}

func TestPoolDeterministicOrder(t *testing.T) {
	a, b := PaperPool(), PaperPool()
	if a.Len() != b.Len() {
		t.Fatal("pool sizes differ across runs")
	}
	for i := range a.Defs() {
		if a.Defs()[i].Name() != b.Defs()[i].Name() {
			t.Fatalf("order differs at %d", i)
		}
	}
	// Sorted by name.
	defs := a.Defs()
	for i := 1; i < len(defs); i++ {
		if defs[i-1].Name() >= defs[i].Name() {
			t.Fatalf("pool not sorted at %d: %s >= %s", i, defs[i-1].Name(), defs[i].Name())
		}
	}
}

func TestPoolNoDuplicates(t *testing.T) {
	p := PaperPool()
	seen := map[string]bool{}
	for _, def := range p.Defs() {
		if seen[def.Name()] {
			t.Fatalf("duplicate %s", def.Name())
		}
		seen[def.Name()] = true
	}
}

func TestPoolContains(t *testing.T) {
	p := PaperPool()
	// Every template's first candidate must be present.
	for _, tpl := range workload.PaperTemplates() {
		id := structure.IndexID(tpl.IndexCandidates[0])
		if !p.Contains(id) {
			t.Errorf("pool missing template candidate %s", id)
		}
	}
	if p.Contains("idx_bogus(x)") {
		t.Error("phantom candidate")
	}
}

func TestPrefixesIncluded(t *testing.T) {
	p := PaperPool()
	// Q1's widest candidate (l_shipdate, l_returnflag, l_linestatus)
	// must have its prefixes in the pool.
	for _, def := range []catalog.IndexDef{
		{Table: "lineitem", Columns: []string{"l_shipdate"}},
		{Table: "lineitem", Columns: []string{"l_shipdate", "l_returnflag"}},
	} {
		if !p.Contains(structure.IndexID(def)) {
			t.Errorf("prefix %s missing", def.Name())
		}
	}
}

func TestScanSinglesSkipFlagColumns(t *testing.T) {
	p := PaperPool()
	// l_linestatus is a char(1) flag scanned by Q1 but never an explicit
	// candidate: scan-single generation must skip it.
	def := catalog.IndexDef{Table: "lineitem", Columns: []string{"l_linestatus"}}
	if p.Contains(structure.IndexID(def)) {
		t.Error("char(1) flag column got a generated single-column index")
	}
	// A scanned non-flag column without an explicit candidate is present.
	def = catalog.IndexDef{Table: "lineitem", Columns: []string{"l_extendedprice"}}
	if !p.Contains(structure.IndexID(def)) {
		t.Error("scan single missing for l_extendedprice")
	}
}

func TestMaxWidthCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxWidth = 1
	p := Generate(workload.PaperTemplates(), opts)
	for _, def := range p.Defs() {
		if len(def.Columns) > 1 {
			t.Fatalf("width cap violated: %s", def.Name())
		}
	}
	if p.Len() == 0 {
		t.Fatal("cap removed everything")
	}
}

func TestBareOptions(t *testing.T) {
	// Only explicit candidates, no expansion.
	p := Generate(workload.PaperTemplates(), Options{})
	explicit := map[string]bool{}
	for _, tpl := range workload.PaperTemplates() {
		for _, def := range tpl.IndexCandidates {
			explicit[def.Name()] = true
		}
	}
	if p.Len() != len(explicit) {
		t.Errorf("bare pool = %d, want %d explicit candidates", p.Len(), len(explicit))
	}
}

func TestGenerateEmptyTemplates(t *testing.T) {
	p := Generate(nil, DefaultOptions())
	if p.Len() != 0 {
		t.Error("empty templates should make an empty pool")
	}
	if p.Contains("anything") {
		t.Error("empty pool contains things")
	}
}
