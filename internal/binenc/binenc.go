// Package binenc holds the binary codec primitives shared by the wire
// protocol (internal/server/wire) and the state-snapshot format
// (internal/persist): varint-prefixed strings, IEEE-754 doubles and
// bounds-checked consumption that fails with an error — never a panic,
// never an out-of-range read — on truncated or hostile input. One
// implementation means one place to get the bounds checks right; both
// fuzz targets (FuzzWireDecode, FuzzSnapshotDecode) hammer it.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendF64 appends an IEEE-754 double, little endian.
func AppendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendU64 appends a fixed-width uint64, little endian.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Uvarint consumes a uvarint.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("binenc: bad uvarint")
	}
	return v, b[n:], nil
}

// Varint consumes a varint.
func Varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("binenc: bad varint")
	}
	return v, b[n:], nil
}

// String consumes a length-prefixed string, validating the length
// against the bytes that remain.
func String(b []byte) (string, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(b)) {
		return "", nil, fmt.Errorf("binenc: string length %d overruns input", n)
	}
	return string(b[:n]), b[n:], nil
}

// Bytes consumes a length-prefixed string but returns the raw sub-slice
// of the input instead of allocating a string. The slice aliases the
// input buffer and is valid only as long as the buffer is; callers that
// need the value past the buffer's lifetime must copy (or intern) it.
func Bytes(b []byte) ([]byte, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("binenc: string length %d overruns input", n)
	}
	return b[:n], b[n:], nil
}

// F64 consumes an IEEE-754 double.
func F64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("binenc: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// U64 consumes a fixed-width uint64.
func U64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("binenc: truncated uint64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// Byte consumes one byte.
func Byte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, fmt.Errorf("binenc: truncated byte")
	}
	return b[0], b[1:], nil
}
