package cost

import (
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/pricing"
	"repro/internal/workload"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(catalog.TPCH(10), pricing.EC22008(), DefaultTunables())
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func testQuery(t *testing.T, tplIdx int, sel float64) *workload.Query {
	t.Helper()
	tpl := workload.PaperTemplates()[tplIdx]
	if sel < tpl.SelMin {
		sel = tpl.SelMin
	}
	return &workload.Query{ID: 1, Template: tpl, Selectivity: sel}
}

func TestNewModelValidation(t *testing.T) {
	cat, sched := catalog.TPCH(1), pricing.EC22008()
	if _, err := NewModel(nil, sched, DefaultTunables()); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewModel(cat, nil, DefaultTunables()); err == nil {
		t.Error("nil schedule accepted")
	}
	bad := sched.Clone()
	bad.NetworkThroughput = 0
	if _, err := NewModel(cat, bad, DefaultTunables()); err == nil {
		t.Error("invalid schedule accepted")
	}
	badTun := DefaultTunables()
	badTun.MaxNodes = 0
	if _, err := NewModel(cat, sched, badTun); err == nil {
		t.Error("invalid tunables accepted")
	}
}

func TestTunablesValidate(t *testing.T) {
	mut := func(f func(*Tunables)) Tunables {
		tun := DefaultTunables()
		f(&tun)
		return tun
	}
	bad := []Tunables{
		mut(func(x *Tunables) { x.BytesPerCostUnit = 0 }),
		mut(func(x *Tunables) { x.PageSize = 0 }),
		mut(func(x *Tunables) { x.RowStoreFactor = 0.5 }),
		mut(func(x *Tunables) { x.SortFactor = 0 }),
		mut(func(x *Tunables) { x.SpeedupPerExtraNode = -1 }),
		mut(func(x *Tunables) { x.OverheadPerExtraNode = -1 }),
		mut(func(x *Tunables) { x.MaxNodes = 0 }),
		mut(func(x *Tunables) { x.IndexProbeCPUSeconds = -1 }),
	}
	for i, tun := range bad {
		if err := tun.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultTunables().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestPaperScalingLaw(t *testing.T) {
	m := testModel(t)
	// "a query can be sped up 2x using only 25% extra CPU overhead using
	// 3 CPU nodes in parallel" [17].
	if got := m.Speedup(3); got != 2.0 {
		t.Errorf("Speedup(3) = %v, want 2", got)
	}
	if got := m.Overhead(3); got != 1.25 {
		t.Errorf("Overhead(3) = %v, want 1.25", got)
	}
	if m.Speedup(1) != 1 || m.Overhead(1) != 1 {
		t.Error("single node must be the identity")
	}
	if m.Speedup(0) != 1 || m.Overhead(-1) != 1 {
		t.Error("degenerate node counts must be the identity")
	}
}

func TestCacheExecScalesWithSelectivity(t *testing.T) {
	m := testModel(t)
	small, err := m.CacheExec(testQuery(t, 0, 2e-3), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.CacheExec(testQuery(t, 0, 7e-3), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Time >= big.Time {
		t.Errorf("time: %v !< %v", small.Time, big.Time)
	}
	if small.Usage.CPUSeconds >= big.Usage.CPUSeconds {
		t.Error("cpu should grow with selectivity")
	}
	if small.Usage.IOOps >= big.Usage.IOOps {
		t.Error("io should grow with selectivity")
	}
	if small.Usage.NetBytes != 0 {
		t.Error("cache execution must not touch the WAN")
	}
}

func TestCacheExecIndexFaster(t *testing.T) {
	m := testModel(t)
	q := testQuery(t, 3, 9.6e-3) // Q6 at max selectivity, IndexSelectivity 0.12
	noIdx, _ := m.CacheExec(q, false, 1)
	idx, _ := m.CacheExec(q, true, 1)
	if idx.Time >= noIdx.Time {
		t.Errorf("index exec %v not faster than scan %v", idx.Time, noIdx.Time)
	}
	ratio := idx.Time.Seconds() / noIdx.Time.Seconds()
	if ratio > 0.3 { // 0.12 selectivity + probe overhead
		t.Errorf("index time ratio %.3f, want < 0.3", ratio)
	}
}

func TestCacheExecParallel(t *testing.T) {
	m := testModel(t)
	q := testQuery(t, 0, 5e-4) // Q1 is parallelizable
	one, _ := m.CacheExec(q, false, 1)
	three, _ := m.CacheExec(q, false, 3)
	// 2x faster.
	if r := one.Time.Seconds() / three.Time.Seconds(); math.Abs(r-2) > 0.01 {
		t.Errorf("3-node speedup = %.3f, want 2", r)
	}
	// 25% more CPU.
	if r := three.Usage.CPUSeconds / one.Usage.CPUSeconds; math.Abs(r-1.25) > 0.01 {
		t.Errorf("3-node overhead = %.3f, want 1.25", r)
	}
	// Clamped to MaxNodes.
	ten, _ := m.CacheExec(q, false, 10)
	if ten.Time != three.Time {
		t.Error("nodes beyond MaxNodes must clamp")
	}
}

func TestCacheExecNonParallelizableIgnoresNodes(t *testing.T) {
	m := testModel(t)
	q := testQuery(t, 4, 3e-4) // Q10 is not parallelizable
	one, _ := m.CacheExec(q, false, 1)
	three, _ := m.CacheExec(q, false, 3)
	if one.Time != three.Time || one.Usage.CPUSeconds != three.Usage.CPUSeconds {
		t.Error("non-parallelizable template must ignore extra nodes")
	}
}

func TestBackendExecSlowerAndShipsResult(t *testing.T) {
	m := testModel(t)
	q := testQuery(t, 0, 5e-4)
	cacheOut, _ := m.CacheExec(q, false, 1)
	backOut, err := m.BackendExec(q)
	if err != nil {
		t.Fatal(err)
	}
	if backOut.Time <= cacheOut.Time {
		t.Errorf("backend %v should be slower than cache %v", backOut.Time, cacheOut.Time)
	}
	res, _ := q.ResultBytes(m.Catalog())
	if backOut.Usage.NetBytes != res {
		t.Errorf("NetBytes = %d, want result size %d", backOut.Usage.NetBytes, res)
	}
	// Transfer time is part of response time.
	transfer := m.Schedule().TransferTime(res)
	if backOut.Time < transfer {
		t.Error("backend time must include the transfer")
	}
}

func TestBuildColumn(t *testing.T) {
	m := testModel(t)
	ref := catalog.Col("lineitem", "l_shipdate")
	out, err := m.BuildColumn(ref)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := m.Catalog().ColumnBytes(ref)
	if out.Usage.NetBytes != size {
		t.Errorf("NetBytes = %d, want %d", out.Usage.NetBytes, size)
	}
	want := m.Schedule().TransferTime(size)
	if out.Time != want {
		t.Errorf("Time = %v, want %v", out.Time, want)
	}
	// fn=1: CPU burned equals transfer seconds.
	if math.Abs(out.Usage.CPUSeconds-want.Seconds()) > 1e-9 {
		t.Errorf("CPUSeconds = %v, want %v", out.Usage.CPUSeconds, want.Seconds())
	}
	if _, err := m.BuildColumn(catalog.Col("zz", "y")); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestBuildIndexIncludesMissingColumns(t *testing.T) {
	m := testModel(t)
	def := catalog.IndexDef{Table: "lineitem", Columns: []string{"l_shipdate", "l_discount"}}
	// No columns cached: build must ship both columns.
	noneCached, err := m.BuildIndex(def, func(catalog.ColumnRef) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	allCached, err := m.BuildIndex(def, func(catalog.ColumnRef) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if noneCached.Usage.NetBytes <= allCached.Usage.NetBytes {
		t.Error("missing columns must add transfer bytes")
	}
	if allCached.Usage.NetBytes != 0 {
		t.Error("fully cached index build must not touch the WAN")
	}
	if noneCached.Time <= allCached.Time {
		t.Error("missing columns must add build time")
	}
	// Sort CPU is charged either way.
	if allCached.Usage.CPUSeconds <= 0 {
		t.Error("sort CPU missing")
	}
	// nil predicate behaves as nothing-cached.
	nilPred, err := m.BuildIndex(def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nilPred.Usage.NetBytes != noneCached.Usage.NetBytes {
		t.Error("nil predicate should mean nothing cached")
	}
	if _, err := m.BuildIndex(catalog.IndexDef{Table: "zz"}, nil); err == nil {
		t.Error("bad index accepted")
	}
}

func TestBuildCPUNode(t *testing.T) {
	m := testModel(t)
	out := m.BuildCPUNode()
	if out.Time != m.Schedule().BootTime {
		t.Errorf("Time = %v, want boot time", out.Time)
	}
	if out.Usage.Boots != 1 {
		t.Errorf("Boots = %d", out.Usage.Boots)
	}
}

func TestMaintCost(t *testing.T) {
	m := testModel(t)
	// CPU node: one hour of rent = $0.10.
	if got := m.MaintCost(true, 0, time.Hour); got != m.Schedule().CPUCost(time.Hour, 1) {
		t.Errorf("cpu maintenance = %v", got)
	}
	// Column: a GiB-month = $0.15.
	month := 30 * 24 * time.Hour
	if got := m.MaintCost(false, 1<<30, month); got != m.Schedule().StorageCost(1<<30, month) {
		t.Errorf("storage maintenance = %v", got)
	}
	if got := m.MaintCost(false, 1<<30, 0); got != 0 {
		t.Errorf("zero duration = %v", got)
	}
}

func TestPriceUsage(t *testing.T) {
	s := pricing.EC22008()
	u := Usage{CPUSeconds: 3600, IOOps: 1_000_000, NetBytes: 1 << 30, Boots: 1}
	got := Price(s, u)
	want := s.CPUCost(time.Hour, 1).
		Add(s.IOCost(1_000_000)).
		Add(s.TransferCost(1 << 30)).
		Add(s.BootCost())
	if got != want {
		t.Errorf("Price = %v, want %v", got, want)
	}
	if Price(s, Usage{}) != 0 {
		t.Error("empty usage should be free")
	}
}

func TestUsageAdd(t *testing.T) {
	u := Usage{CPUSeconds: 1, IOOps: 2, NetBytes: 3, Boots: 1}
	u.Add(Usage{CPUSeconds: 0.5, IOOps: 1, NetBytes: 4, Boots: 2})
	if u.CPUSeconds != 1.5 || u.IOOps != 3 || u.NetBytes != 7 || u.Boots != 3 {
		t.Errorf("Add = %+v", u)
	}
}

func TestNetOnlyModelPricesOnlyNetwork(t *testing.T) {
	m, err := NewModel(catalog.TPCH(10), pricing.NetOnly(), DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery(t, 0, 5e-4)
	cacheOut, _ := m.CacheExec(q, false, 1)
	if Price(m.Schedule(), cacheOut.Usage) != 0 {
		t.Error("net-only cache execution must be free (no WAN bytes)")
	}
	backOut, _ := m.BackendExec(q)
	if Price(m.Schedule(), backOut.Usage) == 0 {
		t.Error("net-only backend execution must price the transfer")
	}
}

func TestResponseTimeInPaperBand(t *testing.T) {
	// With the 2.5 TB catalog and paper calibration, typical cache scans
	// should land in the 1-10 s band of Fig. 5 and back-end executions
	// above them.
	m, err := NewModel(catalog.Paper(), pricing.EC22008(), DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	for _, tpl := range workload.PaperTemplates() {
		mid := (tpl.SelMin + tpl.SelMax) / 2
		q := &workload.Query{Template: tpl, Selectivity: mid}
		out, err := m.CacheExec(q, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Time < 200*time.Millisecond || out.Time > 30*time.Second {
			t.Errorf("%s cache scan = %v, outside the plausible band", tpl.Name, out.Time)
		}
		back, _ := m.BackendExec(q)
		if back.Time <= out.Time {
			t.Errorf("%s backend %v not slower than cache %v", tpl.Name, back.Time, out.Time)
		}
	}
}
