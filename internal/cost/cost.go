// Package cost implements the paper's cost model (§IV-D, §V): execution
// cost of cache and back-end plans (Eq. 8–9), build and maintenance cost of
// the three structure kinds (Eq. 10–15), and the parallel-scaling law of
// [17] ("a query can be sped up 2x using only 25% extra CPU overhead using
// 3 CPU nodes in parallel").
//
// The model deliberately splits *physical resource usage* from *prices*:
// a scheme decides with its own price schedule (the bypass baseline prices
// only the network), while the simulator accounts every scheme's true
// expenditure with the real schedule. Usage is the shared physical truth.
package cost

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// Usage is the physical resource consumption of one action (query execution
// or structure build). Storage rent is not part of Usage: it accrues with
// wall-clock time and is accounted by the cache, not per action.
type Usage struct {
	// CPUSeconds is total CPU time across all nodes involved.
	CPUSeconds float64
	// IOOps is the number of physical I/O operations.
	IOOps int64
	// NetBytes is the number of bytes moved across the WAN.
	NetBytes int64
	// Boots counts CPU-node boot events.
	Boots int
}

// Add accumulates another usage record.
func (u *Usage) Add(v Usage) {
	u.CPUSeconds += v.CPUSeconds
	u.IOOps += v.IOOps
	u.NetBytes += v.NetBytes
	u.Boots += v.Boots
}

// Price converts a usage record into money under a schedule. Boot events are
// priced as BootTime of CPU (Eq. 10).
func Price(s *pricing.Schedule, u Usage) money.Amount {
	total := s.CPUCost(time.Duration(u.CPUSeconds*float64(time.Second)), 1)
	total = total.Add(s.IOCost(u.IOOps))
	total = total.Add(s.TransferCost(u.NetBytes))
	if u.Boots > 0 {
		total = total.Add(s.BootCost().MulInt(int64(u.Boots)))
	}
	return total
}

// Outcome is the result of costing one action: how long it takes and what
// it consumes.
type Outcome struct {
	Time  time.Duration
	Usage Usage
}

// Tunables are the calibration constants that connect bytes to optimizer
// cost units. They are exported so ablations can perturb them.
type Tunables struct {
	// BytesPerCostUnit converts scanned bytes to the optimizer's qtot
	// cost units of Eq. 8. With the paper's fcpu=0.014 and 8 MiB per
	// unit, a 4 GB scan costs 7 s of CPU — the Fig. 5 regime.
	BytesPerCostUnit float64
	// PageSize converts scanned bytes to I/O operations (iotot).
	PageSize int64
	// RowStoreFactor inflates back-end scans relative to the columnar
	// cache: the back-end row store reads whole rows where the cache
	// reads only the referenced columns.
	RowStoreFactor float64
	// SortFactor inflates the CPU of index construction relative to a
	// plain scan of the indexed columns (§V-C approximates index build
	// by an ORDER BY query).
	SortFactor float64
	// SpeedupPerExtraNode is the marginal speedup slope: time(k) =
	// t1/(1+slope·(k-1)). The paper's law (2× at 3 nodes) gives 0.5.
	SpeedupPerExtraNode float64
	// OverheadPerExtraNode is the marginal CPU overhead slope:
	// cpu(k) = cpu1·(1+slope·(k-1)). The paper's 25 % at 3 nodes
	// gives 0.125.
	OverheadPerExtraNode float64
	// MaxNodes caps the parallelism the optimizer considers.
	MaxNodes int
	// IndexProbeCPUSeconds is the fixed CPU cost of descending an index.
	IndexProbeCPUSeconds float64
}

// DefaultTunables returns the calibration used for the paper-figure
// experiments.
func DefaultTunables() Tunables {
	return Tunables{
		BytesPerCostUnit:     8 << 20,  // 8 MiB per cost unit
		PageSize:             64 << 10, // 64 KiB extents: the unit EBS billed an I/O at
		RowStoreFactor:       3.0,
		SortFactor:           3.0,
		SpeedupPerExtraNode:  0.5,
		OverheadPerExtraNode: 0.125,
		MaxNodes:             3,
		IndexProbeCPUSeconds: 0.002,
	}
}

// Validate checks the tunables.
func (t Tunables) Validate() error {
	if t.BytesPerCostUnit <= 0 || t.PageSize <= 0 {
		return fmt.Errorf("cost: byte/page units must be positive")
	}
	if t.RowStoreFactor < 1 || t.SortFactor < 1 {
		return fmt.Errorf("cost: row-store and sort factors must be >= 1")
	}
	if t.SpeedupPerExtraNode < 0 || t.OverheadPerExtraNode < 0 {
		return fmt.Errorf("cost: scaling slopes must be >= 0")
	}
	if t.MaxNodes < 1 {
		return fmt.Errorf("cost: MaxNodes must be >= 1")
	}
	if t.IndexProbeCPUSeconds < 0 {
		return fmt.Errorf("cost: index probe cost must be >= 0")
	}
	return nil
}

// Model prices queries and structures against one schedule. A Model is
// immutable and safe for concurrent use.
type Model struct {
	cat   *catalog.Catalog
	sched *pricing.Schedule
	tun   Tunables
}

// NewModel builds a cost model.
func NewModel(cat *catalog.Catalog, sched *pricing.Schedule, tun Tunables) (*Model, error) {
	if cat == nil {
		return nil, fmt.Errorf("cost: catalog is required")
	}
	if sched == nil {
		return nil, fmt.Errorf("cost: schedule is required")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	return &Model{cat: cat, sched: sched, tun: tun}, nil
}

// Catalog returns the catalog the model sizes against.
func (m *Model) Catalog() *catalog.Catalog { return m.cat }

// Schedule returns the model's price schedule.
func (m *Model) Schedule() *pricing.Schedule { return m.sched }

// Tunables returns the calibration constants.
func (m *Model) Tunables() Tunables { return m.tun }

// Speedup returns the parallel time-reduction factor for k nodes:
// time(k) = time(1)/Speedup(k). Speedup(3) == 2 with default tunables.
func (m *Model) Speedup(nodes int) float64 {
	if nodes <= 1 {
		return 1
	}
	return 1 + m.tun.SpeedupPerExtraNode*float64(nodes-1)
}

// Overhead returns the CPU inflation factor for k nodes:
// cpu(k) = cpu(1)·Overhead(k). Overhead(3) == 1.25 with default tunables.
func (m *Model) Overhead(nodes int) float64 {
	if nodes <= 1 {
		return 1
	}
	return 1 + m.tun.OverheadPerExtraNode*float64(nodes-1)
}

// scanOutcome is the common Eq. 8 machinery: scanning `bytes` on `nodes`
// parallel CPU nodes.
func (m *Model) scanOutcome(bytes int64, nodes int) Outcome {
	if bytes < 0 {
		bytes = 0
	}
	qtot := float64(bytes) / m.tun.BytesPerCostUnit
	baseCPU := m.sched.LCPU * m.sched.FCPU * qtot // seconds on one node
	elapsed := baseCPU / m.Speedup(nodes)
	cpuSeconds := baseCPU * m.Overhead(nodes)
	ioOps := int64(float64(bytes/m.tun.PageSize) * m.sched.FIO)
	return Outcome{
		Time: time.Duration(elapsed * float64(time.Second)),
		Usage: Usage{
			CPUSeconds: cpuSeconds,
			IOOps:      ioOps,
		},
	}
}

// CacheExec is Eq. 8: the cost of running the query completely in the cache,
// optionally through a useful index, on `nodes` CPU nodes. Non-parallelizable
// templates ignore extra nodes.
func (m *Model) CacheExec(q *workload.Query, useIndex bool, nodes int) (Outcome, error) {
	if nodes < 1 {
		nodes = 1
	}
	if nodes > m.tun.MaxNodes {
		nodes = m.tun.MaxNodes
	}
	if !q.Template.Parallelizable {
		nodes = 1
	}
	var bytes int64
	var err error
	if useIndex {
		bytes, err = q.IndexScanBytes(m.cat)
	} else {
		bytes, err = q.ScanBytes(m.cat)
	}
	if err != nil {
		return Outcome{}, err
	}
	out := m.scanOutcome(bytes, nodes)
	if useIndex {
		out.Usage.CPUSeconds += m.tun.IndexProbeCPUSeconds
		out.Time += time.Duration(m.tun.IndexProbeCPUSeconds * float64(time.Second))
	}
	return out, nil
}

// BackendExec is Eq. 9: the query runs completely in the back-end database
// (a row store, hence RowStoreFactor) and the result is shipped to the
// cache over the WAN. The transfer burns fn of a CPU while in flight.
func (m *Model) BackendExec(q *workload.Query) (Outcome, error) {
	scan, err := q.ScanBytes(m.cat)
	if err != nil {
		return Outcome{}, err
	}
	result, err := q.ResultBytes(m.cat)
	if err != nil {
		return Outcome{}, err
	}
	rowBytes := int64(float64(scan) * m.tun.RowStoreFactor)
	out := m.scanOutcome(rowBytes, 1)
	transfer := m.sched.TransferTime(result)
	out.Time += transfer
	out.Usage.CPUSeconds += m.sched.FNet * transfer.Seconds()
	out.Usage.NetBytes += result
	return out, nil
}

// BuildColumn is Eq. 12: transferring one column from the back-end into the
// cache. The build occupies the WAN for the transfer time and burns fn CPU.
func (m *Model) BuildColumn(ref catalog.ColumnRef) (Outcome, error) {
	size, err := m.cat.ColumnBytes(ref)
	if err != nil {
		return Outcome{}, err
	}
	transfer := m.sched.TransferTime(size)
	return Outcome{
		Time: transfer,
		Usage: Usage{
			CPUSeconds: m.sched.FNet * transfer.Seconds(),
			NetBytes:   size,
		},
	}, nil
}

// BuildIndex is Eq. 14: the cost of sorting the indexed columns in the
// cache (approximated by the ORDER-BY query of §V-C), plus BuildColumn for
// every indexed column not already cached. The caller passes a predicate
// reporting cache residency so the model stays stateless.
func (m *Model) BuildIndex(def catalog.IndexDef, cached func(catalog.ColumnRef) bool) (Outcome, error) {
	if err := def.Validate(m.cat); err != nil {
		return Outcome{}, err
	}
	// Iterate the column names directly — def.Refs() allocates a fresh
	// slice, and this sits on the per-query enumeration path (pricing
	// missing index candidates).
	var keyBytes int64
	for _, col := range def.Columns {
		b, err := m.cat.ColumnBytes(catalog.Col(def.Table, col))
		if err != nil {
			return Outcome{}, err
		}
		keyBytes += b
	}
	sortBytes := int64(float64(keyBytes) * m.tun.SortFactor)
	out := m.scanOutcome(sortBytes, 1)
	for _, col := range def.Columns {
		ref := catalog.Col(def.Table, col)
		if cached != nil && cached(ref) {
			continue
		}
		col, err := m.BuildColumn(ref)
		if err != nil {
			return Outcome{}, err
		}
		out.Usage.Add(col.Usage)
		out.Time += col.Time
	}
	return out, nil
}

// BuildCPUNode is Eq. 10: booting one node takes BootTime and costs b·u.
func (m *Model) BuildCPUNode() Outcome {
	return Outcome{
		Time:  m.sched.BootTime,
		Usage: Usage{Boots: 1},
	}
}

// MaintCost returns the maintenance rent of a structure held for duration d:
// Eq. 11 for CPU nodes (c per unit time), Eq. 13/15 for columns and indexes
// (size·cd). Rent is priced over the whole duration rather than per second
// because per-second storage rents round below the money resolution.
func (m *Model) MaintCost(kindIsCPU bool, bytes int64, d time.Duration) money.Amount {
	if d <= 0 {
		return 0
	}
	if kindIsCPU {
		return m.sched.CPUCost(d, 1)
	}
	return m.sched.StorageCost(bytes, d)
}
