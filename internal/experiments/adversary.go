package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AdversaryComparison measures how much each hostile strategy actually
// pays: every strategy runs head-to-head against its honest twin — the
// same intent stream with truthful declarations and undistorted timing —
// merged into the same honest Zipf background, under both providers. The
// "lying gain" column is the exploitability headline: how many dollars
// the adversary kept by lying (honest-twin spend minus lying spend),
// next to what the lie did to the service it received and to the
// provider's investment behavior. A strategy only "beats" a provider
// policy if its gain is positive without a matching service collapse.
func AdversaryComparison(s Settings, strategies []adversary.Strategy, interval time.Duration) (*metrics.Table, error) {
	s = s.withDefaults()
	if len(strategies) == 0 {
		strategies = adversary.All()
	}
	providers := []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish}

	type variant struct {
		strategy adversary.Strategy
		provider economy.Provider
		honest   bool
	}
	var variants []variant
	for _, strat := range strategies {
		for _, p := range providers {
			variants = append(variants, variant{strat, p, false}, variant{strat, p, true})
		}
	}

	// advNames is keyed per variant so each result knows which ledgers
	// belong to the adversary. The sources are built inside the worker
	// that runs the cell; only the name list is needed up front.
	mkConfig := func(i int) (sim.Config, error) {
		v := variants[i]
		params := s.Params
		params.Provider = v.provider
		sch, err := NewScheme("econ-cheap", params)
		if err != nil {
			return sim.Config{}, err
		}
		seed := CellSeed(s.Seed, string(v.strategy), interval)
		gen, err := workload.NewGenerator(workload.Config{
			Catalog:     s.Catalog,
			Seed:        seed,
			Arrival:     workload.NewFixedArrival(interval),
			Budgets:     s.Budgets,
			Theta:       s.Theta,
			PhaseLength: s.PhaseLength,
			Tenants:     2,
			TenantTheta: 1.1,
		})
		if err != nil {
			return sim.Config{}, err
		}
		adv, err := adversary.New(adversary.Config{
			Strategy: v.strategy,
			Catalog:  s.Catalog,
			Seed:     seed + 1,
			Honest:   v.honest,
			MeanGap:  3 * interval, // the adversary is ~1/4 of the merged stream
		})
		if err != nil {
			return sim.Config{}, err
		}
		return sim.Config{
			Scheme:     sch,
			Source:     workload.NewMerge(gen, adv),
			Queries:    s.Queries,
			Accounting: s.Accounting,
		}, nil
	}

	reports, err := sim.RunParallelFunc(context.Background(), len(variants), mkConfig, sim.Pool{Workers: s.Workers})
	if err != nil {
		return nil, err
	}

	// Aggregate the adversary's ledgers out of each report.
	type outcome struct {
		queries  int64
		declined int64
		spend    money.Amount
		credit   money.Amount
		respSum  time.Duration
		invests  int64
		cost     money.Amount
	}
	sum := func(v variant, rep *sim.Report) outcome {
		names := map[string]bool{}
		probe, err := adversary.New(adversary.Config{Strategy: v.strategy, Catalog: s.Catalog})
		if err == nil {
			for _, n := range probe.Tenants() {
				names[n] = true
			}
		}
		var o outcome
		o.invests = rep.Investments
		o.cost = rep.OperatingCost
		for _, tr := range rep.Tenants {
			if !names[tr.Tenant] {
				continue
			}
			o.queries += tr.Queries
			o.declined += tr.Declined
			o.spend = o.spend.Add(tr.Spend)
			o.credit = o.credit.Add(tr.Credit)
			o.respSum += tr.ResponseSum
		}
		return o
	}
	meanResp := func(o outcome) float64 {
		if n := o.queries - o.declined; n > 0 {
			return o.respSum.Seconds() / float64(n)
		}
		return 0
	}

	t := metrics.NewTable("strategy", "provider", "lying spend ($)", "honest spend ($)",
		"lying gain ($)", "lying resp (s)", "honest resp (s)", "invests lie/honest", "run cost Δ ($)")
	for i := 0; i < len(variants); i += 2 {
		lie, twin := variants[i], variants[i+1]
		lo, ho := sum(lie, reports[i]), sum(twin, reports[i+1])
		gain := ho.spend.Sub(lo.spend)
		t.AddRow(
			lie.strategy.String(),
			lie.provider.String(),
			fmt.Sprintf("%.4f", lo.spend.Dollars()),
			fmt.Sprintf("%.4f", ho.spend.Dollars()),
			fmt.Sprintf("%+.4f", gain.Dollars()),
			fmt.Sprintf("%.2f", meanResp(lo)),
			fmt.Sprintf("%.2f", meanResp(ho)),
			fmt.Sprintf("%d/%d", lo.invests, ho.invests),
			fmt.Sprintf("%+.4f", reports[i].OperatingCost.Sub(reports[i+1].OperatingCost).Dollars()),
		)
	}
	return t, nil
}
