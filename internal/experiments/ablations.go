package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// AblationRegretFraction sweeps the Eq. 3 fraction `a` for the econ-cheap
// scheme at the given interval: smaller `a` invests sooner (Abl. A in
// DESIGN.md).
func AblationRegretFraction(s Settings, fractions []float64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0.001, 0.005, 0.02, 0.1, 0.5}
	}
	jobs := make([]cellJob, len(fractions))
	for i, a := range fractions {
		s2 := s
		s2.Params.RegretFraction = a
		jobs[i] = cellJob{settings: s2, scheme: "econ-cheap", interval: interval}
	}
	cells, err := runCellJobs(context.Background(), s, jobs)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("regret fraction a", "cost ($)", "response (s)", "investments")
	for i, cell := range cells {
		t.AddRow(
			fmt.Sprintf("%g", fractions[i]),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.Investments),
		)
	}
	return t, cells, nil
}

// AblationBudgetShape sweeps the user budget shape (Fig. 1) for econ-cheap:
// convex users pay premiums only for fast answers, concave users hold their
// price until a hard deadline (Abl. B).
func AblationBudgetShape(s Settings, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	base, ok := s.Budgets.(*workload.ScaledPolicy)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: budget-shape ablation needs a ScaledPolicy")
	}
	shapes := []workload.Shape{workload.ShapeStep, workload.ShapeLinear, workload.ShapeConvex, workload.ShapeConcave}
	jobs := make([]cellJob, len(shapes))
	for i, shape := range shapes {
		pol := *base
		pol.Shape = shape
		s2 := s
		s2.Budgets = &pol
		jobs[i] = cellJob{settings: s2, scheme: "econ-cheap", interval: interval}
	}
	cells, err := runCellJobs(context.Background(), s, jobs)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("budget shape", "cost ($)", "response (s)", "revenue ($)", "declined")
	for i, cell := range cells {
		t.AddRow(
			shapes[i].String(),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%.2f", cell.Report.Revenue.Dollars()),
			fmt.Sprintf("%d", cell.Report.Declined),
		)
	}
	return t, cells, nil
}

// AblationNetworkThroughput sweeps the WAN throughput, which governs both
// back-end response times and structure build times (Abl. C).
func AblationNetworkThroughput(s Settings, mbps []float64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(mbps) == 0 {
		mbps = []float64{5, 25, 100, 200}
	}
	jobs := make([]cellJob, len(mbps))
	for i, m := range mbps {
		sched := pricing.EC22008()
		sched.NetworkThroughput = m * 1e6 / 8
		s2 := s
		s2.Params.Schedule = sched
		s2.Accounting = sched
		jobs[i] = cellJob{settings: s2, scheme: "econ-cheap", interval: interval}
	}
	cells, err := runCellJobs(context.Background(), s, jobs)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("throughput (Mbps)", "cost ($)", "response (s)", "cache answered")
	for i, cell := range cells {
		t.AddRow(
			fmt.Sprintf("%g", mbps[i]),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.CacheAnswered),
		)
	}
	return t, cells, nil
}

// AblationCacheFraction sweeps the bypass cache cap around the 30 % the
// paper cites as ideal for net-only [14] (Abl. D).
func AblationCacheFraction(s Settings, fractions []float64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0.10, 0.20, 0.30, 0.45, 0.60}
	}
	jobs := make([]cellJob, len(fractions))
	for i, f := range fractions {
		s2 := s
		s2.Params.CacheFraction = f
		jobs[i] = cellJob{settings: s2, scheme: "bypass", interval: interval}
	}
	cells, err := runCellJobs(context.Background(), s, jobs)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("cache fraction", "cost ($)", "response (s)", "cache answered")
	for i, cell := range cells {
		t.AddRow(
			fmt.Sprintf("%.0f%%", fractions[i]*100),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.CacheAnswered),
		)
	}
	return t, cells, nil
}

// AblationProvider measures the §IV altruistic-vs-selfish provider
// discussion as a figure: the same two-tenant skewed stream runs once
// against the pooled communal account and once against per-tenant
// ledgers. The run rows carry the Fig. 4/5 values; the tenant rows show
// how the selfish provider redistributes spend, credit and structure
// financing that the altruistic pool blends together.
func AblationProvider(s Settings, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if s.Tenants == 0 {
		s.Tenants = 2
	}
	if s.TenantTheta == 0 {
		s.TenantTheta = 1.1
	}
	providers := []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish}
	jobs := make([]cellJob, len(providers))
	for i, p := range providers {
		s2 := s
		s2.Params.Provider = p
		jobs[i] = cellJob{settings: s2, scheme: "econ-cheap", interval: interval}
	}
	cells, err := runCellJobs(context.Background(), s, jobs)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("provider", "tenant", "queries", "cost ($)", "response (s)",
		"investments", "spend ($)", "credit ($)", "structures charged")
	for i, cell := range cells {
		t.AddRow(
			providers[i].String(), "(run)",
			fmt.Sprintf("%d", cell.Report.Queries),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.Investments),
			"", "", "",
		)
		for _, tr := range cell.Report.Tenants {
			t.AddRow(
				providers[i].String(), tr.Tenant,
				fmt.Sprintf("%d", tr.Queries),
				"",
				fmt.Sprintf("%.2f", tr.MeanResponseSeconds()),
				"",
				fmt.Sprintf("%.2f", tr.Spend.Dollars()),
				fmt.Sprintf("%.2f", tr.Credit.Dollars()),
				fmt.Sprintf("%d", tr.StructuresCharged),
			)
		}
	}
	return t, cells, nil
}

// AblationAmortization sweeps the Eq. 7 horizon n, the open problem the
// paper defers ("Selecting n is a challenging problem in itself", §IV-D).
func AblationAmortization(s Settings, horizons []int64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(horizons) == 0 {
		horizons = []int64{1_000, 10_000, 100_000, 1_000_000}
	}
	jobs := make([]cellJob, len(horizons))
	for i, n := range horizons {
		s2 := s
		s2.Params.AmortN = n
		jobs[i] = cellJob{settings: s2, scheme: "econ-cheap", interval: interval}
	}
	cells, err := runCellJobs(context.Background(), s, jobs)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("amortization n", "cost ($)", "response (s)", "cache answered")
	for i, cell := range cells {
		t.AddRow(
			fmt.Sprintf("%d", horizons[i]),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.CacheAnswered),
		)
	}
	return t, cells, nil
}
