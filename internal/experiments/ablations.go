package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// AblationRegretFraction sweeps the Eq. 3 fraction `a` for the econ-cheap
// scheme at the given interval: smaller `a` invests sooner (Abl. A in
// DESIGN.md).
func AblationRegretFraction(s Settings, fractions []float64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0.001, 0.005, 0.02, 0.1, 0.5}
	}
	t := metrics.NewTable("regret fraction a", "cost ($)", "response (s)", "investments")
	var cells []Cell
	for _, a := range fractions {
		s2 := s
		s2.Params.RegretFraction = a
		cell, err := RunCell(s2, "econ-cheap", interval)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, cell)
		t.AddRow(
			fmt.Sprintf("%g", a),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.Investments),
		)
	}
	return t, cells, nil
}

// AblationBudgetShape sweeps the user budget shape (Fig. 1) for econ-cheap:
// convex users pay premiums only for fast answers, concave users hold their
// price until a hard deadline (Abl. B).
func AblationBudgetShape(s Settings, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	base, ok := s.Budgets.(*workload.ScaledPolicy)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: budget-shape ablation needs a ScaledPolicy")
	}
	shapes := []workload.Shape{workload.ShapeStep, workload.ShapeLinear, workload.ShapeConvex, workload.ShapeConcave}
	t := metrics.NewTable("budget shape", "cost ($)", "response (s)", "revenue ($)", "declined")
	var cells []Cell
	for _, shape := range shapes {
		pol := *base
		pol.Shape = shape
		s2 := s
		s2.Budgets = &pol
		cell, err := RunCell(s2, "econ-cheap", interval)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, cell)
		t.AddRow(
			shape.String(),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%.2f", cell.Report.Revenue.Dollars()),
			fmt.Sprintf("%d", cell.Report.Declined),
		)
	}
	return t, cells, nil
}

// AblationNetworkThroughput sweeps the WAN throughput, which governs both
// back-end response times and structure build times (Abl. C).
func AblationNetworkThroughput(s Settings, mbps []float64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(mbps) == 0 {
		mbps = []float64{5, 25, 100, 200}
	}
	t := metrics.NewTable("throughput (Mbps)", "cost ($)", "response (s)", "cache answered")
	var cells []Cell
	for _, m := range mbps {
		sched := pricing.EC22008()
		sched.NetworkThroughput = m * 1e6 / 8
		s2 := s
		s2.Params.Schedule = sched
		s2.Accounting = sched
		cell, err := RunCell(s2, "econ-cheap", interval)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, cell)
		t.AddRow(
			fmt.Sprintf("%g", m),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.CacheAnswered),
		)
	}
	return t, cells, nil
}

// AblationCacheFraction sweeps the bypass cache cap around the 30 % the
// paper cites as ideal for net-only [14] (Abl. D).
func AblationCacheFraction(s Settings, fractions []float64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0.10, 0.20, 0.30, 0.45, 0.60}
	}
	t := metrics.NewTable("cache fraction", "cost ($)", "response (s)", "cache answered")
	var cells []Cell
	for _, f := range fractions {
		s2 := s
		s2.Params.CacheFraction = f
		cell, err := RunCell(s2, "bypass", interval)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, cell)
		t.AddRow(
			fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.CacheAnswered),
		)
	}
	return t, cells, nil
}

// AblationAmortization sweeps the Eq. 7 horizon n, the open problem the
// paper defers ("Selecting n is a challenging problem in itself", §IV-D).
func AblationAmortization(s Settings, horizons []int64, interval time.Duration) (*metrics.Table, []Cell, error) {
	s = s.withDefaults()
	if len(horizons) == 0 {
		horizons = []int64{1_000, 10_000, 100_000, 1_000_000}
	}
	t := metrics.NewTable("amortization n", "cost ($)", "response (s)", "cache answered")
	var cells []Cell
	for _, n := range horizons {
		s2 := s
		s2.Params.AmortN = n
		cell, err := RunCell(s2, "econ-cheap", interval)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, cell)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", cell.Cost().Dollars()),
			fmt.Sprintf("%.2f", cell.MeanResponseSeconds()),
			fmt.Sprintf("%d", cell.Report.CacheAnswered),
		)
	}
	return t, cells, nil
}
