// Package experiments reproduces the paper's evaluation (§VII): Figure 4
// (operating cost of the four caching schemes at 1/10/30/60 s inter-query
// intervals) and Figure 5 (average response time at the same points), plus
// the ablations listed in DESIGN.md.
//
// One simulation run per (scheme, interval) cell produces both figures:
// Fig. 4 reads the cost column, Fig. 5 the response column — exactly like
// the paper, where both figures describe the same runs.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SchemeNames in canonical paper order.
var SchemeNames = []string{"bypass", "econ-col", "econ-cheap", "econ-fast"}

// PaperIntervals are the inter-query intervals of Figures 4 and 5.
var PaperIntervals = []time.Duration{1 * time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second}

// Settings parameterise an experiment grid.
type Settings struct {
	// Catalog defaults to the paper's 2.5 TB TPC-H catalog.
	Catalog *catalog.Catalog
	// Queries per run. The paper simulates a million-query evolution;
	// the default keeps full-grid regeneration to a few minutes while
	// preserving every reported shape. Raise it for closer runs.
	Queries int
	// Seed for the workload stream.
	Seed int64
	// Intervals defaults to PaperIntervals.
	Intervals []time.Duration
	// Schemes defaults to SchemeNames.
	Schemes []string
	// Params is the base scheme calibration; zero fields default.
	Params scheme.Params
	// Budget policy; defaults to PaperBudgetPolicy().
	Budgets workload.BudgetPolicy
	// Theta is the Zipf skew (default 1.1); PhaseLength the evolution
	// phase (default 20k queries).
	Theta       float64
	PhaseLength int
	// Accounting is the true-dollar schedule (default EC22008).
	Accounting *pricing.Schedule
	// OnProgress, if set, receives a line per completed cell.
	OnProgress func(line string)
}

// PaperBudgetPolicy returns the §VII-A user model: step budgets sized a few
// times the typical back-end execution price, so most queries land in case
// B/C and the economy earns the credit it invests.
func PaperBudgetPolicy() workload.BudgetPolicy {
	return &workload.ScaledPolicy{
		Shape:        workload.ShapeStep,
		Base:         money.FromDollars(0.001),
		PerGBScanned: money.FromDollars(0.01),
		PerGBResult:  money.FromDollars(0.50),
		TMax:         120 * time.Second,
	}
}

// withDefaults normalizes settings.
func (s Settings) withDefaults() Settings {
	if s.Catalog == nil {
		s.Catalog = catalog.Paper()
	}
	if s.Queries == 0 {
		s.Queries = 100_000
	}
	if len(s.Intervals) == 0 {
		s.Intervals = PaperIntervals
	}
	if len(s.Schemes) == 0 {
		s.Schemes = SchemeNames
	}
	if s.Params.Catalog == nil {
		s.Params = paperParams(s.Catalog, s.Params)
	}
	if s.Budgets == nil {
		s.Budgets = PaperBudgetPolicy()
	}
	if s.Theta == 0 {
		s.Theta = 1.1
	}
	if s.PhaseLength == 0 {
		s.PhaseLength = 20_000
	}
	if s.Accounting == nil {
		s.Accounting = pricing.EC22008()
	}
	return s
}

// paperParams merges user overrides into the paper calibration.
func paperParams(cat *catalog.Catalog, over scheme.Params) scheme.Params {
	p := scheme.DefaultParams(cat)
	if over.RegretFraction != 0 {
		p.RegretFraction = over.RegretFraction
	}
	if over.AmortN != 0 {
		p.AmortN = over.AmortN
	}
	if over.InitialCredit != 0 {
		p.InitialCredit = over.InitialCredit
	}
	if over.CacheFraction != 0 {
		p.CacheFraction = over.CacheFraction
	}
	if over.LoadFactor != 0 {
		p.LoadFactor = over.LoadFactor
	}
	if over.MaintFailureFactor != 0 {
		p.MaintFailureFactor = over.MaintFailureFactor
	}
	if over.Schedule != nil {
		p.Schedule = over.Schedule
	}
	if over.Tunables != (p.Tunables) && over.Tunables.MaxNodes != 0 {
		p.Tunables = over.Tunables
	}
	return p
}

// Cell is one (scheme, interval) measurement.
type Cell struct {
	Scheme   string
	Interval time.Duration
	Report   *sim.Report
}

// Cost returns the Fig. 4 value.
func (c Cell) Cost() money.Amount { return c.Report.OperatingCost }

// MeanResponseSeconds returns the Fig. 5 value.
func (c Cell) MeanResponseSeconds() float64 { return c.Report.Response.Mean() }

// NewScheme constructs a scheme by its paper name.
func NewScheme(name string, p scheme.Params) (scheme.Scheme, error) {
	switch name {
	case "bypass":
		return scheme.NewBypass(p)
	case "econ-col":
		return scheme.NewEconCol(p)
	case "econ-cheap":
		return scheme.NewEconCheap(p)
	case "econ-fast":
		return scheme.NewEconFast(p)
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// RunCell executes one (scheme, interval) simulation.
func RunCell(s Settings, schemeName string, interval time.Duration) (Cell, error) {
	s = s.withDefaults()
	sch, err := NewScheme(schemeName, s.Params)
	if err != nil {
		return Cell{}, err
	}
	gen, err := workload.NewGenerator(workload.Config{
		Catalog:     s.Catalog,
		Seed:        s.Seed,
		Arrival:     workload.NewFixedArrival(interval),
		Budgets:     s.Budgets,
		Theta:       s.Theta,
		PhaseLength: s.PhaseLength,
	})
	if err != nil {
		return Cell{}, err
	}
	rep, err := sim.Run(sim.Config{
		Scheme:     sch,
		Generator:  gen,
		Queries:    s.Queries,
		Accounting: s.Accounting,
	})
	if err != nil {
		return Cell{}, err
	}
	return Cell{Scheme: schemeName, Interval: interval, Report: rep}, nil
}

// RunGrid executes the full scheme × interval grid that backs Figures 4
// and 5.
func RunGrid(s Settings) ([]Cell, error) {
	s = s.withDefaults()
	var cells []Cell
	for _, interval := range s.Intervals {
		for _, name := range s.Schemes {
			cell, err := RunCell(s, name, interval)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
			if s.OnProgress != nil {
				s.OnProgress(fmt.Sprintf("%-10s interval=%-4s cost=%-12s resp=%.2fs",
					cell.Scheme, cell.Interval, cell.Cost(), cell.MeanResponseSeconds()))
			}
		}
	}
	return cells, nil
}

// Fig4Table renders the operating-cost table of Figure 4: one row per
// inter-query interval, one column per scheme.
func Fig4Table(cells []Cell) *metrics.Table {
	return pivot(cells, "cost ($)", func(c Cell) string {
		return fmt.Sprintf("%.2f", c.Cost().Dollars())
	})
}

// Fig5Table renders the average-response-time table of Figure 5.
func Fig5Table(cells []Cell) *metrics.Table {
	return pivot(cells, "response (s)", func(c Cell) string {
		return fmt.Sprintf("%.2f", c.MeanResponseSeconds())
	})
}

// pivot arranges cells into interval rows × scheme columns.
func pivot(cells []Cell, label string, value func(Cell) string) *metrics.Table {
	// Collect orders.
	var intervals []time.Duration
	var schemes []string
	seenI := map[time.Duration]bool{}
	seenS := map[string]bool{}
	for _, c := range cells {
		if !seenI[c.Interval] {
			seenI[c.Interval] = true
			intervals = append(intervals, c.Interval)
		}
		if !seenS[c.Scheme] {
			seenS[c.Scheme] = true
			schemes = append(schemes, c.Scheme)
		}
	}
	header := []string{"interval \\ " + label}
	header = append(header, schemes...)
	t := metrics.NewTable(header...)
	for _, iv := range intervals {
		row := []string{fmt.Sprintf("%ds", int(iv.Seconds()))}
		for _, sn := range schemes {
			cellVal := ""
			for _, c := range cells {
				if c.Interval == iv && c.Scheme == sn {
					cellVal = value(c)
					break
				}
			}
			row = append(row, cellVal)
		}
		t.AddRow(row...)
	}
	return t
}
