// Package experiments reproduces the paper's evaluation (§VII): Figure 4
// (operating cost of the four caching schemes at 1/10/30/60 s inter-query
// intervals) and Figure 5 (average response time at the same points), plus
// the ablations listed in DESIGN.md.
//
// One simulation run per (scheme, interval) cell produces both figures:
// Fig. 4 reads the cost column, Fig. 5 the response column — exactly like
// the paper, where both figures describe the same runs.
package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SchemeNames in canonical paper order.
var SchemeNames = scheme.Names

// PaperIntervals are the inter-query intervals of Figures 4 and 5.
var PaperIntervals = []time.Duration{1 * time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second}

// Settings parameterise an experiment grid.
type Settings struct {
	// Catalog defaults to the paper's 2.5 TB TPC-H catalog.
	Catalog *catalog.Catalog
	// Queries per run. The paper simulates a million-query evolution;
	// the default keeps full-grid regeneration to a few minutes while
	// preserving every reported shape. Raise it for closer runs.
	Queries int
	// Seed for the workload stream.
	Seed int64
	// Intervals defaults to PaperIntervals.
	Intervals []time.Duration
	// Schemes defaults to SchemeNames.
	Schemes []string
	// Params is the base scheme calibration; zero fields default.
	Params scheme.Params
	// Budget policy; defaults to PaperBudgetPolicy().
	Budgets workload.BudgetPolicy
	// Theta is the Zipf skew (default 1.1); PhaseLength the evolution
	// phase (default 20k queries).
	Theta       float64
	PhaseLength int
	// Tenants spreads the stream across synthetic tenants with Zipf skew
	// TenantTheta (see workload.Config); 0 leaves the stream untagged,
	// the regime of the paper's figures.
	Tenants     int
	TenantTheta float64
	// Accounting is the true-dollar schedule (default EC22008).
	Accounting *pricing.Schedule
	// Workers bounds how many grid cells simulate concurrently. Each
	// cell owns its entire state (scheme, cache, economy, generator) and
	// seeds its workload from CellSeed, so results are byte-identical
	// for any worker count. Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, if set, receives a line per completed cell, always in
	// grid order regardless of Workers.
	OnProgress func(line string)
}

// PaperBudgetPolicy returns the §VII-A user model: step budgets sized a few
// times the typical back-end execution price, so most queries land in case
// B/C and the economy earns the credit it invests.
func PaperBudgetPolicy() workload.BudgetPolicy {
	return &workload.ScaledPolicy{
		Shape:        workload.ShapeStep,
		Base:         money.FromDollars(0.001),
		PerGBScanned: money.FromDollars(0.01),
		PerGBResult:  money.FromDollars(0.50),
		TMax:         120 * time.Second,
	}
}

// withDefaults normalizes settings.
func (s Settings) withDefaults() Settings {
	if s.Catalog == nil {
		s.Catalog = catalog.Paper()
	}
	if s.Queries == 0 {
		s.Queries = 100_000
	}
	if len(s.Intervals) == 0 {
		s.Intervals = PaperIntervals
	}
	if len(s.Schemes) == 0 {
		s.Schemes = SchemeNames
	}
	if s.Params.Catalog == nil {
		s.Params = paperParams(s.Catalog, s.Params)
	}
	if s.Budgets == nil {
		s.Budgets = PaperBudgetPolicy()
	}
	if s.Theta == 0 {
		s.Theta = 1.1
	}
	if s.PhaseLength == 0 {
		s.PhaseLength = 20_000
	}
	if s.Accounting == nil {
		s.Accounting = pricing.EC22008()
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	return s
}

// paperParams merges user overrides into the paper calibration.
func paperParams(cat *catalog.Catalog, over scheme.Params) scheme.Params {
	p := scheme.DefaultParams(cat)
	// Provider's zero value is the default (altruistic), so it always
	// copies through.
	p.Provider = over.Provider
	if over.RegretFraction != 0 {
		p.RegretFraction = over.RegretFraction
	}
	if over.FailureFloor != 0 {
		p.FailureFloor = over.FailureFloor
	}
	if over.AmortN != 0 {
		p.AmortN = over.AmortN
	}
	if over.InitialCredit != 0 {
		p.InitialCredit = over.InitialCredit
	}
	if over.CacheFraction != 0 {
		p.CacheFraction = over.CacheFraction
	}
	if over.LoadFactor != 0 {
		p.LoadFactor = over.LoadFactor
	}
	if over.MaintFailureFactor != 0 {
		p.MaintFailureFactor = over.MaintFailureFactor
	}
	if over.Schedule != nil {
		p.Schedule = over.Schedule
	}
	if over.Tunables != (p.Tunables) && over.Tunables.MaxNodes != 0 {
		p.Tunables = over.Tunables
	}
	return p
}

// Cell is one (scheme, interval) measurement.
type Cell struct {
	Scheme   string
	Interval time.Duration
	Report   *sim.Report
}

// Cost returns the Fig. 4 value.
func (c Cell) Cost() money.Amount { return c.Report.OperatingCost }

// MeanResponseSeconds returns the Fig. 5 value.
func (c Cell) MeanResponseSeconds() float64 { return c.Report.Response.Mean() }

// NewScheme constructs a scheme by its paper name.
func NewScheme(name string, p scheme.Params) (scheme.Scheme, error) {
	return scheme.New(name, p)
}

// CellSeed derives the workload seed of one (scheme, interval) cell from
// the base seed. Deriving per-cell seeds — rather than handing every cell
// the base seed raw — decorrelates the streams across the grid and, more
// importantly, makes each cell's stream a pure function of its coordinates,
// so dispatch order and worker count cannot influence results.
func CellSeed(base int64, schemeName string, interval time.Duration) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(schemeName))
	binary.LittleEndian.PutUint64(b[:], uint64(interval))
	h.Write(b[:])
	return int64(h.Sum64())
}

// cellConfig assembles the self-contained simulation of one cell. Settings
// must already have defaults applied.
func (s Settings) cellConfig(schemeName string, interval time.Duration) (sim.Config, error) {
	sch, err := NewScheme(schemeName, s.Params)
	if err != nil {
		return sim.Config{}, err
	}
	gen, err := workload.NewGenerator(workload.Config{
		Catalog:     s.Catalog,
		Seed:        CellSeed(s.Seed, schemeName, interval),
		Arrival:     workload.NewFixedArrival(interval),
		Budgets:     s.Budgets,
		Theta:       s.Theta,
		PhaseLength: s.PhaseLength,
		Tenants:     s.Tenants,
		TenantTheta: s.TenantTheta,
	})
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Scheme:     sch,
		Generator:  gen,
		Queries:    s.Queries,
		Accounting: s.Accounting,
	}, nil
}

// RunCell executes one (scheme, interval) simulation.
func RunCell(s Settings, schemeName string, interval time.Duration) (Cell, error) {
	s = s.withDefaults()
	cfg, err := s.cellConfig(schemeName, interval)
	if err != nil {
		return Cell{}, err
	}
	rep, err := sim.Run(cfg)
	if err != nil {
		return Cell{}, err
	}
	return Cell{Scheme: schemeName, Interval: interval, Report: rep}, nil
}

// cellJob names one simulation of a grid: the (possibly variant) settings
// plus the cell coordinates.
type cellJob struct {
	settings Settings
	scheme   string
	interval time.Duration
}

// runCellJobs executes the jobs on a bounded worker pool sized by
// base.Workers and returns the cells in job order. Every job owns its
// whole simulation state, built lazily inside the worker that runs it so
// at most Workers cells are live at once; results match a sequential run
// exactly. Progress lines are buffered and released in job order, keeping
// the full observable output byte-identical for any worker count.
func runCellJobs(ctx context.Context, base Settings, jobs []cellJob) ([]Cell, error) {
	mkCell := func(i int, rep *sim.Report) Cell {
		return Cell{Scheme: jobs[i].scheme, Interval: jobs[i].interval, Report: rep}
	}
	pool := sim.Pool{Workers: base.Workers}
	if base.OnProgress != nil {
		// Cells complete in any order; emit their lines in grid order.
		done := make([]*sim.Report, len(jobs))
		next := 0
		pool.OnDone = func(i int, rep *sim.Report) {
			done[i] = rep
			for next < len(jobs) && done[next] != nil {
				c := mkCell(next, done[next])
				base.OnProgress(fmt.Sprintf("%-10s interval=%-4s cost=%-12s resp=%.2fs",
					c.Scheme, c.Interval, c.Cost(), c.MeanResponseSeconds()))
				next++
			}
		}
	}

	reports, err := sim.RunParallelFunc(ctx, len(jobs), func(i int) (sim.Config, error) {
		return jobs[i].settings.cellConfig(jobs[i].scheme, jobs[i].interval)
	}, pool)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(jobs))
	for i, rep := range reports {
		cells[i] = mkCell(i, rep)
	}
	return cells, nil
}

// RunGrid executes the full scheme × interval grid that backs Figures 4
// and 5.
func RunGrid(s Settings) ([]Cell, error) {
	return RunGridContext(context.Background(), s)
}

// RunGridContext is RunGrid with first-error cancellation: ctx cancellation
// or the first failing cell stops the remaining cells.
func RunGridContext(ctx context.Context, s Settings) ([]Cell, error) {
	s = s.withDefaults()
	jobs := make([]cellJob, 0, len(s.Intervals)*len(s.Schemes))
	for _, interval := range s.Intervals {
		for _, name := range s.Schemes {
			jobs = append(jobs, cellJob{settings: s, scheme: name, interval: interval})
		}
	}
	return runCellJobs(ctx, s, jobs)
}

// Fig4Table renders the operating-cost table of Figure 4: one row per
// inter-query interval, one column per scheme.
func Fig4Table(cells []Cell) *metrics.Table {
	return pivot(cells, "cost ($)", func(c Cell) string {
		return fmt.Sprintf("%.2f", c.Cost().Dollars())
	})
}

// Fig5Table renders the average-response-time table of Figure 5.
func Fig5Table(cells []Cell) *metrics.Table {
	return pivot(cells, "response (s)", func(c Cell) string {
		return fmt.Sprintf("%.2f", c.MeanResponseSeconds())
	})
}

// pivot arranges cells into interval rows × scheme columns.
func pivot(cells []Cell, label string, value func(Cell) string) *metrics.Table {
	// Collect orders.
	var intervals []time.Duration
	var schemes []string
	seenI := map[time.Duration]bool{}
	seenS := map[string]bool{}
	for _, c := range cells {
		if !seenI[c.Interval] {
			seenI[c.Interval] = true
			intervals = append(intervals, c.Interval)
		}
		if !seenS[c.Scheme] {
			seenS[c.Scheme] = true
			schemes = append(schemes, c.Scheme)
		}
	}
	header := []string{"interval \\ " + label}
	header = append(header, schemes...)
	t := metrics.NewTable(header...)
	for _, iv := range intervals {
		row := []string{fmt.Sprintf("%ds", int(iv.Seconds()))}
		for _, sn := range schemes {
			cellVal := ""
			for _, c := range cells {
				if c.Interval == iv && c.Scheme == sn {
					cellVal = value(c)
					break
				}
			}
			row = append(row, cellVal)
		}
		t.AddRow(row...)
	}
	return t
}
