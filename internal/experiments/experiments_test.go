package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
)

// fastSettings keeps experiment tests quick: small catalog, short streams.
// Shape assertions that need the paper catalog live in the root-level
// integration tests and the benchmark harness.
func fastSettings() Settings {
	return Settings{
		Catalog:     catalog.TPCH(50),
		Queries:     3_000,
		Seed:        7,
		Intervals:   []time.Duration{time.Second},
		PhaseLength: 2_000,
	}
}

func TestRunCellBasics(t *testing.T) {
	cell, err := RunCell(fastSettings(), "econ-cheap", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Scheme != "econ-cheap" || cell.Interval != time.Second {
		t.Errorf("cell header wrong: %+v", cell)
	}
	if cell.Report.Queries != 3_000 {
		t.Errorf("queries = %d", cell.Report.Queries)
	}
	if !cell.Cost().IsPositive() {
		t.Error("zero operating cost")
	}
	if cell.MeanResponseSeconds() <= 0 {
		t.Error("zero response")
	}
}

func TestRunCellUnknownScheme(t *testing.T) {
	if _, err := RunCell(fastSettings(), "zzz", time.Second); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestNewSchemeNames(t *testing.T) {
	s := fastSettings().withDefaults()
	for _, name := range SchemeNames {
		sch, err := NewScheme(name, s.Params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sch.Name() != name {
			t.Errorf("Name = %q, want %q", sch.Name(), name)
		}
	}
}

func TestRunGridShape(t *testing.T) {
	s := fastSettings()
	s.Schemes = []string{"bypass", "econ-col"}
	s.Intervals = []time.Duration{time.Second, 5 * time.Second}
	var progress []string
	s.OnProgress = func(line string) { progress = append(progress, line) }
	cells, err := RunGrid(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	if len(progress) != 4 {
		t.Errorf("progress lines = %d", len(progress))
	}
	// Both figure tables pivot to 2 rows x 3 columns.
	for _, tb := range []string{Fig4Table(cells).String(), Fig5Table(cells).String()} {
		if !strings.Contains(tb, "bypass") || !strings.Contains(tb, "econ-col") {
			t.Errorf("table missing schemes:\n%s", tb)
		}
		if !strings.Contains(tb, "1s") || !strings.Contains(tb, "5s") {
			t.Errorf("table missing intervals:\n%s", tb)
		}
	}
}

func TestGridDeterminism(t *testing.T) {
	s := fastSettings()
	s.Schemes = []string{"econ-cheap"}
	run := func() string {
		cells, err := RunGrid(s)
		if err != nil {
			t.Fatal(err)
		}
		return Fig4Table(cells).String() + Fig5Table(cells).String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("grid not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestPaperBudgetPolicyIsGenerousStep(t *testing.T) {
	pol := PaperBudgetPolicy()
	b := pol.BudgetFor(nil, 1<<30, 1<<24) // 1 GiB scan, 16 MiB result
	if b.Tmax() <= 0 {
		t.Fatal("no budget support")
	}
	// Step shape: same price at the start and near Tmax.
	early := b.At(time.Second)
	late := b.At(b.Tmax())
	if early != late || !early.IsPositive() {
		t.Errorf("paper budget must be a positive step: early=%v late=%v", early, late)
	}
}

func TestAblationRegretFraction(t *testing.T) {
	tb, cells, err := AblationRegretFraction(fastSettings(), []float64{0.001, 0.5}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 || len(cells) != 2 {
		t.Fatalf("rows = %d cells = %d", tb.Rows(), len(cells))
	}
	// A hair-trigger fraction must invest at least as much as a huge one.
	if cells[0].Report.Investments < cells[1].Report.Investments {
		t.Errorf("a=0.001 invested %d, a=0.5 invested %d",
			cells[0].Report.Investments, cells[1].Report.Investments)
	}
}

func TestAblationBudgetShape(t *testing.T) {
	tb, cells, err := AblationBudgetShape(fastSettings(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 || len(cells) != 4 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Step users pay at least as much as convex users (same headline
	// price, more of the curve above any response time).
	if cells[0].Report.Revenue < cells[2].Report.Revenue {
		t.Errorf("step revenue %v < convex revenue %v",
			cells[0].Report.Revenue, cells[2].Report.Revenue)
	}
}

func TestAblationNetworkThroughput(t *testing.T) {
	tb, cells, err := AblationNetworkThroughput(fastSettings(), []float64{5, 100}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Faster WAN must not slow responses down.
	if cells[1].MeanResponseSeconds() > cells[0].MeanResponseSeconds() {
		t.Errorf("100Mbps (%v) slower than 5Mbps (%v)",
			cells[1].MeanResponseSeconds(), cells[0].MeanResponseSeconds())
	}
}

func TestAblationCacheFraction(t *testing.T) {
	tb, cells, err := AblationCacheFraction(fastSettings(), []float64{0.05, 0.30}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 || len(cells) != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestAblationAmortization(t *testing.T) {
	tb, _, err := AblationAmortization(fastSettings(), []int64{1000, 100000}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestAblationDefaults(t *testing.T) {
	// Default sweep lists are applied when none given. Use a micro run.
	s := fastSettings()
	s.Queries = 300
	if _, cells, err := AblationRegretFraction(s, nil, time.Second); err != nil || len(cells) != 5 {
		t.Errorf("regret defaults: %d cells, %v", len(cells), err)
	}
}
