package experiments

import (
	"context"
	"testing"
	"time"
)

// TestRunGridParallelMatchesSequential is the tentpole determinism check:
// the grid must produce identical cells — same order, same costs, same
// responses — and identical rendered output for any worker count.
func TestRunGridParallelMatchesSequential(t *testing.T) {
	base := fastSettings()
	base.Schemes = []string{"bypass", "econ-cheap"}
	base.Intervals = []time.Duration{time.Second, 5 * time.Second}

	run := func(workers int) ([]Cell, []string) {
		s := base
		s.Workers = workers
		var lines []string
		s.OnProgress = func(line string) { lines = append(lines, line) }
		cells, err := RunGrid(s)
		if err != nil {
			t.Fatal(err)
		}
		return cells, lines
	}
	seq, seqLines := run(1)
	par, parLines := run(8)

	if len(seq) != len(par) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Scheme != b.Scheme || a.Interval != b.Interval {
			t.Errorf("cell %d order differs: (%s,%v) vs (%s,%v)",
				i, a.Scheme, a.Interval, b.Scheme, b.Interval)
		}
		if a.Report.OperatingCost != b.Report.OperatingCost {
			t.Errorf("cell %d cost differs: %v vs %v",
				i, a.Report.OperatingCost, b.Report.OperatingCost)
		}
		if a.Report.Response.Mean() != b.Report.Response.Mean() {
			t.Errorf("cell %d response differs: %v vs %v",
				i, a.Report.Response.Mean(), b.Report.Response.Mean())
		}
		if a.Report.Revenue != b.Report.Revenue || a.Report.CacheAnswered != b.Report.CacheAnswered {
			t.Errorf("cell %d accounting differs", i)
		}
	}

	// Byte-identical observable output: the rendered tables and the
	// progress stream.
	if Fig4Table(seq).String() != Fig4Table(par).String() {
		t.Error("Fig4 tables differ between worker counts")
	}
	if Fig5Table(seq).String() != Fig5Table(par).String() {
		t.Error("Fig5 tables differ between worker counts")
	}
	if len(seqLines) != len(parLines) {
		t.Fatalf("progress lines: %d vs %d", len(seqLines), len(parLines))
	}
	for i := range seqLines {
		if seqLines[i] != parLines[i] {
			t.Errorf("progress line %d differs:\n%s\nvs\n%s", i, seqLines[i], parLines[i])
		}
	}
}

func TestCellSeedIsCoordinateFunction(t *testing.T) {
	a := CellSeed(42, "econ-cheap", time.Second)
	if a != CellSeed(42, "econ-cheap", time.Second) {
		t.Error("CellSeed is not stable")
	}
	for _, other := range []int64{
		CellSeed(42, "econ-cheap", 2 * time.Second),
		CellSeed(42, "bypass", time.Second),
		CellSeed(43, "econ-cheap", time.Second),
	} {
		if a == other {
			t.Error("CellSeed collides across coordinates")
		}
	}
}

func TestRunGridContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunGridContext(ctx, fastSettings()); err == nil {
		t.Error("cancelled grid returned no error")
	}
}

func TestRunGridFirstErrorCancels(t *testing.T) {
	s := fastSettings()
	s.Schemes = []string{"bypass", "zzz"}
	if _, err := RunGrid(s); err == nil {
		t.Error("unknown scheme accepted by the grid")
	}
}

func TestAblationsRunParallel(t *testing.T) {
	// The ablation sweeps go through the same pool; a multi-worker sweep
	// must match a single-worker sweep row for row.
	s := fastSettings()
	s.Queries = 500
	run := func(workers int) string {
		s2 := s
		s2.Workers = workers
		tb, _, err := AblationRegretFraction(s2, []float64{0.001, 0.5}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return tb.String()
	}
	if a, b := run(1), run(4); a != b {
		t.Errorf("ablation differs by worker count:\n%s\nvs\n%s", a, b)
	}
}
