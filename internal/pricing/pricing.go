// Package pricing defines the resource price schedule the cloud economy
// charges against. The paper's cost model (§IV-D, §V) prorates query cost to
// four resources: CPU time, disk I/O operations, disk storage rent and
// network transfer. A Schedule bundles the unit prices for all four plus the
// physical parameters of the cloud (boot time, WAN throughput and latency)
// and the calibration factors of Eq. 8–9.
package pricing

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/money"
)

// Schedule is an immutable price list plus the cloud's physical calibration
// constants. Construct one with a preset (EC22008, NetOnly) or fill the
// fields directly and call Validate.
type Schedule struct {
	// CPUPerHour is the rental price of one CPU node for one hour
	// (Amazon EC2 small instance, 2008: $0.10/h). It is both `u` in
	// Eq. 10 and `c` in Eq. 8/11.
	CPUPerHour money.Amount

	// DiskPerGBMonth is the storage rent for one gigabyte held for one
	// month (Amazon S3/EBS, 2008: $0.15/GB-month). It determines `cd`
	// in Eq. 13/15.
	DiskPerGBMonth money.Amount

	// NetworkPerGB is the WAN transfer price for one gigabyte
	// (Amazon, 2008: $0.10/GB in, $0.17/GB out; the paper does not
	// distinguish directions). It determines `cb` in Eq. 9/12.
	NetworkPerGB money.Amount

	// IOPerMillion is the price of one million disk I/O operations
	// (Amazon EBS, 2008: $0.10 per 1M I/O). It determines `io` in Eq. 8.
	IOPerMillion money.Amount

	// BootTime is `b` in Eq. 10: the time to boot a new CPU node.
	BootTime time.Duration

	// NetworkThroughput is `t` in Eq. 9/12, in bytes per second.
	// The paper uses 25 Mbps, the maximum observed SDSS inter-node
	// throughput [24].
	NetworkThroughput float64

	// NetworkLatency is `l` in Eq. 9/12. The paper sets it to zero.
	NetworkLatency time.Duration

	// FCPU converts optimizer cost units to CPU seconds (Eq. 8 `fcpu`).
	// The paper calibrates 0.014 to emulate SDSS response times.
	FCPU float64

	// FIO converts optimizer I/O units to physical I/O operations
	// (Eq. 8 `fio`).
	FIO float64

	// FNet is `fn` in Eq. 9/12: the fraction of a CPU consumed while a
	// transfer is in flight. The paper sets 1 (fully utilized).
	FNet float64

	// LCPU is `lcpu` in Eq. 8: the CPU overload factor. The paper assumes
	// nodes are never overloaded (1).
	LCPU float64
}

// Validation errors returned by Schedule.Validate.
var (
	ErrNegativePrice   = errors.New("pricing: prices must be non-negative")
	ErrThroughput      = errors.New("pricing: network throughput must be positive")
	ErrBadFactor       = errors.New("pricing: calibration factors must be positive")
	ErrNegativeBoot    = errors.New("pricing: boot time must be non-negative")
	ErrNegativeLatency = errors.New("pricing: network latency must be non-negative")
)

// Validate checks the schedule for internally consistent values. A zero
// price is legal (the net-only baseline zeroes everything but network), a
// negative one is not.
func (s *Schedule) Validate() error {
	for _, p := range []money.Amount{s.CPUPerHour, s.DiskPerGBMonth, s.NetworkPerGB, s.IOPerMillion} {
		if p.IsNegative() {
			return ErrNegativePrice
		}
	}
	if s.NetworkThroughput <= 0 {
		return ErrThroughput
	}
	if s.FCPU <= 0 || s.FIO <= 0 || s.FNet < 0 || s.LCPU <= 0 {
		return ErrBadFactor
	}
	if s.BootTime < 0 {
		return ErrNegativeBoot
	}
	if s.NetworkLatency < 0 {
		return ErrNegativeLatency
	}
	return nil
}

// Byte-size and time helpers used by the conversion methods.
const (
	gib            = 1 << 30
	secondsPerHour = 3600.0
	// The paper's price sources quote storage per month; we use the
	// 30-day month Amazon billed by in 2008.
	secondsPerMonth = 30 * 24 * 3600.0
)

// CPUCost prices d seconds of CPU time on n nodes.
func (s *Schedule) CPUCost(d time.Duration, nodes int) money.Amount {
	if d <= 0 || nodes <= 0 {
		return 0
	}
	hours := d.Seconds() / secondsPerHour
	return s.CPUPerHour.MulFloat(hours * float64(nodes))
}

// StorageCost prices holding `bytes` of cache disk for duration d.
func (s *Schedule) StorageCost(bytes int64, d time.Duration) money.Amount {
	if bytes <= 0 || d <= 0 {
		return 0
	}
	gbMonths := float64(bytes) / gib * (d.Seconds() / secondsPerMonth)
	return s.DiskPerGBMonth.MulFloat(gbMonths)
}

// StorageRent prices an integral of resident bytes over time, expressed
// in GiB-seconds. Residency changes while rent accrues, so the simulator
// and the serving layer integrate first and price once.
func (s *Schedule) StorageRent(gibSeconds float64) money.Amount {
	if gibSeconds <= 0 {
		return 0
	}
	return s.DiskPerGBMonth.MulFloat(gibSeconds / secondsPerMonth)
}

// NodeRent prices an integral of extra-node uptime in node-seconds.
func (s *Schedule) NodeRent(nodeSeconds float64) money.Amount {
	if nodeSeconds <= 0 {
		return 0
	}
	return s.CPUPerHour.MulFloat(nodeSeconds / secondsPerHour)
}

// TransferCost prices moving `bytes` across the WAN (the `size·cb` terms of
// Eq. 9 and Eq. 12).
func (s *Schedule) TransferCost(bytes int64) money.Amount {
	if bytes <= 0 {
		return 0
	}
	return s.NetworkPerGB.MulFloat(float64(bytes) / gib)
}

// IOCost prices `ops` physical I/O operations (the `io·iotot` term of Eq. 8).
func (s *Schedule) IOCost(ops int64) money.Amount {
	if ops <= 0 {
		return 0
	}
	return s.IOPerMillion.MulFloat(float64(ops) / 1e6)
}

// TransferTime is the wall-clock time to move `bytes` across the WAN:
// l + size/t (Eq. 9/12 inner term).
func (s *Schedule) TransferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return s.NetworkLatency
	}
	secs := float64(bytes) / s.NetworkThroughput
	return s.NetworkLatency + time.Duration(secs*float64(time.Second))
}

// BootCost is Eq. 10: BuildN(N) = b·u, the price of booting one CPU node.
func (s *Schedule) BootCost() money.Amount {
	return s.CPUCost(s.BootTime, 1)
}

// String summarises the schedule for logs and experiment headers.
func (s *Schedule) String() string {
	return fmt.Sprintf("cpu=%s/h disk=%s/GB-mo net=%s/GB io=%s/M t=%.1fMbps fcpu=%g",
		s.CPUPerHour, s.DiskPerGBMonth, s.NetworkPerGB, s.IOPerMillion,
		s.NetworkThroughput*8/1e6, s.FCPU)
}

// EC22008 returns the Amazon EC2/S3 price list circa 2008 that §VII imports,
// with the paper's calibration: fcpu=0.014, lcpu=fn=1, l=0, 25 Mbps WAN.
func EC22008() *Schedule {
	return &Schedule{
		CPUPerHour:        money.FromCents(10), // $0.10 per instance-hour
		DiskPerGBMonth:    money.FromCents(15), // $0.15 per GB-month
		NetworkPerGB:      money.FromCents(10), // $0.10 per GB transferred
		IOPerMillion:      money.FromCents(10), // $0.10 per million I/O
		BootTime:          2 * time.Minute,
		NetworkThroughput: 25e6 / 8, // 25 Mbps in bytes/s
		NetworkLatency:    0,
		FCPU:              0.014,
		FIO:               1.0,
		FNet:              1.0,
		LCPU:              1.0,
	}
}

// NetOnly returns the bypass-yield baseline schedule: network bandwidth is
// the only priced resource (§VII-A "setting costs for CPU, disk and I/O to
// zero"). Physical parameters match EC22008 so response times are comparable.
func NetOnly() *Schedule {
	s := EC22008()
	s.CPUPerHour = 0
	s.DiskPerGBMonth = 0
	s.IOPerMillion = 0
	return s
}

// Clone returns a mutable copy of the schedule, for ablation sweeps that
// vary one parameter at a time.
func (s *Schedule) Clone() *Schedule {
	c := *s
	return &c
}
