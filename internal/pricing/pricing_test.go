package pricing

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/money"
)

func TestEC22008Valid(t *testing.T) {
	s := EC22008()
	if err := s.Validate(); err != nil {
		t.Fatalf("EC22008 invalid: %v", err)
	}
	if s.CPUPerHour != money.FromCents(10) {
		t.Errorf("CPU price = %v, want $0.10", s.CPUPerHour)
	}
	if s.FCPU != 0.014 {
		t.Errorf("FCPU = %v, want 0.014", s.FCPU)
	}
	// 25 Mbps = 3.125 MB/s
	if math.Abs(s.NetworkThroughput-3.125e6) > 1 {
		t.Errorf("throughput = %v, want 3.125e6 B/s", s.NetworkThroughput)
	}
}

func TestNetOnlyZeroesEverythingButNetwork(t *testing.T) {
	s := NetOnly()
	if err := s.Validate(); err != nil {
		t.Fatalf("NetOnly invalid: %v", err)
	}
	if !s.CPUPerHour.IsZero() || !s.DiskPerGBMonth.IsZero() || !s.IOPerMillion.IsZero() {
		t.Error("NetOnly must zero CPU, disk and I/O prices")
	}
	if s.NetworkPerGB.IsZero() {
		t.Error("NetOnly must keep the network price")
	}
	if s.NetworkThroughput != EC22008().NetworkThroughput {
		t.Error("NetOnly must keep EC2 physical parameters")
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func(mut func(*Schedule)) *Schedule {
		s := EC22008()
		mut(s)
		return s
	}
	tests := []struct {
		name string
		s    *Schedule
		want error
	}{
		{"negative cpu", mk(func(s *Schedule) { s.CPUPerHour = -1 }), ErrNegativePrice},
		{"negative disk", mk(func(s *Schedule) { s.DiskPerGBMonth = -1 }), ErrNegativePrice},
		{"negative net", mk(func(s *Schedule) { s.NetworkPerGB = -1 }), ErrNegativePrice},
		{"negative io", mk(func(s *Schedule) { s.IOPerMillion = -1 }), ErrNegativePrice},
		{"zero throughput", mk(func(s *Schedule) { s.NetworkThroughput = 0 }), ErrThroughput},
		{"zero fcpu", mk(func(s *Schedule) { s.FCPU = 0 }), ErrBadFactor},
		{"zero fio", mk(func(s *Schedule) { s.FIO = 0 }), ErrBadFactor},
		{"negative fn", mk(func(s *Schedule) { s.FNet = -1 }), ErrBadFactor},
		{"zero lcpu", mk(func(s *Schedule) { s.LCPU = 0 }), ErrBadFactor},
		{"negative boot", mk(func(s *Schedule) { s.BootTime = -time.Second }), ErrNegativeBoot},
		{"negative latency", mk(func(s *Schedule) { s.NetworkLatency = -time.Second }), ErrNegativeLatency},
	}
	for _, tt := range tests {
		if err := tt.s.Validate(); err != tt.want {
			t.Errorf("%s: Validate() = %v, want %v", tt.name, err, tt.want)
		}
	}
}

func TestCPUCost(t *testing.T) {
	s := EC22008()
	// One node for one hour = $0.10.
	if got := s.CPUCost(time.Hour, 1); got != money.FromCents(10) {
		t.Errorf("1h x 1 node = %v, want $0.10", got)
	}
	// Three nodes for 30 minutes = $0.15.
	if got := s.CPUCost(30*time.Minute, 3); got != money.FromCents(15) {
		t.Errorf("30m x 3 nodes = %v, want $0.15", got)
	}
	if got := s.CPUCost(0, 1); got != 0 {
		t.Errorf("zero duration = %v, want 0", got)
	}
	if got := s.CPUCost(time.Hour, 0); got != 0 {
		t.Errorf("zero nodes = %v, want 0", got)
	}
	if got := s.CPUCost(-time.Hour, 1); got != 0 {
		t.Errorf("negative duration = %v, want 0", got)
	}
}

func TestStorageCost(t *testing.T) {
	s := EC22008()
	// 1 GiB for one 30-day month = $0.15.
	month := 30 * 24 * time.Hour
	if got := s.StorageCost(1<<30, month); got != money.FromCents(15) {
		t.Errorf("1GiB-month = %v, want $0.15", got)
	}
	// Half the data for half the time = quarter the price.
	if got := s.StorageCost(1<<29, month/2); got != money.FromDollars(0.0375) {
		t.Errorf("0.5GiB x 0.5mo = %v, want $0.0375", got)
	}
	if got := s.StorageCost(0, month); got != 0 {
		t.Errorf("zero bytes = %v", got)
	}
	if got := s.StorageCost(1<<30, 0); got != 0 {
		t.Errorf("zero duration = %v", got)
	}
}

func TestTransferCost(t *testing.T) {
	s := EC22008()
	if got := s.TransferCost(1 << 30); got != money.FromCents(10) {
		t.Errorf("1GiB transfer = %v, want $0.10", got)
	}
	if got := s.TransferCost(0); got != 0 {
		t.Errorf("zero bytes = %v", got)
	}
	if got := s.TransferCost(-5); got != 0 {
		t.Errorf("negative bytes = %v", got)
	}
}

func TestIOCost(t *testing.T) {
	s := EC22008()
	if got := s.IOCost(1_000_000); got != money.FromCents(10) {
		t.Errorf("1M I/O = %v, want $0.10", got)
	}
	if got := s.IOCost(500_000); got != money.FromCents(5) {
		t.Errorf("0.5M I/O = %v, want $0.05", got)
	}
	if got := s.IOCost(0); got != 0 {
		t.Errorf("zero ops = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	s := EC22008()
	// 25 Mbps = 3.125e6 B/s; 3.125 MB should take 1 s.
	got := s.TransferTime(3_125_000)
	if d := got - time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("3.125MB at 25Mbps = %v, want ~1s", got)
	}
	// Latency applies even for zero bytes.
	s.NetworkLatency = 50 * time.Millisecond
	if got := s.TransferTime(0); got != 50*time.Millisecond {
		t.Errorf("zero-byte transfer = %v, want latency", got)
	}
}

func TestBootCost(t *testing.T) {
	s := EC22008()
	// 2 minutes at $0.10/h = $0.10 * 2/60.
	want := money.FromDollars(0.10 * 2.0 / 60.0)
	if got := s.BootCost(); got != want {
		t.Errorf("BootCost = %v, want %v", got, want)
	}
}

func TestClone(t *testing.T) {
	s := EC22008()
	c := s.Clone()
	c.CPUPerHour = money.FromDollars(99)
	if s.CPUPerHour == c.CPUPerHour {
		t.Error("Clone must not share state")
	}
}

func TestStringMentionsKeyValues(t *testing.T) {
	got := EC22008().String()
	if got == "" {
		t.Fatal("empty String()")
	}
}

// Property: storage cost is monotone in both bytes and duration.
func TestStorageMonotoneProperty(t *testing.T) {
	s := EC22008()
	f := func(b1, b2 uint32, d1, d2 uint32) bool {
		bytesA, bytesB := int64(b1), int64(b1)+int64(b2)
		durA := time.Duration(d1) * time.Second
		durB := durA + time.Duration(d2)*time.Second
		return s.StorageCost(bytesA, durA) <= s.StorageCost(bytesB, durB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer cost is additive to within rounding.
func TestTransferAdditiveProperty(t *testing.T) {
	s := EC22008()
	f := func(a, b uint16) bool {
		x, y := int64(a)*1024, int64(b)*1024
		lhs := s.TransferCost(x + y)
		rhs := s.TransferCost(x).Add(s.TransferCost(y))
		return lhs.Sub(rhs).Abs() <= 2 // rounding slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
