package catalog

// TPC-H schema with byte widths chosen to approximate a columnar layout.
// Row counts follow the TPC-H scaling rules (lineitem ≈ 6,000,000 × SF).
// ScaleFactorForBytes solves for the SF that makes the whole database hit a
// byte budget, so TPCH(ScaleFactorForBytes(2.5e12)) reproduces the paper's
// 2.5 TB back-end.

// TPC-H base cardinalities at SF 1.
const (
	rowsLineitemSF1 = 6_000_000
	rowsOrdersSF1   = 1_500_000
	rowsCustomerSF1 = 150_000
	rowsPartSF1     = 200_000
	rowsPartsuppSF1 = 800_000
	rowsSupplierSF1 = 10_000
	rowsNation      = 25
	rowsRegion      = 5
)

// TPCH builds the TPC-H catalog at the given scale factor. Fractional scale
// factors are allowed; row counts are rounded down but never below the SF-1
// fixed tables.
func TPCH(sf float64) *Catalog {
	if sf <= 0 {
		sf = 1
	}
	scale := func(base int64) int64 {
		n := int64(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	lineitem := &Table{
		Name: "lineitem",
		Rows: scale(rowsLineitemSF1),
		Columns: []Column{
			{Name: "l_orderkey", Type: Int64},
			{Name: "l_partkey", Type: Int64},
			{Name: "l_suppkey", Type: Int64},
			{Name: "l_linenumber", Type: Int32},
			{Name: "l_quantity", Type: Decimal},
			{Name: "l_extendedprice", Type: Decimal},
			{Name: "l_discount", Type: Decimal},
			{Name: "l_tax", Type: Decimal},
			{Name: "l_returnflag", Type: Char1},
			{Name: "l_linestatus", Type: Char1},
			{Name: "l_shipdate", Type: Date},
			{Name: "l_commitdate", Type: Date},
			{Name: "l_receiptdate", Type: Date},
			{Name: "l_shipinstruct", Type: VarChar, Width: 25},
			{Name: "l_shipmode", Type: VarChar, Width: 10},
			{Name: "l_comment", Type: VarChar, Width: 44},
		},
	}
	orders := &Table{
		Name: "orders",
		Rows: scale(rowsOrdersSF1),
		Columns: []Column{
			{Name: "o_orderkey", Type: Int64},
			{Name: "o_custkey", Type: Int64},
			{Name: "o_orderstatus", Type: Char1},
			{Name: "o_totalprice", Type: Decimal},
			{Name: "o_orderdate", Type: Date},
			{Name: "o_orderpriority", Type: VarChar, Width: 15},
			{Name: "o_clerk", Type: VarChar, Width: 15},
			{Name: "o_shippriority", Type: Int32},
			{Name: "o_comment", Type: VarChar, Width: 49},
		},
	}
	customer := &Table{
		Name: "customer",
		Rows: scale(rowsCustomerSF1),
		Columns: []Column{
			{Name: "c_custkey", Type: Int64},
			{Name: "c_name", Type: VarChar, Width: 25},
			{Name: "c_address", Type: VarChar, Width: 40},
			{Name: "c_nationkey", Type: Int32},
			{Name: "c_phone", Type: VarChar, Width: 15},
			{Name: "c_acctbal", Type: Decimal},
			{Name: "c_mktsegment", Type: VarChar, Width: 10},
			{Name: "c_comment", Type: VarChar, Width: 117},
		},
	}
	part := &Table{
		Name: "part",
		Rows: scale(rowsPartSF1),
		Columns: []Column{
			{Name: "p_partkey", Type: Int64},
			{Name: "p_name", Type: VarChar, Width: 55},
			{Name: "p_mfgr", Type: VarChar, Width: 25},
			{Name: "p_brand", Type: VarChar, Width: 10},
			{Name: "p_type", Type: VarChar, Width: 25},
			{Name: "p_size", Type: Int32},
			{Name: "p_container", Type: VarChar, Width: 10},
			{Name: "p_retailprice", Type: Decimal},
			{Name: "p_comment", Type: VarChar, Width: 23},
		},
	}
	partsupp := &Table{
		Name: "partsupp",
		Rows: scale(rowsPartsuppSF1),
		Columns: []Column{
			{Name: "ps_partkey", Type: Int64},
			{Name: "ps_suppkey", Type: Int64},
			{Name: "ps_availqty", Type: Int32},
			{Name: "ps_supplycost", Type: Decimal},
			{Name: "ps_comment", Type: VarChar, Width: 199},
		},
	}
	supplier := &Table{
		Name: "supplier",
		Rows: scale(rowsSupplierSF1),
		Columns: []Column{
			{Name: "s_suppkey", Type: Int64},
			{Name: "s_name", Type: VarChar, Width: 25},
			{Name: "s_address", Type: VarChar, Width: 40},
			{Name: "s_nationkey", Type: Int32},
			{Name: "s_phone", Type: VarChar, Width: 15},
			{Name: "s_acctbal", Type: Decimal},
			{Name: "s_comment", Type: VarChar, Width: 101},
		},
	}
	nation := &Table{
		Name: "nation",
		Rows: rowsNation,
		Columns: []Column{
			{Name: "n_nationkey", Type: Int32},
			{Name: "n_name", Type: VarChar, Width: 25},
			{Name: "n_regionkey", Type: Int32},
			{Name: "n_comment", Type: VarChar, Width: 152},
		},
	}
	region := &Table{
		Name: "region",
		Rows: rowsRegion,
		Columns: []Column{
			{Name: "r_regionkey", Type: Int32},
			{Name: "r_name", Type: VarChar, Width: 25},
			{Name: "r_comment", Type: VarChar, Width: 152},
		},
	}
	return MustNew(lineitem, orders, customer, part, partsupp, supplier, nation, region)
}

// ScaleFactorForBytes returns the scale factor at which the TPC-H catalog
// reaches approximately the requested total byte size. The search is a
// simple proportional solve: table sizes are linear in SF except for the
// two fixed tables, which are negligible.
func ScaleFactorForBytes(target int64) float64 {
	if target <= 0 {
		return 1
	}
	base := TPCH(1).TotalBytes()
	return float64(target) / float64(base)
}

// PaperDatabaseBytes is the back-end size used in §VII-A.
const PaperDatabaseBytes = int64(2_500_000_000_000) // 2.5 TB

// Paper returns the catalog scaled to the paper's 2.5 TB back-end.
func Paper() *Catalog {
	return TPCH(ScaleFactorForBytes(PaperDatabaseBytes))
}
