// Package catalog models the relational catalog of the back-end scientific
// database: tables, typed columns with byte widths, row counts derived from
// a scale factor, and index definitions. The cache (§V-C) stores whole table
// columns and indexes over them, so all sizing in the cost model flows from
// this package.
//
// The experimental schema is the TPC-H schema (the paper's workload is
// "TPCH-based" [13]) scaled so the total database size is 2.5 TB, matching
// the SDSS-like back-end of §VII-A.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnType enumerates the storage types used by the schema. Only the byte
// width matters to the cost model, but keeping the logical type makes
// catalogs self-describing.
type ColumnType int

// Supported column types.
const (
	Int32 ColumnType = iota
	Int64
	Float64
	Date
	Char1
	VarChar
	Decimal
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Date:
		return "date"
	case Char1:
		return "char(1)"
	case VarChar:
		return "varchar"
	case Decimal:
		return "decimal"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// DefaultWidth returns the storage width in bytes used when a column does
// not override it (VarChar columns always override).
func (t ColumnType) DefaultWidth() int64 {
	switch t {
	case Int32, Date:
		return 4
	case Int64, Float64, Decimal:
		return 8
	case Char1:
		return 1
	default:
		return 16
	}
}

// Column describes one column of a table.
type Column struct {
	Name  string
	Type  ColumnType
	Width int64 // bytes per value; 0 means Type.DefaultWidth()
}

// width returns the effective per-value width.
func (c Column) width() int64 {
	if c.Width > 0 {
		return c.Width
	}
	return c.Type.DefaultWidth()
}

// Table is a named relation with a row count and ordered columns.
type Table struct {
	Name    string
	Rows    int64
	Columns []Column

	byName map[string]int
}

// Column returns the column with the given name.
func (t *Table) Column(name string) (Column, bool) {
	i, ok := t.byName[name]
	if !ok {
		return Column{}, false
	}
	return t.Columns[i], true
}

// RowWidth is the total width of one row across all columns.
func (t *Table) RowWidth() int64 {
	var w int64
	for _, c := range t.Columns {
		w += c.width()
	}
	return w
}

// Bytes is the total byte size of the table.
func (t *Table) Bytes() int64 { return t.RowWidth() * t.Rows }

// ColumnRef identifies a column globally as "table.column".
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference in dotted form.
func (r ColumnRef) String() string { return r.Table + "." + r.Column }

// Col is a convenience constructor for ColumnRef.
func Col(table, column string) ColumnRef { return ColumnRef{Table: table, Column: column} }

// Catalog is the full schema of the back-end database.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// New builds a catalog from a list of tables. Table and column names must be
// unique; duplicates are an error because the cost model keys structures by
// name.
func New(tables ...*Table) (*Catalog, error) {
	c := &Catalog{tables: make(map[string]*Table, len(tables))}
	for _, t := range tables {
		if t.Name == "" {
			return nil, fmt.Errorf("catalog: table with empty name")
		}
		if t.Rows < 0 {
			return nil, fmt.Errorf("catalog: table %s has negative row count", t.Name)
		}
		if _, dup := c.tables[t.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate table %s", t.Name)
		}
		t.byName = make(map[string]int, len(t.Columns))
		for i, col := range t.Columns {
			if col.Name == "" {
				return nil, fmt.Errorf("catalog: table %s has a column with empty name", t.Name)
			}
			if _, dup := t.byName[col.Name]; dup {
				return nil, fmt.Errorf("catalog: duplicate column %s.%s", t.Name, col.Name)
			}
			t.byName[col.Name] = i
		}
		c.tables[t.Name] = t
		c.order = append(c.order, t.Name)
	}
	return c, nil
}

// MustNew is New panicking on error, for package-level schema literals.
func MustNew(tables ...*Table) *Catalog {
	c, err := New(tables...)
	if err != nil {
		panic(err)
	}
	return c
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns all tables in declaration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

// Resolve returns the column behind a reference.
func (c *Catalog) Resolve(ref ColumnRef) (Column, error) {
	t, ok := c.tables[ref.Table]
	if !ok {
		return Column{}, fmt.Errorf("catalog: unknown table %q", ref.Table)
	}
	col, ok := t.Column(ref.Column)
	if !ok {
		return Column{}, fmt.Errorf("catalog: unknown column %q", ref)
	}
	return col, nil
}

// ColumnBytes is the total byte size of one column (width × rows): the
// size(T) term of Eq. 12/13.
func (c *Catalog) ColumnBytes(ref ColumnRef) (int64, error) {
	t, ok := c.tables[ref.Table]
	if !ok {
		return 0, fmt.Errorf("catalog: unknown table %q", ref.Table)
	}
	col, ok := t.Column(ref.Column)
	if !ok {
		return 0, fmt.Errorf("catalog: unknown column %q", ref)
	}
	return col.width() * t.Rows, nil
}

// GroupBytes sums ColumnBytes over a set of references.
func (c *Catalog) GroupBytes(refs []ColumnRef) (int64, error) {
	var total int64
	for _, r := range refs {
		b, err := c.ColumnBytes(r)
		if err != nil {
			return 0, err
		}
		total += b
	}
	return total, nil
}

// TotalBytes is the size of the whole database.
func (c *Catalog) TotalBytes() int64 {
	var total int64
	for _, t := range c.tables {
		total += t.Bytes()
	}
	return total
}

// IndexDef defines an index over columns of one table. All columns must
// belong to the same table (composite cross-table indexes are not a thing
// the paper's cache builds).
type IndexDef struct {
	Table   string
	Columns []string
}

// Name returns the canonical index name, e.g. "idx_lineitem(l_shipdate,l_partkey)".
func (d IndexDef) Name() string {
	return "idx_" + d.Table + "(" + strings.Join(d.Columns, ",") + ")"
}

// Refs returns the column references the index covers.
func (d IndexDef) Refs() []ColumnRef {
	out := make([]ColumnRef, len(d.Columns))
	for i, col := range d.Columns {
		out[i] = Col(d.Table, col)
	}
	return out
}

// Validate checks that the index refers to existing columns.
func (d IndexDef) Validate(c *Catalog) error {
	if len(d.Columns) == 0 {
		return fmt.Errorf("catalog: index on %s has no columns", d.Table)
	}
	t, ok := c.Table(d.Table)
	if !ok {
		return fmt.Errorf("catalog: index on unknown table %q", d.Table)
	}
	seen := make(map[string]bool, len(d.Columns))
	for _, col := range d.Columns {
		if seen[col] {
			return fmt.Errorf("catalog: index %s repeats column %s", d.Name(), col)
		}
		seen[col] = true
		if _, ok := t.Column(col); !ok {
			return fmt.Errorf("catalog: index %s references unknown column %s.%s", d.Name(), d.Table, col)
		}
	}
	return nil
}

// indexOverheadPerRow approximates B+-tree pointer/page overhead per entry.
const indexOverheadPerRow = 8

// IndexBytes estimates the stored size of the index: key widths plus
// per-entry overhead, times the table row count (size(I) of Eq. 15).
func (c *Catalog) IndexBytes(d IndexDef) (int64, error) {
	if err := d.Validate(c); err != nil {
		return 0, err
	}
	t, _ := c.Table(d.Table)
	var keyWidth int64
	for _, colName := range d.Columns {
		col, _ := t.Column(colName)
		keyWidth += col.width()
	}
	return (keyWidth + indexOverheadPerRow) * t.Rows, nil
}

// SortedTableNames returns table names in lexical order (stable reporting).
func (c *Catalog) SortedTableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
