package catalog

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func simpleCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := New(
		&Table{Name: "t1", Rows: 100, Columns: []Column{
			{Name: "a", Type: Int64},
			{Name: "b", Type: Int32},
			{Name: "c", Type: VarChar, Width: 20},
		}},
		&Table{Name: "t2", Rows: 10, Columns: []Column{
			{Name: "x", Type: Char1},
		}},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewRejectsDuplicates(t *testing.T) {
	_, err := New(
		&Table{Name: "t", Rows: 1, Columns: []Column{{Name: "a", Type: Int32}}},
		&Table{Name: "t", Rows: 1, Columns: []Column{{Name: "a", Type: Int32}}},
	)
	if err == nil {
		t.Error("duplicate table accepted")
	}
	_, err = New(&Table{Name: "t", Rows: 1, Columns: []Column{
		{Name: "a", Type: Int32}, {Name: "a", Type: Int64},
	}})
	if err == nil {
		t.Error("duplicate column accepted")
	}
	_, err = New(&Table{Name: "", Rows: 1})
	if err == nil {
		t.Error("empty table name accepted")
	}
	_, err = New(&Table{Name: "t", Rows: -1})
	if err == nil {
		t.Error("negative rows accepted")
	}
	_, err = New(&Table{Name: "t", Rows: 1, Columns: []Column{{Name: "", Type: Int32}}})
	if err == nil {
		t.Error("empty column name accepted")
	}
}

func TestRowWidthAndBytes(t *testing.T) {
	c := simpleCatalog(t)
	tab, ok := c.Table("t1")
	if !ok {
		t.Fatal("t1 missing")
	}
	// 8 (int64) + 4 (int32) + 20 (varchar) = 32 bytes.
	if got := tab.RowWidth(); got != 32 {
		t.Errorf("RowWidth = %d, want 32", got)
	}
	if got := tab.Bytes(); got != 3200 {
		t.Errorf("Bytes = %d, want 3200", got)
	}
	if got := c.TotalBytes(); got != 3200+10 {
		t.Errorf("TotalBytes = %d, want 3210", got)
	}
}

func TestColumnBytes(t *testing.T) {
	c := simpleCatalog(t)
	got, err := c.ColumnBytes(Col("t1", "a"))
	if err != nil || got != 800 {
		t.Errorf("ColumnBytes(t1.a) = %d, %v; want 800", got, err)
	}
	if _, err := c.ColumnBytes(Col("nope", "a")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := c.ColumnBytes(Col("t1", "nope")); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestGroupBytes(t *testing.T) {
	c := simpleCatalog(t)
	got, err := c.GroupBytes([]ColumnRef{Col("t1", "a"), Col("t1", "b")})
	if err != nil || got != 800+400 {
		t.Errorf("GroupBytes = %d, %v; want 1200", got, err)
	}
	if _, err := c.GroupBytes([]ColumnRef{Col("bad", "a")}); err == nil {
		t.Error("bad ref accepted")
	}
}

func TestResolve(t *testing.T) {
	c := simpleCatalog(t)
	col, err := c.Resolve(Col("t1", "c"))
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if col.Type != VarChar || col.Width != 20 {
		t.Errorf("Resolve = %+v", col)
	}
	if _, err := c.Resolve(Col("t9", "c")); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestIndexDef(t *testing.T) {
	c := simpleCatalog(t)
	d := IndexDef{Table: "t1", Columns: []string{"a", "b"}}
	if err := d.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := d.Name(), "idx_t1(a,b)"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	refs := d.Refs()
	if len(refs) != 2 || refs[0] != Col("t1", "a") {
		t.Errorf("Refs = %v", refs)
	}
	// key width 12 + overhead 8 = 20 per row, 100 rows.
	size, err := c.IndexBytes(d)
	if err != nil || size != 2000 {
		t.Errorf("IndexBytes = %d, %v; want 2000", size, err)
	}
}

func TestIndexDefRejections(t *testing.T) {
	c := simpleCatalog(t)
	cases := []IndexDef{
		{Table: "t1", Columns: nil},
		{Table: "zzz", Columns: []string{"a"}},
		{Table: "t1", Columns: []string{"zzz"}},
		{Table: "t1", Columns: []string{"a", "a"}},
	}
	for _, d := range cases {
		if err := d.Validate(c); err == nil {
			t.Errorf("Validate(%+v) accepted", d)
		}
		if _, err := c.IndexBytes(d); err == nil {
			t.Errorf("IndexBytes(%+v) accepted", d)
		}
	}
}

func TestTPCHShape(t *testing.T) {
	c := TPCH(1)
	li, ok := c.Table("lineitem")
	if !ok {
		t.Fatal("lineitem missing")
	}
	if li.Rows != 6_000_000 {
		t.Errorf("lineitem rows = %d, want 6M", li.Rows)
	}
	if len(c.Tables()) != 8 {
		t.Errorf("table count = %d, want 8", len(c.Tables()))
	}
	// Fixed tables do not scale.
	c10 := TPCH(10)
	nat, _ := c10.Table("nation")
	if nat.Rows != 25 {
		t.Errorf("nation rows = %d, want 25", nat.Rows)
	}
	ord, _ := c10.Table("orders")
	if ord.Rows != 15_000_000 {
		t.Errorf("orders rows at SF10 = %d, want 15M", ord.Rows)
	}
}

func TestTPCHNonPositiveSF(t *testing.T) {
	if got := TPCH(0).TotalBytes(); got != TPCH(1).TotalBytes() {
		t.Error("SF 0 should fall back to SF 1")
	}
	if got := TPCH(-3).TotalBytes(); got != TPCH(1).TotalBytes() {
		t.Error("negative SF should fall back to SF 1")
	}
}

func TestScaleFactorForBytesHitsTarget(t *testing.T) {
	target := PaperDatabaseBytes
	sf := ScaleFactorForBytes(target)
	got := TPCH(sf).TotalBytes()
	if rel := math.Abs(float64(got-target)) / float64(target); rel > 0.01 {
		t.Errorf("TPCH(%v).TotalBytes() = %d, want within 1%% of %d", sf, got, target)
	}
	if ScaleFactorForBytes(0) != 1 {
		t.Error("non-positive target should return SF 1")
	}
}

func TestPaperCatalogIs2500GB(t *testing.T) {
	got := Paper().TotalBytes()
	if rel := math.Abs(float64(got-PaperDatabaseBytes)) / float64(PaperDatabaseBytes); rel > 0.01 {
		t.Errorf("Paper() size = %d, want ~2.5TB", got)
	}
}

func TestSortedTableNames(t *testing.T) {
	names := TPCH(1).SortedTableNames()
	if len(names) != 8 {
		t.Fatalf("len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) >= 0 {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestColumnRefString(t *testing.T) {
	if got := Col("lineitem", "l_shipdate").String(); got != "lineitem.l_shipdate" {
		t.Errorf("String = %q", got)
	}
}

// Property: total catalog size scales linearly with SF (up to fixed tables).
func TestTPCHScalesLinearlyProperty(t *testing.T) {
	base := TPCH(1).TotalBytes()
	f := func(k uint8) bool {
		sf := float64(k%50) + 1
		got := TPCH(sf).TotalBytes()
		want := float64(base) * sf
		return math.Abs(float64(got)-want)/want < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every TPCH column has positive size and resolvable reference.
func TestTPCHColumnsResolvable(t *testing.T) {
	c := TPCH(2)
	for _, tab := range c.Tables() {
		for _, col := range tab.Columns {
			ref := Col(tab.Name, col.Name)
			b, err := c.ColumnBytes(ref)
			if err != nil || b <= 0 {
				t.Errorf("ColumnBytes(%v) = %d, %v", ref, b, err)
			}
		}
	}
}
