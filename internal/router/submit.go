package router

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/server/wire"
)

// maxShardAttempts bounds the not-owned retry loop per shard group. At
// the 500µs pause between refresh rounds this is a ~200ms budget —
// enough to ride out an externally-driven migration, short enough that
// a genuinely ownerless shard fails queries instead of wedging them.
const maxShardAttempts = 400

// SubmitBatch routes each query to its shard's owning backend and
// returns positional replies. Items bound for different shards travel
// in parallel; items for a shard in migration blackout park on the hold
// and replay after cutover. Per-backend failures come back tag-scoped
// in Reply.Err — one dead backend costs its own shards' items, never
// the batch or the connection.
func (r *Router) SubmitBatch(ctx context.Context, qs []wire.Query, _ int64) ([]wire.Reply, error) {
	if r.closedNow() {
		return nil, ErrClosed
	}
	if len(qs) == 0 {
		return nil, errors.New("router: empty batch")
	}
	r.queries.Add(int64(len(qs)))
	// Shard each item with the same hash the backends use — shared by
	// construction, not by convention.
	ks := make([]int, len(qs))
	single := true
	for i := range qs {
		ks[i] = server.ShardIndexFor(qs[i].Tenant, qs[i].Template, r.shards)
		if ks[i] != ks[0] {
			single = false
		}
	}
	// Fast path: the whole batch is one shard group (always true for
	// batch=1, the router's hottest shape) — no index map, no fan-out
	// goroutine, no reply reshuffle.
	if single {
		return r.submitShardGroup(ctx, ks[0], qs), nil
	}
	replies := make([]wire.Reply, len(qs))
	groups := make(map[int][]int)
	for i, k := range ks {
		groups[k] = append(groups[k], i)
	}
	var wg sync.WaitGroup
	for k, idxs := range groups {
		wg.Add(1)
		go func(k int, idxs []int) {
			defer wg.Done()
			sub := make([]wire.Query, len(idxs))
			for j, i := range idxs {
				sub[j] = qs[i]
			}
			rs := r.submitShardGroup(ctx, k, sub)
			for j, i := range idxs {
				replies[i] = rs[j]
			}
		}(k, idxs)
	}
	wg.Wait()
	return replies, nil
}

// SubmitBatchAsync satisfies wire.Engine: the router's submit path is
// already concurrent per shard, so async is a goroutine around the
// synchronous fan-out.
func (r *Router) SubmitBatchAsync(ctx context.Context, qs []wire.Query, decodeNanos int64, done func([]wire.Reply)) error {
	if r.closedNow() {
		return ErrClosed
	}
	if len(qs) == 0 {
		return errors.New("router: empty batch")
	}
	go func() {
		rs, err := r.SubmitBatch(ctx, qs, decodeNanos)
		if err != nil {
			rs = errReplies(len(qs), err)
		}
		done(rs)
	}()
	return nil
}

// submitShardGroup delivers one shard's slice of a batch to whoever
// owns the shard right now. Two retry triggers, with sharply different
// rules:
//
//   - "shard not owned here" (stale map, or a migration we did not
//     drive): nothing was decided — rejection touches no shard state —
//     so the group retries against refreshed ownership, bounded by
//     maxShardAttempts.
//   - connection death mid-submit: the group is NOT retried. The
//     backend may have decided the batch before the connection broke,
//     and economy decisions happen exactly once; the caller sees the
//     error per item and owns any retry.
func (r *Router) submitShardGroup(ctx context.Context, shard int, qs []wire.Query) []wire.Reply {
	var lastErr error
	for attempt := 0; attempt < maxShardAttempts; attempt++ {
		own, err := r.waitHold(ctx, shard)
		if err != nil {
			return errReplies(len(qs), err)
		}
		rs, err := r.submitVia(ctx, r.backends[own], qs)
		if err != nil {
			var te *wire.TaggedError
			if errors.As(err, &te) && strings.Contains(te.Msg, "shard not owned here") {
				lastErr = err
				r.noteStale(ctx, shard, attempt)
				continue
			}
			// Backend down or batch-fatal error. Fail the items
			// tag-scoped — the pool's backoff already bounds how often
			// the dispatcher re-dials, and parking queries behind a dead
			// backend would turn one failure into a pile-up. (A dead
			// connection is NOT retried here: the backend may have
			// decided the batch before the connection broke.)
			return errReplies(len(qs), fmt.Errorf("router: shard %d backend %d: %w", shard, own, err))
		}
		if repliesNotOwned(rs) {
			lastErr = fmt.Errorf("router: backend %d rejected shard %d", own, shard)
			r.noteStale(ctx, shard, attempt)
			continue
		}
		return rs
	}
	return errReplies(len(qs), fmt.Errorf("router: shard %d ownership unresolved after %d attempts: %w", shard, maxShardAttempts, lastErr))
}

// waitHold parks until the shard is out of migration blackout, then
// returns the current owner. The common case — no hold — is one
// mutex acquisition.
func (r *Router) waitHold(ctx context.Context, shard int) (int, error) {
	for {
		r.mu.Lock()
		hold := r.holds[shard]
		own := r.owner[shard]
		r.mu.Unlock()
		if hold == nil {
			return own, nil
		}
		select {
		case <-hold:
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-r.stop:
			return 0, ErrClosed
		}
	}
}

// noteStale records a reroute and refreshes ownership for a shard the
// mapped backend just disclaimed. Router-driven migrations never get
// here (the hold covers their window); this is the path for ownership
// moved under us — a second router, or an operator driving the
// backends directly.
func (r *Router) noteStale(ctx context.Context, shard, attempt int) {
	r.reroutes.Add(1)
	if r.refreshOwner(shard) {
		return
	}
	// Nobody owns the shard right now: an extract/install window is
	// open somewhere. Back off briefly and let the retry loop re-ask.
	select {
	case <-time.After(500 * time.Microsecond):
	case <-ctx.Done():
	}
}

// refreshOwner re-learns one shard's owner from the backends' own
// answers. Returns true if exactly one backend claims it.
func (r *Router) refreshOwner(shard int) bool {
	var claimant = -1
	for _, b := range r.backends {
		own, err := r.probeOwners(b)
		if err != nil || shard >= len(own) || !own[shard] {
			continue
		}
		if claimant >= 0 {
			return false // multiple claimants: let the next reject sort it out
		}
		claimant = b.id
	}
	if claimant < 0 {
		return false
	}
	r.mu.Lock()
	if r.holds[shard] == nil {
		r.owner[shard] = claimant
	}
	r.mu.Unlock()
	return true
}

func errReplies(n int, err error) []wire.Reply {
	rs := make([]wire.Reply, n)
	for i := range rs {
		rs[i] = wire.Reply{Err: err.Error()}
	}
	return rs
}

func repliesNotOwned(rs []wire.Reply) bool {
	// A disowned shard rejects the whole drain, so checking any item
	// would do; scan them all in case a mixed batch ever appears.
	for i := range rs {
		if strings.Contains(rs[i].Err, "shard not owned here") {
			return true
		}
	}
	return false
}
