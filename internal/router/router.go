// Package router implements the stateless cluster front: one process
// that speaks the full wire protocol to clients, owns the shard →
// backend map, and fans every batch out to the cloudcached backends
// that actually run the economy. The router holds no durable state —
// ownership is rediscovered from the backends' own OwnedShards answers
// at boot, so a router restart (or a second router) converges on the
// same map the backends already agree on.
//
// The router is a wire.Engine: the same protocol loops that serve the
// in-process engine serve it, so clients cannot tell a router from a
// single backend except by throughput.
package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/server/wire"
)

// ErrClosed is returned by calls on a router after Close.
var ErrClosed = errors.New("router: closed")

// The router serves the same protocol loops as the in-process engine.
var _ wire.Engine = (*Router)(nil)

// BackendConfig names one cloudcached backend: its wire address
// (required) and its HTTP address (optional; enables /readyz health
// probing and richer state in the router's own /readyz).
type BackendConfig struct {
	Addr    string
	HTTPURL string
}

// Config configures a Router.
type Config struct {
	Backends []BackendConfig
	// HealthInterval is the period of the backend health loop
	// (default 500ms; negative disables the loop).
	HealthInterval time.Duration
	// BootstrapTimeout bounds how long New keeps retrying unreachable
	// backends before failing (default 10s).
	BootstrapTimeout time.Duration
	Log              *slog.Logger
}

// backend is one cloudcached instance behind the router.
type backend struct {
	id      int
	addr    string
	httpURL string
	pool    *wire.PersistentMux

	// dispatch feeds the backend's coalescing loop: concurrent shard
	// groups bound for this backend merge into one wire frame, so many
	// small client batches cost one backend round trip, not one each.
	dispatch chan pendingGroup

	healthy atomic.Bool
	state   atomic.Value // string: last /readyz (or wire probe) verdict
}

// Router is the cluster front. It implements wire.Engine.
type Router struct {
	log      *slog.Logger
	backends []*backend
	shards   int

	// mu guards the ownership map and the per-shard migration holds.
	// owner[k] is the backend id serving shard k; holds[k] is non-nil
	// while a router-driven migration has shard k in its blackout
	// window — submitters park on the channel and replay the gap when
	// cutover closes it.
	mu    sync.Mutex
	owner []int
	holds []chan struct{}

	// curMu guards the EventsViewSince cursor table: an opaque cursor
	// handed to the caller maps to one last-seen journal Seq per
	// backend (each backend numbers its own journal independently).
	curMu      sync.Mutex
	cursors    map[int64]*cursorEntry
	nextCursor int64
	curClock   int64 // logical access clock for LRU eviction

	queries       atomic.Int64
	reroutes      atomic.Int64
	migrations    atomic.Int64
	lastBlackout  atomic.Int64 // nanoseconds, most recent migration
	totalBlackout atomic.Int64 // nanoseconds, summed

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New connects to every backend, learns the shard map from their
// OwnedShards answers, resolves conflicts (a fresh cluster boots with
// every backend owning every shard), and starts the health loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	if cfg.BootstrapTimeout <= 0 {
		cfg.BootstrapTimeout = 10 * time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	r := &Router{
		log:     cfg.Log,
		cursors: make(map[int64]*cursorEntry),
		stop:    make(chan struct{}),
	}
	for i, bc := range cfg.Backends {
		b := &backend{
			id:       i,
			addr:     bc.Addr,
			httpURL:  bc.HTTPURL,
			pool:     wire.NewPersistentMux(bc.Addr),
			dispatch: make(chan pendingGroup, dispatchQueue),
		}
		b.state.Store("unknown")
		r.backends = append(r.backends, b)
	}
	if err := r.bootstrap(cfg.BootstrapTimeout); err != nil {
		for _, b := range r.backends {
			b.pool.Close()
		}
		return nil, err
	}
	for _, b := range r.backends {
		r.wg.Add(1)
		go r.dispatchLoop(b)
	}
	if cfg.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop(cfg.HealthInterval)
	}
	return r, nil
}

// bootstrap learns the cluster shape. Every backend must answer Owners
// within the deadline and report the same shard count. Ownership rules:
// a shard owned by exactly one backend stays there; a shard owned by
// several is resolved by evidence of live state — ownership is
// runtime-only, so a restarted backend re-claims every slot, including
// shards it migrated away, and picking its empty (or stale-snapshot)
// copy over the live one would silently lose the economy. A claimant
// whose shard has decided queries or holds residency wins over empty
// claimants; two claimants with non-empty state is a divergence the
// router refuses to auto-resolve; all-empty claimants (the fresh-cluster
// case, where every backend booted with a full map) are spread
// round-robin, and the losers frozen so exactly one economy ever decides
// a shard's keys. A shard owned by nobody is fatal — its state lives in
// some snapshot the operator must restore first.
func (r *Router) bootstrap(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	owners := make([][]bool, len(r.backends))
	loads := make([][]server.ShardStats, len(r.backends))
	for i, b := range r.backends {
		for {
			own, per, err := r.probeState(b)
			if err == nil {
				owners[i], loads[i] = own, per
				b.healthy.Store(true)
				b.state.Store("ok")
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("router: backend %d (%s) unreachable: %w", i, b.addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	r.shards = len(owners[0])
	for i, own := range owners {
		if len(own) != r.shards {
			return fmt.Errorf("router: backend %d reports %d shards, backend 0 reports %d — mixed cluster", i, len(own), r.shards)
		}
	}
	if r.shards == 0 {
		return errors.New("router: backends report zero shards")
	}
	r.owner = make([]int, r.shards)
	r.holds = make([]chan struct{}, r.shards)
	for k := 0; k < r.shards; k++ {
		var cands []int
		for i := range owners {
			if owners[i][k] {
				cands = append(cands, i)
			}
		}
		switch {
		case len(cands) == 0:
			return fmt.Errorf("router: shard %d owned by no backend — restore its snapshot before routing", k)
		case len(cands) == 1:
			r.owner[k] = cands[0]
		default:
			var live []int
			for _, i := range cands {
				if shardHasState(loads[i], k) {
					live = append(live, i)
				}
			}
			var keep int
			switch {
			case len(live) == 1:
				keep = live[0]
			case len(live) > 1:
				return fmt.Errorf("router: shard %d carries non-empty state on backends %v — refusing to pick a side; freeze or wipe the stale copy before routing", k, live)
			default:
				keep = cands[k%len(cands)] // all claimants empty: spread them
			}
			r.owner[k] = keep
			for _, i := range cands {
				if i == keep {
					continue
				}
				cl, err := r.backends[i].pool.Get()
				if err != nil {
					return fmt.Errorf("router: backend %d (%s): %w", i, r.backends[i].addr, err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err = cl.FreezeShard(ctx, k)
				cancel()
				if err != nil {
					return fmt.Errorf("router: freeze shard %d on backend %d: %w", k, i, err)
				}
			}
			r.log.Info("router: resolved multi-owned shard", "shard", k, "kept", keep, "frozen", len(cands)-1)
		}
	}
	r.log.Info("router: bootstrap complete", "backends", len(r.backends), "shards", r.shards)
	return nil
}

// probeState fetches one backend's ownership map and per-shard stats in
// a single bootstrap probe; the stats are the evidence multi-owned
// shards are resolved with.
func (r *Router) probeState(b *backend) ([]bool, []server.ShardStats, error) {
	cl, err := b.pool.Get()
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	own, err := cl.Owners(ctx)
	if err != nil {
		b.pool.MarkDead(cl)
		return nil, nil, err
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		b.pool.MarkDead(cl)
		return nil, nil, err
	}
	return own, st.PerShard, nil
}

// shardHasState reports whether a backend's shard k carries a live (or
// restored) economy rather than a just-built empty slot. The economy
// clock is deliberately excluded: it advances with the server's wall
// clock whether or not the shard ever decided anything.
func shardHasState(per []server.ShardStats, k int) bool {
	if k >= len(per) {
		return false
	}
	s := per[k]
	return s.Queries > 0 || s.Errors > 0 || s.ResidentBytes > 0 ||
		s.PendingBuilds > 0 || s.Investments > 0 || s.RevenueUSD != 0
}

func (r *Router) probeOwners(b *backend) ([]bool, error) {
	cl, err := b.pool.Get()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	own, err := cl.Owners(ctx)
	if err != nil {
		b.pool.MarkDead(cl)
		return nil, err
	}
	return own, nil
}

// Shards returns the cluster-wide shard count.
func (r *Router) Shards() int { return r.shards }

// Owner reports which backend currently serves a shard.
func (r *Router) Owner(shard int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.owner[shard]
}

// ownerSnapshot copies the ownership map for a consistent read.
func (r *Router) ownerSnapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.owner...)
}

// Migrate moves a live shard from its current owner to backend `to`:
// raise the hold (new submitters for the shard park), extract the
// frozen shard from the source, install the packet on the destination,
// flip the map, drop the hold — parked submitters replay the gap
// against the new owner. The returned duration is the blackout window:
// freeze-to-cutover, the time the shard answered nobody.
//
// A failed install degrades by evidence, never by guess. A tag-scoped
// refusal (*wire.TaggedError) is definitive — the destination validated
// and rejected the packet without touching state — so the packet is
// reinstalled on the source and nothing happened. A transport failure is
// ambiguous: the destination may have applied the install and died
// before the ack arrived, and reinstalling on the source would leave two
// backends deciding the same shard (split-brain, breaking the
// exactly-once economy). So the destination's ownership is verified
// first: if it owns the shard the migration actually succeeded (lost
// ack); if it verifiably does not, the source is restored; if it cannot
// be reached, the shard is left frozen and the error tells the operator
// to resolve it — queries answer tag-scoped errors in the meantime.
func (r *Router) Migrate(ctx context.Context, shard, to int) (time.Duration, error) {
	if shard < 0 || shard >= r.shards {
		return 0, fmt.Errorf("router: shard %d out of range [0,%d)", shard, r.shards)
	}
	if to < 0 || to >= len(r.backends) {
		return 0, fmt.Errorf("router: backend %d out of range [0,%d)", to, len(r.backends))
	}
	r.mu.Lock()
	if r.holds[shard] != nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("router: shard %d is already migrating", shard)
	}
	from := r.owner[shard]
	if from == to {
		r.mu.Unlock()
		return 0, nil
	}
	hold := make(chan struct{})
	r.holds[shard] = hold
	r.mu.Unlock()

	// cutover publishes the final owner and releases everyone parked on
	// the hold; it runs exactly once on every path out of here.
	cutover := func(newOwner int) {
		r.mu.Lock()
		r.owner[shard] = newOwner
		r.holds[shard] = nil
		r.mu.Unlock()
		close(hold)
	}

	start := time.Now()
	srcCl, err := r.backends[from].pool.Get()
	if err != nil {
		cutover(from)
		return 0, fmt.Errorf("router: source backend %d: %w", from, err)
	}
	dstCl, err := r.backends[to].pool.Get()
	if err != nil {
		cutover(from)
		return 0, fmt.Errorf("router: destination backend %d: %w", to, err)
	}
	packet, err := srcCl.ExtractShard(ctx, shard)
	if err != nil {
		cutover(from)
		return 0, fmt.Errorf("router: extract shard %d from backend %d: %w", shard, from, err)
	}
	if err := dstCl.InstallShard(ctx, shard, packet); err != nil {
		var te *wire.TaggedError
		if !errors.As(err, &te) {
			// Transport failure: the ack may have been lost after the
			// destination adopted the shard. Ask it before deciding.
			own, perr := r.probeOwners(r.backends[to])
			if perr == nil && shard < len(own) && own[shard] {
				// Lost ack — the install landed. Finish the cutover.
				cutover(to)
				d := time.Since(start)
				r.migrations.Add(1)
				r.lastBlackout.Store(int64(d))
				r.totalBlackout.Add(int64(d))
				r.log.Warn("router: shard migrated despite lost install ack", "shard", shard, "from", from, "to", to, "blackout", d, "err", err)
				return d, nil
			}
			if perr != nil {
				// Cannot tell whether the destination adopted the packet;
				// reinstalling on the source could double-decide the shard.
				// Leave it frozen — queries answer tag-scoped errors until
				// the operator resolves which side holds the state.
				cutover(from)
				return 0, fmt.Errorf("router: shard %d in limbo: install on backend %d failed (%v) and its ownership cannot be verified (%v); shard left frozen — resolve before reinstalling", shard, to, err, perr)
			}
			// The destination answered and does not own the shard: the
			// install verifiably never applied, so restoring is safe.
		}
		// Put the shard back where it came from: the source slot is
		// empty and frozen, so reinstall is legal and restores the
		// pre-migration world exactly.
		if rerr := srcCl.InstallShard(ctx, shard, packet); rerr != nil {
			cutover(from)
			return 0, fmt.Errorf("router: shard %d stranded: install on backend %d failed (%v), restore to backend %d failed (%v)", shard, to, err, from, rerr)
		}
		cutover(from)
		return 0, fmt.Errorf("router: install shard %d on backend %d (restored to %d): %w", shard, to, from, err)
	}
	cutover(to)
	d := time.Since(start)
	r.migrations.Add(1)
	r.lastBlackout.Store(int64(d))
	r.totalBlackout.Add(int64(d))
	r.log.Info("router: shard migrated", "shard", shard, "from", from, "to", to, "blackout", d)
	return d, nil
}

// Close stops the health loop and closes every backend pool.
func (r *Router) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.stop)
		r.wg.Wait()
		for _, b := range r.backends {
			if cerr := b.pool.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

func (r *Router) closedNow() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}
