package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/economy"
	"repro/internal/router"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// quietLog keeps the router's operational chatter out of test output.
var quietLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// killableListener tracks accepted connections so a test can sever a
// backend the way SIGKILL would: listener and every live connection
// closed at once, nothing drained.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) kill() {
	l.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// newBackend boots one cloudcached-equivalent: an engine plus a wire
// listener. delays, when non-nil, gives each shard a decision-delay
// knob so concurrency tests get genuinely scrambled completion order.
func newBackend(t *testing.T, shards int, delays []atomic.Int64) (*server.Server, string, *killableListener) {
	return newBackendCfg(t, shards, delays, nil)
}

// newBackendCfg is newBackend with a params hook, for tests that need a
// backend whose configuration fingerprint differs from its peers'.
func newBackendCfg(t *testing.T, shards int, delays []atomic.Int64, mutate func(*scheme.Params)) (*server.Server, string, *killableListener) {
	t.Helper()
	cat := catalog.TPCH(20)
	params := scheme.DefaultParams(cat)
	params.RegretFraction = 0.0001
	params.LoadFactor = 0.02
	if mutate != nil {
		mutate(&params)
	}
	cfg := server.Config{
		Shards: shards,
		Scheme: "econ-cheap",
		Params: params,
		Clock:  server.NewVirtualClock(),
	}
	if delays != nil {
		cfg.DecideDelay = func(shard int) {
			if d := delays[shard].Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &killableListener{Listener: raw}
	go wire.ServeEngine(ln, wire.ServerEngine(srv))
	t.Cleanup(func() {
		ln.Close()
		srv.Shutdown(context.Background())
	})
	return srv, raw.Addr().String(), ln
}

// newRouterFront builds a router over the addrs and serves it on its
// own wire listener, so tests drive the whole path a client sees:
// TCP -> router protocol loop -> router fan-out -> TCP -> backend.
func newRouterFront(t *testing.T, addrs []string, health time.Duration) (*router.Router, string) {
	t.Helper()
	cfgs := make([]router.BackendConfig, len(addrs))
	for i, a := range addrs {
		cfgs[i] = router.BackendConfig{Addr: a}
	}
	r, err := router.New(router.Config{Backends: cfgs, HealthInterval: health, Log: quietLog})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go wire.ServeEngine(ln, r)
	t.Cleanup(func() {
		ln.Close()
		r.Close()
	})
	return r, ln.Addr().String()
}

// shardTenants finds one tenant per shard using the exported routing
// hash, so each test worker owns one shard's arrival order outright.
func shardTenants(shards int) []string {
	tenants := make([]string, shards)
	found := 0
	for i := 0; found < shards; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		idx := server.ShardIndexFor(name, "", shards)
		if tenants[idx] == "" {
			tenants[idx] = name
			found++
		}
	}
	return tenants
}

// batchFor builds worker w's round-r batch: template rotation, explicit
// selectivities and budget curves so routed queries exercise the full
// query grammar, deterministically.
func batchFor(tenants []string, w, r int) []wire.Query {
	templates := []string{"Q1", "Q6", "Q3", "Q10", "Q14", "Q18"}
	qs := make([]wire.Query, 1+r%3)
	for i := range qs {
		q := wire.Query{
			Tenant:   tenants[w],
			Template: templates[(w+r+i)%len(templates)],
		}
		if (r+i)%3 != 2 {
			q.Selectivity = 0.001 + 0.0001*float64((r+i)%9)
			q.HasSelectivity = true
		}
		if (r+i)%4 != 3 {
			q.Budget = &server.BudgetJSON{Shape: "step", PriceUSD: 0.05, TmaxSec: 3600}
		}
		qs[i] = q
	}
	return qs
}

// normReplies renders replies to their wire bytes with QueryID zeroed —
// the one field minted from a per-process global counter.
func normReplies(rs []wire.Reply) []byte {
	c := make([]wire.Reply, len(rs))
	copy(c, rs)
	for i := range c {
		c[i].Resp.QueryID = 0
	}
	return wire.AppendReplyBatch(nil, c)
}

// TestRouterBootstrap checks fresh-cluster conflict resolution: two
// backends boot owning every shard; after router bootstrap each shard
// is owned by exactly one of them, and the router's map points at it.
func TestRouterBootstrap(t *testing.T) {
	const shards = 4
	srvA, addrA, _ := newBackend(t, shards, nil)
	srvB, addrB, _ := newBackend(t, shards, nil)
	r, _ := newRouterFront(t, []string{addrA, addrB}, -1)

	owned := [][]bool{srvA.OwnedShards(), srvB.OwnedShards()}
	for k := 0; k < shards; k++ {
		a, b := owned[0][k], owned[1][k]
		if a == b {
			t.Fatalf("shard %d: want exactly one owner, got A=%v B=%v", k, a, b)
		}
		want := 0
		if b {
			want = 1
		}
		if got := r.Owner(k); got != want {
			t.Fatalf("shard %d: router maps to backend %d, backends say %d", k, got, want)
		}
	}
	if r.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", r.Shards(), shards)
	}
}

// TestRouterMigrationParity is the cluster-tier determinism contract:
// concurrent workers submit through a real TCP router while a hot shard
// live-migrates between backends mid-run. Every reply — including those
// parked on the migration hold and replayed after cutover — must be
// byte-identical to a sequential no-migration replay on a single fresh
// backend, and the router's merged stats must match the single
// process's aggregate. Run under -race.
func TestRouterMigrationParity(t *testing.T) {
	const shards = 4
	const rounds = 40
	const hot = 2
	const migrateAt = 15

	delays := make([]atomic.Int64, shards)
	rng := rand.New(rand.NewSource(7))
	for i := range delays {
		delays[i].Store(int64(time.Duration(rng.Intn(200)) * time.Microsecond))
	}
	_, addrA, _ := newBackend(t, shards, delays)
	_, addrB, _ := newBackend(t, shards, delays)
	r, front := newRouterFront(t, []string{addrA, addrB}, -1)
	tenants := shardTenants(shards)

	cl, err := wire.DialMux(front)
	if err != nil {
		t.Fatal(err)
	}

	got := make([][][]wire.Reply, shards)
	hotRound := make(chan struct{})
	var hotOnce sync.Once
	var wg sync.WaitGroup
	errCh := make(chan error, shards)
	for w := 0; w < shards; w++ {
		got[w] = make([][]wire.Reply, rounds)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rd := 0; rd < rounds; rd++ {
				replies, err := cl.Submit(context.Background(), batchFor(tenants, w, rd))
				if err != nil {
					errCh <- fmt.Errorf("worker %d round %d: %w", w, rd, err)
					return
				}
				for i := range replies {
					if replies[i].Err != "" && !strings.Contains(replies[i].Err, "unknown template") {
						errCh <- fmt.Errorf("worker %d round %d item %d: %s", w, rd, i, replies[i].Err)
						return
					}
				}
				got[w][rd] = replies
				if w == hot && rd == migrateAt {
					hotOnce.Do(func() { close(hotRound) })
				}
			}
		}(w)
	}

	// Migrate the hot shard the moment its worker crosses migrateAt, so
	// the move genuinely races in-flight traffic on every shard.
	<-hotRound
	from := r.Owner(hot)
	to := 1 - from
	blackout, err := r.Migrate(context.Background(), hot, to)
	if err != nil {
		t.Fatalf("migrate shard %d -> backend %d: %v", hot, to, err)
	}
	if blackout <= 0 {
		t.Fatalf("blackout = %v, want > 0", blackout)
	}
	t.Logf("migrated hot shard %d: backend %d -> %d, blackout %v", hot, from, to, blackout)
	if r.Owner(hot) != to {
		t.Fatalf("owner after migrate = %d, want %d", r.Owner(hot), to)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	routedStats := r.Stats()

	// Sequential replay on one fresh backend that never migrates.
	ctlSrv, ctlAddr, _ := newBackend(t, shards, nil)
	ctl, err := wire.DialMux(ctlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	for w := 0; w < shards; w++ {
		for rd := 0; rd < rounds; rd++ {
			want, err := ctl.Submit(context.Background(), batchFor(tenants, w, rd))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(normReplies(got[w][rd]), normReplies(want)) {
				t.Fatalf("worker %d round %d: routed replies diverge from no-migration replay\n got: %+v\nwant: %+v",
					w, rd, got[w][rd], want)
			}
		}
	}

	// The merged cluster economy must equal the single-process one.
	ctlStats := ctlSrv.Stats()
	if routedStats.Queries != ctlStats.Queries ||
		routedStats.CacheAnswered != ctlStats.CacheAnswered ||
		routedStats.Investments != ctlStats.Investments ||
		routedStats.RevenueUSD != ctlStats.RevenueUSD ||
		routedStats.ProfitUSD != ctlStats.ProfitUSD ||
		routedStats.ResidentBytes != ctlStats.ResidentBytes {
		t.Fatalf("merged stats diverge from control:\nrouted:  q=%d hit=%d inv=%d rev=%v profit=%v bytes=%d\ncontrol: q=%d hit=%d inv=%d rev=%v profit=%v bytes=%d",
			routedStats.Queries, routedStats.CacheAnswered, routedStats.Investments, routedStats.RevenueUSD, routedStats.ProfitUSD, routedStats.ResidentBytes,
			ctlStats.Queries, ctlStats.CacheAnswered, ctlStats.Investments, ctlStats.RevenueUSD, ctlStats.ProfitUSD, ctlStats.ResidentBytes)
	}

	// Graceful drain under -race: client then router (cleanup closes the
	// listeners and backends).
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRouterBackendDeath kills one backend mid-traffic (listener and
// every connection severed, nothing drained) and checks the failure is
// tag-scoped: items for the dead backend's shards answer per-item
// errors, items for the survivor keep deciding normally, and the
// router's own connection and /readyz stay up (degraded).
func TestRouterBackendDeath(t *testing.T) {
	const shards = 4
	_, addrA, lnA := newBackend(t, shards, nil)
	_, addrB, _ := newBackend(t, shards, nil)
	r, front := newRouterFront(t, []string{addrA, addrB}, 20*time.Millisecond)
	tenants := shardTenants(shards)

	cl, err := wire.DialMux(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Warm every shard through the router.
	for w := 0; w < shards; w++ {
		replies, err := cl.Submit(context.Background(), batchFor(tenants, w, 0))
		if err != nil {
			t.Fatalf("warmup worker %d: %v", w, err)
		}
		for i := range replies {
			if replies[i].Err != "" {
				t.Fatalf("warmup worker %d item %d: %s", w, i, replies[i].Err)
			}
		}
	}

	lnA.kill()

	deadline := time.Now().Add(5 * time.Second)
	sawDead := false
	for w := 0; w < shards; w++ {
		owner := r.Owner(w)
		var replies []wire.Reply
		for {
			var err error
			replies, err = cl.Submit(context.Background(), batchFor(tenants, w, 1))
			if err != nil {
				t.Fatalf("submit after kill (shard %d): connection-scoped error %v, want tag-scoped", w, err)
			}
			if owner != 0 || replies[0].Err != "" || time.Now().After(deadline) {
				break
			}
			// The severed connection may not have been observed yet;
			// the in-flight submit that noticed it already failed
			// tag-scoped, later ones race the pool's redial backoff.
			time.Sleep(5 * time.Millisecond)
		}
		for i := range replies {
			if owner == 0 {
				if replies[i].Err == "" {
					t.Fatalf("shard %d (dead backend): item %d succeeded, want error", w, i)
				}
				sawDead = true
			} else if replies[i].Err != "" {
				t.Fatalf("shard %d (live backend): item %d errored: %s", w, i, replies[i].Err)
			}
		}
	}
	if !sawDead {
		t.Fatal("no shard mapped to the killed backend — test vacuous")
	}

	// The health loop must notice and degrade /readyz without killing
	// the router.
	h := r.HTTPHandler()
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code == 503 {
			var view struct {
				State    string `json:"state"`
				Backends []struct {
					Healthy bool `json:"healthy"`
				} `json:"backends"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
				t.Fatal(err)
			}
			if view.State != "degraded" || view.Backends[0].Healthy || !view.Backends[1].Healthy {
				t.Fatalf("readyz after kill: %s", rec.Body.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router /readyz never degraded after backend kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterHTTP drives the admin surface end to end: migrate a shard
// over POST /admin/migrate, read the move back from /metrics, and check
// /v1/stats serves the merged view.
func TestRouterHTTP(t *testing.T) {
	const shards = 4
	_, addrA, _ := newBackend(t, shards, nil)
	_, addrB, _ := newBackend(t, shards, nil)
	r, front := newRouterFront(t, []string{addrA, addrB}, -1)
	tenants := shardTenants(shards)

	cl, err := wire.DialMux(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for w := 0; w < shards; w++ {
		if _, err := cl.Submit(context.Background(), batchFor(tenants, w, 0)); err != nil {
			t.Fatal(err)
		}
	}

	h := r.HTTPHandler()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != 200 {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != 200 {
		t.Fatalf("/readyz = %d: %s", rec.Code, rec.Body.String())
	}

	target := 1 - r.Owner(0)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", fmt.Sprintf("/admin/migrate?shard=0&to=%d", target), nil))
	if rec.Code != 200 {
		t.Fatalf("/admin/migrate = %d: %s", rec.Code, rec.Body.String())
	}
	var moved struct {
		Shard      int     `json:"shard"`
		To         int     `json:"to"`
		BlackoutMS float64 `json:"blackout_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &moved); err != nil {
		t.Fatal(err)
	}
	if moved.To != target || moved.BlackoutMS <= 0 {
		t.Fatalf("migrate reply: %+v", moved)
	}
	if r.Owner(0) != target {
		t.Fatalf("owner after HTTP migrate = %d, want %d", r.Owner(0), target)
	}

	// A second migrate to the same place is a no-op with zero blackout.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", fmt.Sprintf("/admin/migrate?shard=0&to=%d", target), nil))
	if rec.Code != 200 {
		t.Fatalf("idempotent migrate = %d: %s", rec.Code, rec.Body.String())
	}

	metrics := get("/metrics").Body.String()
	for _, want := range []string{
		"cloudrouter_queries_total",
		"cloudrouter_migrations_total 1",
		"cloudrouter_backend_reconnects_total{backend=\"0\"}",
		fmt.Sprintf("cloudrouter_shard_owner{shard=\"0\"} %d", target),
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var stats server.Stats
	if err := json.Unmarshal(get("/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != shards || stats.Queries == 0 || len(stats.PerShard) != shards {
		t.Fatalf("/v1/stats: shards=%d queries=%d per_shard=%d", stats.Shards, stats.Queries, len(stats.PerShard))
	}
	if stats.Scheme != "econ-cheap" {
		t.Fatalf("/v1/stats scheme = %q", stats.Scheme)
	}
}

// TestRouterBootstrapEvidence pins the multi-owner tie-break: ownership
// is runtime-only, so a backend that restarts re-claims every slot —
// including shards it migrated away — and the router must keep the copy
// with live state, not the one an index rotation happens to land on.
func TestRouterBootstrapEvidence(t *testing.T) {
	const shards = 4
	// Shard 1 is the probe: round-robin over two full claimants would
	// hand odd shards to backend 1, so only state evidence keeps it on 0.
	const warmed = 1
	srvA, addrA, _ := newBackend(t, shards, nil)
	srvB, addrB, _ := newBackend(t, shards, nil)
	tenants := shardTenants(shards)

	direct, err := wire.DialMux(addrA)
	if err != nil {
		t.Fatal(err)
	}
	replies, err := direct.Submit(context.Background(), batchFor(tenants, warmed, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range replies {
		if replies[i].Err != "" {
			t.Fatalf("warm item %d: %s", i, replies[i].Err)
		}
	}
	direct.Close()

	r, _ := newRouterFront(t, []string{addrA, addrB}, -1)
	if got := r.Owner(warmed); got != 0 {
		t.Fatalf("warmed shard %d mapped to backend %d, want the backend holding its state (0)", warmed, got)
	}
	if !srvA.OwnedShards()[warmed] {
		t.Fatal("backend holding the warmed shard's state lost ownership")
	}
	if srvB.OwnedShards()[warmed] {
		t.Fatal("empty claimant of the warmed shard was not frozen")
	}
}

// TestRouterBootstrapDivergence: two claimants with non-empty state for
// the same shard is a conflict the router must refuse to auto-resolve —
// picking either side silently discards the other's economy.
func TestRouterBootstrapDivergence(t *testing.T) {
	const shards = 2
	_, addrA, _ := newBackend(t, shards, nil)
	_, addrB, _ := newBackend(t, shards, nil)
	tenants := shardTenants(shards)

	for _, addr := range []string{addrA, addrB} {
		cl, err := wire.DialMux(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Submit(context.Background(), batchFor(tenants, 0, 0)); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}

	_, err := router.New(router.Config{
		Backends:       []router.BackendConfig{{Addr: addrA}, {Addr: addrB}},
		HealthInterval: -1,
		Log:            quietLog,
	})
	if err == nil {
		t.Fatal("router bootstrapped over divergent shard state")
	}
	if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("divergence error = %v, want an explicit refusal", err)
	}
}

// TestRouterMigrateRefusalRestoresSource drives the one install-failure
// path that legally reinstalls: a definitive tag-scoped refusal (here a
// provider-fingerprint mismatch at the destination). The shard must come
// back to the source with its state intact and keep serving.
func TestRouterMigrateRefusalRestoresSource(t *testing.T) {
	const shards = 2
	srvA, addrA, _ := newBackend(t, shards, nil)
	_, addrB, _ := newBackendCfg(t, shards, nil, func(p *scheme.Params) {
		p.Provider = economy.ProviderSelfish
	})
	tenants := shardTenants(shards)

	// Warm every shard on A so bootstrap keeps them all there.
	direct, err := wire.DialMux(addrA)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < shards; w++ {
		if _, err := direct.Submit(context.Background(), batchFor(tenants, w, 0)); err != nil {
			t.Fatal(err)
		}
	}
	direct.Close()

	r, front := newRouterFront(t, []string{addrA, addrB}, -1)
	cl, err := wire.DialMux(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := r.Migrate(context.Background(), 0, 1); err == nil {
		t.Fatal("migrate to a mismatched backend succeeded")
	} else if !strings.Contains(err.Error(), "restored") {
		t.Fatalf("refused migrate error = %v, want the restore to be reported", err)
	}
	if got := r.Owner(0); got != 0 {
		t.Fatalf("owner after refused migrate = %d, want 0", got)
	}
	if !srvA.ShardOwned(0) {
		t.Fatal("source did not take the shard back after the refusal")
	}

	// The restored shard keeps deciding through the router.
	replies, err := cl.Submit(context.Background(), batchFor(tenants, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range replies {
		if replies[i].Err != "" {
			t.Fatalf("post-restore item %d: %s", i, replies[i].Err)
		}
	}
}

// TestRouterCoalesceRespectsMaxBatch floods one backend with a mix of
// tiny and maximum-size shard groups. The coalescing dispatcher must
// never merge them into a frame over wire.MaxBatch — before the guard,
// one small group plus one full group failed every group in the merge.
func TestRouterCoalesceRespectsMaxBatch(t *testing.T) {
	const shards = 1
	_, addr, _ := newBackend(t, shards, nil)
	_, front := newRouterFront(t, []string{addr}, -1)
	tenants := shardTenants(shards)

	mkBatch := func(n int) []wire.Query {
		qs := make([]wire.Query, n)
		for i := range qs {
			qs[i] = wire.Query{
				Tenant: tenants[0], Template: "Q6",
				Selectivity: 0.001, HasSelectivity: true,
				Budget: &server.BudgetJSON{Shape: "step", PriceUSD: 0.05, TmaxSec: 3600},
			}
		}
		return qs
	}

	const bigWorkers, bigRounds = 2, 2
	const smallWorkers, smallRounds = 4, 40
	var wg sync.WaitGroup
	errCh := make(chan error, bigWorkers+smallWorkers)
	run := func(w, rounds, size int) {
		defer wg.Done()
		cl, err := wire.DialMux(front)
		if err != nil {
			errCh <- err
			return
		}
		defer cl.Close()
		qs := mkBatch(size)
		for rd := 0; rd < rounds; rd++ {
			rs, err := cl.Submit(context.Background(), qs)
			if err != nil {
				errCh <- fmt.Errorf("worker %d (size %d) round %d: %w", w, size, rd, err)
				return
			}
			for i := range rs {
				if rs[i].Err != "" {
					errCh <- fmt.Errorf("worker %d (size %d) round %d item %d: %s", w, size, rd, i, rs[i].Err)
					return
				}
			}
		}
	}
	for w := 0; w < bigWorkers; w++ {
		wg.Add(1)
		go run(w, bigRounds, wire.MaxBatch)
	}
	for w := 0; w < smallWorkers; w++ {
		wg.Add(1)
		go run(bigWorkers+w, smallRounds, 1)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestRouterCursorLRU: a live events cursor — touched on every poll, the
// way a subscription uses it — must survive unbounded churn in
// short-lived cursors. Lowest-id eviction silently reset the
// longest-lived subscription and replayed its whole buffer.
func TestRouterCursorLRU(t *testing.T) {
	const shards = 1
	_, addr, _ := newBackend(t, shards, nil)
	r, _ := newRouterFront(t, []string{addr}, -1)

	_, id := r.EventsViewSince(0)
	if id <= 0 {
		t.Fatalf("opening cursor returned id %d", id)
	}
	for i := 0; i < 200; i++ {
		r.EventsViewSince(0) // churn: a fresh cursor, used once
		if _, got := r.EventsViewSince(id); got != id {
			t.Fatalf("iteration %d: live cursor %d came back as %d — evicted", i, id, got)
		}
	}
}
