package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/server"
)

// HTTPHandler serves the router's observability and admin surface:
//
//	GET  /healthz               process liveness
//	GET  /readyz                cluster readiness (all backends healthy)
//	GET  /metrics               Prometheus text: routing + per-backend health
//	GET  /v1/stats              merged cluster stats (same shape as a backend's)
//	POST /admin/migrate?shard=K&to=N   live-migrate shard K to backend N
func (r *Router) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/readyz", r.handleReadyz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/v1/stats", r.handleStats)
	mux.HandleFunc("/admin/migrate", r.handleMigrate)
	return mux
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `{"status":"ok"}`+"\n")
}

// backendReadiness is one backend's row in the router's /readyz body.
type backendReadiness struct {
	ID      int    `json:"id"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	State   string `json:"state"`
}

// routerReadiness is the JSON body of the router's GET /readyz. The
// router is ready when every backend is: a degraded cluster still
// serves the shards it can, but load balancers should stop adding
// traffic until the backend set is whole.
type routerReadiness struct {
	State    string             `json:"state"`
	Ready    bool               `json:"ready"`
	Backends []backendReadiness `json:"backends"`
}

func (r *Router) readiness() routerReadiness {
	view := routerReadiness{State: "ok", Ready: true}
	for _, b := range r.backends {
		st, _ := b.state.Load().(string)
		healthy := b.healthy.Load()
		view.Backends = append(view.Backends, backendReadiness{ID: b.id, Addr: b.addr, Healthy: healthy, State: st})
		if !healthy {
			view.State, view.Ready = "degraded", false
		}
	}
	return view
}

func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	view := r.readiness()
	status := http.StatusOK
	if !view.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, view)
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

// handleMigrate drives a live shard migration:
// POST /admin/migrate?shard=K&to=N. Answers the blackout window so
// operators (and the e2e harness) can see what a move cost.
func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	shard, err := strconv.Atoi(req.URL.Query().Get("shard"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "shard: want an integer")
		return
	}
	to, err := strconv.Atoi(req.URL.Query().Get("to"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "to: want a backend id")
		return
	}
	from := -1
	if shard >= 0 && shard < r.shards {
		from = r.Owner(shard)
	}
	d, err := r.Migrate(req.Context(), shard, to)
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shard":       shard,
		"from":        from,
		"to":          to,
		"blackout_ms": float64(d.Microseconds()) / 1e3,
	})
}

// handleMetrics writes the router's own counters in Prometheus text
// format, hand-rolled like the backend's — same scrape, no dependency.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("cloudrouter_queries_total", "Queries routed to backends.", r.queries.Load())
	counter("cloudrouter_reroutes_total", "Shard groups retried after a stale-ownership reject.", r.reroutes.Load())
	counter("cloudrouter_migrations_total", "Live shard migrations completed.", r.migrations.Load())
	gauge("cloudrouter_migration_last_blackout_ms", "Blackout window of the most recent migration (freeze to cutover).",
		float64(r.lastBlackout.Load())/1e6)
	gauge("cloudrouter_migration_blackout_ms_total", "Summed blackout across all migrations.",
		float64(r.totalBlackout.Load())/1e6)
	gauge("cloudrouter_shards", "Cluster shard count.", float64(r.shards))
	gauge("cloudrouter_backends", "Configured backend count.", float64(len(r.backends)))

	fmt.Fprintf(w, "# HELP cloudrouter_backend_healthy Backend passes its health probe (1) or not (0).\n# TYPE cloudrouter_backend_healthy gauge\n")
	for _, b := range r.backends {
		v := 0
		if b.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(w, "cloudrouter_backend_healthy{backend=\"%d\"} %d\n", b.id, v)
	}
	fmt.Fprintf(w, "# HELP cloudrouter_backend_reconnects_total Successful re-dials after losing a backend connection.\n# TYPE cloudrouter_backend_reconnects_total counter\n")
	for _, b := range r.backends {
		fmt.Fprintf(w, "cloudrouter_backend_reconnects_total{backend=\"%d\"} %d\n", b.id, b.pool.Reconnects())
	}
	owner := r.ownerSnapshot()
	fmt.Fprintf(w, "# HELP cloudrouter_shard_owner Backend id currently serving each shard.\n# TYPE cloudrouter_shard_owner gauge\n")
	for k, o := range owner {
		fmt.Fprintf(w, "cloudrouter_shard_owner{shard=\"%d\"} %d\n", k, o)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// healthLoop probes every backend on a timer. Backends with an HTTP
// address get a real GET /readyz (seeing "draining"/"restoring"/
// "migrating" states); the rest get a wire Owners ping, which exercises
// the same connection the submit path uses.
func (r *Router) healthLoop(interval time.Duration) {
	defer r.wg.Done()
	client := &http.Client{Timeout: interval}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		for _, b := range r.backends {
			healthy, state := r.probeHealth(client, b)
			was := b.healthy.Swap(healthy)
			b.state.Store(state)
			if was != healthy {
				r.log.Info("router: backend health changed", "backend", b.id, "addr", b.addr, "healthy", healthy, "state", state)
			}
		}
	}
}

func (r *Router) probeHealth(client *http.Client, b *backend) (bool, string) {
	if b.httpURL != "" {
		resp, err := client.Get(b.httpURL + "/readyz")
		if err != nil {
			return false, "unreachable"
		}
		var view server.Readiness
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return false, "unreachable"
		}
		return resp.StatusCode == http.StatusOK && view.Ready, view.State
	}
	if _, err := r.probeOwners(b); err != nil {
		return false, "unreachable"
	}
	return true, "ok"
}
