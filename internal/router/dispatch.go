package router

import (
	"context"
	"errors"

	"repro/internal/server/wire"
)

// The router's submit fan-out is many small groups: a pipelined client
// sending batch=1 makes every query its own shard group, and paying one
// backend round trip per group would roughly double the per-query
// protocol cost. The coalescing dispatcher collapses that: groups bound
// for the same backend that arrive while a frame is being assembled
// travel together in one wire frame (the backend fans a mixed-shard
// batch out to its own shard loops anyway), and the replies are split
// back by position. Per-group ordering is preserved — a group's items
// stay contiguous and in order inside the merged frame.

const (
	// dispatchQueue buffers groups waiting to be merged; enqueue blocks
	// (backpressure) when the backend cannot drain.
	dispatchQueue = 1024
	// maxCoalesce bounds queries per merged backend frame.
	maxCoalesce = 256
	// maxFlights bounds merged frames in flight per backend, so one
	// slow backend queues work instead of spawning unbounded senders.
	maxFlights = 8
)

// pendingGroup is one shard group waiting in a backend's coalescing
// queue. res is buffered (capacity 1) so the flight goroutine never
// blocks on a caller that gave up and left.
type pendingGroup struct {
	qs  []wire.Query
	res chan groupResult
}

type groupResult struct {
	rs  []wire.Reply
	err error
}

// submitVia hands one shard group to a backend's dispatcher and waits
// for its slice of the merged reply.
func (r *Router) submitVia(ctx context.Context, b *backend, qs []wire.Query) ([]wire.Reply, error) {
	g := pendingGroup{qs: qs, res: make(chan groupResult, 1)}
	select {
	case b.dispatch <- g:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.stop:
		return nil, ErrClosed
	}
	select {
	case res := <-g.res:
		return res.rs, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.stop:
		return nil, ErrClosed
	}
}

// dispatchLoop merges queued groups into backend frames. One loop per
// backend; frames for one backend are assembled serially but up to
// maxFlights may be awaiting replies at once (the mux completes them
// out of order).
func (r *Router) dispatchLoop(b *backend) {
	defer r.wg.Done()
	sem := make(chan struct{}, maxFlights)
	// carry holds a group already taken off the queue that the MaxBatch
	// guard deferred to the next frame.
	var carry *pendingGroup
	for {
		var g pendingGroup
		if carry != nil {
			g, carry = *carry, nil
		} else {
			select {
			case g = <-b.dispatch:
			case <-r.stop:
				return
			}
		}
		groups := []pendingGroup{g}
		n := len(g.qs)
	merge:
		for n < maxCoalesce {
			select {
			case g2 := <-b.dispatch:
				// A merged frame must stay a legal wire batch: a group
				// that would push it past MaxBatch starts the next frame
				// instead of failing every group in this one.
				if n+len(g2.qs) > wire.MaxBatch {
					carry = &g2
					break merge
				}
				groups = append(groups, g2)
				n += len(g2.qs)
			default:
				break merge
			}
		}
		select {
		case sem <- struct{}{}:
		case <-r.stop:
			failGroups(groups, ErrClosed)
			return
		}
		cl, err := b.pool.Get()
		if err != nil {
			<-sem
			failGroups(groups, err)
			continue
		}
		merged := groups[0].qs
		if len(groups) > 1 {
			merged = make([]wire.Query, 0, n)
			for _, g := range groups {
				merged = append(merged, g.qs...)
			}
		}
		// The flight is deliberately NOT in r.wg: on Close the pools
		// close after the loops stop, which errors any in-flight Submit
		// and lets the flight drain into its buffered result channels.
		go func(cl *wire.MuxClient, groups []pendingGroup, merged []wire.Query) {
			defer func() { <-sem }()
			rs, err := cl.Submit(context.Background(), merged)
			if err == nil && len(rs) != len(merged) {
				err = errors.New("router: backend reply count mismatch")
			}
			if err != nil {
				if errors.Is(err, wire.ErrClientClosed) {
					b.pool.MarkDead(cl)
				}
				failGroups(groups, err)
				return
			}
			off := 0
			for _, g := range groups {
				g.res <- groupResult{rs: rs[off : off+len(g.qs)]}
				off += len(g.qs)
			}
		}(cl, groups, merged)
	}
}

func failGroups(groups []pendingGroup, err error) {
	for _, g := range groups {
		g.res <- groupResult{err: err}
	}
}
