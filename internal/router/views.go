package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// viewTimeout bounds every backend round-trip a merged view makes.
const viewTimeout = 5 * time.Second

// Stats merges the cluster into one server.Stats, attributing each
// shard to the backend that owns it (a disowned replica's frozen
// counters would double-count). Aggregates are recomputed from the
// selected per-shard rows with the same arithmetic the single-process
// engine uses, so a client reading /v1/stats through the router sees
// the same shape and the same conservation properties.
//
// One approximation is unavoidable: the raw response-time reservoirs do
// not travel over the wire, so the cluster percentiles are the
// query-weighted mean of the per-shard percentiles rather than a true
// merged-reservoir estimate.
func (r *Router) Stats() server.Stats {
	owner := r.ownerSnapshot()
	per := make([]server.ShardStats, r.shards)
	byBackend := make([]*server.Stats, len(r.backends))

	ctx, cancel := context.WithTimeout(context.Background(), viewTimeout)
	defer cancel()
	agg := server.Stats{Shards: r.shards}
	for _, b := range r.backends {
		cl, err := b.pool.Get()
		if err != nil {
			continue
		}
		st, err := cl.Stats(ctx)
		if err != nil {
			continue
		}
		byBackend[b.id] = &st
		if agg.Scheme == "" {
			agg.Scheme, agg.Provider = st.Scheme, st.Provider
		}
		if st.Draining {
			agg.Draining = true
		}
	}
	for k := 0; k < r.shards; k++ {
		if bs := byBackend[owner[k]]; bs != nil && k < len(bs.PerShard) {
			per[k] = bs.PerShard[k]
		} else {
			// Owner unreachable: an honest hole, not stale numbers.
			per[k] = server.ShardStats{Shard: k, Scheme: agg.Scheme}
		}
	}

	tenants := make(map[string]server.TenantStats)
	var meanW, p50W, p95W, p99W float64
	for _, st := range per {
		agg.PerShard = append(agg.PerShard, st)
		for _, ts := range st.Tenants {
			m := tenants[ts.Tenant]
			m.Tenant = ts.Tenant
			m.Queries += ts.Queries
			m.Declined += ts.Declined
			m.CacheAnswered += ts.CacheAnswered
			m.CreditUSD += ts.CreditUSD
			m.SpendUSD += ts.SpendUSD
			m.ProfitUSD += ts.ProfitUSD
			m.RegretUSD += ts.RegretUSD
			m.InvestedUSD += ts.InvestedUSD
			m.RecoveredUSD += ts.RecoveredUSD
			m.StructuresCharged += ts.StructuresCharged
			m.LedgerSize += ts.LedgerSize
			tenants[ts.Tenant] = m
		}
		if st.ClockSec > agg.ClockSec {
			agg.ClockSec = st.ClockSec
		}
		agg.Queries += st.Queries
		agg.Declined += st.Declined
		agg.CacheAnswered += st.CacheAnswered
		agg.Investments += st.Investments
		agg.Failures += st.Failures
		agg.Errors += st.Errors
		agg.ExecCostUSD += st.ExecCostUSD
		agg.BuildCostUSD += st.BuildCostUSD
		agg.StorageCostUSD += st.StorageCostUSD
		agg.NodeCostUSD += st.NodeCostUSD
		agg.OperatingCostUSD += st.OperatingCostUSD
		agg.RevenueUSD += st.RevenueUSD
		agg.ProfitUSD += st.ProfitUSD
		agg.ResidentBytes += st.ResidentBytes
		agg.CreditUSD += st.CreditUSD
		w := float64(st.Queries - st.Declined)
		meanW += st.ResponseMeanSec * w
		p50W += st.ResponseP50Sec * w
		p95W += st.ResponseP95Sec * w
		p99W += st.ResponseP99Sec * w
	}
	if executed := agg.Queries - agg.Declined; executed > 0 {
		agg.ResponseMeanSec = meanW / float64(executed)
		agg.ResponseP50Sec = p50W / float64(executed)
		agg.ResponseP95Sec = p95W / float64(executed)
		agg.ResponseP99Sec = p99W / float64(executed)
	}
	if len(tenants) > 0 {
		agg.Tenants = make([]server.TenantStats, 0, len(tenants))
		for _, ts := range tenants {
			if executed := ts.Queries - ts.Declined; executed > 0 {
				ts.HitRate = float64(ts.CacheAnswered) / float64(executed)
			}
			agg.Tenants = append(agg.Tenants, ts)
		}
		sort.Slice(agg.Tenants, func(i, j int) bool { return agg.Tenants[i].Tenant < agg.Tenants[j].Tenant })
	}
	return agg
}

// TraceViewSnapshot concatenates the backends' trace rings. SampleEvery
// is taken from the first backend whose tracer is on (-1 if none).
func (r *Router) TraceViewSnapshot(tenant, template string, n int) server.TraceView {
	view := server.TraceView{SampleEvery: -1}
	ctx, cancel := context.WithTimeout(context.Background(), viewTimeout)
	defer cancel()
	for _, b := range r.backends {
		cl, err := b.pool.Get()
		if err != nil {
			continue
		}
		tv, err := cl.Trace(ctx, tenant, template, n)
		if err != nil {
			continue
		}
		if view.SampleEvery < 0 && tv.SampleEvery >= 0 {
			view.SampleEvery = tv.SampleEvery
		}
		view.Records = append(view.Records, tv.Records...)
	}
	if view.Records == nil {
		view.Records = []obs.Record{} // keep the []-not-null JSON contract
	}
	return view
}

// EventsViewSnapshot concatenates the backends' journals and sums their
// conservation totals. Events keep each backend's own Seq numbering —
// Seq orders a journal, not the cluster.
func (r *Router) EventsViewSnapshot(typ, tenant string, n int) server.EventsView {
	view := server.EventsView{}
	ctx, cancel := context.WithTimeout(context.Background(), viewTimeout)
	defer cancel()
	for _, b := range r.backends {
		cl, err := b.pool.Get()
		if err != nil {
			continue
		}
		ev, err := cl.Events(ctx, typ, tenant, n)
		if err != nil {
			continue
		}
		view.Totals.Invests += ev.Totals.Invests
		view.Totals.Evicts += ev.Totals.Evicts
		view.Totals.Recovers += ev.Totals.Recovers
		view.Totals.InvestedUSD += ev.Totals.InvestedUSD
		view.Totals.EvictedUSD += ev.Totals.EvictedUSD
		view.Totals.RecoveredUSD += ev.Totals.RecoveredUSD
		view.Events = append(view.Events, ev.Events...)
	}
	if view.Events == nil {
		view.Events = view.Events[:0:0]
	}
	return view
}

// maxCursors bounds the EventsViewSince cursor table; past it the
// least-recently-used cursor is dropped (an events subscription holds
// exactly one and touches it on every poll, so live subscriptions
// survive churn in short-lived ones — evicting by lowest id would
// silently reset the longest-lived subscription and replay its whole
// buffer).
const maxCursors = 64

// cursorEntry is one live cursor: per-backend last-seen journal Seqs
// plus the logical access stamp LRU eviction orders by.
type cursorEntry struct {
	last []int64
	used int64
}

// EventsViewSince serves the incremental feed behind events
// subscriptions. Each backend numbers its journal independently, so the
// router's cursor is an opaque handle into a table of per-backend
// last-seen Seqs; pass 0 (or less) to open a new cursor, pass the
// returned value to resume it.
func (r *Router) EventsViewSince(since int64) (server.EventsView, int64) {
	r.curMu.Lock()
	ent, ok := r.cursors[since]
	if !ok {
		r.nextCursor++
		since = r.nextCursor
		ent = &cursorEntry{last: make([]int64, len(r.backends))}
		r.cursors[since] = ent
		if len(r.cursors) > maxCursors {
			lruID, lruUsed := int64(0), int64(1<<62)
			for id, e := range r.cursors {
				if id != since && e.used < lruUsed {
					lruID, lruUsed = id, e.used
				}
			}
			delete(r.cursors, lruID)
		}
	}
	r.curClock++
	ent.used = r.curClock
	last := append([]int64(nil), ent.last...)
	r.curMu.Unlock()

	view := server.EventsView{}
	ctx, cancel := context.WithTimeout(context.Background(), viewTimeout)
	defer cancel()
	for _, b := range r.backends {
		cl, err := b.pool.Get()
		if err != nil {
			continue
		}
		ev, err := cl.Events(ctx, "", "", 0)
		if err != nil {
			continue
		}
		view.Totals.Invests += ev.Totals.Invests
		view.Totals.Evicts += ev.Totals.Evicts
		view.Totals.Recovers += ev.Totals.Recovers
		view.Totals.InvestedUSD += ev.Totals.InvestedUSD
		view.Totals.EvictedUSD += ev.Totals.EvictedUSD
		view.Totals.RecoveredUSD += ev.Totals.RecoveredUSD
		for _, e := range ev.Events {
			if e.Seq > last[b.id] {
				view.Events = append(view.Events, e)
				last[b.id] = e.Seq
			}
		}
	}
	if view.Events == nil {
		view.Events = view.Events[:0:0]
	}
	r.curMu.Lock()
	if e, ok := r.cursors[since]; ok {
		e.last = last
	}
	r.curMu.Unlock()
	return view, since
}

// Checkpoint is refused at the router: checkpoints are per-backend
// durable state, and the v1 snapshot reply cannot be relayed through a
// multiplexed backend connection. Drive each backend's own admin
// endpoint instead.
func (r *Router) Checkpoint() (string, int64, error) {
	return "", 0, errors.New("router: checkpoint is a per-backend operation; call the backend directly")
}

// FreezeShard relays to the shard's current owner — the first step of
// an operator-driven (non-router) migration.
func (r *Router) FreezeShard(shard int) error {
	if shard < 0 || shard >= r.shards {
		return fmt.Errorf("router: shard %d out of range [0,%d)", shard, r.shards)
	}
	cl, err := r.backends[r.Owner(shard)].pool.Get()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), viewTimeout)
	defer cancel()
	return cl.FreezeShard(ctx, shard)
}

// ExtractShardPacket relays to the shard's current owner.
func (r *Router) ExtractShardPacket(shard int) ([]byte, error) {
	if shard < 0 || shard >= r.shards {
		return nil, fmt.Errorf("router: shard %d out of range [0,%d)", shard, r.shards)
	}
	cl, err := r.backends[r.Owner(shard)].pool.Get()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), viewTimeout)
	defer cancel()
	return cl.ExtractShard(ctx, shard)
}

// InstallShardPacket is refused at the router: an install names a
// destination backend, which the wire frame cannot express. Use the
// router's /admin/migrate, or install on the backend directly.
func (r *Router) InstallShardPacket(shard int, data []byte) error {
	return errors.New("router: install needs a destination backend; use /admin/migrate or the backend directly")
}

// OwnedShards reports all-true: by construction the router serves every
// shard (bootstrap fails otherwise), so a router behind a router routes
// everything here.
func (r *Router) OwnedShards() []bool {
	own := make([]bool, r.shards)
	for i := range own {
		own[i] = true
	}
	return own
}

// TraceEnabled is false at the router: stage timing belongs to the
// backend that decides the query, and its records already include the
// full pipeline. BackfillEncode is the matching no-op.
func (r *Router) TraceEnabled() bool { return false }

// BackfillEncode is a no-op; see TraceEnabled.
func (r *Router) BackfillEncode(rs []wire.Reply, totalNanos int64) {}
