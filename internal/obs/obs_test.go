package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/money"
)

func TestTracerSamplingGate(t *testing.T) {
	tr := NewTracer(2, 8, 0)
	if tr.Enabled() {
		t.Fatal("tracer with sampleEvery=0 reports enabled")
	}
	for i := 0; i < 100; i++ {
		if tr.Sample(0) {
			t.Fatal("disabled tracer sampled a query")
		}
	}
	tr.SetSampleEvery(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if tr.Sample(1) {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampling hit %d of 400", hits)
	}
	tr.SetSampleEvery(1)
	for i := 0; i < 10; i++ {
		if !tr.Sample(0) {
			t.Fatal("sample-all tracer skipped a query")
		}
	}
}

func TestTracerPublishSnapshotEncode(t *testing.T) {
	tr := NewTracer(2, 4, 1)
	// Overfill shard 0's ring so rotation is exercised.
	for i := 0; i < 6; i++ {
		seq := tr.Publish(0, Record{
			QueryID:     int64(100 + i),
			Template:    "q1",
			Tenant:      "t0",
			WallNanos:   int64(i + 1),
			DecideNanos: 10,
		})
		if seq != int64(i+1) {
			t.Fatalf("publish %d got seq %d", i, seq)
		}
	}
	tr.Publish(1, Record{QueryID: 999, Template: "q2", Tenant: "t1", WallNanos: 100})

	all := tr.Snapshot("", "", 0)
	if len(all) != 5 { // ring of 4 on shard 0 + 1 on shard 1
		t.Fatalf("snapshot kept %d records, want 5", len(all))
	}
	if all[len(all)-1].QueryID != 999 {
		t.Fatalf("records not ordered by wall time: tail %+v", all[len(all)-1])
	}
	if got := tr.Snapshot("t0", "", 0); len(got) != 4 {
		t.Fatalf("tenant filter kept %d, want 4", len(got))
	}
	if got := tr.Snapshot("", "q2", 0); len(got) != 1 || got[0].QueryID != 999 {
		t.Fatalf("template filter wrong: %+v", got)
	}
	if got := tr.Snapshot("", "", 2); len(got) != 2 {
		t.Fatalf("n=2 kept %d", len(got))
	}

	// Encode back-fill: live seq lands, rotated-out seq is skipped.
	tr.SetEncode(0, 6, 777)
	tr.SetEncode(0, 1, 555) // overwritten by rotation; slot now holds seq 5
	found := false
	for _, rec := range tr.Snapshot("", "", 0) {
		if rec.Shard == 0 && rec.Seq == 6 {
			found = true
			if rec.EncodeNanos != 777 {
				t.Fatalf("encode back-fill lost: %+v", rec)
			}
		}
		if rec.Shard == 0 && rec.Seq == 5 && rec.EncodeNanos != 0 {
			t.Fatalf("stale encode back-fill hit the wrong record: %+v", rec)
		}
	}
	if !found {
		t.Fatal("seq 6 missing from snapshot")
	}
}

func TestTracerConcurrentPublishSnapshot(t *testing.T) {
	tr := NewTracer(4, 64, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				seq := tr.Publish(shard, Record{
					QueryID:   int64(i),
					Template:  "q",
					WallNanos: int64(i),
					// Matching sentinel pair: a torn read shows mismatched halves.
					DecideNanos: int64(i) * 3,
					WaitNanos:   int64(i) * 7,
				})
				tr.SetEncode(shard, seq, 1)
			}
		}(shard)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range tr.Snapshot("", "", 0) {
				if rec.DecideNanos != rec.QueryID*3 || rec.WaitNanos != rec.QueryID*7 {
					t.Errorf("torn record: %+v", rec)
					return
				}
			}
		}
	}()
	wg.Add(-1)
	wg.Wait()
	wg.Add(1)
	close(stop)
	wg.Wait()
}

func TestJournalTotalsAndRings(t *testing.T) {
	var seq atomic.Int64
	j := NewJournal(0, 2, &seq)
	d := func(usd float64) money.Amount { return money.FromDollars(usd) }

	j.Emit(Event{Type: EventInvest, Tenant: "a", Structure: "idx1", Amount: d(1.5), Reason: "regret"})
	j.Emit(Event{Type: EventInvest, Tenant: "b", Structure: "idx2", Amount: d(2.5), Reason: "regret"})
	j.Emit(Event{Type: EventInvest, Tenant: "a", Structure: "idx3", Amount: d(4), Reason: "regret"})
	j.Emit(Event{Type: EventEvict, Tenant: "a", Structure: "idx1", Amount: d(0.25), Reason: "rent"})
	for i := 0; i < 5; i++ {
		j.Emit(Event{Type: EventRecover, Tenant: "b", Structure: "idx2", Amount: d(0.1), Reason: "amort"})
	}
	j.Emit(Event{Type: "bogus", Amount: d(100)})

	tot := j.Totals()
	if tot.Invests != 3 || tot.Evicts != 1 || tot.Recovers != 5 {
		t.Fatalf("counts wrong: %+v", tot)
	}
	if tot.Invested != d(8) || tot.Evicted != d(0.25) || tot.Recovered != d(0.5) {
		t.Fatalf("totals lost exactness despite ring rotation: %+v", tot)
	}

	// Rings are bounded per type: invest kept the 2 newest, recover the 2
	// newest, and the lone evict survived the recover flood.
	evs := j.Snapshot("", "", 0)
	if len(evs) != 5 {
		t.Fatalf("snapshot kept %d events, want 5 (2 invest + 1 evict + 2 recover)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
	if got := j.Snapshot(EventEvict, "", 0); len(got) != 1 || got[0].Structure != "idx1" {
		t.Fatalf("type filter wrong: %+v", got)
	}
	if got := j.Snapshot("", "b", 0); len(got) != 3 {
		t.Fatalf("tenant filter kept %d, want 3", len(got))
	}
	// Cursor semantics: only events after sinceSeq.
	last := evs[len(evs)-1].Seq
	if got := j.Snapshot("", "", last); len(got) != 0 {
		t.Fatalf("cursor at tail still returned %d events", len(got))
	}
	if got := j.Snapshot("", "", last-1); len(got) != 1 {
		t.Fatalf("cursor at tail-1 returned %d events", len(got))
	}
	if evs[0].AmountUSD == 0 {
		t.Fatalf("AmountUSD not derived: %+v", evs[0])
	}
}

func TestMergeEvents(t *testing.T) {
	a := []Event{{Seq: 1}, {Seq: 4}}
	b := []Event{{Seq: 2}, {Seq: 3}, {Seq: 5}}
	m := MergeEvents(0, a, b)
	if len(m) != 5 {
		t.Fatalf("merged %d", len(m))
	}
	for i, e := range m {
		if e.Seq != int64(i+1) {
			t.Fatalf("merge order wrong: %+v", m)
		}
	}
	if got := MergeEvents(2, a, b); len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("n=2 merge wrong: %+v", got)
	}
}

func TestHistogramObserveAndExposition(t *testing.T) {
	h := NewHistogram([]int64{1_000, 10_000})
	h.Observe(500)     // bucket le=1µs
	h.Observe(1_000)   // boundary: le=1µs
	h.Observe(5_000)   // le=10µs
	h.Observe(100_000) // +Inf
	h.Observe(-5)      // clamps to 0 → le=1µs
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	var sb strings.Builder
	h.WritePrometheus(&sb, "x_stage_seconds", `stage="decide"`)
	out := sb.String()
	for _, want := range []string{
		`x_stage_seconds_bucket{stage="decide",le="1e-06"} 3`,
		`x_stage_seconds_bucket{stage="decide",le="1e-05"} 4`,
		`x_stage_seconds_bucket{stage="decide",le="+Inf"} 5`,
		`x_stage_seconds_count{stage="decide"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// No labels: bare series names.
	sb.Reset()
	NewLatencyHistogram().WritePrometheus(&sb, "y", "")
	if !strings.Contains(sb.String(), "y_count 0") {
		t.Fatalf("unlabelled exposition wrong:\n%s", sb.String())
	}
}
