package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram with atomic counters:
// one atomic add per observation, no locks, safe for any number of
// concurrent writers and readers. Bounds are cumulative upper limits in
// nanoseconds; observations above the last bound land in the implicit
// +Inf bucket.
type Histogram struct {
	bounds []int64 // ascending upper bounds, nanoseconds
	counts []atomic.Int64
	sum    atomic.Int64 // total nanoseconds observed
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending nanosecond
// bounds (the +Inf bucket is implicit).
func NewHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// NewLatencyHistogram builds the stage-latency histogram used by the
// tracer: exponential ×4 buckets from 1µs to ~17s, a range that spans
// sub-microsecond decode shares up to the longest promised executions.
func NewLatencyHistogram() *Histogram {
	bounds := make([]int64, 0, 13)
	for b := int64(1_000); b <= 17_179_869_184; b *= 4 { // 1µs … ~17.2s
		bounds = append(bounds, b)
	}
	return NewHistogram(bounds)
}

// Observe records one nanosecond-valued observation.
func (h *Histogram) Observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return nanos <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(nanos)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// WritePrometheus writes the histogram in Prometheus text exposition
// format under the given fully-qualified metric name, with cumulative
// le-labelled buckets in seconds. labels, when non-empty, is a
// ready-formatted label body without braces (e.g. `stage="decide"`).
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, float64(b)/1e9, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(h.sum.Load())/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// sortSlice is a tiny typed wrapper over sort.Slice.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}
