// Package obs is the serving engine's observability layer: sampled
// per-query decision traces, a bounded journal of economy events, and
// the latency histograms + Prometheus text exposition the /metrics
// endpoint reports.
//
// The package is deliberately a leaf — it depends only on the money
// type — so the economy, the shard loop and the HTTP layer can all feed
// it without import cycles. Everything here is built for a hot decision
// loop that is NOT paying for observability unless asked to:
//
//   - the Tracer's sample gate is a single atomic load when sampling is
//     off; ring slots are preallocated so a sampled record is a struct
//     copy under a per-shard mutex that only trace readers contend on;
//   - the Journal's rare events (invest, evict) keep their full history
//     in dedicated rings while the per-query recovery stream rotates
//     through its own, and exact micro-dollar totals are maintained so
//     conservation checks never depend on ring capacity;
//   - Histograms are fixed exponential buckets bumped with one atomic
//     add per observation.
package obs

import (
	"sync"
	"sync/atomic"
)

// Record is one sampled query's decision path: identity, routing, the
// economy's verdict and the per-stage latency split
// (decode → mailbox wait → decide → encode).
//
// Seq is per-shard and contiguous, so (Shard, Seq) names a record
// uniquely and lets the encode stage be back-filled after the record is
// already published. EncodeNanos is 0 on a record read before its reply
// finished encoding (or one whose front does not time encodes).
type Record struct {
	Seq     int64 `json:"seq"`
	QueryID int64 `json:"query_id"`
	Shard   int   `json:"shard"`

	Tenant      string  `json:"tenant,omitempty"`
	Template    string  `json:"template"`
	Selectivity float64 `json:"selectivity"`
	// ArrivalSec is the economy-clock arrival stamp, comparable across
	// shards (all shards share the server clock).
	ArrivalSec float64 `json:"arrival_s"`

	// Economy verdict.
	Case             string  `json:"case,omitempty"`
	Declined         bool    `json:"declined"`
	CacheHit         bool    `json:"cache_hit"`
	Location         string  `json:"location,omitempty"`
	ResponseTimeSec  float64 `json:"response_time_s"`
	ChargedUSD       float64 `json:"charged_usd"`
	ProfitUSD        float64 `json:"profit_usd"`
	RegretDeltaUSD   float64 `json:"regret_delta_usd"`
	InvestConsidered int     `json:"invest_considered"`
	InvestTaken      int     `json:"invest_taken"`
	FailuresSwept    int     `json:"failures_swept"`
	Error            string  `json:"error,omitempty"`

	// Stage latencies, nanoseconds. Decode and encode are the front's
	// per-query share of its frame work; wait is time spent queued in
	// the shard mailbox; decide is the economy's serialized decision.
	DecodeNanos  int64 `json:"decode_ns"`
	WaitNanos    int64 `json:"mailbox_wait_ns"`
	DecideNanos  int64 `json:"decide_ns"`
	EncodeNanos  int64 `json:"encode_ns"`
	// WallNanos orders records across shards: nanoseconds since the
	// tracer was created, stamped at publish.
	WallNanos int64 `json:"wall_ns"`
}

// traceRing is one shard's preallocated record ring. The mutex is
// uncontended on the decision path unless a /v1/trace read is in
// flight; writes are struct copies into preallocated slots.
type traceRing struct {
	mu   sync.Mutex
	buf  []Record
	next int64 // records ever published; buf[(next-1) % len] is newest

	// tick is the sampling countdown. Only the owning shard goroutine
	// touches it, so it needs no synchronization of its own.
	tick int64
	_    [5]int64 // keep rings off each other's cache lines
}

// Tracer is the sampled decision-trace collector: one ring per shard
// behind a single atomic sampling gate.
type Tracer struct {
	sampleEvery atomic.Int64
	rings       []*traceRing

	// Per-stage latency histograms, fed from sampled records.
	decodeHist *Histogram
	waitHist   *Histogram
	decideHist *Histogram
	encodeHist *Histogram
}

// DefaultRing is the per-shard ring capacity when none is configured.
const DefaultRing = 1024

// NewTracer builds a tracer with one ring of ringCap preallocated
// records per shard (ringCap <= 0 takes DefaultRing). Sampling starts
// at sampleEvery: 0 disables, 1 traces every query, N traces 1-in-N.
func NewTracer(shards, ringCap int, sampleEvery int64) *Tracer {
	if shards < 1 {
		shards = 1
	}
	if ringCap <= 0 {
		ringCap = DefaultRing
	}
	t := &Tracer{
		rings:      make([]*traceRing, shards),
		decodeHist: NewLatencyHistogram(),
		waitHist:   NewLatencyHistogram(),
		decideHist: NewLatencyHistogram(),
		encodeHist: NewLatencyHistogram(),
	}
	for i := range t.rings {
		t.rings[i] = &traceRing{buf: make([]Record, ringCap)}
	}
	t.sampleEvery.Store(sampleEvery)
	return t
}

// SampleEvery returns the current sampling period (0 = off).
func (t *Tracer) SampleEvery() int64 { return t.sampleEvery.Load() }

// SetSampleEvery changes the sampling period at runtime: 0 disables,
// 1 traces everything, N traces 1-in-N.
func (t *Tracer) SetSampleEvery(n int64) {
	if n < 0 {
		n = 0
	}
	t.sampleEvery.Store(n)
}

// Enabled reports whether any sampling is active — the one atomic load
// the decide loop pays per query when tracing is off.
func (t *Tracer) Enabled() bool { return t.sampleEvery.Load() > 0 }

// Sample reports whether the shard's next query should be traced. It
// must only be called from the shard's own goroutine (the countdown is
// unsynchronized by design). When sampling is off it is a single
// atomic load and a predicted branch.
func (t *Tracer) Sample(shard int) bool {
	n := t.sampleEvery.Load()
	if n <= 0 {
		return false
	}
	r := t.rings[shard]
	r.tick++
	return r.tick%n == 0
}

// Publish copies a completed record into the shard's ring, assigns its
// per-shard sequence number and feeds the stage histograms. It returns
// the sequence number so the front can back-fill EncodeNanos via
// SetEncode once the reply is on the wire.
func (t *Tracer) Publish(shard int, rec Record) int64 {
	r := t.rings[shard]
	r.mu.Lock()
	r.next++
	rec.Seq = r.next
	rec.Shard = shard
	r.buf[(r.next-1)%int64(len(r.buf))] = rec
	r.mu.Unlock()
	t.decodeHist.Observe(rec.DecodeNanos)
	t.waitHist.Observe(rec.WaitNanos)
	t.decideHist.Observe(rec.DecideNanos)
	return rec.Seq
}

// SetEncode back-fills the encode-stage latency of a published record,
// identified by its (shard, seq) pair. A record already overwritten by
// ring rotation is silently skipped.
func (t *Tracer) SetEncode(shard int, seq, nanos int64) {
	if shard < 0 || shard >= len(t.rings) || seq <= 0 {
		return
	}
	r := t.rings[shard]
	r.mu.Lock()
	slot := &r.buf[(seq-1)%int64(len(r.buf))]
	if slot.Seq == seq {
		slot.EncodeNanos = nanos
	}
	r.mu.Unlock()
	t.encodeHist.Observe(nanos)
}

// Snapshot returns up to n of the most recent records matching the
// tenant/template filters ("" matches everything), newest last,
// ordered by publish time across shards. n <= 0 returns all retained
// matches.
func (t *Tracer) Snapshot(tenant, template string, n int) []Record {
	var out []Record
	for _, r := range t.rings {
		r.mu.Lock()
		size := int64(len(r.buf))
		count := r.next
		if count > size {
			count = size
		}
		for i := r.next - count; i < r.next; i++ {
			rec := r.buf[i%size]
			if tenant != "" && rec.Tenant != tenant {
				continue
			}
			if template != "" && rec.Template != template {
				continue
			}
			out = append(out, rec)
		}
		r.mu.Unlock()
	}
	sortRecords(out)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// sortRecords orders records by wall publish time, breaking ties by
// (shard, seq) so repeated snapshots of an idle tracer are stable.
func sortRecords(recs []Record) {
	// Insertion-adjacent sizes dominate (rings are small); use the
	// standard sort for clarity.
	sortSlice(recs, func(a, b Record) bool {
		if a.WallNanos != b.WallNanos {
			return a.WallNanos < b.WallNanos
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
}

// StageHistograms returns the per-stage latency histograms in exposition
// order: decode, mailbox wait, decide, encode.
func (t *Tracer) StageHistograms() []StageHistogram {
	return []StageHistogram{
		{Stage: "decode", Hist: t.decodeHist},
		{Stage: "mailbox_wait", Hist: t.waitHist},
		{Stage: "decide", Hist: t.decideHist},
		{Stage: "encode", Hist: t.encodeHist},
	}
}

// StageHistogram labels one stage's latency histogram.
type StageHistogram struct {
	Stage string
	Hist  *Histogram
}
