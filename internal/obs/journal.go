package obs

import (
	"sync"
	"sync/atomic"

	"repro/internal/money"
)

// Event types. Invest and evict are rare (structure lifecycle); recover
// fires once per settled query that collected an amortized share or
// maintenance arrears, so it gets its own ring and cannot rotate the
// lifecycle history out of the journal.
const (
	// EventInvest: a ledger financed a structure build.
	EventInvest = "invest"
	// EventEvict: the maintenance-failure sweep evicted a structure
	// whose rent no longer paid (footnote 3 "structure failure").
	EventEvict = "evict"
	// EventRecover: a settlement collected a structure's amortized
	// build share and maintenance arrears, reimbursing its financier
	// (the owner ledger when selfish, the communal pool when
	// altruistic).
	EventRecover = "recover"
)

// Event is one structured economy event: who moved how many dollars
// against which structure, and why. Events are emitted from inside the
// shard's serialized decision path, so emission itself needs no
// economy-side locking; the Journal makes them safe to read
// concurrently.
type Event struct {
	// Seq orders events globally (one atomic counter shared by every
	// shard's journal).
	Seq int64 `json:"seq"`
	// ClockSec is the economy clock at emission, seconds.
	ClockSec float64 `json:"clock_s"`
	Shard    int     `json:"shard"`
	// Type is EventInvest, EventEvict or EventRecover.
	Type string `json:"type"`
	// Tenant is the actor account: the financier on invest, the
	// reimbursed owner on recover ("" is the communal pool), the owner
	// losing the structure on evict.
	Tenant    string `json:"tenant"`
	Structure string `json:"structure,omitempty"`
	// AmountUSD is the event's dollar value: the build price charged,
	// the arrears at eviction, the recovery collected.
	AmountUSD float64 `json:"usd"`
	Reason    string  `json:"reason"`

	// Amount is the exact micro-dollar value behind AmountUSD, kept out
	// of the JSON surface but preserved for conservation checks.
	Amount money.Amount `json:"-"`
}

// Totals are a journal's exact lifetime sums, maintained independently
// of ring capacity so invest/recover dollars always reconcile against
// ledger totals even after the rings rotate.
type Totals struct {
	Invests  int64
	Evicts   int64
	Recovers int64

	Invested  money.Amount
	Evicted   money.Amount
	Recovered money.Amount
}

// Add accumulates another journal's totals.
func (t *Totals) Add(o Totals) {
	t.Invests += o.Invests
	t.Evicts += o.Evicts
	t.Recovers += o.Recovers
	t.Invested = t.Invested.Add(o.Invested)
	t.Evicted = t.Evicted.Add(o.Evicted)
	t.Recovered = t.Recovered.Add(o.Recovered)
}

// Journal is one shard's bounded economy event log: a ring per event
// type plus exact totals. Emission happens on the shard's decision
// goroutine; the mutex exists so /v1/events readers and the wire event
// stream observe whole events, never torn ones.
type Journal struct {
	shard int
	seq   *atomic.Int64 // shared across shards: global event order

	mu     sync.Mutex
	rings  map[string]*eventRing
	totals Totals
}

// eventRing is one type's bounded history.
type eventRing struct {
	buf  []Event
	next int64
}

// DefaultJournalRing is the per-type ring capacity when none is
// configured.
const DefaultJournalRing = 2048

// NewJournal builds a shard's journal. cap bounds each event type's
// ring (cap <= 0 takes DefaultJournalRing); seq is the server-wide
// event counter shared by all shards.
func NewJournal(shard, cap int, seq *atomic.Int64) *Journal {
	if cap <= 0 {
		cap = DefaultJournalRing
	}
	return &Journal{
		shard: shard,
		seq:   seq,
		rings: map[string]*eventRing{
			EventInvest:  {buf: make([]Event, 0, cap)},
			EventEvict:   {buf: make([]Event, 0, cap)},
			EventRecover: {buf: make([]Event, 0, cap)},
		},
	}
}

// Emit records one event, assigning its global sequence number and
// filling the shard and dollar view. Unknown event types are dropped —
// the journal's ring set is its schema.
func (j *Journal) Emit(e Event) {
	r, ok := j.rings[e.Type]
	if !ok {
		return
	}
	e.Seq = j.seq.Add(1)
	e.Shard = j.shard
	e.AmountUSD = e.Amount.Dollars()
	j.mu.Lock()
	switch e.Type {
	case EventInvest:
		j.totals.Invests++
		j.totals.Invested = j.totals.Invested.Add(e.Amount)
	case EventEvict:
		j.totals.Evicts++
		j.totals.Evicted = j.totals.Evicted.Add(e.Amount)
	case EventRecover:
		j.totals.Recovers++
		j.totals.Recovered = j.totals.Recovered.Add(e.Amount)
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next%int64(cap(r.buf))] = e
	}
	r.next++
	j.mu.Unlock()
}

// Totals returns the journal's exact lifetime sums.
func (j *Journal) Totals() Totals {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.totals
}

// Snapshot returns the retained events matching the type/tenant filters
// ("" matches everything), in global sequence order. sinceSeq > 0
// restricts to events with Seq > sinceSeq — the cursor the wire event
// stream advances between pushes.
func (j *Journal) Snapshot(typ, tenant string, sinceSeq int64) []Event {
	j.mu.Lock()
	var out []Event
	for name, r := range j.rings {
		if typ != "" && name != typ {
			continue
		}
		for _, e := range r.buf {
			if e.Seq <= sinceSeq {
				continue
			}
			if tenant != "" && e.Tenant != tenant {
				continue
			}
			out = append(out, e)
		}
	}
	j.mu.Unlock()
	sortSlice(out, func(a, b Event) bool { return a.Seq < b.Seq })
	return out
}

// MergeEvents flattens per-shard snapshots into one sequence-ordered
// slice, keeping at most n of the most recent events (n <= 0 keeps
// all).
func MergeEvents(n int, shards ...[]Event) []Event {
	var out []Event
	for _, s := range shards {
		out = append(out, s...)
	}
	sortSlice(out, func(a, b Event) bool { return a.Seq < b.Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
