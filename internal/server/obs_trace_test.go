package server_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/server"
)

// newTraceServer is newTestServer with the observability knobs exposed.
func newTraceServer(t *testing.T, shards, ring int, sampleEvery int64) *server.Server {
	t.Helper()
	cat := testCatalog()
	srv, err := server.New(server.Config{
		Shards:           shards,
		Scheme:           "econ-cheap",
		Params:           testParams(cat),
		Clock:            server.NewVirtualClock(),
		TraceRing:        ring,
		TraceSampleEvery: sampleEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv
}

// TestTraceRingConcurrency is the tracer's -race workhorse: many
// goroutines hammer a trace-everything server while readers snapshot the
// rings and a toggler flips the sampling period, and no observed record
// may ever be torn. Tearing is detectable because every tenant submits
// exactly one template: a record pairing tenant i with another tenant's
// template could only come from a half-written slot.
func TestTraceRingConcurrency(t *testing.T) {
	const (
		shards     = 4
		ring       = 64
		goroutines = 12
		perG       = 120
	)
	srv := newTraceServer(t, shards, ring, 1)
	templates := []string{"Q1", "Q3", "Q5", "Q6", "Q10", "Q14", "Q18"}
	wantTemplate := make(map[string]string)
	for k := 0; k < goroutines; k++ {
		wantTemplate[fmt.Sprintf("trace-%d", k)] = templates[k%len(templates)]
	}
	checkRecords := func(where string) int {
		t.Helper()
		recs := srv.TraceSnapshot("", "", 0)
		for _, r := range recs {
			if r.Seq <= 0 {
				t.Fatalf("%s: record without a sequence number: %+v", where, r)
			}
			if r.Shard < 0 || r.Shard >= shards {
				t.Fatalf("%s: record from shard %d of %d", where, r.Shard, shards)
			}
			want, ok := wantTemplate[r.Tenant]
			if !ok {
				t.Fatalf("%s: record from unknown tenant %q", where, r.Tenant)
			}
			if r.Template != want {
				t.Fatalf("%s: torn record: tenant %q paired with template %q, want %q",
					where, r.Tenant, r.Template, want)
			}
			if r.WaitNanos < 0 || r.DecideNanos < 0 || r.DecodeNanos != 0 || r.EncodeNanos != 0 {
				t.Fatalf("%s: implausible stage split: %+v", where, r)
			}
			if r.QueryID == 0 || r.Selectivity <= 0 {
				t.Fatalf("%s: incomplete decision path: %+v", where, r)
			}
		}
		return len(recs)
	}

	ctx := context.Background()
	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkRecords("concurrent read")
				srv.TraceViewSnapshot("trace-1", "", 16)
			}
		}()
	}
	// The sampling period is a runtime knob; flip it mid-flight so the
	// atomic gate and the per-shard countdown race with the submitters.
	readers.Add(1)
	go func() {
		defer readers.Done()
		tr := srv.Tracer()
		for i := 0; ; i++ {
			select {
			case <-done:
				tr.SetSampleEvery(1)
				return
			default:
			}
			tr.SetSampleEvery(int64(1 + i%3))
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("trace-%d", g)
			for i := 0; i < perG; i++ {
				if _, err := srv.Submit(ctx, server.Request{
					Tenant:   tenant,
					Template: wantTemplate[tenant],
					Budget:   testBudget(),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	if n := checkRecords("final read"); n == 0 {
		t.Fatal("no records sampled across the whole run")
	}
	// Per-shard sequence numbers are contiguous: the retained window of
	// each ring is exactly the newest min(published, cap) records.
	perShard := make(map[int][]int64)
	for _, r := range srv.TraceSnapshot("", "", 0) {
		perShard[r.Shard] = append(perShard[r.Shard], r.Seq)
	}
	for shard, seqs := range perShard {
		if len(seqs) > ring {
			t.Errorf("shard %d retains %d records, ring holds %d", shard, len(seqs), ring)
		}
		seen := make(map[int64]bool, len(seqs))
		lo, hi := seqs[0], seqs[0]
		for _, s := range seqs {
			if seen[s] {
				t.Fatalf("shard %d duplicated seq %d", shard, s)
			}
			seen[s] = true
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo+1 != int64(len(seqs)) {
			t.Errorf("shard %d seqs not contiguous: %d..%d over %d records", shard, lo, hi, len(seqs))
		}
	}
}

// TestTraceDisabled covers the two off states: sampling off keeps the
// rings empty (the hot path pays one atomic load), and a negative ring
// removes the tracer entirely, which the trace view reports as -1.
func TestTraceDisabled(t *testing.T) {
	ctx := context.Background()

	srv := newTraceServer(t, 2, 0, 0) // tracer installed, sampling off
	for i := 0; i < 40; i++ {
		if _, err := srv.Submit(ctx, server.Request{Template: "Q6", Budget: testBudget()}); err != nil {
			t.Fatal(err)
		}
	}
	if recs := srv.TraceSnapshot("", "", 0); len(recs) != 0 {
		t.Errorf("sampling off produced %d records", len(recs))
	}
	if view := srv.TraceViewSnapshot("", "", 0); view.SampleEvery != 0 || len(view.Records) != 0 {
		t.Errorf("view = sample_every %d, %d records; want 0 and none", view.SampleEvery, len(view.Records))
	}

	off := newTraceServer(t, 2, -1, 0) // no tracer at all
	if off.Tracer() != nil {
		t.Fatal("negative TraceRing still installed a tracer")
	}
	if _, err := off.Submit(ctx, server.Request{Template: "Q6", Budget: testBudget()}); err != nil {
		t.Fatal(err)
	}
	if view := off.TraceViewSnapshot("", "", 0); view.SampleEvery != -1 {
		t.Errorf("disabled tracer reports sample_every %d, want -1", view.SampleEvery)
	}
}

// TestTraceFilters: tenant and template filters compose, and n keeps
// the newest matches.
func TestTraceFilters(t *testing.T) {
	srv := newTraceServer(t, 2, 0, 1)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		for _, q := range []struct{ tenant, template string }{
			{"alice", "Q6"}, {"alice", "Q1"}, {"bob", "Q6"},
		} {
			if _, err := srv.Submit(ctx, server.Request{
				Tenant: q.tenant, Template: q.template, Budget: testBudget(),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := len(srv.TraceSnapshot("alice", "", 0)); got != 20 {
		t.Errorf("alice records = %d, want 20", got)
	}
	if got := len(srv.TraceSnapshot("alice", "Q6", 0)); got != 10 {
		t.Errorf("alice/Q6 records = %d, want 10", got)
	}
	recs := srv.TraceSnapshot("", "Q6", 5)
	if len(recs) != 5 {
		t.Fatalf("capped snapshot returned %d records", len(recs))
	}
	for _, r := range recs {
		if r.Template != "Q6" {
			t.Errorf("template filter leaked %q", r.Template)
		}
	}
}
