package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/cost"
	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// shardMsg is one unit of mailbox work: a single query or a whole batch,
// plus the matching reply channel. Reply channels are buffered (capacity
// 1) so the shard loop never blocks on a caller that has already given
// up. Batches keep the mailbox traffic proportional to submissions, not
// queries: one send, one dequeue and one reply allocation cover the
// entire slice.
type shardMsg struct {
	// req/reply carry a single submission when batch is nil.
	req   Request
	reply chan shardReply

	// batch/batchReply carry a batched submission. The slice is owned by
	// the shard until the reply is sent.
	batch      []Request
	batchReply chan []shardReply

	// replyBuf, when non-nil, is caller-owned storage for the batch's
	// replies (len(batch) entries), so the shard loop fills it instead of
	// allocating per drain. The caller must not read it until the reply
	// channel delivers it (or batchDone runs).
	replyBuf []shardReply

	// batchDone, when non-nil, replaces batchReply for asynchronous
	// batches (SubmitBatchAsync): the loop invokes it with the group's
	// replies after releasing the shard lock, on the shard goroutine.
	batchDone func([]shardReply)

	// enq is the Server.nanos() stamp at enqueue, measuring mailbox wait
	// (for the oldest-waiter gauge and sampled decision traces).
	enq int64
}

// shardReply is the shard's answer to one submission.
type shardReply struct {
	resp Response
	err  error
}

// shard owns one slice of the economy: its own scheme (cache, account,
// regret ledger), its own deterministic RNG and its own metrics. All
// decisions are serialized through the mailbox goroutine; the mutex exists
// only so snapshots and housekeeping can observe (and accrue rent into) a
// consistent state without joining the queue.
type shard struct {
	id  int
	srv *Server

	mailbox chan shardMsg
	tick    chan struct{} // capacity 1; coalesces housekeeping ticks
	done    chan struct{} // closed when the loop has drained and exited

	mu  sync.Mutex
	sch scheme.Scheme
	eco *economy.Economy // nil for schemes without an economy (bypass)
	// owned is false while this shard's slice of the key space is served
	// by another backend (frozen for migration, or never owned in a
	// cluster partition). A disowned shard decides nothing and touches no
	// state: the loop answers every message with ErrShardNotOwned so a
	// router can re-route, and housekeeping skips it so the in-transit
	// economy accrues rent exactly once — on whichever backend owns it.
	owned bool
	// rng is a SplitMix64 state driving selectivity draws for queries
	// that omit one. A plain uint64 — not math/rand — so snapshots can
	// persist it and a restored shard continues the exact draw sequence.
	rng uint64

	// lastNow keeps shard time monotone even if the clock source jitters.
	lastNow time.Duration
	// lastAccrual is the point up to which storage and node rent have
	// been integrated.
	lastAccrual time.Duration
	// endOfRun is the completion time of the latest-finishing execution;
	// the drain path integrates tail rent through it, mirroring
	// sim.Run's end-of-run accounting.
	endOfRun time.Duration

	storageGBSeconds float64
	nodeSeconds      float64

	// deferred is handleMsgs' scratch list of async completions to run
	// after the lock drops; a field so its capacity survives drains.
	deferred []deferredDone

	// scratchQ is the per-shard query object decideLocked reuses for
	// every decision: shards are mailbox-serialized and nothing retains
	// the *workload.Query past the scheme's HandleQuery return (pooled
	// plans hold the pointer only until the next Enumerate), so one
	// scratch object replaces a heap allocation per query.
	scratchQ workload.Query
	// scratchStep + stepFunc are the matching fast path for the default
	// budget: when the server's policy is step-shaped, decideLocked
	// refills scratchStep and hands out stepFunc — a *budget.Step boxed
	// once at shard construction — instead of boxing a fresh budget.Func
	// per query. Same lifetime argument as scratchQ.
	scratchStep budget.Step
	stepFunc    budget.Func

	// oldestWait is the head message's mailbox wait observed at the most
	// recent drain, nanoseconds — the saturation gauge /v1/stats reports.
	// Atomic because snapshots read it without joining the queue.
	oldestWait atomic.Int64

	queries       int64
	declined      int64
	cacheAnswered int64
	investments   int64
	failures      int64
	errors        int64
	revenue       money.Amount
	profit        money.Amount
	execUsage     cost.Usage
	buildUsage    cost.Usage
	response      *metrics.DurationStats
}

// economyOf extracts the economy from schemes that have one.
func economyOf(s scheme.Scheme) *economy.Economy {
	if e, ok := s.(interface{ Economy() *economy.Economy }); ok {
		return e.Economy()
	}
	return nil
}

func newShard(id int, srv *Server, sch scheme.Scheme, seed int64, depth, reservoirCap int) *shard {
	s := &shard{
		id:       id,
		srv:      srv,
		mailbox:  make(chan shardMsg, depth),
		tick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		sch:      sch,
		eco:      economyOf(sch),
		owned:    true,
		rng:      uint64(seed),
		response: metrics.NewDurationStats(reservoirCap),
	}
	s.stepFunc = &s.scratchStep
	return s
}

// randFloat64 draws the next uniform [0,1) from the shard's SplitMix64
// stream. Callers hold s.mu.
func (s *shard) randFloat64() float64 {
	var out uint64
	s.rng, out = metrics.SplitMix64(s.rng)
	return float64(out>>11) / (1 << 53)
}

// loop is the shard's serialized decision loop. It exits only when the
// mailbox is closed AND fully drained, so every accepted submission is
// answered — the graceful-drain guarantee.
//
// Each wakeup opportunistically drains the whole mailbox into one
// handleMsgs call — group commit: under load, singleton Submits that
// queued while the shard was busy share a single lock acquisition, clock
// read and rent accrual instead of paying one each. Decisions stay in
// strict dequeue order with one shared arrival stamp (SubmitBatch's
// same-instant semantics applied to the drain), so on a virtual clock
// results are exactly those of the one-message-per-wakeup loop;
// Config.DisableMicroBatch restores that loop for comparison.
func (s *shard) loop() {
	defer close(s.done)
	var pending []shardMsg
	for {
		pending = pending[:0]
		select {
		case m, ok := <-s.mailbox:
			if !ok {
				return
			}
			pending = append(pending, m)
			// A closed mailbox ends the drain too; the outer receive
			// observes the close on the next iteration and exits.
			drained := false
			for !drained && !s.srv.cfg.DisableMicroBatch {
				select {
				case m2, ok2 := <-s.mailbox:
					if !ok2 {
						drained = true
						break
					}
					pending = append(pending, m2)
				default:
					drained = true
				}
			}
			s.handleMsgs(pending)
			// Drop reply-channel references before the slice is reused.
			for i := range pending {
				pending[i] = shardMsg{}
			}
		case <-s.tick:
			s.housekeep()
		}
	}
}

// deferredDone is one async-batch completion held back until the shard
// lock is released: the callback chains into SubmitBatchAsync's done,
// which is caller code and must be free to read server state (snapshot
// paths on OTHER shards, encode work) without holding this shard's mu.
type deferredDone struct {
	fn      func([]shardReply)
	replies []shardReply
}

// handleMsgs decides a whole mailbox drain under one lock acquisition and
// one clock read: every message in the group shares the arrival stamp, as
// if its queries had been submitted back-to-back at the same instant.
// Replies go out per message in order; the channels are buffered, so a
// caller that gave up blocks nothing. Async completions (batchDone) are
// invoked after the lock is dropped, still on this goroutine and still in
// dequeue order.
func (s *shard) handleMsgs(msgs []shardMsg) {
	if delay := s.srv.cfg.DecideDelay; delay != nil {
		delay(s.id)
	}
	// One real-time read per drain feeds both the oldest-waiter gauge
	// (FIFO: the head message waited longest) and the per-message wait
	// stage of sampled traces.
	drainNanos := s.srv.nanos()
	s.oldestWait.Store(drainNanos - msgs[0].enq)
	s.mu.Lock()
	if !s.owned {
		s.rejectLocked(msgs)
		return
	}
	now := s.nowLocked()
	s.accrueLocked(now)
	s.deferred = s.deferred[:0]
	for _, m := range msgs {
		wait := drainNanos - m.enq
		if m.batch != nil {
			replies := m.replyBuf
			if replies == nil {
				replies = make([]shardReply, len(m.batch))
			}
			for i, req := range m.batch {
				replies[i] = s.handleLocked(req, now, wait)
			}
			if m.batchDone != nil {
				s.deferred = append(s.deferred, deferredDone{fn: m.batchDone, replies: replies})
			} else {
				m.batchReply <- replies
			}
		} else {
			m.reply <- s.handleLocked(m.req, now, wait)
		}
	}
	s.mu.Unlock()
	for i := range s.deferred {
		s.deferred[i].fn(s.deferred[i].replies)
		s.deferred[i] = deferredDone{}
	}
}

// rejectLocked answers a whole mailbox drain with ErrShardNotOwned
// without deciding anything or touching shard state — no clock read, no
// accrual, no counters — so a frozen shard's captured state is exactly
// its state at the last real decision. Called with s.mu held; releases
// it. Async completions still run after the lock drops, in order.
func (s *shard) rejectLocked(msgs []shardMsg) {
	err := fmt.Errorf("%w (shard %d)", ErrShardNotOwned, s.id)
	s.deferred = s.deferred[:0]
	for _, m := range msgs {
		if m.batch != nil {
			replies := m.replyBuf
			if replies == nil {
				replies = make([]shardReply, len(m.batch))
			}
			for i := range replies {
				replies[i] = shardReply{err: err}
			}
			if m.batchDone != nil {
				s.deferred = append(s.deferred, deferredDone{fn: m.batchDone, replies: replies})
			} else {
				m.batchReply <- replies
			}
		} else {
			m.reply <- shardReply{err: err}
		}
	}
	s.mu.Unlock()
	for i := range s.deferred {
		s.deferred[i].fn(s.deferred[i].replies)
		s.deferred[i] = deferredDone{}
	}
}

// nowLocked reads the server clock clamped to monotone shard time.
// Callers hold s.mu.
func (s *shard) nowLocked() time.Duration {
	now := s.srv.clock.Now()
	if now < s.lastNow {
		now = s.lastNow
	}
	s.lastNow = now
	return now
}

// accrueLocked integrates storage and node rent over [lastAccrual, now)
// using the residency state in force over that window (the cache has not
// yet been mutated by whatever prompted the call). Callers hold s.mu.
func (s *shard) accrueLocked(now time.Duration) {
	if now <= s.lastAccrual {
		return
	}
	dt := (now - s.lastAccrual).Seconds()
	ca := s.sch.Cache()
	s.storageGBSeconds += float64(ca.ResidentBytes()) / (1 << 30) * dt
	s.nodeSeconds += float64(ca.NodeCount()) * dt
	s.lastAccrual = now
}

// handleLocked decides one query at arrival time now, sampling a
// decision trace when the tracer asks for one. waitNanos is the
// real-time mailbox wait of the message that carried the request.
// Callers hold s.mu and have already accrued rent through now.
func (s *shard) handleLocked(req Request, now time.Duration, waitNanos int64) shardReply {
	tr := s.srv.tracer
	// The whole observability layer costs one nil check and one atomic
	// load per query until a sample is due.
	if tr == nil || !tr.Sample(s.id) {
		reply, _ := s.decideLocked(req, now)
		return reply
	}

	start := time.Now()
	reply, res := s.decideLocked(req, now)
	decideNanos := time.Since(start).Nanoseconds()

	rec := obs.Record{
		QueryID:          reply.resp.QueryID,
		Tenant:           req.Tenant,
		Template:         req.Template,
		Selectivity:      reply.resp.Selectivity,
		ArrivalSec:       now.Seconds(),
		Case:             res.Case,
		Declined:         res.Declined,
		CacheHit:         !res.Declined && res.Location == plan.Cache,
		Location:         reply.resp.Location,
		ResponseTimeSec:  res.ResponseTime.Seconds(),
		ChargedUSD:       res.Charged.Dollars(),
		ProfitUSD:        res.Profit.Dollars(),
		RegretDeltaUSD:   res.RegretAccrued.Dollars(),
		InvestConsidered: res.InvestConsidered,
		InvestTaken:      res.Investments,
		FailuresSwept:    res.Failures,
		DecodeNanos:      req.DecodeNanos,
		WaitNanos:        waitNanos,
		DecideNanos:      decideNanos,
		WallNanos:        s.srv.nanos(),
	}
	if reply.err != nil {
		rec.Error = reply.err.Error()
	}
	reply.resp.TraceSeq = tr.Publish(s.id, rec)
	return reply
}

// decideLocked is the untraced decision path: template resolution,
// budgeting, the scheme's verdict and the shard counters. Callers hold
// s.mu.
func (s *shard) decideLocked(req Request, now time.Duration) (shardReply, scheme.Result) {
	tpl, ok := s.srv.templates[req.Template]
	if !ok {
		s.errors++
		return shardReply{err: fmt.Errorf("%w: %q", ErrUnknownTemplate, req.Template)}, scheme.Result{}
	}
	sel := req.Selectivity
	if sel == 0 && !req.HasSelectivity {
		// Unset: draw one from the template's range. An explicit zero
		// (HasSelectivity true) instead clamps below, like any other
		// out-of-range value.
		sel = tpl.SelMin + s.randFloat64()*(tpl.SelMax-tpl.SelMin)
	}
	if sel < tpl.SelMin {
		sel = tpl.SelMin
	}
	if sel > tpl.SelMax {
		sel = tpl.SelMax
	}

	// The shard's scratch query: safe because decisions are serialized
	// through the mailbox and nothing downstream retains the pointer past
	// HandleQuery (the optimizer's pooled plans alias it only until the
	// next Enumerate).
	q := &s.scratchQ
	*q = workload.Query{
		ID:          s.srv.nextID.Add(1),
		Tenant:      req.Tenant,
		Template:    tpl,
		Selectivity: sel,
		Arrival:     now,
		Budget:      req.Budget,
	}
	if q.Budget == nil {
		scan, err := q.ScanBytes(s.srv.catalog)
		if err != nil {
			s.errors++
			return shardReply{err: err}, scheme.Result{}
		}
		result, _ := q.ResultBytes(s.srv.catalog)
		if sb := s.srv.stepBudgets; sb != nil {
			if price, tmax, ok := sb.StepBudgetFor(q, scan, result); ok {
				s.scratchStep = budget.Step{Price: price, TMax: tmax}
				q.Budget = s.stepFunc
			}
		}
		if q.Budget == nil {
			q.Budget = s.srv.budgets.BudgetFor(q, scan, result)
		}
	}

	r, err := s.sch.HandleQuery(q)
	if err != nil {
		s.errors++
		return shardReply{err: fmt.Errorf("shard %d: query %d: %w", s.id, q.ID, err)}, scheme.Result{}
	}

	s.queries++
	s.execUsage.Add(r.ExecUsage)
	s.buildUsage.Add(r.BuildUsage)
	s.revenue = s.revenue.Add(r.Charged)
	s.profit = s.profit.Add(r.Profit)
	s.investments += int64(r.Investments)
	s.failures += int64(r.Failures)
	if r.Declined {
		s.declined++
	} else {
		s.response.ObserveDuration(r.ResponseTime)
		if r.Location == plan.Cache {
			s.cacheAnswered++
		}
		// Only executions widen the tail-rent window: a declined query
		// runs nothing, so it must not push endOfRun (and with it the
		// storage/node rent finalize charges) past its arrival — the
		// same window sim.Run bills.
		if done := now + r.ResponseTime; done > s.endOfRun {
			s.endOfRun = done
		}
	}

	return shardReply{resp: Response{
		QueryID:         q.ID,
		Shard:           s.id,
		Template:        tpl.Name,
		Selectivity:     sel,
		ArrivalSec:      now.Seconds(),
		Declined:        r.Declined,
		Location:        r.Location.String(),
		ResponseTimeSec: r.ResponseTime.Seconds(),
		ChargedUSD:      r.Charged.Dollars(),
		ProfitUSD:       r.Profit.Dollars(),
		Investments:     r.Investments,
		Failures:        r.Failures,
	}}, r
}

// housekeep advances the shard's economy through idle time: rent accrues
// and due builds complete even when no query arrives. Driven by the
// server ticker (wall clocks) or Housekeep (virtual clocks).
func (s *shard) housekeep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.owned {
		return
	}
	now := s.nowLocked()
	s.accrueLocked(now)
	ca := s.sch.Cache()
	if now > ca.Clock() {
		ca.Advance(now)
	}
	ca.CompleteDue()
}

// finalize integrates tail rent through the last promised completion, the
// same closing window sim.Run charges. Called once, after the loop exits.
func (s *shard) finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A disowned shard's economy finalizes wherever it now lives; the
	// empty remnant here has no tail rent to settle.
	if !s.owned {
		return
	}
	end := s.nowLocked()
	if s.endOfRun > end {
		end = s.endOfRun
	}
	s.accrueLocked(end)
}

// snapshot captures the shard's stats and returns the raw response-time
// reservoir samples so the caller can estimate aggregate percentiles.
func (s *shard) snapshot() (ShardStats, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A disowned shard's state is in transit: report it as-is without
	// advancing the clock or accruing rent, so polling stats during a
	// migration cannot perturb the frozen capture.
	now := s.lastNow
	if s.owned {
		now = s.nowLocked()
		s.accrueLocked(now)
	}

	acct := s.srv.accounting
	ca := s.sch.Cache()
	st := ShardStats{
		Shard:              s.id,
		Scheme:             s.sch.Name(),
		Owned:              s.owned,
		ClockSec:           now.Seconds(),
		Queries:            s.queries,
		Declined:           s.declined,
		CacheAnswered:      s.cacheAnswered,
		Investments:        s.investments,
		Failures:           s.failures,
		Errors:             s.errors,
		MailboxDepth:       len(s.mailbox),
		OldestWaitSec:      float64(s.oldestWait.Load()) / 1e9,
		ResponseMeanSec:    s.response.Mean(),
		ResponseP50Sec:     s.response.Percentile(50),
		ResponseP95Sec:     s.response.Percentile(95),
		ResponseP99Sec:     s.response.Percentile(99),
		ExecCostUSD:        cost.Price(acct, s.execUsage).Dollars(),
		BuildCostUSD:       cost.Price(acct, s.buildUsage).Dollars(),
		StorageCostUSD:     acct.StorageRent(s.storageGBSeconds).Dollars(),
		NodeCostUSD:        acct.NodeRent(s.nodeSeconds).Dollars(),
		RevenueUSD:         s.revenue.Dollars(),
		ProfitUSD:          s.profit.Dollars(),
		ResidentBytes:      ca.ResidentBytes(),
		ResidentStructures: ca.Len(),
		PendingBuilds:      ca.PendingCount(),
		Nodes:              ca.NodeCount(),
	}
	st.OperatingCostUSD = st.ExecCostUSD + st.BuildCostUSD + st.StorageCostUSD + st.NodeCostUSD
	if s.eco != nil {
		es := s.eco.Stats()
		st.CreditUSD = es.Credit.Dollars()
		st.InvestedUSD = es.Invested.Dollars()
		st.RecoveredUSD = es.Recovered.Dollars()
		st.LedgerSize = es.LedgerSize
		for _, ts := range s.eco.TenantStats() {
			st.Tenants = append(st.Tenants, tenantStatsView(ts))
		}
	}
	return st, s.response.Samples()
}

// tenantStatsView converts an economy ledger snapshot into the wire view.
func tenantStatsView(ts economy.TenantStats) TenantStats {
	v := TenantStats{
		Tenant:            ts.Tenant,
		Queries:           ts.Queries,
		Declined:          ts.Declined,
		CacheAnswered:     ts.CacheAnswered,
		CreditUSD:         ts.Credit.Dollars(),
		SpendUSD:          ts.Spend.Dollars(),
		ProfitUSD:         ts.Profit.Dollars(),
		RegretUSD:         ts.RegretAccrued.Dollars(),
		InvestedUSD:       ts.Invested.Dollars(),
		RecoveredUSD:      ts.Recovered.Dollars(),
		StructuresCharged: ts.InvestCount,
		LedgerSize:        ts.LedgerSize,
	}
	if executed := ts.Queries - ts.Declined; executed > 0 {
		v.HitRate = float64(ts.CacheAnswered) / float64(executed)
	}
	return v
}

// quickCounters reads the headline liveness counters without pricing
// costs or copying the reservoir — cheap enough for high-rate probes.
func (s *shard) quickCounters() (queries int64, now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now = s.srv.clock.Now()
	if now < s.lastNow {
		now = s.lastNow
	}
	return s.queries, now
}

// structures lists the shard's resident structures, sorted by ID.
func (s *shard) structures() []StructureInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.sch.Cache().Entries()
	out := make([]StructureInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, StructureInfo{
			Shard:             s.id,
			ID:                string(e.S.ID),
			Kind:              e.S.Kind.String(),
			Bytes:             e.S.Bytes,
			BuiltAtSec:        e.BuiltAt.Seconds(),
			LastUsedSec:       e.LastUsed.Seconds(),
			Uses:              e.Uses,
			BuildPriceUSD:     e.BuildPrice.Dollars(),
			AmortRemainingUSD: e.AmortRemaining.Dollars(),
			UnpaidMaintUSD:    e.UnpaidMaint.Dollars(),
			EarnedValueUSD:    e.EarnedValue.Dollars(),
		})
	}
	return out
}
