package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/scheme"
	"repro/internal/structure"
	"repro/internal/workload"
)

// declineScheme declines every query while (hostilely) reporting a
// non-zero ResponseTime — the worst case for the tail-rent window, since
// a declined query runs nothing and must not be billed as if it did.
type declineScheme struct {
	ca   *cache.Cache
	resp time.Duration
}

func (d *declineScheme) Name() string { return "decline-stub" }

func (d *declineScheme) HandleQuery(q *workload.Query) (scheme.Result, error) {
	if q.Arrival > d.ca.Clock() {
		d.ca.Advance(q.Arrival)
	}
	return scheme.Result{Declined: true, ResponseTime: d.resp}, nil
}

func (d *declineScheme) Cache() *cache.Cache { return d.ca }

// TestDeclinedQueryDoesNotExtendTailRent: a declined query performs no
// execution, so it must not widen the end-of-run window finalize charges
// storage and node rent through — the same accounting sim.Run applies.
func TestDeclinedQueryDoesNotExtendTailRent(t *testing.T) {
	cat := catalog.TPCH(20)
	clock := NewVirtualClock()
	srv, err := New(Config{
		Shards: 1,
		Scheme: "econ-cheap",
		Params: scheme.DefaultParams(cat),
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Swap in the stub with a resident column, so any spurious widening
	// of the tail window shows up as storage rent.
	ca := cache.New(0)
	st, err := structure.ColumnStructure(cat, catalog.Col("lineitem", "l_shipdate"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.StartBuild(st, 0, money.FromDollars(1)); err != nil {
		t.Fatal(err)
	}
	if got := len(ca.CompleteDue()); got != 1 {
		t.Fatalf("CompleteDue = %d, want 1", got)
	}
	sh := srv.shards[0]
	sh.mu.Lock()
	sh.sch = &declineScheme{ca: ca, resp: time.Hour}
	sh.eco = nil
	sh.mu.Unlock()

	ctx := context.Background()
	resp, err := srv.Submit(ctx, Request{Template: "Q6", Selectivity: 0.0096})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Declined {
		t.Fatal("stub did not decline")
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The clock never advanced, the only query declined: the drain must
	// settle zero rent, not an hour of it.
	sh.mu.Lock()
	gbSec, nodeSec, end := sh.storageGBSeconds, sh.nodeSeconds, sh.endOfRun
	sh.mu.Unlock()
	if end != 0 {
		t.Errorf("declined query extended endOfRun to %v", end)
	}
	if gbSec != 0 || nodeSec != 0 {
		t.Errorf("declined query billed tail rent: %g GB·s, %g node·s", gbSec, nodeSec)
	}
}
