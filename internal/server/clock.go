package server

import (
	"sync"
	"time"
)

// Clock supplies the serving layer's notion of economy time: a monotone
// duration since the server's epoch. The discrete-event simulator stamps
// queries with synthetic arrival times; the online engine instead reads a
// clock on every arrival, so rent, uptime and build completion accrue
// against real (or accelerated, or test-controlled virtual) time.
type Clock interface {
	// Now returns the elapsed economy time since the clock's epoch. It
	// must be monotone non-decreasing and safe for concurrent use.
	Now() time.Duration
}

// WallClock maps real time onto economy time with an optional speedup
// factor. Speedup 1 serves in real time; speedup 60 makes one wall second
// count as a simulated minute of rent and build progress, which lets a
// load test exercise hours of economy evolution in seconds.
type WallClock struct {
	start   time.Time
	speedup float64
}

// NewWallClock starts a wall clock at the current instant. Speedups <= 0
// are treated as 1.
func NewWallClock(speedup float64) *WallClock {
	if speedup <= 0 {
		speedup = 1
	}
	return &WallClock{start: time.Now(), speedup: speedup}
}

// NewWallClockAt starts a wall clock whose economy time already reads
// elapsed — how a restored daemon resumes the snapshot's clock instead
// of replaying rent and build schedules from zero.
func NewWallClockAt(elapsed time.Duration, speedup float64) *WallClock {
	if speedup <= 0 {
		speedup = 1
	}
	if elapsed < 0 {
		elapsed = 0
	}
	return &WallClock{
		start:   time.Now().Add(-time.Duration(float64(elapsed) / speedup)),
		speedup: speedup,
	}
}

// Now implements Clock.
func (c *WallClock) Now() time.Duration {
	return time.Duration(float64(time.Since(c.start)) * c.speedup)
}

// VirtualClock is a manually advanced clock for deterministic tests: time
// stands still until Advance is called, so rent accrual and build
// completion become exact, reproducible functions of the test script.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock starts a virtual clock at zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative advances are ignored:
// economy time is monotone.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}
