package server_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/server"
)

// The allocation-free hot path reuses state aggressively: each shard
// owns a scratch workload.Query and budget.Step, the optimizer refills a
// plan pool on every Enumerate, batch replies land in caller-owned
// buffers, and Submit reply channels come from a sync.Pool. This test
// pins the safety contract of all that reuse: none of it may leak state
// between tenants or between concurrent submitters.
//
// The same deterministic multi-tenant stream is replayed twice — once
// sequentially, once by one goroutine per shard interleaving Submit and
// SubmitBatch — and both the per-shard replies and the final Stats must
// be byte-identical, modulo QueryID (IDs are allocation order across the
// whole server, so concurrent submitters interleave them). Run under
// -race this also proves the reuse paths publish no shared memory.

const (
	scratchShards   = 4
	scratchRounds   = 24
	scratchPerRound = 8 // queries per shard per round
)

// scratchTenants finds two tenants per shard by probing the routing
// hash, so every submitter exercises two ledgers on its shard.
func scratchTenants() [scratchShards][2]string {
	var tenants [scratchShards][2]string
	filled := 0
	for i := 0; filled < scratchShards*2; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		idx := server.ShardIndexFor(name, "", scratchShards)
		for j := 0; j < 2; j++ {
			if tenants[idx][j] == "" {
				tenants[idx][j] = name
				filled++
				break
			}
		}
	}
	return tenants
}

// scratchRequest scripts query n of a shard's stream: tenants alternate,
// templates rotate, and selectivity and budget toggle between explicit
// and server-defaulted so the shard RNG stream and the default budget
// policy are both on the reuse path.
func scratchRequest(tenants [2]string, n int) server.Request {
	templates := []string{"Q1", "Q6", "Q3", "Q10", "Q14", "Q18"}
	req := server.Request{
		Tenant:   tenants[n%2],
		Template: templates[n%len(templates)],
	}
	if n%3 != 2 {
		req.Selectivity = 0.001 + 0.0001*float64(n%9)
	}
	if n%4 != 3 {
		req.Budget = budget.NewStep(money.FromDollars(0.05), time.Hour)
	}
	return req
}

func TestScratchReuseParity(t *testing.T) {
	tenants := scratchTenants()

	// run replays the stream and returns per-shard replies plus final
	// Stats. Rounds are clock steps: the clock advances and Housekeep
	// runs between rounds (never during one), so both replays see every
	// query at the same virtual time. Within a round each shard's
	// queries arrive in stream order — the only order the engine
	// promises determinism for — with the front half of each round
	// submitted as one batch and the back half as individual Submits.
	run := func(t *testing.T, provider economy.Provider, concurrent bool) ([][]server.Response, server.Stats) {
		t.Helper()
		clock := server.NewVirtualClock()
		srv := parityServer(t, provider, clock, "", nil)
		ctx := context.Background()
		out := make([][]server.Response, scratchShards)

		submitRound := func(shard, round int) error {
			reqs := make([]server.Request, scratchPerRound)
			for i := range reqs {
				reqs[i] = scratchRequest(tenants[shard], round*scratchPerRound+i)
			}
			half := scratchPerRound / 2
			items, err := srv.SubmitBatch(ctx, reqs[:half])
			if err != nil {
				return err
			}
			for i, it := range items {
				if it.Err != nil {
					return fmt.Errorf("batch item %d: %w", i, it.Err)
				}
				out[shard] = append(out[shard], it.Resp)
			}
			for i := half; i < scratchPerRound; i++ {
				resp, err := srv.Submit(ctx, reqs[i])
				if err != nil {
					return fmt.Errorf("submit item %d: %w", i, err)
				}
				out[shard] = append(out[shard], resp)
			}
			return nil
		}

		for round := 0; round < scratchRounds; round++ {
			clock.Advance(20 * time.Second)
			srv.Housekeep()
			if concurrent {
				errs := make([]error, scratchShards)
				var wg sync.WaitGroup
				for shard := 0; shard < scratchShards; shard++ {
					wg.Add(1)
					go func(shard int) {
						defer wg.Done()
						errs[shard] = submitRound(shard, round)
					}(shard)
				}
				wg.Wait()
				for shard, err := range errs {
					if err != nil {
						t.Fatalf("round %d shard %d: %v", round, shard, err)
					}
				}
			} else {
				for shard := 0; shard < scratchShards; shard++ {
					if err := submitRound(shard, round); err != nil {
						t.Fatalf("round %d shard %d: %v", round, shard, err)
					}
				}
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		stats := srv.Stats()
		clearGauges(&stats)
		for _, replies := range out {
			for i := range replies {
				replies[i].QueryID = 0
			}
		}
		return out, stats
	}

	for _, provider := range []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish} {
		t.Run(provider.String(), func(t *testing.T) {
			seqReplies, seqStats := run(t, provider, false)
			conReplies, conStats := run(t, provider, true)
			for shard := range seqReplies {
				got, want := mustJSON(t, conReplies[shard]), mustJSON(t, seqReplies[shard])
				if got != want {
					t.Errorf("shard %d: interleaved replies diverge from sequential baseline:\ngot  %s\nwant %s",
						shard, got, want)
				}
			}
			if got, want := mustJSON(t, conStats), mustJSON(t, seqStats); got != want {
				t.Errorf("interleaved final stats diverge from sequential baseline:\ngot  %s\nwant %s", got, want)
			}
		})
	}
}
