package server_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/persist"
	"repro/internal/server"
)

// Migration parity: a shard frozen on backend A, extracted as a packet,
// carried as bytes and installed on backend B must answer the remaining
// stream byte-identically — replies and final stats — to a shard that
// never moved. The harness reuses the restart-parity stream, but where
// the restart test moves the WHOLE engine through a drain, these move
// ONE shard between two live servers.

func migrationServer(t *testing.T, provider economy.Provider, clock server.Clock, shards int) *server.Server {
	t.Helper()
	params := testParams(testCatalog())
	params.Provider = provider
	srv, err := server.New(server.Config{
		Shards: shards,
		Scheme: "econ-cheap",
		Params: params,
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// transferShard round-trips the packet through its wire encoding, the
// way a real migration carries it between processes.
func transferShard(t *testing.T, src *server.Server, shard int) *persist.ShardPacket {
	t.Helper()
	pkt, err := src.ExtractShard(shard)
	if err != nil {
		t.Fatalf("extract shard %d: %v", shard, err)
	}
	data := persist.EncodeShardPacket(pkt)
	got, err := persist.DecodeShardPacket(data)
	if err != nil {
		t.Fatalf("decode transferred packet: %v", err)
	}
	return got
}

// TestMigrationParity is the acceptance harness: both providers, a
// single-shard economy moved mid-stream, byte-compared against an
// unmigrated control run.
func TestMigrationParity(t *testing.T) {
	for _, provider := range []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish} {
		t.Run(provider.String(), func(t *testing.T) {
			// Control: one server lives through the whole stream.
			ctlClock := server.NewVirtualClock()
			ctl := migrationServer(t, provider, ctlClock, 1)
			ctlReplies := runParityGroups(t, ctl, ctlClock, 0, parityGroups, true)
			if err := ctl.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			ctlStats := ctl.Stats()

			// Backend A serves the first half of the stream, then the
			// shard is frozen, extracted and shipped.
			clockA := server.NewVirtualClock()
			a := migrationServer(t, provider, clockA, 1)
			runParityGroups(t, a, clockA, 0, parityRestart, true)
			pkt := transferShard(t, a, 0)
			if pkt.State.Investments == 0 {
				t.Fatal("packet carries no investments; the parity run is not exercising the economy")
			}

			// The source now rejects the shard's traffic with the
			// not-owned sentinel and reports the slot disowned.
			if _, err := a.Submit(context.Background(), parityGroup(parityRestart)[0]); !errors.Is(err, server.ErrShardNotOwned) {
				t.Fatalf("post-extract submit on source: err = %v, want ErrShardNotOwned", err)
			}
			if owned := a.OwnedShards(); owned[0] {
				t.Fatal("extracted shard still reported as owned on the source")
			}

			// Backend B adopts the packet at the same economy time and
			// serves the rest of the stream.
			clockB := server.NewVirtualClock()
			clockB.Advance(pkt.Clock)
			b := migrationServer(t, provider, clockB, 1)
			if err := b.FreezeShard(0); err != nil {
				t.Fatal(err)
			}
			if err := b.InstallShard(0, pkt); err != nil {
				t.Fatalf("install: %v", err)
			}
			replies := runParityGroups(t, b, clockB, parityRestart, parityGroups, true)

			if err := a.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := b.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}

			wantReplies := ctlReplies[parityRestart*parityPer:]
			if got, want := mustJSON(t, replies), mustJSON(t, wantReplies); got != want {
				t.Errorf("replies after migration diverge from unmigrated run:\ngot  %s\nwant %s", got, want)
			}
			migStats := b.Stats()
			clearGauges(&migStats)
			clearGauges(&ctlStats)
			if got, want := mustJSON(t, migStats), mustJSON(t, ctlStats); got != want {
				t.Errorf("final stats after migration diverge from unmigrated run:\ngot  %s\nwant %s", got, want)
			}

			// The source kept nothing: the extract was a move, not a copy —
			// the remnant slot is a fresh, disowned economy (its credit is
			// the scheme's initial float, not carried-over balance).
			srcStats := a.Stats()
			if sh := srcStats.PerShard[0]; sh.Queries != 0 || sh.ResidentBytes != 0 || sh.InvestedUSD != 0 || sh.RevenueUSD != 0 || sh.Owned {
				t.Errorf("source shard retains state after extract: %+v", sh)
			}
		})
	}
}

// TestExtractShardCheckedAborts pins the commit gate the wire layer
// leans on: a check that rejects the captured packet (an encoding too
// large for one frame, say) must abort the extract with the shard's
// state, ownership and service untouched — the economy must not be
// destroyed for a reply that could never be delivered.
func TestExtractShardCheckedAborts(t *testing.T) {
	clock := server.NewVirtualClock()
	srv := migrationServer(t, economy.ProviderSelfish, clock, 1)
	defer srv.Shutdown(context.Background())
	runParityGroups(t, srv, clock, 0, parityRestart, true)
	before := srv.Stats()

	sentinel := errors.New("packet refused by the transport")
	var sawQueries int64
	if _, err := srv.ExtractShardChecked(0, func(pkt *persist.ShardPacket) error {
		sawQueries = pkt.State.Queries
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("aborted extract: err = %v, want the check's error", err)
	}
	if sawQueries == 0 {
		t.Fatal("check never saw a captured economy; the gate is vacuous")
	}
	if !srv.ShardOwned(0) {
		t.Fatal("aborted extract left the shard disowned")
	}
	after := srv.Stats()
	if got, want := mustJSON(t, after), mustJSON(t, before); got != want {
		t.Fatalf("aborted extract mutated shard state:\ngot  %s\nwant %s", got, want)
	}

	// The shard keeps serving the stream as if nothing happened, and a
	// later unguarded extract still moves the full economy.
	runParityGroups(t, srv, clock, parityRestart, parityRestart+8, true)
	pkt, err := srv.ExtractShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.State.Queries <= sawQueries {
		t.Fatalf("post-abort extract carries %d queries, want > %d", pkt.State.Queries, sawQueries)
	}
}

// TestInstallGuards pins the installation validation: wrong fingerprint,
// wrong slot, or a slot that already holds state must all fail loudly.
func TestInstallGuards(t *testing.T) {
	clockA := server.NewVirtualClock()
	a := migrationServer(t, economy.ProviderSelfish, clockA, 2)
	defer a.Shutdown(context.Background())
	runParityGroups(t, a, clockA, 0, 8, true)

	pkt, err := a.ExtractShard(0)
	if err != nil {
		t.Fatal(err)
	}

	// Same server, same slot: the reset made the slot unused, so a
	// round-trip reinstall is legal and restores ownership.
	if err := a.InstallShard(0, pkt); err != nil {
		t.Fatalf("reinstall into the extracted slot: %v", err)
	}
	if !a.ShardOwned(0) {
		t.Fatal("reinstalled shard not owned")
	}

	// A slot holding live state refuses installs.
	if err := a.InstallShard(0, pkt); !errors.Is(err, server.ErrShardInUse) {
		t.Fatalf("install over live state: err = %v, want ErrShardInUse", err)
	}
	// Wrong slot index.
	if err := a.InstallShard(1, pkt); err == nil {
		t.Fatal("install into mismatched slot accepted")
	}
	// Wrong provider fingerprint.
	alt := migrationServer(t, economy.ProviderAltruistic, server.NewVirtualClock(), 2)
	defer alt.Shutdown(context.Background())
	if err := alt.InstallShard(0, pkt); err == nil {
		t.Fatal("install across a provider change accepted")
	}
	// Readiness reflects draining.
	if state, ready := a.ReadyState(); !ready || state != "ok" {
		t.Fatalf("ReadyState() = %q, %v before shutdown", state, ready)
	}
	a.Shutdown(context.Background())
	if state, ready := a.ReadyState(); ready || state != "draining" {
		t.Fatalf("ReadyState() = %q, %v after shutdown", state, ready)
	}
}

// TestMigrationUnderConcurrentLoad runs one submitter per shard while a
// hot shard migrates mid-stream between two live servers, with each
// submitter retrying not-owned rejections against the new owner — the
// router's replay loop in miniature. Per-shard replies must be
// byte-identical to a sequential no-migration replay, modulo QueryID:
// IDs are allocation order across the whole server, so concurrent
// submitters interleave them nondeterministically; everything else —
// selectivity draws, verdicts, charges, response times — must match.
func TestMigrationUnderConcurrentLoad(t *testing.T) {
	const (
		shards   = 4
		hot      = 2   // the shard that moves
		perShard = 240 // queries per submitter
		moveAt   = 80  // migrate once the hot submitter has this many replies
	)

	// One tenant per shard, found by probing the routing hash.
	probe := migrationServer(t, economy.ProviderSelfish, server.NewVirtualClock(), shards)
	tenants := make([]string, shards)
	for i := 0; len(tenants[shards-1]) == 0 || func() bool {
		for _, s := range tenants {
			if s == "" {
				return true
			}
		}
		return false
	}(); i++ {
		name := fmt.Sprintf("tenant-%d", i)
		idx := probe.ShardIndex(server.Request{Tenant: name})
		if tenants[idx] == "" {
			tenants[idx] = name
		}
	}
	probe.Shutdown(context.Background())

	templates := []string{"Q1", "Q6", "Q3", "Q10", "Q14", "Q18"}
	reqFor := func(shard, n int) server.Request {
		req := server.Request{Tenant: tenants[shard], Template: templates[n%len(templates)]}
		if n%3 != 2 {
			req.Selectivity = 0.001 + 0.0001*float64(n%9)
		}
		if n%4 != 3 {
			req.Budget = budget.NewStep(money.FromDollars(0.05), time.Hour)
		}
		return req
	}

	a := migrationServer(t, economy.ProviderSelfish, server.NewVirtualClock(), shards)
	b := migrationServer(t, economy.ProviderSelfish, server.NewVirtualClock(), shards)
	// Cluster partition bootstrap: B owns nothing until the migration
	// installs the hot shard, so a racing submitter can never split the
	// economy across both backends.
	for i := 0; i < shards; i++ {
		if err := b.FreezeShard(i); err != nil {
			t.Fatal(err)
		}
	}

	var hotDone atomic.Int64
	var rejected atomic.Int64
	replies := make([][]server.Response, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ctx := context.Background()
			owner := a
			for n := 0; n < perShard; n++ {
				req := reqFor(k, n)
				for {
					resp, err := owner.Submit(ctx, req)
					if err == nil {
						replies[k] = append(replies[k], resp)
						break
					}
					if !errors.Is(err, server.ErrShardNotOwned) {
						t.Errorf("shard %d query %d: %v", k, n, err)
						return
					}
					// Re-route: the owner moved. Flip to the other backend
					// and retry; if the packet is still in flight both
					// sides reject, so back off briefly.
					rejected.Add(1)
					if owner == a {
						owner = b
					} else {
						owner = a
					}
					time.Sleep(200 * time.Microsecond)
				}
				if k == hot {
					hotDone.Add(1)
				}
			}
		}(k)
	}

	// The migration fires while all four submitters are running.
	for hotDone.Load() < moveAt {
		time.Sleep(100 * time.Microsecond)
	}
	pkt := transferShard(t, a, hot)
	if err := b.InstallShard(hot, pkt); err != nil {
		t.Fatalf("install during load: %v", err)
	}
	wg.Wait()

	if rejected.Load() == 0 {
		t.Error("no submitter ever saw ErrShardNotOwned; the migration did not race the load")
	}

	// Sequential control: same per-shard streams, no migration.
	ctl := migrationServer(t, economy.ProviderSelfish, server.NewVirtualClock(), shards)
	ctlReplies := make([][]server.Response, shards)
	for k := 0; k < shards; k++ {
		for n := 0; n < perShard; n++ {
			resp, err := ctl.Submit(context.Background(), reqFor(k, n))
			if err != nil {
				t.Fatalf("control shard %d query %d: %v", k, n, err)
			}
			ctlReplies[k] = append(ctlReplies[k], resp)
		}
	}

	normalize := func(rs []server.Response) []server.Response {
		out := append([]server.Response(nil), rs...)
		for i := range out {
			out[i].QueryID = 0
		}
		return out
	}
	for k := 0; k < shards; k++ {
		if got, want := mustJSON(t, normalize(replies[k])), mustJSON(t, normalize(ctlReplies[k])); got != want {
			t.Errorf("shard %d replies diverge from sequential no-migration replay:\ngot  %s\nwant %s", k, got, want)
		}
	}

	// Final books: shard k's stats live on A (k != hot) or B (hot) and
	// must match the control's shard k exactly.
	for _, srv := range []*server.Server{a, b, ctl} {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	aStats, bStats, ctlStats := a.Stats(), b.Stats(), ctl.Stats()
	clearGauges(&aStats)
	clearGauges(&bStats)
	clearGauges(&ctlStats)
	for k := 0; k < shards; k++ {
		got := aStats.PerShard[k]
		if k == hot {
			got = bStats.PerShard[k]
		}
		if gotJSON, want := mustJSON(t, got), mustJSON(t, ctlStats.PerShard[k]); gotJSON != want {
			t.Errorf("shard %d final stats diverge:\ngot  %s\nwant %s", k, gotJSON, want)
		}
	}
}
