package server

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"repro/internal/economy"
	"repro/internal/persist"
	"repro/internal/structure"
)

// Durable state: Snapshot captures every shard's economy, cache,
// counters and RNG into a persist.Snapshot; Config.Restore adopts one
// before the shard loops start, so a restarted daemon resumes the exact
// accounts, regret ledgers and resident structures it drained with. The
// graceful-drain path writes the snapshot after the loops exit but
// BEFORE tail-rent finalization: the tail window (endOfRun) is persisted
// and the restored server charges it at its own eventual drain, so a
// drain-restore-drain sequence accounts rent exactly once — the
// restart-parity test pins this byte for byte.

// yieldScheme is implemented by schemes whose only extra state is a
// yield accumulator (the bypass baseline).
type yieldScheme interface {
	YieldSnapshot() map[structure.ID]int64
	RestoreYield(map[structure.ID]int64)
}

// Snapshot captures the engine's durable state. Safe to call on a live
// server: each shard is captured under its own lock (decisions already
// in flight land in the next checkpoint). On a drained server it is the
// complete final state.
func (s *Server) Snapshot() *persist.Snapshot {
	snap := &persist.Snapshot{
		Scheme:          s.cfg.Scheme,
		Provider:        s.cfg.Params.Provider.String(),
		CatalogBytes:    s.catalog.TotalBytes(),
		NextID:          s.nextID.Load(),
		Clock:           s.clock.Now(),
		CreatedUnixNano: time.Now().UnixNano(),
	}
	for _, sh := range s.shards {
		snap.Shards = append(snap.Shards, sh.captureState())
	}
	return snap
}

// Checkpoint writes the current state to Config.SnapshotPath and returns
// the path and encoded size. It fails when no snapshot path is
// configured or the server is already draining (the drain itself writes
// the authoritative final snapshot). The draining check holds snapMu
// through the write, so a checkpoint that races Shutdown can never
// capture a half-drained state, or rename an earlier capture over the
// drain's final snapshot: writes are strictly serialized and the drain's
// is last.
func (s *Server) Checkpoint() (string, int64, error) {
	if s.cfg.SnapshotPath == "" {
		return "", 0, fmt.Errorf("server: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return "", 0, fmt.Errorf("server: draining; the drain writes the final snapshot")
	}
	n, err := s.writeSnapshotLocked()
	return s.cfg.SnapshotPath, n, err
}

// writeSnapshot captures and atomically persists the state.
func (s *Server) writeSnapshot() (int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.writeSnapshotLocked()
}

// writeSnapshotLocked does the capture and write. Callers hold snapMu.
func (s *Server) writeSnapshotLocked() (int64, error) {
	return persist.Write(s.cfg.SnapshotPath, s.Snapshot())
}

// runCheckpointer writes periodic checkpoints until stopped.
func (s *Server) runCheckpointer(every time.Duration) {
	defer close(s.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := s.writeSnapshot(); err != nil {
				slog.Error("server: checkpoint failed", "path", s.cfg.SnapshotPath, "err", err)
			}
		case <-s.ckptStop:
			return
		}
	}
}

// restore adopts a snapshot into freshly built shards. Called by New
// before the shard loops start, so no locking races are possible. Any
// mismatch between the snapshot and the live configuration fails the
// whole restore: state must never silently cross a reconfiguration.
func (s *Server) restore(snap *persist.Snapshot) error {
	if snap.Scheme != s.cfg.Scheme {
		return fmt.Errorf("server: snapshot scheme %q != configured %q", snap.Scheme, s.cfg.Scheme)
	}
	if want := s.cfg.Params.Provider.String(); snap.Provider != want {
		return fmt.Errorf("server: snapshot provider %q != configured %q", snap.Provider, want)
	}
	if got := s.catalog.TotalBytes(); snap.CatalogBytes != got {
		return fmt.Errorf("server: snapshot catalog (%d bytes) != configured catalog (%d bytes)", snap.CatalogBytes, got)
	}
	if len(snap.Shards) != len(s.shards) {
		return fmt.Errorf("server: snapshot has %d shards, configured %d", len(snap.Shards), len(s.shards))
	}
	if snap.NextID < 0 {
		return fmt.Errorf("server: snapshot query counter %d is negative", snap.NextID)
	}
	for i := range snap.Shards {
		if err := s.shards[i].restoreState(&snap.Shards[i]); err != nil {
			return fmt.Errorf("server: shard %d: %w", i, err)
		}
	}
	s.nextID.Store(snap.NextID)
	return nil
}

// captureState exports one shard's durable state under its lock.
func (s *shard) captureState() persist.ShardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.captureStateLocked()
}

// captureStateLocked does the export. Callers hold s.mu.
func (s *shard) captureStateLocked() persist.ShardState {
	st := persist.ShardState{
		Index:            s.id,
		LastNow:          s.lastNow,
		LastAccrual:      s.lastAccrual,
		EndOfRun:         s.endOfRun,
		StorageGBSeconds: s.storageGBSeconds,
		NodeSeconds:      s.nodeSeconds,
		Queries:          s.queries,
		Declined:         s.declined,
		CacheAnswered:    s.cacheAnswered,
		Investments:      s.investments,
		Failures:         s.failures,
		Errors:           s.errors,
		Revenue:          s.revenue,
		Profit:           s.profit,
		ExecUsage:        s.execUsage,
		BuildUsage:       s.buildUsage,
		RNG:              s.rng,
		Response:         s.response.State(),
		Cache:            s.sch.Cache().Snapshot(),
	}
	if s.eco != nil {
		st.Economy = s.eco.Snapshot()
	}
	if ys, ok := s.sch.(yieldScheme); ok {
		yield := ys.YieldSnapshot()
		ids := make([]structure.ID, 0, len(yield))
		for id := range yield {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			st.Yield = append(st.Yield, persist.YieldState{ID: id, Bytes: yield[id]})
		}
	}
	return st
}

// restoreState adopts one shard's state. The shard must be fresh: its
// loop not yet started, or live but unused (shard installation locks it
// and checks with unusedLocked first).
func (s *shard) restoreState(st *persist.ShardState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoreStateLocked(st)
}

// restoreStateLocked does the adoption. Callers hold s.mu.
func (s *shard) restoreStateLocked(st *persist.ShardState) error {
	resolve := func(id structure.ID) (*structure.Structure, error) {
		return economy.ResolveID(s.srv.catalog, id)
	}
	if err := s.sch.Cache().Restore(st.Cache, resolve); err != nil {
		return err
	}
	if (st.Economy != nil) != (s.eco != nil) {
		return fmt.Errorf("snapshot economy state does not match scheme %q", s.sch.Name())
	}
	if s.eco != nil {
		if err := s.eco.Restore(st.Economy); err != nil {
			return err
		}
	}
	if len(st.Yield) > 0 {
		ys, ok := s.sch.(yieldScheme)
		if !ok {
			return fmt.Errorf("snapshot carries yield state but scheme %q keeps none", s.sch.Name())
		}
		yield := make(map[structure.ID]int64, len(st.Yield))
		for _, y := range st.Yield {
			yield[y.ID] = y.Bytes
		}
		ys.RestoreYield(yield)
	}
	s.lastNow = st.LastNow
	s.lastAccrual = st.LastAccrual
	s.endOfRun = st.EndOfRun
	s.storageGBSeconds = st.StorageGBSeconds
	s.nodeSeconds = st.NodeSeconds
	s.queries = st.Queries
	s.declined = st.Declined
	s.cacheAnswered = st.CacheAnswered
	s.investments = st.Investments
	s.failures = st.Failures
	s.errors = st.Errors
	s.revenue = st.Revenue
	s.profit = st.Profit
	s.execUsage = st.ExecUsage
	s.buildUsage = st.BuildUsage
	s.rng = st.RNG
	s.response.Restore(st.Response)
	return nil
}
