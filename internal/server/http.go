package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/budget"
	"repro/internal/money"
	"repro/internal/obs"
)

// QueryRequest is the JSON body of POST /v1/query and one element of
// POST /v1/batch. Selectivity is a pointer so an explicit
// `"selectivity": 0` is distinguishable from an absent field: absent
// draws from the template's range, zero clamps to the template's
// minimum like any other out-of-range value.
type QueryRequest struct {
	Tenant      string      `json:"tenant,omitempty"`
	Template    string      `json:"template"`
	Selectivity *float64    `json:"selectivity,omitempty"`
	Budget      *BudgetJSON `json:"budget,omitempty"`
}

// Request converts the wire form into the engine's Request.
func (qr *QueryRequest) Request() (Request, error) {
	bf, err := qr.Budget.Func()
	if err != nil {
		return Request{}, err
	}
	req := Request{
		Tenant:   qr.Tenant,
		Template: qr.Template,
		Budget:   bf,
	}
	if qr.Selectivity != nil {
		req.Selectivity = *qr.Selectivity
		req.HasSelectivity = true
	}
	return req, nil
}

// BudgetJSON is the wire form of a user budget function B_Q(t): a shape
// name plus the headline price and support (Fig. 1).
type BudgetJSON struct {
	// Shape is "step", "linear", "convex" or "concave". Default "step".
	Shape string `json:"shape,omitempty"`
	// PriceUSD is the headline willingness to pay.
	PriceUSD float64 `json:"price_usd"`
	// TmaxSec is the largest tolerated response time, seconds.
	TmaxSec float64 `json:"tmax_s"`
	// K is the curvature of convex/concave shapes; <=1 means 2.
	K float64 `json:"k,omitempty"`
}

// Func materialises the budget function. A nil receiver returns nil (use
// the server's default policy).
func (b *BudgetJSON) Func() (budget.Func, error) {
	if b == nil {
		return nil, nil
	}
	if b.PriceUSD <= 0 {
		return nil, fmt.Errorf("budget: price_usd must be positive")
	}
	if b.TmaxSec <= 0 {
		return nil, fmt.Errorf("budget: tmax_s must be positive")
	}
	price := money.FromDollars(b.PriceUSD)
	tmax := time.Duration(b.TmaxSec * float64(time.Second))
	switch b.Shape {
	case "", "step":
		return budget.NewStep(price, tmax), nil
	case "linear":
		return budget.NewLinear(price, tmax), nil
	case "convex":
		return budget.NewConvex(price, tmax, b.K), nil
	case "concave":
		return budget.NewConcave(price, tmax, b.K), nil
	default:
		return nil, fmt.Errorf("budget: unknown shape %q", b.Shape)
	}
}

// Health is the JSON body of GET /healthz.
type Health struct {
	Status   string  `json:"status"`
	Scheme   string  `json:"scheme"`
	Shards   int     `json:"shards"`
	ClockSec float64 `json:"clock_s"`
	Queries  int64   `json:"queries"`
	Draining bool    `json:"draining"`
}

// errorJSON is the wire form of a request failure.
type errorJSON struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/query      — submit one query (QueryRequest -> Response)
//	POST /v1/batch      — submit many ([]QueryRequest -> []BatchResponseItem)
//	GET  /v1/stats      — live aggregate + per-shard metrics (Stats); ?pretty=1 indents
//	GET  /v1/structures — resident structures across shards; ?pretty=1 indents
//	GET  /v1/trace      — sampled per-query decision traces; ?tenant= ?template= ?n=
//	GET  /v1/events     — economy event journal; ?type= ?tenant= ?n=
//	GET  /metrics       — Prometheus text exposition
//	GET  /healthz       — liveness plus headline counters (Health)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/structures", s.handleStructures)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// writeJSON encodes v compactly — the hot /v1/query path pays no
// indentation — and reports encode failures instead of swallowing them:
// the status line is already on the wire by then, so the best we can do
// is log with the request's context and let the truncated body fail the
// client's decode.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	writeJSONIndent(w, r, status, v, false)
}

func writeJSONIndent(w http.ResponseWriter, r *http.Request, status int, v any, indent bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		slog.Error("server: encoding response failed",
			"type", fmt.Sprintf("%T", v),
			"method", r.Method,
			"path", r.URL.Path,
			"remote", r.RemoteAddr,
			"err", err)
	}
}

// wantPretty reports whether the client asked for indented output
// (?pretty=1) on the read endpoints.
func wantPretty(r *http.Request) bool {
	p := r.URL.Query().Get("pretty")
	return p == "1" || p == "true"
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, r, status, errorJSON{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// Stage timing is paid only while tracing is live: one clock read
	// pair around the body decode, another around the reply encode.
	tr := s.Tracer()
	traceOn := tr != nil && tr.Enabled()
	var decStart time.Time
	if traceOn {
		decStart = time.Now()
	}
	var qr QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qr); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if qr.Template == "" {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("template is required"))
		return
	}
	req, err := qr.Request()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if traceOn {
		req.DecodeNanos = time.Since(decStart).Nanoseconds()
	}
	resp, err := s.Submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrServerClosed):
		writeError(w, r, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrUnknownTemplate):
		writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, ErrShardNotOwned):
		// A cluster backend answering direct traffic for a shard it
		// migrated away: the client is talking to the wrong backend.
		writeError(w, r, http.StatusMisdirectedRequest, err)
	case err != nil:
		writeError(w, r, http.StatusInternalServerError, err)
	default:
		var encStart time.Time
		if traceOn {
			encStart = time.Now()
		}
		writeJSON(w, r, http.StatusOK, resp)
		if traceOn && resp.TraceSeq != 0 {
			tr.SetEncode(resp.Shard, resp.TraceSeq, time.Since(encStart).Nanoseconds())
		}
	}
}

// BatchResponseItem is one positional element of the POST /v1/batch
// reply: exactly one of Response or Error is set.
type BatchResponseItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// maxHTTPBatch bounds one /v1/batch submission; larger batches gain
// nothing (they only delay the first reply) and unbounded ones are a
// memory hazard.
const maxHTTPBatch = 4096

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	tr := s.Tracer()
	traceOn := tr != nil && tr.Enabled()
	var decStart time.Time
	if traceOn {
		decStart = time.Now()
	}
	var qrs []QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qrs); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(qrs) == 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(qrs) > maxHTTPBatch {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(qrs), maxHTTPBatch))
		return
	}
	reqs := make([]Request, len(qrs))
	for i := range qrs {
		// Malformed items are client errors for the whole request, same
		// as on /v1/query — they must not reach the shards and pollute
		// the Errors counter.
		if qrs[i].Template == "" {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("batch[%d]: template is required", i))
			return
		}
		req, err := qrs[i].Request()
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("batch[%d]: %w", i, err))
			return
		}
		reqs[i] = req
	}
	if traceOn {
		share := time.Since(decStart).Nanoseconds() / int64(len(reqs))
		for i := range reqs {
			reqs[i].DecodeNanos = share
		}
	}
	items, err := s.SubmitBatch(r.Context(), reqs)
	switch {
	case errors.Is(err, ErrServerClosed):
		writeError(w, r, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	out := make([]BatchResponseItem, len(items))
	for i := range items {
		if items[i].Err != nil {
			out[i].Error = items[i].Err.Error()
		} else {
			resp := items[i].Resp
			out[i].Response = &resp
		}
	}
	var encStart time.Time
	if traceOn {
		encStart = time.Now()
	}
	writeJSON(w, r, http.StatusOK, out)
	if traceOn {
		// Back-fill the encode stage into the sampled records; the whole
		// reply body shares one encode, amortized per item.
		share := time.Since(encStart).Nanoseconds() / int64(len(out))
		for i := range out {
			if out[i].Response != nil && out[i].Response.TraceSeq != 0 {
				tr.SetEncode(out[i].Response.Shard, out[i].Response.TraceSeq, share)
			}
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSONIndent(w, r, http.StatusOK, s.Stats(), wantPretty(r))
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	structures := s.Structures()
	if structures == nil {
		structures = []StructureInfo{}
	}
	writeJSONIndent(w, r, http.StatusOK, structures, wantPretty(r))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var queries int64
	var clockSec float64
	for _, sh := range s.shards {
		q, now := sh.quickCounters()
		queries += q
		if sec := now.Seconds(); sec > clockSec {
			clockSec = sec
		}
	}
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	writeJSON(w, r, http.StatusOK, Health{
		Status:   "ok",
		Scheme:   s.cfg.Scheme,
		Shards:   len(s.shards),
		ClockSec: clockSec,
		Queries:  queries,
		Draining: draining,
	})
}

// Readiness is the JSON body of GET /readyz: State is "ok" when the
// server should receive traffic, else "draining" (shutdown begun),
// "migrating" (a shard transfer is in progress) or — from the daemon's
// boot stub, before the engine exists — "restoring".
type Readiness struct {
	State string `json:"state"`
	Ready bool   `json:"ready"`
}

// handleReadyz splits readiness from liveness: /healthz answers 200 as
// long as the process serves, while /readyz goes non-200 the moment the
// server should stop receiving new traffic. The router's health loop
// keys off it during cutover.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	state, ready := s.ReadyState()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, r, status, Readiness{State: state, Ready: ready})
}

// intParam parses a non-negative integer query parameter, returning def
// when absent and an error when malformed.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s: want a non-negative integer, got %q", name, raw)
	}
	return n, nil
}

// TraceView is the JSON body of GET /v1/trace.
type TraceView struct {
	// SampleEvery echoes the active sampling period: 0 means sampling is
	// off, 1 every query, N one in N. -1 means the tracer is disabled
	// entirely (Config.TraceRing < 0).
	SampleEvery int64        `json:"sample_every"`
	Records     []obs.Record `json:"records"`
}

// defaultTraceN bounds an unqualified GET /v1/trace; the full rings are
// available with an explicit ?n=.
const defaultTraceN = 256

// TraceViewSnapshot builds the trace view both fronts (HTTP and the
// binary protocol's trace frame) serve. n <= 0 applies the default
// bound.
func (s *Server) TraceViewSnapshot(tenant, template string, n int) TraceView {
	if n <= 0 {
		n = defaultTraceN
	}
	view := TraceView{SampleEvery: -1, Records: []obs.Record{}}
	if tr := s.Tracer(); tr != nil {
		view.SampleEvery = tr.SampleEvery()
		if recs := s.TraceSnapshot(tenant, template, n); recs != nil {
			view.Records = recs
		}
	}
	return view
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	n, err := intParam(r, "n", defaultTraceN)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	writeJSONIndent(w, r, http.StatusOK, s.TraceViewSnapshot(q.Get("tenant"), q.Get("template"), n), wantPretty(r))
}

// EventsView is the JSON body of GET /v1/events: the exact running
// totals (which survive ring rotation) plus the most recent events that
// match the filters.
type EventsView struct {
	Totals EventTotalsView `json:"totals"`
	Events []obs.Event     `json:"events"`
}

// EventTotalsView reports the journal's conservation counters in dollars.
type EventTotalsView struct {
	Invests      int64   `json:"invests"`
	Evicts       int64   `json:"evicts"`
	Recovers     int64   `json:"recovers"`
	InvestedUSD  float64 `json:"invested_usd"`
	EvictedUSD   float64 `json:"evicted_usd"`
	RecoveredUSD float64 `json:"recovered_usd"`
}

// defaultEventsN bounds an unqualified GET /v1/events.
const defaultEventsN = 256

func totalsView(tot obs.Totals) EventTotalsView {
	return EventTotalsView{
		Invests:      tot.Invests,
		Evicts:       tot.Evicts,
		Recovers:     tot.Recovers,
		InvestedUSD:  tot.Invested.Dollars(),
		EvictedUSD:   tot.Evicted.Dollars(),
		RecoveredUSD: tot.Recovered.Dollars(),
	}
}

// EventsViewSnapshot builds the events view both fronts serve. n <= 0
// applies the default bound.
func (s *Server) EventsViewSnapshot(typ, tenant string, n int) EventsView {
	if n <= 0 {
		n = defaultEventsN
	}
	view := EventsView{Totals: totalsView(s.EventTotals()), Events: []obs.Event{}}
	if evs := s.EventsSnapshot(typ, tenant, n); evs != nil {
		view.Events = evs
	}
	return view
}

// EventsViewSince builds an incremental events view — every buffered
// event with Seq > since plus the running totals — and returns the new
// cursor (the highest Seq delivered, or since when nothing is new). This
// is the streaming form the binary protocol's events subscription uses.
func (s *Server) EventsViewSince(since int64) (EventsView, int64) {
	view := EventsView{Totals: totalsView(s.EventTotals()), Events: []obs.Event{}}
	if evs := s.EventsSince(since); evs != nil {
		view.Events = evs
	}
	cursor := since
	for i := range view.Events {
		if view.Events[i].Seq > cursor {
			cursor = view.Events[i].Seq
		}
	}
	return view, cursor
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	n, err := intParam(r, "n", defaultEventsN)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	typ := q.Get("type")
	switch typ {
	case "", obs.EventInvest, obs.EventEvict, obs.EventRecover:
	default:
		writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("type: want %q, %q or %q, got %q", obs.EventInvest, obs.EventEvict, obs.EventRecover, typ))
		return
	}
	writeJSONIndent(w, r, http.StatusOK, s.EventsViewSnapshot(typ, q.Get("tenant"), n), wantPretty(r))
}
