package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/budget"
	"repro/internal/money"
)

// QueryRequest is the JSON body of POST /v1/query and one element of
// POST /v1/batch. Selectivity is a pointer so an explicit
// `"selectivity": 0` is distinguishable from an absent field: absent
// draws from the template's range, zero clamps to the template's
// minimum like any other out-of-range value.
type QueryRequest struct {
	Tenant      string      `json:"tenant,omitempty"`
	Template    string      `json:"template"`
	Selectivity *float64    `json:"selectivity,omitempty"`
	Budget      *BudgetJSON `json:"budget,omitempty"`
}

// Request converts the wire form into the engine's Request.
func (qr *QueryRequest) Request() (Request, error) {
	bf, err := qr.Budget.Func()
	if err != nil {
		return Request{}, err
	}
	req := Request{
		Tenant:   qr.Tenant,
		Template: qr.Template,
		Budget:   bf,
	}
	if qr.Selectivity != nil {
		req.Selectivity = *qr.Selectivity
		req.HasSelectivity = true
	}
	return req, nil
}

// BudgetJSON is the wire form of a user budget function B_Q(t): a shape
// name plus the headline price and support (Fig. 1).
type BudgetJSON struct {
	// Shape is "step", "linear", "convex" or "concave". Default "step".
	Shape string `json:"shape,omitempty"`
	// PriceUSD is the headline willingness to pay.
	PriceUSD float64 `json:"price_usd"`
	// TmaxSec is the largest tolerated response time, seconds.
	TmaxSec float64 `json:"tmax_s"`
	// K is the curvature of convex/concave shapes; <=1 means 2.
	K float64 `json:"k,omitempty"`
}

// Func materialises the budget function. A nil receiver returns nil (use
// the server's default policy).
func (b *BudgetJSON) Func() (budget.Func, error) {
	if b == nil {
		return nil, nil
	}
	if b.PriceUSD <= 0 {
		return nil, fmt.Errorf("budget: price_usd must be positive")
	}
	if b.TmaxSec <= 0 {
		return nil, fmt.Errorf("budget: tmax_s must be positive")
	}
	price := money.FromDollars(b.PriceUSD)
	tmax := time.Duration(b.TmaxSec * float64(time.Second))
	switch b.Shape {
	case "", "step":
		return budget.NewStep(price, tmax), nil
	case "linear":
		return budget.NewLinear(price, tmax), nil
	case "convex":
		return budget.NewConvex(price, tmax, b.K), nil
	case "concave":
		return budget.NewConcave(price, tmax, b.K), nil
	default:
		return nil, fmt.Errorf("budget: unknown shape %q", b.Shape)
	}
}

// Health is the JSON body of GET /healthz.
type Health struct {
	Status   string  `json:"status"`
	Scheme   string  `json:"scheme"`
	Shards   int     `json:"shards"`
	ClockSec float64 `json:"clock_s"`
	Queries  int64   `json:"queries"`
	Draining bool    `json:"draining"`
}

// errorJSON is the wire form of a request failure.
type errorJSON struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/query      — submit one query (QueryRequest -> Response)
//	POST /v1/batch      — submit many ([]QueryRequest -> []BatchResponseItem)
//	GET  /v1/stats      — live aggregate + per-shard metrics (Stats); ?pretty=1 indents
//	GET  /v1/structures — resident structures across shards; ?pretty=1 indents
//	GET  /healthz       — liveness plus headline counters (Health)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/structures", s.handleStructures)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// writeJSON encodes v compactly — the hot /v1/query path pays no
// indentation — and reports encode failures instead of swallowing them:
// the status line is already on the wire by then, so the best we can do
// is log and let the truncated body fail the client's decode.
func writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONIndent(w, status, v, false)
}

func writeJSONIndent(w http.ResponseWriter, status int, v any, indent bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		log.Printf("server: encoding %T response: %v", v, err)
	}
}

// wantPretty reports whether the client asked for indented output
// (?pretty=1) on the read endpoints.
func wantPretty(r *http.Request) bool {
	p := r.URL.Query().Get("pretty")
	return p == "1" || p == "true"
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var qr QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if qr.Template == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("template is required"))
		return
	}
	req, err := qr.Request()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrServerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrUnknownTemplate):
		writeError(w, http.StatusBadRequest, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// BatchResponseItem is one positional element of the POST /v1/batch
// reply: exactly one of Response or Error is set.
type BatchResponseItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// maxHTTPBatch bounds one /v1/batch submission; larger batches gain
// nothing (they only delay the first reply) and unbounded ones are a
// memory hazard.
const maxHTTPBatch = 4096

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var qrs []QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qrs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(qrs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(qrs) > maxHTTPBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(qrs), maxHTTPBatch))
		return
	}
	reqs := make([]Request, len(qrs))
	for i := range qrs {
		// Malformed items are client errors for the whole request, same
		// as on /v1/query — they must not reach the shards and pollute
		// the Errors counter.
		if qrs[i].Template == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch[%d]: template is required", i))
			return
		}
		req, err := qrs[i].Request()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch[%d]: %w", i, err))
			return
		}
		reqs[i] = req
	}
	items, err := s.SubmitBatch(r.Context(), reqs)
	switch {
	case errors.Is(err, ErrServerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]BatchResponseItem, len(items))
	for i := range items {
		if items[i].Err != nil {
			out[i].Error = items[i].Err.Error()
		} else {
			resp := items[i].Resp
			out[i].Response = &resp
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSONIndent(w, http.StatusOK, s.Stats(), wantPretty(r))
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	structures := s.Structures()
	if structures == nil {
		structures = []StructureInfo{}
	}
	writeJSONIndent(w, http.StatusOK, structures, wantPretty(r))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var queries int64
	var clockSec float64
	for _, sh := range s.shards {
		q, now := sh.quickCounters()
		queries += q
		if sec := now.Seconds(); sec > clockSec {
			clockSec = sec
		}
	}
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status:   "ok",
		Scheme:   s.cfg.Scheme,
		Shards:   len(s.shards),
		ClockSec: clockSec,
		Queries:  queries,
		Draining: draining,
	})
}
