package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/budget"
	"repro/internal/money"
)

// QueryRequest is the JSON body of POST /v1/query.
type QueryRequest struct {
	Tenant      string      `json:"tenant,omitempty"`
	Template    string      `json:"template"`
	Selectivity float64     `json:"selectivity,omitempty"`
	Budget      *BudgetJSON `json:"budget,omitempty"`
}

// BudgetJSON is the wire form of a user budget function B_Q(t): a shape
// name plus the headline price and support (Fig. 1).
type BudgetJSON struct {
	// Shape is "step", "linear", "convex" or "concave". Default "step".
	Shape string `json:"shape,omitempty"`
	// PriceUSD is the headline willingness to pay.
	PriceUSD float64 `json:"price_usd"`
	// TmaxSec is the largest tolerated response time, seconds.
	TmaxSec float64 `json:"tmax_s"`
	// K is the curvature of convex/concave shapes; <=1 means 2.
	K float64 `json:"k,omitempty"`
}

// Func materialises the budget function. A nil receiver returns nil (use
// the server's default policy).
func (b *BudgetJSON) Func() (budget.Func, error) {
	if b == nil {
		return nil, nil
	}
	if b.PriceUSD <= 0 {
		return nil, fmt.Errorf("budget: price_usd must be positive")
	}
	if b.TmaxSec <= 0 {
		return nil, fmt.Errorf("budget: tmax_s must be positive")
	}
	price := money.FromDollars(b.PriceUSD)
	tmax := time.Duration(b.TmaxSec * float64(time.Second))
	switch b.Shape {
	case "", "step":
		return budget.NewStep(price, tmax), nil
	case "linear":
		return budget.NewLinear(price, tmax), nil
	case "convex":
		return budget.NewConvex(price, tmax, b.K), nil
	case "concave":
		return budget.NewConcave(price, tmax, b.K), nil
	default:
		return nil, fmt.Errorf("budget: unknown shape %q", b.Shape)
	}
}

// Health is the JSON body of GET /healthz.
type Health struct {
	Status   string  `json:"status"`
	Scheme   string  `json:"scheme"`
	Shards   int     `json:"shards"`
	ClockSec float64 `json:"clock_s"`
	Queries  int64   `json:"queries"`
	Draining bool    `json:"draining"`
}

// errorJSON is the wire form of a request failure.
type errorJSON struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/query      — submit one query (QueryRequest -> Response)
//	GET  /v1/stats      — live aggregate + per-shard metrics (Stats)
//	GET  /v1/structures — resident structures across shards
//	GET  /healthz       — liveness plus headline counters (Health)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/structures", s.handleStructures)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var qr QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if qr.Template == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("template is required"))
		return
	}
	bf, err := qr.Budget.Func()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Submit(r.Context(), Request{
		Tenant:      qr.Tenant,
		Template:    qr.Template,
		Selectivity: qr.Selectivity,
		Budget:      bf,
	})
	switch {
	case errors.Is(err, ErrServerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrUnknownTemplate):
		writeError(w, http.StatusBadRequest, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	structures := s.Structures()
	if structures == nil {
		structures = []StructureInfo{}
	}
	writeJSON(w, http.StatusOK, structures)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var queries int64
	var clockSec float64
	for _, sh := range s.shards {
		q, now := sh.quickCounters()
		queries += q
		if sec := now.Seconds(); sec > clockSec {
			clockSec = sec
		}
	}
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status:   "ok",
		Scheme:   s.cfg.Scheme,
		Shards:   len(s.shards),
		ClockSec: clockSec,
		Queries:  queries,
		Draining: draining,
	})
}
