package server

// Snapshot types: the JSON-serialisable view of the engine's live state
// that GET /v1/stats and GET /v1/structures report. All monetary values
// are dollars, all times seconds, so dashboards and the workloadgen
// checker read them without knowing the internal fixed-point encoding.

// ShardStats is the live view of one shard's economy.
type ShardStats struct {
	Shard  int    `json:"shard"`
	Scheme string `json:"scheme"`
	// Owned is false while this shard's key space is served by another
	// backend (frozen for migration, or never owned in a cluster
	// partition); a disowned shard rejects queries with "shard not owned
	// here" and its counters stop moving.
	Owned bool `json:"owned"`
	// ClockSec is the shard's economy time (seconds since server start).
	ClockSec float64 `json:"clock_s"`

	// Traffic counters. Errors counts requests the shard could not
	// decide (unknown template, sizing or scheme failures): an unhealthy
	// shard is visibly erroring, not idle.
	Queries       int64 `json:"queries"`
	Declined      int64 `json:"declined"`
	CacheAnswered int64 `json:"cache_answered"`
	Investments   int64 `json:"investments"`
	Failures      int64 `json:"failures"`
	Errors        int64 `json:"errors"`

	// Saturation gauges. MailboxDepth is the admission queue's length at
	// snapshot time; OldestWaitSec is the head message's queue wait
	// observed at the shard's most recent mailbox drain (real seconds,
	// not economy time) — together they show a shard falling behind
	// before response times do.
	MailboxDepth  int     `json:"mailbox_depth"`
	OldestWaitSec float64 `json:"oldest_wait_s"`

	// Response-time statistics over executed queries (seconds).
	ResponseMeanSec float64 `json:"response_mean_s"`
	ResponseP50Sec  float64 `json:"response_p50_s"`
	ResponseP95Sec  float64 `json:"response_p95_s"`
	ResponseP99Sec  float64 `json:"response_p99_s"`

	// True expenditure by resource, priced with the accounting schedule
	// (the Fig. 4 decomposition, live).
	ExecCostUSD      float64 `json:"exec_cost_usd"`
	BuildCostUSD     float64 `json:"build_cost_usd"`
	StorageCostUSD   float64 `json:"storage_cost_usd"`
	NodeCostUSD      float64 `json:"node_cost_usd"`
	OperatingCostUSD float64 `json:"operating_cost_usd"`

	// User-payment side.
	RevenueUSD float64 `json:"revenue_usd"`
	ProfitUSD  float64 `json:"profit_usd"`

	// Cache residency.
	ResidentBytes      int64 `json:"resident_bytes"`
	ResidentStructures int   `json:"resident_structures"`
	PendingBuilds      int   `json:"pending_builds"`
	Nodes              int   `json:"nodes"`

	// Economy account (zero for the bypass baseline, which has none).
	CreditUSD    float64 `json:"credit_usd"`
	InvestedUSD  float64 `json:"invested_usd"`
	RecoveredUSD float64 `json:"recovered_usd"`
	LedgerSize   int     `json:"ledger_size"`

	// Tenants are the shard's per-tenant ledgers, sorted by tenant name
	// (economy schemes only; nil for the bypass baseline).
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// TenantStats is the live view of one tenant's economy ledger. Under the
// altruistic provider the account fields (credit, invested,
// structures_charged, ledger_size) are zero — the account is communal —
// while spend, profit, regret and traffic still attribute per tenant.
type TenantStats struct {
	Tenant string `json:"tenant"`

	Queries       int64 `json:"queries"`
	Declined      int64 `json:"declined"`
	CacheAnswered int64 `json:"cache_answered"`
	// HitRate is CacheAnswered over executed (non-declined) queries.
	HitRate float64 `json:"hit_rate"`

	CreditUSD    float64 `json:"credit_usd"`
	SpendUSD     float64 `json:"spend_usd"`
	ProfitUSD    float64 `json:"profit_usd"`
	RegretUSD    float64 `json:"regret_usd"`
	InvestedUSD  float64 `json:"invested_usd"`
	RecoveredUSD float64 `json:"recovered_usd"`

	// StructuresCharged counts builds financed by this tenant's ledger.
	StructuresCharged int64 `json:"structures_charged"`
	LedgerSize        int   `json:"ledger_size"`
}

// Stats is the aggregate view across all shards plus the per-shard detail.
type Stats struct {
	Scheme   string  `json:"scheme"`
	Provider string  `json:"provider"`
	Shards   int     `json:"shards"`
	ClockSec float64 `json:"clock_s"`
	Draining bool    `json:"draining"`

	Queries       int64 `json:"queries"`
	Declined      int64 `json:"declined"`
	CacheAnswered int64 `json:"cache_answered"`
	Investments   int64 `json:"investments"`
	Failures      int64 `json:"failures"`
	Errors        int64 `json:"errors"`

	// Aggregate response percentiles, estimated over the union of the
	// per-shard reservoirs.
	ResponseMeanSec float64 `json:"response_mean_s"`
	ResponseP50Sec  float64 `json:"response_p50_s"`
	ResponseP95Sec  float64 `json:"response_p95_s"`
	ResponseP99Sec  float64 `json:"response_p99_s"`

	ExecCostUSD      float64 `json:"exec_cost_usd"`
	BuildCostUSD     float64 `json:"build_cost_usd"`
	StorageCostUSD   float64 `json:"storage_cost_usd"`
	NodeCostUSD      float64 `json:"node_cost_usd"`
	OperatingCostUSD float64 `json:"operating_cost_usd"`

	RevenueUSD float64 `json:"revenue_usd"`
	ProfitUSD  float64 `json:"profit_usd"`

	ResidentBytes int64   `json:"resident_bytes"`
	CreditUSD     float64 `json:"credit_usd"`

	// Tenants merges the per-shard tenant ledgers, sorted by tenant
	// name. Tenant-routed queries keep each tenant on one shard, but
	// untagged (template-routed) traffic lands a "" tenant on several
	// shards; the merge sums either way, so the section is deterministic
	// for a given engine state.
	Tenants []TenantStats `json:"tenants,omitempty"`

	PerShard []ShardStats `json:"per_shard"`
}

// StructureInfo is the live view of one resident structure.
type StructureInfo struct {
	Shard             int     `json:"shard"`
	ID                string  `json:"id"`
	Kind              string  `json:"kind"`
	Bytes             int64   `json:"bytes"`
	BuiltAtSec        float64 `json:"built_at_s"`
	LastUsedSec       float64 `json:"last_used_s"`
	Uses              int64   `json:"uses"`
	BuildPriceUSD     float64 `json:"build_price_usd"`
	AmortRemainingUSD float64 `json:"amort_remaining_usd"`
	UnpaidMaintUSD    float64 `json:"unpaid_maint_usd"`
	EarnedValueUSD    float64 `json:"earned_value_usd"`
}
