package server

// Snapshot types: the JSON-serialisable view of the engine's live state
// that GET /v1/stats and GET /v1/structures report. All monetary values
// are dollars, all times seconds, so dashboards and the workloadgen
// checker read them without knowing the internal fixed-point encoding.

// ShardStats is the live view of one shard's economy.
type ShardStats struct {
	Shard  int    `json:"shard"`
	Scheme string `json:"scheme"`
	// ClockSec is the shard's economy time (seconds since server start).
	ClockSec float64 `json:"clock_s"`

	// Traffic counters. Errors counts requests the shard could not
	// decide (unknown template, sizing or scheme failures): an unhealthy
	// shard is visibly erroring, not idle.
	Queries       int64 `json:"queries"`
	Declined      int64 `json:"declined"`
	CacheAnswered int64 `json:"cache_answered"`
	Investments   int64 `json:"investments"`
	Failures      int64 `json:"failures"`
	Errors        int64 `json:"errors"`

	// Response-time statistics over executed queries (seconds).
	ResponseMeanSec float64 `json:"response_mean_s"`
	ResponseP50Sec  float64 `json:"response_p50_s"`
	ResponseP95Sec  float64 `json:"response_p95_s"`
	ResponseP99Sec  float64 `json:"response_p99_s"`

	// True expenditure by resource, priced with the accounting schedule
	// (the Fig. 4 decomposition, live).
	ExecCostUSD      float64 `json:"exec_cost_usd"`
	BuildCostUSD     float64 `json:"build_cost_usd"`
	StorageCostUSD   float64 `json:"storage_cost_usd"`
	NodeCostUSD      float64 `json:"node_cost_usd"`
	OperatingCostUSD float64 `json:"operating_cost_usd"`

	// User-payment side.
	RevenueUSD float64 `json:"revenue_usd"`
	ProfitUSD  float64 `json:"profit_usd"`

	// Cache residency.
	ResidentBytes      int64 `json:"resident_bytes"`
	ResidentStructures int   `json:"resident_structures"`
	PendingBuilds      int   `json:"pending_builds"`
	Nodes              int   `json:"nodes"`

	// Economy account (zero for the bypass baseline, which has none).
	CreditUSD    float64 `json:"credit_usd"`
	InvestedUSD  float64 `json:"invested_usd"`
	RecoveredUSD float64 `json:"recovered_usd"`
	LedgerSize   int     `json:"ledger_size"`
}

// Stats is the aggregate view across all shards plus the per-shard detail.
type Stats struct {
	Scheme   string  `json:"scheme"`
	Shards   int     `json:"shards"`
	ClockSec float64 `json:"clock_s"`
	Draining bool    `json:"draining"`

	Queries       int64 `json:"queries"`
	Declined      int64 `json:"declined"`
	CacheAnswered int64 `json:"cache_answered"`
	Investments   int64 `json:"investments"`
	Failures      int64 `json:"failures"`
	Errors        int64 `json:"errors"`

	// Aggregate response percentiles, estimated over the union of the
	// per-shard reservoirs.
	ResponseMeanSec float64 `json:"response_mean_s"`
	ResponseP50Sec  float64 `json:"response_p50_s"`
	ResponseP95Sec  float64 `json:"response_p95_s"`
	ResponseP99Sec  float64 `json:"response_p99_s"`

	ExecCostUSD      float64 `json:"exec_cost_usd"`
	BuildCostUSD     float64 `json:"build_cost_usd"`
	StorageCostUSD   float64 `json:"storage_cost_usd"`
	NodeCostUSD      float64 `json:"node_cost_usd"`
	OperatingCostUSD float64 `json:"operating_cost_usd"`

	RevenueUSD float64 `json:"revenue_usd"`
	ProfitUSD  float64 `json:"profit_usd"`

	ResidentBytes int64   `json:"resident_bytes"`
	CreditUSD     float64 `json:"credit_usd"`

	PerShard []ShardStats `json:"per_shard"`
}

// StructureInfo is the live view of one resident structure.
type StructureInfo struct {
	Shard             int     `json:"shard"`
	ID                string  `json:"id"`
	Kind              string  `json:"kind"`
	Bytes             int64   `json:"bytes"`
	BuiltAtSec        float64 `json:"built_at_s"`
	LastUsedSec       float64 `json:"last_used_s"`
	Uses              int64   `json:"uses"`
	BuildPriceUSD     float64 `json:"build_price_usd"`
	AmortRemainingUSD float64 `json:"amort_remaining_usd"`
	UnpaidMaintUSD    float64 `json:"unpaid_maint_usd"`
	EarnedValueUSD    float64 `json:"earned_value_usd"`
}
