package server_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/server"
)

// testCatalog matches the scheme package's unit-test scale: small enough
// that backend prices are micro-dollars and investments trigger quickly.
func testCatalog() *catalog.Catalog { return catalog.TPCH(20) }

func testParams(cat *catalog.Catalog) scheme.Params {
	p := scheme.DefaultParams(cat)
	p.RegretFraction = 0.0001
	p.LoadFactor = 0.02
	return p
}

func newTestServer(t *testing.T, shards int, schemeName string, clock server.Clock) *server.Server {
	t.Helper()
	cat := testCatalog()
	srv, err := server.New(server.Config{
		Shards: shards,
		Scheme: schemeName,
		Params: testParams(cat),
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv
}

func testBudget() budget.Func {
	return budget.NewStep(money.FromDollars(0.002), time.Hour)
}

// clearGauges zeroes the real-time saturation gauges before determinism
// comparisons: mailbox depth and oldest-waiter age measure wall-clock
// scheduling, not economy state, so two byte-identical replays may
// legitimately differ there.
func clearGauges(st *server.Stats) {
	for i := range st.PerShard {
		st.PerShard[i].MailboxDepth = 0
		st.PerShard[i].OldestWaitSec = 0
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Error("server without catalog accepted")
	}
	cat := testCatalog()
	if _, err := server.New(server.Config{Params: scheme.DefaultParams(cat), Scheme: "no-such"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	srv, err := server.New(server.Config{Params: scheme.DefaultParams(cat), Clock: server.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if srv.ShardCount() != 4 {
		t.Errorf("default shards = %d, want 4", srv.ShardCount())
	}
}

func TestUnknownTemplate(t *testing.T) {
	srv := newTestServer(t, 2, "econ-cheap", server.NewVirtualClock())
	_, err := srv.Submit(context.Background(), server.Request{Template: "Q999"})
	if !errors.Is(err, server.ErrUnknownTemplate) {
		t.Errorf("err = %v, want ErrUnknownTemplate", err)
	}
}

func TestShardRoutingByTenant(t *testing.T) {
	srv := newTestServer(t, 8, "econ-cheap", server.NewVirtualClock())
	ctx := context.Background()
	templates := []string{"Q1", "Q3", "Q6", "Q10"}
	want := -1
	for i := 0; i < 20; i++ {
		resp, err := srv.Submit(ctx, server.Request{
			Tenant:   "alice",
			Template: templates[i%len(templates)],
			Budget:   testBudget(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == -1 {
			want = resp.Shard
		}
		if resp.Shard != want {
			t.Fatalf("tenant alice landed on shard %d and %d", want, resp.Shard)
		}
	}
	// Template routing (no tenant) is stable per template too.
	a := srv.ShardIndex(server.Request{Template: "Q6"})
	b := srv.ShardIndex(server.Request{Template: "Q6"})
	if a != b {
		t.Error("template routing unstable")
	}
}

// TestConcurrentSubmitsAcrossShards is the -race workhorse: many
// goroutines hammer all shards at once, and the shard totals must add up
// exactly with the paper's account invariant (conservative providers
// never drive CR negative) intact on every shard.
func TestConcurrentSubmitsAcrossShards(t *testing.T) {
	srv := newTestServer(t, 4, "econ-cheap", server.NewVirtualClock())
	ctx := context.Background()
	templates := []string{"Q1", "Q3", "Q5", "Q6", "Q10", "Q14", "Q18"}

	const goroutines = 16
	const perG = 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, err := srv.Submit(ctx, server.Request{
					Tenant:   fmt.Sprintf("tenant-%d", (g+i)%11),
					Template: templates[(g*perG+i)%len(templates)],
					Budget:   testBudget(),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Queries != goroutines*perG {
		t.Errorf("Queries = %d, want %d", st.Queries, goroutines*perG)
	}
	var perShard int64
	for _, sh := range st.PerShard {
		perShard += sh.Queries
		if sh.CreditUSD < 0 {
			t.Errorf("shard %d account went negative: %v", sh.Shard, sh.CreditUSD)
		}
		if sh.Declined > sh.Queries {
			t.Errorf("shard %d declined %d of %d", sh.Shard, sh.Declined, sh.Queries)
		}
	}
	if perShard != st.Queries {
		t.Errorf("shard sum %d != aggregate %d", perShard, st.Queries)
	}
	if st.RevenueUSD <= 0 {
		t.Error("no revenue collected")
	}
}

// script drives a fixed query sequence with interleaved clock advances:
// the deterministic reference workload of the accrual tests.
func script(t *testing.T, srv *server.Server, clock *server.VirtualClock, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		_, err := srv.Submit(ctx, server.Request{
			Tenant:      "acct",
			Template:    "Q6",
			Selectivity: 0.0096,
			Budget:      testBudget(),
		})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
		if i%10 == 9 {
			srv.Housekeep()
		}
	}
}

// TestVirtualClockDeterminism: two servers fed the identical script on
// identical virtual clocks must be byte-identical in every live metric.
func TestVirtualClockDeterminism(t *testing.T) {
	run := func() server.Stats {
		clock := server.NewVirtualClock()
		srv := newTestServer(t, 2, "econ-cheap", clock)
		script(t, srv, clock, 1200)
		return srv.Stats()
	}
	a, b := run(), run()
	clearGauges(&a)
	clearGauges(&b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical scripts diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Queries != 1200 {
		t.Errorf("Queries = %d, want 1200", a.Queries)
	}
}

// TestVirtualClockAccrual pins rent accrual to the exact integral: with
// the bypass scheme the cache deterministically loads columns, and after
// an idle advance of Δ the storage bill must grow by exactly
// DiskPerGBMonth · residentGiB · Δ/month.
func TestVirtualClockAccrual(t *testing.T) {
	clock := server.NewVirtualClock()
	srv := newTestServer(t, 1, "bypass", clock)
	ctx := context.Background()

	// Warm the yield counters until at least one column build starts,
	// then give the build time to complete.
	for i := 0; i < 4000; i++ {
		if _, err := srv.Submit(ctx, server.Request{
			Template:    "Q6",
			Selectivity: 0.0096,
		}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
		if st := srv.Stats(); st.PerShard[0].PendingBuilds > 0 || st.PerShard[0].ResidentBytes > 0 {
			break
		}
	}
	clock.Advance(24 * time.Hour)
	srv.Housekeep()
	st := srv.Stats()
	resident := st.ResidentBytes
	if resident == 0 {
		t.Fatal("bypass loaded nothing; cannot test accrual")
	}

	// Idle advance: only storage rent may change, by the exact integral.
	before := srv.Stats()
	const idle = 12 * time.Hour
	clock.Advance(idle)
	srv.Housekeep()
	after := srv.Stats()

	gbSeconds := float64(resident) / (1 << 30) * idle.Seconds()
	wantDelta := pricing.EC22008().DiskPerGBMonth.MulFloat(gbSeconds / (30 * 24 * 3600)).Dollars()
	gotDelta := after.StorageCostUSD - before.StorageCostUSD
	if math.Abs(gotDelta-wantDelta) > wantDelta*1e-6+1e-9 {
		t.Errorf("storage accrual over %v = $%g, want $%g", idle, gotDelta, wantDelta)
	}
	if after.ExecCostUSD != before.ExecCostUSD {
		t.Error("idle time changed exec cost")
	}
	if after.Queries != before.Queries {
		t.Error("idle time changed query count")
	}
}

// TestGracefulDrain: Shutdown racing a flood of Submits must answer every
// accepted query and reject the rest with ErrServerClosed — nothing
// dropped, nothing double-counted.
func TestGracefulDrain(t *testing.T) {
	cat := testCatalog()
	srv, err := server.New(server.Config{
		Shards: 4,
		Scheme: "econ-cheap",
		Params: testParams(cat),
		Clock:  server.NewVirtualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const goroutines = 12
	const perG = 80
	var accepted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				_, err := srv.Submit(ctx, server.Request{
					Tenant:   fmt.Sprintf("t%d", g),
					Template: "Q1",
					Budget:   testBudget(),
				})
				mu.Lock()
				switch {
				case err == nil:
					accepted++
				case errors.Is(err, server.ErrServerClosed):
					rejected++
				default:
					mu.Unlock()
					t.Errorf("unexpected error: %v", err)
					return
				}
				mu.Unlock()
			}
		}(g)
	}
	close(start)
	// Let some queries through, then drain mid-flood.
	time.Sleep(5 * time.Millisecond)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if accepted+rejected != goroutines*perG {
		t.Errorf("accepted %d + rejected %d != %d submitted", accepted, rejected, goroutines*perG)
	}
	st := srv.Stats()
	if st.Queries != accepted {
		t.Errorf("server handled %d queries but %d submissions were accepted", st.Queries, accepted)
	}
	if !st.Draining {
		t.Error("stats must report draining after shutdown")
	}

	// The server stays closed and Shutdown stays idempotent.
	if _, err := srv.Submit(ctx, server.Request{Template: "Q1"}); !errors.Is(err, server.ErrServerClosed) {
		t.Errorf("post-shutdown submit: err = %v, want ErrServerClosed", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestDrainSettlesTailRent: rent must be charged through the last promised
// completion, like sim.Run's end-of-run accounting, not silently stop at
// the last arrival. Runs at paper scale so the tail window (resident GiB ×
// in-flight seconds) is large enough to register in fixed-point money.
func TestDrainSettlesTailRent(t *testing.T) {
	clock := server.NewVirtualClock()
	cat := catalog.Paper()
	srv, err := server.New(server.Config{
		Shards: 1,
		Scheme: "bypass",
		Params: testParams(cat),
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8000; i++ {
		if _, err := srv.Submit(ctx, server.Request{Template: "Q6", Selectivity: 0.0096}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
		if i%100 == 99 {
			if st := srv.Stats(); st.PerShard[0].PendingBuilds > 0 || st.PerShard[0].ResidentBytes > 0 {
				break
			}
		}
	}
	clock.Advance(7 * 24 * time.Hour)
	srv.Housekeep()
	before := srv.Stats()
	if before.ResidentBytes == 0 {
		t.Fatal("bypass loaded nothing; recalibrate the warm-up")
	}
	// One more query whose promised response extends past "now", then an
	// immediate drain: the tail window must still be billed.
	resp, err := srv.Submit(ctx, server.Request{Template: "Q6", Selectivity: 0.0096})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if resp.ResponseTimeSec > 0 && after.StorageCostUSD <= before.StorageCostUSD {
		t.Errorf("drain did not settle tail rent: %g -> %g", before.StorageCostUSD, after.StorageCostUSD)
	}
}

// TestShutdownTimeoutThenRetry: a cancelled ctx abandons only the wait —
// the drain still completes in the background, and a retry with a live
// ctx observes it.
func TestShutdownTimeoutThenRetry(t *testing.T) {
	srv := newTestServer(t, 2, "econ-cheap", server.NewVirtualClock())
	if _, err := srv.Submit(context.Background(), server.Request{Template: "Q1", Budget: testBudget()}); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("shutdown with dead ctx: err = %v, want Canceled", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("retry shutdown: %v", err)
	}
	if st := srv.Stats(); st.Queries != 1 || !st.Draining {
		t.Errorf("post-drain stats = %+v", st)
	}
}

func TestWallClockSpeedup(t *testing.T) {
	c := server.NewWallClock(1000)
	time.Sleep(2 * time.Millisecond)
	if got := c.Now(); got < time.Second {
		t.Errorf("speedup 1000 over 2ms = %v, want >= 1s", got)
	}
	v := server.NewVirtualClock()
	v.Advance(-time.Hour)
	if v.Now() != 0 {
		t.Error("virtual clock moved backwards")
	}
	v.Advance(time.Minute)
	if v.Now() != time.Minute {
		t.Errorf("virtual now = %v, want 1m", v.Now())
	}
}

func TestSelectivityClamped(t *testing.T) {
	srv := newTestServer(t, 1, "econ-cheap", server.NewVirtualClock())
	resp, err := srv.Submit(context.Background(), server.Request{
		Template:    "Q6",
		Selectivity: 99, // far beyond SelMax
		Budget:      testBudget(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Selectivity > 1 {
		t.Errorf("selectivity not clamped: %g", resp.Selectivity)
	}
}
