package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/scheme"
)

// Live shard migration: a router moves one shard between backends by
// freezing it on the source (FreezeShard — every further query answers
// ErrShardNotOwned so the router re-routes), extracting its complete
// economy as a persist.ShardPacket (ExtractShard — capture + reset, the
// source keeps only an empty disowned slot), and installing the packet
// into the same shard index on the destination (InstallShard — validate
// the configuration fingerprint, adopt the state, take ownership).
// Because a disowned shard decides nothing and accrues nothing, and the
// packet carries the rent watermarks and RNG, the migrated shard's
// remaining stream is byte-identical to one that never moved — the same
// parity guarantee the restart snapshot gives, proven by
// TestMigrationParity.
//
// Ownership is runtime state, not durable state: a restarted backend
// owns all its shards until a router (or operator) freezes some away
// again.

// ErrShardNotOwned is the answer to any query routed to a shard this
// server has frozen or migrated away. Routers match it to re-route the
// query to the shard's current owner.
var ErrShardNotOwned = errors.New("server: shard not owned here")

// ErrShardInUse is returned by InstallShard when the target shard slot
// already holds state: installing would silently discard a live economy.
var ErrShardInUse = errors.New("server: shard slot already holds state")

// validShard bounds-checks a shard index.
func (s *Server) validShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("server: shard %d outside [0, %d)", i, len(s.shards))
	}
	return nil
}

// FreezeShard disowns shard i: any decision in progress completes
// first, then every query routed to it answers ErrShardNotOwned and the
// shard's economy stops moving entirely (no decisions, no rent accrual,
// no housekeeping) until a packet is installed back. Idempotent; safe
// on a live server under full load.
func (s *Server) FreezeShard(i int) error {
	if err := s.validShard(i); err != nil {
		return err
	}
	sh := s.shards[i]
	sh.mu.Lock()
	sh.owned = false
	sh.mu.Unlock()
	return nil
}

// ExtractShard freezes shard i and returns its complete durable state
// as a migration packet, leaving behind an empty disowned slot (the
// scheme is rebuilt fresh, so the extracted economy exists in exactly
// one place). The packet carries the server's configuration fingerprint
// and query-ID counter for the installing side to validate and adopt.
func (s *Server) ExtractShard(i int) (*persist.ShardPacket, error) {
	return s.ExtractShardChecked(i, nil)
}

// ExtractShardChecked is ExtractShard with a commit gate: the captured
// packet is handed to check before the destructive reset, and a check
// error aborts the extract with the shard's state and ownership exactly
// as they were. The wire layer uses the gate to refuse an extract whose
// encoding cannot travel in one frame — without it, the reply would be
// dropped after the state was already destroyed.
func (s *Server) ExtractShardChecked(i int, check func(*persist.ShardPacket) error) (*persist.ShardPacket, error) {
	if err := s.validShard(i); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.mu.Unlock()
	s.migrating.Add(1)
	defer s.migrating.Add(-1)

	// Freeze first: a disowned shard decides nothing and accrues nothing,
	// so its state is stable from here until the commit (or the abort).
	sh := s.shards[i]
	sh.mu.Lock()
	wasOwned := sh.owned
	sh.owned = false
	sh.mu.Unlock()

	// The replacement scheme is built outside the shard lock; swapping it
	// in is what makes the extract a move rather than a copy.
	fresh, err := scheme.New(s.cfg.Scheme, s.cfg.Params)
	if err != nil {
		sh.mu.Lock()
		sh.owned = wasOwned
		sh.mu.Unlock()
		return nil, fmt.Errorf("server: rebuilding shard %d scheme: %w", i, err)
	}

	sh.mu.Lock()
	pkt := &persist.ShardPacket{
		Scheme:          s.cfg.Scheme,
		Provider:        s.cfg.Params.Provider.String(),
		CatalogBytes:    s.catalog.TotalBytes(),
		NextID:          s.nextID.Load(),
		Clock:           s.clock.Now(),
		CreatedUnixNano: time.Now().UnixNano(),
		State:           sh.captureStateLocked(),
	}
	if check != nil {
		if err := check(pkt); err != nil {
			sh.owned = wasOwned
			sh.mu.Unlock()
			return nil, err
		}
	}
	sh.resetLocked(fresh)
	sh.mu.Unlock()
	s.wireJournal(i, fresh)
	return pkt, nil
}

// InstallShard adopts a migration packet into shard i and takes
// ownership. The packet must match this server's configuration
// fingerprint and shard index, and the target slot must be unused —
// fresh, or emptied by a prior ExtractShard — so an install can never
// silently discard live state. The query-ID counter ratchets up to the
// packet's, keeping IDs monotone across the move.
func (s *Server) InstallShard(i int, pkt *persist.ShardPacket) error {
	if err := s.validShard(i); err != nil {
		return err
	}
	if pkt.Scheme != s.cfg.Scheme {
		return fmt.Errorf("server: packet scheme %q != configured %q", pkt.Scheme, s.cfg.Scheme)
	}
	if want := s.cfg.Params.Provider.String(); pkt.Provider != want {
		return fmt.Errorf("server: packet provider %q != configured %q", pkt.Provider, want)
	}
	if got := s.catalog.TotalBytes(); pkt.CatalogBytes != got {
		return fmt.Errorf("server: packet catalog (%d bytes) != configured catalog (%d bytes)", pkt.CatalogBytes, got)
	}
	if pkt.State.Index != i {
		return fmt.Errorf("server: packet carries shard %d, installing into %d", pkt.State.Index, i)
	}
	if pkt.NextID < 0 {
		return fmt.Errorf("server: packet query counter %d is negative", pkt.NextID)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.mu.Unlock()
	s.migrating.Add(1)
	defer s.migrating.Add(-1)

	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.unusedLocked() {
		return fmt.Errorf("%w: shard %d", ErrShardInUse, i)
	}
	if err := sh.restoreStateLocked(&pkt.State); err != nil {
		return fmt.Errorf("server: shard %d: %w", i, err)
	}
	for {
		cur := s.nextID.Load()
		if pkt.NextID <= cur || s.nextID.CompareAndSwap(cur, pkt.NextID) {
			break
		}
	}
	sh.owned = true
	return nil
}

// ShardOwned reports whether shard i is currently served here.
func (s *Server) ShardOwned(i int) bool {
	if err := s.validShard(i); err != nil {
		return false
	}
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.owned
}

// OwnedShards returns the per-shard ownership flags — the map a router
// reconciles its routing table against.
func (s *Server) OwnedShards() []bool {
	out := make([]bool, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.owned
		sh.mu.Unlock()
	}
	return out
}

// ReadyState reports whether the server should receive new traffic and
// why not: "draining" once shutdown began, "migrating" while a shard
// transfer is in progress, else "ok". GET /readyz exposes it; the
// router's health loop keys off it.
func (s *Server) ReadyState() (state string, ready bool) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return "draining", false
	}
	if s.migrating.Load() > 0 {
		return "migrating", false
	}
	return "ok", true
}

// unusedLocked reports whether the shard has never decided anything and
// holds no residency — the precondition for installing a packet over
// it. Callers hold s.mu.
func (s *shard) unusedLocked() bool {
	ca := s.sch.Cache()
	return s.queries == 0 && s.errors == 0 && ca.Len() == 0 && ca.PendingCount() == 0
}

// resetLocked swaps in a fresh scheme instance and zeroes every counter
// and watermark, returning the shard to its just-built state (still
// disowned — installation is what grants ownership back). Callers hold
// s.mu and re-wire the journal sink via Server.wireJournal afterwards.
func (s *shard) resetLocked(fresh scheme.Scheme) {
	s.sch = fresh
	s.eco = economyOf(fresh)
	s.rng = uint64(shardSeed(s.srv.cfg.Seed, s.id))
	s.lastNow = 0
	s.lastAccrual = 0
	s.endOfRun = 0
	s.storageGBSeconds = 0
	s.nodeSeconds = 0
	s.queries = 0
	s.declined = 0
	s.cacheAnswered = 0
	s.investments = 0
	s.failures = 0
	s.errors = 0
	s.revenue = 0
	s.profit = 0
	s.execUsage = cost.Usage{}
	s.buildUsage = cost.Usage{}
	s.response = metrics.NewDurationStats(s.srv.cfg.ReservoirCap)
}

// wireJournal re-attaches shard i's economy event sink after a scheme
// swap, matching what New does at construction.
func (s *Server) wireJournal(i int, sch scheme.Scheme) {
	if es, ok := sch.(interface{ SetEvents(func(obs.Event)) }); ok {
		es.SetEvents(s.journals[i].Emit)
	}
}
