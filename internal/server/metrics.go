package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"

	"repro/internal/obs"
)

// Prometheus text exposition (GET /metrics). Hand-rolled on purpose: the
// format is a few lines of fmt.Fprintf and the repository takes no
// third-party dependencies. Economy counters and gauges come from the
// same Stats snapshot /v1/stats serves (so the two endpoints can never
// disagree), stage-latency histograms from the tracer, event totals from
// the journals, and runtime/GC gauges from runtime.ReadMemStats.

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// counter emits one counter family with per-shard labels.
func writeShardCounter(w io.Writer, name, help string, shards []ShardStats, val func(*ShardStats) int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for i := range shards {
		fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, shards[i].Shard, val(&shards[i]))
	}
}

func writeShardGauge(w io.Writer, name, help string, shards []ShardStats, val func(*ShardStats) float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for i := range shards {
		fmt.Fprintf(w, "%s{shard=\"%d\"} %g\n", name, shards[i].Shard, val(&shards[i]))
	}
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// WriteMetrics writes the full Prometheus text exposition to w.
func (s *Server) WriteMetrics(w io.Writer) {
	st := s.Stats()

	writeGauge(w, "cloudcache_clock_seconds", "Economy clock, seconds since server start.", st.ClockSec)
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	writeGauge(w, "cloudcache_draining", "1 while the server is draining, else 0.", draining)
	writeGauge(w, "cloudcache_shards", "Number of shards.", float64(st.Shards))

	writeShardCounter(w, "cloudcache_queries_total", "Queries decided.", st.PerShard,
		func(sh *ShardStats) int64 { return sh.Queries })
	writeShardCounter(w, "cloudcache_declined_total", "Queries declined (Case C).", st.PerShard,
		func(sh *ShardStats) int64 { return sh.Declined })
	writeShardCounter(w, "cloudcache_cache_answered_total", "Queries answered from cached structures.", st.PerShard,
		func(sh *ShardStats) int64 { return sh.CacheAnswered })
	writeShardCounter(w, "cloudcache_investments_total", "Structures built by the economy.", st.PerShard,
		func(sh *ShardStats) int64 { return sh.Investments })
	writeShardCounter(w, "cloudcache_failures_total", "Structures evicted by the maintenance-failure sweep.", st.PerShard,
		func(sh *ShardStats) int64 { return sh.Failures })
	writeShardCounter(w, "cloudcache_errors_total", "Requests the shard could not decide.", st.PerShard,
		func(sh *ShardStats) int64 { return sh.Errors })

	writeShardGauge(w, "cloudcache_mailbox_depth", "Admission-queue length at scrape time.", st.PerShard,
		func(sh *ShardStats) float64 { return float64(sh.MailboxDepth) })
	writeShardGauge(w, "cloudcache_mailbox_oldest_wait_seconds", "Head message's queue wait at the most recent drain (real seconds).", st.PerShard,
		func(sh *ShardStats) float64 { return sh.OldestWaitSec })
	writeShardGauge(w, "cloudcache_resident_bytes", "Bytes of cached structures resident on the shard.", st.PerShard,
		func(sh *ShardStats) float64 { return float64(sh.ResidentBytes) })
	writeShardGauge(w, "cloudcache_resident_structures", "Cached structures resident on the shard.", st.PerShard,
		func(sh *ShardStats) float64 { return float64(sh.ResidentStructures) })
	writeShardGauge(w, "cloudcache_nodes", "Nodes the shard's cache currently rents.", st.PerShard,
		func(sh *ShardStats) float64 { return float64(sh.Nodes) })

	writeGauge(w, "cloudcache_revenue_usd", "Revenue collected from users, dollars.", st.RevenueUSD)
	writeGauge(w, "cloudcache_profit_usd", "Profit (revenue minus true expenditure), dollars.", st.ProfitUSD)
	writeGauge(w, "cloudcache_operating_cost_usd", "True expenditure, dollars.", st.OperatingCostUSD)
	writeGauge(w, "cloudcache_credit_usd", "Economy credit outstanding, dollars.", st.CreditUSD)

	// Economy event journal: exact running totals, immune to ring rotation.
	tot := s.EventTotals()
	fmt.Fprintf(w, "# HELP cloudcache_economy_events_total Economy journal events by type.\n# TYPE cloudcache_economy_events_total counter\n")
	fmt.Fprintf(w, "cloudcache_economy_events_total{type=%q} %d\n", obs.EventInvest, tot.Invests)
	fmt.Fprintf(w, "cloudcache_economy_events_total{type=%q} %d\n", obs.EventEvict, tot.Evicts)
	fmt.Fprintf(w, "cloudcache_economy_events_total{type=%q} %d\n", obs.EventRecover, tot.Recovers)
	fmt.Fprintf(w, "# HELP cloudcache_economy_event_dollars_total Dollars moved by journaled events, by type.\n# TYPE cloudcache_economy_event_dollars_total counter\n")
	fmt.Fprintf(w, "cloudcache_economy_event_dollars_total{type=%q} %g\n", obs.EventInvest, tot.Invested.Dollars())
	fmt.Fprintf(w, "cloudcache_economy_event_dollars_total{type=%q} %g\n", obs.EventEvict, tot.Evicted.Dollars())
	fmt.Fprintf(w, "cloudcache_economy_event_dollars_total{type=%q} %g\n", obs.EventRecover, tot.Recovered.Dollars())

	// Decision tracing: sampling period and per-stage latency histograms.
	sample := int64(-1)
	if tr := s.Tracer(); tr != nil {
		sample = tr.SampleEvery()
	}
	writeGauge(w, "cloudcache_trace_sample_every",
		"Trace sampling period: 0 off, 1 every query, N one in N, -1 tracer disabled.", float64(sample))
	if tr := s.Tracer(); tr != nil {
		for _, sh := range tr.StageHistograms() {
			sh.Hist.WritePrometheus(w, "cloudcache_stage_seconds", fmt.Sprintf("stage=%q", sh.Stage))
		}
	}

	// Runtime and GC gauges, so the admin mux needs no separate collector.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeGauge(w, "go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	writeGauge(w, "go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	writeGauge(w, "go_mem_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(ms.HeapSys))
	writeGauge(w, "go_mem_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC))
	writeGauge(w, "go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	writeGauge(w, "go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(ms.PauseTotalNs)/1e9)
}
