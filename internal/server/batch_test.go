package server_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestSubmitBatchPositional: results align with the request slice even
// when the batch mixes shards and contains per-request failures.
func TestSubmitBatchPositional(t *testing.T) {
	srv := newTestServer(t, 4, "econ-cheap", server.NewVirtualClock())
	reqs := []server.Request{
		{Tenant: "a", Template: "Q1", Budget: testBudget()},
		{Tenant: "b", Template: "Q999"}, // unknown: per-item error
		{Tenant: "c", Template: "Q6", Budget: testBudget()},
		{Tenant: "a", Template: "Q3", Budget: testBudget()},
	}
	items, err := srv.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(items), len(reqs))
	}
	for i, want := range []string{"Q1", "", "Q6", "Q3"} {
		if want == "" {
			if !errors.Is(items[i].Err, server.ErrUnknownTemplate) {
				t.Errorf("item %d: err = %v, want ErrUnknownTemplate", i, items[i].Err)
			}
			continue
		}
		if items[i].Err != nil {
			t.Errorf("item %d: unexpected error %v", i, items[i].Err)
			continue
		}
		if items[i].Resp.Template != want {
			t.Errorf("item %d: template %q, want %q", i, items[i].Resp.Template, want)
		}
	}
	// Same tenant, same shard.
	if items[0].Resp.Shard != items[3].Resp.Shard {
		t.Error("tenant a split across shards within one batch")
	}
	st := srv.Stats()
	if st.Queries != 3 {
		t.Errorf("Queries = %d, want 3", st.Queries)
	}
	if st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
}

// TestSubmitBatchMatchesSequential: on a single shard, one batch must
// reproduce byte-for-byte the answers of the same requests submitted
// back-to-back at the same instant — per-query determinism across the
// two admission paths.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	reqs := func() []server.Request {
		var out []server.Request
		templates := []string{"Q1", "Q6", "Q3", "Q6", "Q10", "Q1"}
		for i, tpl := range templates {
			out = append(out, server.Request{
				Tenant:      "solo",
				Template:    tpl,
				Selectivity: 0.001 * float64(i+1),
				Budget:      testBudget(),
			})
		}
		return out
	}

	ctx := context.Background()
	seqSrv := newTestServer(t, 1, "econ-cheap", server.NewVirtualClock())
	var seq []server.Response
	for _, req := range reqs() {
		resp, err := seqSrv.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, resp)
	}

	batchSrv := newTestServer(t, 1, "econ-cheap", server.NewVirtualClock())
	items, err := batchSrv.SubmitBatch(ctx, reqs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i].Err != nil {
			t.Fatalf("batch item %d: %v", i, items[i].Err)
		}
		if items[i].Resp != seq[i] {
			t.Errorf("item %d diverged:\nbatch      %+v\nsequential %+v", i, items[i].Resp, seq[i])
		}
	}
	a, b := seqSrv.Stats(), batchSrv.Stats()
	clearGauges(&a)
	clearGauges(&b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("aggregate stats diverged:\nsequential %+v\nbatch      %+v", a, b)
	}
}

// TestSubmitBatchConcurrent is the -race workhorse for the batched path:
// many goroutines submit batches across all shards concurrently and the
// totals must add up exactly, like the single-submit equivalent.
func TestSubmitBatchConcurrent(t *testing.T) {
	srv := newTestServer(t, 4, "econ-cheap", server.NewVirtualClock())
	ctx := context.Background()
	templates := []string{"Q1", "Q3", "Q5", "Q6", "Q10", "Q14", "Q18"}

	const goroutines = 12
	const batches = 25
	const batchSize = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				reqs := make([]server.Request, batchSize)
				for i := range reqs {
					reqs[i] = server.Request{
						Tenant:   fmt.Sprintf("tenant-%d", (g+b+i)%13),
						Template: templates[(g*batches+b*batchSize+i)%len(templates)],
						Budget:   testBudget(),
					}
				}
				items, err := srv.SubmitBatch(ctx, reqs)
				if err != nil {
					errs <- err
					return
				}
				for i := range items {
					if items[i].Err != nil {
						errs <- items[i].Err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	want := int64(goroutines * batches * batchSize)
	if st.Queries != want {
		t.Errorf("Queries = %d, want %d", st.Queries, want)
	}
	var perShard int64
	for _, sh := range st.PerShard {
		perShard += sh.Queries
		if sh.CreditUSD < 0 {
			t.Errorf("shard %d account went negative: %v", sh.Shard, sh.CreditUSD)
		}
	}
	if perShard != st.Queries {
		t.Errorf("shard sum %d != aggregate %d", perShard, st.Queries)
	}
}

// TestSubmitBatchAfterShutdown: a drained server rejects whole batches,
// and a batch accepted before the drain is fully answered.
func TestSubmitBatchAfterShutdown(t *testing.T) {
	srv := newTestServer(t, 2, "econ-cheap", server.NewVirtualClock())
	ctx := context.Background()
	if _, err := srv.SubmitBatch(ctx, []server.Request{{Template: "Q1", Budget: testBudget()}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SubmitBatch(ctx, []server.Request{{Template: "Q1"}}); !errors.Is(err, server.ErrServerClosed) {
		t.Errorf("post-shutdown batch: err = %v, want ErrServerClosed", err)
	}
	if st := srv.Stats(); st.Queries != 1 {
		t.Errorf("Queries = %d, want 1", st.Queries)
	}
}

// TestSubmitBatchEmpty: a zero-length batch is a no-op, not a hang.
func TestSubmitBatchEmpty(t *testing.T) {
	srv := newTestServer(t, 2, "econ-cheap", server.NewVirtualClock())
	items, err := srv.SubmitBatch(context.Background(), nil)
	if err != nil || items != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", items, err)
	}
}

// TestExplicitZeroSelectivity: an explicitly requested selectivity of 0
// must behave like any other out-of-range value (clamp to the template's
// minimum), not silently turn into a random draw.
func TestExplicitZeroSelectivity(t *testing.T) {
	var q6 *workload.Template
	for _, tpl := range workload.PaperTemplates() {
		if tpl.Name == "Q6" {
			q6 = tpl
		}
	}
	if q6 == nil {
		t.Fatal("no Q6 template")
	}

	srv := newTestServer(t, 1, "econ-cheap", server.NewVirtualClock())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := srv.Submit(ctx, server.Request{
			Template:       "Q6",
			Selectivity:    0,
			HasSelectivity: true,
			Budget:         testBudget(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Selectivity != q6.SelMin {
			t.Fatalf("explicit zero selectivity drew %g, want clamp to SelMin %g", resp.Selectivity, q6.SelMin)
		}
	}
	// The unset zero value still draws from the template's range.
	resp, err := srv.Submit(ctx, server.Request{Template: "Q6", Budget: testBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Selectivity < q6.SelMin || resp.Selectivity > q6.SelMax {
		t.Errorf("drawn selectivity %g outside [%g, %g]", resp.Selectivity, q6.SelMin, q6.SelMax)
	}
}

// TestErrorCounterVisible: request failures must be visible in the stats
// so an unhealthy shard does not masquerade as an idle one.
func TestErrorCounterVisible(t *testing.T) {
	srv := newTestServer(t, 4, "econ-cheap", server.NewVirtualClock())
	ctx := context.Background()
	const bad = 5
	for i := 0; i < bad; i++ {
		if _, err := srv.Submit(ctx, server.Request{Tenant: "t", Template: "Q999"}); err == nil {
			t.Fatal("unknown template accepted")
		}
	}
	if _, err := srv.Submit(ctx, server.Request{Tenant: "t", Template: "Q1", Budget: testBudget()}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Errors != bad {
		t.Errorf("aggregate Errors = %d, want %d", st.Errors, bad)
	}
	if st.Queries != 1 {
		t.Errorf("Queries = %d, want 1 (errors must not count as served)", st.Queries)
	}
	var found bool
	for _, sh := range st.PerShard {
		if sh.Errors == bad {
			found = true
		}
	}
	if !found {
		t.Errorf("no shard reports the %d errors: %+v", bad, st.PerShard)
	}
}

// TestServerMatchesSimAccounting replays the identical query stream
// through sim.Run and through a one-shard server on a virtual clock and
// demands the same books: queries, revenue, exec/build cost and — the
// tail-rent regression — storage and node rent through the same
// end-of-run window.
func TestServerMatchesSimAccounting(t *testing.T) {
	cat := catalog.TPCH(20)
	params := testParams(cat)
	const n = 1500
	genCfg := func(seed int64) workload.Config {
		return workload.Config{
			Catalog: cat,
			Seed:    seed,
			Arrival: workload.NewFixedArrival(time.Second),
			Budgets: &workload.FixedPolicy{Shape: workload.ShapeStep, Price: money.FromDollars(0.002), TMax: time.Hour},
		}
	}

	// Offline reference.
	sch, err := scheme.New("econ-cheap", params)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(genCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(sim.Config{Scheme: sch, Generator: gen, Queries: n})
	if err != nil {
		t.Fatal(err)
	}

	// Online replay of the same stream.
	clock := server.NewVirtualClock()
	srv, err := server.New(server.Config{
		Shards: 1,
		Scheme: "econ-cheap",
		Params: params,
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := workload.NewGenerator(genCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var last time.Duration
	for i := 0; i < n; i++ {
		q := gen2.Next()
		clock.Advance(q.Arrival - last)
		last = q.Arrival
		if _, err := srv.Submit(ctx, server.Request{
			Tenant:         "replay",
			Template:       q.Template.Name,
			Selectivity:    q.Selectivity,
			HasSelectivity: true,
			Budget:         q.Budget,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()

	if st.Queries != int64(n) || st.Declined != rep.Declined {
		t.Errorf("queries/declined = %d/%d, sim %d/%d", st.Queries, st.Declined, n, rep.Declined)
	}
	if st.CacheAnswered != rep.CacheAnswered || st.Investments != rep.Investments {
		t.Errorf("cache/investments = %d/%d, sim %d/%d", st.CacheAnswered, st.Investments, rep.CacheAnswered, rep.Investments)
	}
	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > math.Abs(want)*1e-9+1e-12 {
			t.Errorf("%s = %v, sim %v", name, got, want)
		}
	}
	approx("revenue", st.RevenueUSD, rep.Revenue.Dollars())
	approx("profit", st.ProfitUSD, rep.Profit.Dollars())
	approx("exec cost", st.ExecCostUSD, rep.ExecCost.Dollars())
	approx("build cost", st.BuildCostUSD, rep.BuildCost.Dollars())
	approx("storage cost", st.StorageCostUSD, rep.StorageCost.Dollars())
	approx("node cost", st.NodeCostUSD, rep.NodeCost.Dollars())
}
