// Package server is the online serving layer over the paper's cache
// economy: where package sim replays a synthetic stream through one
// single-threaded scheme, Server admits concurrent live queries against N
// independent economy shards.
//
// Each shard owns a complete scheme instance — cache, account, regret
// ledger — and serializes its decisions through a mailbox goroutine, so
// the paper's single-owner economy invariants hold per shard with no
// locking on the decision path. Queries route to shards by tenant (or
// template when no tenant is given), keeping each tenant's regret and
// amortization history together. A shared Clock (wall, accelerated, or
// virtual) drives rent and uptime accrual: a ticker integrates storage
// and node rent through idle periods and completes due builds, mirroring
// the discrete-event simulator's accounting on live time.
//
// Shutdown drains gracefully: no accepted query goes unanswered, and tail
// rent is charged through the last promised completion exactly as
// sim.Run's end-of-run accounting does.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// ErrServerClosed is returned by Submit after Shutdown has begun.
var ErrServerClosed = errors.New("server: closed")

// ErrUnknownTemplate is returned for queries naming no known template.
var ErrUnknownTemplate = errors.New("server: unknown template")

// Request is one live query submission.
type Request struct {
	// Tenant routes the query to a shard; all queries of a tenant share
	// one economy. Empty tenants route by template instead.
	Tenant string
	// Template names a query template (e.g. "Q6"). Required.
	Template string
	// Selectivity is the region fraction scanned. Zero with
	// HasSelectivity unset means "not specified": the shard draws one
	// from the template's range with its deterministic RNG. Any other
	// value — including an explicit zero, marked by HasSelectivity —
	// clamps to the template's [SelMin, SelMax].
	Selectivity float64
	// HasSelectivity distinguishes an explicitly requested selectivity
	// of 0 from the unset zero value. Non-zero selectivities need not
	// set it.
	HasSelectivity bool
	// Budget is the user's B_Q(t); nil applies the server's default
	// budget policy.
	Budget budget.Func
	// DecodeNanos is the front's per-query share of the frame decode that
	// produced this request — observability only, carried into the
	// query's decision trace when it is sampled. Zero for in-process
	// submissions.
	DecodeNanos int64
}

// Response reports how the economy answered one query.
type Response struct {
	QueryID         int64   `json:"query_id"`
	Shard           int     `json:"shard"`
	Template        string  `json:"template"`
	Selectivity     float64 `json:"selectivity"`
	ArrivalSec      float64 `json:"arrival_s"`
	Declined        bool    `json:"declined"`
	Location        string  `json:"location"`
	ResponseTimeSec float64 `json:"response_time_s"`
	ChargedUSD      float64 `json:"charged_usd"`
	ProfitUSD       float64 `json:"profit_usd"`
	Investments     int     `json:"investments"`
	Failures        int     `json:"failures"`

	// TraceSeq, together with Shard, names this query's decision-trace
	// record when it was sampled (0 otherwise). In-process only: fronts
	// use it to back-fill the encode-stage latency after the reply is on
	// the wire; it is not part of the JSON surface.
	TraceSeq int64 `json:"-"`
}

// Config parameterises a Server.
type Config struct {
	// Shards is the number of independent economy shards. Default 4.
	Shards int
	// Scheme names the caching scheme each shard runs ("bypass",
	// "econ-col", "econ-cheap", "econ-fast"). Default "econ-cheap".
	Scheme string
	// Params calibrates the schemes. Params.Catalog is required.
	Params scheme.Params
	// Clock drives arrival stamps and rent accrual. Default wall time.
	Clock Clock
	// Accounting prices true expenditure in stats. Default EC22008.
	Accounting *pricing.Schedule
	// Budgets is the default budget policy for requests without an
	// explicit budget. Default workload.DefaultScaledPolicy.
	Budgets workload.BudgetPolicy
	// Templates is the admissible template pool. Default PaperTemplates.
	Templates []*workload.Template
	// TickEvery is the housekeeping cadence: how often idle shards
	// accrue rent and complete due builds. 0 disables the ticker (tests
	// with a VirtualClock call Housekeep explicitly). Default 1s when
	// Clock is nil or a WallClock, else 0.
	TickEvery time.Duration
	// MailboxDepth bounds each shard's admission queue. Default 256.
	MailboxDepth int
	// DisableMicroBatch turns off the shard loops' group commit (one
	// lock acquisition and clock read per mailbox drain) and restores
	// the one-message-per-wakeup loop. A drained group shares one
	// arrival stamp — the same same-instant semantics SubmitBatch gives
	// a batch — so on a virtual clock decisions are identical either
	// way; on a wall clock queued messages are stamped at drain time
	// rather than with per-message clock reads. The knob exists so
	// benchmarks can measure the gain.
	DisableMicroBatch bool
	// DecideDelay, when set, is called with the shard id at the start of
	// every mailbox drain, before the shard takes its lock. A test hook:
	// out-of-order completion tests install randomized per-shard sleeps
	// here to scramble which shard group of a pipelined batch finishes
	// first. Nil (the default) costs one predicted branch per drain.
	DecideDelay func(shard int)
	// Seed derives each shard's deterministic RNG. Default 1.
	Seed int64
	// ReservoirCap bounds each shard's response reservoir. Default 4096.
	ReservoirCap int
	// SnapshotPath, when set, is where the engine persists its economy
	// state: atomically on graceful drain, on every Checkpoint call, and
	// on the periodic checkpoint ticker.
	SnapshotPath string
	// CheckpointEvery is the periodic checkpoint cadence. 0 disables the
	// ticker; drain and on-demand Checkpoint still write. Requires
	// SnapshotPath.
	CheckpointEvery time.Duration
	// Restore is a previously persisted snapshot to adopt before serving
	// begins. Scheme, provider, shard count and catalog must match the
	// rest of this config; a mismatch fails New rather than silently
	// dropping state.
	Restore *persist.Snapshot
	// TraceRing is the per-shard decision-trace ring capacity: 0 takes
	// obs.DefaultRing, negative disables the tracer entirely (not even
	// the sample-gate load is paid — the benchmark baseline).
	TraceRing int
	// TraceSampleEvery is the initial trace sampling period: 0 off,
	// 1 every query, N one in N. Adjustable at runtime through
	// Tracer().SetSampleEvery; with sampling off the decide loop pays a
	// single atomic load per query.
	TraceSampleEvery int64
	// JournalRing bounds each shard's per-event-type economy journal
	// rings. 0 takes obs.DefaultJournalRing.
	JournalRing int
}

// Server is the concurrent serving engine.
type Server struct {
	cfg        Config
	catalog    *catalog.Catalog
	accounting *pricing.Schedule
	budgets    workload.BudgetPolicy
	// stepBudgets is budgets' allocation-free fast path when the policy
	// implements it (the default step-shaped policies do); nil otherwise.
	stepBudgets workload.StepBudgeter
	templates   map[string]*workload.Template
	clock       Clock
	shards      []*shard
	nextID      atomic.Int64

	// replyPool recycles Submit's buffered reply channels. A channel is
	// returned to the pool only after its reply was received, so a pooled
	// channel is always empty; abandoned waits (ctx cancellation) leave
	// their channel to the garbage collector instead.
	replyPool sync.Pool

	// epoch anchors the monotone nanosecond scale behind mailbox-wait
	// measurement and trace wall stamps (real time, independent of the
	// economy clock's acceleration).
	epoch time.Time
	// tracer collects sampled decision traces; nil when Config.TraceRing
	// is negative.
	tracer *obs.Tracer
	// journals hold each shard's economy event log; eventSeq is the
	// global order all of them share.
	journals []*obs.Journal
	eventSeq atomic.Int64

	mu       sync.Mutex
	closed   bool
	submitWG sync.WaitGroup

	// migrating counts in-progress shard transfers (extract or install);
	// /readyz reports "migrating" while it is nonzero.
	migrating atomic.Int32

	tickStop chan struct{}
	tickDone chan struct{}

	ckptStop chan struct{}
	ckptDone chan struct{}
	// snapMu serializes snapshot writes (checkpoints, ticker, drain), so
	// the drain's final write is always the last one on disk.
	snapMu sync.Mutex

	shutdownOnce sync.Once
	drained      chan struct{}
}

// New validates the config, builds the shards and starts their loops.
func New(cfg Config) (*Server, error) {
	if cfg.Params.Catalog == nil {
		return nil, fmt.Errorf("server: Params.Catalog is required")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("server: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "econ-cheap"
	}
	wallClock := false
	if cfg.Clock == nil {
		cfg.Clock = NewWallClock(1)
		wallClock = true
	} else if _, ok := cfg.Clock.(*WallClock); ok {
		wallClock = true
	}
	if cfg.TickEvery == 0 && wallClock {
		cfg.TickEvery = time.Second
	}
	if cfg.TickEvery < 0 {
		cfg.TickEvery = 0
	}
	if cfg.Accounting == nil {
		cfg.Accounting = pricing.EC22008()
	}
	if err := cfg.Accounting.Validate(); err != nil {
		return nil, err
	}
	if cfg.Budgets == nil {
		cfg.Budgets = workload.DefaultScaledPolicy()
	}
	if len(cfg.Templates) == 0 {
		cfg.Templates = workload.PaperTemplates()
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ReservoirCap <= 0 {
		cfg.ReservoirCap = 4096
	}

	srv := &Server{
		cfg:        cfg,
		catalog:    cfg.Params.Catalog,
		accounting: cfg.Accounting,
		budgets:    cfg.Budgets,
		templates:  make(map[string]*workload.Template, len(cfg.Templates)),
		clock:      cfg.Clock,
		epoch:      time.Now(),
	}
	if sb, ok := cfg.Budgets.(workload.StepBudgeter); ok {
		srv.stepBudgets = sb
	}
	if cfg.TraceRing >= 0 {
		srv.tracer = obs.NewTracer(cfg.Shards, cfg.TraceRing, cfg.TraceSampleEvery)
	}
	for _, t := range cfg.Templates {
		// Validate also memoizes the template's group size, so the
		// per-query sizing path is read-only and race-free afterwards.
		if err := t.Validate(srv.catalog); err != nil {
			return nil, err
		}
		if _, dup := srv.templates[t.Name]; dup {
			return nil, fmt.Errorf("server: duplicate template %q", t.Name)
		}
		srv.templates[t.Name] = t
	}

	if cfg.CheckpointEvery > 0 && cfg.SnapshotPath == "" {
		return nil, fmt.Errorf("server: CheckpointEvery requires SnapshotPath")
	}

	srv.shards = make([]*shard, cfg.Shards)
	srv.journals = make([]*obs.Journal, cfg.Shards)
	for i := range srv.shards {
		sch, err := scheme.New(cfg.Scheme, cfg.Params)
		if err != nil {
			return nil, err
		}
		srv.shards[i] = newShard(i, srv, sch, shardSeed(cfg.Seed, i), cfg.MailboxDepth, cfg.ReservoirCap)
		// Each shard journals its economy's events; emission happens on
		// the shard's serialized decision path, and restore mutates the
		// scheme in place, so the sink survives snapshot adoption.
		srv.journals[i] = obs.NewJournal(i, cfg.JournalRing, &srv.eventSeq)
		if es, ok := sch.(interface{ SetEvents(func(obs.Event)) }); ok {
			es.SetEvents(srv.journals[i].Emit)
		}
	}
	// Adopt persisted state before any loop starts: restore is
	// all-or-nothing, so a failed restore leaves no half-built server.
	if cfg.Restore != nil {
		if err := srv.restore(cfg.Restore); err != nil {
			return nil, err
		}
	}
	for _, sh := range srv.shards {
		go sh.loop()
	}
	if cfg.TickEvery > 0 {
		srv.tickStop = make(chan struct{})
		srv.tickDone = make(chan struct{})
		go srv.runTicker(cfg.TickEvery)
	}
	if cfg.SnapshotPath != "" && cfg.CheckpointEvery > 0 {
		srv.ckptStop = make(chan struct{})
		srv.ckptDone = make(chan struct{})
		go srv.runCheckpointer(cfg.CheckpointEvery)
	}
	return srv, nil
}

// shardSeed decorrelates the per-shard RNG streams.
func shardSeed(base int64, shard int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", base, shard)
	return int64(h.Sum64())
}

// runTicker fans housekeeping ticks out to every shard. Sends are
// non-blocking into capacity-1 channels, so a busy shard coalesces ticks
// instead of queueing them.
func (s *Server) runTicker(every time.Duration) {
	defer close(s.tickDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for _, sh := range s.shards {
				select {
				case sh.tick <- struct{}{}:
				default:
				}
			}
		case <-s.tickStop:
			return
		}
	}
}

// ShardCount returns the number of shards.
func (s *Server) ShardCount() int { return len(s.shards) }

// nanos is the server's monotone nanosecond scale (real time since
// construction): mailbox-wait stamps and trace wall stamps share it.
func (s *Server) nanos() int64 { return int64(time.Since(s.epoch)) }

// Tracer exposes the decision-trace collector for runtime control
// (sampling knobs) and exposition. Nil when Config.TraceRing < 0.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// TraceSnapshot returns up to n of the most recent sampled decision
// traces matching the tenant/template filters ("" matches everything).
// Empty when tracing is disabled.
func (s *Server) TraceSnapshot(tenant, template string, n int) []obs.Record {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Snapshot(tenant, template, n)
}

// EventsSnapshot returns up to n of the most recent retained economy
// events matching the type/tenant filters (""s match everything),
// merged across shards in global sequence order.
func (s *Server) EventsSnapshot(typ, tenant string, n int) []obs.Event {
	parts := make([][]obs.Event, len(s.journals))
	for i, j := range s.journals {
		parts[i] = j.Snapshot(typ, tenant, 0)
	}
	return obs.MergeEvents(n, parts...)
}

// EventsSince returns every retained economy event with Seq > seq in
// global order — the cursor walk the wire event stream uses between
// pushes.
func (s *Server) EventsSince(seq int64) []obs.Event {
	parts := make([][]obs.Event, len(s.journals))
	for i, j := range s.journals {
		parts[i] = j.Snapshot("", "", seq)
	}
	return obs.MergeEvents(0, parts...)
}

// EventTotals sums the journals' exact lifetime totals across shards.
// Ring-capacity independent: these reconcile against ledger totals even
// after old events rotate out.
func (s *Server) EventTotals() obs.Totals {
	var t obs.Totals
	for _, j := range s.journals {
		jt := j.Totals()
		t.Add(jt)
	}
	return t
}

// Clock returns the server's clock.
func (s *Server) Clock() Clock { return s.clock }

// ShardIndex returns the shard a request routes to: by tenant when set,
// else by template, hashed stably so a tenant's whole history lands on
// one economy.
func (s *Server) ShardIndex(req Request) int {
	return ShardIndexFor(req.Tenant, req.Template, len(s.shards))
}

// ShardIndexFor is the routing hash itself, exported so a cluster front
// can compute the same shard a backend would — every process in a
// cluster MUST agree on this function and on the shard count, or
// traffic lands on disowned slots.
func ShardIndexFor(tenant, template string, shards int) int {
	key := tenant
	if key == "" {
		key = template
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// Submit routes the query to its shard, waits for the economy's answer
// and returns it. Safe for arbitrary concurrency. After Shutdown begins
// it returns ErrServerClosed; a query accepted before that is always
// answered, even if Shutdown is already in progress.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	sh := s.shards[s.ShardIndex(req)]

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Response{}, ErrServerClosed
	}
	s.submitWG.Add(1)
	s.mu.Unlock()
	defer s.submitWG.Done()

	reply, _ := s.replyPool.Get().(chan shardReply)
	if reply == nil {
		reply = make(chan shardReply, 1)
	}
	select {
	case sh.mailbox <- shardMsg{req: req, reply: reply, enq: s.nanos()}:
	case <-ctx.Done():
		s.replyPool.Put(reply) // never enqueued; still empty
		return Response{}, ctx.Err()
	}
	// The shard always answers (the loop drains its mailbox before
	// exiting), so an abandoned wait leaks nothing: the reply channel is
	// buffered — but only a channel whose reply was consumed may return
	// to the pool.
	select {
	case r := <-reply:
		s.replyPool.Put(reply)
		return r.resp, r.err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// BatchItem is one positional result of SubmitBatch: the economy's
// answer to the request at the same index, or the per-request error that
// prevented one (e.g. an unknown template).
type BatchItem struct {
	Resp Response
	Err  error
}

// SubmitBatch submits many queries in one call: requests are grouped by
// destination shard and each group travels the mailbox as a single
// message, amortizing channel sends, lock acquisitions and reply
// allocations across the group. Within a shard, requests are decided in
// slice order with one shared arrival stamp, so results are
// deterministic given the shard's prior state. The returned slice aligns
// positionally with reqs; per-request failures land in BatchItem.Err
// while the call-level error reports only whole-batch conditions
// (ErrServerClosed, ctx cancellation). The graceful-drain guarantee of
// Submit holds: an accepted batch is always fully answered.
func (s *Server) SubmitBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.submitWG.Add(1)
	s.mu.Unlock()
	defer s.submitWG.Done()

	// Group request positions by shard, preserving submission order
	// within each group. Groups are carved out of flat per-call buffers
	// (requests, original positions, reply storage) so the whole call
	// costs a fixed handful of allocations regardless of batch size —
	// the shard loops fill the caller-owned reply storage in place.
	reqBuf, posBuf, replyBuf, offs, counts := s.carveGroups(reqs)
	active := 0
	for _, c := range counts {
		if c > 0 {
			active++
		}
	}

	// Enqueue every group, then collect. Sends may block on a full
	// mailbox, but the shard loops drain independently of this
	// goroutine, so sequential sends cannot deadlock. If ctx dies
	// after some sends, the already-accepted groups are still decided
	// (and their buffered replies dropped) — same semantics as an
	// abandoned Submit.
	// One wait stamp covers the whole call; groups enqueue back to back.
	// One buffered channel collects every group's completion: each group
	// writes its replies into its own replyBuf sub-slice, so the channel
	// only signals that the sub-slice is ready.
	enq := s.nanos()
	done := make(chan []shardReply, active)
	for idx, c := range counts {
		if c == 0 {
			continue
		}
		grp := reqBuf[offs[idx] : offs[idx]+c]
		buf := replyBuf[offs[idx] : offs[idx]+c]
		select {
		case s.shards[idx].mailbox <- shardMsg{batch: grp, batchReply: done, replyBuf: buf, enq: enq}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for i := 0; i < active; i++ {
		select {
		case <-done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	out := make([]BatchItem, len(reqs))
	for j := range replyBuf {
		out[posBuf[j]] = BatchItem{Resp: replyBuf[j].resp, Err: replyBuf[j].err}
	}
	return out, nil
}

// carveGroups partitions a batch by destination shard into flat buffers:
// reqBuf/posBuf hold the requests and their original positions grouped by
// shard (submission order preserved within each group), replyBuf is the
// matching reply storage, and offs/counts locate shard idx's group at
// [offs[idx], offs[idx]+counts[idx]).
func (s *Server) carveGroups(reqs []Request) (reqBuf []Request, posBuf []int, replyBuf []shardReply, offs, counts []int) {
	nsh := len(s.shards)
	counts = make([]int, nsh)
	for i := range reqs {
		counts[s.ShardIndex(reqs[i])]++
	}
	offs = make([]int, nsh)
	off := 0
	for idx, c := range counts {
		offs[idx] = off
		off += c
	}
	reqBuf = make([]Request, len(reqs))
	posBuf = make([]int, len(reqs))
	replyBuf = make([]shardReply, len(reqs))
	cursor := make([]int, nsh)
	for i := range reqs {
		idx := s.ShardIndex(reqs[i])
		j := offs[idx] + cursor[idx]
		cursor[idx]++
		reqBuf[j] = reqs[i]
		posBuf[j] = i
	}
	return reqBuf, posBuf, replyBuf, offs, counts
}

// SubmitBatchAsync is SubmitBatch without the wait: requests are grouped
// by destination shard and enqueued exactly like SubmitBatch — same
// per-shard decision order, same same-instant arrival semantics, so a
// batch's items are byte-identical to what the synchronous call would
// have returned — but the call returns as soon as every group is
// enqueued, and done is invoked exactly once with the positional items
// when the last shard group finishes. This is what lets a pipelined
// listener accept new frames while prior batches are still deciding:
// batches complete out of order as their shard groups drain.
//
// done runs on the shard goroutine that completed the batch's final
// group, so it must be quick and must not call back into the server's
// snapshot paths (Stats, Structures); hand heavy work to another
// goroutine. It may fire before SubmitBatchAsync returns. On a non-nil
// error (ErrServerClosed, ctx cancellation mid-enqueue) done is never
// invoked; groups already enqueued are still decided and their results
// discarded, the same semantics as an abandoned SubmitBatch.
func (s *Server) SubmitBatchAsync(ctx context.Context, reqs []Request, done func([]BatchItem)) error {
	if len(reqs) == 0 {
		return fmt.Errorf("server: empty batch")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.submitWG.Add(1)
	s.mu.Unlock()
	// The WG guards only the enqueue phase: drain closes the mailboxes
	// after submitWG.Wait(), and the loops answer everything already
	// enqueued before exiting, so completion needs no further guard.
	defer s.submitWG.Done()

	items := make([]BatchItem, len(reqs))
	pending := new(atomic.Int32)

	reqBuf, posBuf, replyBuf, offs, counts := s.carveGroups(reqs)
	n := int32(0)
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	// pending is set before any send, so a group that completes while
	// later groups are still enqueueing cannot see a premature zero.
	pending.Add(n)

	enq := s.nanos()

	for idx, c := range counts {
		if c == 0 {
			continue
		}
		grp := reqBuf[offs[idx] : offs[idx]+c]
		buf := replyBuf[offs[idx] : offs[idx]+c]
		pos := posBuf[offs[idx] : offs[idx]+c]
		cb := func(replies []shardReply) {
			for i, r := range replies {
				items[pos[i]] = BatchItem{Resp: r.resp, Err: r.err}
			}
			if pending.Add(-1) == 0 {
				done(items)
			}
		}
		select {
		case s.shards[idx].mailbox <- shardMsg{batch: grp, batchDone: cb, replyBuf: buf, enq: enq}:
		case <-ctx.Done():
			// Unsent groups keep pending above zero forever, so done can
			// never fire after this error return.
			return ctx.Err()
		}
	}
	return nil
}

// Housekeep synchronously accrues rent and completes due builds on every
// shard. The ticker calls the same path on wall clocks; virtual-clock
// tests call it after Advance to make accrual deterministic.
func (s *Server) Housekeep() {
	for _, sh := range s.shards {
		sh.housekeep()
	}
}

// Stats snapshots live metrics across all shards. Aggregate percentiles
// are estimated over the union of the per-shard reservoirs.
func (s *Server) Stats() Stats {
	agg := Stats{
		Scheme:   s.cfg.Scheme,
		Provider: s.cfg.Params.Provider.String(),
		Shards:   len(s.shards),
	}
	s.mu.Lock()
	agg.Draining = s.closed
	s.mu.Unlock()

	// Tenant-routed traffic keeps a tenant on one shard, but untagged
	// (template-routed) queries spread the "" tenant across shards: merge
	// by summing per tenant name, then sort for a deterministic section.
	tenants := make(map[string]TenantStats)

	var samples, weights []float64
	var meanWeighted float64
	for _, sh := range s.shards {
		st, smp := sh.snapshot()
		agg.PerShard = append(agg.PerShard, st)
		for _, ts := range st.Tenants {
			m := tenants[ts.Tenant]
			m.Tenant = ts.Tenant
			m.Queries += ts.Queries
			m.Declined += ts.Declined
			m.CacheAnswered += ts.CacheAnswered
			m.CreditUSD += ts.CreditUSD
			m.SpendUSD += ts.SpendUSD
			m.ProfitUSD += ts.ProfitUSD
			m.RegretUSD += ts.RegretUSD
			m.InvestedUSD += ts.InvestedUSD
			m.RecoveredUSD += ts.RecoveredUSD
			m.StructuresCharged += ts.StructuresCharged
			m.LedgerSize += ts.LedgerSize
			tenants[ts.Tenant] = m
		}
		// Reservoirs are capped: each retained sample stands for
		// executed/len(smp) observations, so busy shards keep their
		// weight in the merged percentiles.
		if len(smp) > 0 {
			w := float64(st.Queries-st.Declined) / float64(len(smp))
			for _, v := range smp {
				samples = append(samples, v)
				weights = append(weights, w)
			}
		}
		if st.ClockSec > agg.ClockSec {
			agg.ClockSec = st.ClockSec
		}
		agg.Queries += st.Queries
		agg.Declined += st.Declined
		agg.CacheAnswered += st.CacheAnswered
		agg.Investments += st.Investments
		agg.Failures += st.Failures
		agg.Errors += st.Errors
		agg.ExecCostUSD += st.ExecCostUSD
		agg.BuildCostUSD += st.BuildCostUSD
		agg.StorageCostUSD += st.StorageCostUSD
		agg.NodeCostUSD += st.NodeCostUSD
		agg.OperatingCostUSD += st.OperatingCostUSD
		agg.RevenueUSD += st.RevenueUSD
		agg.ProfitUSD += st.ProfitUSD
		agg.ResidentBytes += st.ResidentBytes
		agg.CreditUSD += st.CreditUSD
		meanWeighted += st.ResponseMeanSec * float64(st.Queries-st.Declined)
	}
	if executed := agg.Queries - agg.Declined; executed > 0 {
		agg.ResponseMeanSec = meanWeighted / float64(executed)
	}
	ps := metrics.WeightedQuantilesOf(samples, weights, 0.50, 0.95, 0.99)
	agg.ResponseP50Sec, agg.ResponseP95Sec, agg.ResponseP99Sec = ps[0], ps[1], ps[2]
	if len(tenants) > 0 {
		agg.Tenants = make([]TenantStats, 0, len(tenants))
		for _, ts := range tenants {
			if executed := ts.Queries - ts.Declined; executed > 0 {
				ts.HitRate = float64(ts.CacheAnswered) / float64(executed)
			}
			agg.Tenants = append(agg.Tenants, ts)
		}
		sort.Slice(agg.Tenants, func(i, j int) bool { return agg.Tenants[i].Tenant < agg.Tenants[j].Tenant })
	}
	return agg
}

// Structures lists every resident structure across all shards.
func (s *Server) Structures() []StructureInfo {
	var out []StructureInfo
	for _, sh := range s.shards {
		out = append(out, sh.structures()...)
	}
	return out
}

// Shutdown drains the server: no new submissions are accepted, every
// in-flight query is answered, idle-time rent is settled through the last
// promised completion, and all goroutines exit. The drain itself always
// runs to completion in the background; ctx only bounds this call's wait
// for it. A later Shutdown with a fresh ctx waits on the same drain, so a
// timed-out first attempt can be retried.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.drained = make(chan struct{})
		go func() {
			s.drain()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain performs the actual teardown. Every step terminates on its own:
// admitted Submits finish because the shard loops are still consuming,
// and the loops exit once their closed mailboxes empty.
func (s *Server) drain() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	// Wait for Submits that were admitted before the flag flipped: they
	// hold submitWG and may still be enqueueing.
	s.submitWG.Wait()

	if s.tickStop != nil {
		close(s.tickStop)
		<-s.tickDone
	}
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}

	// Closing the mailboxes lets each loop drain and exit; no accepted
	// query is dropped.
	for _, sh := range s.shards {
		close(sh.mailbox)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	// Persist the drained state BEFORE tail-rent finalization: endOfRun
	// travels in the snapshot and the restored server settles that window
	// at its own drain, so rent is charged exactly once across restarts
	// and a restored run stays byte-identical to an uninterrupted one.
	if s.cfg.SnapshotPath != "" {
		if _, err := s.writeSnapshot(); err != nil {
			slog.Error("server: drain snapshot failed", "path", s.cfg.SnapshotPath, "err", err)
		}
	}
	for _, sh := range s.shards {
		sh.finalize()
	}
}
