package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/persist"
	"repro/internal/server"
)

// The restart-parity harness: a server drained at query k, restored from
// its snapshot and fed queries k+1..n must be indistinguishable — byte
// for byte, in both the replies it sends and its final Stats — from a
// server that never restarted. This is the headline guarantee of the
// durable-state subsystem: restarts are invisible to clients and to the
// books.

const (
	parityGroups  = 80 // groups of parityPerGroup queries each
	parityPer     = 6
	parityRestart = 40 // drain after this many groups
)

var parityTenants = []string{"alice", "bob", "carol", ""}

// parityGroup scripts one deterministic submission group. Every group is
// homogeneous in tenant (the "" group homogeneous in template too), so a
// batched group lands on exactly one shard and query IDs are assigned in
// submission order — the determinism SubmitBatch promises per shard.
// The mix deliberately exercises every restore surface: explicit and
// server-drawn selectivities (the shard RNG), explicit and
// default-policy budgets, and all four tenants' ledgers.
func parityGroup(g int) []server.Request {
	tenant := parityTenants[g%len(parityTenants)]
	templates := []string{"Q1", "Q6", "Q3", "Q10", "Q14", "Q18"}
	reqs := make([]server.Request, parityPer)
	for i := range reqs {
		n := g*parityPer + i
		req := server.Request{
			Tenant:   tenant,
			Template: templates[i],
		}
		if tenant == "" {
			// Untagged queries route by template; keep the group on one
			// shard.
			req.Template = "Q6"
		}
		if i%3 != 2 {
			req.Selectivity = 0.001 + 0.0001*float64(n%9)
		} // else: unset — the shard draws one from its RNG stream.
		if i%4 != 3 {
			// A generous budget keeps Eq. 2 regret flowing so investments
			// (and with them market ownership, amortization and failure
			// state) exist on both sides of the restart.
			req.Budget = budget.NewStep(money.FromDollars(0.05), time.Hour)
		} // else: nil — the server's default budget policy prices it.
		reqs[i] = req
	}
	return reqs
}

// runParityGroups feeds groups [from, to) to srv on its virtual clock,
// collecting every reply in submission order.
func runParityGroups(t *testing.T, srv *server.Server, clock *server.VirtualClock, from, to int, batched bool) []server.Response {
	t.Helper()
	ctx := context.Background()
	var out []server.Response
	for g := from; g < to; g++ {
		clock.Advance(20 * time.Second)
		srv.Housekeep()
		reqs := parityGroup(g)
		if batched {
			items, err := srv.SubmitBatch(ctx, reqs)
			if err != nil {
				t.Fatalf("group %d: %v", g, err)
			}
			for i, it := range items {
				if it.Err != nil {
					t.Fatalf("group %d item %d: %v", g, i, it.Err)
				}
				out = append(out, it.Resp)
			}
		} else {
			for i, req := range reqs {
				resp, err := srv.Submit(ctx, req)
				if err != nil {
					t.Fatalf("group %d item %d: %v", g, i, err)
				}
				out = append(out, resp)
			}
		}
	}
	return out
}

func parityServer(t *testing.T, provider economy.Provider, clock server.Clock, snapshotPath string, restore *persist.Snapshot) *server.Server {
	t.Helper()
	params := testParams(testCatalog())
	params.Provider = provider
	srv, err := server.New(server.Config{
		Shards:       4,
		Scheme:       "econ-cheap",
		Params:       params,
		Clock:        clock,
		SnapshotPath: snapshotPath,
		Restore:      restore,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRestartParity drains a server mid-stream, restores it from the
// snapshot the drain wrote, replays the rest of the stream and demands
// byte-identical replies and final Stats versus an uninterrupted
// control — for both providers, via both Submit and SubmitBatch.
func TestRestartParity(t *testing.T) {
	for _, provider := range []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish} {
		for _, batched := range []bool{false, true} {
			mode := "submit"
			if batched {
				mode = "batch"
			}
			t.Run(fmt.Sprintf("%s/%s", provider, mode), func(t *testing.T) {
				// Control: one server lives through the whole stream. Its
				// shutdown snapshot is the reference for end-state parity.
				ctlPath := filepath.Join(t.TempDir(), "ctl.snap")
				ctlClock := server.NewVirtualClock()
				ctl := parityServer(t, provider, ctlClock, ctlPath, nil)
				ctlReplies := runParityGroups(t, ctl, ctlClock, 0, parityGroups, batched)
				if err := ctl.Shutdown(context.Background()); err != nil {
					t.Fatal(err)
				}
				ctlStats := ctl.Stats()

				// Interrupted: drain at the restart point; the drain
				// persists the snapshot.
				path := filepath.Join(t.TempDir(), "econ.snap")
				clock1 := server.NewVirtualClock()
				srv1 := parityServer(t, provider, clock1, path, nil)
				runParityGroups(t, srv1, clock1, 0, parityRestart, batched)
				if err := srv1.Shutdown(context.Background()); err != nil {
					t.Fatal(err)
				}

				snap, err := persist.Load(path)
				if err != nil {
					t.Fatalf("loading drain snapshot: %v", err)
				}
				var invested int64
				for _, sh := range snap.Shards {
					invested += sh.Investments
				}
				if invested == 0 {
					t.Fatal("snapshot carries no investments; the parity run is not exercising the economy")
				}

				// Restored: a fresh process adopts the snapshot and the
				// stream resumes where it stopped.
				restPath := filepath.Join(t.TempDir(), "rest.snap")
				clock2 := server.NewVirtualClock()
				clock2.Advance(snap.Clock)
				srv2 := parityServer(t, provider, clock2, restPath, snap)
				replies := runParityGroups(t, srv2, clock2, parityRestart, parityGroups, batched)
				if err := srv2.Shutdown(context.Background()); err != nil {
					t.Fatal(err)
				}

				wantReplies := ctlReplies[parityRestart*parityPer:]
				if got, want := mustJSON(t, replies), mustJSON(t, wantReplies); got != want {
					t.Errorf("replies after restart diverge from uninterrupted run:\ngot  %s\nwant %s", got, want)
				}
				restStats := srv2.Stats()
				clearGauges(&restStats)
				clearGauges(&ctlStats)
				if got, want := mustJSON(t, restStats), mustJSON(t, ctlStats); got != want {
					t.Errorf("final stats after restart diverge from uninterrupted run:\ngot  %s\nwant %s", got, want)
				}

				// End-state parity below the Stats surface: the restored
				// run's shutdown snapshot must carry exactly the economy
				// the uninterrupted run ended with — ledgers, regret
				// entries with their LRU clocks, structure ownership, and
				// in particular the market's failure history, so the
				// Eq. 3 investment backoff a failed build raised survives
				// a restart instead of resetting.
				ctlEnd, err := persist.Load(ctlPath)
				if err != nil {
					t.Fatalf("loading control end snapshot: %v", err)
				}
				restEnd, err := persist.Load(restPath)
				if err != nil {
					t.Fatalf("loading restored end snapshot: %v", err)
				}
				if len(ctlEnd.Shards) != len(restEnd.Shards) {
					t.Fatalf("end snapshots have %d vs %d shards", len(ctlEnd.Shards), len(restEnd.Shards))
				}
				for i := range ctlEnd.Shards {
					ce, re := ctlEnd.Shards[i].Economy, restEnd.Shards[i].Economy
					if got, want := mustJSON(t, re), mustJSON(t, ce); got != want {
						t.Errorf("shard %d economy end-state diverges after restart:\ngot  %s\nwant %s", i, got, want)
						continue
					}
					if ce == nil {
						continue
					}
					if got, want := mustJSON(t, re.Market.FailCounts), mustJSON(t, ce.Market.FailCounts); got != want {
						t.Errorf("shard %d invest-backoff failCounts diverge after restart:\ngot  %s\nwant %s", i, got, want)
					}
				}
			})
		}
	}
}

// TestRestoreRejectsReconfiguration pins the mismatch guards: a snapshot
// must not restore across a scheme, provider or shard-count change.
func TestRestoreRejectsReconfiguration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "econ.snap")
	clock := server.NewVirtualClock()
	srv := parityServer(t, economy.ProviderSelfish, clock, path, nil)
	runParityGroups(t, srv, clock, 0, 4, false)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := persist.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	try := func(mutate func(cfg *server.Config)) error {
		params := testParams(testCatalog())
		params.Provider = economy.ProviderSelfish
		cfg := server.Config{
			Shards:  4,
			Scheme:  "econ-cheap",
			Params:  params,
			Clock:   server.NewVirtualClock(),
			Restore: snap,
		}
		mutate(&cfg)
		s, err := server.New(cfg)
		if err == nil {
			s.Shutdown(context.Background())
		}
		return err
	}
	if err := try(func(cfg *server.Config) { cfg.Shards = 8 }); err == nil {
		t.Error("restore across a shard-count change accepted")
	}
	if err := try(func(cfg *server.Config) { cfg.Scheme = "econ-fast" }); err == nil {
		t.Error("restore across a scheme change accepted")
	}
	if err := try(func(cfg *server.Config) { cfg.Params.Provider = economy.ProviderAltruistic }); err == nil {
		t.Error("restore across a provider change accepted")
	}
	if err := try(func(cfg *server.Config) {}); err != nil {
		t.Errorf("matching config rejected: %v", err)
	}
}

// TestCheckpointWhileServing exercises the on-demand checkpoint on a
// live server: the snapshot must be decodable and internally consistent
// while traffic continues.
func TestCheckpointWhileServing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "econ.snap")
	clock := server.NewVirtualClock()
	srv := parityServer(t, economy.ProviderAltruistic, clock, path, nil)
	defer srv.Shutdown(context.Background())

	runParityGroups(t, srv, clock, 0, 6, false)
	gotPath, size, err := srv.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != path || size <= 0 {
		t.Fatalf("Checkpoint() = %q, %d", gotPath, size)
	}
	snap, err := persist.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	var q int64
	for _, sh := range snap.Shards {
		q += sh.Queries
	}
	if want := int64(6 * parityPer); q != want {
		t.Errorf("checkpoint accounts %d queries, want %d", q, want)
	}
	runParityGroups(t, srv, clock, 6, 8, false)

	// A server with no snapshot path refuses on-demand checkpoints.
	bare := parityServer(t, economy.ProviderAltruistic, server.NewVirtualClock(), "", nil)
	defer bare.Shutdown(context.Background())
	if _, _, err := bare.Checkpoint(); err == nil {
		t.Error("checkpoint without a snapshot path accepted")
	}
}

// TestTruncatedSnapshotFailsCleanly walks a valid snapshot file through
// every truncation point and a bit flip: no prefix may decode, and the
// failure must be an error, never a panic or partial state.
func TestTruncatedSnapshotFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "econ.snap")
	clock := server.NewVirtualClock()
	srv := parityServer(t, economy.ProviderSelfish, clock, path, nil)
	runParityGroups(t, srv, clock, 0, 4, true)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.Decode(data); err != nil {
		t.Fatalf("pristine snapshot does not decode: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := persist.Decode(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(data))
		}
	}
	// Every byte is covered: the header by the magic/version match, every
	// frame payload and length prefix by the CRC trailer.
	for _, flip := range []int{0, 7, 8, len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[flip] ^= 0x40
		if _, err := persist.Decode(mut); err == nil {
			t.Errorf("bit flip at byte %d decoded successfully", flip)
		}
	}
}
