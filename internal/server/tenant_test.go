package server_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/economy"
	"repro/internal/server"
)

// tenantScript is one tenant's deterministic submission stream: a mix of
// singleton Submits and SubmitBatches, always in the same order.
func tenantScript(t *testing.T, srv *server.Server, tenant string) {
	t.Helper()
	ctx := context.Background()
	templates := []string{"Q1", "Q6", "Q3", "Q10", "Q6", "Q14"}
	mk := func(i int) server.Request {
		return server.Request{
			Tenant:      tenant,
			Template:    templates[i%len(templates)],
			Selectivity: 0.001 + 0.0001*float64(i%7),
			Budget:      testBudget(),
		}
	}
	for i := 0; i < 60; {
		if i%10 < 7 {
			if _, err := srv.Submit(ctx, mk(i)); err != nil {
				t.Error(err)
				return
			}
			i++
			continue
		}
		batch := []server.Request{mk(i), mk(i + 1), mk(i + 2)}
		items, err := srv.SubmitBatch(ctx, batch)
		if err != nil {
			t.Error(err)
			return
		}
		for _, it := range items {
			if it.Err != nil {
				t.Error(it.Err)
				return
			}
		}
		i += len(batch)
	}
}

// distinctShardTenants picks n tenant names that all land on different
// shards, so each tenant's stream is the only traffic its shard sees.
func distinctShardTenants(srv *server.Server, n int) []string {
	taken := make(map[int]bool)
	var out []string
	for i := 0; len(out) < n && i < 10_000; i++ {
		name := fmt.Sprintf("tenant-%04d", i)
		idx := srv.ShardIndex(server.Request{Tenant: name})
		if !taken[idx] {
			taken[idx] = true
			out = append(out, name)
		}
	}
	return out
}

// TestPerTenantStatsDeterministic is the -race acceptance test for the
// tenant ledgers: many tenants submitting concurrently (each tenant's own
// stream ordered, tenants racing each other) on a virtual clock must
// produce byte-identical per-tenant ledgers versus a fully sequential
// replay of the same streams — including after the graceful drain has
// settled tail rent. Tenants are placed on distinct shards, so the only
// nondeterminism in play is goroutine scheduling, which per-tenant
// accounting must be immune to.
func TestPerTenantStatsDeterministic(t *testing.T) {
	for _, provider := range []economy.Provider{economy.ProviderAltruistic, economy.ProviderSelfish} {
		t.Run(provider.String(), func(t *testing.T) {
			newSrv := func() *server.Server {
				cat := testCatalog()
				params := testParams(cat)
				params.Provider = provider
				srv, err := server.New(server.Config{
					Shards: 8,
					Scheme: "econ-cheap",
					Params: params,
					Clock:  server.NewVirtualClock(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return srv
			}

			concurrent := newSrv()
			tenants := distinctShardTenants(concurrent, 6)
			if len(tenants) < 6 {
				t.Fatalf("could not place 6 tenants on distinct shards")
			}

			var wg sync.WaitGroup
			for _, tenant := range tenants {
				wg.Add(1)
				go func(tenant string) {
					defer wg.Done()
					tenantScript(t, concurrent, tenant)
				}(tenant)
			}
			wg.Wait()
			if err := concurrent.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}

			sequential := newSrv()
			for _, tenant := range tenants {
				tenantScript(t, sequential, tenant)
			}
			if err := sequential.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}

			a, b := concurrent.Stats(), sequential.Stats()
			clearGauges(&a)
			clearGauges(&b)
			if !a.Draining || !b.Draining {
				t.Fatal("post-drain snapshots must be draining")
			}
			if !reflect.DeepEqual(a.Tenants, b.Tenants) {
				t.Errorf("per-tenant ledgers diverged from sequential replay:\nconcurrent %+v\nsequential %+v",
					a.Tenants, b.Tenants)
			}
			if len(a.Tenants) != len(tenants) {
				t.Errorf("got %d tenant sections, want %d", len(a.Tenants), len(tenants))
			}
			for _, ts := range a.Tenants {
				if ts.Queries != 60 {
					t.Errorf("tenant %s: queries = %d, want 60", ts.Tenant, ts.Queries)
				}
				if provider == economy.ProviderSelfish && ts.CreditUSD <= 0 {
					t.Errorf("selfish tenant %s has no account: %+v", ts.Tenant, ts)
				}
				if provider == economy.ProviderAltruistic && ts.CreditUSD != 0 {
					t.Errorf("altruistic tenant %s carries credit: %+v", ts.Tenant, ts)
				}
			}
			// The whole engine state — not just the ledgers — must match:
			// tenants on distinct shards make the full run deterministic.
			if !reflect.DeepEqual(a, b) {
				t.Errorf("aggregate stats diverged:\nconcurrent %+v\nsequential %+v", a, b)
			}
		})
	}
}
