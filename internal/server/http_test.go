package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

func newHTTPServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := newTestServer(t, 4, "econ-cheap", server.NewVirtualClock())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postQuery(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	return postBody(t, url+"/v1/query", body)
}

func postBody(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPQuery(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, body := postQuery(t, ts.URL,
		`{"tenant":"alice","template":"Q6","selectivity":0.0096,"budget":{"shape":"step","price_usd":0.002,"tmax_s":3600}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var qr server.Response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.QueryID == 0 {
		t.Error("missing query id")
	}
	if qr.Template != "Q6" {
		t.Errorf("template = %q", qr.Template)
	}
	if qr.Location != "backend" && qr.Location != "cache" {
		t.Errorf("location = %q", qr.Location)
	}
}

func TestHTTPQueryDefaultsBudget(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, body := postQuery(t, ts.URL, `{"template":"Q1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	_, ts := newHTTPServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"template":"Q1","frobnicate":1}`, http.StatusBadRequest},
		{"no template", `{}`, http.StatusBadRequest},
		{"unknown template", `{"template":"Q999"}`, http.StatusBadRequest},
		{"bad shape", `{"template":"Q1","budget":{"shape":"cubic","price_usd":1,"tmax_s":60}}`, http.StatusBadRequest},
		{"bad price", `{"template":"Q1","budget":{"price_usd":-1,"tmax_s":60}}`, http.StatusBadRequest},
		{"bad tmax", `{"template":"Q1","budget":{"price_usd":1,"tmax_s":0}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postQuery(t, ts.URL, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, resp.StatusCode, c.status, body)
		}
	}
	// GET on the query endpoint is rejected.
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query status = %d", resp.StatusCode)
	}
}

func TestHTTPBudgetShapes(t *testing.T) {
	_, ts := newHTTPServer(t)
	for _, shape := range []string{"step", "linear", "convex", "concave"} {
		resp, body := postQuery(t, ts.URL, fmt.Sprintf(
			`{"template":"Q6","budget":{"shape":"%s","price_usd":0.01,"tmax_s":3600}}`, shape))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("shape %s: status = %d, body %s", shape, resp.StatusCode, body)
		}
	}
}

func TestHTTPStatsAndHealthz(t *testing.T) {
	_, ts := newHTTPServer(t)
	const n = 25
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postQuery(t, ts.URL, fmt.Sprintf(`{"tenant":"t%d","template":"Q6"}`, i%5))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Queries != n {
		t.Errorf("stats queries = %d, want %d", st.Queries, n)
	}
	if len(st.PerShard) != 4 {
		t.Errorf("per-shard entries = %d, want 4", len(st.PerShard))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Queries != n || h.Shards != 4 || h.Draining {
		t.Errorf("healthz = %+v", h)
	}

	resp, err = http.Get(ts.URL + "/v1/structures")
	if err != nil {
		t.Fatal(err)
	}
	var structs []server.StructureInfo
	if err := json.NewDecoder(resp.Body).Decode(&structs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Cold server: the list is present (possibly empty), never null.
}

// TestHTTPExplicitZeroSelectivity: `"selectivity": 0` in the JSON body
// is an explicit request, not an invitation to draw randomly — it clamps
// to the template's minimum like any other out-of-range value.
func TestHTTPExplicitZeroSelectivity(t *testing.T) {
	_, ts := newHTTPServer(t)
	var selMin float64
	for _, tpl := range workload.PaperTemplates() {
		if tpl.Name == "Q6" {
			selMin = tpl.SelMin
		}
	}
	for i := 0; i < 3; i++ {
		resp, body := postQuery(t, ts.URL, `{"template":"Q6","selectivity":0}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
		var qr server.Response
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Selectivity != selMin {
			t.Fatalf("explicit zero selectivity = %g, want SelMin %g", qr.Selectivity, selMin)
		}
	}
}

func TestHTTPBatch(t *testing.T) {
	srv, ts := newHTTPServer(t)
	resp, body := postBody(t, ts.URL+"/v1/batch",
		`[{"tenant":"a","template":"Q6","selectivity":0.0096},
		  {"tenant":"b","template":"Q999"},
		  {"tenant":"a","template":"Q1"}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var items []server.BatchResponseItem
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3", len(items))
	}
	if items[0].Response == nil || items[0].Response.Template != "Q6" {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[1].Error == "" || items[1].Response != nil {
		t.Errorf("item 1 = %+v, want per-item error", items[1])
	}
	if items[2].Response == nil || items[2].Response.Template != "Q1" {
		t.Errorf("item 2 = %+v", items[2])
	}
	st := srv.Stats()
	if st.Queries != 2 || st.Errors != 1 {
		t.Errorf("queries/errors = %d/%d, want 2/1", st.Queries, st.Errors)
	}

	// Malformed batches are whole-request errors.
	for name, body := range map[string]string{
		"empty":                 `[]`,
		"not a list":            `{"template":"Q1"}`,
		"bad budget":            `[{"template":"Q1","budget":{"price_usd":-1,"tmax_s":60}}]`,
		"item missing template": `[{"tenant":"a"}]`,
	} {
		resp, _ := postBody(t, ts.URL+"/v1/batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHTTPStatsPretty: the hot paths answer compact JSON; ?pretty=1
// keeps the human-readable form on the read endpoints.
func TestHTTPStatsPretty(t *testing.T) {
	_, ts := newHTTPServer(t)
	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if compact := get("/v1/stats"); strings.Contains(compact, "\n  ") {
		t.Error("/v1/stats default output is indented")
	}
	if pretty := get("/v1/stats?pretty=1"); !strings.Contains(pretty, "\n  ") {
		t.Error("/v1/stats?pretty=1 output is not indented")
	}
	if _, body := postQuery(t, ts.URL, `{"template":"Q1"}`); bytes.Contains(body, []byte("\n  ")) {
		t.Error("/v1/query response is indented")
	}
}

func TestHTTPAfterShutdown(t *testing.T) {
	srv, ts := newHTTPServer(t)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := postQuery(t, ts.URL, `{"template":"Q1"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown status = %d, body %s", resp.StatusCode, body)
	}
	// Read-only endpoints keep working for post-drain inspection.
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("stats after shutdown = %d", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h server.Health
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !h.Draining {
		t.Error("healthz must report draining")
	}
}
