package wire_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// newWireServer starts an engine plus a binary listener on a loopback
// port, mirroring the HTTP tests' newHTTPServer.
func newWireServer(t *testing.T, shards int) (*server.Server, string) {
	t.Helper()
	cat := catalog.TPCH(20)
	params := scheme.DefaultParams(cat)
	params.RegretFraction = 0.0001
	params.LoadFactor = 0.02
	srv, err := server.New(server.Config{
		Shards: shards,
		Scheme: "econ-cheap",
		Params: params,
		Clock:  server.NewVirtualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- wire.Serve(ln, srv) }()
	t.Cleanup(func() {
		_ = ln.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("wire.Serve: %v", err)
		}
		_ = srv.Shutdown(context.Background())
	})
	return srv, ln.Addr().String()
}

// TestWireQuery is the binary-protocol echo of TestHTTPQuery: one query
// with an explicit budget comes back fully populated.
func TestWireQuery(t *testing.T) {
	_, addr := newWireServer(t, 4)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	replies, err := cl.Submit([]wire.Query{{
		Tenant:         "alice",
		Template:       "Q6",
		Selectivity:    0.0096,
		HasSelectivity: true,
		Budget:         &server.BudgetJSON{Shape: "step", PriceUSD: 0.002, TmaxSec: 3600},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || replies[0].Err != "" {
		t.Fatalf("replies = %+v", replies)
	}
	qr := replies[0].Resp
	if qr.QueryID == 0 {
		t.Error("missing query id")
	}
	if qr.Template != "Q6" {
		t.Errorf("template = %q", qr.Template)
	}
	if qr.Selectivity != 0.0096 {
		t.Errorf("selectivity = %g", qr.Selectivity)
	}
	if qr.Location != "backend" && qr.Location != "cache" {
		t.Errorf("location = %q", qr.Location)
	}
}

// TestWireBatchAndReuse: one connection carries many frames, batches mix
// successes with per-query errors, and the server's counters agree.
func TestWireBatchAndReuse(t *testing.T) {
	srv, addr := newWireServer(t, 4)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const rounds = 10
	var ok, failed int64
	for r := 0; r < rounds; r++ {
		batch := []wire.Query{
			{Tenant: fmt.Sprintf("t%d", r), Template: "Q1"},
			{Tenant: fmt.Sprintf("t%d", r), Template: "Q999"}, // per-item error
			{Tenant: fmt.Sprintf("u%d", r), Template: "Q6"},
		}
		replies, err := cl.Submit(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range replies {
			if replies[i].Err != "" {
				failed++
				if !strings.Contains(replies[i].Err, "unknown template") {
					t.Errorf("round %d item %d: err = %q", r, i, replies[i].Err)
				}
			} else {
				ok++
			}
		}
	}
	if ok != 2*rounds || failed != rounds {
		t.Errorf("ok/failed = %d/%d, want %d/%d", ok, failed, 2*rounds, rounds)
	}
	st := srv.Stats()
	if st.Queries != 2*rounds {
		t.Errorf("server queries = %d, want %d", st.Queries, 2*rounds)
	}
	if st.Errors != rounds {
		t.Errorf("server errors = %d, want %d", st.Errors, rounds)
	}
}

// TestWireConcurrentClients: many connections submit at once (-race).
func TestWireConcurrentClients(t *testing.T) {
	srv, addr := newWireServer(t, 4)
	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			templates := []string{"Q1", "Q3", "Q6", "Q10"}
			for i := 0; i < perClient; i++ {
				replies, err := cl.Submit([]wire.Query{{
					Tenant:   fmt.Sprintf("tenant-%d", (c+i)%7),
					Template: templates[i%len(templates)],
				}})
				if err != nil {
					errs <- err
					return
				}
				if replies[0].Err != "" {
					errs <- fmt.Errorf("reply error: %s", replies[0].Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Queries != clients*perClient {
		t.Errorf("queries = %d, want %d", st.Queries, clients*perClient)
	}
}

// TestWireServerClosed: a drained engine answers with an error frame.
func TestWireServerClosed(t *testing.T) {
	srv, addr := newWireServer(t, 2)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Submit([]wire.Query{{Template: "Q1"}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit([]wire.Query{{Template: "Q1"}})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("post-drain submit: err = %v, want server-closed error", err)
	}
}

// TestWireGarbageFrame: a protocol violation gets an error frame and the
// connection is dropped without hurting the server.
func TestWireGarbageFrame(t *testing.T) {
	srv, addr := newWireServer(t, 2)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A framed payload that is not a query batch.
	if err := wire.WriteFrame(conn, []byte{0x7F, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeReplyBatch(payload, nil); err == nil || !strings.Contains(err.Error(), "server error") {
		t.Errorf("garbage frame answered with %v, want a server-error payload", err)
	}
	// The server still serves fresh connections.
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Submit([]wire.Query{{Template: "Q6"}}); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Queries != 1 {
		t.Errorf("queries = %d, want 1", st.Queries)
	}
}
