package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/server"
)

func TestQueryBatchRoundTrip(t *testing.T) {
	sel := 0.0096
	in := []Query{
		{Tenant: "alice", Template: "Q6", Selectivity: sel, HasSelectivity: true,
			Budget: &server.BudgetJSON{Shape: "step", PriceUSD: 0.002, TmaxSec: 3600}},
		{Template: "Q1"}, // no tenant, no selectivity, no budget
		{Tenant: "bob", Template: "Q18", Selectivity: 0, HasSelectivity: true,
			Budget: &server.BudgetJSON{Shape: "concave", PriceUSD: 1.5, TmaxSec: 60, K: 3}},
	}
	payload, err := AppendQueryBatch(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeQueryBatch(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip diverged:\nin  %+v\nout %+v", in, out)
	}
	// An explicit zero selectivity survives the trip.
	if !out[2].HasSelectivity || out[2].Selectivity != 0 {
		t.Errorf("explicit zero selectivity lost: %+v", out[2])
	}
}

// TestNonZeroSelectivityWithoutFlag: per server.Request's contract a
// non-zero selectivity is explicit even without HasSelectivity, so the
// codec must carry it (normalized to the flagged form), not drop it.
func TestNonZeroSelectivityWithoutFlag(t *testing.T) {
	payload, err := AppendQueryBatch(nil, []Query{{Template: "Q6", Selectivity: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeQueryBatch(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].HasSelectivity || out[0].Selectivity != 0.5 {
		t.Errorf("unflagged non-zero selectivity lost: %+v", out[0])
	}
}

func TestReplyBatchRoundTrip(t *testing.T) {
	in := []Reply{
		{Resp: server.Response{
			QueryID: 42, Shard: 3, Template: "Q6", Selectivity: 0.004,
			ArrivalSec: 12.5, Declined: false, Location: "cache",
			ResponseTimeSec: 0.25, ChargedUSD: 0.002, ProfitUSD: 0.0005,
			Investments: 2, Failures: 1,
		}},
		{Err: "server: unknown template \"Q999\""},
		{Resp: server.Response{QueryID: 43, Declined: true, Location: "none"}},
	}
	payload := AppendReplyBatch(nil, in)
	out, err := DecodeReplyBatch(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip diverged:\nin  %+v\nout %+v", in, out)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	good, err := AppendQueryBatch(nil, []Query{{Template: "Q1"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"wrong type":     {99, 1},
		"truncated":      good[:len(good)-1],
		"trailing":       append(append([]byte{}, good...), 0xFF),
		"zero batch":     {msgQueryBatch, 0},
		"oversize":       {msgQueryBatch, 0xFF, 0xFF, 0xFF, 0x7F},
		"bad shape":      {msgQueryBatch, 1, 0, 2, 'Q', '1', flagBudget, 9},
		"string overrun": {msgQueryBatch, 1, 200},
	}
	for name, payload := range cases {
		if _, err := DecodeQueryBatch(payload, nil); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeReplyBatch([]byte{}, nil); err == nil {
		t.Error("empty reply payload decoded")
	}
	if _, err := DecodeReplyBatch([]byte{msgReplyBatch, 1, 7}, nil); err == nil {
		t.Error("bad reply status decoded")
	}
}

func TestErrorPayload(t *testing.T) {
	payload := appendErrorPayload(nil, "server: closed")
	if _, err := DecodeReplyBatch(payload, nil); err == nil || err.Error() != "wire: server error: server: closed" {
		t.Errorf("error payload decoded to %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1}, bytes.Repeat([]byte{0xAB}, 1000), {3, 2, 1}}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var reuse []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, reuse)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %v, want %v", got, want)
		}
		reuse = got[:0]
	}
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Error("read past last frame succeeded")
	}

	// Corrupt length prefixes are rejected, not allocated.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0}), nil); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{5, 0, 0, 0, 1, 2}), nil); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestBatchSizeLimits(t *testing.T) {
	if _, err := AppendQueryBatch(nil, nil); err == nil {
		t.Error("empty batch encoded")
	}
	big := make([]Query, MaxBatch+1)
	for i := range big {
		big[i].Template = "Q1"
	}
	if _, err := AppendQueryBatch(nil, big); err == nil {
		t.Error("oversized batch encoded")
	}
}
