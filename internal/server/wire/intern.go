package wire

// maxInterned caps one connection's intern table. Real workloads carry a
// small, closed set of tenant and template names, so the cap only
// matters against a hostile client minting fresh names to grow server
// memory; past the cap new names fall back to plain per-query strings.
const maxInterned = 4096

// interner deduplicates the tenant/template strings a connection decodes
// so a steady workload allocates each distinct name once, not once per
// query. The map lookup keyed by string(b) does not allocate (the
// compiler elides the conversion for map index expressions), so a hit
// costs zero heap. A nil *interner degrades to plain allocation —
// decode paths that cannot reuse anything just pass nil.
//
// Not safe for concurrent use: each connection's read loop owns its own.
type interner struct {
	m map[string]string
}

// intern returns the canonical string for b, allocating it at most once
// per connection (until the cap, after which it behaves like string(b)).
func (in *interner) intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.m) < maxInterned {
		if in.m == nil {
			in.m = make(map[string]string, 16)
		}
		in.m[s] = s
	}
	return s
}
