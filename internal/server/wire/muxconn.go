package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// maxStatsSubs bounds the concurrent stats subscriptions one connection
// may hold open: each costs a goroutine, and a hostile client must not
// be able to mint unbounded ones.
const maxStatsSubs = 16

// minStatsInterval floors a subscription's push cadence so a hostile
// 1 ns interval cannot turn the stats path into a busy loop.
const minStatsInterval = time.Millisecond

// muxConn is one v2 (multiplexed) server connection: a read loop that
// dispatches tagged frames without waiting for prior batches, a single
// writer goroutine that serializes every outbound frame (completions
// arrive on shard goroutines, stats pushes on subscription goroutines),
// and the bookkeeping tying them together.
type muxConn struct {
	eng  Engine
	conn net.Conn
	bw   *bufio.Writer

	// qmu guards the outbound frame queue; cond wakes the writer. send
	// never blocks, so shard-loop completion callbacks never stall on a
	// slow client — the queue is bounded in practice by the client's own
	// in-flight window.
	qmu      sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	stopping bool

	// free recycles spent payload buffers back to reply encoders, and
	// spare recycles the queue's own backing array across writer drains,
	// so a steady pipelined load enqueues frames without allocating.
	// Both guarded by qmu.
	free  [][]byte
	spare [][]byte

	// inflight counts batches handed to SubmitBatchAsync whose
	// completions have not yet enqueued their reply frame; connection
	// teardown waits for it so no completion touches a freed writer.
	inflight sync.WaitGroup

	// subs maps subscription tags to their stop channels.
	subs   map[uint64]chan struct{}
	subsWG sync.WaitGroup
}

// serveMux runs one v2 connection. The client's hello has already been
// read (that is how the listener knew to come here); everything else —
// including the hello reply — goes through the writer.
func serveMux(conn net.Conn, br *bufio.Reader, hello []byte, eng Engine) {
	version, err := DecodeHello(hello)
	if err != nil || version < ProtocolV2 {
		if err == nil {
			err = fmt.Errorf("wire: unsupported protocol version %d (server speaks %d)", version, ProtocolV2)
		}
		bw := bufio.NewWriter(conn)
		if werr := WriteFrame(bw, appendErrorPayload(nil, err.Error())); werr == nil {
			_ = bw.Flush()
		}
		conn.Close()
		return
	}

	c := &muxConn{
		eng:  eng,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		subs: make(map[uint64]chan struct{}),
	}
	c.cond = sync.NewCond(&c.qmu)

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()
	c.send(AppendHello(nil, ProtocolV2))

	c.readLoop(br)

	// Teardown order matters: stop the subscription tickers, wait out
	// in-flight batch completions (the shard loops always answer, so this
	// terminates), then let the writer drain whatever they enqueued and
	// exit. Writes to a dead peer fail silently inside the writer.
	c.stopAllSubs()
	c.subsWG.Wait()
	c.inflight.Wait()
	c.qmu.Lock()
	c.stopping = true
	c.qmu.Unlock()
	c.cond.Signal()
	<-writerDone
	conn.Close()
}

// send enqueues one encoded payload for the writer goroutine. Never
// blocks; safe from any goroutine.
func (c *muxConn) send(payload []byte) {
	c.qmu.Lock()
	if c.queue == nil && c.spare != nil {
		c.queue, c.spare = c.spare, nil
	}
	c.queue = append(c.queue, payload)
	c.qmu.Unlock()
	c.cond.Signal()
}

// maxFreeBufs bounds the recycled-payload free list; maxFreeBufCap keeps
// one oversized frame (a fat stats push, a shard-state packet) from
// pinning megabytes in the pool.
const (
	maxFreeBufs   = 64
	maxFreeBufCap = 1 << 20
)

// getBuf returns a recycled payload buffer (length 0) for an encoder to
// append into, or nil when the free list is empty — append grows nil
// fine. The buffer returns to the free list after the writer sends it.
func (c *muxConn) getBuf() []byte {
	c.qmu.Lock()
	var b []byte
	if n := len(c.free); n > 0 {
		b = c.free[n-1][:0]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	}
	c.qmu.Unlock()
	return b
}

// recycle returns a drained queue batch to the pools: the payload
// buffers feed getBuf, the backing array becomes the next queue slice.
func (c *muxConn) recycle(batch [][]byte) {
	c.qmu.Lock()
	for i, p := range batch {
		if len(c.free) < maxFreeBufs && cap(p) <= maxFreeBufCap {
			c.free = append(c.free, p[:0])
		}
		batch[i] = nil
	}
	if c.spare == nil {
		c.spare = batch[:0]
	}
	c.qmu.Unlock()
}

// writeLoop serializes all outbound frames. Each wakeup drains the whole
// queue into the buffered writer and flushes once — under pipelining
// pressure many reply frames share one syscall. A write error marks the
// connection dead AND closes it: a dropped frame poisons the multiplexed
// stream (its tag would wait forever on the client), so the read loop
// must observe the close and tear the connection down rather than leave
// the peer hanging. The loop keeps draining (and discarding) so senders
// are never stuck, and exits when the conn is torn down.
func (c *muxConn) writeLoop() {
	var dead bool
	for {
		c.qmu.Lock()
		for len(c.queue) == 0 && !c.stopping {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.stopping {
			c.qmu.Unlock()
			return
		}
		batch := c.queue
		c.queue = nil
		c.qmu.Unlock()

		if dead {
			continue
		}
		for _, p := range batch {
			if err := WriteFrame(c.bw, p); err != nil {
				dead = true
				break
			}
		}
		if !dead && c.bw.Flush() != nil {
			dead = true
		}
		if dead {
			c.conn.Close()
		}
		c.recycle(batch)
	}
}

// readLoop accepts frames until the client goes away or commits an
// unscopable protocol violation. Tagged failures — a bad batch body, a
// drained server, one subscription too many — answer a tagged error and
// keep the connection; only unparseable framing kills it.
func (c *muxConn) readLoop(br *bufio.Reader) {
	ctx := context.Background()
	var rbuf []byte
	var queries []Query
	var names interner
	for {
		payload, err := ReadFrame(br, rbuf)
		if err != nil {
			return
		}
		rbuf = payload[:0]

		switch {
		case len(payload) > 0 && payload[0] == msgTaggedQueryBatch:
			// Stage timing is paid only while tracing is live: one clock
			// read pair per BATCH, amortized over its queries.
			traceOn := c.eng.TraceEnabled()
			var decStart time.Time
			if traceOn {
				decStart = time.Now()
			}
			// The tag is parsed first so any body error can be scoped to
			// it; only an unparseable tag kills the connection.
			tag, rest, terr := consumeUvarint(payload[1:])
			if terr != nil {
				c.send(appendErrorPayload(nil, terr.Error()))
				return
			}
			queries, err = consumeQueryItemsInterned(rest, queries, &names)
			if err != nil {
				c.send(AppendTaggedError(nil, tag, err.Error()))
				continue
			}
			var decodeNanos int64
			if traceOn {
				decodeNanos = time.Since(decStart).Nanoseconds()
			}
			// The engine owns the batch until the completion fires, so it
			// gets its own slice — the next frame reuses the read buffer.
			batch := make([]Query, len(queries))
			copy(batch, queries)
			c.inflight.Add(1)
			t := tag
			err := c.eng.SubmitBatchAsync(ctx, batch, decodeNanos, func(replies []Reply) {
				defer c.inflight.Done()
				var encStart time.Time
				if traceOn {
					encStart = time.Now()
				}
				frame := AppendTaggedReplyBatch(c.getBuf(), t, replies)
				if traceOn {
					// Back-fill the encode stage into the sampled records:
					// the shard published them before the reply bytes
					// existed.
					c.eng.BackfillEncode(replies, time.Since(encStart).Nanoseconds())
				}
				c.send(frame)
			})
			if err != nil {
				// ErrServerClosed during drain — or a malformed budget in the
				// batch body: this batch fails, the connection survives to
				// serve the client's other tags.
				c.inflight.Done()
				c.send(AppendTaggedError(nil, tag, err.Error()))
			}

		case len(payload) > 0 && payload[0] == msgStatsSubscribe:
			tag, intervalSec, err := DecodeStatsSubscribe(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			c.startSub(tag, intervalSec)

		case len(payload) > 0 && payload[0] == msgStatsUnsubscribe:
			tag, err := DecodeStatsUnsubscribe(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			c.stopSub(tag)

		case len(payload) > 0 && payload[0] == msgTraceRequest:
			tag, tenant, template, n, err := DecodeTraceRequest(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			if n > MaxBatch {
				n = MaxBatch
			}
			frame, err := AppendTracePush(nil, tag, c.eng.TraceViewSnapshot(tenant, template, int(n)))
			if err != nil {
				c.send(AppendTaggedError(nil, tag, err.Error()))
				continue
			}
			c.send(frame)

		case len(payload) > 0 && payload[0] == msgEventsRequest:
			tag, typ, tenant, n, err := DecodeEventsRequest(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			if n > MaxBatch {
				n = MaxBatch
			}
			frame, err := AppendEventsPush(nil, tag, c.eng.EventsViewSnapshot(typ, tenant, int(n)))
			if err != nil {
				c.send(AppendTaggedError(nil, tag, err.Error()))
				continue
			}
			c.send(frame)

		case len(payload) > 0 && payload[0] == msgEventsSubscribe:
			tag, intervalSec, err := DecodeEventsSubscribe(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			c.startEventsSub(tag, intervalSec)

		case len(payload) > 0 && payload[0] == msgEventsUnsubscribe:
			tag, err := DecodeEventsUnsubscribe(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			c.stopSub(tag)

		case IsSnapshotRequest(payload):
			// The v1 admin checkpoint works under v2 too: the reply is
			// untagged, but the requester knows what it asked for.
			path, size, err := c.eng.Checkpoint()
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
			} else {
				c.send(AppendSnapshotReply(nil, path, size))
			}

		// Shard checkpoint-transfer admin: every failure is scoped to the
		// requesting tag — a refused migration step must never take down
		// the connection carrying the cluster's control plane.
		case len(payload) > 0 && payload[0] == msgShardFreeze:
			tag, shard, err := DecodeShardFreeze(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			if err := c.eng.FreezeShard(shard); err != nil {
				c.send(AppendTaggedError(nil, tag, err.Error()))
			} else {
				c.send(AppendShardAck(nil, tag, shard))
			}

		case len(payload) > 0 && payload[0] == msgShardExtract:
			tag, shard, err := DecodeShardExtract(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			packet, err := c.eng.ExtractShardPacket(shard)
			if err != nil {
				c.send(AppendTaggedError(nil, tag, err.Error()))
			} else {
				c.send(AppendShardState(nil, tag, shard, packet))
			}

		case len(payload) > 0 && payload[0] == msgShardInstall:
			tag, shard, packet, err := DecodeShardInstall(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			if err := c.eng.InstallShardPacket(shard, packet); err != nil {
				c.send(AppendTaggedError(nil, tag, err.Error()))
			} else {
				c.send(AppendShardAck(nil, tag, shard))
			}

		case len(payload) > 0 && payload[0] == msgOwnersRequest:
			tag, err := DecodeOwnersRequest(payload)
			if err != nil {
				c.send(appendErrorPayload(nil, err.Error()))
				return
			}
			c.send(AppendOwnersReply(nil, tag, c.eng.OwnedShards()))

		default:
			c.send(appendErrorPayload(nil, fmt.Sprintf("wire: unexpected v2 message type %d", firstByte(payload))))
			return
		}
	}
}

func firstByte(p []byte) byte {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// startSub opens one stats subscription: an immediate push, then one
// every interval. A non-positive (or non-finite) interval is the
// one-shot form — push once, auto-close. Subscribing an active tag or
// exceeding the per-connection cap answers a tagged error.
func (c *muxConn) startSub(tag uint64, intervalSec float64) {
	interval := time.Duration(0)
	if intervalSec > 0 { // NaN compares false: one-shot
		interval = time.Duration(intervalSec * float64(time.Second))
		if interval < minStatsInterval {
			interval = minStatsInterval
		}
	}
	c.qmu.Lock()
	if _, dup := c.subs[tag]; dup {
		c.qmu.Unlock()
		c.send(AppendTaggedError(nil, tag, "wire: stats subscription tag already active"))
		return
	}
	if interval > 0 && len(c.subs) >= maxStatsSubs {
		c.qmu.Unlock()
		c.send(AppendTaggedError(nil, tag, fmt.Sprintf("wire: too many stats subscriptions (max %d)", maxStatsSubs)))
		return
	}
	var stop chan struct{}
	if interval > 0 {
		stop = make(chan struct{})
		c.subs[tag] = stop
	}
	c.qmu.Unlock()

	c.pushStats(tag)
	if interval == 0 {
		return
	}
	c.subsWG.Add(1)
	go func() {
		defer c.subsWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.pushStats(tag)
			case <-stop:
				return
			}
		}
	}()
}

// pushStats snapshots the engine and enqueues one tagged push frame.
func (c *muxConn) pushStats(tag uint64) {
	payload, err := AppendStatsPush(nil, tag, c.eng.Stats())
	if err != nil {
		c.send(AppendTaggedError(nil, tag, err.Error()))
		return
	}
	c.send(payload)
}

// startEventsSub opens one economy-events subscription: an immediate
// installment of everything the journals buffer, then every interval
// only the events the subscription has not yet seen (cursored by
// journal sequence number). A non-positive interval is the one-shot
// form. Events subscriptions share the stats subscriptions' tag space
// and per-connection cap.
func (c *muxConn) startEventsSub(tag uint64, intervalSec float64) {
	interval := time.Duration(0)
	if intervalSec > 0 { // NaN compares false: one-shot
		interval = time.Duration(intervalSec * float64(time.Second))
		if interval < minStatsInterval {
			interval = minStatsInterval
		}
	}
	c.qmu.Lock()
	if _, dup := c.subs[tag]; dup {
		c.qmu.Unlock()
		c.send(AppendTaggedError(nil, tag, "wire: subscription tag already active"))
		return
	}
	if interval > 0 && len(c.subs) >= maxStatsSubs {
		c.qmu.Unlock()
		c.send(AppendTaggedError(nil, tag, fmt.Sprintf("wire: too many subscriptions (max %d)", maxStatsSubs)))
		return
	}
	var stop chan struct{}
	if interval > 0 {
		stop = make(chan struct{})
		c.subs[tag] = stop
	}
	c.qmu.Unlock()

	cursor := c.pushEvents(tag, 0)
	if interval == 0 {
		return
	}
	c.subsWG.Add(1)
	go func() {
		defer c.subsWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cursor = c.pushEvents(tag, cursor)
			case <-stop:
				return
			}
		}
	}()
}

// pushEvents enqueues one cursored events installment and returns the
// advanced cursor.
func (c *muxConn) pushEvents(tag uint64, since int64) int64 {
	view, cursor := c.eng.EventsViewSince(since)
	payload, err := AppendEventsPush(nil, tag, view)
	if err != nil {
		c.send(AppendTaggedError(nil, tag, err.Error()))
		return cursor
	}
	c.send(payload)
	return cursor
}

// stopSub ends one subscription; unknown tags are a no-op (the stream
// may have been one-shot, or already closed).
func (c *muxConn) stopSub(tag uint64) {
	c.qmu.Lock()
	stop, ok := c.subs[tag]
	if ok {
		delete(c.subs, tag)
	}
	c.qmu.Unlock()
	if ok {
		close(stop)
	}
}

// stopAllSubs ends every subscription at connection teardown.
func (c *muxConn) stopAllSubs() {
	c.qmu.Lock()
	subs := c.subs
	c.subs = make(map[uint64]chan struct{})
	c.qmu.Unlock()
	for _, stop := range subs {
		close(stop)
	}
}
