package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"

	"repro/internal/server"
)

// transientAcceptError reports whether an Accept failure is worth
// retrying with backoff rather than taking the front down. The
// deprecated net.Error.Temporary() used to make this call; the explicit
// list names what it actually meant here — resource exhaustion under
// connection load (fd limits, buffer pressure) and races where the peer
// reset before accept completed.
func transientAcceptError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.ENOMEM)
}

// Serve accepts connections on l and speaks the binary protocol against
// srv until l is closed (the caller's shutdown signal) or srv drains.
func Serve(l net.Listener, srv *server.Server) error {
	return ServeEngine(l, ServerEngine(srv))
}

// ServeEngine accepts connections on l and speaks the binary protocol
// against eng until l is closed (the caller's shutdown signal). Each
// connection gets its own goroutine; the first frame the client sends
// selects the generation — a hello frame opens the multiplexed v2
// protocol (tagged frames, out-of-order completion, streaming stats),
// anything else is served as lockstep v1, so existing clients keep
// working unchanged. Transient accept failures (fd exhaustion under
// connection load, peer resets inside the accept queue) are retried
// with exponential backoff, like net/http's Serve, so a busy front does
// not take the whole daemon down.
func ServeEngine(l net.Listener, eng Engine) error {
	var delay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if transientAcceptError(err) {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		go serveConn(conn, eng)
	}
}

// serveConn reads one connection's first frame and dispatches: hello →
// the multiplexed v2 loop, anything else → the lockstep v1 loop with
// that first payload replayed.
func serveConn(conn net.Conn, eng Engine) {
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := ReadFrame(br, nil)
	if err != nil {
		conn.Close()
		return
	}
	if IsHello(first) {
		serveMux(conn, br, first, eng)
		return
	}
	serveLockstep(conn, br, first, eng)
}

// serveLockstep runs one v1 connection's frame loop. Any protocol
// violation answers with a msgError frame and drops the connection; a
// drained server answers ErrServerClosed the same way. Accepted batches
// are always fully answered before the next frame is read.
func serveLockstep(conn net.Conn, br *bufio.Reader, first []byte, eng Engine) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)

	var (
		rbuf    []byte
		wbuf    []byte
		queries []Query
		names   interner
	)
	fail := func(err error) {
		wbuf = appendErrorPayload(wbuf[:0], err.Error())
		if werr := WriteFrame(bw, wbuf); werr == nil {
			_ = bw.Flush()
		}
	}
	next := first
	for {
		var err error
		if next == nil {
			next, err = ReadFrame(br, rbuf)
			if err != nil {
				// io.EOF (clean close) and dead-conn read errors both just
				// end the loop; there is no one left to tell.
				return
			}
		}
		payload := next
		next = nil
		rbuf = payload[:0]

		// Admin snapshot requests trigger an on-demand checkpoint. A
		// failure (no state path configured, disk trouble) answers with
		// an error frame but keeps the connection: the client asked for
		// an action, not a protocol exchange, and may retry or move on.
		if IsSnapshotRequest(payload) {
			path, size, err := eng.Checkpoint()
			if err != nil {
				wbuf = appendErrorPayload(wbuf[:0], err.Error())
			} else {
				wbuf = AppendSnapshotReply(wbuf[:0], path, size)
			}
			if err := WriteFrame(bw, wbuf); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}

		// Stats requests share the connection with query traffic: answer
		// the snapshot and keep framing.
		if IsStatsRequest(payload) {
			wbuf, err = AppendStats(wbuf[:0], eng.Stats())
			if err != nil {
				fail(err)
				return
			}
			if err := WriteFrame(bw, wbuf); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}

		// Stage timing is paid only while tracing is live: two clock reads
		// per BATCH, amortized over its queries.
		traceOn := eng.TraceEnabled()
		var decStart time.Time
		if traceOn {
			decStart = time.Now()
		}
		queries, err = decodeQueryBatchInterned(payload, queries, &names)
		if err != nil {
			fail(err)
			return
		}
		var decodeNanos int64
		if traceOn {
			decodeNanos = time.Since(decStart).Nanoseconds()
		}

		replies, err := eng.SubmitBatch(context.Background(), queries, decodeNanos)
		if err != nil {
			fail(err)
			return
		}
		var encStart time.Time
		if traceOn {
			encStart = time.Now()
		}
		wbuf = AppendReplyBatch(wbuf[:0], replies)
		if traceOn {
			// Back-fill the encode stage into the sampled records: the shard
			// published them before the reply bytes existed.
			eng.BackfillEncode(replies, time.Since(encStart).Nanoseconds())
		}
		if err := WriteFrame(bw, wbuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Client is one reusable client connection. It is not safe for
// concurrent use: open one Client per submitting goroutine, exactly like
// one would pool HTTP connections.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	rbuf    []byte
	wbuf    []byte
	replies []Reply
}

// Dial connects to a binary-protocol listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Submit sends one query batch and reads the positional replies. The
// returned slice is reused by the next Submit; copy anything kept.
func (c *Client) Submit(qs []Query) ([]Reply, error) {
	var err error
	c.wbuf, err = AppendQueryBatch(c.wbuf[:0], qs)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c.bw, c.wbuf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = payload[:0]
	c.replies, err = DecodeReplyBatch(payload, c.replies)
	if err != nil {
		return nil, err
	}
	if len(c.replies) != len(qs) {
		return nil, fmt.Errorf("wire: %d replies for %d queries", len(c.replies), len(qs))
	}
	return c.replies, nil
}

// Snapshot asks the daemon to persist its economy state to the
// configured state path right now — the wire protocol's admin
// checkpoint. It returns where the snapshot landed and its encoded
// size; a daemon running without a state path answers an error.
func (c *Client) Snapshot() (path string, size int64, err error) {
	c.wbuf = AppendSnapshotRequest(c.wbuf[:0])
	if err := WriteFrame(c.bw, c.wbuf); err != nil {
		return "", 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return "", 0, err
	}
	payload, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return "", 0, err
	}
	c.rbuf = payload[:0]
	return DecodeSnapshotReply(payload)
}

// Stats requests the live engine snapshot over the wire — the binary
// front's answer to GET /v1/stats, including the merged per-tenant
// ledgers.
func (c *Client) Stats() (server.Stats, error) {
	c.wbuf = AppendStatsRequest(c.wbuf[:0])
	if err := WriteFrame(c.bw, c.wbuf); err != nil {
		return server.Stats{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return server.Stats{}, err
	}
	payload, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return server.Stats{}, err
	}
	c.rbuf = payload[:0]
	return DecodeStats(payload)
}
