package wire

import (
	"bytes"
	"testing"

	"repro/internal/server"
)

// fuzzSeeds returns valid payloads for every frame type, so the fuzzer
// starts from deep inside the grammar instead of rediscovering it.
func fuzzSeeds(t testing.TB) [][]byte {
	sel := 0.0096
	queries := []Query{
		{Tenant: "alice", Template: "Q6", Selectivity: sel, HasSelectivity: true},
		{Template: "Q1", Budget: &server.BudgetJSON{Shape: "linear", PriceUSD: 0.01, TmaxSec: 60, K: 2}},
		{Tenant: "bob", Template: "Q3"},
	}
	qb, err := AppendQueryBatch(nil, queries)
	if err != nil {
		t.Fatal(err)
	}
	rb := AppendReplyBatch(nil, []Reply{
		{Resp: server.Response{QueryID: 7, Shard: 2, Template: "Q6", Selectivity: sel,
			ArrivalSec: 1.5, Location: "cache", ResponseTimeSec: 0.25, ChargedUSD: 0.002}},
		{Err: "unknown template \"Q99\""},
	})
	st, err := AppendStats(nil, server.Stats{Scheme: "econ-cheap", Shards: 4, Queries: 10})
	if err != nil {
		t.Fatal(err)
	}
	tqb, err := AppendTaggedQueryBatch(nil, 42, queries)
	if err != nil {
		t.Fatal(err)
	}
	trb := AppendTaggedReplyBatch(nil, 42, []Reply{
		{Resp: server.Response{QueryID: 9, Shard: 1, Template: "Q3", Location: "backend"}},
		{Err: "server: closed"},
	})
	sp, err := AppendStatsPush(nil, 5, server.Stats{Scheme: "econ-cheap", Shards: 4, Queries: 10})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := AppendTracePush(nil, 6, server.TraceView{SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := AppendEventsPush(nil, 7, server.EventsView{})
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		qb,
		rb,
		st,
		AppendStatsRequest(nil),
		AppendSnapshotRequest(nil),
		AppendSnapshotReply(nil, "/tmp/state/econ.snap", 123456),
		appendErrorPayload(nil, "server: closed"),
		// Protocol v2: tagged frames and the stats stream.
		AppendHello(nil, ProtocolV2),
		tqb,
		trb,
		AppendTaggedError(nil, 42, "wire: batch refused"),
		AppendStatsSubscribe(nil, 5, 0.25),
		AppendStatsUnsubscribe(nil, 5),
		sp,
		// Observability frames: trace and events.
		AppendTraceRequest(nil, 6, "alice", "Q6", 128),
		tp,
		AppendEventsRequest(nil, 7, "invest", "alice", 64),
		ep,
		AppendEventsSubscribe(nil, 7, 0.5),
		AppendEventsUnsubscribe(nil, 7),
		// Shard checkpoint-transfer admin frames. The packet bytes are an
		// arbitrary opaque blob at this layer (persist validates them), so
		// the seeds carry a stand-in.
		AppendShardFreeze(nil, 8, 3),
		AppendShardExtract(nil, 8, 3),
		AppendShardState(nil, 8, 3, []byte("CCSHRD-packet-stand-in")),
		AppendShardInstall(nil, 8, 3, []byte("CCSHRD-packet-stand-in")),
		AppendShardAck(nil, 8, 3),
		AppendOwnersRequest(nil, 9),
		AppendOwnersReply(nil, 9, []bool{true, false, true, true}),
	}
}

// FuzzWireDecode feeds arbitrary bytes to every payload decoder and the
// frame reader. The decoders must never panic — a malicious or corrupt
// client frame must never take the daemon down — and anything that does
// decode must survive an encode/decode round trip unchanged.
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Truncations of valid payloads probe every mid-field error path.
		if len(seed) > 2 {
			f.Add(seed[:len(seed)/2])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trips are compared as re-encoded BYTES, not values:
		// arbitrary inputs can carry NaN floats, which decode fine but
		// never compare equal to themselves.
		if qs, err := DecodeQueryBatch(data, nil); err == nil {
			enc, err := AppendQueryBatch(nil, qs)
			if err == nil {
				qs2, err := DecodeQueryBatch(enc, nil)
				if err != nil {
					t.Fatalf("re-decode of re-encoded query batch failed: %v", err)
				}
				enc2, err := AppendQueryBatch(nil, qs2)
				if err != nil || !bytes.Equal(enc, enc2) {
					t.Fatalf("query batch round trip diverged (%v):\n%x\n%x", err, enc, enc2)
				}
			}
		}
		if rs, err := DecodeReplyBatch(data, nil); err == nil && len(rs) != 0 {
			enc := AppendReplyBatch(nil, rs)
			rs2, err := DecodeReplyBatch(enc, nil)
			if err != nil {
				t.Fatalf("re-decode of re-encoded reply batch failed: %v", err)
			}
			if enc2 := AppendReplyBatch(nil, rs2); !bytes.Equal(enc, enc2) {
				t.Fatalf("reply batch round trip diverged:\n%x\n%x", enc, enc2)
			}
		}
		_, _ = DecodeStats(data)
		_, _, _ = DecodeSnapshotReply(data)

		// Protocol v2 decoders: same never-panic, byte-stable-round-trip
		// contract as the v1 set.
		_, _ = DecodeHello(data)
		if tag, qs, err := DecodeTaggedQueryBatch(data, nil); err == nil {
			enc, err := AppendTaggedQueryBatch(nil, tag, qs)
			if err == nil {
				tag2, qs2, err := DecodeTaggedQueryBatch(enc, nil)
				if err != nil || tag2 != tag {
					t.Fatalf("tagged query batch re-decode: tag %d→%d, err %v", tag, tag2, err)
				}
				enc2, err := AppendTaggedQueryBatch(nil, tag2, qs2)
				if err != nil || !bytes.Equal(enc, enc2) {
					t.Fatalf("tagged query batch round trip diverged (%v):\n%x\n%x", err, enc, enc2)
				}
			}
		}
		if tag, rs, err := DecodeTaggedReplyBatch(data, nil); err == nil && len(rs) != 0 {
			enc := AppendTaggedReplyBatch(nil, tag, rs)
			tag2, rs2, err := DecodeTaggedReplyBatch(enc, nil)
			if err != nil || tag2 != tag {
				t.Fatalf("tagged reply batch re-decode: tag %d→%d, err %v", tag, tag2, err)
			}
			if enc2 := AppendTaggedReplyBatch(nil, tag2, rs2); !bytes.Equal(enc, enc2) {
				t.Fatalf("tagged reply batch round trip diverged:\n%x\n%x", enc, enc2)
			}
		}
		if tag, msg, err := DecodeTaggedError(data); err == nil {
			enc := AppendTaggedError(nil, tag, msg)
			if tag2, msg2, err := DecodeTaggedError(enc); err != nil || tag2 != tag || msg2 != msg {
				t.Fatalf("tagged error round trip: (%d,%q)→(%d,%q), err %v", tag, msg, tag2, msg2, err)
			}
		}
		if tag, interval, err := DecodeStatsSubscribe(data); err == nil {
			enc := AppendStatsSubscribe(nil, tag, interval)
			if tag2, _, err := DecodeStatsSubscribe(enc); err != nil || tag2 != tag {
				// interval is compared as bytes, not values: NaN survives
				// the trip but never equals itself.
				t.Fatalf("stats subscribe round trip: tag %d→%d, err %v", tag, tag2, err)
			}
			if !bytes.Equal(enc, AppendStatsSubscribe(nil, tag, interval)) {
				t.Fatal("stats subscribe encoding unstable")
			}
		}
		if tag, err := DecodeStatsUnsubscribe(data); err == nil {
			enc := AppendStatsUnsubscribe(nil, tag)
			if tag2, err := DecodeStatsUnsubscribe(enc); err != nil || tag2 != tag {
				t.Fatalf("stats unsubscribe round trip: tag %d→%d, err %v", tag, tag2, err)
			}
		}
		_, _, _ = DecodeStatsPush(data)

		// Observability decoders: same contract.
		if tag, tenant, template, n, err := DecodeTraceRequest(data); err == nil {
			enc := AppendTraceRequest(nil, tag, tenant, template, n)
			tag2, tenant2, template2, n2, err := DecodeTraceRequest(enc)
			if err != nil || tag2 != tag || tenant2 != tenant || template2 != template || n2 != n {
				t.Fatalf("trace request round trip diverged: err %v", err)
			}
		}
		if tag, typ, tenant, n, err := DecodeEventsRequest(data); err == nil {
			enc := AppendEventsRequest(nil, tag, typ, tenant, n)
			tag2, typ2, tenant2, n2, err := DecodeEventsRequest(enc)
			if err != nil || tag2 != tag || typ2 != typ || tenant2 != tenant || n2 != n {
				t.Fatalf("events request round trip diverged: err %v", err)
			}
		}
		if tag, interval, err := DecodeEventsSubscribe(data); err == nil {
			enc := AppendEventsSubscribe(nil, tag, interval)
			if tag2, _, err := DecodeEventsSubscribe(enc); err != nil || tag2 != tag {
				t.Fatalf("events subscribe round trip: tag %d→%d, err %v", tag, tag2, err)
			}
			if !bytes.Equal(enc, AppendEventsSubscribe(nil, tag, interval)) {
				t.Fatal("events subscribe encoding unstable")
			}
		}
		if tag, err := DecodeEventsUnsubscribe(data); err == nil {
			enc := AppendEventsUnsubscribe(nil, tag)
			if tag2, err := DecodeEventsUnsubscribe(enc); err != nil || tag2 != tag {
				t.Fatalf("events unsubscribe round trip: tag %d→%d, err %v", tag, tag2, err)
			}
		}
		_, _, _ = DecodeTracePush(data)
		_, _, _ = DecodeEventsPush(data)

		// Shard-admin decoders: same never-panic, byte-stable-round-trip
		// contract as every other frame.
		if tag, shard, err := DecodeShardFreeze(data); err == nil {
			enc := AppendShardFreeze(nil, tag, shard)
			if tag2, shard2, err := DecodeShardFreeze(enc); err != nil || tag2 != tag || shard2 != shard {
				t.Fatalf("shard freeze round trip: (%d,%d)→(%d,%d), err %v", tag, shard, tag2, shard2, err)
			}
		}
		if tag, shard, err := DecodeShardExtract(data); err == nil {
			enc := AppendShardExtract(nil, tag, shard)
			if tag2, shard2, err := DecodeShardExtract(enc); err != nil || tag2 != tag || shard2 != shard {
				t.Fatalf("shard extract round trip: (%d,%d)→(%d,%d), err %v", tag, shard, tag2, shard2, err)
			}
		}
		if tag, shard, err := DecodeShardAck(data); err == nil {
			enc := AppendShardAck(nil, tag, shard)
			if tag2, shard2, err := DecodeShardAck(enc); err != nil || tag2 != tag || shard2 != shard {
				t.Fatalf("shard ack round trip: (%d,%d)→(%d,%d), err %v", tag, shard, tag2, shard2, err)
			}
		}
		if tag, shard, packet, err := DecodeShardState(data); err == nil {
			enc := AppendShardState(nil, tag, shard, packet)
			tag2, shard2, packet2, err := DecodeShardState(enc)
			if err != nil || tag2 != tag || shard2 != shard || !bytes.Equal(packet, packet2) {
				t.Fatalf("shard state round trip diverged: err %v", err)
			}
		}
		if tag, shard, packet, err := DecodeShardInstall(data); err == nil {
			enc := AppendShardInstall(nil, tag, shard, packet)
			tag2, shard2, packet2, err := DecodeShardInstall(enc)
			if err != nil || tag2 != tag || shard2 != shard || !bytes.Equal(packet, packet2) {
				t.Fatalf("shard install round trip diverged: err %v", err)
			}
		}
		if tag, err := DecodeOwnersRequest(data); err == nil {
			enc := AppendOwnersRequest(nil, tag)
			if tag2, err := DecodeOwnersRequest(enc); err != nil || tag2 != tag {
				t.Fatalf("owners request round trip: tag %d→%d, err %v", tag, tag2, err)
			}
		}
		if tag, owned, err := DecodeOwnersReply(data); err == nil {
			enc := AppendOwnersReply(nil, tag, owned)
			tag2, owned2, err := DecodeOwnersReply(enc)
			if err != nil || tag2 != tag || len(owned2) != len(owned) {
				t.Fatalf("owners reply round trip diverged: err %v", err)
			}
			if enc2 := AppendOwnersReply(nil, tag2, owned2); !bytes.Equal(enc, enc2) {
				t.Fatal("owners reply encoding unstable")
			}
		}

		_, _ = ReadFrame(bytes.NewReader(data), nil)
	})
}
