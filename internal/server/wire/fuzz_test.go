package wire

import (
	"bytes"
	"testing"

	"repro/internal/server"
)

// fuzzSeeds returns valid payloads for every frame type, so the fuzzer
// starts from deep inside the grammar instead of rediscovering it.
func fuzzSeeds(t testing.TB) [][]byte {
	sel := 0.0096
	queries := []Query{
		{Tenant: "alice", Template: "Q6", Selectivity: sel, HasSelectivity: true},
		{Template: "Q1", Budget: &server.BudgetJSON{Shape: "linear", PriceUSD: 0.01, TmaxSec: 60, K: 2}},
		{Tenant: "bob", Template: "Q3"},
	}
	qb, err := AppendQueryBatch(nil, queries)
	if err != nil {
		t.Fatal(err)
	}
	rb := AppendReplyBatch(nil, []Reply{
		{Resp: server.Response{QueryID: 7, Shard: 2, Template: "Q6", Selectivity: sel,
			ArrivalSec: 1.5, Location: "cache", ResponseTimeSec: 0.25, ChargedUSD: 0.002}},
		{Err: "unknown template \"Q99\""},
	})
	st, err := AppendStats(nil, server.Stats{Scheme: "econ-cheap", Shards: 4, Queries: 10})
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		qb,
		rb,
		st,
		AppendStatsRequest(nil),
		AppendSnapshotRequest(nil),
		AppendSnapshotReply(nil, "/tmp/state/econ.snap", 123456),
		appendErrorPayload(nil, "server: closed"),
	}
}

// FuzzWireDecode feeds arbitrary bytes to every payload decoder and the
// frame reader. The decoders must never panic — a malicious or corrupt
// client frame must never take the daemon down — and anything that does
// decode must survive an encode/decode round trip unchanged.
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Truncations of valid payloads probe every mid-field error path.
		if len(seed) > 2 {
			f.Add(seed[:len(seed)/2])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trips are compared as re-encoded BYTES, not values:
		// arbitrary inputs can carry NaN floats, which decode fine but
		// never compare equal to themselves.
		if qs, err := DecodeQueryBatch(data, nil); err == nil {
			enc, err := AppendQueryBatch(nil, qs)
			if err == nil {
				qs2, err := DecodeQueryBatch(enc, nil)
				if err != nil {
					t.Fatalf("re-decode of re-encoded query batch failed: %v", err)
				}
				enc2, err := AppendQueryBatch(nil, qs2)
				if err != nil || !bytes.Equal(enc, enc2) {
					t.Fatalf("query batch round trip diverged (%v):\n%x\n%x", err, enc, enc2)
				}
			}
		}
		if rs, err := DecodeReplyBatch(data, nil); err == nil && len(rs) != 0 {
			enc := AppendReplyBatch(nil, rs)
			rs2, err := DecodeReplyBatch(enc, nil)
			if err != nil {
				t.Fatalf("re-decode of re-encoded reply batch failed: %v", err)
			}
			if enc2 := AppendReplyBatch(nil, rs2); !bytes.Equal(enc, enc2) {
				t.Fatalf("reply batch round trip diverged:\n%x\n%x", enc, enc2)
			}
		}
		_, _ = DecodeStats(data)
		_, _, _ = DecodeSnapshotReply(data)
		_, _ = ReadFrame(bytes.NewReader(data), nil)
	})
}
