package wire_test

import (
	"context"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/persist"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// newWireServerWithState mirrors newWireServer but configures a snapshot
// path, so the admin snapshot frame has somewhere to checkpoint to.
func newWireServerWithState(t *testing.T, shards int, snapshotPath string) (*server.Server, string) {
	t.Helper()
	cat := catalog.TPCH(20)
	params := scheme.DefaultParams(cat)
	params.RegretFraction = 0.0001
	srv, err := server.New(server.Config{
		Shards:       shards,
		Scheme:       "econ-cheap",
		Params:       params,
		Clock:        server.NewVirtualClock(),
		SnapshotPath: snapshotPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- wire.Serve(ln, srv) }()
	t.Cleanup(func() {
		_ = ln.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("wire.Serve: %v", err)
		}
		_ = srv.Shutdown(context.Background())
	})
	return srv, ln.Addr().String()
}

// TestWireSnapshotFrame: the admin frame checkpoints the live engine to
// the configured state path, shares the connection with query traffic,
// and the written file decodes to the engine's current state.
func TestWireSnapshotFrame(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "econ.snap")
	_, addr := newWireServerWithState(t, 2, statePath)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Submit([]wire.Query{
		{Tenant: "alice", Template: "Q6"},
		{Tenant: "bob", Template: "Q1"},
		{Tenant: "carol", Template: "Q3"},
	}); err != nil {
		t.Fatal(err)
	}

	path, size, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if path != statePath || size <= 0 {
		t.Fatalf("Snapshot() = %q, %d; want %q, >0", path, size, statePath)
	}
	snap, err := persist.Load(statePath)
	if err != nil {
		t.Fatalf("on-demand checkpoint does not decode: %v", err)
	}
	var q int64
	for _, sh := range snap.Shards {
		q += sh.Queries
	}
	if q != 3 {
		t.Errorf("checkpoint accounts %d queries, want 3", q)
	}

	// The connection still carries queries after the admin exchange.
	if _, err := cl.Submit([]wire.Query{{Tenant: "alice", Template: "Q6"}}); err != nil {
		t.Fatal(err)
	}
}

// TestWireSnapshotFrameUnconfigured: a daemon without a state path
// answers the admin frame with an error frame and keeps the connection.
func TestWireSnapshotFrameUnconfigured(t *testing.T) {
	_, addr := newWireServer(t, 2)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, _, err := cl.Snapshot(); err == nil {
		t.Fatal("snapshot without a configured state path succeeded")
	}
	// The error is a reply, not a hangup: the connection still serves.
	if _, err := cl.Submit([]wire.Query{{Tenant: "alice", Template: "Q6"}}); err != nil {
		t.Fatalf("connection dead after snapshot error: %v", err)
	}
}

// TestWireSnapshotReplyCodec round-trips the reply payload without a
// socket.
func TestWireSnapshotReplyCodec(t *testing.T) {
	payload := wire.AppendSnapshotReply(nil, "/var/lib/ccd/econ.snap", 123456)
	path, size, err := wire.DecodeSnapshotReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if path != "/var/lib/ccd/econ.snap" || size != 123456 {
		t.Errorf("round trip = %q, %d", path, size)
	}
	if !wire.IsSnapshotRequest(wire.AppendSnapshotRequest(nil)) {
		t.Error("snapshot request not recognized")
	}
	if _, _, err := wire.DecodeSnapshotReply([]byte{42}); err == nil {
		t.Error("bad snapshot reply accepted")
	}
	if _, _, err := wire.DecodeSnapshotReply(payload[:3]); err == nil {
		t.Error("truncated snapshot reply accepted")
	}
}
