package wire_test

import (
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/server/wire"
)

// TestWireStatsFrame: the stats frame shares the query connection and
// returns the same snapshot /v1/stats would serve — per-tenant ledgers
// included — so binary-front clients never need the HTTP port.
func TestWireStatsFrame(t *testing.T) {
	srv, addr := newWireServer(t, 4)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Interleave queries and stats requests on one connection.
	if _, err := cl.Submit([]wire.Query{
		{Tenant: "alice", Template: "Q6"},
		{Tenant: "bob", Template: "Q1"},
		{Tenant: "alice", Template: "Q3"},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 {
		t.Errorf("wire stats queries = %d, want 3", st.Queries)
	}
	if st.Provider != "altruistic" {
		t.Errorf("provider = %q, want altruistic", st.Provider)
	}
	if len(st.Tenants) != 2 || st.Tenants[0].Tenant != "alice" || st.Tenants[1].Tenant != "bob" {
		t.Fatalf("tenant sections = %+v, want sorted [alice bob]", st.Tenants)
	}
	if st.Tenants[0].Queries != 2 || st.Tenants[1].Queries != 1 {
		t.Errorf("tenant attribution wrong: %+v", st.Tenants)
	}

	// The wire snapshot must equal the in-process one field for field.
	if direct := srv.Stats(); !reflect.DeepEqual(st, direct) {
		t.Errorf("wire stats diverged from Server.Stats():\nwire   %+v\ndirect %+v", st, direct)
	}

	// The connection still carries queries after a stats exchange.
	if _, err := cl.Submit([]wire.Query{{Tenant: "bob", Template: "Q6"}}); err != nil {
		t.Fatal(err)
	}
}

// TestWireStatsCodec round-trips the payload without a socket.
func TestWireStatsCodec(t *testing.T) {
	in := server.Stats{
		Scheme:   "econ-cheap",
		Provider: "selfish",
		Shards:   2,
		Queries:  7,
		Tenants: []server.TenantStats{
			{Tenant: "a", Queries: 4, CreditUSD: 1.5},
			{Tenant: "b", Queries: 3, SpendUSD: 0.25},
		},
	}
	payload, err := wire.AppendStats(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wire.DecodeStats(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed stats:\nin  %+v\nout %+v", in, out)
	}
	if !wire.IsStatsRequest(wire.AppendStatsRequest(nil)) {
		t.Error("stats request not recognized")
	}
	if _, err := wire.DecodeStats([]byte{9, 9}); err == nil {
		t.Error("bad stats payload accepted")
	}
}
