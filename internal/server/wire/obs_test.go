package wire_test

import (
	"context"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// newObsWireServer is newWireServer with the decision tracer sampling
// every query and a default journal.
func newObsWireServer(t *testing.T, shards int) (*server.Server, string) {
	t.Helper()
	cat := catalog.TPCH(20)
	params := scheme.DefaultParams(cat)
	params.RegretFraction = 0.0001
	params.LoadFactor = 0.02
	srv, err := server.New(server.Config{
		Shards:           shards,
		Scheme:           "econ-cheap",
		Params:           params,
		Clock:            server.NewVirtualClock(),
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- wire.Serve(ln, srv) }()
	t.Cleanup(func() {
		_ = ln.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("wire.Serve: %v", err)
		}
		_ = srv.Shutdown(context.Background())
	})
	return srv, ln.Addr().String()
}

// TestMuxTraceFrame: the multiplexed trace frame returns the same
// sampled records /v1/trace would, with the full decision path filled
// in — including the wire front's decode and encode stage shares, which
// only exist on this path.
func TestMuxTraceFrame(t *testing.T) {
	_, addr := newObsWireServer(t, 2)
	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	qs := []wire.Query{
		{Tenant: "alice", Template: "Q6", Budget: &server.BudgetJSON{Shape: "step", PriceUSD: 0.002, TmaxSec: 3600}},
		{Tenant: "bob", Template: "Q1", Budget: &server.BudgetJSON{Shape: "step", PriceUSD: 0.002, TmaxSec: 3600}},
		{Tenant: "alice", Template: "Q3", Budget: &server.BudgetJSON{Shape: "step", PriceUSD: 0.002, TmaxSec: 3600}},
	}
	for round := 0; round < 4; round++ {
		if _, err := cl.Submit(ctx, qs); err != nil {
			t.Fatal(err)
		}
	}

	view, err := cl.Trace(ctx, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if view.SampleEvery != 1 {
		t.Errorf("sample_every = %d, want 1", view.SampleEvery)
	}
	if len(view.Records) != 12 {
		t.Fatalf("traced %d records, want 12", len(view.Records))
	}
	for _, r := range view.Records {
		if r.Template == "" || r.QueryID == 0 || r.Seq == 0 {
			t.Fatalf("incomplete record: %+v", r)
		}
		// The wire front stamps decode and back-fills encode before the
		// reply frame is sent, so by the time Submit returned both stages
		// were measured.
		if r.DecodeNanos <= 0 {
			t.Errorf("record %d/%d missing decode stage: %+v", r.Shard, r.Seq, r)
		}
		if r.EncodeNanos <= 0 {
			t.Errorf("record %d/%d missing encode stage: %+v", r.Shard, r.Seq, r)
		}
		if r.WaitNanos < 0 || r.DecideNanos <= 0 {
			t.Errorf("record %d/%d implausible wait/decide: %+v", r.Shard, r.Seq, r)
		}
	}

	// Filters ride the request frame.
	alice, err := cl.Trace(ctx, "alice", "Q6", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alice.Records) != 4 {
		t.Fatalf("alice/Q6 records = %d, want 4", len(alice.Records))
	}
	for _, r := range alice.Records {
		if r.Tenant != "alice" || r.Template != "Q6" {
			t.Errorf("filter leaked record %+v", r)
		}
	}
}

// TestMuxEventsFrames: one-shot event fetches and the streaming event
// subscription both deliver the journal, totals reconcile with the
// engine's ledgers, and the subscription's installments never repeat an
// event.
func TestMuxEventsFrames(t *testing.T) {
	srv, addr := newObsWireServer(t, 2)
	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	sub, err := cl.SubscribeEvents(0.01)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	subDone := make(chan error, 1)
	go func() {
		for view := range sub.C {
			for _, e := range view.Events {
				if seen[e.Seq] {
					subDone <- fmt.Errorf("subscription repeated event seq %d", e.Seq)
					return
				}
				seen[e.Seq] = true
			}
		}
		subDone <- nil
	}()

	// Hammer one tenant's hot templates until the economy invests; the
	// test params make that take a few hundred queries at most.
	qs := make([]wire.Query, 0, 64)
	for i := 0; i < 64; i++ {
		qs = append(qs, wire.Query{
			Tenant:   "alice",
			Template: []string{"Q6", "Q1", "Q3"}[i%3],
			Budget:   &server.BudgetJSON{Shape: "step", PriceUSD: 0.002, TmaxSec: 3600},
		})
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.EventTotals().Invests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no investment after 10s of load")
		}
		if _, err := cl.Submit(ctx, qs); err != nil {
			t.Fatal(err)
		}
	}

	// One-shot fetch: totals match the engine's exact ledger sums. The
	// load has stopped, so the journal and the ledgers are quiescent.
	view, err := cl.Events(ctx, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if view.Totals.Invests == 0 || len(view.Events) == 0 {
		t.Fatalf("events view empty after investments: %+v", view.Totals)
	}
	tot := srv.EventTotals()
	if view.Totals.Invests != tot.Invests || view.Totals.Evicts != tot.Evicts || view.Totals.Recovers != tot.Recovers {
		t.Errorf("wire totals %+v != journal totals %+v", view.Totals, tot)
	}
	st := srv.Stats()
	var investedUSD, recoveredUSD float64
	for _, sh := range st.PerShard {
		investedUSD += sh.InvestedUSD
		recoveredUSD += sh.RecoveredUSD
	}
	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > math.Abs(want)*1e-9+1e-12 {
			t.Errorf("%s: journal says %v, ledgers say %v", name, got, want)
		}
	}
	approx("invested", view.Totals.InvestedUSD, investedUSD)
	approx("recovered", view.Totals.RecoveredUSD, recoveredUSD)
	for _, e := range view.Events {
		if e.Type != "invest" && e.Type != "evict" && e.Type != "recover" {
			t.Errorf("unknown event type %q", e.Type)
		}
		if e.Tenant != "" && e.Tenant != "alice" {
			t.Errorf("event names tenant %q, only alice submitted", e.Tenant)
		}
	}

	// Type filter.
	invests, err := cl.Events(ctx, "invest", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(invests.Events) == 0 {
		t.Fatal("invest filter returned nothing after investments")
	}
	for _, e := range invests.Events {
		if e.Type != "invest" {
			t.Errorf("invest filter leaked %q", e.Type)
		}
	}

	// Give the stream a beat to drain, then close it; the reader goroutine
	// must have seen no duplicate sequence numbers.
	time.Sleep(50 * time.Millisecond)
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-subDone; err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Error("subscription delivered no events")
	}
}
