package wire

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/persist"
	"repro/internal/server"
)

// Engine is what the protocol loops serve: the decision engine behind
// one listener. The in-process server is the canonical implementation
// (via ServerEngine); the cluster router implements the same surface by
// fanning batches out to backend engines over their own connections —
// which is why the submit methods traffic in wire Queries, not
// materialized server Requests: a router must be able to forward the
// items it decoded without re-deriving their budget closures.
//
// decodeNanos is the wall time the caller spent decoding the batch's
// frame, forwarded so per-query stage traces include it; engines without
// tracing ignore it. A nil done callback is never passed.
type Engine interface {
	// SubmitBatch decides a batch and returns positional replies.
	// Per-item failures ride Reply.Err; a returned error fails the whole
	// batch (and in v1 the connection).
	SubmitBatch(ctx context.Context, qs []Query, decodeNanos int64) ([]Reply, error)
	// SubmitBatchAsync hands a batch to the engine and returns without
	// waiting; done fires exactly once with the positional replies. An
	// error means done will never fire.
	SubmitBatchAsync(ctx context.Context, qs []Query, decodeNanos int64, done func([]Reply)) error

	Stats() server.Stats
	TraceViewSnapshot(tenant, template string, n int) server.TraceView
	EventsViewSnapshot(typ, tenant string, n int) server.EventsView
	EventsViewSince(since int64) (server.EventsView, int64)

	// Checkpoint persists the engine's durable state now (the v1 admin
	// frame); engines without a state path answer an error.
	Checkpoint() (path string, size int64, err error)

	// Shard migration admin. Packets travel as opaque persist-encoded
	// bytes so a router can relay them without decoding; install verifies
	// the packet names the slot the caller thinks it is filling before
	// touching anything.
	FreezeShard(shard int) error
	ExtractShardPacket(shard int) ([]byte, error)
	InstallShardPacket(shard int, data []byte) error
	OwnedShards() []bool

	// TraceEnabled gates the protocol loops' stage timing; BackfillEncode
	// files the encode stage (totalNanos across the batch) into whatever
	// trace records the replies reference. No-ops without tracing.
	TraceEnabled() bool
	BackfillEncode(rs []Reply, totalNanos int64)
}

// ServerEngine adapts the in-process server to the Engine surface the
// protocol loops serve. Materializing wire queries into engine requests
// (budget closures included) happens here, so every front — lockstep,
// multiplexed, routed — shares one conversion with identical error
// wording.
func ServerEngine(srv *server.Server) Engine { return &serverEngine{srv: srv} }

type serverEngine struct {
	srv *server.Server
}

// materialize converts wire queries to engine requests, spreading the
// caller's decode time across them for the stage trace.
func (e *serverEngine) materialize(qs []Query, decodeNanos int64) ([]server.Request, error) {
	reqs := make([]server.Request, len(qs))
	for i := range qs {
		req, err := qs[i].Request()
		if err != nil {
			return nil, fmt.Errorf("batch[%d]: %w", i, err)
		}
		reqs[i] = req
	}
	if decodeNanos > 0 && len(reqs) > 0 {
		share := decodeNanos / int64(len(reqs))
		for i := range reqs {
			reqs[i].DecodeNanos = share
		}
	}
	return reqs, nil
}

func itemsToReplies(items []server.BatchItem) []Reply {
	replies := make([]Reply, len(items))
	for i := range items {
		if items[i].Err != nil {
			replies[i] = Reply{Err: items[i].Err.Error()}
		} else {
			replies[i] = Reply{Resp: items[i].Resp}
		}
	}
	return replies
}

func (e *serverEngine) SubmitBatch(ctx context.Context, qs []Query, decodeNanos int64) ([]Reply, error) {
	reqs, err := e.materialize(qs, decodeNanos)
	if err != nil {
		return nil, err
	}
	items, err := e.srv.SubmitBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return itemsToReplies(items), nil
}

func (e *serverEngine) SubmitBatchAsync(ctx context.Context, qs []Query, decodeNanos int64, done func([]Reply)) error {
	reqs, err := e.materialize(qs, decodeNanos)
	if err != nil {
		return err
	}
	return e.srv.SubmitBatchAsync(ctx, reqs, func(items []server.BatchItem) {
		done(itemsToReplies(items))
	})
}

func (e *serverEngine) Stats() server.Stats { return e.srv.Stats() }

func (e *serverEngine) TraceViewSnapshot(tenant, template string, n int) server.TraceView {
	return e.srv.TraceViewSnapshot(tenant, template, n)
}

func (e *serverEngine) EventsViewSnapshot(typ, tenant string, n int) server.EventsView {
	return e.srv.EventsViewSnapshot(typ, tenant, n)
}

func (e *serverEngine) EventsViewSince(since int64) (server.EventsView, int64) {
	return e.srv.EventsViewSince(since)
}

func (e *serverEngine) Checkpoint() (string, int64, error) { return e.srv.Checkpoint() }

func (e *serverEngine) FreezeShard(shard int) error { return e.srv.FreezeShard(shard) }

// maxShardPacketBytes bounds an extracted packet so both frames that
// carry it — the msgShardState reply and the msgShardInstall request
// that follows — stay under MaxFrame. The margin covers the frame's
// type byte and two uvarints (tag, shard).
const maxShardPacketBytes = MaxFrame - (1 + 2*binary.MaxVarintLen64)

func (e *serverEngine) ExtractShardPacket(shard int) ([]byte, error) {
	// The size check runs as ExtractShardChecked's commit gate: a packet
	// too large for one frame aborts the extract with the shard's state
	// and ownership untouched, instead of destroying an economy whose
	// reply frame could never be written.
	var data []byte
	_, err := e.srv.ExtractShardChecked(shard, func(pkt *persist.ShardPacket) error {
		data = persist.EncodeShardPacket(pkt)
		if len(data) > maxShardPacketBytes {
			return fmt.Errorf("wire: shard %d packet is %d bytes, over the %d-byte frame bound; shard left in place", shard, len(data), maxShardPacketBytes)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

func (e *serverEngine) InstallShardPacket(shard int, data []byte) error {
	pkt, err := persist.DecodeShardPacket(data)
	if err != nil {
		return err
	}
	if pkt.State.Index != shard {
		return fmt.Errorf("wire: packet is for shard %d, install names shard %d", pkt.State.Index, shard)
	}
	return e.srv.InstallShard(shard, pkt)
}

func (e *serverEngine) OwnedShards() []bool { return e.srv.OwnedShards() }

func (e *serverEngine) TraceEnabled() bool {
	tr := e.srv.Tracer()
	return tr != nil && tr.Enabled()
}

func (e *serverEngine) BackfillEncode(rs []Reply, totalNanos int64) {
	tr := e.srv.Tracer()
	if tr == nil || len(rs) == 0 {
		return
	}
	share := totalNanos / int64(len(rs))
	for i := range rs {
		if rs[i].Err == "" && rs[i].Resp.TraceSeq != 0 {
			tr.SetEncode(rs[i].Resp.Shard, rs[i].Resp.TraceSeq, share)
		}
	}
}
