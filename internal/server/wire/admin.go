package wire

import (
	"encoding/binary"
	"fmt"
)

// Shard checkpoint-transfer frames (v2 only, all tagged): the admin
// surface a router drives a live migration with. The sequence mirrors
// the server API — freeze stops a shard deciding, extract moves its
// state out as an opaque persist-encoded packet, install adopts the
// packet on the destination — and every step answers either its reply
// frame or a tag-scoped error, so a failed migration never kills the
// connection carrying it.
//
//	payload admin := msgShardFreeze   | uvarint tag | uvarint shard
//	              | msgShardExtract   | uvarint tag | uvarint shard
//	              | msgShardState     | uvarint tag | uvarint shard | packet bytes
//	              | msgShardInstall   | uvarint tag | uvarint shard | packet bytes
//	              | msgShardAck       | uvarint tag | uvarint shard
//	              | msgOwnersRequest  | uvarint tag
//	              | msgOwnersReply    | uvarint tag | uvarint n | n × bool
//
// The packet bytes are the persist.ShardPacket encoding, carried
// verbatim: self-framing, CRC-guarded, and relayable without decoding.
// MaxFrame bounds a migratable shard's encoded size.
const (
	msgShardFreeze   byte = 21
	msgShardExtract  byte = 22
	msgShardState    byte = 23
	msgShardInstall  byte = 24
	msgShardAck      byte = 25
	msgOwnersRequest byte = 26
	msgOwnersReply   byte = 27
)

// maxOwners bounds an owners reply's shard count: far above any sane
// deployment, low enough that a corrupt count cannot balloon memory.
const maxOwners = 1 << 16

// appendTagShard is the shared body of the fixed tag+shard frames.
func appendTagShard(b []byte, typ byte, tag uint64, shard int) []byte {
	b = append(b, typ)
	b = binary.AppendUvarint(b, tag)
	return binary.AppendUvarint(b, uint64(shard))
}

// consumeTagShard parses a tag+shard body and requires exhaustion.
func consumeTagShard(payload []byte, typ byte, name string) (tag uint64, shard int, err error) {
	mt, rest, err := consumeByte(payload)
	if err != nil {
		return 0, 0, err
	}
	if mt != typ {
		return 0, 0, fmt.Errorf("wire: expected %s, got message type %d", name, mt)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, 0, err
	}
	u, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, 0, err
	}
	if u > maxOwners {
		return 0, 0, fmt.Errorf("wire: shard index %d out of range", u)
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("wire: %d trailing bytes after %s", len(rest), name)
	}
	return tag, int(u), nil
}

// AppendShardFreeze appends a freeze request: stop the shard deciding
// (it answers "shard not owned here" from now on) without extracting
// its state — the bootstrap move that keeps a spare backend's slots
// from deciding traffic they were never routed.
func AppendShardFreeze(b []byte, tag uint64, shard int) []byte {
	return appendTagShard(b, msgShardFreeze, tag, shard)
}

// DecodeShardFreeze parses a freeze request (msg byte included).
func DecodeShardFreeze(payload []byte) (tag uint64, shard int, err error) {
	return consumeTagShard(payload, msgShardFreeze, "shard freeze")
}

// AppendShardExtract appends an extract request: freeze the shard and
// move its state out; the reply is a msgShardState frame carrying the
// packet.
func AppendShardExtract(b []byte, tag uint64, shard int) []byte {
	return appendTagShard(b, msgShardExtract, tag, shard)
}

// DecodeShardExtract parses an extract request (msg byte included).
func DecodeShardExtract(payload []byte) (tag uint64, shard int, err error) {
	return consumeTagShard(payload, msgShardExtract, "shard extract")
}

// AppendShardAck appends the success reply to a freeze or install.
func AppendShardAck(b []byte, tag uint64, shard int) []byte {
	return appendTagShard(b, msgShardAck, tag, shard)
}

// DecodeShardAck parses an ack (msg byte included).
func DecodeShardAck(payload []byte) (tag uint64, shard int, err error) {
	return consumeTagShard(payload, msgShardAck, "shard ack")
}

// appendShardPacketFrame is the shared body of the two packet-bearing
// frames (state reply and install request).
func appendShardPacketFrame(b []byte, typ byte, tag uint64, shard int, packet []byte) []byte {
	b = append(b, typ)
	b = binary.AppendUvarint(b, tag)
	b = binary.AppendUvarint(b, uint64(shard))
	return append(b, packet...)
}

// consumeShardPacketFrame parses a packet-bearing body. The packet is
// the payload's remainder, copied out so the caller owns it after the
// read buffer is reused; its own header and CRCs validate the contents.
func consumeShardPacketFrame(payload []byte, typ byte, name string) (tag uint64, shard int, packet []byte, err error) {
	mt, rest, err := consumeByte(payload)
	if err != nil {
		return 0, 0, nil, err
	}
	if mt != typ {
		return 0, 0, nil, fmt.Errorf("wire: expected %s, got message type %d", name, mt)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, 0, nil, err
	}
	u, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	if u > maxOwners {
		return 0, 0, nil, fmt.Errorf("wire: shard index %d out of range", u)
	}
	if len(rest) == 0 {
		return 0, 0, nil, fmt.Errorf("wire: %s carries no packet", name)
	}
	return tag, int(u), append([]byte(nil), rest...), nil
}

// AppendShardState appends the extract reply: the shard's state as an
// opaque persist-encoded packet.
func AppendShardState(b []byte, tag uint64, shard int, packet []byte) []byte {
	return appendShardPacketFrame(b, msgShardState, tag, shard, packet)
}

// DecodeShardState parses an extract reply (msg byte included). The
// returned packet is a fresh copy.
func DecodeShardState(payload []byte) (tag uint64, shard int, packet []byte, err error) {
	return consumeShardPacketFrame(payload, msgShardState, "shard state")
}

// AppendShardInstall appends an install request: adopt the packet into
// the named (unused, frozen) slot. The reply is a msgShardAck.
func AppendShardInstall(b []byte, tag uint64, shard int, packet []byte) []byte {
	return appendShardPacketFrame(b, msgShardInstall, tag, shard, packet)
}

// DecodeShardInstall parses an install request (msg byte included). The
// returned packet is a fresh copy.
func DecodeShardInstall(payload []byte) (tag uint64, shard int, packet []byte, err error) {
	return consumeShardPacketFrame(payload, msgShardInstall, "shard install")
}

// AppendOwnersRequest appends an ownership query: which of the engine's
// shard slots decide traffic here? A router bootstraps its routing map
// from the answers.
func AppendOwnersRequest(b []byte, tag uint64) []byte {
	b = append(b, msgOwnersRequest)
	return binary.AppendUvarint(b, tag)
}

// DecodeOwnersRequest parses an ownership query (msg byte included).
func DecodeOwnersRequest(payload []byte) (uint64, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, err
	}
	if typ != msgOwnersRequest {
		return 0, fmt.Errorf("wire: expected owners request, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after owners request", len(rest))
	}
	return tag, nil
}

// AppendOwnersReply appends the ownership answer: one bool per shard
// slot, true where this engine decides.
func AppendOwnersReply(b []byte, tag uint64, owned []bool) []byte {
	b = append(b, msgOwnersReply)
	b = binary.AppendUvarint(b, tag)
	b = binary.AppendUvarint(b, uint64(len(owned)))
	for _, o := range owned {
		b = appendBool(b, o)
	}
	return b
}

// DecodeOwnersReply parses an ownership answer (msg byte included).
func DecodeOwnersReply(payload []byte) (tag uint64, owned []bool, err error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, nil, err
	}
	if typ != msgOwnersReply {
		return 0, nil, fmt.Errorf("wire: expected owners reply, got message type %d", typ)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, nil, err
	}
	n, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, nil, err
	}
	if n > maxOwners {
		return 0, nil, fmt.Errorf("wire: owners reply of %d shards exceeds %d", n, maxOwners)
	}
	owned = make([]bool, n)
	for i := range owned {
		var b byte
		if b, rest, err = consumeByte(rest); err != nil {
			return 0, nil, err
		}
		if b > 1 {
			return 0, nil, fmt.Errorf("wire: bad owners bool %d", b)
		}
		owned[i] = b != 0
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes after owners reply", len(rest))
	}
	return tag, owned, nil
}
