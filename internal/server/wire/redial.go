package wire

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PersistentMux is a MuxClient that survives its connection: when the
// backend drops or restarts, the next Get redials with exponential
// backoff (the listener's transient-error schedule: 5 ms doubling to
// 1 s) instead of failing forever. Between attempts Get fails fast, so
// callers — a router fanning a batch out — never block behind a dead
// backend; they answer per-item errors and retry on a later request.
//
// Reconnection is deliberately NOT transparent at the call level: a
// Submit that died mid-flight is never resent, because the backend may
// have decided the batch before the connection broke, and economy
// decisions must happen exactly once. The caller sees the error and
// owns the retry policy.
type PersistentMux struct {
	addr string

	mu        sync.Mutex
	cl        *MuxClient
	delay     time.Duration
	nextTry   time.Time
	connected bool // a dial has succeeded at least once
	closed    bool

	// reconnects counts successful re-dials after the first connect —
	// the router's /metrics surfaces it per backend.
	reconnects atomic.Int64
}

// redialBase and redialMax bound the backoff between dial attempts.
const (
	redialBase = 5 * time.Millisecond
	redialMax  = time.Second
)

// NewPersistentMux wraps a backend address. No connection is opened
// until the first Get.
func NewPersistentMux(addr string) *PersistentMux {
	return &PersistentMux{addr: addr}
}

// Addr returns the backend address this pool dials.
func (p *PersistentMux) Addr() string { return p.addr }

// Reconnects reports how many times the pool has successfully re-dialed
// after losing an established connection.
func (p *PersistentMux) Reconnects() int64 { return p.reconnects.Load() }

// Get returns a live client, dialing if necessary. During backoff after
// a failed dial it fails immediately — a dead backend costs its callers
// an error, not a stall.
func (p *PersistentMux) Get() (*MuxClient, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClientClosed
	}
	if p.cl != nil {
		select {
		case <-p.cl.Done():
			// The connection died underneath us; fall through to redial.
			p.cl = nil
		default:
			return p.cl, nil
		}
	}
	now := time.Now()
	if now.Before(p.nextTry) {
		return nil, fmt.Errorf("wire: backend %s down, retrying in %s", p.addr, time.Until(p.nextTry).Round(time.Millisecond))
	}
	cl, err := DialMux(p.addr)
	if err != nil {
		if p.delay == 0 {
			p.delay = redialBase
		} else if p.delay *= 2; p.delay > redialMax {
			p.delay = redialMax
		}
		p.nextTry = now.Add(p.delay)
		return nil, fmt.Errorf("wire: dial %s: %w", p.addr, err)
	}
	if p.connected {
		// Anything after the first successful dial is a reconnect.
		p.reconnects.Add(1)
	}
	p.connected = true
	p.delay = 0
	p.nextTry = time.Time{}
	p.cl = cl
	return cl, nil
}

// MarkDead drops a client the caller observed failing, so the next Get
// redials instead of handing the same dead connection out again. A
// no-op if the pool has already moved on.
func (p *PersistentMux) MarkDead(cl *MuxClient) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cl == cl {
		p.cl = nil
	}
}

// Close closes the pooled connection and stops future dials.
func (p *PersistentMux) Close() error {
	p.mu.Lock()
	cl := p.cl
	p.cl = nil
	p.closed = true
	p.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}
