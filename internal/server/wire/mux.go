package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/server"
)

// ErrClientClosed is returned by MuxClient calls after Close, or after
// the connection died underneath the client.
var ErrClientClosed = errors.New("wire: client closed")

// TaggedError is a tag-scoped server failure: the batch or subscription
// it names failed, the connection did not. Submit returns it unwrapped
// in error form; it exists as a type so callers can distinguish "my
// batch was refused" (retryable elsewhere) from a dead connection.
type TaggedError struct {
	Tag uint64
	Msg string
}

func (e *TaggedError) Error() string {
	return fmt.Sprintf("wire: server error (tag %d): %s", e.Tag, e.Msg)
}

// muxCall is one in-flight tagged batch on the client side.
type muxCall struct {
	n  int // queries sent, for the reply-count sanity check
	ch chan muxResult
}

type muxResult struct {
	replies []Reply
	err     error
}

// traceResult is one trace request's outcome on the client side.
type traceResult struct {
	view server.TraceView
	err  error
}

// adminResult is one shard-admin request's outcome on the client side:
// an ack (freeze, install), a state packet (extract), or an ownership
// map (owners), depending on which frame the tag was opened for.
type adminResult struct {
	shard  int
	packet []byte
	owned  []bool
	err    error
}

// EventsSub is one client-side economy-events subscription. Cursored
// installments arrive on C as the server pushes them — each carries only
// events the subscription has not yet seen, plus the journal's running
// totals — and the channel is closed when the subscription ends. A slow
// consumer drops installments rather than stalling the reader; the
// totals in the next installment still reconcile (they are running
// sums, not deltas).
type EventsSub struct {
	C   <-chan server.EventsView
	c   chan server.EventsView
	tag uint64
	cl  *MuxClient

	mu     sync.Mutex
	closed bool
	err    error
}

// Err reports why the subscription ended, once C is closed; nil means a
// clean Close.
func (s *EventsSub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close unsubscribes: the server stops pushing and C is closed. Safe to
// call more than once.
func (s *EventsSub) Close() error {
	if !s.finish(nil) {
		return nil
	}
	return s.cl.sendEventsUnsubscribe(s.tag)
}

// finish closes C exactly once, recording the cause; reports whether
// this call was the one that closed it.
func (s *EventsSub) finish(cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	s.err = cause
	close(s.c)
	return true
}

// deliver hands the reader an installment without racing finish: the
// mutex serializes the send against the close, and a slow consumer
// drops the installment rather than stalling the connection's reader.
func (s *EventsSub) deliver(view server.EventsView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.c <- view:
	default:
	}
}

// StatsSub is one client-side stats subscription. Snapshots arrive on C
// as the server pushes them; the channel is closed when the
// subscription ends (Close, a tag-scoped server error, or connection
// teardown). A slow consumer drops pushes rather than stalling the
// connection's reader.
type StatsSub struct {
	C   <-chan server.Stats
	c   chan server.Stats
	tag uint64
	cl  *MuxClient

	mu     sync.Mutex
	closed bool
	err    error
}

// Err reports why the subscription ended, once C is closed; nil means a
// clean Close.
func (s *StatsSub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close unsubscribes: the server stops pushing and C is closed. Safe to
// call more than once.
func (s *StatsSub) Close() error {
	if !s.finish(nil) {
		return nil
	}
	return s.cl.sendUnsubscribe(s.tag)
}

// finish closes C exactly once, recording the cause; reports whether
// this call was the one that closed it.
func (s *StatsSub) finish(cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	s.err = cause
	close(s.c)
	return true
}

// deliver hands the reader a snapshot without racing finish: the mutex
// serializes the send against the close, and a slow consumer drops the
// push rather than stalling the connection's reader.
func (s *StatsSub) deliver(st server.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.c <- st:
	default:
	}
}

// MuxClient is the multiplexed (protocol v2) client: one connection,
// any number of goroutines, any number of outstanding batches. Each
// Submit rides a tagged frame; a reader goroutine demultiplexes replies
// back to their callers as the server completes them — out of order
// when the server's shard groups finish out of order — and a writer
// goroutine coalesces concurrent submitters' frames into shared
// flushes. The zero value is not usable; DialMux or NewMuxClient.
type MuxClient struct {
	conn net.Conn
	bw   *bufio.Writer

	// Writer queue, same shape as the server side: senders never block,
	// the writer drains whole bursts into one flush.
	qmu      sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	stopping bool
	wdone    chan struct{}

	mu      sync.Mutex
	calls   map[uint64]*muxCall
	subs    map[uint64]*StatsSub
	tcalls  map[uint64]chan traceResult
	esubs   map[uint64]*EventsSub
	acalls  map[uint64]chan adminResult
	nextTag uint64
	err     error // sticky: why the connection died
	done    chan struct{}
}

// DialMux connects to a binary-protocol listener and negotiates
// protocol v2.
func DialMux(addr string) (*MuxClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl, err := NewMuxClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return cl, nil
}

// NewMuxClient performs the hello exchange on an established connection
// and starts the reader and writer goroutines. On error the connection
// is left to the caller to close.
func NewMuxClient(conn net.Conn) (*MuxClient, error) {
	c := &MuxClient{
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 64<<10),
		calls:  make(map[uint64]*muxCall),
		subs:   make(map[uint64]*StatsSub),
		tcalls: make(map[uint64]chan traceResult),
		esubs:  make(map[uint64]*EventsSub),
		acalls: make(map[uint64]chan adminResult),
		wdone:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.qmu)

	// The hello exchange is the one lockstep moment: write ours, read
	// theirs, before any concurrency exists.
	if err := WriteFrame(c.bw, AppendHello(nil, ProtocolV2)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	payload, err := ReadFrame(br, nil)
	if err != nil {
		return nil, fmt.Errorf("wire: reading hello reply: %w", err)
	}
	if len(payload) > 0 && payload[0] == msgError {
		msg, _, err := consumeString(payload[1:])
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server rejected hello: %s", msg)
	}
	version, err := DecodeHello(payload)
	if err != nil {
		return nil, err
	}
	if version < ProtocolV2 {
		return nil, fmt.Errorf("wire: server protocol version %d < %d", version, ProtocolV2)
	}

	go c.writeLoop()
	go c.readLoop(br)
	return c, nil
}

// Close tears the connection down; in-flight Submits return
// ErrClientClosed and subscription channels close.
func (c *MuxClient) Close() error {
	err := c.conn.Close()
	<-c.done // reader observed the close and failed everything in flight
	return err
}

// send enqueues one encoded payload for the writer goroutine.
func (c *MuxClient) send(payload []byte) {
	c.qmu.Lock()
	c.queue = append(c.queue, payload)
	c.qmu.Unlock()
	c.cond.Signal()
}

// writeLoop mirrors the server's: drain bursts, one flush per burst, go
// quiet (but keep consuming) once the connection dies. A write error
// also closes the conn so the read loop fails every in-flight call —
// a silently dropped frame would leave its caller waiting forever.
func (c *MuxClient) writeLoop() {
	defer close(c.wdone)
	var dead bool
	for {
		c.qmu.Lock()
		for len(c.queue) == 0 && !c.stopping {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.stopping {
			c.qmu.Unlock()
			return
		}
		batch := c.queue
		c.queue = nil
		c.qmu.Unlock()

		if dead {
			continue
		}
		for _, p := range batch {
			if err := WriteFrame(c.bw, p); err != nil {
				dead = true
				break
			}
		}
		if !dead && c.bw.Flush() != nil {
			dead = true
		}
		if dead {
			c.conn.Close()
		}
	}
}

// readLoop demultiplexes inbound frames to their tags until the
// connection dies, then fails every outstanding call and subscription.
func (c *MuxClient) readLoop(br *bufio.Reader) {
	var rbuf []byte
	var fatal error
	for {
		payload, err := ReadFrame(br, rbuf)
		if err != nil {
			fatal = err
			break
		}
		rbuf = payload[:0]

		switch {
		case len(payload) > 0 && payload[0] == msgTaggedReplyBatch:
			// Decoded into a fresh slice: the caller owns it outright, and
			// concurrent callers must not share scratch space.
			tag, replies, err := DecodeTaggedReplyBatch(payload, nil)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			call := c.calls[tag]
			delete(c.calls, tag)
			c.mu.Unlock()
			if call == nil {
				continue // abandoned (ctx cancellation); drop it
			}
			if len(replies) != call.n {
				call.ch <- muxResult{err: fmt.Errorf("wire: %d replies for %d queries (tag %d)", len(replies), call.n, tag)}
				continue
			}
			call.ch <- muxResult{replies: replies}

		case len(payload) > 0 && payload[0] == msgTaggedError:
			tag, msg, err := DecodeTaggedError(payload)
			if err != nil {
				fatal = err
				break
			}
			terr := &TaggedError{Tag: tag, Msg: msg}
			c.mu.Lock()
			call := c.calls[tag]
			delete(c.calls, tag)
			sub := c.subs[tag]
			delete(c.subs, tag)
			tcall := c.tcalls[tag]
			delete(c.tcalls, tag)
			esub := c.esubs[tag]
			delete(c.esubs, tag)
			acall := c.acalls[tag]
			delete(c.acalls, tag)
			c.mu.Unlock()
			if call != nil {
				call.ch <- muxResult{err: terr}
			}
			if sub != nil {
				sub.finish(terr)
			}
			if tcall != nil {
				tcall <- traceResult{err: terr}
			}
			if esub != nil {
				esub.finish(terr)
			}
			if acall != nil {
				acall <- adminResult{err: terr}
			}

		case len(payload) > 0 && payload[0] == msgStatsPush:
			tag, st, err := DecodeStatsPush(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			sub := c.subs[tag]
			c.mu.Unlock()
			if sub != nil {
				sub.deliver(st)
			}

		case len(payload) > 0 && payload[0] == msgTracePush:
			tag, view, err := DecodeTracePush(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			tcall := c.tcalls[tag]
			delete(c.tcalls, tag)
			c.mu.Unlock()
			if tcall != nil {
				tcall <- traceResult{view: view}
			}

		case len(payload) > 0 && payload[0] == msgEventsPush:
			tag, view, err := DecodeEventsPush(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			esub := c.esubs[tag]
			c.mu.Unlock()
			if esub != nil {
				esub.deliver(view)
			}

		case len(payload) > 0 && payload[0] == msgShardAck:
			tag, shard, err := DecodeShardAck(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			acall := c.acalls[tag]
			delete(c.acalls, tag)
			c.mu.Unlock()
			if acall != nil {
				acall <- adminResult{shard: shard}
			}

		case len(payload) > 0 && payload[0] == msgShardState:
			// DecodeShardState copies the packet out of the read buffer, so
			// the caller owns it outright.
			tag, shard, packet, err := DecodeShardState(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			acall := c.acalls[tag]
			delete(c.acalls, tag)
			c.mu.Unlock()
			if acall != nil {
				acall <- adminResult{shard: shard, packet: packet}
			}

		case len(payload) > 0 && payload[0] == msgOwnersReply:
			tag, owned, err := DecodeOwnersReply(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			acall := c.acalls[tag]
			delete(c.acalls, tag)
			c.mu.Unlock()
			if acall != nil {
				acall <- adminResult{owned: owned}
			}

		case len(payload) > 0 && payload[0] == msgError:
			msg, _, err := consumeString(payload[1:])
			if err == nil {
				err = fmt.Errorf("wire: server error: %s", msg)
			}
			fatal = err

		default:
			fatal = fmt.Errorf("wire: unexpected message type %d", firstByte(payload))
		}
		if fatal != nil {
			break
		}
	}

	// Fail everything in flight, exactly once, then stop the writer.
	c.mu.Lock()
	if c.err == nil {
		c.err = fatal
	}
	calls := c.calls
	subs := c.subs
	tcalls := c.tcalls
	esubs := c.esubs
	acalls := c.acalls
	c.calls = make(map[uint64]*muxCall)
	c.subs = make(map[uint64]*StatsSub)
	c.tcalls = make(map[uint64]chan traceResult)
	c.esubs = make(map[uint64]*EventsSub)
	c.acalls = make(map[uint64]chan adminResult)
	c.mu.Unlock()
	for _, call := range calls {
		call.ch <- muxResult{err: fmt.Errorf("%w: %v", ErrClientClosed, fatal)}
	}
	for _, sub := range subs {
		sub.finish(fmt.Errorf("%w: %v", ErrClientClosed, fatal))
	}
	for _, tcall := range tcalls {
		tcall <- traceResult{err: fmt.Errorf("%w: %v", ErrClientClosed, fatal)}
	}
	for _, esub := range esubs {
		esub.finish(fmt.Errorf("%w: %v", ErrClientClosed, fatal))
	}
	for _, acall := range acalls {
		acall <- adminResult{err: fmt.Errorf("%w: %v", ErrClientClosed, fatal)}
	}
	c.qmu.Lock()
	c.stopping = true
	c.qmu.Unlock()
	c.cond.Signal()
	close(c.done)
}

// register allocates a fresh tag under mu, failing fast on a dead
// connection; attach files the caller's bookkeeping under the new tag
// while the lock is still held.
func (c *MuxClient) register(attach func(tag uint64)) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, fmt.Errorf("%w: %v", ErrClientClosed, c.err)
	}
	c.nextTag++
	tag := c.nextTag
	attach(tag)
	return tag, nil
}

// Submit sends one tagged query batch and waits for its replies. Safe
// for concurrent use: any number of goroutines may have batches in
// flight on the one connection, and each gets its own freshly allocated
// reply slice. Per-item failures ride Reply.Err exactly as in the
// lockstep client; a batch-scoped failure (a draining server, a decode
// error) returns a *TaggedError with the connection still healthy.
func (c *MuxClient) Submit(ctx context.Context, qs []Query) ([]Reply, error) {
	call := &muxCall{n: len(qs), ch: make(chan muxResult, 1)}
	tag, err := c.register(func(tag uint64) { c.calls[tag] = call })
	if err != nil {
		return nil, err
	}
	payload, err := AppendTaggedQueryBatch(nil, tag, qs)
	if err != nil {
		c.mu.Lock()
		delete(c.calls, tag)
		c.mu.Unlock()
		return nil, err
	}
	c.send(payload)
	select {
	case res := <-call.ch:
		return res.replies, res.err
	case <-ctx.Done():
		// Abandon the tag; the reader drops the late reply on the floor.
		c.mu.Lock()
		delete(c.calls, tag)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// SubscribeStats opens a server-pushed stats stream: one snapshot
// immediately, then one every interval (floored by the server at its
// minimum cadence). The pushes arrive on the returned sub's C. Close
// the sub to stop the stream.
func (c *MuxClient) SubscribeStats(interval float64) (*StatsSub, error) {
	ch := make(chan server.Stats, 4)
	sub := &StatsSub{C: ch, c: ch, cl: c}
	tag, err := c.register(func(tag uint64) { sub.tag = tag; c.subs[tag] = sub })
	if err != nil {
		return nil, err
	}
	c.send(AppendStatsSubscribe(nil, tag, interval))
	return sub, nil
}

// Stats fetches one live engine snapshot via a one-shot subscription —
// the v2 answer to the lockstep client's Stats round trip, served by a
// server push instead of a poll.
func (c *MuxClient) Stats(ctx context.Context) (server.Stats, error) {
	ch := make(chan server.Stats, 1)
	sub := &StatsSub{C: ch, c: ch, cl: c}
	tag, err := c.register(func(tag uint64) { sub.tag = tag; c.subs[tag] = sub })
	if err != nil {
		return server.Stats{}, err
	}
	// Interval 0: the server pushes exactly once and keeps no ticker.
	c.send(AppendStatsSubscribe(nil, tag, 0))
	defer func() {
		c.mu.Lock()
		delete(c.subs, tag)
		c.mu.Unlock()
	}()
	select {
	case st, ok := <-ch:
		if !ok {
			return server.Stats{}, sub.Err()
		}
		return st, nil
	case <-c.done:
		return server.Stats{}, ErrClientClosed
	case <-ctx.Done():
		return server.Stats{}, ctx.Err()
	}
}

// sendUnsubscribe tells the server a subscription tag is done; the
// client-side bookkeeping is already cleared.
func (c *MuxClient) sendUnsubscribe(tag uint64) error {
	c.mu.Lock()
	delete(c.subs, tag)
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return nil // connection already dead; nothing to tell
	}
	c.send(AppendStatsUnsubscribe(nil, tag))
	return nil
}

// Trace fetches the server's sampled decision traces over the query
// connection — the binary twin of GET /v1/trace. tenant and template
// filter ("" matches everything); n <= 0 applies the server's default
// bound.
func (c *MuxClient) Trace(ctx context.Context, tenant, template string, n int) (server.TraceView, error) {
	ch := make(chan traceResult, 1)
	tag, err := c.register(func(tag uint64) { c.tcalls[tag] = ch })
	if err != nil {
		return server.TraceView{}, err
	}
	if n < 0 {
		n = 0
	}
	c.send(AppendTraceRequest(nil, tag, tenant, template, uint64(n)))
	select {
	case res := <-ch:
		return res.view, res.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.tcalls, tag)
		c.mu.Unlock()
		return server.TraceView{}, ctx.Err()
	}
}

// Events fetches one economy-events snapshot — the binary twin of GET
// /v1/events. typ and tenant filter ("" matches everything); n <= 0
// applies the server's default bound.
func (c *MuxClient) Events(ctx context.Context, typ, tenant string, n int) (server.EventsView, error) {
	ch := make(chan server.EventsView, 1)
	sub := &EventsSub{C: ch, c: ch, cl: c}
	tag, err := c.register(func(tag uint64) { sub.tag = tag; c.esubs[tag] = sub })
	if err != nil {
		return server.EventsView{}, err
	}
	if n < 0 {
		n = 0
	}
	c.send(AppendEventsRequest(nil, tag, typ, tenant, uint64(n)))
	defer func() {
		c.mu.Lock()
		delete(c.esubs, tag)
		c.mu.Unlock()
	}()
	select {
	case view, ok := <-ch:
		if !ok {
			return server.EventsView{}, sub.Err()
		}
		return view, nil
	case <-c.done:
		return server.EventsView{}, ErrClientClosed
	case <-ctx.Done():
		return server.EventsView{}, ctx.Err()
	}
}

// SubscribeEvents opens a server-pushed economy-events stream: one
// installment of everything the journals buffer immediately, then every
// interval only the events the stream has not yet seen. The cursor
// lives server-side, so installments never repeat an event. Close the
// sub to stop the stream.
func (c *MuxClient) SubscribeEvents(interval float64) (*EventsSub, error) {
	ch := make(chan server.EventsView, 4)
	sub := &EventsSub{C: ch, c: ch, cl: c}
	tag, err := c.register(func(tag uint64) { sub.tag = tag; c.esubs[tag] = sub })
	if err != nil {
		return nil, err
	}
	c.send(AppendEventsSubscribe(nil, tag, interval))
	return sub, nil
}

// sendEventsUnsubscribe mirrors sendUnsubscribe for events streams.
func (c *MuxClient) sendEventsUnsubscribe(tag uint64) error {
	c.mu.Lock()
	delete(c.esubs, tag)
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return nil // connection already dead; nothing to tell
	}
	c.send(AppendEventsUnsubscribe(nil, tag))
	return nil
}

// Done is closed when the connection has died and every in-flight call
// has been failed; pools poll it to decide whether a cached client is
// still usable.
func (c *MuxClient) Done() <-chan struct{} { return c.done }

// adminCall opens a tag, sends the frame built by build, and waits for
// the admin reply. A tag-scoped refusal comes back as *TaggedError; a
// dead connection as ErrClientClosed.
func (c *MuxClient) adminCall(ctx context.Context, build func(tag uint64) []byte) (adminResult, error) {
	ch := make(chan adminResult, 1)
	tag, err := c.register(func(tag uint64) { c.acalls[tag] = ch })
	if err != nil {
		return adminResult{}, err
	}
	c.send(build(tag))
	select {
	case res := <-ch:
		return res, res.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.acalls, tag)
		c.mu.Unlock()
		return adminResult{}, ctx.Err()
	}
}

// FreezeShard tells the engine to stop deciding a shard's traffic: it
// answers "shard not owned here" from then on. Idempotent; the router's
// bootstrap move for slots another backend owns.
func (c *MuxClient) FreezeShard(ctx context.Context, shard int) error {
	_, err := c.adminCall(ctx, func(tag uint64) []byte {
		return AppendShardFreeze(nil, tag, shard)
	})
	return err
}

// ExtractShard freezes a shard and moves its state out as an opaque
// persist-encoded packet — step one of a live migration. The source
// keeps an empty, disowned slot.
func (c *MuxClient) ExtractShard(ctx context.Context, shard int) ([]byte, error) {
	res, err := c.adminCall(ctx, func(tag uint64) []byte {
		return AppendShardExtract(nil, tag, shard)
	})
	if err != nil {
		return nil, err
	}
	if res.shard != shard || len(res.packet) == 0 {
		return nil, fmt.Errorf("wire: extract of shard %d answered shard %d (%d packet bytes)", shard, res.shard, len(res.packet))
	}
	return res.packet, nil
}

// InstallShard adopts an extracted packet into the named slot — step
// two of a live migration. The slot must be frozen and unused; the
// engine validates the packet's fingerprint before touching anything.
func (c *MuxClient) InstallShard(ctx context.Context, shard int, packet []byte) error {
	res, err := c.adminCall(ctx, func(tag uint64) []byte {
		return AppendShardInstall(nil, tag, shard, packet)
	})
	if err != nil {
		return err
	}
	if res.shard != shard {
		return fmt.Errorf("wire: install of shard %d acked shard %d", shard, res.shard)
	}
	return nil
}

// Owners fetches the engine's shard-ownership map: one bool per slot,
// true where it decides traffic. A router bootstraps and audits its
// routing table with this.
func (c *MuxClient) Owners(ctx context.Context) ([]bool, error) {
	res, err := c.adminCall(ctx, func(tag uint64) []byte {
		return AppendOwnersRequest(nil, tag)
	})
	if err != nil {
		return nil, err
	}
	return res.owned, nil
}
