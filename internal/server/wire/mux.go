package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/server"
)

// ErrClientClosed is returned by MuxClient calls after Close, or after
// the connection died underneath the client.
var ErrClientClosed = errors.New("wire: client closed")

// TaggedError is a tag-scoped server failure: the batch or subscription
// it names failed, the connection did not. Submit returns it unwrapped
// in error form; it exists as a type so callers can distinguish "my
// batch was refused" (retryable elsewhere) from a dead connection.
type TaggedError struct {
	Tag uint64
	Msg string
}

func (e *TaggedError) Error() string {
	return fmt.Sprintf("wire: server error (tag %d): %s", e.Tag, e.Msg)
}

// muxCall is one in-flight tagged batch on the client side.
type muxCall struct {
	n  int // queries sent, for the reply-count sanity check
	ch chan muxResult
}

type muxResult struct {
	replies []Reply
	err     error
}

// StatsSub is one client-side stats subscription. Snapshots arrive on C
// as the server pushes them; the channel is closed when the
// subscription ends (Close, a tag-scoped server error, or connection
// teardown). A slow consumer drops pushes rather than stalling the
// connection's reader.
type StatsSub struct {
	C   <-chan server.Stats
	c   chan server.Stats
	tag uint64
	cl  *MuxClient

	mu     sync.Mutex
	closed bool
	err    error
}

// Err reports why the subscription ended, once C is closed; nil means a
// clean Close.
func (s *StatsSub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close unsubscribes: the server stops pushing and C is closed. Safe to
// call more than once.
func (s *StatsSub) Close() error {
	if !s.finish(nil) {
		return nil
	}
	return s.cl.sendUnsubscribe(s.tag)
}

// finish closes C exactly once, recording the cause; reports whether
// this call was the one that closed it.
func (s *StatsSub) finish(cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	s.err = cause
	close(s.c)
	return true
}

// MuxClient is the multiplexed (protocol v2) client: one connection,
// any number of goroutines, any number of outstanding batches. Each
// Submit rides a tagged frame; a reader goroutine demultiplexes replies
// back to their callers as the server completes them — out of order
// when the server's shard groups finish out of order — and a writer
// goroutine coalesces concurrent submitters' frames into shared
// flushes. The zero value is not usable; DialMux or NewMuxClient.
type MuxClient struct {
	conn net.Conn
	bw   *bufio.Writer

	// Writer queue, same shape as the server side: senders never block,
	// the writer drains whole bursts into one flush.
	qmu      sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	stopping bool
	wdone    chan struct{}

	mu      sync.Mutex
	calls   map[uint64]*muxCall
	subs    map[uint64]*StatsSub
	nextTag uint64
	err     error // sticky: why the connection died
	done    chan struct{}
}

// DialMux connects to a binary-protocol listener and negotiates
// protocol v2.
func DialMux(addr string) (*MuxClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl, err := NewMuxClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return cl, nil
}

// NewMuxClient performs the hello exchange on an established connection
// and starts the reader and writer goroutines. On error the connection
// is left to the caller to close.
func NewMuxClient(conn net.Conn) (*MuxClient, error) {
	c := &MuxClient{
		conn:  conn,
		bw:    bufio.NewWriterSize(conn, 64<<10),
		calls: make(map[uint64]*muxCall),
		subs:  make(map[uint64]*StatsSub),
		wdone: make(chan struct{}),
		done:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.qmu)

	// The hello exchange is the one lockstep moment: write ours, read
	// theirs, before any concurrency exists.
	if err := WriteFrame(c.bw, AppendHello(nil, ProtocolV2)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	payload, err := ReadFrame(br, nil)
	if err != nil {
		return nil, fmt.Errorf("wire: reading hello reply: %w", err)
	}
	if len(payload) > 0 && payload[0] == msgError {
		msg, _, err := consumeString(payload[1:])
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server rejected hello: %s", msg)
	}
	version, err := DecodeHello(payload)
	if err != nil {
		return nil, err
	}
	if version < ProtocolV2 {
		return nil, fmt.Errorf("wire: server protocol version %d < %d", version, ProtocolV2)
	}

	go c.writeLoop()
	go c.readLoop(br)
	return c, nil
}

// Close tears the connection down; in-flight Submits return
// ErrClientClosed and subscription channels close.
func (c *MuxClient) Close() error {
	err := c.conn.Close()
	<-c.done // reader observed the close and failed everything in flight
	return err
}

// send enqueues one encoded payload for the writer goroutine.
func (c *MuxClient) send(payload []byte) {
	c.qmu.Lock()
	c.queue = append(c.queue, payload)
	c.qmu.Unlock()
	c.cond.Signal()
}

// writeLoop mirrors the server's: drain bursts, one flush per burst, go
// quiet (but keep consuming) once the connection dies.
func (c *MuxClient) writeLoop() {
	defer close(c.wdone)
	var dead bool
	for {
		c.qmu.Lock()
		for len(c.queue) == 0 && !c.stopping {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.stopping {
			c.qmu.Unlock()
			return
		}
		batch := c.queue
		c.queue = nil
		c.qmu.Unlock()

		if dead {
			continue
		}
		for _, p := range batch {
			if err := WriteFrame(c.bw, p); err != nil {
				dead = true
				break
			}
		}
		if !dead && c.bw.Flush() != nil {
			dead = true
		}
	}
}

// readLoop demultiplexes inbound frames to their tags until the
// connection dies, then fails every outstanding call and subscription.
func (c *MuxClient) readLoop(br *bufio.Reader) {
	var rbuf []byte
	var fatal error
	for {
		payload, err := ReadFrame(br, rbuf)
		if err != nil {
			fatal = err
			break
		}
		rbuf = payload[:0]

		switch {
		case len(payload) > 0 && payload[0] == msgTaggedReplyBatch:
			// Decoded into a fresh slice: the caller owns it outright, and
			// concurrent callers must not share scratch space.
			tag, replies, err := DecodeTaggedReplyBatch(payload, nil)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			call := c.calls[tag]
			delete(c.calls, tag)
			c.mu.Unlock()
			if call == nil {
				continue // abandoned (ctx cancellation); drop it
			}
			if len(replies) != call.n {
				call.ch <- muxResult{err: fmt.Errorf("wire: %d replies for %d queries (tag %d)", len(replies), call.n, tag)}
				continue
			}
			call.ch <- muxResult{replies: replies}

		case len(payload) > 0 && payload[0] == msgTaggedError:
			tag, msg, err := DecodeTaggedError(payload)
			if err != nil {
				fatal = err
				break
			}
			terr := &TaggedError{Tag: tag, Msg: msg}
			c.mu.Lock()
			call := c.calls[tag]
			delete(c.calls, tag)
			sub := c.subs[tag]
			delete(c.subs, tag)
			c.mu.Unlock()
			if call != nil {
				call.ch <- muxResult{err: terr}
			}
			if sub != nil {
				sub.finish(terr)
			}

		case len(payload) > 0 && payload[0] == msgStatsPush:
			tag, st, err := DecodeStatsPush(payload)
			if err != nil {
				fatal = err
				break
			}
			c.mu.Lock()
			sub := c.subs[tag]
			c.mu.Unlock()
			if sub != nil {
				select {
				case sub.c <- st:
				default: // slow consumer: drop the push, never the reader
				}
			}

		case len(payload) > 0 && payload[0] == msgError:
			msg, _, err := consumeString(payload[1:])
			if err == nil {
				err = fmt.Errorf("wire: server error: %s", msg)
			}
			fatal = err

		default:
			fatal = fmt.Errorf("wire: unexpected message type %d", firstByte(payload))
		}
		if fatal != nil {
			break
		}
	}

	// Fail everything in flight, exactly once, then stop the writer.
	c.mu.Lock()
	if c.err == nil {
		c.err = fatal
	}
	calls := c.calls
	subs := c.subs
	c.calls = make(map[uint64]*muxCall)
	c.subs = make(map[uint64]*StatsSub)
	c.mu.Unlock()
	for _, call := range calls {
		call.ch <- muxResult{err: fmt.Errorf("%w: %v", ErrClientClosed, fatal)}
	}
	for _, sub := range subs {
		sub.finish(fmt.Errorf("%w: %v", ErrClientClosed, fatal))
	}
	c.qmu.Lock()
	c.stopping = true
	c.qmu.Unlock()
	c.cond.Signal()
	close(c.done)
}

// register allocates a fresh tag under mu, failing fast on a dead
// connection.
func (c *MuxClient) register(call *muxCall, sub *StatsSub) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, fmt.Errorf("%w: %v", ErrClientClosed, c.err)
	}
	c.nextTag++
	tag := c.nextTag
	if call != nil {
		c.calls[tag] = call
	}
	if sub != nil {
		sub.tag = tag
		c.subs[tag] = sub
	}
	return tag, nil
}

// Submit sends one tagged query batch and waits for its replies. Safe
// for concurrent use: any number of goroutines may have batches in
// flight on the one connection, and each gets its own freshly allocated
// reply slice. Per-item failures ride Reply.Err exactly as in the
// lockstep client; a batch-scoped failure (a draining server, a decode
// error) returns a *TaggedError with the connection still healthy.
func (c *MuxClient) Submit(ctx context.Context, qs []Query) ([]Reply, error) {
	call := &muxCall{n: len(qs), ch: make(chan muxResult, 1)}
	tag, err := c.register(call, nil)
	if err != nil {
		return nil, err
	}
	payload, err := AppendTaggedQueryBatch(nil, tag, qs)
	if err != nil {
		c.mu.Lock()
		delete(c.calls, tag)
		c.mu.Unlock()
		return nil, err
	}
	c.send(payload)
	select {
	case res := <-call.ch:
		return res.replies, res.err
	case <-ctx.Done():
		// Abandon the tag; the reader drops the late reply on the floor.
		c.mu.Lock()
		delete(c.calls, tag)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// SubscribeStats opens a server-pushed stats stream: one snapshot
// immediately, then one every interval (floored by the server at its
// minimum cadence). The pushes arrive on the returned sub's C. Close
// the sub to stop the stream.
func (c *MuxClient) SubscribeStats(interval float64) (*StatsSub, error) {
	ch := make(chan server.Stats, 4)
	sub := &StatsSub{C: ch, c: ch, cl: c}
	tag, err := c.register(nil, sub)
	if err != nil {
		return nil, err
	}
	c.send(AppendStatsSubscribe(nil, tag, interval))
	return sub, nil
}

// Stats fetches one live engine snapshot via a one-shot subscription —
// the v2 answer to the lockstep client's Stats round trip, served by a
// server push instead of a poll.
func (c *MuxClient) Stats(ctx context.Context) (server.Stats, error) {
	ch := make(chan server.Stats, 1)
	sub := &StatsSub{C: ch, c: ch, cl: c}
	tag, err := c.register(nil, sub)
	if err != nil {
		return server.Stats{}, err
	}
	// Interval 0: the server pushes exactly once and keeps no ticker.
	c.send(AppendStatsSubscribe(nil, tag, 0))
	defer func() {
		c.mu.Lock()
		delete(c.subs, tag)
		c.mu.Unlock()
	}()
	select {
	case st, ok := <-ch:
		if !ok {
			return server.Stats{}, sub.Err()
		}
		return st, nil
	case <-c.done:
		return server.Stats{}, ErrClientClosed
	case <-ctx.Done():
		return server.Stats{}, ctx.Err()
	}
}

// sendUnsubscribe tells the server a subscription tag is done; the
// client-side bookkeeping is already cleared.
func (c *MuxClient) sendUnsubscribe(tag uint64) error {
	c.mu.Lock()
	delete(c.subs, tag)
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return nil // connection already dead; nothing to tell
	}
	c.send(AppendStatsUnsubscribe(nil, tag))
	return nil
}
