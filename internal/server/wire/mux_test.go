package wire_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// newMuxServer is newWireServer with a per-shard decision-delay hook the
// out-of-order tests use to scramble completion order.
func newMuxServer(t *testing.T, shards int, delays []atomic.Int64) (*server.Server, string) {
	t.Helper()
	cat := catalog.TPCH(20)
	params := scheme.DefaultParams(cat)
	params.RegretFraction = 0.0001
	params.LoadFactor = 0.02
	cfg := server.Config{
		Shards: shards,
		Scheme: "econ-cheap",
		Params: params,
		Clock:  server.NewVirtualClock(),
	}
	if delays != nil {
		cfg.DecideDelay = func(shard int) {
			if d := delays[shard].Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- wire.Serve(ln, srv) }()
	t.Cleanup(func() {
		_ = ln.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("wire.Serve: %v", err)
		}
		_ = srv.Shutdown(context.Background())
	})
	return srv, ln.Addr().String()
}

// shardTenants finds one tenant name per shard, so each worker in the
// parity test owns a shard outright. QueryIDs come off a global counter
// — the one cross-shard nondeterminism — so the comparison zeroes them;
// everything else a shard computes depends only on its own arrival
// order, which per-tenant pinning makes deterministic.
func shardTenants(srv *server.Server, shards int) []string {
	tenants := make([]string, shards)
	found := 0
	for i := 0; found < shards; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		idx := srv.ShardIndex(server.Request{Tenant: name})
		if tenants[idx] == "" {
			tenants[idx] = name
			found++
		}
	}
	return tenants
}

// TestMuxOutOfOrderParity is the determinism contract under fire: N
// goroutines share one MuxClient against a server whose shards sleep
// random amounts before deciding, so replies complete in scrambled
// order. Every tagged reply must still be byte-identical (modulo the
// global QueryID counter) to a sequential lockstep replay on a fresh
// identically-seeded server — then the whole thing drains gracefully.
func TestMuxOutOfOrderParity(t *testing.T) {
	const shards = 4
	const rounds = 25
	delays := make([]atomic.Int64, shards)
	srv, addr := newMuxServer(t, shards, delays)
	tenants := shardTenants(srv, shards)

	rng := rand.New(rand.NewSource(1))
	for i := range delays {
		delays[i].Store(int64(time.Duration(rng.Intn(300)) * time.Microsecond))
	}

	templates := []string{"Q1", "Q3", "Q6", "Q10", "Q999"}
	batchFor := func(worker, round int) []wire.Query {
		qs := make([]wire.Query, 1+round%3)
		for i := range qs {
			qs[i] = wire.Query{
				Tenant:   tenants[worker],
				Template: templates[(worker+round+i)%len(templates)],
			}
		}
		return qs
	}

	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][][]wire.Reply, shards) // [worker][round]
	var wg sync.WaitGroup
	errCh := make(chan error, shards)
	for w := 0; w < shards; w++ {
		got[w] = make([][]wire.Reply, rounds)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				replies, err := cl.Submit(context.Background(), batchFor(w, r))
				if err != nil {
					errCh <- fmt.Errorf("worker %d round %d: %w", w, r, err)
					return
				}
				got[w][r] = replies
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Graceful drain: server first, then the client; both must come back.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	// Sequential lockstep replay on a fresh twin. Worker-major order is
	// fine: each worker's queries live on their own shard, so per-shard
	// arrival order is identical to the concurrent run's.
	srv2, addr2 := newMuxServer(t, shards, nil)
	if want := tenants; !equalStrings(want, shardTenants(srv2, shards)) {
		t.Fatal("twin server hashed tenants differently")
	}
	cl2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for w := 0; w < shards; w++ {
		for r := 0; r < rounds; r++ {
			want, err := cl2.Submit(batchFor(w, r))
			if err != nil {
				t.Fatal(err)
			}
			if !repliesEqualModuloID(t, got[w][r], want) {
				t.Fatalf("worker %d round %d: pipelined replies diverge from lockstep replay\n got: %+v\nwant: %+v",
					w, r, got[w][r], want)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// repliesEqualModuloID compares two reply slices byte-for-byte on the
// wire encoding after zeroing QueryID — the one field minted from a
// global counter that concurrent shards race for.
func repliesEqualModuloID(t *testing.T, a, b []wire.Reply) bool {
	t.Helper()
	norm := func(rs []wire.Reply) []byte {
		c := make([]wire.Reply, len(rs))
		copy(c, rs)
		for i := range c {
			c[i].Resp.QueryID = 0
		}
		return wire.AppendReplyBatch(nil, c)
	}
	return bytes.Equal(norm(a), norm(b))
}

// TestMuxRawOutOfOrder proves reordering at the frame level: with the
// first tenant's shard pinned slow, a batch tagged 2 sent after a batch
// tagged 1 comes back first.
func TestMuxRawOutOfOrder(t *testing.T) {
	const shards = 4
	delays := make([]atomic.Int64, shards)
	srv, addr := newMuxServer(t, shards, delays)
	tenants := shardTenants(srv, shards)
	slowShard := srv.ShardIndex(server.Request{Tenant: tenants[0]})
	delays[slowShard].Store(int64(150 * time.Millisecond))

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.AppendHello(nil, wire.ProtocolV2)); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeHello(payload); err != nil {
		t.Fatalf("hello reply: %v", err)
	}

	slow, err := wire.AppendTaggedQueryBatch(nil, 1, []wire.Query{{Tenant: tenants[0], Template: "Q1"}})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := wire.AppendTaggedQueryBatch(nil, 2, []wire.Query{{Tenant: tenants[1], Template: "Q6"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, slow); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, fast); err != nil {
		t.Fatal(err)
	}

	var order []uint64
	for len(order) < 2 {
		payload, err := wire.ReadFrame(conn, nil)
		if err != nil {
			t.Fatal(err)
		}
		tag, replies, err := wire.DecodeTaggedReplyBatch(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(replies) != 1 || replies[0].Err != "" {
			t.Fatalf("tag %d: replies = %+v", tag, replies)
		}
		order = append(order, tag)
	}
	if order[0] != 2 || order[1] != 1 {
		t.Errorf("completion order = %v, want [2 1] (fast batch overtakes slow)", order)
	}
}

// TestMuxTaggedErrorKeepsConnection: a malformed batch body fails only
// its own tag; the connection keeps serving.
func TestMuxTaggedErrorKeepsConnection(t *testing.T) {
	srv, addr := newMuxServer(t, 2, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.AppendHello(nil, wire.ProtocolV2)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(conn, nil); err != nil {
		t.Fatal(err)
	}

	// Tag 7 with a truncated body: type byte, tag, then garbage where the
	// query count should parse.
	good, err := wire.AppendTaggedQueryBatch(nil, 7, []wire.Query{{Template: "Q1"}})
	if err != nil {
		t.Fatal(err)
	}
	bad := good[:3] // enough for type+tag, body cut mid-structure
	if err := wire.WriteFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	tag, msg, err := wire.DecodeTaggedError(payload)
	if err != nil {
		t.Fatalf("expected tagged error frame, got %v", err)
	}
	if tag != 7 || msg == "" {
		t.Errorf("tagged error = (%d, %q), want tag 7 with a message", tag, msg)
	}

	// Same connection, same tag, now well-formed: still served.
	if err := wire.WriteFrame(conn, good); err != nil {
		t.Fatal(err)
	}
	payload, err = wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	tag, replies, err := wire.DecodeTaggedReplyBatch(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 7 || len(replies) != 1 || replies[0].Err != "" {
		t.Fatalf("post-error submit: tag=%d replies=%+v", tag, replies)
	}
	if st := srv.Stats(); st.Queries != 1 {
		t.Errorf("queries = %d, want 1", st.Queries)
	}
}

// TestMuxStatsStreaming: a subscription pushes immediately and then on
// its cadence; Close stops the stream and closes the channel.
func TestMuxStatsStreaming(t *testing.T) {
	_, addr := newMuxServer(t, 2, nil)
	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Submit(context.Background(), []wire.Query{{Template: "Q6"}}); err != nil {
		t.Fatal(err)
	}
	sub, err := cl.SubscribeStats(0.005)
	if err != nil {
		t.Fatal(err)
	}
	var pushes int
	deadline := time.After(5 * time.Second)
	for pushes < 3 {
		select {
		case st, ok := <-sub.C:
			if !ok {
				t.Fatalf("stream closed after %d pushes: %v", pushes, sub.Err())
			}
			if st.Queries != 1 {
				t.Errorf("pushed stats queries = %d, want 1", st.Queries)
			}
			pushes++
		case <-deadline:
			t.Fatalf("only %d pushes before deadline", pushes)
		}
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	// The channel must close promptly once unsubscribed (a straggler push
	// or two may still be buffered).
	for {
		select {
		case _, ok := <-sub.C:
			if !ok {
				if sub.Err() != nil {
					t.Errorf("clean close recorded err = %v", sub.Err())
				}
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatal("subscription channel never closed after Close")
		}
	}
}

// TestMuxStatsOneShot: MuxClient.Stats is a single server push, and it
// sees the same engine the lockstep path does.
func TestMuxStatsOneShot(t *testing.T) {
	srv, addr := newMuxServer(t, 2, nil)
	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(context.Background(), []wire.Query{{Template: "Q1"}}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 {
		t.Errorf("stats queries = %d, want 3", st.Queries)
	}
	if want := srv.Stats(); st.Queries != want.Queries || len(st.Tenants) != len(want.Tenants) {
		t.Errorf("pushed stats disagree with direct snapshot: %+v vs %+v", st, want)
	}
}

// TestMuxSubscriptionCap: the 17th concurrent streaming subscription is
// refused with a tagged error — and only that tag suffers.
func TestMuxSubscriptionCap(t *testing.T) {
	_, addr := newMuxServer(t, 2, nil)
	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	subs := make([]*wire.StatsSub, 0, 16)
	for i := 0; i < 16; i++ {
		sub, err := cl.SubscribeStats(10) // long cadence: just holding slots
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	over, err := cl.SubscribeStats(10)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-over.C:
		// The immediate push may land before the refusal is processed, but
		// the stream must end in a TaggedError either way.
		if ok {
			select {
			case _, ok2 := <-over.C:
				if ok2 {
					t.Fatal("over-cap subscription kept streaming")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("over-cap subscription never refused")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("over-cap subscription never answered")
	}
	if over.Err() == nil || !strings.Contains(over.Err().Error(), "too many") {
		t.Errorf("over-cap err = %v, want too-many-subscriptions", over.Err())
	}
	// The connection is still healthy for queries and the original subs.
	if _, err := cl.Submit(context.Background(), []wire.Query{{Template: "Q6"}}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := sub.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxDrainInFlight: Submits racing a graceful shutdown either get
// full replies or a server-closed error — never a hang, and the
// connection survives to report the drain tag by tag.
func TestMuxDrainInFlight(t *testing.T) {
	srv, addr := newMuxServer(t, 4, nil)
	cl, err := wire.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				replies, err := cl.Submit(context.Background(), []wire.Query{{
					Tenant:   fmt.Sprintf("drain-%d", w),
					Template: "Q1",
				}})
				if err != nil {
					var terr *wire.TaggedError
					if strings.Contains(err.Error(), "closed") || (asTagged(err, &terr) && strings.Contains(terr.Msg, "closed")) {
						return // drain reached this batch; expected
					}
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if len(replies) != 1 {
					errs <- fmt.Errorf("worker %d iter %d: %d replies", w, i, len(replies))
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("workers hung across drain")
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func asTagged(err error, target **wire.TaggedError) bool {
	te, ok := err.(*wire.TaggedError)
	if ok {
		*target = te
	}
	return ok
}
