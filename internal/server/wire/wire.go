// Package wire is the daemon's length-prefixed binary protocol: the
// fast front the JSON/HTTP API is too slow for. A connection carries a
// sequence of frames, each a 4-byte little-endian payload length
// followed by the payload; the first payload byte is the message type.
// Clients send query batches (one frame per batch, a single query being
// a batch of one) and read one reply batch per request frame, so a
// connection is reused for its whole lifetime — no per-query connection
// setup, no HTTP headers, no JSON.
//
//	frame      := len uint32 LE | payload
//	payload    := msgQueryBatch   | uvarint n | n × query
//	            | msgReplyBatch   | uvarint n | n × reply
//	            | msgError        | string          (whole-frame failure)
//	            | msgStatsRequest                   (live snapshot request)
//	            | msgStats        | json            (server.Stats snapshot)
//	            | msgSnapshotRequest                (admin: persist state now)
//	            | msgSnapshotReply | string path | uvarint bytes
//	query      := string tenant | string template | byte flags
//	              | f64 selectivity?   (flags&flagSelectivity)
//	              | budget?            (flags&flagBudget)
//	budget     := byte shape | f64 priceUSD | f64 tmaxSec | f64 k
//	reply      := byte 0 | response  — or —  byte 1 | string error
//	response   := varint queryID | uvarint shard | string template
//	              | f64 selectivity | f64 arrivalSec | byte declined
//	              | string location | f64 responseSec | f64 chargedUSD
//	              | f64 profitUSD | uvarint investments | uvarint failures
//	string     := uvarint len | bytes
//
// Numbers that are naturally small ride varints; money and time ride
// IEEE-754 doubles, matching the JSON API's dollar/second units exactly.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/binenc"
	"repro/internal/server"
)

// Message types.
const (
	msgQueryBatch      byte = 1
	msgReplyBatch      byte = 2
	msgError           byte = 3
	msgStatsRequest    byte = 4
	msgStats           byte = 5
	msgSnapshotRequest byte = 6
	msgSnapshotReply   byte = 7
)

// Query flags.
const (
	flagSelectivity byte = 1 << 0
	flagBudget      byte = 1 << 1
)

// Budget shapes on the wire.
const (
	shapeStep byte = iota
	shapeLinear
	shapeConvex
	shapeConcave
)

// MaxFrame bounds one frame's payload: far above any sane batch, low
// enough that a corrupt length prefix cannot balloon memory.
const MaxFrame = 16 << 20

// MaxBatch bounds the queries in one frame.
const MaxBatch = 4096

// Query is the wire form of one submission — the binary twin of the
// HTTP API's QueryRequest.
type Query struct {
	Tenant   string
	Template string
	// Selectivity with HasSelectivity false means "unset": the shard
	// draws one. HasSelectivity true submits the value verbatim, so an
	// explicit zero survives the trip.
	Selectivity    float64
	HasSelectivity bool
	// Budget nil applies the server's default budget policy.
	Budget *server.BudgetJSON
}

// Request materialises the engine request (budget function included).
func (q *Query) Request() (server.Request, error) {
	bf, err := q.Budget.Func()
	if err != nil {
		return server.Request{}, err
	}
	return server.Request{
		Tenant:         q.Tenant,
		Template:       q.Template,
		Selectivity:    q.Selectivity,
		HasSelectivity: q.HasSelectivity,
		Budget:         bf,
	}, nil
}

// Reply is the wire form of one positional result: the response, or the
// per-query error that prevented one.
type Reply struct {
	Resp server.Response
	Err  string
}

// --- primitive append/consume helpers ------------------------------------
//
// Thin aliases over the shared codec (internal/binenc), which owns the
// bounds checks for both this protocol and the state-snapshot format.

var (
	appendString   = binenc.AppendString
	appendF64      = binenc.AppendF64
	appendBool     = binenc.AppendBool
	consumeUvarint = binenc.Uvarint
	consumeVarint  = binenc.Varint
	consumeString  = binenc.String
	consumeF64     = binenc.F64
	consumeByte    = binenc.Byte
)

// --- query batch ----------------------------------------------------------

func budgetShapeByte(shape string) (byte, error) {
	switch shape {
	case "", "step":
		return shapeStep, nil
	case "linear":
		return shapeLinear, nil
	case "convex":
		return shapeConvex, nil
	case "concave":
		return shapeConcave, nil
	default:
		return 0, fmt.Errorf("wire: unknown budget shape %q", shape)
	}
}

func budgetShapeString(b byte) (string, error) {
	switch b {
	case shapeStep:
		return "step", nil
	case shapeLinear:
		return "linear", nil
	case shapeConvex:
		return "convex", nil
	case shapeConcave:
		return "concave", nil
	default:
		return "", fmt.Errorf("wire: unknown budget shape byte %d", b)
	}
}

// AppendQueryBatch appends one query-batch payload to b.
func AppendQueryBatch(b []byte, qs []Query) ([]byte, error) {
	if len(qs) == 0 || len(qs) > MaxBatch {
		return nil, fmt.Errorf("wire: batch size %d outside [1, %d]", len(qs), MaxBatch)
	}
	b = append(b, msgQueryBatch)
	b = binary.AppendUvarint(b, uint64(len(qs)))
	for i := range qs {
		q := &qs[i]
		b = appendString(b, q.Tenant)
		b = appendString(b, q.Template)
		// A non-zero Selectivity is an explicit request even without the
		// flag, matching server.Request's contract ("non-zero
		// selectivities need not set it") — only the explicit-zero case
		// needs HasSelectivity to be distinguishable from unset.
		hasSel := q.HasSelectivity || q.Selectivity != 0
		var flags byte
		if hasSel {
			flags |= flagSelectivity
		}
		if q.Budget != nil {
			flags |= flagBudget
		}
		b = append(b, flags)
		if hasSel {
			b = appendF64(b, q.Selectivity)
		}
		if q.Budget != nil {
			shape, err := budgetShapeByte(q.Budget.Shape)
			if err != nil {
				return nil, err
			}
			b = append(b, shape)
			b = appendF64(b, q.Budget.PriceUSD)
			b = appendF64(b, q.Budget.TmaxSec)
			b = appendF64(b, q.Budget.K)
		}
	}
	return b, nil
}

// DecodeQueryBatch parses a query-batch payload (msg byte included),
// appending into qs to reuse its capacity.
func DecodeQueryBatch(payload []byte, qs []Query) ([]Query, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return nil, err
	}
	if typ != msgQueryBatch {
		return nil, fmt.Errorf("wire: expected query batch, got message type %d", typ)
	}
	n, rest, err := consumeUvarint(rest)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > MaxBatch {
		return nil, fmt.Errorf("wire: batch size %d outside [1, %d]", n, MaxBatch)
	}
	qs = qs[:0]
	for i := uint64(0); i < n; i++ {
		var q Query
		if q.Tenant, rest, err = consumeString(rest); err != nil {
			return nil, err
		}
		if q.Template, rest, err = consumeString(rest); err != nil {
			return nil, err
		}
		var flags byte
		if flags, rest, err = consumeByte(rest); err != nil {
			return nil, err
		}
		if flags&flagSelectivity != 0 {
			q.HasSelectivity = true
			if q.Selectivity, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
		}
		if flags&flagBudget != 0 {
			var shape byte
			if shape, rest, err = consumeByte(rest); err != nil {
				return nil, err
			}
			shapeName, err2 := budgetShapeString(shape)
			if err2 != nil {
				return nil, err2
			}
			bj := &server.BudgetJSON{Shape: shapeName}
			if bj.PriceUSD, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
			if bj.TmaxSec, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
			if bj.K, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
			q.Budget = bj
		}
		qs = append(qs, q)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after query batch", len(rest))
	}
	return qs, nil
}

// --- reply batch ----------------------------------------------------------

// AppendReplyBatch appends one reply-batch payload to b.
func AppendReplyBatch(b []byte, rs []Reply) []byte {
	b = append(b, msgReplyBatch)
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		if r.Err != "" {
			b = append(b, 1)
			b = appendString(b, r.Err)
			continue
		}
		b = append(b, 0)
		resp := &r.Resp
		b = binary.AppendVarint(b, resp.QueryID)
		b = binary.AppendUvarint(b, uint64(resp.Shard))
		b = appendString(b, resp.Template)
		b = appendF64(b, resp.Selectivity)
		b = appendF64(b, resp.ArrivalSec)
		b = appendBool(b, resp.Declined)
		b = appendString(b, resp.Location)
		b = appendF64(b, resp.ResponseTimeSec)
		b = appendF64(b, resp.ChargedUSD)
		b = appendF64(b, resp.ProfitUSD)
		b = binary.AppendUvarint(b, uint64(resp.Investments))
		b = binary.AppendUvarint(b, uint64(resp.Failures))
	}
	return b
}

// DecodeReplyBatch parses a reply-batch payload (msg byte included),
// appending into rs to reuse its capacity. A msgError payload comes back
// as an error.
func DecodeReplyBatch(payload []byte, rs []Reply) ([]Reply, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return nil, err
	}
	if typ == msgError {
		msg, _, err := consumeString(rest)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server error: %s", msg)
	}
	if typ != msgReplyBatch {
		return nil, fmt.Errorf("wire: expected reply batch, got message type %d", typ)
	}
	n, rest, err := consumeUvarint(rest)
	if err != nil {
		return nil, err
	}
	if n > MaxBatch {
		return nil, fmt.Errorf("wire: reply batch size %d exceeds %d", n, MaxBatch)
	}
	rs = rs[:0]
	for i := uint64(0); i < n; i++ {
		var r Reply
		status, rest2, err := consumeByte(rest)
		if err != nil {
			return nil, err
		}
		rest = rest2
		if status == 1 {
			if r.Err, rest, err = consumeString(rest); err != nil {
				return nil, err
			}
			rs = append(rs, r)
			continue
		}
		if status != 0 {
			return nil, fmt.Errorf("wire: bad reply status %d", status)
		}
		resp := &r.Resp
		if resp.QueryID, rest, err = consumeVarint(rest); err != nil {
			return nil, err
		}
		var u uint64
		if u, rest, err = consumeUvarint(rest); err != nil {
			return nil, err
		}
		resp.Shard = int(u)
		if resp.Template, rest, err = consumeString(rest); err != nil {
			return nil, err
		}
		if resp.Selectivity, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if resp.ArrivalSec, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		var declined byte
		if declined, rest, err = consumeByte(rest); err != nil {
			return nil, err
		}
		resp.Declined = declined != 0
		if resp.Location, rest, err = consumeString(rest); err != nil {
			return nil, err
		}
		if resp.ResponseTimeSec, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if resp.ChargedUSD, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if resp.ProfitUSD, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if u, rest, err = consumeUvarint(rest); err != nil {
			return nil, err
		}
		resp.Investments = int(u)
		if u, rest, err = consumeUvarint(rest); err != nil {
			return nil, err
		}
		resp.Failures = int(u)
		rs = append(rs, r)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after reply batch", len(rest))
	}
	return rs, nil
}

// appendErrorPayload builds a msgError payload.
func appendErrorPayload(b []byte, msg string) []byte {
	b = append(b, msgError)
	return appendString(b, msg)
}

// --- stats frames ---------------------------------------------------------

// AppendStatsRequest appends a stats-request payload: a client asking for
// the live engine snapshot over the same connection it submits on,
// replacing /v1/stats polling for binary-front clients.
func AppendStatsRequest(b []byte) []byte {
	return append(b, msgStatsRequest)
}

// AppendStats appends a stats payload. The snapshot rides as JSON inside
// the binary frame: stats are read at human cadence, not per query, so
// the self-describing encoding (which tracks the evolving Stats schema
// for free) beats hand-rolled field codecs here — framing, connection
// reuse and the hot query path stay fully binary.
func AppendStats(b []byte, st server.Stats) ([]byte, error) {
	data, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	b = append(b, msgStats)
	return append(b, data...), nil
}

// DecodeStats parses a stats payload (msg byte included). A msgError
// payload comes back as an error.
func DecodeStats(payload []byte) (server.Stats, error) {
	var st server.Stats
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return st, err
	}
	if typ == msgError {
		msg, _, err := consumeString(rest)
		if err != nil {
			return st, err
		}
		return st, fmt.Errorf("wire: server error: %s", msg)
	}
	if typ != msgStats {
		return st, fmt.Errorf("wire: expected stats, got message type %d", typ)
	}
	if err := json.Unmarshal(rest, &st); err != nil {
		return st, fmt.Errorf("wire: bad stats payload: %w", err)
	}
	return st, nil
}

// IsStatsRequest reports whether a decoded payload is a stats request.
func IsStatsRequest(payload []byte) bool {
	return len(payload) > 0 && payload[0] == msgStatsRequest
}

// --- snapshot (admin) frames ----------------------------------------------

// AppendSnapshotRequest appends a snapshot-request payload: an admin
// client asking the daemon to persist its economy state to the
// configured state path right now (an on-demand checkpoint).
func AppendSnapshotRequest(b []byte) []byte {
	return append(b, msgSnapshotRequest)
}

// IsSnapshotRequest reports whether a decoded payload is a snapshot
// request.
func IsSnapshotRequest(payload []byte) bool {
	return len(payload) > 0 && payload[0] == msgSnapshotRequest
}

// AppendSnapshotReply appends a snapshot-reply payload: where the
// snapshot landed and how many bytes it encoded to.
func AppendSnapshotReply(b []byte, path string, size int64) []byte {
	b = append(b, msgSnapshotReply)
	b = appendString(b, path)
	return binary.AppendUvarint(b, uint64(size))
}

// DecodeSnapshotReply parses a snapshot-reply payload (msg byte
// included). A msgError payload comes back as an error.
func DecodeSnapshotReply(payload []byte) (path string, size int64, err error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return "", 0, err
	}
	if typ == msgError {
		msg, _, err := consumeString(rest)
		if err != nil {
			return "", 0, err
		}
		return "", 0, fmt.Errorf("wire: server error: %s", msg)
	}
	if typ != msgSnapshotReply {
		return "", 0, fmt.Errorf("wire: expected snapshot reply, got message type %d", typ)
	}
	if path, rest, err = consumeString(rest); err != nil {
		return "", 0, err
	}
	u, rest, err := consumeUvarint(rest)
	if err != nil {
		return "", 0, err
	}
	if u > math.MaxInt64 {
		return "", 0, fmt.Errorf("wire: snapshot size %d out of range", u)
	}
	if len(rest) != 0 {
		return "", 0, fmt.Errorf("wire: %d trailing bytes after snapshot reply", len(rest))
	}
	return path, int64(u), nil
}

// --- framing --------------------------------------------------------------

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame's payload, reusing buf when it is large
// enough. io.EOF before the first header byte means a clean close.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame header")
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return buf, nil
}
