// Package wire is the daemon's length-prefixed binary protocol: the
// fast front the JSON/HTTP API is too slow for. A connection carries a
// sequence of frames, each a 4-byte little-endian payload length
// followed by the payload; the first payload byte is the message type.
//
// The protocol has two generations, autodetected per connection by the
// first frame a client sends:
//
// v1 (lockstep): clients send query batches and read one reply batch per
// request frame — exactly one request outstanding per connection. Served
// forever as the compat path for wire.Client.
//
//	frame      := len uint32 LE | payload
//	payload v1 := msgQueryBatch   | uvarint n | n × query
//	            | msgReplyBatch   | uvarint n | n × reply
//	            | msgError        | string          (whole-frame failure)
//	            | msgStatsRequest                   (live snapshot request)
//	            | msgStats        | json            (server.Stats snapshot)
//	            | msgSnapshotRequest                (admin: persist state now)
//	            | msgSnapshotReply | string path | uvarint bytes
//
// v2 (multiplexed): the connection opens with a hello/version exchange,
// after which every frame carries a client-chosen uvarint tag. Any
// number of tagged query batches may be outstanding; the server accepts
// new frames while prior batches are still deciding and replies complete
// OUT OF ORDER as their shard groups finish, matched to requests by tag.
// Errors are scoped to a tag — one bad batch answers a tagged error and
// the connection keeps serving — and a stats subscription streams
// server-pushed snapshots without polling. MuxClient speaks v2 and is
// safe for concurrent use.
//
//	payload v2 := msgHello             | uvarint version
//	            | msgTaggedQueryBatch  | uvarint tag | uvarint n | n × query
//	            | msgTaggedReplyBatch  | uvarint tag | uvarint n | n × reply
//	            | msgTaggedError       | uvarint tag | string
//	            | msgStatsSubscribe    | uvarint tag | f64 intervalSec
//	            | msgStatsUnsubscribe  | uvarint tag
//	            | msgStatsPush         | uvarint tag | json
//	            | msgTraceRequest      | uvarint tag | string tenant | string template | uvarint n
//	            | msgTracePush         | uvarint tag | json            (server.TraceView)
//	            | msgEventsRequest     | uvarint tag | string type | string tenant | uvarint n
//	            | msgEventsPush        | uvarint tag | json            (server.EventsView)
//	            | msgEventsSubscribe   | uvarint tag | f64 intervalSec
//	            | msgEventsUnsubscribe | uvarint tag
//
// The observability frames (trace, events) follow the stats convention:
// requests and subscriptions are fully binary, the snapshot bodies ride
// as JSON inside the frame — they flow at human cadence, not per query.
// An events subscription is cursored: each push carries only events the
// subscription has not yet seen, plus the journal's running totals.
//
// Shared item grammar (identical bytes in both generations, so a tagged
// batch's content is byte-identical to its lockstep answer):
//
//	query      := string tenant | string template | byte flags
//	              | f64 selectivity?   (flags&flagSelectivity)
//	              | budget?            (flags&flagBudget)
//	budget     := byte shape | f64 priceUSD | f64 tmaxSec | f64 k
//	reply      := byte 0 | response  — or —  byte 1 | string error
//	response   := varint queryID | uvarint shard | string template
//	              | f64 selectivity | f64 arrivalSec | byte declined
//	              | string location | f64 responseSec | f64 chargedUSD
//	              | f64 profitUSD | uvarint investments | uvarint failures
//	string     := uvarint len | bytes
//
// Numbers that are naturally small ride varints; money and time ride
// IEEE-754 doubles, matching the JSON API's dollar/second units exactly.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/binenc"
	"repro/internal/server"
)

// Message types.
const (
	msgQueryBatch      byte = 1
	msgReplyBatch      byte = 2
	msgError           byte = 3
	msgStatsRequest    byte = 4
	msgStats           byte = 5
	msgSnapshotRequest byte = 6
	msgSnapshotReply   byte = 7

	// v2 (multiplexed) message types.
	msgHello            byte = 8
	msgTaggedQueryBatch byte = 9
	msgTaggedReplyBatch byte = 10
	msgTaggedError      byte = 11
	msgStatsSubscribe   byte = 12
	msgStatsUnsubscribe byte = 13
	msgStatsPush        byte = 14

	// v2 observability message types.
	msgTraceRequest      byte = 15
	msgTracePush         byte = 16
	msgEventsRequest     byte = 17
	msgEventsPush        byte = 18
	msgEventsSubscribe   byte = 19
	msgEventsUnsubscribe byte = 20
)

// ProtocolV2 is the version the hello frame negotiates. A server
// answers hello with its own version; both sides then speak the lower
// of the two (today there is only one multiplexed version).
const ProtocolV2 = 2

// Query flags.
const (
	flagSelectivity byte = 1 << 0
	flagBudget      byte = 1 << 1
)

// Budget shapes on the wire.
const (
	shapeStep byte = iota
	shapeLinear
	shapeConvex
	shapeConcave
)

// MaxFrame bounds one frame's payload: far above any sane batch, low
// enough that a corrupt length prefix cannot balloon memory.
const MaxFrame = 16 << 20

// MaxBatch bounds the queries in one frame.
const MaxBatch = 4096

// Query is the wire form of one submission — the binary twin of the
// HTTP API's QueryRequest.
type Query struct {
	Tenant   string
	Template string
	// Selectivity with HasSelectivity false means "unset": the shard
	// draws one. HasSelectivity true submits the value verbatim, so an
	// explicit zero survives the trip.
	Selectivity    float64
	HasSelectivity bool
	// Budget nil applies the server's default budget policy.
	Budget *server.BudgetJSON
}

// Request materialises the engine request (budget function included).
func (q *Query) Request() (server.Request, error) {
	bf, err := q.Budget.Func()
	if err != nil {
		return server.Request{}, err
	}
	return server.Request{
		Tenant:         q.Tenant,
		Template:       q.Template,
		Selectivity:    q.Selectivity,
		HasSelectivity: q.HasSelectivity,
		Budget:         bf,
	}, nil
}

// Reply is the wire form of one positional result: the response, or the
// per-query error that prevented one.
type Reply struct {
	Resp server.Response
	Err  string
}

// --- primitive append/consume helpers ------------------------------------
//
// Thin aliases over the shared codec (internal/binenc), which owns the
// bounds checks for both this protocol and the state-snapshot format.

var (
	appendString   = binenc.AppendString
	appendF64      = binenc.AppendF64
	appendBool     = binenc.AppendBool
	consumeUvarint = binenc.Uvarint
	consumeVarint  = binenc.Varint
	consumeString  = binenc.String
	consumeBytes   = binenc.Bytes
	consumeF64     = binenc.F64
	consumeByte    = binenc.Byte
)

// --- query batch ----------------------------------------------------------

func budgetShapeByte(shape string) (byte, error) {
	switch shape {
	case "", "step":
		return shapeStep, nil
	case "linear":
		return shapeLinear, nil
	case "convex":
		return shapeConvex, nil
	case "concave":
		return shapeConcave, nil
	default:
		return 0, fmt.Errorf("wire: unknown budget shape %q", shape)
	}
}

func budgetShapeString(b byte) (string, error) {
	switch b {
	case shapeStep:
		return "step", nil
	case shapeLinear:
		return "linear", nil
	case shapeConvex:
		return "convex", nil
	case shapeConcave:
		return "concave", nil
	default:
		return "", fmt.Errorf("wire: unknown budget shape byte %d", b)
	}
}

// AppendQueryBatch appends one v1 query-batch payload to b.
func AppendQueryBatch(b []byte, qs []Query) ([]byte, error) {
	if len(qs) == 0 || len(qs) > MaxBatch {
		return nil, fmt.Errorf("wire: batch size %d outside [1, %d]", len(qs), MaxBatch)
	}
	return appendQueryItems(append(b, msgQueryBatch), qs)
}

// AppendTaggedQueryBatch appends one v2 tagged query-batch payload: the
// same item bytes as v1 behind a client-chosen tag that the matching
// reply (or tag-scoped error) will carry back.
func AppendTaggedQueryBatch(b []byte, tag uint64, qs []Query) ([]byte, error) {
	if len(qs) == 0 || len(qs) > MaxBatch {
		return nil, fmt.Errorf("wire: batch size %d outside [1, %d]", len(qs), MaxBatch)
	}
	b = append(b, msgTaggedQueryBatch)
	b = binary.AppendUvarint(b, tag)
	return appendQueryItems(b, qs)
}

// appendQueryItems appends the shared batch body: uvarint count then the
// query items.
func appendQueryItems(b []byte, qs []Query) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(qs)))
	for i := range qs {
		q := &qs[i]
		b = appendString(b, q.Tenant)
		b = appendString(b, q.Template)
		// A non-zero Selectivity is an explicit request even without the
		// flag, matching server.Request's contract ("non-zero
		// selectivities need not set it") — only the explicit-zero case
		// needs HasSelectivity to be distinguishable from unset.
		hasSel := q.HasSelectivity || q.Selectivity != 0
		var flags byte
		if hasSel {
			flags |= flagSelectivity
		}
		if q.Budget != nil {
			flags |= flagBudget
		}
		b = append(b, flags)
		if hasSel {
			b = appendF64(b, q.Selectivity)
		}
		if q.Budget != nil {
			shape, err := budgetShapeByte(q.Budget.Shape)
			if err != nil {
				return nil, err
			}
			b = append(b, shape)
			b = appendF64(b, q.Budget.PriceUSD)
			b = appendF64(b, q.Budget.TmaxSec)
			b = appendF64(b, q.Budget.K)
		}
	}
	return b, nil
}

// DecodeQueryBatch parses a v1 query-batch payload (msg byte included),
// appending into qs to reuse its capacity.
func DecodeQueryBatch(payload []byte, qs []Query) ([]Query, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return nil, err
	}
	if typ != msgQueryBatch {
		return nil, fmt.Errorf("wire: expected query batch, got message type %d", typ)
	}
	return consumeQueryItems(rest, qs)
}

// decodeQueryBatchInterned is DecodeQueryBatch with a per-connection
// interner for tenant/template names — the server loops' hot decode.
func decodeQueryBatchInterned(payload []byte, qs []Query, in *interner) ([]Query, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return nil, err
	}
	if typ != msgQueryBatch {
		return nil, fmt.Errorf("wire: expected query batch, got message type %d", typ)
	}
	return consumeQueryItemsInterned(rest, qs, in)
}

// DecodeTaggedQueryBatch parses a v2 tagged query-batch payload. When
// the tag itself parses, it is returned even on a body error, so the
// server can scope the error frame to the failing batch instead of
// killing the connection.
func DecodeTaggedQueryBatch(payload []byte, qs []Query) (uint64, []Query, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, nil, err
	}
	if typ != msgTaggedQueryBatch {
		return 0, nil, fmt.Errorf("wire: expected tagged query batch, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, nil, err
	}
	out, err := consumeQueryItems(rest, qs)
	return tag, out, err
}

// consumeQueryItems parses the shared batch body.
func consumeQueryItems(rest []byte, qs []Query) ([]Query, error) {
	return consumeQueryItemsInterned(rest, qs, nil)
}

// consumeQueryItemsInterned parses the shared batch body, resolving
// tenant/template names through a per-connection interner so a steady
// workload's names are allocated once per connection instead of once per
// query. in may be nil (plain allocation).
func consumeQueryItemsInterned(rest []byte, qs []Query, in *interner) ([]Query, error) {
	n, rest, err := consumeUvarint(rest)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > MaxBatch {
		return nil, fmt.Errorf("wire: batch size %d outside [1, %d]", n, MaxBatch)
	}
	qs = qs[:0]
	for i := uint64(0); i < n; i++ {
		var q Query
		var name []byte
		if name, rest, err = consumeBytes(rest); err != nil {
			return nil, err
		}
		q.Tenant = in.intern(name)
		if name, rest, err = consumeBytes(rest); err != nil {
			return nil, err
		}
		q.Template = in.intern(name)
		var flags byte
		if flags, rest, err = consumeByte(rest); err != nil {
			return nil, err
		}
		if flags&flagSelectivity != 0 {
			q.HasSelectivity = true
			if q.Selectivity, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
		}
		if flags&flagBudget != 0 {
			var shape byte
			if shape, rest, err = consumeByte(rest); err != nil {
				return nil, err
			}
			shapeName, err2 := budgetShapeString(shape)
			if err2 != nil {
				return nil, err2
			}
			bj := &server.BudgetJSON{Shape: shapeName}
			if bj.PriceUSD, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
			if bj.TmaxSec, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
			if bj.K, rest, err = consumeF64(rest); err != nil {
				return nil, err
			}
			q.Budget = bj
		}
		qs = append(qs, q)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after query batch", len(rest))
	}
	return qs, nil
}

// --- reply batch ----------------------------------------------------------

// AppendReplyBatch appends one v1 reply-batch payload to b.
func AppendReplyBatch(b []byte, rs []Reply) []byte {
	return appendReplyItems(append(b, msgReplyBatch), rs)
}

// AppendTaggedReplyBatch appends one v2 tagged reply-batch payload: the
// request tag, then item bytes identical to the v1 reply batch.
func AppendTaggedReplyBatch(b []byte, tag uint64, rs []Reply) []byte {
	b = append(b, msgTaggedReplyBatch)
	b = binary.AppendUvarint(b, tag)
	return appendReplyItems(b, rs)
}

// appendReplyItems appends the shared reply-batch body.
func appendReplyItems(b []byte, rs []Reply) []byte {
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		if r.Err != "" {
			b = append(b, 1)
			b = appendString(b, r.Err)
			continue
		}
		b = append(b, 0)
		resp := &r.Resp
		b = binary.AppendVarint(b, resp.QueryID)
		b = binary.AppendUvarint(b, uint64(resp.Shard))
		b = appendString(b, resp.Template)
		b = appendF64(b, resp.Selectivity)
		b = appendF64(b, resp.ArrivalSec)
		b = appendBool(b, resp.Declined)
		b = appendString(b, resp.Location)
		b = appendF64(b, resp.ResponseTimeSec)
		b = appendF64(b, resp.ChargedUSD)
		b = appendF64(b, resp.ProfitUSD)
		b = binary.AppendUvarint(b, uint64(resp.Investments))
		b = binary.AppendUvarint(b, uint64(resp.Failures))
	}
	return b
}

// DecodeReplyBatch parses a v1 reply-batch payload (msg byte included),
// appending into rs to reuse its capacity. A msgError payload comes back
// as an error.
func DecodeReplyBatch(payload []byte, rs []Reply) ([]Reply, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return nil, err
	}
	if typ == msgError {
		msg, _, err := consumeString(rest)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server error: %s", msg)
	}
	if typ != msgReplyBatch {
		return nil, fmt.Errorf("wire: expected reply batch, got message type %d", typ)
	}
	return consumeReplyItems(rest, rs)
}

// DecodeTaggedReplyBatch parses a v2 tagged reply-batch payload.
func DecodeTaggedReplyBatch(payload []byte, rs []Reply) (uint64, []Reply, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, nil, err
	}
	if typ != msgTaggedReplyBatch {
		return 0, nil, fmt.Errorf("wire: expected tagged reply batch, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, nil, err
	}
	out, err := consumeReplyItems(rest, rs)
	return tag, out, err
}

// consumeReplyItems parses the shared reply-batch body.
func consumeReplyItems(rest []byte, rs []Reply) ([]Reply, error) {
	n, rest, err := consumeUvarint(rest)
	if err != nil {
		return nil, err
	}
	if n > MaxBatch {
		return nil, fmt.Errorf("wire: reply batch size %d exceeds %d", n, MaxBatch)
	}
	rs = rs[:0]
	for i := uint64(0); i < n; i++ {
		var r Reply
		status, rest2, err := consumeByte(rest)
		if err != nil {
			return nil, err
		}
		rest = rest2
		if status == 1 {
			if r.Err, rest, err = consumeString(rest); err != nil {
				return nil, err
			}
			rs = append(rs, r)
			continue
		}
		if status != 0 {
			return nil, fmt.Errorf("wire: bad reply status %d", status)
		}
		resp := &r.Resp
		if resp.QueryID, rest, err = consumeVarint(rest); err != nil {
			return nil, err
		}
		var u uint64
		if u, rest, err = consumeUvarint(rest); err != nil {
			return nil, err
		}
		resp.Shard = int(u)
		if resp.Template, rest, err = consumeString(rest); err != nil {
			return nil, err
		}
		if resp.Selectivity, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if resp.ArrivalSec, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		var declined byte
		if declined, rest, err = consumeByte(rest); err != nil {
			return nil, err
		}
		resp.Declined = declined != 0
		if resp.Location, rest, err = consumeString(rest); err != nil {
			return nil, err
		}
		if resp.ResponseTimeSec, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if resp.ChargedUSD, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if resp.ProfitUSD, rest, err = consumeF64(rest); err != nil {
			return nil, err
		}
		if u, rest, err = consumeUvarint(rest); err != nil {
			return nil, err
		}
		resp.Investments = int(u)
		if u, rest, err = consumeUvarint(rest); err != nil {
			return nil, err
		}
		resp.Failures = int(u)
		rs = append(rs, r)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after reply batch", len(rest))
	}
	return rs, nil
}

// appendErrorPayload builds a msgError payload.
func appendErrorPayload(b []byte, msg string) []byte {
	b = append(b, msgError)
	return appendString(b, msg)
}

// --- v2 hello + tagged error ----------------------------------------------

// AppendHello appends a hello payload carrying the sender's protocol
// version. A v2 connection opens with exactly one hello in each
// direction; a server that reads anything else first serves the
// connection as lockstep v1.
func AppendHello(b []byte, version uint64) []byte {
	b = append(b, msgHello)
	return binary.AppendUvarint(b, version)
}

// DecodeHello parses a hello payload (msg byte included).
func DecodeHello(payload []byte) (uint64, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, err
	}
	if typ != msgHello {
		return 0, fmt.Errorf("wire: expected hello, got message type %d", typ)
	}
	version, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after hello", len(rest))
	}
	return version, nil
}

// IsHello reports whether a payload is a hello frame — the v1/v2
// dispatch the listener does on a connection's first frame.
func IsHello(payload []byte) bool {
	return len(payload) > 0 && payload[0] == msgHello
}

// AppendTaggedError appends a tag-scoped error payload: the batch or
// subscription named by tag failed, and only it — the connection keeps
// serving every other tag.
func AppendTaggedError(b []byte, tag uint64, msg string) []byte {
	b = append(b, msgTaggedError)
	b = binary.AppendUvarint(b, tag)
	return appendString(b, msg)
}

// DecodeTaggedError parses a tag-scoped error payload (msg byte
// included).
func DecodeTaggedError(payload []byte) (uint64, string, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, "", err
	}
	if typ != msgTaggedError {
		return 0, "", fmt.Errorf("wire: expected tagged error, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, "", err
	}
	msg, rest, err := consumeString(rest)
	if err != nil {
		return 0, "", err
	}
	if len(rest) != 0 {
		return 0, "", fmt.Errorf("wire: %d trailing bytes after tagged error", len(rest))
	}
	return tag, msg, nil
}

// --- v2 streaming stats ----------------------------------------------------

// AppendStatsSubscribe appends a stats-subscription payload: the server
// pushes a msgStatsPush frame carrying tag immediately and then every
// intervalSec seconds, replacing /v1/stats polling with a server-driven
// stream on the query connection. intervalSec <= 0 (or non-finite)
// requests a single push — the one-shot fetch.
func AppendStatsSubscribe(b []byte, tag uint64, intervalSec float64) []byte {
	b = append(b, msgStatsSubscribe)
	b = binary.AppendUvarint(b, tag)
	return appendF64(b, intervalSec)
}

// DecodeStatsSubscribe parses a stats-subscription payload (msg byte
// included).
func DecodeStatsSubscribe(payload []byte) (tag uint64, intervalSec float64, err error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, 0, err
	}
	if typ != msgStatsSubscribe {
		return 0, 0, fmt.Errorf("wire: expected stats subscribe, got message type %d", typ)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, 0, err
	}
	if intervalSec, rest, err = consumeF64(rest); err != nil {
		return 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("wire: %d trailing bytes after stats subscribe", len(rest))
	}
	return tag, intervalSec, nil
}

// AppendStatsUnsubscribe appends a stats-unsubscribe payload ending the
// stream opened under tag.
func AppendStatsUnsubscribe(b []byte, tag uint64) []byte {
	b = append(b, msgStatsUnsubscribe)
	return binary.AppendUvarint(b, tag)
}

// DecodeStatsUnsubscribe parses a stats-unsubscribe payload (msg byte
// included).
func DecodeStatsUnsubscribe(payload []byte) (uint64, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, err
	}
	if typ != msgStatsUnsubscribe {
		return 0, fmt.Errorf("wire: expected stats unsubscribe, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after stats unsubscribe", len(rest))
	}
	return tag, nil
}

// AppendStatsPush appends a pushed stats payload. Like the v1 stats
// frame the snapshot rides as JSON — stats flow at human cadence, not
// per query — behind the subscription's tag.
func AppendStatsPush(b []byte, tag uint64, st server.Stats) ([]byte, error) {
	data, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	b = append(b, msgStatsPush)
	b = binary.AppendUvarint(b, tag)
	return append(b, data...), nil
}

// DecodeStatsPush parses a pushed stats payload (msg byte included).
func DecodeStatsPush(payload []byte) (uint64, server.Stats, error) {
	var st server.Stats
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, st, err
	}
	if typ != msgStatsPush {
		return 0, st, fmt.Errorf("wire: expected stats push, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, st, err
	}
	if err := json.Unmarshal(rest, &st); err != nil {
		return 0, st, fmt.Errorf("wire: bad stats push payload: %w", err)
	}
	return tag, st, nil
}

// --- v2 trace + events frames ----------------------------------------------

// AppendTraceRequest appends a trace-request payload: the binary twin of
// GET /v1/trace. tenant and template filter ("" matches everything);
// n == 0 applies the server's default bound.
func AppendTraceRequest(b []byte, tag uint64, tenant, template string, n uint64) []byte {
	b = append(b, msgTraceRequest)
	b = binary.AppendUvarint(b, tag)
	b = appendString(b, tenant)
	b = appendString(b, template)
	return binary.AppendUvarint(b, n)
}

// DecodeTraceRequest parses a trace-request payload (msg byte included).
func DecodeTraceRequest(payload []byte) (tag uint64, tenant, template string, n uint64, err error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, "", "", 0, err
	}
	if typ != msgTraceRequest {
		return 0, "", "", 0, fmt.Errorf("wire: expected trace request, got message type %d", typ)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, "", "", 0, err
	}
	if tenant, rest, err = consumeString(rest); err != nil {
		return 0, "", "", 0, err
	}
	if template, rest, err = consumeString(rest); err != nil {
		return 0, "", "", 0, err
	}
	if n, rest, err = consumeUvarint(rest); err != nil {
		return 0, "", "", 0, err
	}
	if len(rest) != 0 {
		return 0, "", "", 0, fmt.Errorf("wire: %d trailing bytes after trace request", len(rest))
	}
	return tag, tenant, template, n, nil
}

// AppendTracePush appends a trace-reply payload: the sampled decision
// records as JSON behind the request's tag.
func AppendTracePush(b []byte, tag uint64, view server.TraceView) ([]byte, error) {
	data, err := json.Marshal(view)
	if err != nil {
		return nil, err
	}
	b = append(b, msgTracePush)
	b = binary.AppendUvarint(b, tag)
	return append(b, data...), nil
}

// DecodeTracePush parses a trace-reply payload (msg byte included).
func DecodeTracePush(payload []byte) (uint64, server.TraceView, error) {
	var view server.TraceView
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, view, err
	}
	if typ != msgTracePush {
		return 0, view, fmt.Errorf("wire: expected trace push, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, view, err
	}
	if err := json.Unmarshal(rest, &view); err != nil {
		return 0, view, fmt.Errorf("wire: bad trace push payload: %w", err)
	}
	return tag, view, nil
}

// AppendEventsRequest appends an events-request payload: the binary twin
// of GET /v1/events. typ and tenant filter ("" matches everything);
// n == 0 applies the server's default bound.
func AppendEventsRequest(b []byte, tag uint64, typ, tenant string, n uint64) []byte {
	b = append(b, msgEventsRequest)
	b = binary.AppendUvarint(b, tag)
	b = appendString(b, typ)
	b = appendString(b, tenant)
	return binary.AppendUvarint(b, n)
}

// DecodeEventsRequest parses an events-request payload (msg byte
// included).
func DecodeEventsRequest(payload []byte) (tag uint64, typ, tenant string, n uint64, err error) {
	mt, rest, err := consumeByte(payload)
	if err != nil {
		return 0, "", "", 0, err
	}
	if mt != msgEventsRequest {
		return 0, "", "", 0, fmt.Errorf("wire: expected events request, got message type %d", mt)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, "", "", 0, err
	}
	if typ, rest, err = consumeString(rest); err != nil {
		return 0, "", "", 0, err
	}
	if tenant, rest, err = consumeString(rest); err != nil {
		return 0, "", "", 0, err
	}
	if n, rest, err = consumeUvarint(rest); err != nil {
		return 0, "", "", 0, err
	}
	if len(rest) != 0 {
		return 0, "", "", 0, fmt.Errorf("wire: %d trailing bytes after events request", len(rest))
	}
	return tag, typ, tenant, n, nil
}

// AppendEventsPush appends an events payload — the one-shot reply to an
// events request, or one cursored installment of an events subscription.
func AppendEventsPush(b []byte, tag uint64, view server.EventsView) ([]byte, error) {
	data, err := json.Marshal(view)
	if err != nil {
		return nil, err
	}
	b = append(b, msgEventsPush)
	b = binary.AppendUvarint(b, tag)
	return append(b, data...), nil
}

// DecodeEventsPush parses an events payload (msg byte included).
func DecodeEventsPush(payload []byte) (uint64, server.EventsView, error) {
	var view server.EventsView
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, view, err
	}
	if typ != msgEventsPush {
		return 0, view, fmt.Errorf("wire: expected events push, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, view, err
	}
	if err := json.Unmarshal(rest, &view); err != nil {
		return 0, view, fmt.Errorf("wire: bad events push payload: %w", err)
	}
	return tag, view, nil
}

// AppendEventsSubscribe appends an events-subscription payload: the
// server pushes an immediate installment (everything its journals
// currently buffer) and then, every intervalSec seconds, only the events
// the subscription has not yet seen. intervalSec <= 0 (or non-finite)
// requests a single installment.
func AppendEventsSubscribe(b []byte, tag uint64, intervalSec float64) []byte {
	b = append(b, msgEventsSubscribe)
	b = binary.AppendUvarint(b, tag)
	return appendF64(b, intervalSec)
}

// DecodeEventsSubscribe parses an events-subscription payload (msg byte
// included).
func DecodeEventsSubscribe(payload []byte) (tag uint64, intervalSec float64, err error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, 0, err
	}
	if typ != msgEventsSubscribe {
		return 0, 0, fmt.Errorf("wire: expected events subscribe, got message type %d", typ)
	}
	if tag, rest, err = consumeUvarint(rest); err != nil {
		return 0, 0, err
	}
	if intervalSec, rest, err = consumeF64(rest); err != nil {
		return 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("wire: %d trailing bytes after events subscribe", len(rest))
	}
	return tag, intervalSec, nil
}

// AppendEventsUnsubscribe appends an events-unsubscribe payload ending
// the stream opened under tag.
func AppendEventsUnsubscribe(b []byte, tag uint64) []byte {
	b = append(b, msgEventsUnsubscribe)
	return binary.AppendUvarint(b, tag)
}

// DecodeEventsUnsubscribe parses an events-unsubscribe payload (msg byte
// included).
func DecodeEventsUnsubscribe(payload []byte) (uint64, error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return 0, err
	}
	if typ != msgEventsUnsubscribe {
		return 0, fmt.Errorf("wire: expected events unsubscribe, got message type %d", typ)
	}
	tag, rest, err := consumeUvarint(rest)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after events unsubscribe", len(rest))
	}
	return tag, nil
}

// --- stats frames ---------------------------------------------------------

// AppendStatsRequest appends a stats-request payload: a client asking for
// the live engine snapshot over the same connection it submits on,
// replacing /v1/stats polling for binary-front clients.
func AppendStatsRequest(b []byte) []byte {
	return append(b, msgStatsRequest)
}

// AppendStats appends a stats payload. The snapshot rides as JSON inside
// the binary frame: stats are read at human cadence, not per query, so
// the self-describing encoding (which tracks the evolving Stats schema
// for free) beats hand-rolled field codecs here — framing, connection
// reuse and the hot query path stay fully binary.
func AppendStats(b []byte, st server.Stats) ([]byte, error) {
	data, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	b = append(b, msgStats)
	return append(b, data...), nil
}

// DecodeStats parses a stats payload (msg byte included). A msgError
// payload comes back as an error.
func DecodeStats(payload []byte) (server.Stats, error) {
	var st server.Stats
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return st, err
	}
	if typ == msgError {
		msg, _, err := consumeString(rest)
		if err != nil {
			return st, err
		}
		return st, fmt.Errorf("wire: server error: %s", msg)
	}
	if typ != msgStats {
		return st, fmt.Errorf("wire: expected stats, got message type %d", typ)
	}
	if err := json.Unmarshal(rest, &st); err != nil {
		return st, fmt.Errorf("wire: bad stats payload: %w", err)
	}
	return st, nil
}

// IsStatsRequest reports whether a decoded payload is a stats request.
func IsStatsRequest(payload []byte) bool {
	return len(payload) > 0 && payload[0] == msgStatsRequest
}

// --- snapshot (admin) frames ----------------------------------------------

// AppendSnapshotRequest appends a snapshot-request payload: an admin
// client asking the daemon to persist its economy state to the
// configured state path right now (an on-demand checkpoint).
func AppendSnapshotRequest(b []byte) []byte {
	return append(b, msgSnapshotRequest)
}

// IsSnapshotRequest reports whether a decoded payload is a snapshot
// request.
func IsSnapshotRequest(payload []byte) bool {
	return len(payload) > 0 && payload[0] == msgSnapshotRequest
}

// AppendSnapshotReply appends a snapshot-reply payload: where the
// snapshot landed and how many bytes it encoded to.
func AppendSnapshotReply(b []byte, path string, size int64) []byte {
	b = append(b, msgSnapshotReply)
	b = appendString(b, path)
	return binary.AppendUvarint(b, uint64(size))
}

// DecodeSnapshotReply parses a snapshot-reply payload (msg byte
// included). A msgError payload comes back as an error.
func DecodeSnapshotReply(payload []byte) (path string, size int64, err error) {
	typ, rest, err := consumeByte(payload)
	if err != nil {
		return "", 0, err
	}
	if typ == msgError {
		msg, _, err := consumeString(rest)
		if err != nil {
			return "", 0, err
		}
		return "", 0, fmt.Errorf("wire: server error: %s", msg)
	}
	if typ != msgSnapshotReply {
		return "", 0, fmt.Errorf("wire: expected snapshot reply, got message type %d", typ)
	}
	if path, rest, err = consumeString(rest); err != nil {
		return "", 0, err
	}
	u, rest, err := consumeUvarint(rest)
	if err != nil {
		return "", 0, err
	}
	if u > math.MaxInt64 {
		return "", 0, fmt.Errorf("wire: snapshot size %d out of range", u)
	}
	if len(rest) != 0 {
		return "", 0, fmt.Errorf("wire: %d trailing bytes after snapshot reply", len(rest))
	}
	return path, int64(u), nil
}

// --- framing --------------------------------------------------------------

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame's payload, reusing buf when it is large
// enough. io.EOF before the first header byte means a clean close.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame header")
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return buf, nil
}
