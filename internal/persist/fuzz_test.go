package persist

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder. It
// must never panic and never allocate past a small multiple of the
// input — a corrupt or truncated state file must fail restore cleanly
// (the daemon logs it and boots fresh), not crash the boot or load
// partial state. Any input that does decode must survive an
// encode/decode round trip unchanged: decoding is a bijection between
// valid files and snapshots.
func FuzzSnapshotDecode(f *testing.F) {
	valid := EncodeBytes(sampleSnapshot())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte("CCSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// The round trip is compared as re-encoded BYTES, not values: a
		// CRC-valid input can carry NaN floats, which decode fine but
		// never compare equal to themselves.
		enc := EncodeBytes(s)
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if enc2 := EncodeBytes(s2); !bytes.Equal(enc, enc2) {
			t.Fatalf("snapshot round trip diverged:\n%x\n%x", enc, enc2)
		}
	})
}

// FuzzShardPacketDecode covers the single-shard migration packet the
// same way: packets cross the wire between backends, so a truncated or
// bit-flipped transfer must fail installation cleanly, and any packet
// that decodes must re-encode to the same bytes.
func FuzzShardPacketDecode(f *testing.F) {
	snap := sampleSnapshot()
	for i := range snap.Shards {
		valid := EncodeShardPacket(&ShardPacket{
			Scheme:          snap.Scheme,
			Provider:        snap.Provider,
			CatalogBytes:    snap.CatalogBytes,
			NextID:          snap.NextID,
			Clock:           snap.Clock,
			CreatedUnixNano: snap.CreatedUnixNano,
			State:           snap.Shards[i],
		})
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte("CCSHRD"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeShardPacket(data)
		if err != nil {
			return
		}
		enc := EncodeShardPacket(p)
		p2, err := DecodeShardPacket(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded shard packet failed: %v", err)
		}
		if enc2 := EncodeShardPacket(p2); !bytes.Equal(enc, enc2) {
			t.Fatalf("shard packet round trip diverged:\n%x\n%x", enc, enc2)
		}
	})
}
