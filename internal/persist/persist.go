// Package persist serializes the serving layer's durable state — every
// shard's economy (market residency, per-structure ownership, invest
// backoff, tenant ledgers), cache, counters and RNG — into a versioned
// binary snapshot, and restores it byte-for-byte. A drained cloudcached
// no longer cold-starts: it resumes the exact accounts, regret ledgers
// and resident structures it shut down with.
//
// The format is deliberately paranoid about partial writes and bit rot:
//
//	file    := magic "CCSNAP" | u16 version (LE)
//	frame   := u32 len (LE) | payload | u32 crc32-IEEE(payload) (LE)
//	file    := header | frame(meta) | frame(shard) × meta.Shards
//
// Every frame is length-prefixed and CRC-checked, so truncation or
// corruption anywhere fails decoding cleanly — the caller boots fresh
// instead of loading partial state. Inside frames, integers ride
// varints, money rides its fixed-point int64, times ride nanosecond
// varints and floats ride IEEE-754 bits, so encode(decode(x)) == x
// exactly. Writes go through a temp file and an atomic rename: a crash
// mid-checkpoint leaves the previous snapshot intact.
//
// The decoder never panics on hostile input and never allocates more
// than a small multiple of the input size (every count is validated
// against the bytes that remain), which the FuzzSnapshotDecode target
// enforces.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/binenc"
	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/structure"
)

// Version is the current snapshot format version. Decoders reject
// versions they do not know; bumping this is how incompatible layout
// changes stay loud. v2 added the ledgers' RegretDropped counter.
const Version = 2

// magic identifies a snapshot file.
var magic = [6]byte{'C', 'C', 'S', 'N', 'A', 'P'}

// shardMagic identifies a single-shard packet — the unit of live shard
// migration between backends. Distinct from the snapshot magic so a
// shard packet can never be mistaken for (or restored as) a whole
// engine.
var shardMagic = [6]byte{'C', 'C', 'S', 'H', 'R', 'D'}

// Record types inside frames.
const (
	recMeta      byte = 1
	recShard     byte = 2
	recShardMeta byte = 3
)

// MaxShards bounds the shard count a snapshot may claim, far above any
// real deployment but low enough that a corrupt meta frame cannot
// balloon the decode loop.
const MaxShards = 1 << 16

// YieldState is one bypass-scheme yield accumulator (the bypass
// baseline's only scheme state beyond the cache).
type YieldState struct {
	ID    structure.ID
	Bytes int64
}

// ShardState is the complete durable state of one server shard.
type ShardState struct {
	Index int

	// Shard time: the monotone clamp, the rent-accrual watermark and the
	// latest promised completion (the tail-rent window).
	LastNow     time.Duration
	LastAccrual time.Duration
	EndOfRun    time.Duration

	// Accrued rent integrals.
	StorageGBSeconds float64
	NodeSeconds      float64

	// Lifetime counters.
	Queries       int64
	Declined      int64
	CacheAnswered int64
	Investments   int64
	Failures      int64
	Errors        int64
	Revenue       money.Amount
	Profit        money.Amount
	ExecUsage     cost.Usage
	BuildUsage    cost.Usage

	// RNG is the shard's selectivity-draw generator state, so draws for
	// queries that omit a selectivity continue the exact pre-restart
	// sequence.
	RNG uint64

	// Response is the response-time statistics (running moments plus the
	// percentile reservoir, PRNG included).
	Response metrics.DurationStatsState

	// Cache is the shard's residency state.
	Cache cache.State

	// Economy is the shard's ledgers and market bookkeeping; nil for
	// schemes without an economy (bypass).
	Economy *economy.State

	// Yield holds the bypass scheme's per-column yield accumulators,
	// sorted by ID; nil for economy schemes.
	Yield []YieldState
}

// Snapshot is one serialized engine state.
type Snapshot struct {
	// Scheme and Provider name the configuration the snapshot was taken
	// under; restore validates both so state never silently crosses a
	// reconfiguration.
	Scheme   string
	Provider string
	// CatalogBytes fingerprints the catalog (its total size): a snapshot
	// taken against one catalog must not restore against another.
	CatalogBytes int64
	// NextID is the server's query-ID counter.
	NextID int64
	// Clock is the server clock at snapshot time; a restored daemon
	// resumes its wall clock from here so rent does not replay.
	Clock time.Duration
	// CreatedUnixNano stamps the snapshot (informational).
	CreatedUnixNano int64

	Shards []ShardState
}

// ShardPacket is one shard's state plus the configuration fingerprint
// it was captured under — the unit of live migration. The fingerprint
// mirrors the snapshot meta record: an installing backend validates
// scheme, provider and catalog so shard state never silently crosses a
// reconfiguration, and adopts NextID so query IDs stay monotone across
// the move.
type ShardPacket struct {
	Scheme       string
	Provider     string
	CatalogBytes int64
	// NextID is the source server's query-ID counter at capture time.
	NextID int64
	// Clock is the source server clock at capture time.
	Clock time.Duration
	// CreatedUnixNano stamps the packet (informational).
	CreatedUnixNano int64

	State ShardState
}

// --- primitive codec ------------------------------------------------------
//
// The append/consume primitives live in internal/binenc, shared with
// the wire protocol; creader adapts them to a cursor so record decoders
// read field after field without threading the remainder by hand.

var (
	appendString = binenc.AppendString
	appendF64    = binenc.AppendF64
	appendU64    = binenc.AppendU64
	appendBool   = binenc.AppendBool
)

// creader consumes a payload with bounds-checked primitives. All methods
// return an error instead of panicking on truncated or hostile input.
type creader struct {
	b []byte
}

func (r *creader) len() int { return len(r.b) }

func (r *creader) uvarint() (v uint64, err error) {
	v, r.b, err = binenc.Uvarint(r.b)
	return v, err
}

func (r *creader) varint() (v int64, err error) {
	v, r.b, err = binenc.Varint(r.b)
	return v, err
}

// count reads an element count and validates it against the bytes that
// remain, each element occupying at least minBytes: a corrupt count can
// never make the decoder allocate beyond the input's own size.
func (r *creader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(len(r.b)/minBytes) {
		return 0, fmt.Errorf("persist: count %d overruns frame", v)
	}
	return int(v), nil
}

func (r *creader) str() (s string, err error) {
	s, r.b, err = binenc.String(r.b)
	return s, err
}

func (r *creader) f64() (v float64, err error) {
	v, r.b, err = binenc.F64(r.b)
	return v, err
}

func (r *creader) u64() (v uint64, err error) {
	v, r.b, err = binenc.U64(r.b)
	return v, err
}

func (r *creader) byte() (v byte, err error) {
	v, r.b, err = binenc.Byte(r.b)
	return v, err
}

func (r *creader) bool() (bool, error) {
	v, err := r.byte()
	return v != 0, err
}

func (r *creader) amount() (money.Amount, error) {
	v, err := r.varint()
	return money.Amount(v), err
}

func (r *creader) duration() (time.Duration, error) {
	v, err := r.varint()
	return time.Duration(v), err
}

// --- composite codecs -----------------------------------------------------

func appendUsage(b []byte, u cost.Usage) []byte {
	b = appendF64(b, u.CPUSeconds)
	b = binary.AppendVarint(b, u.IOOps)
	b = binary.AppendVarint(b, u.NetBytes)
	b = binary.AppendVarint(b, int64(u.Boots))
	return b
}

func (r *creader) usage() (cost.Usage, error) {
	var u cost.Usage
	var err error
	if u.CPUSeconds, err = r.f64(); err != nil {
		return u, err
	}
	if u.IOOps, err = r.varint(); err != nil {
		return u, err
	}
	if u.NetBytes, err = r.varint(); err != nil {
		return u, err
	}
	boots, err := r.varint()
	if err != nil {
		return u, err
	}
	u.Boots = int(boots)
	return u, nil
}

func appendDurationStats(b []byte, st metrics.DurationStatsState) []byte {
	b = binary.AppendVarint(b, st.Running.N)
	b = appendF64(b, st.Running.Mean)
	b = appendF64(b, st.Running.M2)
	b = appendF64(b, st.Running.Min)
	b = appendF64(b, st.Running.Max)
	b = appendF64(b, st.Running.Sum)
	b = appendBool(b, st.Running.HasSamples)
	b = binary.AppendUvarint(b, uint64(st.Reservoir.Cap))
	b = binary.AppendVarint(b, st.Reservoir.Seen)
	b = binary.AppendUvarint(b, uint64(len(st.Reservoir.Data)))
	for _, v := range st.Reservoir.Data {
		b = appendF64(b, v)
	}
	b = appendU64(b, st.Reservoir.PRNG)
	return b
}

func (r *creader) durationStats() (metrics.DurationStatsState, error) {
	var st metrics.DurationStatsState
	var err error
	if st.Running.N, err = r.varint(); err != nil {
		return st, err
	}
	if st.Running.N < 0 {
		return st, fmt.Errorf("persist: negative sample count %d", st.Running.N)
	}
	if st.Running.Mean, err = r.f64(); err != nil {
		return st, err
	}
	if st.Running.M2, err = r.f64(); err != nil {
		return st, err
	}
	if st.Running.Min, err = r.f64(); err != nil {
		return st, err
	}
	if st.Running.Max, err = r.f64(); err != nil {
		return st, err
	}
	if st.Running.Sum, err = r.f64(); err != nil {
		return st, err
	}
	if st.Running.HasSamples, err = r.bool(); err != nil {
		return st, err
	}
	cap64, err := r.uvarint()
	if err != nil {
		return st, err
	}
	if cap64 > math.MaxInt32 {
		return st, fmt.Errorf("persist: reservoir cap %d out of range", cap64)
	}
	st.Reservoir.Cap = int(cap64)
	if st.Reservoir.Seen, err = r.varint(); err != nil {
		return st, err
	}
	n, err := r.count(8)
	if err != nil {
		return st, err
	}
	if n > 0 {
		st.Reservoir.Data = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		v, err := r.f64()
		if err != nil {
			return st, err
		}
		st.Reservoir.Data = append(st.Reservoir.Data, v)
	}
	if st.Reservoir.PRNG, err = r.u64(); err != nil {
		return st, err
	}
	// A reservoir that claims fewer observations than it retains (or a
	// negative count) is corrupt, and the replacement draw after restore
	// would divide by Seen: reject rather than restore a time bomb.
	if st.Reservoir.Seen < int64(len(st.Reservoir.Data)) {
		return st, fmt.Errorf("persist: reservoir claims %d observations but retains %d",
			st.Reservoir.Seen, len(st.Reservoir.Data))
	}
	return st, nil
}

func appendCacheState(b []byte, st cache.State) []byte {
	b = binary.AppendVarint(b, int64(st.Clock))
	b = binary.AppendVarint(b, st.Capacity)
	b = binary.AppendUvarint(b, uint64(len(st.Entries)))
	for _, e := range st.Entries {
		b = appendString(b, string(e.ID))
		b = binary.AppendVarint(b, int64(e.BuiltAt))
		b = binary.AppendVarint(b, int64(e.FirstUsed))
		b = binary.AppendVarint(b, int64(e.LastUsed))
		b = binary.AppendVarint(b, e.Uses)
		b = binary.AppendVarint(b, int64(e.BuildPrice))
		b = binary.AppendVarint(b, int64(e.AmortRemaining))
		b = binary.AppendVarint(b, int64(e.MaintPaidUntil))
		b = binary.AppendVarint(b, int64(e.UnpaidMaint))
		b = binary.AppendVarint(b, int64(e.EarnedValue))
	}
	b = binary.AppendUvarint(b, uint64(len(st.Pending)))
	for _, p := range st.Pending {
		b = appendString(b, string(p.ID))
		b = binary.AppendVarint(b, int64(p.ReadyAt))
		b = binary.AppendVarint(b, int64(p.BuildPrice))
		b = binary.AppendVarint(b, int64(p.AmortRemaining))
	}
	return b
}

func (r *creader) cacheState() (cache.State, error) {
	var st cache.State
	var err error
	if st.Clock, err = r.duration(); err != nil {
		return st, err
	}
	if st.Capacity, err = r.varint(); err != nil {
		return st, err
	}
	n, err := r.count(10)
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var e cache.EntryState
		var id string
		if id, err = r.str(); err != nil {
			return st, err
		}
		e.ID = structure.ID(id)
		if e.BuiltAt, err = r.duration(); err != nil {
			return st, err
		}
		if e.FirstUsed, err = r.duration(); err != nil {
			return st, err
		}
		if e.LastUsed, err = r.duration(); err != nil {
			return st, err
		}
		if e.Uses, err = r.varint(); err != nil {
			return st, err
		}
		if e.BuildPrice, err = r.amount(); err != nil {
			return st, err
		}
		if e.AmortRemaining, err = r.amount(); err != nil {
			return st, err
		}
		if e.MaintPaidUntil, err = r.duration(); err != nil {
			return st, err
		}
		if e.UnpaidMaint, err = r.amount(); err != nil {
			return st, err
		}
		if e.EarnedValue, err = r.amount(); err != nil {
			return st, err
		}
		st.Entries = append(st.Entries, e)
	}
	n, err = r.count(4)
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var p cache.PendingState
		var id string
		if id, err = r.str(); err != nil {
			return st, err
		}
		p.ID = structure.ID(id)
		if p.ReadyAt, err = r.duration(); err != nil {
			return st, err
		}
		if p.BuildPrice, err = r.amount(); err != nil {
			return st, err
		}
		if p.AmortRemaining, err = r.amount(); err != nil {
			return st, err
		}
		st.Pending = append(st.Pending, p)
	}
	return st, nil
}

func appendLedger(b []byte, st economy.LedgerState) []byte {
	b = appendString(b, st.Tenant)
	b = binary.AppendVarint(b, int64(st.Credit))
	b = binary.AppendVarint(b, st.Clock)
	b = binary.AppendUvarint(b, uint64(len(st.Entries)))
	for _, e := range st.Entries {
		b = appendString(b, string(e.ID))
		b = binary.AppendVarint(b, int64(e.Regret))
		b = binary.AppendVarint(b, e.Touched)
	}
	b = binary.AppendVarint(b, int64(st.Spend))
	b = binary.AppendVarint(b, int64(st.ProfitTotal))
	b = binary.AppendVarint(b, int64(st.Invested))
	b = binary.AppendVarint(b, int64(st.Recovered))
	b = binary.AppendVarint(b, int64(st.RegretAccrued))
	b = binary.AppendVarint(b, int64(st.RegretDropped))
	b = binary.AppendVarint(b, st.InvestCount)
	b = binary.AppendVarint(b, st.DeclinedCount)
	b = binary.AppendVarint(b, st.Queries)
	b = binary.AppendVarint(b, st.CacheAnswered)
	return b
}

func (r *creader) ledger() (economy.LedgerState, error) {
	var st economy.LedgerState
	var err error
	if st.Tenant, err = r.str(); err != nil {
		return st, err
	}
	if st.Credit, err = r.amount(); err != nil {
		return st, err
	}
	if st.Clock, err = r.varint(); err != nil {
		return st, err
	}
	n, err := r.count(3)
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var e economy.RegretEntryState
		var id string
		if id, err = r.str(); err != nil {
			return st, err
		}
		e.ID = structure.ID(id)
		if e.Regret, err = r.amount(); err != nil {
			return st, err
		}
		if e.Touched, err = r.varint(); err != nil {
			return st, err
		}
		st.Entries = append(st.Entries, e)
	}
	if st.Spend, err = r.amount(); err != nil {
		return st, err
	}
	if st.ProfitTotal, err = r.amount(); err != nil {
		return st, err
	}
	if st.Invested, err = r.amount(); err != nil {
		return st, err
	}
	if st.Recovered, err = r.amount(); err != nil {
		return st, err
	}
	if st.RegretAccrued, err = r.amount(); err != nil {
		return st, err
	}
	if st.RegretDropped, err = r.amount(); err != nil {
		return st, err
	}
	if st.InvestCount, err = r.varint(); err != nil {
		return st, err
	}
	if st.DeclinedCount, err = r.varint(); err != nil {
		return st, err
	}
	if st.Queries, err = r.varint(); err != nil {
		return st, err
	}
	if st.CacheAnswered, err = r.varint(); err != nil {
		return st, err
	}
	return st, nil
}

func appendEconomyState(b []byte, st *economy.State) []byte {
	b = append(b, byte(st.Provider))
	b = appendBool(b, st.Pool != nil)
	if st.Pool != nil {
		b = appendLedger(b, *st.Pool)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Tenants)))
	for _, l := range st.Tenants {
		b = appendLedger(b, l)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Market.Owners)))
	for _, o := range st.Market.Owners {
		b = appendString(b, string(o.ID))
		b = appendString(b, o.Tenant)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Market.FailCounts)))
	for _, f := range st.Market.FailCounts {
		b = appendString(b, string(f.ID))
		b = binary.AppendVarint(b, f.Count)
	}
	b = appendUsage(b, st.Market.BuildUsage)
	b = binary.AppendVarint(b, st.Market.FailureCount)
	return b
}

func (r *creader) economyState() (*economy.State, error) {
	st := &economy.State{}
	prov, err := r.byte()
	if err != nil {
		return nil, err
	}
	st.Provider = economy.Provider(prov)
	hasPool, err := r.bool()
	if err != nil {
		return nil, err
	}
	if hasPool {
		pool, err := r.ledger()
		if err != nil {
			return nil, err
		}
		st.Pool = &pool
	}
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		l, err := r.ledger()
		if err != nil {
			return nil, err
		}
		st.Tenants = append(st.Tenants, l)
	}
	n, err = r.count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var o economy.OwnerState
		var id string
		if id, err = r.str(); err != nil {
			return nil, err
		}
		o.ID = structure.ID(id)
		if o.Tenant, err = r.str(); err != nil {
			return nil, err
		}
		st.Market.Owners = append(st.Market.Owners, o)
	}
	n, err = r.count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var f economy.FailCountState
		var id string
		if id, err = r.str(); err != nil {
			return nil, err
		}
		f.ID = structure.ID(id)
		if f.Count, err = r.varint(); err != nil {
			return nil, err
		}
		st.Market.FailCounts = append(st.Market.FailCounts, f)
	}
	if st.Market.BuildUsage, err = r.usage(); err != nil {
		return nil, err
	}
	if st.Market.FailureCount, err = r.varint(); err != nil {
		return nil, err
	}
	return st, nil
}

// --- record payloads ------------------------------------------------------

func appendMeta(b []byte, s *Snapshot) []byte {
	b = append(b, recMeta)
	b = appendString(b, s.Scheme)
	b = appendString(b, s.Provider)
	b = binary.AppendVarint(b, s.CatalogBytes)
	b = binary.AppendVarint(b, s.NextID)
	b = binary.AppendVarint(b, int64(s.Clock))
	b = binary.AppendVarint(b, s.CreatedUnixNano)
	b = binary.AppendUvarint(b, uint64(len(s.Shards)))
	return b
}

func decodeMeta(payload []byte) (*Snapshot, int, error) {
	r := &creader{b: payload}
	typ, err := r.byte()
	if err != nil {
		return nil, 0, err
	}
	if typ != recMeta {
		return nil, 0, fmt.Errorf("persist: expected meta record, got type %d", typ)
	}
	s := &Snapshot{}
	if s.Scheme, err = r.str(); err != nil {
		return nil, 0, err
	}
	if s.Provider, err = r.str(); err != nil {
		return nil, 0, err
	}
	if s.CatalogBytes, err = r.varint(); err != nil {
		return nil, 0, err
	}
	if s.NextID, err = r.varint(); err != nil {
		return nil, 0, err
	}
	if s.Clock, err = r.duration(); err != nil {
		return nil, 0, err
	}
	if s.CreatedUnixNano, err = r.varint(); err != nil {
		return nil, 0, err
	}
	shards, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if shards == 0 || shards > MaxShards {
		return nil, 0, fmt.Errorf("persist: shard count %d outside [1, %d]", shards, MaxShards)
	}
	if r.len() != 0 {
		return nil, 0, fmt.Errorf("persist: %d trailing bytes after meta record", r.len())
	}
	return s, int(shards), nil
}

func appendShard(b []byte, st *ShardState) []byte {
	b = append(b, recShard)
	b = binary.AppendUvarint(b, uint64(st.Index))
	b = binary.AppendVarint(b, int64(st.LastNow))
	b = binary.AppendVarint(b, int64(st.LastAccrual))
	b = binary.AppendVarint(b, int64(st.EndOfRun))
	b = appendF64(b, st.StorageGBSeconds)
	b = appendF64(b, st.NodeSeconds)
	b = binary.AppendVarint(b, st.Queries)
	b = binary.AppendVarint(b, st.Declined)
	b = binary.AppendVarint(b, st.CacheAnswered)
	b = binary.AppendVarint(b, st.Investments)
	b = binary.AppendVarint(b, st.Failures)
	b = binary.AppendVarint(b, st.Errors)
	b = binary.AppendVarint(b, int64(st.Revenue))
	b = binary.AppendVarint(b, int64(st.Profit))
	b = appendUsage(b, st.ExecUsage)
	b = appendUsage(b, st.BuildUsage)
	b = appendU64(b, st.RNG)
	b = appendDurationStats(b, st.Response)
	b = appendCacheState(b, st.Cache)
	b = appendBool(b, st.Economy != nil)
	if st.Economy != nil {
		b = appendEconomyState(b, st.Economy)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Yield)))
	for _, y := range st.Yield {
		b = appendString(b, string(y.ID))
		b = binary.AppendVarint(b, y.Bytes)
	}
	return b
}

func decodeShard(payload []byte) (ShardState, error) {
	var st ShardState
	r := &creader{b: payload}
	typ, err := r.byte()
	if err != nil {
		return st, err
	}
	if typ != recShard {
		return st, fmt.Errorf("persist: expected shard record, got type %d", typ)
	}
	idx, err := r.uvarint()
	if err != nil {
		return st, err
	}
	if idx > MaxShards {
		return st, fmt.Errorf("persist: shard index %d out of range", idx)
	}
	st.Index = int(idx)
	if st.LastNow, err = r.duration(); err != nil {
		return st, err
	}
	if st.LastAccrual, err = r.duration(); err != nil {
		return st, err
	}
	if st.EndOfRun, err = r.duration(); err != nil {
		return st, err
	}
	if st.StorageGBSeconds, err = r.f64(); err != nil {
		return st, err
	}
	if st.NodeSeconds, err = r.f64(); err != nil {
		return st, err
	}
	if st.Queries, err = r.varint(); err != nil {
		return st, err
	}
	if st.Declined, err = r.varint(); err != nil {
		return st, err
	}
	if st.CacheAnswered, err = r.varint(); err != nil {
		return st, err
	}
	if st.Investments, err = r.varint(); err != nil {
		return st, err
	}
	if st.Failures, err = r.varint(); err != nil {
		return st, err
	}
	if st.Errors, err = r.varint(); err != nil {
		return st, err
	}
	if st.Revenue, err = r.amount(); err != nil {
		return st, err
	}
	if st.Profit, err = r.amount(); err != nil {
		return st, err
	}
	if st.ExecUsage, err = r.usage(); err != nil {
		return st, err
	}
	if st.BuildUsage, err = r.usage(); err != nil {
		return st, err
	}
	if st.RNG, err = r.u64(); err != nil {
		return st, err
	}
	if st.Response, err = r.durationStats(); err != nil {
		return st, err
	}
	if st.Cache, err = r.cacheState(); err != nil {
		return st, err
	}
	hasEco, err := r.bool()
	if err != nil {
		return st, err
	}
	if hasEco {
		if st.Economy, err = r.economyState(); err != nil {
			return st, err
		}
	}
	n, err := r.count(2)
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var y YieldState
		var id string
		if id, err = r.str(); err != nil {
			return st, err
		}
		y.ID = structure.ID(id)
		if y.Bytes, err = r.varint(); err != nil {
			return st, err
		}
		st.Yield = append(st.Yield, y)
	}
	if r.len() != 0 {
		return st, fmt.Errorf("persist: %d trailing bytes after shard record", r.len())
	}
	return st, nil
}

// --- framing and file I/O -------------------------------------------------

// appendFrame wraps one payload with its length prefix and CRC.
func appendFrame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
}

// nextFrame splits one CRC-checked frame off data.
func nextFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("persist: truncated frame header")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint64(n)+4 > uint64(len(data)) {
		return nil, nil, fmt.Errorf("persist: frame of %d bytes overruns file", n)
	}
	payload, data = data[:n], data[n:]
	want := binary.LittleEndian.Uint32(data)
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, nil, fmt.Errorf("persist: frame CRC mismatch: %08x != %08x", got, want)
	}
	return payload, data[4:], nil
}

// EncodeBytes serializes a snapshot.
func EncodeBytes(s *Snapshot) []byte {
	b := append([]byte{}, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = appendFrame(b, appendMeta(nil, s))
	for i := range s.Shards {
		b = appendFrame(b, appendShard(nil, &s.Shards[i]))
	}
	return b
}

// Encode writes a snapshot to w.
func Encode(w io.Writer, s *Snapshot) error {
	_, err := w.Write(EncodeBytes(s))
	return err
}

// Decode parses a snapshot. Truncated, corrupt or version-mismatched
// input fails with an error — never a panic, never partial state.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+2 {
		return nil, fmt.Errorf("persist: file too short for header")
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("persist: bad magic")
	}
	v := binary.LittleEndian.Uint16(data[len(magic):])
	if v != Version {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d (want %d)", v, Version)
	}
	rest := data[len(magic)+2:]

	payload, rest, err := nextFrame(rest)
	if err != nil {
		return nil, err
	}
	s, shards, err := decodeMeta(payload)
	if err != nil {
		return nil, err
	}
	for i := 0; i < shards; i++ {
		if payload, rest, err = nextFrame(rest); err != nil {
			return nil, fmt.Errorf("persist: shard %d: %w", i, err)
		}
		st, err := decodeShard(payload)
		if err != nil {
			return nil, fmt.Errorf("persist: shard %d: %w", i, err)
		}
		if st.Index != i {
			return nil, fmt.Errorf("persist: shard record %d carries index %d", i, st.Index)
		}
		s.Shards = append(s.Shards, st)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after last shard", len(rest))
	}
	return s, nil
}

// --- single-shard packets -------------------------------------------------

func appendShardMeta(b []byte, p *ShardPacket) []byte {
	b = append(b, recShardMeta)
	b = appendString(b, p.Scheme)
	b = appendString(b, p.Provider)
	b = binary.AppendVarint(b, p.CatalogBytes)
	b = binary.AppendVarint(b, p.NextID)
	b = binary.AppendVarint(b, int64(p.Clock))
	b = binary.AppendVarint(b, p.CreatedUnixNano)
	return b
}

func decodeShardMeta(payload []byte) (*ShardPacket, error) {
	r := &creader{b: payload}
	typ, err := r.byte()
	if err != nil {
		return nil, err
	}
	if typ != recShardMeta {
		return nil, fmt.Errorf("persist: expected shard-meta record, got type %d", typ)
	}
	p := &ShardPacket{}
	if p.Scheme, err = r.str(); err != nil {
		return nil, err
	}
	if p.Provider, err = r.str(); err != nil {
		return nil, err
	}
	if p.CatalogBytes, err = r.varint(); err != nil {
		return nil, err
	}
	if p.NextID, err = r.varint(); err != nil {
		return nil, err
	}
	if p.Clock, err = r.duration(); err != nil {
		return nil, err
	}
	if p.CreatedUnixNano, err = r.varint(); err != nil {
		return nil, err
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after shard-meta record", r.len())
	}
	return p, nil
}

// EncodeShardPacket serializes one shard for transfer:
//
//	packet := shardMagic "CCSHRD" | u16 version (LE)
//	        | frame(shard-meta) | frame(shard)
//
// with the same length-prefixed CRC framing as snapshot files, so a
// packet truncated or corrupted in flight fails installation cleanly on
// the receiving backend instead of loading partial state.
func EncodeShardPacket(p *ShardPacket) []byte {
	b := append([]byte{}, shardMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = appendFrame(b, appendShardMeta(nil, p))
	b = appendFrame(b, appendShard(nil, &p.State))
	return b
}

// DecodeShardPacket parses a single-shard packet with the same
// guarantees as Decode: never panics, never allocates past a small
// multiple of the input, and fails loudly on truncation, corruption or
// a version mismatch.
func DecodeShardPacket(data []byte) (*ShardPacket, error) {
	if len(data) < len(shardMagic)+2 {
		return nil, fmt.Errorf("persist: packet too short for header")
	}
	if string(data[:len(shardMagic)]) != string(shardMagic[:]) {
		return nil, fmt.Errorf("persist: bad shard packet magic")
	}
	v := binary.LittleEndian.Uint16(data[len(shardMagic):])
	if v != Version {
		return nil, fmt.Errorf("persist: unsupported shard packet version %d (want %d)", v, Version)
	}
	rest := data[len(shardMagic)+2:]

	payload, rest, err := nextFrame(rest)
	if err != nil {
		return nil, err
	}
	p, err := decodeShardMeta(payload)
	if err != nil {
		return nil, err
	}
	if payload, rest, err = nextFrame(rest); err != nil {
		return nil, err
	}
	if p.State, err = decodeShard(payload); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after shard record", len(rest))
	}
	return p, nil
}

// Write atomically persists a snapshot: encode to a temp file in the
// destination directory, fsync, rename. A crash mid-write leaves any
// previous snapshot untouched. Returns the encoded size.
func Write(path string, s *Snapshot) (int64, error) {
	data := EncodeBytes(s)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// Load reads and decodes a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
