package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/money"
)

// sampleSnapshot exercises every field of the format: two shards, one
// with a full economy (pool + tenants + market), one bypass-shaped
// (no economy, yield accumulators), pending builds, reservoir samples.
func sampleSnapshot() *Snapshot {
	pool := economy.LedgerState{
		Tenant: "",
		Credit: money.FromDollars(42.5),
		Clock:  17,
		Entries: []economy.RegretEntryState{
			{ID: "col:lineitem.l_extendedprice", Regret: money.FromDollars(0.004), Touched: 9},
			{ID: "cpu:2", Regret: money.FromDollars(0.001), Touched: 17},
		},
		Spend:         money.FromDollars(10),
		ProfitTotal:   money.FromDollars(3),
		Invested:      money.FromDollars(7),
		Recovered:     money.FromDollars(2),
		RegretAccrued: money.FromDollars(0.5),
		InvestCount:   4,
		DeclinedCount: 2,
		Queries:       100,
		CacheAnswered: 31,
	}
	return &Snapshot{
		Scheme:          "econ-cheap",
		Provider:        "altruistic",
		CatalogBytes:    123456789,
		NextID:          4242,
		Clock:           90 * time.Minute,
		CreatedUnixNano: 1700000000000000000,
		Shards: []ShardState{
			{
				Index:            0,
				LastNow:          time.Hour,
				LastAccrual:      time.Hour - time.Second,
				EndOfRun:         time.Hour + 3*time.Second,
				StorageGBSeconds: 123.456,
				NodeSeconds:      7.5,
				Queries:          100, Declined: 2, CacheAnswered: 31,
				Investments: 4, Failures: 1, Errors: 3,
				Revenue:    money.FromDollars(10),
				Profit:     money.FromDollars(3),
				ExecUsage:  cost.Usage{CPUSeconds: 1.5, IOOps: 200, NetBytes: 1 << 30, Boots: 1},
				BuildUsage: cost.Usage{CPUSeconds: 0.5, IOOps: 10, NetBytes: 1 << 20},
				RNG:        0xDEADBEEFCAFEF00D,
				Response: metrics.DurationStatsState{
					Running:   metrics.RunningState{N: 98, Mean: 0.4, M2: 0.01, Min: 0.1, Max: 2.0, Sum: 39.2, HasSamples: true},
					Reservoir: metrics.ReservoirState{Cap: 4, Seen: 98, Data: []float64{0.1, 0.4, 0.5, 2.0}, PRNG: 12345},
				},
				Cache: cache.State{
					Clock: time.Hour,
					Entries: []cache.EntryState{{
						ID: "col:lineitem.l_shipdate", BuiltAt: time.Minute, FirstUsed: 2 * time.Minute,
						LastUsed: 50 * time.Minute, Uses: 12, BuildPrice: money.FromDollars(1.5),
						AmortRemaining: money.FromDollars(0.75), MaintPaidUntil: 49 * time.Minute,
						UnpaidMaint: money.FromDollars(0.01), EarnedValue: money.FromDollars(2.25),
					}},
					Pending: []cache.PendingState{{
						ID: "cpu:2", ReadyAt: time.Hour + time.Second,
						BuildPrice: money.FromDollars(0.2), AmortRemaining: money.FromDollars(0.2),
					}},
				},
				Economy: &economy.State{
					Provider: economy.ProviderAltruistic,
					Pool:     &pool,
					Tenants: []economy.LedgerState{
						{Tenant: "alice", Spend: money.FromDollars(4), Queries: 40},
						{Tenant: "bob", Spend: money.FromDollars(6), Queries: 60, CacheAnswered: 31},
					},
					Market: economy.MarketState{
						Owners:       []economy.OwnerState{{ID: "col:lineitem.l_shipdate", Tenant: ""}},
						FailCounts:   []economy.FailCountState{{ID: "cpu:3", Count: 2}},
						BuildUsage:   cost.Usage{CPUSeconds: 0.25},
						FailureCount: 1,
					},
				},
			},
			{
				Index:   1,
				LastNow: time.Hour,
				Queries: 7,
				Response: metrics.DurationStatsState{
					Reservoir: metrics.ReservoirState{Cap: 4, PRNG: 99},
				},
				Cache: cache.State{Clock: time.Hour, Capacity: 1 << 40},
				Yield: []YieldState{
					{ID: "col:orders.o_orderdate", Bytes: 1 << 20},
					{ID: "col:orders.o_totalprice", Bytes: 42},
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	data := EncodeBytes(want)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
	// Encoding is deterministic: same snapshot, same bytes.
	if string(EncodeBytes(want)) != string(data) {
		t.Error("encoding is not deterministic")
	}
}

func TestWriteLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "econ.snap")
	want := sampleSnapshot()
	n, err := Write(path, want)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("stat: %v, size %v want %d", err, fi.Size(), n)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("loaded snapshot diverged")
	}
	// Overwrite goes through rename: no temp litter is left behind.
	if _, err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("state dir holds %d files after rewrites, want 1", len(entries))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := EncodeBytes(sampleSnapshot())

	// Every strict prefix fails.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", cut, len(data))
		}
	}
	// Every single-byte flip fails: the header by the magic/version
	// match, everything else by a frame CRC.
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
	}
	// Trailing garbage fails.
	if _, err := Decode(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// A future version fails.
	mut := append([]byte(nil), data...)
	mut[6] = 0xFF
	if _, err := Decode(mut); err == nil {
		t.Error("unknown version accepted")
	}
}

// TestDecodeRejectsLyingReservoir: a CRC-valid snapshot whose reservoir
// claims fewer observations than it retains (or a negative count) must
// be rejected at decode — restored, its next replacement draw would
// divide by the bogus count.
func TestDecodeRejectsLyingReservoir(t *testing.T) {
	for _, seen := range []int64{-1, 0, 3} {
		s := sampleSnapshot()
		s.Shards[0].Response.Reservoir.Seen = seen // retains 4 samples
		if _, err := Decode(EncodeBytes(s)); err == nil {
			t.Errorf("reservoir claiming %d observations over 4 samples decoded", seen)
		}
	}
	s := sampleSnapshot()
	s.Shards[0].Response.Running.N = -1
	if _, err := Decode(EncodeBytes(s)); err == nil {
		t.Error("negative running sample count decoded")
	}
}

func TestDecodeEmptyAndGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("CCSNAP"), []byte("not a snapshot at all")} {
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode(%q) succeeded", data)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
