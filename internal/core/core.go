// Package core is the canonical entry point to the paper's primary
// contribution: the self-tuned altruistic economy of §IV. The mechanics
// live in repro/internal/economy (account, case A/B/C selection, regret
// ledger, Eq. 3 investment, amortization, rent-vs-yield eviction) with the
// plan enumeration in repro/internal/optimizer; this package re-exports the
// contribution under its DESIGN.md name so the repository layout mirrors
// the paper's structure.
package core

import (
	"repro/internal/economy"
)

// The economy types, re-exported.
type (
	// Economy is the cloud account + regret state machine (§IV).
	Economy = economy.Economy
	// Config parameterises an Economy.
	Config = economy.Config
	// Decision reports how one query was handled.
	Decision = economy.Decision
	// Criterion selects among affordable plans.
	Criterion = economy.Criterion
	// Case is the §IV-C budget classification.
	Case = economy.Case
	// Stats is a snapshot of the economy's lifetime counters.
	Stats = economy.Stats
)

// Selection criteria (§VII-A).
const (
	SelectCheapest  = economy.SelectCheapest
	SelectFastest   = economy.SelectFastest
	SelectMinProfit = economy.SelectMinProfit
)

// The budget cases of Fig. 2.
const (
	CaseA = economy.CaseA
	CaseB = economy.CaseB
	CaseC = economy.CaseC
)

// New builds an Economy.
func New(cfg Config) (*Economy, error) { return economy.New(cfg) }
