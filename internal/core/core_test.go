package core

import (
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// The core package is the canonical alias of the economy; this test pins
// the re-exports and exercises the contribution end to end through them.
func TestCoreAliasEndToEnd(t *testing.T) {
	cat := catalog.TPCH(10)
	model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	ca := cache.New(0)
	opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 1000, AllowIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	eco, err := New(Config{
		Model:                 model,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             SelectCheapest,
		RegretFraction:        0.1,
		AmortN:                1000,
		InitialCredit:         money.FromDollars(10),
		UserAcceptsOverBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tpl := workload.PaperTemplates()[3]
	q := &workload.Query{
		ID: 1, Template: tpl, Selectivity: tpl.SelMin,
		Budget: budget.NewStep(money.FromDollars(1), time.Minute),
	}
	plans, err := opt.Enumerate(q, ca)
	if err != nil {
		t.Fatal(err)
	}
	d, err := eco.HandleQuery(q, plans)
	if err != nil {
		t.Fatal(err)
	}
	if d.Case != CaseB {
		t.Errorf("case = %v, want B", d.Case)
	}
	if d.Chosen == nil {
		t.Fatal("no plan chosen")
	}
	var s Stats = eco.Stats()
	if s.Credit.IsNegative() {
		t.Error("negative credit")
	}
	// Criteria constants resolve.
	for _, c := range []Criterion{SelectCheapest, SelectFastest, SelectMinProfit} {
		if c.String() == "" {
			t.Error("criterion string empty")
		}
	}
}
