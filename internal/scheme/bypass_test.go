package scheme

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/workload"
)

// q builds a single-template query stream helper for bypass edge cases.
func fixedTemplateQueries(t *testing.T, cat *catalog.Catalog, tplIdx, n int, gap time.Duration) []*workload.Query {
	t.Helper()
	tpl := workload.PaperTemplates()[tplIdx]
	if err := tpl.Validate(cat); err != nil {
		t.Fatal(err)
	}
	qs := make([]*workload.Query, 0, n)
	for i := 0; i < n; i++ {
		qs = append(qs, &workload.Query{
			ID:          int64(i + 1),
			Template:    tpl,
			Selectivity: (tpl.SelMin + tpl.SelMax) / 2,
			Arrival:     time.Duration(i) * gap,
			Budget:      nil, // bypass ignores budgets
		})
	}
	return qs
}

func TestBypassBreakEvenRule(t *testing.T) {
	cat := catalog.TPCH(20)
	p := DefaultParams(cat)
	p.LoadFactor = 0.001 // nearly immediate break-even
	b, err := NewBypass(p)
	if err != nil {
		t.Fatal(err)
	}
	qs := fixedTemplateQueries(t, cat, 3, 300, time.Second) // Q6, 4 columns
	invested := 0
	for _, q := range qs {
		r, err := b.HandleQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		invested += r.Investments
	}
	if invested != 4 {
		t.Errorf("investments = %d, want the 4 Q6 columns", invested)
	}
	// With a huge load factor nothing ever loads.
	p2 := DefaultParams(cat)
	p2.LoadFactor = 1e9
	b2, _ := NewBypass(p2)
	for _, q := range fixedTemplateQueries(t, cat, 3, 300, time.Second) {
		r, err := b2.HandleQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Investments != 0 {
			t.Fatal("load factor 1e9 must never load")
		}
	}
}

func TestBypassCacheHitAfterBuildCompletes(t *testing.T) {
	cat := catalog.TPCH(20)
	p := DefaultParams(cat)
	p.LoadFactor = 0.001
	b, _ := NewBypass(p)
	// Wide gaps let transfers finish quickly in query counts.
	qs := fixedTemplateQueries(t, cat, 3, 200, 60*time.Second)
	sawHit := false
	for _, q := range qs {
		r, err := b.HandleQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Location == plan.Cache {
			sawHit = true
			if r.ResponseTime <= 0 {
				t.Fatal("cache hit with zero response")
			}
		}
	}
	if !sawHit {
		t.Error("no cache hit after loading all columns")
	}
}

func TestBypassRespectsTinyCapacity(t *testing.T) {
	cat := catalog.TPCH(20)
	p := DefaultParams(cat)
	p.LoadFactor = 0.001
	p.CacheFraction = 1e-9 // cap below any single column
	b, err := NewBypass(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range fixedTemplateQueries(t, cat, 3, 200, time.Second) {
		r, err := b.HandleQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Investments != 0 {
			t.Fatal("column loaded despite impossible capacity")
		}
		if r.Location != plan.Backend {
			t.Fatal("query answered off a cache that cannot exist")
		}
	}
	if b.Cache().ResidentBytes() != 0 {
		t.Error("resident bytes in a zero cache")
	}
}

func TestBypassYieldResetsAfterLoad(t *testing.T) {
	cat := catalog.TPCH(20)
	p := DefaultParams(cat)
	p.LoadFactor = 0.001
	b, _ := NewBypass(p)
	qs := fixedTemplateQueries(t, cat, 3, 400, time.Second)
	total := 0
	for _, q := range qs {
		r, err := b.HandleQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Investments
	}
	// Exactly one load per column even though yield keeps flowing while
	// builds are in flight.
	if total != 4 {
		t.Errorf("loads = %d, want 4 (no duplicate loads)", total)
	}
	for _, e := range b.Cache().Entries() {
		if e.S.Kind != structure.KindColumn {
			t.Errorf("non-column %v in bypass cache", e.S)
		}
	}
}

func TestBypassBuildUsageAccounted(t *testing.T) {
	cat := catalog.TPCH(20)
	p := DefaultParams(cat)
	p.LoadFactor = 0.001
	b, _ := NewBypass(p)
	var netBytes int64
	for _, q := range fixedTemplateQueries(t, cat, 3, 100, time.Second) {
		r, err := b.HandleQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		netBytes += r.BuildUsage.NetBytes
	}
	var want int64
	for _, ref := range workload.PaperTemplates()[3].Columns {
		n, _ := cat.ColumnBytes(ref)
		want += n
	}
	if netBytes != want {
		t.Errorf("build transfer = %d bytes, want %d (the 4 columns)", netBytes, want)
	}
}
