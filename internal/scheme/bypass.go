package scheme

import (
	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Bypass is the bypass-yield baseline of [14] as emulated in §VII-A: the
// only priced resource is network bandwidth, the cache is capped at a fixed
// fraction of the database (the ideal 30 %), only table columns are cached
// and no indexes or extra CPU nodes are used.
//
// The caching rule is the byte-yield break-even of bypass caching: every
// back-end answer attributes its shipped bytes to the columns that, had
// they been cached, would have avoided the shipment. A column loads once
// its accumulated yield exceeds LoadFactor × its own transfer size — the
// point where caching it would have been cheaper than the traffic it
// caused. This is why net-only "answers many queries over the network
// before loading the data" (§VII-B).
type Bypass struct {
	model *cost.Model
	ca    *cache.Cache
	yield map[structure.ID]int64
	load  float64
}

// NewBypass builds the bypass baseline. The deciding schedule is forced to
// NetOnly regardless of Params.Schedule, matching the paper's emulation.
func NewBypass(p Params) (*Bypass, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	sched := pricing.NetOnly()
	// Keep the physical parameters of the supplied schedule so response
	// times stay comparable across schemes.
	if p.Schedule != nil {
		sched.NetworkThroughput = p.Schedule.NetworkThroughput
		sched.NetworkLatency = p.Schedule.NetworkLatency
		sched.FCPU = p.Schedule.FCPU
		sched.FIO = p.Schedule.FIO
		sched.FNet = p.Schedule.FNet
		sched.LCPU = p.Schedule.LCPU
		sched.BootTime = p.Schedule.BootTime
	}
	model, err := cost.NewModel(p.Catalog, sched, p.Tunables)
	if err != nil {
		return nil, err
	}
	capBytes := int64(float64(p.Catalog.TotalBytes()) * p.CacheFraction)
	return &Bypass{
		model: model,
		ca:    cache.New(capBytes),
		yield: make(map[structure.ID]int64),
		load:  p.LoadFactor,
	}, nil
}

// Name implements Scheme.
func (b *Bypass) Name() string { return "bypass" }

// YieldSnapshot exports the per-column yield accumulators (the scheme's
// only mutable state beyond the cache), for persistence.
func (b *Bypass) YieldSnapshot() map[structure.ID]int64 {
	out := make(map[structure.ID]int64, len(b.yield))
	for id, y := range b.yield {
		out[id] = y
	}
	return out
}

// RestoreYield replaces the yield accumulators with a previously
// exported set.
func (b *Bypass) RestoreYield(m map[structure.ID]int64) {
	b.yield = make(map[structure.ID]int64, len(m))
	for id, y := range m {
		b.yield[id] = y
	}
}

// Cache implements Scheme.
func (b *Bypass) Cache() *cache.Cache { return b.ca }

// HandleQuery implements Scheme.
func (b *Bypass) HandleQuery(q *workload.Query) (Result, error) {
	if err := step(b.ca, q); err != nil {
		return Result{}, err
	}

	// Identify missing columns.
	var missing []structure.ID
	for _, ref := range q.Template.Columns {
		id := structure.ColumnID(ref)
		if !b.ca.Has(id) {
			missing = append(missing, id)
		}
	}

	if len(missing) == 0 {
		// Answer in the cache.
		out, err := b.model.CacheExec(q, false, 1)
		if err != nil {
			return Result{}, err
		}
		for _, ref := range q.Template.Columns {
			b.ca.Touch(structure.ColumnID(ref))
		}
		return Result{
			ResponseTime: out.Time,
			Location:     plan.Cache,
			ExecUsage:    out.Usage,
		}, nil
	}

	// Answer in the back-end, then accumulate yield on the missing
	// columns and load the ones past break-even.
	out, err := b.model.BackendExec(q)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ResponseTime: out.Time,
		Location:     plan.Backend,
		ExecUsage:    out.Usage,
	}

	result, err := q.ResultBytes(b.model.Catalog())
	if err != nil {
		return Result{}, err
	}
	share := result / int64(len(missing))
	for _, ref := range q.Template.Columns {
		id := structure.ColumnID(ref)
		if b.ca.Has(id) || b.ca.Building(id) {
			continue
		}
		b.yield[id] += share
		colBytes, err := b.model.Catalog().ColumnBytes(ref)
		if err != nil {
			return Result{}, err
		}
		if float64(b.yield[id]) < b.load*float64(colBytes) {
			continue
		}
		// Break-even reached: load the column if the cap allows.
		if _, ok := b.ca.EnsureRoom(colBytes); !ok {
			continue
		}
		buildOut, err := b.model.BuildColumn(ref)
		if err != nil {
			return Result{}, err
		}
		st, err := structure.ColumnStructure(b.model.Catalog(), ref)
		if err != nil {
			return Result{}, err
		}
		price := cost.Price(b.model.Schedule(), buildOut.Usage)
		if err := b.ca.StartBuild(st, b.ca.Clock()+buildOut.Time, price); err != nil {
			return Result{}, err
		}
		res.BuildUsage.Add(buildOut.Usage)
		res.Investments++
		delete(b.yield, id)
	}
	return res, nil
}

var _ Scheme = (*Bypass)(nil)
