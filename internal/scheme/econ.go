package scheme

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Params bundles the knobs shared by the scheme constructors. Zero values
// take the defaults of DefaultParams.
type Params struct {
	// Catalog sizes every structure. Required.
	Catalog *catalog.Catalog
	// Schedule is the scheme's deciding price list. Defaults to EC22008
	// for the economy schemes; the bypass constructor forces NetOnly.
	Schedule *pricing.Schedule
	// Tunables calibrate the cost model.
	Tunables cost.Tunables
	// AmortN is the amortization horizon (Eq. 7).
	AmortN int64
	// Provider selects the economy's accounting stance: altruistic
	// (pooled single account, the paper's §IV default) or selfish
	// (per-tenant ledgers over the shared structure pool).
	Provider economy.Provider
	// RegretFraction is `a` of Eq. 3.
	RegretFraction float64
	// InitialCredit seeds the account.
	InitialCredit money.Amount
	// Conservative providers only build what the account covers.
	Conservative bool
	// MaintFailureFactor triggers structure failure (footnote 3).
	MaintFailureFactor float64
	// FailureFloor is the minimum arrears before a used structure fails.
	FailureFloor money.Amount
	// NeverUsedFloor is the minimum arrears before a never-used
	// structure fails.
	NeverUsedFloor money.Amount
	// InvestBackoff multiplies the investment threshold per prior
	// failure of the same structure.
	InvestBackoff float64
	// LedgerCap bounds the regret ledger.
	LedgerCap int
	// TenantCap bounds distinct tenant ledgers per economy; overflow
	// names share one ledger. 0 takes the economy's generous default.
	TenantCap int
	// CacheFraction is the bypass cache size as a fraction of the
	// database ("the ideal cache size for net-only, which is 30%").
	CacheFraction float64
	// LoadFactor scales the bypass break-even rule: a column loads when
	// its accumulated yield exceeds LoadFactor × its size.
	LoadFactor float64
}

// DefaultParams returns the calibration used by the paper-figure
// experiments.
func DefaultParams(cat *catalog.Catalog) Params {
	return Params{
		Catalog:            cat,
		Schedule:           pricing.EC22008(),
		Tunables:           cost.DefaultTunables(),
		AmortN:             100_000,
		RegretFraction:     0.005,
		InitialCredit:      money.FromDollars(50),
		Conservative:       true,
		MaintFailureFactor: 1.0,
		FailureFloor:       money.FromDollars(0.0001),
		NeverUsedFloor:     money.FromDollars(1),
		InvestBackoff:      2.0,
		LedgerCap:          4096,
		CacheFraction:      0.30,
		LoadFactor:         0.10,
	}
}

// withDefaults normalizes optional fields.
func (p Params) withDefaults() (Params, error) {
	if p.Catalog == nil {
		return p, fmt.Errorf("scheme: Catalog is required")
	}
	d := DefaultParams(p.Catalog)
	if p.Schedule == nil {
		p.Schedule = d.Schedule
	}
	if p.Tunables == (cost.Tunables{}) {
		p.Tunables = d.Tunables
	}
	if p.AmortN == 0 {
		p.AmortN = d.AmortN
	}
	if p.RegretFraction == 0 {
		p.RegretFraction = d.RegretFraction
	}
	if p.InitialCredit == 0 {
		p.InitialCredit = d.InitialCredit
	}
	if p.MaintFailureFactor == 0 {
		p.MaintFailureFactor = d.MaintFailureFactor
	}
	if p.FailureFloor == 0 {
		p.FailureFloor = d.FailureFloor
	}
	if p.NeverUsedFloor == 0 {
		p.NeverUsedFloor = d.NeverUsedFloor
	}
	if p.InvestBackoff == 0 {
		p.InvestBackoff = d.InvestBackoff
	}
	if p.LedgerCap == 0 {
		p.LedgerCap = d.LedgerCap
	}
	if p.CacheFraction == 0 {
		p.CacheFraction = d.CacheFraction
	}
	if p.LoadFactor == 0 {
		p.LoadFactor = d.LoadFactor
	}
	return p, nil
}

// Names lists the four schemes in canonical paper order.
var Names = []string{"bypass", "econ-col", "econ-cheap", "econ-fast"}

// New constructs a scheme by its paper name: "bypass", "econ-col",
// "econ-cheap" or "econ-fast".
func New(name string, p Params) (Scheme, error) {
	switch name {
	case "bypass":
		return NewBypass(p)
	case "econ-col":
		return NewEconCol(p)
	case "econ-cheap":
		return NewEconCheap(p)
	case "econ-fast":
		return NewEconFast(p)
	default:
		return nil, fmt.Errorf("scheme: unknown scheme %q", name)
	}
}

// Econ is an economy-driven scheme (econ-col, econ-cheap, econ-fast).
type Econ struct {
	name string
	ca   *cache.Cache
	opt  *optimizer.Optimizer
	eco  *economy.Economy
}

// newEcon wires an economy scheme.
func newEcon(name string, p Params, criterion economy.Criterion, kinds map[structure.Kind]bool, allowIdx, allowNodes bool) (*Econ, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	model, err := cost.NewModel(p.Catalog, p.Schedule, p.Tunables)
	if err != nil {
		return nil, err
	}
	ca := cache.New(0) // economy caches are disk-rent bounded, not capped
	opt, err := optimizer.New(optimizer.Config{
		Model:        model,
		AmortN:       p.AmortN,
		AllowIndexes: allowIdx,
		AllowNodes:   allowNodes,
	})
	if err != nil {
		return nil, err
	}
	eco, err := economy.New(economy.Config{
		Model:                 model,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             criterion,
		Provider:              p.Provider,
		RegretFraction:        p.RegretFraction,
		AmortN:                p.AmortN,
		InitialCredit:         p.InitialCredit,
		Conservative:          p.Conservative,
		UserAcceptsOverBudget: true,
		MaintFailureFactor:    p.MaintFailureFactor,
		FailureFloor:          p.FailureFloor,
		NeverUsedFloor:        p.NeverUsedFloor,
		InvestBackoff:         p.InvestBackoff,
		InvestKinds:           kinds,
		LedgerCap:             p.LedgerCap,
		TenantCap:             p.TenantCap,
	})
	if err != nil {
		return nil, err
	}
	return &Econ{name: name, ca: ca, opt: opt, eco: eco}, nil
}

// NewEconCol builds the econ-col scheme: columns only, cheapest plan
// ("similar to the net-only cache, in which query plan execution employs
// only cached columns and no indexes").
func NewEconCol(p Params) (*Econ, error) {
	return newEcon("econ-col", p, economy.SelectCheapest,
		map[structure.Kind]bool{structure.KindColumn: true}, false, false)
}

// NewEconCheap builds the econ-cheap scheme: full structure inventory,
// cheapest plan.
func NewEconCheap(p Params) (*Econ, error) {
	return newEcon("econ-cheap", p, economy.SelectCheapest, nil, true, true)
}

// NewEconFast builds the econ-fast scheme: full structure inventory,
// fastest affordable plan.
func NewEconFast(p Params) (*Econ, error) {
	return newEcon("econ-fast", p, economy.SelectFastest, nil, true, true)
}

// Name implements Scheme.
func (e *Econ) Name() string { return e.name }

// Cache implements Scheme.
func (e *Econ) Cache() *cache.Cache { return e.ca }

// Economy exposes the underlying economy for stats reporting.
func (e *Econ) Economy() *economy.Economy { return e.eco }

// SetEvents installs an economy event sink (see economy.SetEvents).
// Install at wiring time, before traffic.
func (e *Econ) SetEvents(fn func(obs.Event)) { e.eco.SetEvents(fn) }

// HandleQuery implements Scheme.
func (e *Econ) HandleQuery(q *workload.Query) (Result, error) {
	if err := step(e.ca, q); err != nil {
		return Result{}, err
	}
	plans, err := e.opt.Enumerate(q, e.ca)
	if err != nil {
		return Result{}, err
	}
	d, err := e.eco.HandleQuery(q, plans)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Case:             d.Case.String(),
		Declined:         d.Declined,
		Charged:          d.Charged,
		Profit:           d.Profit,
		BuildUsage:       e.eco.DrainBuildUsage(),
		Investments:      len(d.Investments),
		InvestConsidered: d.InvestConsidered,
		RegretAccrued:    d.RegretAccrued,
		Failures:         len(d.Failures),
	}
	if d.Chosen != nil {
		r.ResponseTime = d.Chosen.Time()
		r.Location = d.Chosen.Location
		r.ExecUsage = d.Chosen.Outcome.Usage
	}
	return r, nil
}

var _ Scheme = (*Econ)(nil)
