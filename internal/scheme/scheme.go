// Package scheme implements the four caching schemes of §VII-A behind one
// interface:
//
//   - bypass     — the bypass-yield baseline [14]: network is the only
//     priced resource, a fixed cache (30 % of the database) holds columns
//     chosen by byte-yield, no indexes, no extra CPU nodes.
//   - econ-col   — the economy restricted to column structures, cheapest
//     plan selection.
//   - econ-cheap — the full economy (columns + indexes + CPU nodes),
//     cheapest plan selection.
//   - econ-fast  — the full economy, fastest affordable plan selection.
package scheme

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/workload"
)

// Result reports how a scheme handled one query.
type Result struct {
	// ResponseTime is the promised/delivered execution time. Zero when
	// the query was declined.
	ResponseTime time.Duration
	// Location says where the query ran.
	Location plan.Location
	// Case is the economy's §IV-C classification ("A"/"B"/"C"; empty for
	// schemes without an economy).
	Case string
	// Declined reports the user walked away (no execution).
	Declined bool
	// Charged is the user's payment (0 for the bypass baseline, which
	// has no payment model).
	Charged money.Amount
	// Profit is the cloud's profit on the query.
	Profit money.Amount
	// ExecUsage is the physical resource usage of the execution.
	ExecUsage cost.Usage
	// BuildUsage is the physical usage of any structure builds this
	// query triggered.
	BuildUsage cost.Usage
	// Investments counts builds started by this query.
	Investments int
	// InvestConsidered counts structures whose regret crossed the
	// investment bar this query, whether or not the build went through.
	InvestConsidered int
	// RegretAccrued is the regret this query distributed across missing
	// structures.
	RegretAccrued money.Amount
	// Failures counts maintenance-failure evictions swept before this
	// query.
	Failures int
}

// Scheme is a caching policy driving one cache.
type Scheme interface {
	// Name returns the reporting label, e.g. "econ-cheap".
	Name() string
	// HandleQuery advances the scheme's cache clock to q.Arrival,
	// completes due builds, plans, executes and settles the query.
	HandleQuery(q *workload.Query) (Result, error)
	// Cache exposes the underlying cache for accounting.
	Cache() *cache.Cache
}

// step advances a cache to the query's arrival and completes due builds.
// Shared by all schemes.
func step(ca *cache.Cache, q *workload.Query) error {
	if q == nil {
		return fmt.Errorf("scheme: nil query")
	}
	if q.Arrival >= ca.Clock() {
		ca.Advance(q.Arrival)
	}
	ca.CompleteDue()
	return nil
}
