package scheme

import (
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/workload"
)

// testCatalog is small enough for fast unit tests; the experiment package
// runs at paper scale.
func testCatalog() *catalog.Catalog { return catalog.TPCH(20) }

// testParams scales the investment knobs to the small test catalog: regret
// per query is micro-dollars here, so the Eq. 3 trigger must be
// proportionally lower than at paper scale.
func testParams(cat *catalog.Catalog) Params {
	p := DefaultParams(cat)
	p.RegretFraction = 0.0001
	p.LoadFactor = 0.02
	return p
}

// stream produces n queries with a fixed gap and budgets a few times the
// typical back-end price at this scale.
func stream(t *testing.T, cat *catalog.Catalog, n int, gap time.Duration) []*workload.Query {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Catalog: cat,
		Seed:    7,
		Arrival: workload.NewFixedArrival(gap),
		Budgets: &workload.FixedPolicy{Shape: workload.ShapeStep, Price: money.FromDollars(0.002), TMax: time.Hour},
		Theta:   1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(n)
}

func runScheme(t *testing.T, s Scheme, qs []*workload.Query) []Result {
	t.Helper()
	out := make([]Result, 0, len(qs))
	for _, q := range qs {
		r, err := s.HandleQuery(q)
		if err != nil {
			t.Fatalf("%s: query %d: %v", s.Name(), q.ID, err)
		}
		out = append(out, r)
	}
	return out
}

func TestSchemeNames(t *testing.T) {
	cat := testCatalog()
	p := DefaultParams(cat)
	mk := []struct {
		name string
		ctor func(Params) (Scheme, error)
	}{
		{"bypass", func(p Params) (Scheme, error) { return NewBypass(p) }},
		{"econ-col", func(p Params) (Scheme, error) { return NewEconCol(p) }},
		{"econ-cheap", func(p Params) (Scheme, error) { return NewEconCheap(p) }},
		{"econ-fast", func(p Params) (Scheme, error) { return NewEconFast(p) }},
	}
	for _, m := range mk {
		s, err := m.ctor(p)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if s.Name() != m.name {
			t.Errorf("Name = %q, want %q", s.Name(), m.name)
		}
		if s.Cache() == nil {
			t.Errorf("%s has no cache", m.name)
		}
	}
}

func TestParamsRequireCatalog(t *testing.T) {
	if _, err := NewBypass(Params{}); err == nil {
		t.Error("bypass without catalog accepted")
	}
	if _, err := NewEconCheap(Params{}); err == nil {
		t.Error("econ without catalog accepted")
	}
}

func TestBypassCacheCapped(t *testing.T) {
	cat := testCatalog()
	b, err := NewBypass(DefaultParams(cat))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(float64(cat.TotalBytes()) * 0.30)
	if got := b.Cache().Capacity(); got != want {
		t.Errorf("capacity = %d, want %d (30%%)", got, want)
	}
}

func TestBypassStartsAtBackendThenCaches(t *testing.T) {
	cat := testCatalog()
	b, err := NewBypass(testParams(cat))
	if err != nil {
		t.Fatal(err)
	}
	qs := stream(t, cat, 8000, time.Second)
	results := runScheme(t, b, qs)

	if results[0].Location != plan.Backend {
		t.Error("first query must hit the backend")
	}
	cacheHits := 0
	for _, r := range results {
		if r.Location == plan.Cache {
			cacheHits++
		}
	}
	if cacheHits == 0 {
		t.Error("bypass never reached the cache in 3000 queries")
	}
	if b.Cache().ResidentBytes() == 0 {
		t.Error("bypass cached nothing")
	}
	if b.Cache().ResidentBytes() > b.Cache().Capacity() {
		t.Error("bypass exceeded its cap")
	}
}

func TestBypassNeverBuildsIndexesOrNodes(t *testing.T) {
	cat := testCatalog()
	b, _ := NewBypass(testParams(cat))
	qs := stream(t, cat, 4000, time.Second)
	runScheme(t, b, qs)
	for _, e := range b.Cache().Entries() {
		if e.S.Kind != structure.KindColumn {
			t.Fatalf("bypass built %v", e.S)
		}
	}
}

func TestEconCheapInvestsAndSpeedsUp(t *testing.T) {
	cat := testCatalog()
	s, err := NewEconCheap(testParams(cat))
	if err != nil {
		t.Fatal(err)
	}
	qs := stream(t, cat, 9000, time.Second)
	results := runScheme(t, s, qs)

	totalInvest := 0
	for _, r := range results {
		totalInvest += r.Investments
	}
	if totalInvest == 0 {
		t.Fatal("econ-cheap never invested")
	}
	// Average response time of the last quarter must beat the first
	// quarter (the cache warms up).
	quarter := len(results) / 4
	var early, late time.Duration
	for i := 0; i < quarter; i++ {
		early += results[i].ResponseTime
		late += results[len(results)-1-i].ResponseTime
	}
	if late >= early {
		t.Errorf("no warm-up improvement: early=%v late=%v", early/time.Duration(quarter), late/time.Duration(quarter))
	}
}

func TestEconColBuildsOnlyColumns(t *testing.T) {
	cat := testCatalog()
	s, _ := NewEconCol(testParams(cat))
	qs := stream(t, cat, 9000, time.Second)
	runScheme(t, s, qs)
	for _, e := range s.Cache().Entries() {
		if e.S.Kind != structure.KindColumn {
			t.Fatalf("econ-col built %v", e.S)
		}
	}
	if s.Cache().Len() == 0 {
		t.Error("econ-col built nothing")
	}
}

func TestEconFastAtLeastAsFastAsCheapWarm(t *testing.T) {
	cat := testCatalog()
	fast, _ := NewEconFast(testParams(cat))
	cheap, _ := NewEconCheap(testParams(cat))
	qs := stream(t, cat, 9000, time.Second)
	fr := runScheme(t, fast, qs)
	cr := runScheme(t, cheap, qs)
	// Compare mean response over the warm tail.
	tail := len(qs) / 2
	var fsum, csum time.Duration
	for i := tail; i < len(qs); i++ {
		fsum += fr[i].ResponseTime
		csum += cr[i].ResponseTime
	}
	if fsum > csum {
		t.Errorf("econ-fast warm tail (%v) slower than econ-cheap (%v)", fsum, csum)
	}
}

func TestEconChargesUsers(t *testing.T) {
	cat := testCatalog()
	s, _ := NewEconCheap(testParams(cat))
	qs := stream(t, cat, 500, time.Second)
	results := runScheme(t, s, qs)
	var charged money.Amount
	for _, r := range results {
		charged = charged.Add(r.Charged)
	}
	if !charged.IsPositive() {
		t.Error("economy collected nothing")
	}
	if s.Economy().Stats().ProfitTotal.IsNegative() {
		t.Error("negative lifetime profit")
	}
}

func TestSchemeRejectsNilQuery(t *testing.T) {
	cat := testCatalog()
	b, _ := NewBypass(DefaultParams(cat))
	if _, err := b.HandleQuery(nil); err == nil {
		t.Error("bypass accepted nil query")
	}
	e, _ := NewEconCheap(DefaultParams(cat))
	if _, err := e.HandleQuery(nil); err == nil {
		t.Error("econ accepted nil query")
	}
}

func TestBypassDeterministic(t *testing.T) {
	cat := testCatalog()
	run := func() []Result {
		b, _ := NewBypass(testParams(cat))
		return runScheme(t, b, stream(t, cat, 1000, time.Second))
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bypass result %d differs across identical runs", i)
		}
	}
}

func TestEconDeterministic(t *testing.T) {
	cat := testCatalog()
	run := func() []Result {
		s, _ := NewEconCheap(testParams(cat))
		return runScheme(t, s, stream(t, cat, 1000, time.Second))
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("econ result %d differs across identical runs", i)
		}
	}
}

func TestZeroBudgetStreamStillServed(t *testing.T) {
	// Users with zero budgets accept backend execution (§VII-A user
	// model): nothing is charged but queries still run.
	cat := testCatalog()
	gen, _ := workload.NewGenerator(workload.Config{
		Catalog: cat,
		Seed:    3,
		Arrival: workload.NewFixedArrival(time.Second),
		Budgets: &workload.FixedPolicy{Shape: workload.ShapeStep, Price: 0, TMax: time.Hour},
	})
	s, _ := NewEconCheap(DefaultParams(cat))
	for i := 0; i < 100; i++ {
		r, err := s.HandleQuery(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if r.Declined {
			t.Fatal("accepting user was declined")
		}
		if r.Charged.IsNegative() {
			t.Fatal("negative charge")
		}
	}
}

func TestBudgetTmaxRespected(t *testing.T) {
	// A budget whose Tmax is shorter than every plan's time forces case
	// A (B_Q is 0 beyond Tmax).
	cat := testCatalog()
	s, _ := NewEconCheap(DefaultParams(cat))
	tpl := workload.PaperTemplates()[0]
	q := &workload.Query{
		ID: 1, Template: tpl, Selectivity: tpl.SelMax,
		Budget: budget.NewStep(money.FromDollars(100), time.Nanosecond),
	}
	r, err := s.HandleQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Profit.IsPositive() {
		t.Error("impossible deadline must not profit")
	}
}
