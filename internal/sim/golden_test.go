package sim_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestReportGoldenJSON pins the JSON serialization of sim.Report — field
// names, field set and the values of one deterministic reference run —
// against a checked-in golden file. An economy refactor that silently
// changes a reported field (renames it, drops it, or shifts its value)
// fails here instead of slipping through review; an intentional change
// re-blesses the golden with `go test ./internal/sim -run Golden -update`.
//
// The reference run is small but exercises the full report surface:
// investments, cache answers, tenant sections under both providers, and
// the end-of-run tail-rent window. Values are exact: the simulator is
// single-threaded and seeded, money is fixed-point, and the percentile
// reservoir uses a deterministic PRNG. (The handful of float64 fields
// assume one architecture's rounding; CI and the golden agree on
// linux/amd64.)
func TestReportGoldenJSON(t *testing.T) {
	cat := catalog.TPCH(20)
	for _, tc := range []struct {
		name     string
		provider economy.Provider
	}{
		{"report_econ_cheap_altruistic", economy.ProviderAltruistic},
		{"report_econ_cheap_selfish", economy.ProviderSelfish},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := scheme.DefaultParams(cat)
			params.RegretFraction = 0.0001
			params.Provider = tc.provider
			sch, err := scheme.NewEconCheap(params)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := workload.NewGenerator(workload.Config{
				Catalog:     cat,
				Seed:        11,
				Arrival:     workload.NewFixedArrival(time.Second),
				Budgets:     &workload.FixedPolicy{Shape: workload.ShapeStep, Price: money.FromDollars(0.002), TMax: time.Hour},
				Tenants:     3,
				TenantTheta: 1.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Run(sim.Config{Scheme: sch, Generator: gen, Queries: 1500, ReservoirCap: 64})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Investments == 0 || rep.CacheAnswered == 0 || len(rep.Tenants) != 3 {
				t.Fatalf("reference run too dull to pin: %d investments, %d cache answers, %d tenants",
					rep.Investments, rep.CacheAnswered, len(rep.Tenants))
			}

			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("sim.Report JSON diverged from %s.\nIf the change is intentional, re-bless with -update.\ngot:\n%s\nwant:\n%s",
					golden, got, want)
			}
		})
	}
}
