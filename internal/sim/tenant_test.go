package sim

import (
	"sort"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/economy"
	"repro/internal/money"
	"repro/internal/scheme"
	"repro/internal/structure"
	"repro/internal/workload"
)

// tenantGen builds a generator whose stream is spread over tenants with
// Zipf skew. The tenant draws come from a dedicated RNG, so for a fixed
// seed the underlying query stream (templates, selectivities, arrivals,
// budgets) is identical for every tenant configuration.
func tenantGen(t *testing.T, cat *catalog.Catalog, tenants int, theta float64, seed int64) *workload.Generator {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{
		Catalog:     cat,
		Seed:        seed,
		Arrival:     workload.NewFixedArrival(time.Second),
		Budgets:     &workload.FixedPolicy{Shape: workload.ShapeStep, Price: money.FromDollars(0.002), TMax: time.Hour},
		Tenants:     tenants,
		TenantTheta: theta,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func providerScheme(t *testing.T, cat *catalog.Catalog, p economy.Provider) scheme.Scheme {
	t.Helper()
	params := scheme.DefaultParams(cat)
	params.RegretFraction = 0.0001
	params.Provider = p
	s, err := scheme.NewEconCheap(params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTenantTagsDoNotPerturbStream: tagging a stream with tenants must not
// change a single template, selectivity or arrival of the stream itself —
// the property the altruistic parity below rests on.
func TestTenantTagsDoNotPerturbStream(t *testing.T) {
	cat := catalog.TPCH(20)
	plain := tenantGen(t, cat, 0, 0, 7)
	tagged := tenantGen(t, cat, 5, 1.1, 7)
	for i := 0; i < 2000; i++ {
		a, b := plain.Next(), tagged.Next()
		if a.Template.Name != b.Template.Name || a.Selectivity != b.Selectivity ||
			a.Arrival != b.Arrival || a.ID != b.ID {
			t.Fatalf("query %d diverged: %v vs %v", i, a, b)
		}
		if a.Tenant != "" || b.Tenant == "" {
			t.Fatalf("query %d: tags wrong: %q vs %q", i, a.Tenant, b.Tenant)
		}
	}
}

// TestAltruisticSimParity is the acceptance test of the ledger refactor:
// Provider=altruistic over a tenant-tagged stream must reproduce the
// classic single-account results byte for byte — same operating cost,
// same investments, same response distribution, same residency — because
// the pooled account is tenant-blind. The single-tenant degenerate case
// (Tenants=0) IS today's behavior.
func TestAltruisticSimParity(t *testing.T) {
	cat := catalog.TPCH(20)
	run := func(tenants int) *Report {
		rep, err := Run(Config{
			Scheme:    providerScheme(t, cat, economy.ProviderAltruistic),
			Generator: tenantGen(t, cat, tenants, 1.1, 7),
			Queries:   3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain, tagged := run(0), run(4)

	if plain.Tenants != nil {
		t.Error("untagged run grew tenant sections")
	}
	if len(tagged.Tenants) == 0 {
		t.Error("tagged run has no tenant sections")
	}
	// Strip the (intentionally different) tenant sections, then demand
	// byte-for-byte equality of everything else.
	taggedCopy := *tagged
	taggedCopy.Tenants = nil
	plainCopy := *plain
	if plainCopy.OperatingCost != taggedCopy.OperatingCost ||
		plainCopy.ExecCost != taggedCopy.ExecCost ||
		plainCopy.BuildCost != taggedCopy.BuildCost ||
		plainCopy.StorageCost != taggedCopy.StorageCost ||
		plainCopy.NodeCost != taggedCopy.NodeCost ||
		plainCopy.Revenue != taggedCopy.Revenue ||
		plainCopy.Profit != taggedCopy.Profit ||
		plainCopy.Investments != taggedCopy.Investments ||
		plainCopy.Failures != taggedCopy.Failures ||
		plainCopy.Declined != taggedCopy.Declined ||
		plainCopy.CacheAnswered != taggedCopy.CacheAnswered ||
		plainCopy.FinalResidentBytes != taggedCopy.FinalResidentBytes ||
		plainCopy.EndOfRun != taggedCopy.EndOfRun {
		t.Errorf("altruistic accounting diverged under tenant tags:\nplain  %+v\ntagged %+v",
			plainCopy, taggedCopy)
	}
	if plain.Response.Mean() != tagged.Response.Mean() {
		t.Errorf("response distribution diverged: %g vs %g",
			plain.Response.Mean(), tagged.Response.Mean())
	}

	// Tenant sections are attribution only: they must sum back to the
	// aggregate exactly.
	var q, decl, hits int64
	var rev money.Amount
	for _, tr := range tagged.Tenants {
		q += tr.Queries
		decl += tr.Declined
		hits += tr.CacheAnswered
		rev = rev.Add(tr.Revenue)
	}
	if q != int64(tagged.Queries) || decl != tagged.Declined ||
		hits != tagged.CacheAnswered || rev != tagged.Revenue {
		t.Errorf("tenant sections do not sum to the aggregate: q=%d/%d decl=%d/%d hits=%d/%d rev=%v/%v",
			q, tagged.Queries, decl, tagged.Declined, hits, tagged.CacheAnswered, rev, tagged.Revenue)
	}
}

// residentIDs snapshots the sorted resident + pending structure IDs of a
// scheme's cache.
func residentIDs(s scheme.Scheme) []structure.ID {
	var ids []structure.ID
	for _, e := range s.Cache().Entries() {
		ids = append(ids, e.S.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestSelfishChangesInvestment is the regression half of the acceptance
// criteria: under a two-tenant skewed workload the selfish provider —
// whose per-tenant capital and regret gates the Eq. 3 test tenant by
// tenant — must build differently from the altruistic pool fed the very
// same stream.
func TestSelfishChangesInvestment(t *testing.T) {
	cat := catalog.TPCH(20)
	run := func(p economy.Provider) (*Report, scheme.Scheme) {
		sch := providerScheme(t, cat, p)
		rep, err := Run(Config{
			Scheme:    sch,
			Generator: tenantGen(t, cat, 2, 1.1, 7),
			Queries:   3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, sch
	}
	altRep, altSch := run(economy.ProviderAltruistic)
	selRep, selSch := run(economy.ProviderSelfish)

	alt, sel := residentIDs(altSch), residentIDs(selSch)
	sameResidency := len(alt) == len(sel)
	if sameResidency {
		for i := range alt {
			if alt[i] != sel[i] {
				sameResidency = false
				break
			}
		}
	}
	if sameResidency && altRep.Investments == selRep.Investments {
		t.Errorf("selfish provider built exactly what the altruistic one did "+
			"(investments %d, residency %v) — the policy knob is inert",
			altRep.Investments, alt)
	}

	// The selfish run's ledgers must show per-tenant accounts in play:
	// the hot tenant financed structures out of its own (seeded) credit.
	var financed int64
	for _, tr := range selRep.Tenants {
		financed += tr.StructuresCharged
		if tr.Queries > 0 && tr.Credit.IsZero() && tr.Spend.IsZero() {
			t.Errorf("tenant %q has an empty ledger: %+v", tr.Tenant, tr)
		}
	}
	if financed == 0 {
		t.Error("no tenant financed any structure in the selfish run")
	}
}
