package sim

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/workload"
)

func testGen(t *testing.T, cat *catalog.Catalog, gap time.Duration, seed int64) *workload.Generator {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{
		Catalog: cat,
		Seed:    seed,
		Arrival: workload.NewFixedArrival(gap),
		Budgets: &workload.FixedPolicy{Shape: workload.ShapeStep, Price: money.FromDollars(0.002), TMax: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testScheme(t *testing.T, cat *catalog.Catalog) scheme.Scheme {
	t.Helper()
	p := scheme.DefaultParams(cat)
	p.RegretFraction = 0.0001
	s, err := scheme.NewEconCheap(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunValidation(t *testing.T) {
	cat := catalog.TPCH(5)
	s := testScheme(t, cat)
	g := testGen(t, cat, time.Second, 1)
	cases := []Config{
		{Generator: g, Queries: 10},                                             // no scheme
		{Scheme: s, Queries: 10},                                                // no generator
		{Scheme: s, Generator: g, Queries: 0},                                   // no queries
		{Scheme: s, Generator: g, Queries: 10, Accounting: &pricing.Schedule{}}, // invalid schedule
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestRunBasicReport(t *testing.T) {
	cat := catalog.TPCH(5)
	s := testScheme(t, cat)
	g := testGen(t, cat, time.Second, 2)
	rep, err := Run(Config{Scheme: s, Generator: g, Queries: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemeName != "econ-cheap" || rep.Queries != 500 {
		t.Errorf("header wrong: %+v", rep)
	}
	if rep.Response.N() != 500-rep.Declined {
		t.Errorf("response samples = %d", rep.Response.N())
	}
	if !rep.ExecCost.IsPositive() {
		t.Error("exec cost empty")
	}
	if rep.OperatingCost != money.Sum(rep.ExecCost, rep.BuildCost, rep.StorageCost, rep.NodeCost) {
		t.Error("operating cost is not the sum of its parts")
	}
	if rep.Elapsed != 499*time.Second {
		t.Errorf("elapsed = %v, want 499s", rep.Elapsed)
	}
	if !rep.Revenue.IsPositive() {
		t.Error("no revenue")
	}
	if rep.MeanResponse() <= 0 {
		t.Error("mean response not positive")
	}
	if rep.String() == "" {
		t.Error("empty String()")
	}
}

func TestStorageCostGrowsWithInterarrival(t *testing.T) {
	// The same query count over a longer wall clock must cost more in
	// storage rent once anything is cached (Fig. 4 trend).
	cat := catalog.TPCH(5)
	run := func(gap time.Duration) *Report {
		p := scheme.DefaultParams(cat)
		p.RegretFraction = 0.00005
		s, err := scheme.NewEconCol(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Config{Scheme: s, Generator: testGen(t, cat, gap, 3), Queries: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	short := run(time.Second)
	long := run(30 * time.Second)
	if short.StorageCost >= long.StorageCost {
		t.Errorf("storage: 1s=%v should be < 30s=%v", short.StorageCost, long.StorageCost)
	}
}

func TestProgressCallback(t *testing.T) {
	cat := catalog.TPCH(5)
	s := testScheme(t, cat)
	g := testGen(t, cat, time.Second, 4)
	var calls []int
	_, err := Run(Config{
		Scheme: s, Generator: g, Queries: 100,
		OnProgress: func(done int) { calls = append(calls, done) }, ProgressEvery: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 || calls[0] != 25 || calls[3] != 100 {
		t.Errorf("progress calls = %v", calls)
	}
}

func TestBypassVsEconShareAccounting(t *testing.T) {
	// Both schemes are accounted with the same schedule, so a bypass run
	// must report CPU expenditure even though its own deciding schedule
	// prices CPU at zero.
	cat := catalog.TPCH(5)
	b, err := scheme.NewBypass(scheme.DefaultParams(cat))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Scheme: b, Generator: testGen(t, cat, time.Second, 5), Queries: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExecCost.IsPositive() {
		t.Error("bypass execution must cost real dollars under true accounting")
	}
	if rep.Revenue.IsPositive() {
		t.Error("bypass has no payment model; revenue must be zero")
	}
}
