package sim

import (
	"context"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/structure"
	"repro/internal/workload"
)

// rentScheme is a stub that executes every query at the back end with a
// fixed response time while holding a fixed cache population, so rent
// integration can be checked against hand arithmetic.
type rentScheme struct {
	ca   *cache.Cache
	resp time.Duration
}

func (s *rentScheme) Name() string        { return "rent-stub" }
func (s *rentScheme) Cache() *cache.Cache { return s.ca }

func (s *rentScheme) HandleQuery(q *workload.Query) (scheme.Result, error) {
	if q.Arrival >= s.ca.Clock() {
		s.ca.Advance(q.Arrival)
	}
	s.ca.CompleteDue()
	return scheme.Result{
		ResponseTime: s.resp,
		Location:     plan.Backend,
		Charged:      money.FromDollars(0.001),
	}, nil
}

// TestTailRentCharged is the regression test for the tail gap: rent must
// keep accruing between the final arrival and the final completion, not
// stop at the last arrival.
func TestTailRentCharged(t *testing.T) {
	ca := cache.New(0)
	if err := ca.StartBuild(structure.CPUNode(2), 0, money.FromDollars(1)); err != nil {
		t.Fatal(err)
	}
	ca.CompleteDue()
	if ca.NodeCount() != 1 {
		t.Fatalf("node not resident: %d", ca.NodeCount())
	}

	cat := catalog.TPCH(5)
	const queries = 10
	const resp = 30 * time.Second
	rep, err := Run(Config{
		Scheme:    &rentScheme{ca: ca, resp: resp},
		Generator: testGen(t, cat, time.Second, 7),
		Queries:   queries,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Arrivals at 1..10 s, each answered in 30 s: the run ends when the
	// last execution completes at 40 s, and the node rents for all of it.
	wantEnd := 10*time.Second + resp
	if rep.EndOfRun != wantEnd {
		t.Errorf("EndOfRun = %v, want %v", rep.EndOfRun, wantEnd)
	}
	want := pricing.EC22008().CPUPerHour.MulFloat(wantEnd.Seconds() / 3600)
	if diff := rep.NodeCost.Sub(want).Abs(); diff > money.Amount(1) {
		t.Errorf("NodeCost = %v, want %v (tail rent dropped?)", rep.NodeCost, want)
	}
	// The pre-fix accounting stopped at the last arrival (10 s); make the
	// regression explicit.
	preFix := pricing.EC22008().CPUPerHour.MulFloat(10.0 / 3600)
	if rep.NodeCost <= preFix {
		t.Errorf("NodeCost = %v does not include the tail beyond %v", rep.NodeCost, preFix)
	}
}

// TestBatchInvariance pins the pipelined producer: any batch size and
// prefetch depth must yield the identical report.
func TestBatchInvariance(t *testing.T) {
	cat := catalog.TPCH(5)
	run := func(batch, prefetch int) *Report {
		rep, err := Run(Config{
			Scheme:    testScheme(t, cat),
			Generator: testGen(t, cat, time.Second, 9),
			Queries:   2000,
			BatchSize: batch,
			Prefetch:  prefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run(1, 1)
	b := run(512, 8)
	if a.OperatingCost != b.OperatingCost || a.Revenue != b.Revenue ||
		a.Declined != b.Declined || a.CacheAnswered != b.CacheAnswered ||
		a.Response.Mean() != b.Response.Mean() || a.EndOfRun != b.EndOfRun {
		t.Errorf("batching changed results:\n%v\nvs\n%v", a, b)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	cat := catalog.TPCH(5)
	mk := func(seed int64) Config {
		return Config{Scheme: testScheme(t, cat), Generator: testGen(t, cat, time.Second, seed), Queries: 500}
	}
	seeds := []int64{1, 2, 3, 4}

	var want []*Report
	for _, s := range seeds {
		rep, err := Run(mk(s))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rep)
	}

	cfgs := make([]Config, len(seeds))
	for i, s := range seeds {
		cfgs[i] = mk(s)
	}
	var doneCalls int
	got, err := RunParallel(context.Background(), cfgs, Pool{
		Workers: 4,
		OnDone:  func(int, *Report) { doneCalls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || doneCalls != len(want) {
		t.Fatalf("got %d reports, %d OnDone calls", len(got), doneCalls)
	}
	for i := range want {
		if got[i].OperatingCost != want[i].OperatingCost ||
			got[i].Revenue != want[i].Revenue ||
			got[i].Response.Mean() != want[i].Response.Mean() {
			t.Errorf("report %d differs from sequential run", i)
		}
	}
}

func TestRunParallelFirstError(t *testing.T) {
	cat := catalog.TPCH(5)
	good := Config{Scheme: testScheme(t, cat), Generator: testGen(t, cat, time.Second, 1), Queries: 100}
	bad := Config{Generator: testGen(t, cat, time.Second, 2), Queries: 100} // no scheme
	if _, err := RunParallel(context.Background(), []Config{good, bad}, Pool{Workers: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cat := catalog.TPCH(5)
	cfg := Config{Scheme: testScheme(t, cat), Generator: testGen(t, cat, time.Second, 1), Queries: 100}
	if _, err := RunParallel(ctx, []Config{cfg}, Pool{Workers: 1}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestRunParallelEmpty(t *testing.T) {
	reports, err := RunParallel(context.Background(), nil, Pool{})
	if err != nil || len(reports) != 0 {
		t.Errorf("empty run: %v, %v", reports, err)
	}
}
