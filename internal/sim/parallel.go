package sim

import (
	"context"
	"runtime"
	"sync"
)

// Pool configures RunParallel.
type Pool struct {
	// Workers bounds how many simulations run concurrently. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// OnDone, if set, is called as each run completes, with the index of
	// its config and its report. Calls are serialized by an internal
	// mutex but arrive in completion order, not config order.
	OnDone func(i int, rep *Report)
}

// RunParallel executes every config on a bounded worker pool and returns
// the reports in config order. Each simulation owns all of its state
// (scheme, cache, economy, generator), so runs never share mutable data;
// results are identical for any worker count. The first error cancels the
// remaining work and is returned.
func RunParallel(ctx context.Context, cfgs []Config, pool Pool) ([]*Report, error) {
	return RunParallelFunc(ctx, len(cfgs), func(i int) (Config, error) {
		return cfgs[i], nil
	}, pool)
}

// RunParallelFunc is RunParallel with lazy config construction: build(i) is
// called inside the worker that runs job i, so at most Workers simulations'
// worth of state (schemes, caches, generators) is live at once no matter
// how large the job set is. build must be a pure function of i.
func RunParallelFunc(ctx context.Context, n int, build func(i int) (Config, error), pool Pool) ([]*Report, error) {
	workers := pool.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	reports := make([]*Report, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cfg, err := build(i)
				if err != nil {
					fail(err)
					return
				}
				rep, err := RunContext(ctx, cfg)
				if err != nil {
					fail(err)
					return
				}
				reports[i] = rep
				if pool.OnDone != nil {
					mu.Lock()
					pool.OnDone(i, rep)
					mu.Unlock()
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return reports, nil
}
