// Package sim runs a caching scheme against a query stream on a discrete
// event clock and accounts the cloud's true operating cost (Fig. 4) and
// response times (Fig. 5).
//
// Accounting is deliberately separate from the scheme's own deciding
// prices: the bypass baseline decides as if only network mattered, but its
// true expenditure — CPU, I/O, network, storage rent, node uptime — is
// still measured with the real schedule, so Figure 4 compares all schemes
// in the same dollars.
package sim

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// Config parameterises one simulation run.
type Config struct {
	// Scheme under test. Required.
	Scheme scheme.Scheme
	// Generator produces the query stream. Required.
	Generator *workload.Generator
	// Queries is the stream length. Required.
	Queries int
	// Accounting prices the true expenditure; defaults to EC22008.
	Accounting *pricing.Schedule
	// ReservoirCap bounds the response-time percentile reservoir.
	// Defaults to 4096.
	ReservoirCap int
	// OnProgress, if set, is invoked every ProgressEvery queries with
	// the number handled so far.
	OnProgress    func(done int)
	ProgressEvery int
}

// Report is the outcome of one run.
type Report struct {
	// SchemeName labels the run.
	SchemeName string
	// Queries is the number of queries offered.
	Queries int
	// Declined counts queries the user walked away from.
	Declined int64
	// CacheAnswered counts queries answered in the cache.
	CacheAnswered int64
	// Investments and Failures count structure builds and
	// maintenance-failure evictions.
	Investments int64
	Failures    int64

	// Response aggregates response times of executed queries (seconds).
	Response *metrics.DurationStats

	// True expenditure, priced with the accounting schedule.
	ExecCost    money.Amount // query execution (CPU + I/O + result WAN)
	BuildCost   money.Amount // structure construction
	StorageCost money.Amount // disk rent over resident bytes × time
	NodeCost    money.Amount // extra CPU-node uptime rent
	// OperatingCost is the Fig. 4 total: Exec + Build + Storage + Node.
	OperatingCost money.Amount

	// Revenue and Profit are the user-payment side.
	Revenue money.Amount
	Profit  money.Amount

	// Elapsed is the simulated wall-clock span (first to last arrival).
	Elapsed time.Duration
	// FinalResidentBytes is the cache footprint at the end.
	FinalResidentBytes int64
}

// Run executes the simulation.
func Run(cfg Config) (*Report, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("sim: Scheme is required")
	}
	if cfg.Generator == nil {
		return nil, fmt.Errorf("sim: Generator is required")
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("sim: Queries must be positive")
	}
	if cfg.Accounting == nil {
		cfg.Accounting = pricing.EC22008()
	}
	if err := cfg.Accounting.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReservoirCap == 0 {
		cfg.ReservoirCap = 4096
	}

	rep := &Report{
		SchemeName: cfg.Scheme.Name(),
		Queries:    cfg.Queries,
		Response:   metrics.NewDurationStats(cfg.ReservoirCap),
	}

	var execUsage, buildUsage cost.Usage
	var storageGBSeconds float64 // resident GiB × seconds
	var nodeSeconds float64      // extra-node uptime in seconds

	ca := cfg.Scheme.Cache()
	lastClock := ca.Clock()
	var firstArrival time.Duration
	var lastArrival time.Duration

	for i := 0; i < cfg.Queries; i++ {
		q := cfg.Generator.Next()
		if i == 0 {
			firstArrival = q.Arrival
		}
		lastArrival = q.Arrival

		// Integrate storage and node rent over the idle gap, using the
		// cache state before this arrival mutates it.
		if q.Arrival > lastClock {
			dt := (q.Arrival - lastClock).Seconds()
			storageGBSeconds += float64(ca.ResidentBytes()) / (1 << 30) * dt
			nodeSeconds += float64(ca.NodeCount()) * dt
			lastClock = q.Arrival
		}

		r, err := cfg.Scheme.HandleQuery(q)
		if err != nil {
			return nil, fmt.Errorf("sim: query %d: %w", q.ID, err)
		}
		execUsage.Add(r.ExecUsage)
		buildUsage.Add(r.BuildUsage)
		rep.Revenue = rep.Revenue.Add(r.Charged)
		rep.Profit = rep.Profit.Add(r.Profit)
		rep.Investments += int64(r.Investments)
		rep.Failures += int64(r.Failures)
		if r.Declined {
			rep.Declined++
		} else {
			rep.Response.ObserveDuration(r.ResponseTime)
			if r.Location == plan.Cache {
				rep.CacheAnswered++
			}
		}

		if cfg.OnProgress != nil && cfg.ProgressEvery > 0 && (i+1)%cfg.ProgressEvery == 0 {
			cfg.OnProgress(i + 1)
		}
	}

	acct := cfg.Accounting
	rep.ExecCost = cost.Price(acct, execUsage)
	rep.BuildCost = cost.Price(acct, buildUsage)
	rep.StorageCost = acct.DiskPerGBMonth.MulFloat(storageGBSeconds / secondsPerMonth)
	rep.NodeCost = acct.CPUPerHour.MulFloat(nodeSeconds / 3600)
	rep.OperatingCost = money.Sum(rep.ExecCost, rep.BuildCost, rep.StorageCost, rep.NodeCost)
	rep.Elapsed = lastArrival - firstArrival
	rep.FinalResidentBytes = ca.ResidentBytes()
	return rep, nil
}

const secondsPerMonth = 30 * 24 * 3600.0

// MeanResponse returns the mean response time.
func (r *Report) MeanResponse() time.Duration {
	return time.Duration(r.Response.Mean() * float64(time.Second))
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: n=%d cost=%s resp=%.2fs cacheHits=%d invests=%d failures=%d",
		r.SchemeName, r.Queries, r.OperatingCost, r.Response.Mean(),
		r.CacheAnswered, r.Investments, r.Failures)
}
