// Package sim runs a caching scheme against a query stream on a discrete
// event clock and accounts the cloud's true operating cost (Fig. 4) and
// response times (Fig. 5).
//
// Accounting is deliberately separate from the scheme's own deciding
// prices: the bypass baseline decides as if only network mattered, but its
// true expenditure — CPU, I/O, network, storage rent, node uptime — is
// still measured with the real schedule, so Figure 4 compares all schemes
// in the same dollars.
package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// Config parameterises one simulation run.
type Config struct {
	// Scheme under test. Required.
	Scheme scheme.Scheme
	// Generator produces the query stream. Required unless Source is
	// set.
	Generator *workload.Generator
	// Source, if non-nil, produces the query stream instead of
	// Generator — any workload.Source (an adversary strategy, a merged
	// multi-source stream) plugs in here. A nil query from the source
	// ends the run early.
	Source workload.Source
	// Queries is the stream length. Required.
	Queries int
	// Accounting prices the true expenditure; defaults to EC22008.
	Accounting *pricing.Schedule
	// ReservoirCap bounds the response-time percentile reservoir.
	// Defaults to 4096.
	ReservoirCap int
	// OnProgress, if set, is invoked every ProgressEvery queries with
	// the number handled so far.
	OnProgress    func(done int)
	ProgressEvery int
	// BatchSize is how many queries the generation stage hands to the
	// settlement stage at a time. Generation runs in its own goroutine
	// and stays BatchSize·Prefetch queries ahead, overlapping workload
	// synthesis with economy settlement. Defaults to 256.
	BatchSize int
	// Prefetch is the depth of the generation channel in batches.
	// Defaults to 4.
	Prefetch int
}

// Report is the outcome of one run.
type Report struct {
	// SchemeName labels the run.
	SchemeName string
	// Queries is the number of queries offered.
	Queries int
	// Declined counts queries the user walked away from.
	Declined int64
	// CacheAnswered counts queries answered in the cache.
	CacheAnswered int64
	// Investments and Failures count structure builds and
	// maintenance-failure evictions.
	Investments int64
	Failures    int64

	// Response aggregates response times of executed queries (seconds).
	Response *metrics.DurationStats

	// True expenditure, priced with the accounting schedule.
	ExecCost    money.Amount // query execution (CPU + I/O + result WAN)
	BuildCost   money.Amount // structure construction
	StorageCost money.Amount // disk rent over resident bytes × time
	NodeCost    money.Amount // extra CPU-node uptime rent
	// OperatingCost is the Fig. 4 total: Exec + Build + Storage + Node.
	OperatingCost money.Amount

	// Revenue and Profit are the user-payment side.
	Revenue money.Amount
	Profit  money.Amount

	// Elapsed is the simulated wall-clock span (first to last arrival).
	Elapsed time.Duration
	// EndOfRun is when the last execution completed (last arrival plus
	// the longest outstanding response); rent is charged through it.
	EndOfRun time.Duration
	// FinalResidentBytes is the cache footprint at the end.
	FinalResidentBytes int64

	// Tenants holds the per-tenant sections, sorted by tenant name. Nil
	// when the stream carried no tenant tags (the paper's single-tenant
	// figures).
	Tenants []TenantReport
}

// TenantReport is one tenant's slice of the run: traffic and payment
// attribution from the stream, plus the tenant's ledger state when the
// scheme runs an economy (zero-valued for the bypass baseline).
type TenantReport struct {
	// Tenant is the tenant name ("" for untagged queries in a mixed
	// stream).
	Tenant string
	// Traffic.
	Queries       int64
	Declined      int64
	CacheAnswered int64
	// Payments.
	Revenue money.Amount
	Profit  money.Amount
	// Response time over the tenant's executed queries.
	ResponseSum time.Duration
	// Ledger state at end of run (economy schemes only). Credit and
	// StructuresCharged are zero under the altruistic provider, whose
	// account is communal.
	Credit            money.Amount
	Spend             money.Amount
	RegretAccrued     money.Amount
	Invested          money.Amount
	StructuresCharged int64
}

// MeanResponseSeconds returns the tenant's mean response time in seconds.
func (t TenantReport) MeanResponseSeconds() float64 {
	if n := t.Queries - t.Declined; n > 0 {
		return t.ResponseSum.Seconds() / float64(n)
	}
	return 0
}

// Run executes the simulation.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the simulation, aborting between batches when ctx is
// cancelled. Workload generation runs in a producer goroutine that stays a
// few batches ahead of settlement; the query stream and all results are
// identical to a fully sequential run for any BatchSize/Prefetch.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("sim: Scheme is required")
	}
	src := cfg.Source
	if src == nil {
		if cfg.Generator == nil {
			return nil, fmt.Errorf("sim: a Generator or Source is required")
		}
		src = cfg.Generator
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("sim: Queries must be positive")
	}
	if cfg.Accounting == nil {
		cfg.Accounting = pricing.EC22008()
	}
	if err := cfg.Accounting.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReservoirCap == 0 {
		cfg.ReservoirCap = 4096
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 4
	}

	rep := &Report{
		SchemeName: cfg.Scheme.Name(),
		Queries:    cfg.Queries,
		Response:   metrics.NewDurationStats(cfg.ReservoirCap),
	}

	var execUsage, buildUsage cost.Usage
	var storageGBSeconds float64 // resident GiB × seconds
	var nodeSeconds float64      // extra-node uptime in seconds

	ca := cfg.Scheme.Cache()
	lastClock := ca.Clock()
	var firstArrival time.Duration
	var lastArrival time.Duration
	var endOfRun time.Duration

	// Producer: the generator is single-owner, so exactly one goroutine
	// calls Next. The deferred cancel-and-drain guarantees it has exited
	// (and the generator is quiescent) before RunContext returns.
	pctx, cancel := context.WithCancel(ctx)
	produced := make(chan []*workload.Query, cfg.Prefetch)
	// Consumed batch buffers recycle back to the producer, so a run of any
	// length allocates at most Prefetch+1 batch slices.
	free := make(chan []*workload.Query, cfg.Prefetch+1)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		defer close(produced)
		for remaining := cfg.Queries; remaining > 0; {
			n := cfg.BatchSize
			if n > remaining {
				n = remaining
			}
			var buf []*workload.Query
			select {
			case buf = <-free:
				buf = buf[:0]
			default:
				buf = make([]*workload.Query, 0, n)
			}
			batch := src.Batch(n, buf)
			select {
			case produced <- batch:
				if len(batch) < n {
					// The source ran dry (only finite Sources do; the
					// Generator never does): end the run early.
					return
				}
				remaining -= n
			case <-pctx.Done():
				return
			}
		}
	}()
	defer func() {
		cancel()
		<-producerDone
	}()

	// Per-tenant attribution. The map cost per query is negligible next
	// to plan enumeration and settlement.
	tenantReps := make(map[string]*TenantReport)
	tenantOf := func(name string) *TenantReport {
		tr, ok := tenantReps[name]
		if !ok {
			tr = &TenantReport{Tenant: name}
			tenantReps[name] = tr
		}
		return tr
	}

	i := 0
	for batch := range produced {
		for _, q := range batch {
			if i == 0 {
				firstArrival = q.Arrival
			}
			lastArrival = q.Arrival

			// Integrate storage and node rent over the idle gap, using the
			// cache state before this arrival mutates it.
			if q.Arrival > lastClock {
				dt := (q.Arrival - lastClock).Seconds()
				storageGBSeconds += float64(ca.ResidentBytes()) / (1 << 30) * dt
				nodeSeconds += float64(ca.NodeCount()) * dt
				lastClock = q.Arrival
			}

			r, err := cfg.Scheme.HandleQuery(q)
			if err != nil {
				return nil, fmt.Errorf("sim: query %d: %w", q.ID, err)
			}
			execUsage.Add(r.ExecUsage)
			buildUsage.Add(r.BuildUsage)
			rep.Revenue = rep.Revenue.Add(r.Charged)
			rep.Profit = rep.Profit.Add(r.Profit)
			rep.Investments += int64(r.Investments)
			rep.Failures += int64(r.Failures)
			tr := tenantOf(q.Tenant)
			tr.Queries++
			tr.Revenue = tr.Revenue.Add(r.Charged)
			tr.Profit = tr.Profit.Add(r.Profit)
			if r.Declined {
				rep.Declined++
				tr.Declined++
			} else {
				rep.Response.ObserveDuration(r.ResponseTime)
				tr.ResponseSum += r.ResponseTime
				if r.Location == plan.Cache {
					rep.CacheAnswered++
					tr.CacheAnswered++
				}
			}
			if done := q.Arrival + r.ResponseTime; done > endOfRun {
				endOfRun = done
			}

			i++
			if cfg.OnProgress != nil && cfg.ProgressEvery > 0 && i%cfg.ProgressEvery == 0 {
				cfg.OnProgress(i)
			}
		}
		select {
		case free <- batch:
		default:
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if i != cfg.Queries {
		// The producer stopped early; the only cause is cancellation.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("sim: generator produced %d of %d queries", i, cfg.Queries)
	}

	// Rent keeps accruing while the final queries execute: integrate the
	// tail from the last arrival to the last completion, so a run's
	// storage and node costs do not silently drop the closing window.
	if endOfRun > lastClock {
		dt := (endOfRun - lastClock).Seconds()
		storageGBSeconds += float64(ca.ResidentBytes()) / (1 << 30) * dt
		nodeSeconds += float64(ca.NodeCount()) * dt
		lastClock = endOfRun
	}

	acct := cfg.Accounting
	rep.ExecCost = cost.Price(acct, execUsage)
	rep.BuildCost = cost.Price(acct, buildUsage)
	rep.StorageCost = acct.StorageRent(storageGBSeconds)
	rep.NodeCost = acct.NodeRent(nodeSeconds)
	rep.OperatingCost = money.Sum(rep.ExecCost, rep.BuildCost, rep.StorageCost, rep.NodeCost)
	rep.Elapsed = lastArrival - firstArrival
	rep.EndOfRun = endOfRun
	rep.FinalResidentBytes = ca.ResidentBytes()

	// Per-tenant sections: only for tagged streams, so the classic
	// single-tenant reports keep their shape.
	_, untaggedOnly := tenantReps[""]
	if len(tenantReps) > 1 || !untaggedOnly {
		// Enrich with end-of-run ledger state when the scheme runs an
		// economy.
		if ec, ok := cfg.Scheme.(interface{ Economy() *economy.Economy }); ok {
			for _, ts := range ec.Economy().TenantStats() {
				if tr, ok := tenantReps[ts.Tenant]; ok {
					tr.Credit = ts.Credit
					tr.Spend = ts.Spend
					tr.RegretAccrued = ts.RegretAccrued
					tr.Invested = ts.Invested
					tr.StructuresCharged = ts.InvestCount
				}
			}
		}
		rep.Tenants = make([]TenantReport, 0, len(tenantReps))
		for _, tr := range tenantReps {
			rep.Tenants = append(rep.Tenants, *tr)
		}
		sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].Tenant < rep.Tenants[j].Tenant })
	}
	return rep, nil
}

// MeanResponse returns the mean response time.
func (r *Report) MeanResponse() time.Duration {
	return time.Duration(r.Response.Mean() * float64(time.Second))
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: n=%d cost=%s resp=%.2fs cacheHits=%d invests=%d failures=%d",
		r.SchemeName, r.Queries, r.OperatingCost, r.Response.Mean(),
		r.CacheAnswered, r.Investments, r.Failures)
}
