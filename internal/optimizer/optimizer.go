// Package optimizer enumerates and prices the candidate plan set PQ for an
// incoming query (§IV-B): the back-end plan, cache column-scan plans, index
// plans and parallel plans, each split into PQexist (all structures
// resident) or PQpos (needs investment). Prices follow the scheme's cost
// model: execution (Eq. 8–9), amortized build shares (Eq. 4–7) and
// maintenance arrears (footnote 3).
package optimizer

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Config parameterises an Optimizer.
type Config struct {
	// Model prices plans (the scheme's own schedule).
	Model *cost.Model
	// AmortN is the number of prospective queries a build cost is
	// amortized over (the `n` of Eq. 7). The paper leaves choosing n
	// open; see DESIGN.md.
	AmortN int64
	// AllowIndexes enables index plans (econ-cheap/econ-fast; off for
	// econ-col and bypass).
	AllowIndexes bool
	// AllowNodes enables multi-node parallel plans.
	AllowNodes bool
	// SkylineOnly keeps only time/cost-Pareto plans (footnote 2).
	SkylineOnly bool
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("optimizer: Model is required")
	}
	if c.AmortN <= 0 {
		return fmt.Errorf("optimizer: AmortN must be positive")
	}
	return nil
}

// Optimizer enumerates plans against a cache. It memoizes the immutable
// structure objects per template (IDs and sizes are on the per-query hot
// path), so it is NOT safe for concurrent use; each scheme owns one
// optimizer, matching the single-threaded simulation loop.
type Optimizer struct {
	cfg Config

	tplColumns map[*workload.Template][]*structure.Structure
	tplIndexes map[*workload.Template]map[structure.ID]*structure.Structure
	tplCandIDs map[*workload.Template][]structure.ID
	cpuNodes   []*structure.Structure // cpuNodes[i] is node ordinal i+2

	// scratch backs the slice Enumerate returns, reused across calls to
	// keep the per-query hot path free of slice growth.
	scratch []*plan.Plan

	// pool holds every *plan.Plan the optimizer has ever handed out;
	// Enumerate resets and reuses them from the front (used counts the
	// current call's consumption). Together with scratch this makes a
	// steady-state Enumerate allocation-free: PR 1 pooled the slice,
	// this extends the pattern to the Plan values themselves.
	pool []*plan.Plan
	used int

	// colIDs caches ref → ID strings: BuildPrice's residency predicate
	// runs per missing index per query, and structure.ColumnID would
	// otherwise mint a fresh string each time.
	colIDs map[catalog.ColumnRef]structure.ID

	// priceMemo memoizes BuildPrice per structure for as long as the
	// cache's residency epoch stands still. Build prices depend only on
	// the model (fixed) and on which columns are resident, so between
	// builds and evictions — i.e. for almost every query — pricing a
	// missing candidate is a map hit instead of a full Eq. 10/12/14
	// walk over the catalog.
	priceMemo  map[structure.ID]memoPrice
	priceCache *cache.Cache
	priceEpoch int64
}

// memoPrice is one memoized BuildPrice result.
type memoPrice struct {
	price money.Amount
	out   cost.Outcome
}

// columnID returns the cached structure ID for a column reference.
func (o *Optimizer) columnID(ref catalog.ColumnRef) structure.ID {
	if id, ok := o.colIDs[ref]; ok {
		return id
	}
	id := structure.ColumnID(ref)
	if o.colIDs == nil {
		o.colIDs = make(map[catalog.ColumnRef]structure.ID)
	}
	o.colIDs[ref] = id
	return id
}

// nextPlan returns a cleared plan from the pool, growing it on first
// use. Pooled plans keep their Structures set and Missing slice capacity
// across reuse.
func (o *Optimizer) nextPlan() *plan.Plan {
	if o.used < len(o.pool) {
		p := o.pool[o.used]
		o.used++
		p.Reset()
		return p
	}
	p := &plan.Plan{Structures: structure.NewSet()}
	o.pool = append(o.pool, p)
	o.used++
	return p
}

// New builds an optimizer.
func New(cfg Config) (*Optimizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &Optimizer{
		cfg:        cfg,
		tplColumns: make(map[*workload.Template][]*structure.Structure),
		tplIndexes: make(map[*workload.Template]map[structure.ID]*structure.Structure),
		tplCandIDs: make(map[*workload.Template][]structure.ID),
	}
	for n := 2; n <= cfg.Model.Tunables().MaxNodes; n++ {
		o.cpuNodes = append(o.cpuNodes, structure.CPUNode(n))
	}
	return o, nil
}

// columnsFor returns the memoized column structures of a template.
func (o *Optimizer) columnsFor(tpl *workload.Template) ([]*structure.Structure, error) {
	if cols, ok := o.tplColumns[tpl]; ok {
		return cols, nil
	}
	cols := make([]*structure.Structure, 0, len(tpl.Columns))
	for _, ref := range tpl.Columns {
		st, err := structure.ColumnStructure(o.cfg.Model.Catalog(), ref)
		if err != nil {
			return nil, err
		}
		cols = append(cols, st)
	}
	o.tplColumns[tpl] = cols
	return cols, nil
}

// indexFor returns the memoized index structure of a template candidate.
func (o *Optimizer) indexFor(tpl *workload.Template, id structure.ID) (*structure.Structure, error) {
	byID, ok := o.tplIndexes[tpl]
	if !ok {
		byID = make(map[structure.ID]*structure.Structure, len(tpl.IndexCandidates))
		o.tplIndexes[tpl] = byID
	}
	if st, ok := byID[id]; ok {
		return st, nil
	}
	def, ok := o.indexDefFor(tpl, id)
	if !ok {
		return nil, fmt.Errorf("optimizer: index %s not a candidate of %s", id, tpl.Name)
	}
	st, err := structure.IndexStructure(o.cfg.Model.Catalog(), def)
	if err != nil {
		return nil, err
	}
	byID[id] = st
	return st, nil
}

// Enumerate produces the priced plan set PQ for the query given the current
// cache state. The back-end plan is always present and always runnable, so
// PQexist is never empty.
//
// Aliasing contract: the returned slice AND the *Plan values it holds
// are owned by the optimizer — the slice is backed by a per-optimizer
// scratch buffer and the plans come from a pool that the next Enumerate
// call resets and reuses. Everything (including the Structures sets and
// Missing slices inside each plan) is only valid until the next
// Enumerate call; callers that outlive one query's handling must deep-
// copy what they keep. This holds for the SkylineOnly path too: Skyline
// returns a fresh slice but it aliases the same pooled plans.
func (o *Optimizer) Enumerate(q *workload.Query, ca *cache.Cache) ([]*plan.Plan, error) {
	if q == nil || ca == nil {
		return nil, fmt.Errorf("optimizer: query and cache are required")
	}
	o.used = 0
	plans := o.scratch[:0]

	backend, err := o.backendPlan(q)
	if err != nil {
		return nil, err
	}
	plans = append(plans, backend)

	maxNodes := 1
	if o.cfg.AllowNodes {
		maxNodes = o.cfg.Model.Tunables().MaxNodes
	}
	if !q.Template.Parallelizable {
		maxNodes = 1
	}

	for nodes := 1; nodes <= maxNodes; nodes++ {
		p, err := o.cachePlan(q, ca, false, structure.ID(""), nodes)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)

		if o.cfg.AllowIndexes {
			if idxID, ok := o.pickIndex(q, ca); ok {
				ip, err := o.cachePlan(q, ca, true, idxID, nodes)
				if err != nil {
					return nil, err
				}
				plans = append(plans, ip)
			}
		}
	}

	o.scratch = plans
	if o.cfg.SkylineOnly {
		// Skyline copies into a fresh slice, so the scratch stays free
		// for the next call and the caller gets an independent result.
		return plan.Skyline(plans), nil
	}
	return plans, nil
}

// pickIndex chooses the index this query's plans would use: a resident
// matching candidate if one exists (cheapest to use), otherwise the first
// candidate in template order (the one regret should accrue to). Reports
// false when the template has no candidates.
func (o *Optimizer) pickIndex(q *workload.Query, ca *cache.Cache) (structure.ID, bool) {
	tpl := q.Template
	if len(tpl.IndexCandidates) == 0 {
		return "", false
	}
	ids, ok := o.tplCandIDs[tpl]
	if !ok {
		ids = make([]structure.ID, len(tpl.IndexCandidates))
		for i, def := range tpl.IndexCandidates {
			ids[i] = structure.IndexID(def)
		}
		o.tplCandIDs[tpl] = ids
	}
	for _, id := range ids {
		if ca.Has(id) {
			return id, true
		}
	}
	return ids[0], true
}

// backendPlan prices Eq. 9 execution. It uses no cache structures.
func (o *Optimizer) backendPlan(q *workload.Query) (*plan.Plan, error) {
	out, err := o.cfg.Model.BackendExec(q)
	if err != nil {
		return nil, err
	}
	p := o.nextPlan()
	p.Query = q
	p.Location = plan.Backend
	p.Nodes = 1
	p.Outcome = out
	p.ExecPrice = cost.Price(o.cfg.Model.Schedule(), out.Usage)
	return p, nil
}

// cachePlan builds and prices one cache-resident plan variant.
func (o *Optimizer) cachePlan(q *workload.Query, ca *cache.Cache, useIndex bool, idxID structure.ID, nodes int) (*plan.Plan, error) {
	m := o.cfg.Model
	out, err := m.CacheExec(q, useIndex, nodes)
	if err != nil {
		return nil, err
	}
	p := o.nextPlan()
	p.Query = q
	p.Location = plan.Cache
	p.UsesIndex = useIndex
	p.Index = idxID
	p.Nodes = nodes
	p.Outcome = out
	p.ExecPrice = cost.Price(m.Schedule(), out.Usage)

	// Column structures: all template columns must be resident.
	cols, err := o.columnsFor(q.Template)
	if err != nil {
		return nil, err
	}
	for _, st := range cols {
		o.addStructure(p, ca, st)
	}

	// The index structure.
	if useIndex {
		st, err := o.indexFor(q.Template, idxID)
		if err != nil {
			return nil, err
		}
		o.addStructure(p, ca, st)
	}

	// Extra CPU nodes.
	for n := 2; n <= nodes; n++ {
		o.addStructure(p, ca, o.cpuNodes[n-2])
	}

	// Price the missing structures' amortized build shares.
	if err := o.priceMissing(p, ca); err != nil {
		return nil, err
	}
	return p, nil
}

// addStructure registers a structure on the plan, accumulating amortization
// and maintenance arrears for resident structures and recording missing
// ones.
func (o *Optimizer) addStructure(p *plan.Plan, ca *cache.Cache, st *structure.Structure) {
	if !p.Structures.Add(st) {
		return
	}
	if e, ok := ca.Get(st.ID); ok {
		p.AmortPrice = p.AmortPrice.Add(cache.AmortShare(e, o.cfg.AmortN))
		p.MaintPrice = p.MaintPrice.Add(o.maintDue(ca, e))
		return
	}
	p.Missing = append(p.Missing, st.ID)
}

// maintDue prices the maintenance arrears of a resident entry at the
// current cache clock.
func (o *Optimizer) maintDue(ca *cache.Cache, e *cache.Entry) money.Amount {
	return cache.MaintDue(e, func(e *cache.Entry) money.Amount {
		return o.cfg.Model.MaintCost(e.S.Kind == structure.KindCPUNode, e.S.Bytes, ca.Clock()-e.MaintPaidUntil)
	})
}

// priceMissing adds the amortized share of the build cost of each missing
// structure (Eq. 6–7 applied to prospective inventory: the first of the n
// amortizing queries would pay Build/n).
func (o *Optimizer) priceMissing(p *plan.Plan, ca *cache.Cache) error {
	for _, id := range p.Missing {
		st, _ := p.Structures.Get(id)
		price, _, err := o.BuildPrice(st, ca)
		if err != nil {
			return err
		}
		p.AmortPrice = p.AmortPrice.Add(price.DivInt(o.cfg.AmortN))
	}
	return nil
}

// BuildPrice returns the price and the build duration of constructing a
// structure now, under the optimizer's model and the current cache state
// (Eq. 10, 12, 14).
func (o *Optimizer) BuildPrice(st *structure.Structure, ca *cache.Cache) (money.Amount, cost.Outcome, error) {
	if o.priceCache != ca || o.priceEpoch != ca.Epoch() {
		clear(o.priceMemo)
		o.priceCache, o.priceEpoch = ca, ca.Epoch()
	}
	if e, ok := o.priceMemo[st.ID]; ok {
		return e.price, e.out, nil
	}
	m := o.cfg.Model
	var out cost.Outcome
	var err error
	switch st.Kind {
	case structure.KindCPUNode:
		out = m.BuildCPUNode()
	case structure.KindColumn:
		out, err = m.BuildColumn(st.Column)
	case structure.KindIndex:
		out, err = m.BuildIndex(st.Index, func(ref catalog.ColumnRef) bool {
			return ca.Has(o.columnID(ref))
		})
	default:
		err = fmt.Errorf("optimizer: unknown structure kind %v", st.Kind)
	}
	if err != nil {
		return 0, cost.Outcome{}, err
	}
	price := cost.Price(m.Schedule(), out.Usage)
	if o.priceMemo == nil {
		o.priceMemo = make(map[structure.ID]memoPrice)
	}
	o.priceMemo[st.ID] = memoPrice{price: price, out: out}
	return price, out, nil
}

// indexDefFor resolves the candidate IndexDef with the given structure ID.
func (o *Optimizer) indexDefFor(tpl *workload.Template, id structure.ID) (catalog.IndexDef, bool) {
	for _, def := range tpl.IndexCandidates {
		if structure.IndexID(def) == id {
			return def, true
		}
	}
	return catalog.IndexDef{}, false
}

// Config returns the optimizer configuration.
func (o *Optimizer) Config() Config { return o.cfg }
