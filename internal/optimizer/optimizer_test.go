package optimizer

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/structure"
	"repro/internal/workload"
)

func testSetup(t *testing.T, allowIdx, allowNodes bool) (*Optimizer, *cache.Cache, *cost.Model) {
	t.Helper()
	m, err := cost.NewModel(catalog.TPCH(10), pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{Model: m, AmortN: 1000, AllowIndexes: allowIdx, AllowNodes: allowNodes})
	if err != nil {
		t.Fatal(err)
	}
	return o, cache.New(0), m
}

func q6(sel float64) *workload.Query {
	tpl := workload.PaperTemplates()[3] // Q6: 4 lineitem columns, parallelizable
	return &workload.Query{ID: 1, Template: tpl, Selectivity: sel}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil model accepted")
	}
	m, _ := cost.NewModel(catalog.TPCH(1), pricing.EC22008(), cost.DefaultTunables())
	if _, err := New(Config{Model: m, AmortN: 0}); err == nil {
		t.Error("zero AmortN accepted")
	}
}

func TestEnumerateColdCache(t *testing.T) {
	o, ca, _ := testSetup(t, true, true)
	plans, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	// backend + 3 scan variants + 3 index variants.
	if len(plans) != 7 {
		t.Fatalf("plan count = %d, want 7", len(plans))
	}
	exist, possible := plan.Partition(plans)
	if len(exist) != 1 || exist[0].Location != plan.Backend {
		t.Errorf("cold cache: only the backend plan should be runnable, got %v", exist)
	}
	if len(possible) != 6 {
		t.Errorf("possible = %d", len(possible))
	}
	// All cache plans miss the 4 columns.
	for _, p := range possible {
		if len(p.Missing) < 4 {
			t.Errorf("plan %v should miss at least the 4 columns", p)
		}
		if p.AmortPrice.IsZero() {
			t.Errorf("possible plan must carry amortized build share: %v", p)
		}
	}
}

func TestEnumerateColumnOnly(t *testing.T) {
	o, ca, _ := testSetup(t, false, false)
	plans, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	// backend + single-node scan.
	if len(plans) != 2 {
		t.Fatalf("plan count = %d, want 2", len(plans))
	}
	for _, p := range plans {
		if p.UsesIndex || p.Nodes > 1 {
			t.Errorf("column-only optimizer emitted %v", p)
		}
	}
}

func TestEnumerateWarmCache(t *testing.T) {
	o, ca, m := testSetup(t, true, false)
	// Install Q6's columns.
	for _, ref := range q6(0).Template.Columns {
		st, err := structure.ColumnStructure(m.Catalog(), ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := ca.StartBuild(st, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	ca.CompleteDue()

	plans, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	exist, possible := plan.Partition(plans)
	// Backend + cache scan runnable; index plan still possible.
	if len(exist) != 2 {
		t.Fatalf("exist = %v", exist)
	}
	var cacheScan *plan.Plan
	for _, p := range exist {
		if p.Location == plan.Cache {
			cacheScan = p
		}
	}
	if cacheScan == nil {
		t.Fatal("cache scan not runnable with columns resident")
	}
	if len(possible) != 1 || !possible[0].UsesIndex {
		t.Fatalf("possible = %v", possible)
	}
	// The cache scan should beat the backend plan on both axes here.
	backend := exist[0]
	if backend.Location != plan.Backend {
		backend = exist[1]
	}
	if cacheScan.Time() >= backend.Time() {
		t.Error("cache scan should be faster than backend")
	}
}

func TestAmortizationChargedOnResidentStructures(t *testing.T) {
	o, ca, m := testSetup(t, false, false)
	buildPrice := int64(0)
	for _, ref := range q6(0).Template.Columns {
		st, _ := structure.ColumnStructure(m.Catalog(), ref)
		price, _, err := o.BuildPrice(st, ca)
		if err != nil {
			t.Fatal(err)
		}
		buildPrice += price.Micros()
		ca.StartBuild(st, 0, price)
	}
	ca.CompleteDue()

	plans, _ := o.Enumerate(q6(5e-4), ca)
	var cachePlan *plan.Plan
	for _, p := range plans {
		if p.Location == plan.Cache {
			cachePlan = p
		}
	}
	if cachePlan == nil {
		t.Fatal("no cache plan")
	}
	// Amortized share should be ~ buildPrice/AmortN (4 columns).
	want := buildPrice / 1000
	got := cachePlan.AmortPrice.Micros()
	if got < want-4 || got > want+4 { // rounding slack per column
		t.Errorf("AmortPrice = %d micros, want ~%d", got, want)
	}
}

func TestMaintDueAppearsInPrice(t *testing.T) {
	o, ca, m := testSetup(t, false, false)
	for _, ref := range q6(0).Template.Columns {
		st, _ := structure.ColumnStructure(m.Catalog(), ref)
		ca.StartBuild(st, 0, 0)
	}
	ca.CompleteDue()

	// Let a month of rent accrue.
	ca.Advance(30 * 24 * time.Hour)
	plans, _ := o.Enumerate(q6(5e-4), ca)
	var cachePlan *plan.Plan
	for _, p := range plans {
		if p.Location == plan.Cache {
			cachePlan = p
		}
	}
	if !cachePlan.MaintPrice.IsPositive() {
		t.Error("a month of storage rent must show up in MaintPrice")
	}
	// Roughly size/GiB * $0.15.
	var bytes int64
	for _, ref := range q6(0).Template.Columns {
		b, _ := m.Catalog().ColumnBytes(ref)
		bytes += b
	}
	want := m.Schedule().StorageCost(bytes, 30*24*time.Hour)
	diff := cachePlan.MaintPrice.Sub(want).Abs()
	if diff > want.MulFloat(0.01) {
		t.Errorf("MaintPrice = %v, want ~%v", cachePlan.MaintPrice, want)
	}
}

func TestPickIndexPrefersResident(t *testing.T) {
	o, ca, m := testSetup(t, true, false)
	q := q6(5e-4)
	// Build the SECOND candidate; pickIndex should now return it.
	def := q.Template.IndexCandidates[1]
	st, err := structure.IndexStructure(m.Catalog(), def)
	if err != nil {
		t.Fatal(err)
	}
	ca.StartBuild(st, 0, 0)
	ca.CompleteDue()

	id, ok := o.pickIndex(q, ca)
	if !ok || id != structure.IndexID(def) {
		t.Errorf("pickIndex = %v, want resident %v", id, structure.IndexID(def))
	}
	// Cold cache: first candidate.
	cold := cache.New(0)
	id, ok = o.pickIndex(q, cold)
	if !ok || id != structure.IndexID(q.Template.IndexCandidates[0]) {
		t.Errorf("cold pickIndex = %v", id)
	}
}

func TestSkylineOnlyShrinksPlanSet(t *testing.T) {
	m, _ := cost.NewModel(catalog.TPCH(10), pricing.EC22008(), cost.DefaultTunables())
	full, _ := New(Config{Model: m, AmortN: 1000, AllowIndexes: true, AllowNodes: true})
	sky, _ := New(Config{Model: m, AmortN: 1000, AllowIndexes: true, AllowNodes: true, SkylineOnly: true})
	ca := cache.New(0)
	fullPlans, _ := full.Enumerate(q6(5e-4), ca)
	skyPlans, _ := sky.Enumerate(q6(5e-4), ca)
	if len(skyPlans) > len(fullPlans) {
		t.Error("skyline must not grow the plan set")
	}
	if len(skyPlans) == 0 {
		t.Error("skyline emptied the plan set")
	}
}

func TestBuildPriceKinds(t *testing.T) {
	o, ca, m := testSetup(t, true, true)
	// CPU node: boot cost.
	cpu := structure.CPUNode(2)
	price, out, err := o.BuildPrice(cpu, ca)
	if err != nil || price != m.Schedule().BootCost() {
		t.Errorf("cpu build = %v, %v", price, err)
	}
	if out.Time != m.Schedule().BootTime {
		t.Errorf("cpu build time = %v", out.Time)
	}
	// Column: transfer priced.
	col, _ := structure.ColumnStructure(m.Catalog(), catalog.Col("lineitem", "l_shipdate"))
	price, out, err = o.BuildPrice(col, ca)
	if err != nil || !price.IsPositive() || out.Time <= 0 {
		t.Errorf("column build = %v, %v, %v", price, out, err)
	}
	// Index with no cached columns: dearer than with cached columns.
	idef := catalog.IndexDef{Table: "lineitem", Columns: []string{"l_shipdate"}}
	idx, _ := structure.IndexStructure(m.Catalog(), idef)
	cold, _, err := o.BuildPrice(idx, ca)
	if err != nil {
		t.Fatal(err)
	}
	ca.StartBuild(col, 0, 0)
	ca.CompleteDue()
	warm, _, err := o.BuildPrice(idx, ca)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("index build with cached column (%v) should be cheaper than cold (%v)", warm, cold)
	}
	// Unknown kind.
	if _, _, err := o.BuildPrice(&structure.Structure{Kind: structure.Kind(9)}, ca); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEnumerateNilArgs(t *testing.T) {
	o, ca, _ := testSetup(t, false, false)
	if _, err := o.Enumerate(nil, ca); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := o.Enumerate(q6(5e-4), nil); err == nil {
		t.Error("nil cache accepted")
	}
}

func TestNonParallelizableTemplateGetsNoNodePlans(t *testing.T) {
	o, ca, _ := testSetup(t, true, true)
	tpl := workload.PaperTemplates()[4] // Q10: not parallelizable
	q := &workload.Query{ID: 1, Template: tpl, Selectivity: 3e-4}
	plans, err := o.Enumerate(q, ca)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Nodes > 1 {
			t.Errorf("non-parallelizable template got %d-node plan", p.Nodes)
		}
	}
}

func TestEnumerateReusesScratchBuffer(t *testing.T) {
	o, ca, _ := testSetup(t, true, true)
	a, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	first := &a[0]
	b, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	if &b[0] != first {
		t.Error("second Enumerate did not reuse the scratch buffer")
	}
	if len(b) != len(a) {
		t.Errorf("plan count changed on reuse: %d vs %d", len(b), len(a))
	}
	for _, p := range b {
		if p == nil || p.Query == nil {
			t.Fatal("reused enumeration produced an invalid plan")
		}
	}
}

func TestEnumerateReusesPlanPool(t *testing.T) {
	o, ca, _ := testSetup(t, true, true)
	a, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[*plan.Plan]bool, len(a))
	for _, p := range a {
		first[p] = true
	}
	// Same query, same cache: the second enumeration must produce the
	// same plan set out of the same pooled objects — zero fresh plans.
	b, err := o.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(a) {
		t.Fatalf("plan count changed on reuse: %d vs %d", len(b), len(a))
	}
	for _, p := range b {
		if !first[p] {
			t.Error("second Enumerate allocated a fresh plan instead of reusing the pool")
		}
		if p.Query == nil || p.Structures == nil {
			t.Fatal("pooled plan not refilled")
		}
	}
}

func TestEnumerateSkylineResultIndependentOfScratch(t *testing.T) {
	m, _ := cost.NewModel(catalog.TPCH(10), pricing.EC22008(), cost.DefaultTunables())
	sky, _ := New(Config{Model: m, AmortN: 1000, AllowIndexes: true, AllowNodes: true, SkylineOnly: true})
	ca := cache.New(0)
	a, err := sky.Enumerate(q6(5e-4), ca)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]*plan.Plan, len(a))
	copy(snapshot, a)
	if _, err := sky.Enumerate(q6(5e-4), ca); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != snapshot[i] {
			t.Error("skyline result was clobbered by the next Enumerate")
		}
	}
}
