// Package structure defines the physical cache structures the cloud can
// invest in. §V-C fixes the inventory to three kinds: CPU nodes (N), table
// columns (T) and indexes (I). Structures are identified by a stable string
// ID so the economy can key its regret ledger (§IV-C) and the cache its
// residency state by the same name.
package structure

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// Kind enumerates the three structure types of §V-C.
type Kind int

// The structure kinds.
const (
	KindCPUNode Kind = iota // N: an extra CPU node booted on demand
	KindColumn              // T: a table column cached from the back-end
	KindIndex               // I: an index built in the cache
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCPUNode:
		return "cpu-node"
	case KindColumn:
		return "column"
	case KindIndex:
		return "index"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ID is the canonical identifier of a structure. The textual forms are:
//
//	cpu:2                          the second CPU node (the first is free)
//	col:lineitem.l_shipdate        a cached column
//	idx_lineitem(l_shipdate,...)   an index (catalog.IndexDef.Name)
type ID string

// Structure describes one buildable structure. It is immutable once
// constructed; residency and accounting state live in the cache and the
// economy respectively.
type Structure struct {
	ID   ID
	Kind Kind

	// Column is set for KindColumn.
	Column catalog.ColumnRef
	// Index is set for KindIndex.
	Index catalog.IndexDef
	// NodeOrdinal is set for KindCPUNode: 2 for the first extra node,
	// 3 for the second, and so on (node 1 is the always-on coordinator
	// worker and is never a structure).
	NodeOrdinal int

	// Bytes is the disk footprint of the structure. CPU nodes occupy no
	// disk; columns occupy size(T) (Eq. 13); indexes size(I) (Eq. 15).
	Bytes int64
}

// CPUNode returns the structure describing the n-th CPU node (n ≥ 2).
func CPUNode(n int) *Structure {
	return &Structure{
		ID:          ID(fmt.Sprintf("cpu:%d", n)),
		Kind:        KindCPUNode,
		NodeOrdinal: n,
	}
}

// ColumnStructure returns the structure for caching one table column,
// sized from the catalog.
func ColumnStructure(c *catalog.Catalog, ref catalog.ColumnRef) (*Structure, error) {
	bytes, err := c.ColumnBytes(ref)
	if err != nil {
		return nil, err
	}
	return &Structure{
		ID:     ColumnID(ref),
		Kind:   KindColumn,
		Column: ref,
		Bytes:  bytes,
	}, nil
}

// IndexStructure returns the structure for building an index, sized from
// the catalog.
func IndexStructure(c *catalog.Catalog, def catalog.IndexDef) (*Structure, error) {
	bytes, err := c.IndexBytes(def)
	if err != nil {
		return nil, err
	}
	return &Structure{
		ID:    ID(def.Name()),
		Kind:  KindIndex,
		Index: def,
		Bytes: bytes,
	}, nil
}

// ColumnID returns the canonical ID for a cached column.
func ColumnID(ref catalog.ColumnRef) ID { return ID("col:" + ref.String()) }

// IndexID returns the canonical ID for an index definition.
func IndexID(def catalog.IndexDef) ID { return ID(def.Name()) }

// CPUNodeID returns the canonical ID for the n-th CPU node.
func CPUNodeID(n int) ID { return ID(fmt.Sprintf("cpu:%d", n)) }

// KindOf parses the kind out of an ID without needing the Structure.
func KindOf(id ID) Kind {
	s := string(id)
	switch {
	case strings.HasPrefix(s, "cpu:"):
		return KindCPUNode
	case strings.HasPrefix(s, "col:"):
		return KindColumn
	default:
		return KindIndex
	}
}

// String implements fmt.Stringer.
func (s *Structure) String() string {
	return fmt.Sprintf("%s(%s, %dB)", s.Kind, s.ID, s.Bytes)
}

// Set is an ordered collection of unique structures, used for a plan's
// structure list. Order is insertion order; uniqueness is by ID. Plan
// sets hold a handful of entries (the scanned columns, at most one index
// and one CPU-node structure), so membership is a linear scan over the
// item slice — no side index, which keeps an empty Set allocation-free
// and lets pooled plans reuse one via Reset.
type Set struct {
	items []*Structure
}

// NewSet builds a set from the given structures, dropping duplicates.
func NewSet(items ...*Structure) *Set {
	s := &Set{}
	for _, it := range items {
		s.Add(it)
	}
	return s
}

// Add inserts a structure if its ID is not already present. It reports
// whether the structure was added.
func (s *Set) Add(st *Structure) bool {
	for _, it := range s.items {
		if it.ID == st.ID {
			return false
		}
	}
	s.items = append(s.items, st)
	return true
}

// Contains reports whether the ID is in the set.
func (s *Set) Contains(id ID) bool {
	for _, it := range s.items {
		if it.ID == id {
			return true
		}
	}
	return false
}

// Get returns the structure with the given ID, if present.
func (s *Set) Get(id ID) (*Structure, bool) {
	for _, it := range s.items {
		if it.ID == id {
			return it, true
		}
	}
	return nil, false
}

// Reset empties the set, retaining the item slice's capacity for reuse.
func (s *Set) Reset() {
	for i := range s.items {
		s.items[i] = nil
	}
	s.items = s.items[:0]
}

// Len returns the number of structures.
func (s *Set) Len() int { return len(s.items) }

// Items returns the structures in insertion order. The returned slice is
// shared; callers must not mutate it.
func (s *Set) Items() []*Structure { return s.items }

// TotalBytes sums the disk footprint of all structures in the set.
func (s *Set) TotalBytes() int64 {
	var total int64
	for _, it := range s.items {
		total += it.Bytes
	}
	return total
}
