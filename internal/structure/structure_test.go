package structure

import (
	"testing"

	"repro/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	return catalog.TPCH(1)
}

func TestCPUNode(t *testing.T) {
	s := CPUNode(2)
	if s.Kind != KindCPUNode || s.NodeOrdinal != 2 || s.Bytes != 0 {
		t.Errorf("CPUNode(2) = %+v", s)
	}
	if s.ID != "cpu:2" || s.ID != CPUNodeID(2) {
		t.Errorf("ID = %q", s.ID)
	}
}

func TestColumnStructure(t *testing.T) {
	c := testCatalog(t)
	ref := catalog.Col("lineitem", "l_shipdate")
	s, err := ColumnStructure(c, ref)
	if err != nil {
		t.Fatalf("ColumnStructure: %v", err)
	}
	if s.Kind != KindColumn || s.Column != ref {
		t.Errorf("structure = %+v", s)
	}
	want, _ := c.ColumnBytes(ref)
	if s.Bytes != want {
		t.Errorf("Bytes = %d, want %d", s.Bytes, want)
	}
	if s.ID != "col:lineitem.l_shipdate" {
		t.Errorf("ID = %q", s.ID)
	}
	if _, err := ColumnStructure(c, catalog.Col("zzz", "a")); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIndexStructure(t *testing.T) {
	c := testCatalog(t)
	def := catalog.IndexDef{Table: "lineitem", Columns: []string{"l_shipdate", "l_partkey"}}
	s, err := IndexStructure(c, def)
	if err != nil {
		t.Fatalf("IndexStructure: %v", err)
	}
	if s.Kind != KindIndex || s.ID != ID(def.Name()) {
		t.Errorf("structure = %+v", s)
	}
	want, _ := c.IndexBytes(def)
	if s.Bytes != want || s.Bytes <= 0 {
		t.Errorf("Bytes = %d, want %d", s.Bytes, want)
	}
	if _, err := IndexStructure(c, catalog.IndexDef{Table: "bad"}); err == nil {
		t.Error("bad index accepted")
	}
}

func TestKindOf(t *testing.T) {
	c := testCatalog(t)
	col, _ := ColumnStructure(c, catalog.Col("orders", "o_orderdate"))
	idx, _ := IndexStructure(c, catalog.IndexDef{Table: "orders", Columns: []string{"o_orderdate"}})
	tests := []struct {
		id   ID
		want Kind
	}{
		{CPUNode(3).ID, KindCPUNode},
		{col.ID, KindColumn},
		{idx.ID, KindIndex},
	}
	for _, tt := range tests {
		if got := KindOf(tt.id); got != tt.want {
			t.Errorf("KindOf(%q) = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindCPUNode.String() != "cpu-node" || KindColumn.String() != "column" || KindIndex.String() != "index" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestSetBasics(t *testing.T) {
	c := testCatalog(t)
	col, _ := ColumnStructure(c, catalog.Col("lineitem", "l_quantity"))
	cpu := CPUNode(2)

	s := NewSet(col, cpu, col) // duplicate dropped
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(col.ID) || !s.Contains(cpu.ID) {
		t.Error("Contains wrong")
	}
	if s.Contains("nope") {
		t.Error("phantom member")
	}
	got, ok := s.Get(col.ID)
	if !ok || got != col {
		t.Error("Get wrong")
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get phantom")
	}
	// Insertion order preserved.
	items := s.Items()
	if items[0] != col || items[1] != cpu {
		t.Error("order not preserved")
	}
	if s.TotalBytes() != col.Bytes {
		t.Errorf("TotalBytes = %d, want %d (cpu nodes are diskless)", s.TotalBytes(), col.Bytes)
	}
}

func TestSetZeroValueUsable(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains("x") || s.TotalBytes() != 0 {
		t.Error("zero Set misbehaves")
	}
	if !s.Add(CPUNode(2)) {
		t.Error("Add to zero Set failed")
	}
	if s.Len() != 1 {
		t.Error("Add did not register")
	}
	if s.Add(CPUNode(2)) {
		t.Error("duplicate Add reported true")
	}
}

func TestStructureString(t *testing.T) {
	if CPUNode(2).String() == "" {
		t.Error("empty String")
	}
}
