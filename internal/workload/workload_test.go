package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/money"
)

func paperCatalog() *catalog.Catalog { return catalog.TPCH(10) }

func TestPaperTemplatesValidate(t *testing.T) {
	c := paperCatalog()
	tpls := PaperTemplates()
	if len(tpls) != 7 {
		t.Fatalf("template count = %d, want 7 (§VII-A)", len(tpls))
	}
	seen := map[string]bool{}
	for _, tpl := range tpls {
		if err := tpl.Validate(c); err != nil {
			t.Errorf("template %s invalid: %v", tpl.Name, err)
		}
		if seen[tpl.Name] {
			t.Errorf("duplicate template name %s", tpl.Name)
		}
		seen[tpl.Name] = true
		if len(tpl.IndexCandidates) == 0 {
			t.Errorf("template %s has no index candidates", tpl.Name)
		}
	}
}

func TestTemplateValidateRejections(t *testing.T) {
	c := paperCatalog()
	base := PaperTemplates()[0]
	mk := func(mut func(*Template)) *Template {
		cp := *base
		mut(&cp)
		return &cp
	}
	bad := []*Template{
		mk(func(x *Template) { x.Name = "" }),
		mk(func(x *Template) { x.Columns = nil }),
		mk(func(x *Template) { x.Columns = []catalog.ColumnRef{catalog.Col("zz", "y")} }),
		mk(func(x *Template) { x.SelMin = 0 }),
		mk(func(x *Template) { x.SelMax = x.SelMin / 2 }),
		mk(func(x *Template) { x.SelMax = 1.5 }),
		mk(func(x *Template) { x.IndexSelectivity = 0 }),
		mk(func(x *Template) { x.IndexSelectivity = 2 }),
		mk(func(x *Template) { x.ResultFraction = 0 }),
		mk(func(x *Template) { x.IndexCandidates = []catalog.IndexDef{{Table: "zz"}} }),
	}
	for i, tpl := range bad {
		if err := tpl.Validate(c); err == nil {
			t.Errorf("case %d: invalid template accepted", i)
		}
	}
}

func TestQuerySizing(t *testing.T) {
	c := paperCatalog()
	tpl := PaperTemplates()[3] // Q6, lineitem-only
	q := &Query{Template: tpl, Selectivity: 1e-3}
	group, err := tpl.GroupBytes(c)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := q.ScanBytes(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(float64(group) * 1e-3); scan != want {
		t.Errorf("ScanBytes = %d, want %d", scan, want)
	}
	idxScan, _ := q.IndexScanBytes(c)
	if want := int64(float64(scan) * tpl.IndexSelectivity); idxScan != want {
		t.Errorf("IndexScanBytes = %d, want %d", idxScan, want)
	}
	res, _ := q.ResultBytes(c)
	if want := int64(float64(scan) * tpl.ResultFraction); res != want {
		t.Errorf("ResultBytes = %d, want %d", res, want)
	}
	if idxScan >= scan {
		t.Error("index scan must be cheaper than full scan")
	}
	if res >= scan {
		t.Error("result must be smaller than scan for these templates")
	}
}

func TestQuerySizingFloorsAtOneByte(t *testing.T) {
	c := catalog.TPCH(0.001)
	tpl := PaperTemplates()[3]
	q := &Query{Template: tpl, Selectivity: tpl.SelMin}
	for _, f := range []func(*catalog.Catalog) (int64, error){q.ScanBytes, q.IndexScanBytes, q.ResultBytes} {
		got, err := f(c)
		if err != nil || got < 1 {
			t.Errorf("sizing = %d, %v; want >= 1", got, err)
		}
	}
}

func TestFixedArrival(t *testing.T) {
	a := NewFixedArrival(10 * time.Second)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if a.NextGap(r) != 10*time.Second {
			t.Fatal("fixed gap varies")
		}
	}
	if a.Mean() != 10*time.Second {
		t.Error("Mean wrong")
	}
}

func TestPoissonArrivalMean(t *testing.T) {
	a := NewPoissonArrival(2 * time.Second)
	r := rand.New(rand.NewSource(42))
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g := a.NextGap(r)
		if g < 0 {
			t.Fatal("negative gap")
		}
		total += g
	}
	mean := total / n
	if ratio := float64(mean) / float64(2*time.Second); ratio < 0.95 || ratio > 1.05 {
		t.Errorf("empirical mean %v deviates from 2s (ratio %.3f)", mean, ratio)
	}
	if a.Mean() != 2*time.Second {
		t.Error("Mean wrong")
	}
}

func TestPoissonZeroMean(t *testing.T) {
	a := NewPoissonArrival(0)
	if g := a.NextGap(rand.New(rand.NewSource(1))); g != 0 {
		t.Errorf("zero-mean gap = %v", g)
	}
}

func TestBurstyArrival(t *testing.T) {
	b := &BurstyArrival{BurstLen: 3, BurstGap: time.Second, IdleGap: time.Minute}
	r := rand.New(rand.NewSource(1))
	// First call starts a burst with the idle gap, then 3 burst gaps, then idle.
	gaps := []time.Duration{}
	for i := 0; i < 8; i++ {
		gaps = append(gaps, b.NextGap(r))
	}
	wantIdle := 0
	for _, g := range gaps {
		if g == time.Minute {
			wantIdle++
		}
	}
	if wantIdle != 2 {
		t.Errorf("idle gaps = %d in %v, want 2", wantIdle, gaps)
	}
	if b.Mean() <= time.Second || b.Mean() >= time.Minute {
		t.Errorf("Mean = %v out of range", b.Mean())
	}
}

func TestZipfDistribution(t *testing.T) {
	z := MustNewZipf(7, 1.1)
	r := rand.New(rand.NewSource(7))
	counts := make([]int, 7)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Monotone-ish decreasing counts.
	if counts[0] <= counts[6] {
		t.Errorf("rank 0 (%d) should dominate rank 6 (%d)", counts[0], counts[6])
	}
	// Empirical vs analytic probability of rank 0.
	emp := float64(counts[0]) / n
	if math.Abs(emp-z.Prob(0)) > 0.01 {
		t.Errorf("empirical P(0)=%.3f vs analytic %.3f", emp, z.Prob(0))
	}
	// Probabilities sum to 1.
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(99) != 0 {
		t.Error("out-of-range Prob must be 0")
	}
}

func TestZipfUniformTheta0(t *testing.T) {
	z := MustNewZipf(4, 0)
	for i := 0; i < 4; i++ {
		if math.Abs(z.Prob(i)-0.25) > 1e-9 {
			t.Errorf("P(%d) = %v, want 0.25", i, z.Prob(i))
		}
	}
}

func TestZipfRejections(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(3, -1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := NewZipf(3, math.NaN()); err == nil {
		t.Error("NaN theta accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	c := paperCatalog()
	mk := func() []*Query {
		g, err := NewGenerator(Config{Catalog: c, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return g.Generate(200)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Template.Name != b[i].Template.Name || a[i].Selectivity != b[i].Selectivity || a[i].Arrival != b[i].Arrival {
			t.Fatalf("query %d differs between identical seeds", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	c := paperCatalog()
	g1, _ := NewGenerator(Config{Catalog: c, Seed: 1})
	g2, _ := NewGenerator(Config{Catalog: c, Seed: 2})
	same := 0
	for i := 0; i < 100; i++ {
		if g1.Next().Template.Name == g2.Next().Template.Name {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical template streams")
	}
}

func TestGeneratorArrivalsMonotone(t *testing.T) {
	c := paperCatalog()
	g, _ := NewGenerator(Config{Catalog: c, Seed: 3, Arrival: NewPoissonArrival(time.Second)})
	var prev time.Duration
	for i := 0; i < 500; i++ {
		q := g.Next()
		if q.Arrival < prev {
			t.Fatalf("arrival went backwards at %d", i)
		}
		prev = q.Arrival
	}
	if g.Clock() != prev {
		t.Error("Clock() mismatch")
	}
}

func TestGeneratorSelectivityInRange(t *testing.T) {
	c := paperCatalog()
	g, _ := NewGenerator(Config{Catalog: c, Seed: 4})
	for i := 0; i < 1000; i++ {
		q := g.Next()
		if q.Selectivity < q.Template.SelMin || q.Selectivity > q.Template.SelMax {
			t.Fatalf("selectivity %g out of [%g,%g]", q.Selectivity, q.Template.SelMin, q.Template.SelMax)
		}
		if q.Budget == nil {
			t.Fatal("nil budget")
		}
		if q.ID != int64(i+1) {
			t.Fatalf("ID = %d, want %d", q.ID, i+1)
		}
	}
}

func TestGeneratorEvolutionShiftsPopularity(t *testing.T) {
	c := paperCatalog()
	g, err := NewGenerator(Config{
		Catalog: c, Seed: 5, Theta: 1.5, PhaseLength: 2000, EvolutionStride: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	countTop := func(n int) string {
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Template.Name]++
		}
		best, bestN := "", -1
		for name, c := range counts {
			if c > bestN {
				best, bestN = name, c
			}
		}
		return best
	}
	first := countTop(2000)
	second := countTop(2000)
	if first == second {
		t.Errorf("popularity did not shift across phases (top=%s twice)", first)
	}
}

func TestGeneratorNoEvolution(t *testing.T) {
	c := paperCatalog()
	g, err := NewGenerator(Config{Catalog: c, Seed: 6, PhaseLength: 100, EvolutionStride: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Stride 7 over 7 templates is a full rotation: order is unchanged.
	top := func(n int) string {
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Template.Name]++
		}
		best, bestN := "", -1
		for name, cnt := range counts {
			if cnt > bestN {
				best, bestN = name, cnt
			}
		}
		return best
	}
	if a, b := top(300), top(300); a != b {
		t.Errorf("full rotation should not change popularity: %s vs %s", a, b)
	}
}

func TestGeneratorConfigErrors(t *testing.T) {
	c := paperCatalog()
	cases := []Config{
		{},                            // no catalog
		{Catalog: c, Theta: -1},       // negative theta
		{Catalog: c, PhaseLength: -1}, // negative phase
		{Catalog: c, EvolutionStride: -1},
		{Catalog: c, Templates: []*Template{{Name: "bad"}}},
	}
	for i, cfg := range cases {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestScaledPolicyPricesScaleWithWork(t *testing.T) {
	p := DefaultScaledPolicy()
	q := &Query{}
	small := p.BudgetFor(q, 1<<20, 1<<18)
	big := p.BudgetFor(q, 1<<30, 1<<28)
	if small.At(time.Second) >= big.At(time.Second) {
		t.Error("bigger queries must carry bigger budgets")
	}
	if small.Tmax() != p.TMax {
		t.Error("Tmax not propagated")
	}
}

func TestFixedPolicy(t *testing.T) {
	p := &FixedPolicy{Shape: ShapeStep, Price: money.FromDollars(1), TMax: 5 * time.Second}
	b := p.BudgetFor(nil, 0, 0)
	if b.At(time.Second) != money.FromDollars(1) || b.Tmax() != 5*time.Second {
		t.Error("FixedPolicy wrong")
	}
}

func TestShapeString(t *testing.T) {
	for _, s := range []Shape{ShapeStep, ShapeLinear, ShapeConvex, ShapeConcave, Shape(9)} {
		if s.String() == "" {
			t.Error("empty shape string")
		}
	}
}

func TestShapeBuildVariants(t *testing.T) {
	price := money.FromDollars(1)
	for _, s := range []Shape{ShapeStep, ShapeLinear, ShapeConvex, ShapeConcave} {
		f := s.build(price, 10*time.Second)
		if f == nil {
			t.Fatalf("shape %v built nil", s)
		}
		if v := f.At(time.Second); v < 0 || v > price {
			t.Errorf("shape %v At out of range: %v", s, v)
		}
	}
}

func TestBatchMatchesNext(t *testing.T) {
	c := paperCatalog()
	g1, _ := NewGenerator(Config{Catalog: c, Seed: 21})
	g2, _ := NewGenerator(Config{Catalog: c, Seed: 21})
	want := make([]*Query, 0, 50)
	for i := 0; i < 50; i++ {
		want = append(want, g1.Next())
	}
	got := g2.Batch(50, nil)
	if len(got) != len(want) {
		t.Fatalf("batch length = %d", len(got))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Template.Name != want[i].Template.Name ||
			got[i].Selectivity != want[i].Selectivity || got[i].Arrival != want[i].Arrival {
			t.Errorf("query %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestBatchReusesBuffer(t *testing.T) {
	c := paperCatalog()
	g, _ := NewGenerator(Config{Catalog: c, Seed: 22})
	buf := make([]*Query, 0, 16)
	out := g.Batch(8, buf)
	if len(out) != 8 || cap(out) != 16 {
		t.Errorf("buffer not reused: len=%d cap=%d", len(out), cap(out))
	}
}
