package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ArrivalProcess produces the gap between consecutive query arrivals.
// Implementations draw from the provided PRNG so the generator stays
// deterministic under one seed.
type ArrivalProcess interface {
	// NextGap returns the time until the next arrival.
	NextGap(r *rand.Rand) time.Duration
	// Mean returns the mean inter-arrival gap, used for reporting and
	// for sizing storage-rent expectations.
	Mean() time.Duration
}

// FixedArrival spaces queries exactly Interval apart. §VII measures fixed
// 1 s / 10 s / 30 s / 60 s inter-query intervals.
type FixedArrival struct {
	Interval time.Duration
}

// NewFixedArrival constructs a fixed-gap process.
func NewFixedArrival(interval time.Duration) FixedArrival {
	return FixedArrival{Interval: interval}
}

// NextGap implements ArrivalProcess.
func (f FixedArrival) NextGap(*rand.Rand) time.Duration { return f.Interval }

// Mean implements ArrivalProcess.
func (f FixedArrival) Mean() time.Duration { return f.Interval }

// String describes the process.
func (f FixedArrival) String() string { return fmt.Sprintf("fixed(%s)", f.Interval) }

// PoissonArrival draws exponential gaps with the given mean, modelling the
// memoryless arrivals of a large independent user population.
type PoissonArrival struct {
	MeanGap time.Duration
}

// NewPoissonArrival constructs a Poisson process with the given mean gap.
func NewPoissonArrival(mean time.Duration) PoissonArrival {
	return PoissonArrival{MeanGap: mean}
}

// NextGap implements ArrivalProcess.
func (p PoissonArrival) NextGap(r *rand.Rand) time.Duration {
	if p.MeanGap <= 0 {
		return 0
	}
	// Inverse-CDF sampling; clamp u away from 0 to bound the tail.
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	gap := -math.Log(u) * float64(p.MeanGap)
	return time.Duration(gap)
}

// Mean implements ArrivalProcess.
func (p PoissonArrival) Mean() time.Duration { return p.MeanGap }

// String describes the process.
func (p PoissonArrival) String() string { return fmt.Sprintf("poisson(mean=%s)", p.MeanGap) }

// BurstyArrival alternates between a dense burst of queries and a long idle
// gap, stressing the cache's adaptation (used by ablations, not the paper's
// headline figures).
type BurstyArrival struct {
	BurstLen  int           // queries per burst
	BurstGap  time.Duration // gap inside a burst
	IdleGap   time.Duration // gap between bursts
	remaining int
}

// NextGap implements ArrivalProcess.
func (b *BurstyArrival) NextGap(*rand.Rand) time.Duration {
	if b.BurstLen <= 0 {
		return b.IdleGap
	}
	if b.remaining <= 0 {
		b.remaining = b.BurstLen
		return b.IdleGap
	}
	b.remaining--
	return b.BurstGap
}

// Mean implements ArrivalProcess.
func (b *BurstyArrival) Mean() time.Duration {
	if b.BurstLen <= 0 {
		return b.IdleGap
	}
	total := b.IdleGap + time.Duration(b.BurstLen)*b.BurstGap
	return total / time.Duration(b.BurstLen+1)
}

// String describes the process.
func (b *BurstyArrival) String() string {
	return fmt.Sprintf("bursty(%d@%s, idle=%s)", b.BurstLen, b.BurstGap, b.IdleGap)
}
