package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
)

// Config parameterises a Generator.
type Config struct {
	// Catalog sizes all templates. Required.
	Catalog *catalog.Catalog
	// Templates is the template pool. Defaults to PaperTemplates().
	Templates []*Template
	// Seed makes the stream reproducible.
	Seed int64
	// Arrival is the inter-arrival process. Defaults to fixed 10 s.
	Arrival ArrivalProcess
	// Budgets assigns budget functions. Defaults to DefaultScaledPolicy.
	Budgets BudgetPolicy
	// Theta is the Zipf skew of template popularity within a phase.
	// Defaults to 1.1 (strong temporal locality, §VI).
	Theta float64
	// PhaseLength is the number of queries per evolution phase. After
	// each phase the popularity ranking rotates by EvolutionStride, so
	// the hot template set drifts over the stream like the SDSS query
	// evolution the paper simulates. Defaults to 20 000; 0 disables
	// evolution when EvolutionStride is also 0.
	PhaseLength int
	// EvolutionStride is the number of rank positions the popularity
	// order rotates between phases. Defaults to 1.
	EvolutionStride int
	// Tenants spreads the stream across this many synthetic tenants
	// ("tenant-000" … "tenant-NNN"), drawn per query with Zipf skew
	// TenantTheta from a dedicated RNG — so the query stream itself
	// (templates, selectivities, arrivals, budgets) is byte-identical
	// for any tenant configuration. 0 leaves queries untagged.
	Tenants int
	// TenantTheta is the Zipf skew of tenant popularity (0 = uniform).
	// Only meaningful when Tenants > 0.
	TenantTheta float64
}

// withDefaults fills the optional fields.
func (c Config) withDefaults() (Config, error) {
	if c.Catalog == nil {
		return c, fmt.Errorf("workload: Config.Catalog is required")
	}
	if len(c.Templates) == 0 {
		c.Templates = PaperTemplates()
	}
	for _, t := range c.Templates {
		if err := t.Validate(c.Catalog); err != nil {
			return c, err
		}
	}
	if c.Arrival == nil {
		c.Arrival = NewFixedArrival(10 * time.Second)
	}
	if c.Budgets == nil {
		c.Budgets = DefaultScaledPolicy()
	}
	if c.Theta == 0 {
		c.Theta = 1.1
	}
	if c.Theta < 0 {
		return c, fmt.Errorf("workload: Theta must be >= 0")
	}
	if c.PhaseLength == 0 {
		c.PhaseLength = 20_000
	}
	if c.PhaseLength < 0 {
		return c, fmt.Errorf("workload: PhaseLength must be >= 0")
	}
	if c.EvolutionStride == 0 {
		c.EvolutionStride = 1
	}
	if c.EvolutionStride < 0 {
		return c, fmt.Errorf("workload: EvolutionStride must be >= 0")
	}
	if c.Tenants < 0 {
		return c, fmt.Errorf("workload: Tenants must be >= 0")
	}
	if c.TenantTheta < 0 {
		return c, fmt.Errorf("workload: TenantTheta must be >= 0")
	}
	return c, nil
}

// Generator produces a deterministic query stream. It is not safe for
// concurrent use; each simulation owns its generator.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *Zipf
	order []int // order[rank] = template index; rotated between phases

	// Tenant draws come from their own RNG and sampler so tagging a
	// stream with tenants never perturbs the template/selectivity/
	// arrival draws of the main rng.
	tenantRng  *rand.Rand
	tenantZipf *Zipf
	tenantName []string

	nextID  int64
	clock   time.Duration
	inPhase int
}

// NewGenerator validates the config and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	z, err := NewZipf(len(cfg.Templates), cfg.Theta)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(cfg.Templates))
	for i := range order {
		order[i] = i
	}
	g := &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		zipf:  z,
		order: order,
	}
	if cfg.Tenants > 0 {
		tz, err := NewZipf(cfg.Tenants, cfg.TenantTheta)
		if err != nil {
			return nil, err
		}
		g.tenantZipf = tz
		// Decorrelate from the main stream but stay a pure function of
		// the seed.
		g.tenantRng = rand.New(rand.NewSource(cfg.Seed ^ 0x7e4a7e4a7e4a7e4a))
		g.tenantName = make([]string, cfg.Tenants)
		for i := range g.tenantName {
			g.tenantName[i] = fmt.Sprintf("tenant-%03d", i)
		}
	}
	return g, nil
}

// Next produces the next query in the stream.
func (g *Generator) Next() *Query {
	// Advance the evolution phase.
	if g.cfg.PhaseLength > 0 && g.inPhase >= g.cfg.PhaseLength {
		g.rotate(g.cfg.EvolutionStride)
		g.inPhase = 0
	}
	g.inPhase++

	rank := g.zipf.Sample(g.rng)
	tpl := g.cfg.Templates[g.order[rank]]

	sel := tpl.SelMin + g.rng.Float64()*(tpl.SelMax-tpl.SelMin)

	gap := g.cfg.Arrival.NextGap(g.rng)
	if gap < 0 {
		gap = 0
	}
	g.clock += gap
	g.nextID++

	q := &Query{
		ID:          g.nextID,
		Template:    tpl,
		Selectivity: sel,
		Arrival:     g.clock,
	}
	if g.tenantZipf != nil {
		q.Tenant = g.tenantName[g.tenantZipf.Sample(g.tenantRng)]
	}
	scan, err := q.ScanBytes(g.cfg.Catalog)
	if err != nil {
		// Templates were validated at construction; a failure here is
		// a programming error.
		panic(fmt.Sprintf("workload: sizing validated template: %v", err))
	}
	result, _ := q.ResultBytes(g.cfg.Catalog)
	q.Budget = g.cfg.Budgets.BudgetFor(q, scan, result)
	return q
}

// rotate shifts the popularity order by n positions: the template that was
// hottest becomes n-th, and cooler templates move up.
func (g *Generator) rotate(n int) {
	if len(g.order) == 0 {
		return
	}
	n %= len(g.order)
	if n == 0 {
		return
	}
	rotated := make([]int, 0, len(g.order))
	rotated = append(rotated, g.order[n:]...)
	rotated = append(rotated, g.order[:n]...)
	copy(g.order, rotated)
}

// Generate materialises n queries. For long streams prefer calling Next in
// a loop to keep memory flat.
func (g *Generator) Generate(n int) []*Query {
	return g.Batch(n, make([]*Query, 0, n))
}

// Batch appends the next n queries of the stream to buf and returns it,
// reusing buf's capacity. The stream is identical to n calls of Next; like
// Next, Batch must only be called by the generator's single owner.
func (g *Generator) Batch(n int, buf []*Query) []*Query {
	for i := 0; i < n; i++ {
		buf = append(buf, g.Next())
	}
	return buf
}

// Clock returns the arrival time of the most recently generated query.
func (g *Generator) Clock() time.Duration { return g.clock }

// Templates exposes the validated template pool (shared; do not mutate).
func (g *Generator) Templates() []*Template { return g.cfg.Templates }
