package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf is a discrete Zipf(θ) sampler over ranks 0..n-1 with explicit
// cumulative weights. Unlike math/rand's Zipf it supports θ ≤ 1 and gives
// direct access to the rank probabilities, which the generator needs to
// rotate popularity across templates between workload phases.
type Zipf struct {
	theta float64
	cum   []float64 // cumulative probabilities, cum[n-1] == 1
}

// NewZipf builds a sampler over n ranks with skew theta ≥ 0. theta 0 is the
// uniform distribution; larger values concentrate mass on low ranks.
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("workload: zipf skew must be finite and >= 0, got %g", theta)
	}
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		w := 1 / math.Pow(float64(i+1), theta)
		weights[i] = w
		total += w
	}
	cum := make([]float64, n)
	var acc float64
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[n-1] = 1 // guard against float drift
	return &Zipf{theta: theta, cum: cum}, nil
}

// MustNewZipf is NewZipf panicking on error, for static configuration.
func MustNewZipf(n int, theta float64) *Zipf {
	z, err := NewZipf(n, theta)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
