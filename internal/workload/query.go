package workload

import (
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/catalog"
)

// Query is one concrete request in the stream: a template instantiated with
// a region fraction, an arrival time on the simulation clock and the user's
// budget function.
type Query struct {
	// ID is the 1-based sequence number in the stream.
	ID int64
	// Tenant names the user community the query belongs to. Empty means
	// untagged (the single-tenant streams of the paper's figures); the
	// economy keeps a ledger per distinct tenant name.
	Tenant string
	// Template the query instantiates.
	Template *Template
	// Selectivity is the region fraction actually scanned by this
	// execution, drawn from [Template.SelMin, Template.SelMax].
	Selectivity float64
	// Arrival is the simulation time the query reaches the coordinator.
	Arrival time.Duration
	// Budget is the user's B_Q(t) as declared to the provider.
	Budget budget.Func
	// Truth, when non-nil, is the truthful budget behind a
	// strategically declared Budget. Only adversary streams set it; the
	// economy never reads it — it exists so audits can ask "what would
	// honesty have cost?" via the counterfactual quote.
	Truth budget.Func
}

// ScanBytes returns the bytes a full (index-less) cache execution scans:
// the region fraction of the template's column group.
func (q *Query) ScanBytes(c *catalog.Catalog) (int64, error) {
	group, err := q.Template.GroupBytes(c)
	if err != nil {
		return 0, err
	}
	b := int64(float64(group) * q.Selectivity)
	if b < 1 {
		b = 1
	}
	return b, nil
}

// IndexScanBytes returns the bytes scanned when a useful index exists.
func (q *Query) IndexScanBytes(c *catalog.Catalog) (int64, error) {
	full, err := q.ScanBytes(c)
	if err != nil {
		return 0, err
	}
	b := int64(float64(full) * q.Template.IndexSelectivity)
	if b < 1 {
		b = 1
	}
	return b, nil
}

// ResultBytes returns the size S(Q) of the result set shipped to the user
// (and, for back-end plans, across the WAN to the cache; Eq. 9).
func (q *Query) ResultBytes(c *catalog.Catalog) (int64, error) {
	full, err := q.ScanBytes(c)
	if err != nil {
		return 0, err
	}
	b := int64(float64(full) * q.Template.ResultFraction)
	if b < 1 {
		b = 1
	}
	return b, nil
}

// String renders a short description for traces.
func (q *Query) String() string {
	return fmt.Sprintf("q%d[%s sel=%.2e t=%s]", q.ID, q.Template.Name, q.Selectivity, q.Arrival)
}
