package workload

import (
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/money"
)

// BudgetPolicy assigns a budget function to each generated query. The paper
// only pins the experiments to step functions (§VII-A); the other shapes
// support the budget-shape ablation.
type BudgetPolicy interface {
	// BudgetFor returns the budget function for a query whose full
	// (index-less) scan is scanBytes and whose result is resultBytes.
	BudgetFor(q *Query, scanBytes, resultBytes int64) budget.Func
}

// StepBudgeter is the allocation-free fast path of a BudgetPolicy: a
// policy whose budgets are step functions can report the (price, tmax)
// parameters directly, letting a hot caller fill a caller-owned
// budget.Step instead of boxing a fresh budget.Func per query. ok=false
// means the policy's current shape is not a step and the caller must
// fall back to BudgetFor.
type StepBudgeter interface {
	StepBudgetFor(q *Query, scanBytes, resultBytes int64) (price money.Amount, tmax time.Duration, ok bool)
}

// Shape selects the budget curve a policy emits.
type Shape int

// The supported budget shapes (Fig. 1).
const (
	ShapeStep Shape = iota
	ShapeLinear
	ShapeConvex
	ShapeConcave
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeStep:
		return "step"
	case ShapeLinear:
		return "linear"
	case ShapeConvex:
		return "convex"
	case ShapeConcave:
		return "concave"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// build constructs the budget of the given shape.
func (s Shape) build(price money.Amount, tmax time.Duration) budget.Func {
	switch s {
	case ShapeLinear:
		return budget.NewLinear(price, tmax)
	case ShapeConvex:
		return budget.NewConvex(price, tmax, 2)
	case ShapeConcave:
		return budget.NewConcave(price, tmax, 2)
	default:
		return budget.NewStep(price, tmax)
	}
}

// ScaledPolicy prices each query proportionally to the work it requests:
// price = Base + PerGBScanned·scanGB + PerGBResult·resultGB. This models
// users who have learned roughly what their queries cost and budget
// accordingly — the regime where the cloud can serve almost everyone
// (case B of §IV-C) and the economy differentiates on cost.
type ScaledPolicy struct {
	Shape        Shape
	Base         money.Amount
	PerGBScanned money.Amount
	PerGBResult  money.Amount
	TMax         time.Duration
}

// DefaultScaledPolicy returns the calibration used by the paper-figure
// experiments: a generous step budget that comfortably covers back-end
// execution of a typical query, so users "accept query execution in the
// back-end" (§VII-A).
func DefaultScaledPolicy() *ScaledPolicy {
	return &ScaledPolicy{
		Shape:        ShapeStep,
		Base:         money.FromDollars(0.0002),
		PerGBScanned: money.FromDollars(0.004),
		PerGBResult:  money.FromDollars(0.40),
		TMax:         60 * time.Second,
	}
}

// BudgetFor implements BudgetPolicy.
func (p *ScaledPolicy) BudgetFor(_ *Query, scanBytes, resultBytes int64) budget.Func {
	price, tmax := p.price(scanBytes, resultBytes)
	return p.Shape.build(price, tmax)
}

// price computes the scaled price and normalized tmax.
func (p *ScaledPolicy) price(scanBytes, resultBytes int64) (money.Amount, time.Duration) {
	const gib = 1 << 30
	price := p.Base.
		Add(p.PerGBScanned.MulFloat(float64(scanBytes) / gib)).
		Add(p.PerGBResult.MulFloat(float64(resultBytes) / gib))
	tmax := p.TMax
	if tmax <= 0 {
		tmax = 60 * time.Second
	}
	return price, tmax
}

// StepBudgetFor implements StepBudgeter when the policy's shape is a
// step. The parameters are exactly what BudgetFor would bake into its
// budget.NewStep.
func (p *ScaledPolicy) StepBudgetFor(_ *Query, scanBytes, resultBytes int64) (money.Amount, time.Duration, bool) {
	if p.Shape != ShapeStep {
		return 0, 0, false
	}
	price, tmax := p.price(scanBytes, resultBytes)
	return price, tmax, true
}

// FixedPolicy assigns the identical budget to every query: handy for unit
// tests and for the degenerate "stingy user" scenarios.
type FixedPolicy struct {
	Shape Shape
	Price money.Amount
	TMax  time.Duration
}

// BudgetFor implements BudgetPolicy.
func (p *FixedPolicy) BudgetFor(*Query, int64, int64) budget.Func {
	return p.Shape.build(p.Price, p.TMax)
}

// StepBudgetFor implements StepBudgeter when the policy's shape is a
// step.
func (p *FixedPolicy) StepBudgetFor(*Query, int64, int64) (money.Amount, time.Duration, bool) {
	if p.Shape != ShapeStep {
		return 0, 0, false
	}
	return p.Price, p.TMax, true
}

var (
	_ BudgetPolicy = (*ScaledPolicy)(nil)
	_ BudgetPolicy = (*FixedPolicy)(nil)
	_ StepBudgeter = (*ScaledPolicy)(nil)
	_ StepBudgeter = (*FixedPolicy)(nil)
)
