// Package workload generates the query stream that drives the cloud cache:
// seven TPC-H-derived query templates (§VII-A, [13]), Zipfian template
// popularity with phase-based evolution (emulating "the query evolution of a
// million SDSS-like queries"), configurable arrival processes and budget
// policies. Generation is fully deterministic for a given seed.
package workload

import (
	"fmt"

	"repro/internal/catalog"
)

// Template is a parameterised query shape. A concrete Query instantiates a
// template with a region fraction (how much of the referenced column group
// a single execution scans) drawn from [SelMin, SelMax].
type Template struct {
	// ID is a small stable integer (1-based) used in reports.
	ID int
	// Name labels the template after its TPC-H ancestor, e.g. "Q6".
	Name string
	// Columns are all columns the query reads; the cache must hold all of
	// them for the query to run in the cache (§V-B: plans run completely
	// in the cache or completely in the back-end).
	Columns []catalog.ColumnRef
	// SelMin/SelMax bound the region fraction: the share of the column
	// group one execution scans (data-access locality, §VI).
	SelMin, SelMax float64
	// IndexSelectivity is the fraction of the scan that remains when a
	// useful index exists (predicate pushdown through the index).
	IndexSelectivity float64
	// ResultFraction is result bytes as a share of scanned bytes
	// ("result heavy" workloads, §VI).
	ResultFraction float64
	// Parallelizable reports whether extra CPU nodes can speed the query
	// up (§VI requires it; some aggregates parallelise better than
	// others).
	Parallelizable bool
	// IndexCandidates are the index definitions that would benefit this
	// template. The advisor pools these across templates to form the
	// 65-candidate set of §VII-A.
	IndexCandidates []catalog.IndexDef

	// groupBytes memoizes the column-group size for the catalog the
	// template was last validated against; sizing is on every query's
	// hot path.
	groupBytes int64
}

// Validate checks a template against a catalog.
func (t *Template) Validate(c *catalog.Catalog) error {
	if t.Name == "" {
		return fmt.Errorf("workload: template %d has no name", t.ID)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("workload: template %s reads no columns", t.Name)
	}
	for _, ref := range t.Columns {
		if _, err := c.Resolve(ref); err != nil {
			return fmt.Errorf("workload: template %s: %w", t.Name, err)
		}
	}
	if !(t.SelMin > 0) || t.SelMax < t.SelMin || t.SelMax > 1 {
		return fmt.Errorf("workload: template %s has bad selectivity range [%g,%g]", t.Name, t.SelMin, t.SelMax)
	}
	if t.IndexSelectivity <= 0 || t.IndexSelectivity > 1 {
		return fmt.Errorf("workload: template %s has bad index selectivity %g", t.Name, t.IndexSelectivity)
	}
	if t.ResultFraction <= 0 || t.ResultFraction > 1 {
		return fmt.Errorf("workload: template %s has bad result fraction %g", t.Name, t.ResultFraction)
	}
	for _, def := range t.IndexCandidates {
		if err := def.Validate(c); err != nil {
			return fmt.Errorf("workload: template %s: %w", t.Name, err)
		}
	}
	group, err := c.GroupBytes(t.Columns)
	if err != nil {
		return err
	}
	t.groupBytes = group
	return nil
}

// GroupBytes returns the total size of the template's column group,
// memoized by Validate (sizing is on every query's hot path).
func (t *Template) GroupBytes(c *catalog.Catalog) (int64, error) {
	if t.groupBytes > 0 {
		return t.groupBytes, nil
	}
	group, err := c.GroupBytes(t.Columns)
	if err != nil {
		return 0, err
	}
	t.groupBytes = group
	return group, nil
}

func li(col string) catalog.ColumnRef   { return catalog.Col("lineitem", col) }
func ord(col string) catalog.ColumnRef  { return catalog.Col("orders", col) }
func cust(col string) catalog.ColumnRef { return catalog.Col("customer", col) }

// PaperTemplates returns the seven TPC-H query templates of §VII-A. The
// column sets follow the TPC-H definitions of Q1, Q3, Q5, Q6, Q10, Q14 and
// Q18; selectivity and result-size parameters are calibrated so cache-side
// execution times land in the 1–10 s band of Figure 5.
func PaperTemplates() []*Template {
	idx := func(table string, cols ...string) catalog.IndexDef {
		return catalog.IndexDef{Table: table, Columns: cols}
	}
	return []*Template{
		{
			ID:   1,
			Name: "Q1",
			Columns: []catalog.ColumnRef{
				li("l_returnflag"), li("l_linestatus"), li("l_quantity"),
				li("l_extendedprice"), li("l_discount"), li("l_tax"), li("l_shipdate"),
			},
			SelMin: 1.6e-3, SelMax: 7.2e-3,
			IndexSelectivity: 0.30,
			ResultFraction:   0.005,
			Parallelizable:   true,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_shipdate"),
				idx("lineitem", "l_shipdate", "l_returnflag"),
				idx("lineitem", "l_shipdate", "l_returnflag", "l_linestatus"),
				idx("lineitem", "l_returnflag", "l_linestatus"),
			},
		},
		{
			ID:   2,
			Name: "Q3",
			Columns: []catalog.ColumnRef{
				cust("c_mktsegment"), cust("c_custkey"),
				ord("o_orderkey"), ord("o_custkey"), ord("o_orderdate"), ord("o_shippriority"),
				li("l_orderkey"), li("l_extendedprice"), li("l_discount"), li("l_shipdate"),
			},
			SelMin: 1.2e-3, SelMax: 5.6e-3,
			IndexSelectivity: 0.22,
			ResultFraction:   0.006,
			Parallelizable:   true,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_orderkey"),
				idx("lineitem", "l_orderkey", "l_shipdate"),
				idx("orders", "o_orderdate"),
				idx("orders", "o_orderdate", "o_custkey"),
				idx("orders", "o_custkey"),
				idx("customer", "c_mktsegment"),
			},
		},
		{
			ID:   3,
			Name: "Q5",
			Columns: []catalog.ColumnRef{
				cust("c_custkey"), cust("c_nationkey"),
				ord("o_orderkey"), ord("o_custkey"), ord("o_orderdate"),
				li("l_orderkey"), li("l_suppkey"), li("l_extendedprice"), li("l_discount"),
				catalog.Col("supplier", "s_suppkey"), catalog.Col("supplier", "s_nationkey"),
				catalog.Col("nation", "n_nationkey"), catalog.Col("nation", "n_regionkey"), catalog.Col("nation", "n_name"),
				catalog.Col("region", "r_regionkey"), catalog.Col("region", "r_name"),
			},
			SelMin: 8e-4, SelMax: 4.8e-3,
			IndexSelectivity: 0.25,
			ResultFraction:   0.004,
			Parallelizable:   true,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_orderkey", "l_suppkey"),
				idx("lineitem", "l_suppkey"),
				idx("orders", "o_orderdate"),
				idx("orders", "o_orderdate", "o_orderkey"),
				idx("customer", "c_nationkey"),
				idx("supplier", "s_nationkey"),
			},
		},
		{
			ID:   4,
			Name: "Q6",
			Columns: []catalog.ColumnRef{
				li("l_shipdate"), li("l_discount"), li("l_quantity"), li("l_extendedprice"),
			},
			SelMin: 2.4e-3, SelMax: 9.6e-3,
			IndexSelectivity: 0.12,
			ResultFraction:   0.0025,
			Parallelizable:   true,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_shipdate", "l_discount"),
				idx("lineitem", "l_shipdate", "l_discount", "l_quantity"),
				idx("lineitem", "l_discount"),
				idx("lineitem", "l_quantity"),
			},
		},
		{
			ID:   5,
			Name: "Q10",
			Columns: []catalog.ColumnRef{
				cust("c_custkey"), cust("c_name"), cust("c_acctbal"), cust("c_phone"),
				cust("c_address"), cust("c_comment"), cust("c_nationkey"),
				ord("o_orderkey"), ord("o_custkey"), ord("o_orderdate"),
				li("l_orderkey"), li("l_returnflag"), li("l_extendedprice"), li("l_discount"),
				catalog.Col("nation", "n_nationkey"), catalog.Col("nation", "n_name"),
			},
			SelMin: 9.6e-4, SelMax: 4e-3,
			IndexSelectivity: 0.28,
			ResultFraction:   0.01,
			Parallelizable:   false,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_returnflag"),
				idx("orders", "o_orderdate", "o_custkey"),
				idx("customer", "c_custkey"),
				idx("customer", "c_custkey", "c_nationkey"),
			},
		},
		{
			ID:   6,
			Name: "Q14",
			Columns: []catalog.ColumnRef{
				li("l_partkey"), li("l_shipdate"), li("l_extendedprice"), li("l_discount"),
				catalog.Col("part", "p_partkey"), catalog.Col("part", "p_type"),
			},
			SelMin: 1.6e-3, SelMax: 6.4e-3,
			IndexSelectivity: 0.18,
			ResultFraction:   0.004,
			Parallelizable:   true,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_shipdate", "l_partkey"),
				idx("lineitem", "l_partkey"),
				idx("part", "p_partkey"),
				idx("part", "p_type"),
			},
		},
		{
			ID:   7,
			Name: "Q18",
			Columns: []catalog.ColumnRef{
				cust("c_name"), cust("c_custkey"),
				ord("o_orderkey"), ord("o_custkey"), ord("o_orderdate"), ord("o_totalprice"),
				li("l_orderkey"), li("l_quantity"),
			},
			SelMin: 8e-4, SelMax: 4e-3,
			IndexSelectivity: 0.20,
			ResultFraction:   0.0075,
			Parallelizable:   false,
			IndexCandidates: []catalog.IndexDef{
				idx("lineitem", "l_orderkey", "l_quantity"),
				idx("orders", "o_orderkey"),
				idx("orders", "o_totalprice"),
				idx("customer", "c_custkey", "c_name"),
			},
		},
	}
}
