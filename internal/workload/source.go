package workload

import "time"

// Source is anything that yields an ordered query stream: the standard
// Zipf Generator, an adversary strategy wrapping it, or a merge of
// several of either. Queries must come out in non-decreasing Arrival
// order — the simulator advances the cache clock from them.
type Source interface {
	// Next returns the next query in the stream.
	Next() *Query
	// Batch appends the next n queries to buf and returns it.
	Batch(n int, buf []*Query) []*Query
	// Clock reports the arrival time of the last query produced.
	Clock() time.Duration
}

var _ Source = (*Generator)(nil)

// Merge interleaves several sources into one stream ordered by arrival
// time. Each inner source is consulted one query ahead; ties break
// toward the earlier source, so a merge of deterministic sources is
// deterministic. Merge implements Source.
type Merge struct {
	srcs   []Source
	head   []*Query
	last   time.Duration
	nextID int64
}

// NewMerge builds a merged stream over the given sources.
func NewMerge(srcs ...Source) *Merge {
	m := &Merge{srcs: srcs, head: make([]*Query, len(srcs))}
	for i, s := range srcs {
		m.head[i] = s.Next()
	}
	return m
}

// Next returns the earliest-arriving head query across the sources.
func (m *Merge) Next() *Query {
	best := -1
	for i, q := range m.head {
		if q == nil {
			continue
		}
		if best == -1 || q.Arrival < m.head[best].Arrival {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	q := m.head[best]
	m.head[best] = m.srcs[best].Next()
	m.last = q.Arrival
	// Renumber: independent sources each count from 1, and downstream
	// consumers assume stream-unique IDs.
	m.nextID++
	q.ID = m.nextID
	return q
}

// Batch appends the next n queries to buf and returns it.
func (m *Merge) Batch(n int, buf []*Query) []*Query {
	for i := 0; i < n; i++ {
		q := m.Next()
		if q == nil {
			break
		}
		buf = append(buf, q)
	}
	return buf
}

// Clock reports the arrival time of the last merged query.
func (m *Merge) Clock() time.Duration { return m.last }
