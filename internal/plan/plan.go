// Package plan represents the physical query plans the cloud considers for
// an incoming query (§IV-B). A plan runs completely in the cache or
// completely in the back-end (§V-B), may use an index and extra CPU nodes,
// and carries the cost model's verdict: execution time, resource usage, and
// the amortized share of any structures it employs.
//
// The package also implements the skyline filter of footnote 2: PQ keeps
// only plans that are Pareto-optimal on (execution time, total cost).
package plan

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Location says where a plan executes.
type Location int

// The two execution locations of §V-B.
const (
	Backend Location = iota
	Cache
)

// String implements fmt.Stringer.
func (l Location) String() string {
	if l == Cache {
		return "cache"
	}
	return "backend"
}

// Plan is one costed execution alternative for a query.
type Plan struct {
	// Query the plan answers.
	Query *workload.Query
	// Location of execution.
	Location Location
	// Structures the plan employs (cache plans only): the columns it
	// scans, the index it probes (if any) and the extra CPU nodes it
	// runs on. Back-end plans use no cache structures.
	Structures *structure.Set
	// UsesIndex reports whether the plan probes an index.
	UsesIndex bool
	// Index identifies the index structure when UsesIndex.
	Index structure.ID
	// Nodes is the number of CPU nodes the plan runs on (1 = just the
	// base worker).
	Nodes int

	// Outcome is the cost model's execution verdict.
	Outcome cost.Outcome
	// ExecPrice is Ce(P_Q): the execution cost under the deciding
	// scheme's price schedule (Eq. 8/9).
	ExecPrice money.Amount
	// AmortPrice is Ca(P_Q): the amortized share of the build cost of
	// the structures the plan uses (Eq. 5–7).
	AmortPrice money.Amount
	// MaintPrice is the maintenance rent accrued against the plan's
	// structures since the last paying plan (§V-C footnote 3). The
	// selected plan settles it, but it is NOT part of the comparison
	// price: pricing arrears into selection would make an idle
	// structure's plans ever more expensive, deadlocking it out of use.
	MaintPrice money.Amount
	// Missing lists structures the plan needs that are not yet built.
	// A plan with len(Missing) > 0 belongs to PQpos — it cannot run
	// today and is tracked only for regret (§IV-B).
	Missing []structure.ID
}

// Reset clears the plan for reuse, keeping the allocated capacity of its
// Structures set and Missing slice. The optimizer's plan pool calls this
// before handing the object out again; nothing may hold a *Plan across
// that boundary (see optimizer.Enumerate's aliasing contract).
func (p *Plan) Reset() {
	st := p.Structures
	if st != nil {
		st.Reset()
	}
	missing := p.Missing[:0]
	*p = Plan{Structures: st, Missing: missing}
}

// Price is C(P_Q) = Ce + Ca (Eq. 4): the comparison price used for
// affordability and plan selection.
func (p *Plan) Price() money.Amount {
	return p.ExecPrice.Add(p.AmortPrice)
}

// Time is the plan's promised execution time.
func (p *Plan) Time() time.Duration { return p.Outcome.Time }

// Runnable reports whether the plan can execute now (PQexist membership).
func (p *Plan) Runnable() bool { return len(p.Missing) == 0 }

// String renders a compact description for traces and tests.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[t=%v price=%s", p.Location, p.Outcome.Time.Round(time.Millisecond), p.Price())
	if p.UsesIndex {
		fmt.Fprintf(&b, " idx=%s", p.Index)
	}
	if p.Nodes > 1 {
		fmt.Fprintf(&b, " nodes=%d", p.Nodes)
	}
	if !p.Runnable() {
		fmt.Fprintf(&b, " missing=%d", len(p.Missing))
	}
	b.WriteString("]")
	return b.String()
}

// Skyline filters plans down to the Pareto front on (time, price): a plan
// survives iff no other plan is at least as fast and at least as cheap with
// at least one strict improvement. Among exact ties the first plan wins,
// keeping the filter deterministic. The input slice is not modified.
func Skyline(plans []*Plan) []*Plan {
	if len(plans) <= 1 {
		out := make([]*Plan, len(plans))
		copy(out, plans)
		return out
	}
	// Sort by time asc, then price asc; sweep keeping strictly
	// decreasing prices.
	sorted := make([]*Plan, len(plans))
	copy(sorted, plans)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Outcome.Time != sorted[j].Outcome.Time {
			return sorted[i].Outcome.Time < sorted[j].Outcome.Time
		}
		return sorted[i].Price() < sorted[j].Price()
	})
	out := make([]*Plan, 0, len(sorted))
	bestPrice := money.Max
	lastTime := time.Duration(-1)
	for _, p := range sorted {
		price := p.Price()
		if p.Outcome.Time == lastTime {
			// Same time as the kept plan; it was at most this cheap.
			continue
		}
		if price >= bestPrice {
			// Dominated: somebody faster is no more expensive.
			continue
		}
		out = append(out, p)
		bestPrice = price
		lastTime = p.Outcome.Time
	}
	return out
}

// Cheapest returns the plan with the lowest Price; ties break toward the
// faster plan, then toward the earlier element. Returns nil for no plans.
func Cheapest(plans []*Plan) *Plan {
	var best *Plan
	for _, p := range plans {
		if best == nil {
			best = p
			continue
		}
		switch p.Price().Cmp(best.Price()) {
		case -1:
			best = p
		case 0:
			if p.Outcome.Time < best.Outcome.Time {
				best = p
			}
		}
	}
	return best
}

// Fastest returns the plan with the lowest execution time; ties break
// toward the cheaper plan, then toward the earlier element. Returns nil for
// no plans.
func Fastest(plans []*Plan) *Plan {
	var best *Plan
	for _, p := range plans {
		if best == nil {
			best = p
			continue
		}
		if p.Outcome.Time < best.Outcome.Time ||
			(p.Outcome.Time == best.Outcome.Time && p.Price() < best.Price()) {
			best = p
		}
	}
	return best
}

// Partition splits plans into PQexist (runnable now) and PQpos (needs new
// structures), preserving order (§IV-B).
func Partition(plans []*Plan) (exist, possible []*Plan) {
	return PartitionInto(plans, nil, nil)
}

// PartitionInto is Partition appending into caller-owned slices — pass
// them length-zero with retained capacity and the split allocates
// nothing once the buffers have grown. The hot decision loop partitions
// every query, so the per-call slices of the plain Partition would be
// two avoidable allocations per decision.
func PartitionInto(plans, exist, possible []*Plan) (e, pos []*Plan) {
	for _, p := range plans {
		if p.Runnable() {
			exist = append(exist, p)
		} else {
			possible = append(possible, p)
		}
	}
	return exist, possible
}
