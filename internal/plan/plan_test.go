package plan

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/structure"
)

// mk builds a plan stub with the given time (ms) and price (micro$).
func mk(ms int64, micros int64) *Plan {
	return &Plan{
		Location:  Cache,
		Outcome:   cost.Outcome{Time: time.Duration(ms) * time.Millisecond},
		ExecPrice: money.FromMicros(micros),
	}
}

func TestPriceSumsExecAndAmort(t *testing.T) {
	p := mk(10, 100)
	p.AmortPrice = money.FromMicros(50)
	if got := p.Price(); got != money.FromMicros(150) {
		t.Errorf("Price = %v", got)
	}
}

func TestRunnable(t *testing.T) {
	p := mk(10, 100)
	if !p.Runnable() {
		t.Error("plan with no missing structures must be runnable")
	}
	p.Missing = []structure.ID{"col:x.y"}
	if p.Runnable() {
		t.Error("plan with missing structures must not be runnable")
	}
}

func TestSkylineKeepsParetoFront(t *testing.T) {
	a := mk(10, 500) // fast, expensive
	b := mk(20, 300) // mid
	c := mk(30, 100) // slow, cheap
	d := mk(25, 400) // dominated by b (slower and pricier)
	e := mk(10, 600) // dominated by a (same time, pricier)
	got := Skyline([]*Plan{d, c, e, a, b})
	if len(got) != 3 {
		t.Fatalf("skyline size = %d (%v), want 3", len(got), got)
	}
	want := []*Plan{a, b, c}
	for i, p := range want {
		if got[i] != p {
			t.Errorf("skyline[%d] = %v, want %v", i, got[i], p)
		}
	}
}

func TestSkylineSmallInputs(t *testing.T) {
	if got := Skyline(nil); len(got) != 0 {
		t.Error("nil input")
	}
	one := []*Plan{mk(1, 1)}
	got := Skyline(one)
	if len(got) != 1 || got[0] != one[0] {
		t.Error("single plan must survive")
	}
	// Input must not be reordered.
	in := []*Plan{mk(30, 100), mk(10, 500)}
	Skyline(in)
	if in[0].Outcome.Time != 30*time.Millisecond {
		t.Error("input slice mutated")
	}
}

func TestSkylineEqualPlans(t *testing.T) {
	a, b := mk(10, 100), mk(10, 100)
	got := Skyline([]*Plan{a, b})
	if len(got) != 1 {
		t.Fatalf("want single survivor among ties, got %d", len(got))
	}
}

func TestCheapestAndFastest(t *testing.T) {
	a := mk(10, 500)
	b := mk(20, 300)
	c := mk(30, 100)
	plans := []*Plan{a, b, c}
	if Cheapest(plans) != c {
		t.Error("Cheapest wrong")
	}
	if Fastest(plans) != a {
		t.Error("Fastest wrong")
	}
	if Cheapest(nil) != nil || Fastest(nil) != nil {
		t.Error("empty input must return nil")
	}
	// Tie-breaks: same price -> faster wins; same time -> cheaper wins.
	d := mk(5, 100)
	if Cheapest([]*Plan{c, d}) != d {
		t.Error("price tie should break toward faster")
	}
	e := mk(10, 400)
	if Fastest([]*Plan{a, e}) != e {
		t.Error("time tie should break toward cheaper")
	}
}

func TestPartition(t *testing.T) {
	a := mk(10, 100)
	b := mk(20, 200)
	b.Missing = []structure.ID{"cpu:2"}
	c := mk(30, 300)
	exist, possible := Partition([]*Plan{a, b, c})
	if len(exist) != 2 || exist[0] != a || exist[1] != c {
		t.Errorf("exist = %v", exist)
	}
	if len(possible) != 1 || possible[0] != b {
		t.Errorf("possible = %v", possible)
	}
}

func TestLocationString(t *testing.T) {
	if Cache.String() != "cache" || Backend.String() != "backend" {
		t.Error("Location strings wrong")
	}
}

func TestPlanString(t *testing.T) {
	p := mk(10, 100)
	p.UsesIndex = true
	p.Index = "idx_t(a)"
	p.Nodes = 3
	p.Missing = []structure.ID{"cpu:3"}
	s := p.String()
	for _, want := range []string{"idx_t(a)", "nodes=3", "missing=1"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: the skyline is mutually non-dominating and every dropped plan
// is dominated by some survivor.
func TestSkylineProperty(t *testing.T) {
	f := func(times, prices []uint16) bool {
		n := len(times)
		if len(prices) < n {
			n = len(prices)
		}
		if n == 0 {
			return true
		}
		plans := make([]*Plan, n)
		for i := 0; i < n; i++ {
			plans[i] = mk(int64(times[i]), int64(prices[i]))
		}
		sky := Skyline(plans)
		if len(sky) == 0 {
			return false
		}
		dominates := func(a, b *Plan) bool {
			return a.Outcome.Time <= b.Outcome.Time && a.Price() <= b.Price() &&
				(a.Outcome.Time < b.Outcome.Time || a.Price() < b.Price())
		}
		// Survivors are mutually non-dominating.
		for i, a := range sky {
			for j, b := range sky {
				if i != j && dominates(a, b) {
					return false
				}
			}
		}
		// Every input is dominated-or-equal by a survivor.
		for _, p := range plans {
			ok := false
			for _, s := range sky {
				if s == p || dominates(s, p) ||
					(s.Outcome.Time == p.Outcome.Time && s.Price() == p.Price()) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
