package economy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/structure"
)

// ResolveID reconstructs a Structure from its canonical ID string using the
// catalog for sizing. The ID grammar is fixed by package structure:
//
//	cpu:<ordinal>
//	col:<table>.<column>
//	idx_<table>(<col>,<col>,...)
func ResolveID(cat *catalog.Catalog, id structure.ID) (*structure.Structure, error) {
	s := string(id)
	switch {
	case strings.HasPrefix(s, "cpu:"):
		n, err := strconv.Atoi(s[len("cpu:"):])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("economy: bad cpu node id %q", id)
		}
		return structure.CPUNode(n), nil

	case strings.HasPrefix(s, "col:"):
		rest := s[len("col:"):]
		table, col, ok := strings.Cut(rest, ".")
		if !ok || table == "" || col == "" {
			return nil, fmt.Errorf("economy: bad column id %q", id)
		}
		return structure.ColumnStructure(cat, catalog.Col(table, col))

	case strings.HasPrefix(s, "idx_"):
		open := strings.IndexByte(s, '(')
		if open < 0 || !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("economy: bad index id %q", id)
		}
		table := s[len("idx_"):open]
		colList := s[open+1 : len(s)-1]
		if table == "" || colList == "" {
			return nil, fmt.Errorf("economy: bad index id %q", id)
		}
		def := catalog.IndexDef{Table: table, Columns: strings.Split(colList, ",")}
		return structure.IndexStructure(cat, def)

	default:
		return nil, fmt.Errorf("economy: unrecognised structure id %q", id)
	}
}
