package economy

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// TestJournalEventConservation: with an obs.Journal installed as the
// economy's event sink, the journal's exact totals must reconcile with
// the ledger totals for both providers — every invested, evicted and
// recovered dollar appears in exactly one event. The journal rings are
// deliberately tiny so rotation is exercised: retention is bounded, the
// running totals are not.
func TestJournalEventConservation(t *testing.T) {
	const ringCap = 8
	for _, provider := range []Provider{ProviderAltruistic, ProviderSelfish} {
		t.Run(provider.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7700 + int64(provider)))
			cat := catalog.TPCH(20)
			model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
			if err != nil {
				t.Fatal(err)
			}
			ca := cache.New(0)
			opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 5000, AllowIndexes: true, AllowNodes: true})
			if err != nil {
				t.Fatal(err)
			}
			econ, err := New(Config{
				Model:              model,
				Cache:              ca,
				Optimizer:          opt,
				Criterion:          SelectCheapest,
				Provider:           provider,
				RegretFraction:     0.0002,
				AmortN:             5000,
				InitialCredit:      money.FromDollars(25),
				Conservative:       true,
				MaintFailureFactor: 1.0,
				FailureFloor:       money.FromDollars(0.0001),
				NeverUsedFloor:     money.FromDollars(0.5),
				InvestBackoff:      2,
			})
			if err != nil {
				t.Fatal(err)
			}

			var seq atomic.Int64
			journal := obs.NewJournal(3, ringCap, &seq)
			var raw []obs.Event
			econ.SetEvents(func(e obs.Event) {
				journal.Emit(e)
				raw = append(raw, e)
			})

			tenants := []string{"", "alice", "bob", "carol"}
			tpls := workload.PaperTemplates()
			const n = 1500
			for i := 0; i < n; i++ {
				tpl := tpls[rng.Intn(len(tpls))]
				q := &workload.Query{
					ID:          int64(i + 1),
					Tenant:      tenants[rng.Intn(len(tenants))],
					Template:    tpl,
					Selectivity: tpl.SelMin + rng.Float64()*(tpl.SelMax-tpl.SelMin),
					Arrival:     ca.Clock() + time.Duration(1+rng.Intn(9_000))*time.Millisecond,
					Budget: budget.NewStep(
						money.FromDollars(rng.Float64()*0.02),
						time.Duration(1+rng.Intn(60))*time.Second),
				}
				ca.Advance(q.Arrival)
				ca.CompleteDue()
				plans, err := opt.Enumerate(q, ca)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := econ.HandleQuery(q, plans); err != nil {
					t.Fatal(err)
				}
			}

			s := econ.Stats()
			tot := journal.Totals()

			// Dollar conservation: the journal's lifetime sums equal the
			// ledgers', exactly, in micro-dollars.
			if tot.Invested != s.Invested {
				t.Errorf("journal invested %v, ledgers say %v", tot.Invested, s.Invested)
			}
			if tot.Recovered != s.Recovered {
				t.Errorf("journal recovered %v, ledgers say %v", tot.Recovered, s.Recovered)
			}
			// Every maintenance-failure eviction is journaled.
			if tot.Evicts != s.FailureCount {
				t.Errorf("journal evicts %d, economy failed %d structures", tot.Evicts, s.FailureCount)
			}
			// Prerequisite column builds emit their own invest events but
			// count as part of the index's single investment, so events can
			// only outnumber InvestCount.
			if tot.Invests < s.InvestCount {
				t.Errorf("journal invests %d < economy invest count %d", tot.Invests, s.InvestCount)
			}
			if s.InvestCount == 0 || s.FailureCount == 0 || tot.Recovers == 0 {
				t.Fatalf("stream too tame to test conservation: invests %d, evicts %d, recovers %d",
					s.InvestCount, s.FailureCount, tot.Recovers)
			}

			// The raw stream agrees with the journal's totals: Emit dropped
			// nothing and double-counted nothing.
			var rawTot obs.Totals
			perTenantInvest := map[string]money.Amount{}
			perTenantRecover := map[string]money.Amount{}
			for _, e := range raw {
				switch e.Type {
				case obs.EventInvest:
					rawTot.Invests++
					rawTot.Invested = rawTot.Invested.Add(e.Amount)
					perTenantInvest[e.Tenant] = perTenantInvest[e.Tenant].Add(e.Amount)
				case obs.EventEvict:
					rawTot.Evicts++
					rawTot.Evicted = rawTot.Evicted.Add(e.Amount)
				case obs.EventRecover:
					rawTot.Recovers++
					rawTot.Recovered = rawTot.Recovered.Add(e.Amount)
					perTenantRecover[e.Tenant] = perTenantRecover[e.Tenant].Add(e.Amount)
				default:
					t.Fatalf("unknown event type %q", e.Type)
				}
			}
			if rawTot != tot {
				t.Errorf("raw stream totals %+v != journal totals %+v", rawTot, tot)
			}

			// Under the selfish provider every event names its account, and
			// the per-tenant event sums match the per-tenant ledgers.
			if provider == ProviderSelfish {
				for _, l := range econ.TenantStats() {
					if got := perTenantInvest[l.Tenant]; got != l.Invested {
						t.Errorf("tenant %q: invest events sum to %v, ledger invested %v", l.Tenant, got, l.Invested)
					}
					if got := perTenantRecover[l.Tenant]; got != l.Recovered {
						t.Errorf("tenant %q: recover events sum to %v, ledger recovered %v", l.Tenant, got, l.Recovered)
					}
				}
			}

			// Retention is bounded per type; sequence numbers are unique,
			// increasing, and stamped with the journal's shard.
			for _, typ := range []string{obs.EventInvest, obs.EventEvict, obs.EventRecover} {
				events := journal.Snapshot(typ, "", 0)
				if len(events) > ringCap {
					t.Errorf("%s ring retains %d events, cap %d", typ, len(events), ringCap)
				}
				var last int64
				for _, e := range events {
					if e.Seq <= last {
						t.Errorf("%s events out of order: seq %d after %d", typ, e.Seq, last)
					}
					last = e.Seq
					if e.Shard != 3 {
						t.Errorf("event carries shard %d, journal owns shard 3", e.Shard)
					}
					if e.AmountUSD != e.Amount.Dollars() {
						t.Errorf("event USD view %v diverges from exact amount %v", e.AmountUSD, e.Amount)
					}
				}
			}
		})
	}
}
