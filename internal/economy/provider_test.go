package economy

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/money"
	"repro/internal/structure"
)

// tq builds a tenant-tagged Q6 query.
func (r *rig) tq(t *testing.T, tenant string, sel float64, b budget.Func) Decision {
	t.Helper()
	q := r.query(t, sel, b)
	q.Tenant = tenant
	return r.handle(t, q)
}

func hotBudget() budget.Func {
	return budget.NewStep(money.FromDollars(1000), time.Hour)
}

// TestAltruisticIsTenantBlind: under the altruistic provider, tenant tags
// are pure attribution — the same query sequence with and without tags
// must produce byte-identical decisions, account state and residency.
// This is the refactor's parity guarantee: the single-tenant degenerate
// case IS the classic single-account economy.
func TestAltruisticIsTenantBlind(t *testing.T) {
	run := func(tenants []string) (Stats, int, int) {
		r := newRig(t, func(c *Config) {
			c.RegretFraction = 0.0001
			c.InitialCredit = money.FromDollars(10000)
		})
		for i := 0; i < 40; i++ {
			tenant := ""
			if len(tenants) > 0 {
				tenant = tenants[i%len(tenants)]
			}
			r.tq(t, tenant, 5e-4, hotBudget())
		}
		return r.econ.Stats(), r.cache.Len(), r.cache.PendingCount()
	}

	plain, plainLen, plainPending := run(nil)
	tagged, taggedLen, taggedPending := run([]string{"alice", "bob", "carol"})
	if plain != tagged {
		t.Errorf("tenant tags changed altruistic accounting:\nplain  %+v\ntagged %+v", plain, tagged)
	}
	if plainLen != taggedLen || plainPending != taggedPending {
		t.Errorf("tenant tags changed residency: %d/%d vs %d/%d",
			plainLen, plainPending, taggedLen, taggedPending)
	}
}

// TestAltruisticTenantAttribution: the mirrors still attribute spend,
// profit and regret per tenant, with zero per-tenant credit (the account
// is communal) and deterministic ordering.
func TestAltruisticTenantAttribution(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.RegretFraction = 0.99 // no investment noise
	})
	r.tq(t, "bob", 5e-4, hotBudget())
	r.tq(t, "alice", 5e-4, hotBudget())
	r.tq(t, "alice", 5e-4, hotBudget())

	ts := r.econ.TenantStats()
	if len(ts) != 2 || ts[0].Tenant != "alice" || ts[1].Tenant != "bob" {
		t.Fatalf("tenant stats = %+v, want sorted [alice bob]", ts)
	}
	if ts[0].Queries != 2 || ts[1].Queries != 1 {
		t.Errorf("query attribution wrong: %+v", ts)
	}
	for _, s := range ts {
		if s.Credit != 0 || s.Invested != 0 || s.InvestCount != 0 {
			t.Errorf("altruistic tenant %s carries account state: %+v", s.Tenant, s)
		}
		if !s.Spend.IsPositive() {
			t.Errorf("tenant %s has no spend", s.Tenant)
		}
		if !s.RegretAccrued.IsPositive() {
			t.Errorf("tenant %s accrued no regret on a cold cache", s.Tenant)
		}
	}
	// The communal pool carries all the money.
	agg := r.econ.Stats()
	if agg.Credit <= money.FromDollars(100) {
		t.Errorf("pool credit %v did not grow", agg.Credit)
	}
}

// TestSelfishChargesBuilderOnly: under the selfish provider only the hot
// tenant's regret triggers builds, charged to that tenant's ledger; the
// idle tenant's account is untouched by the investment.
func TestSelfishChargesBuilderOnly(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Provider = ProviderSelfish
		c.RegretFraction = 0.0001
		c.InitialCredit = money.FromDollars(10000)
	})

	// Alice hammers until she builds; only then does bob open his
	// account with a single query (by then every structure alice's
	// stream wants is resident or building, so bob invests in nothing).
	var built []structure.ID
	for i := 0; i < 50 && len(built) == 0; i++ {
		d := r.tq(t, "alice", 5e-4, hotBudget())
		built = d.Investments
	}
	if len(built) == 0 {
		t.Fatal("no selfish investment after 50 hot queries with a hair trigger")
	}
	r.tq(t, "bob", 5e-4, hotBudget())
	for _, id := range built {
		if owner := r.econ.Market().Owner(id); owner != "alice" {
			t.Errorf("structure %s owned by %q, want alice", id, owner)
		}
	}

	ts := r.econ.TenantStats()
	if len(ts) != 2 {
		t.Fatalf("want 2 tenant ledgers, got %+v", ts)
	}
	alice, bob := ts[0], ts[1]
	if alice.Tenant != "alice" || bob.Tenant != "bob" {
		t.Fatalf("unexpected order: %+v", ts)
	}
	if alice.Invested.IsZero() || alice.InvestCount == 0 {
		t.Errorf("alice financed nothing: %+v", alice)
	}
	if !bob.Invested.IsZero() || bob.InvestCount != 0 {
		t.Errorf("bob was charged for alice's build: %+v", bob)
	}
	// Bob's account: seed + his own profit, minus nothing.
	wantBob := money.FromDollars(10000).Add(bob.Profit)
	if bob.Credit != wantBob {
		t.Errorf("bob credit = %v, want %v", bob.Credit, wantBob)
	}
	// Aggregate credit is the sum of the tenant accounts.
	if got, want := r.econ.Credit(), alice.Credit.Add(bob.Credit); got != want {
		t.Errorf("aggregate credit %v != ledger sum %v", got, want)
	}
}

// TestSelfishRecoveryFlowsToOwner: when another tenant answers from a
// structure alice financed, the amortized share and maintenance arrears in
// that plan's price reimburse alice's ledger.
func TestSelfishRecoveryFlowsToOwner(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Provider = ProviderSelfish
		// Fastest-plan selection: once structures are resident, queries
		// actually answer from the cache (at this test's scale the tiny
		// backend plan stays cheapest, which would starve the recovery
		// path under SelectCheapest).
		c.Criterion = SelectFastest
		c.RegretFraction = 0.0001
		c.InitialCredit = money.FromDollars(10000)
		// The long idle advance below would otherwise trip the
		// maintenance-failure sweep and evict alice's structures before
		// bob ever uses them.
		c.MaintFailureFactor = 0
	})
	var built []structure.ID
	for i := 0; i < 50 && len(built) == 0; i++ {
		built = r.tq(t, "alice", 5e-4, hotBudget()).Investments
	}
	if len(built) == 0 {
		t.Fatal("alice never invested")
	}
	// Let the builds complete.
	r.cache.Advance(r.cache.Clock() + 100*time.Hour)
	r.cache.CompleteDue()
	if r.cache.Len() == 0 {
		t.Fatal("builds never completed")
	}

	statsOf := func(tenant string) TenantStats {
		for _, s := range r.econ.TenantStats() {
			if s.Tenant == tenant {
				return s
			}
		}
		t.Fatalf("no ledger for %s", tenant)
		return TenantStats{}
	}
	before := statsOf("alice")
	d := r.tq(t, "bob", 5e-4, hotBudget())
	if d.Chosen == nil {
		t.Fatal("bob's query was not answered")
	}
	after := statsOf("alice")
	if after.Recovered <= before.Recovered {
		t.Errorf("bob's use of alice's structures recovered nothing: %v -> %v",
			before.Recovered, after.Recovered)
	}
	if after.Credit <= before.Credit {
		t.Errorf("alice's credit did not grow from bob's use: %v -> %v",
			before.Credit, after.Credit)
	}
}

// TestTenantCapFoldsOverflow: beyond TenantCap, fresh tenant names share
// one overflow ledger — bounding both memory and, under the selfish
// provider, the capital invented names could otherwise mint (each real
// ledger opens with the initial credit; the overflow ledger opens once).
func TestTenantCapFoldsOverflow(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Provider = ProviderSelfish
		c.TenantCap = 2
	})
	for i := 0; i < 6; i++ {
		r.tq(t, fmt.Sprintf("t%d", i), 5e-4, hotBudget())
	}
	ts := r.econ.TenantStats()
	if len(ts) != 3 {
		t.Fatalf("got %d ledgers with cap 2, want 3 (2 + overflow): %+v", len(ts), ts)
	}
	var overflow *TenantStats
	for i := range ts {
		if ts[i].Tenant == OverflowTenant {
			overflow = &ts[i]
		}
	}
	if overflow == nil {
		t.Fatalf("no overflow ledger: %+v", ts)
	}
	if overflow.Queries != 4 {
		t.Errorf("overflow queries = %d, want 4", overflow.Queries)
	}
	// 2 real ledgers + 1 overflow ledger were seeded: capital is bounded
	// by (cap+1)·InitialCredit plus earnings, no matter how many names
	// arrive.
	agg := r.econ.Stats()
	seeded := money.FromDollars(100).MulInt(3)
	want := seeded.Add(agg.ProfitTotal).Sub(agg.Invested).Add(agg.Recovered)
	if got := r.econ.Credit(); got != want {
		t.Errorf("credit = %v, want %v (3 seeds + profit - invested + recovered)", got, want)
	}
}

// TestProviderParsing covers the knob's string round trip.
func TestProviderParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Provider
		ok   bool
	}{
		{"", ProviderAltruistic, true},
		{"altruistic", ProviderAltruistic, true},
		{"selfish", ProviderSelfish, true},
		{"greedy", 0, false},
	} {
		got, err := ParseProvider(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseProvider(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseProvider(%q) accepted", tc.in)
		}
	}
	if ProviderAltruistic.String() != "altruistic" || ProviderSelfish.String() != "selfish" {
		t.Error("provider names wrong")
	}
}

// TestTenantStatsSnapshotStable: repeated snapshots of unchanged state are
// deeply equal — the property the server's deterministic merge rests on.
func TestTenantStatsSnapshotStable(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Provider = ProviderSelfish })
	for _, tenant := range []string{"zoe", "ann", "zoe", "mel"} {
		r.tq(t, tenant, 5e-4, hotBudget())
	}
	a, b := r.econ.TenantStats(), r.econ.TenantStats()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots differ:\n%+v\n%+v", a, b)
	}
	if len(a) != 3 || a[0].Tenant != "ann" || a[1].Tenant != "mel" || a[2].Tenant != "zoe" {
		t.Errorf("not sorted: %+v", a)
	}
}
