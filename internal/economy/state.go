package economy

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/structure"
)

// This file exports the economy's mutable state for persistence. The
// exported structs are plain data — no behavior, no unexported fields —
// so internal/persist can serialize them without reaching into the
// economy, and a restored economy continues byte-for-byte: same credits,
// same regret entries with the same LRU clocks, same failure history,
// same investment backoff.

// RegretEntryState is one live regret-ledger row.
type RegretEntryState struct {
	ID      structure.ID
	Regret  money.Amount
	Touched int64
}

// LedgerState is the exported form of one Ledger.
type LedgerState struct {
	Tenant string
	Credit money.Amount
	// Clock is the ledger's logical LRU clock; Entries are sorted by ID.
	Clock   int64
	Entries []RegretEntryState

	Spend         money.Amount
	ProfitTotal   money.Amount
	Invested      money.Amount
	Recovered     money.Amount
	RegretAccrued money.Amount
	RegretDropped money.Amount
	InvestCount   int64
	DeclinedCount int64
	Queries       int64
	CacheAnswered int64
}

// OwnerState records which tenant financed one resident structure.
type OwnerState struct {
	ID     structure.ID
	Tenant string
}

// FailCountState records a structure's failure history (investment
// backoff input).
type FailCountState struct {
	ID    structure.ID
	Count int64
}

// MarketState is the exported form of the shared structure pool's
// bookkeeping. Residency itself lives in the cache's own state.
type MarketState struct {
	Owners       []OwnerState
	FailCounts   []FailCountState
	BuildUsage   cost.Usage
	FailureCount int64
}

// State is the exported form of an Economy: the communal pool (altruistic
// provider only), every tenant ledger, and the market bookkeeping. All
// slices are sorted so repeated snapshots of the same economy are
// byte-identical.
type State struct {
	Provider Provider
	Pool     *LedgerState
	Tenants  []LedgerState
	Market   MarketState
}

// snapshotLedger exports one ledger.
func snapshotLedger(l *Ledger) LedgerState {
	st := LedgerState{
		Tenant:        l.tenant,
		Credit:        l.credit,
		Clock:         l.clock,
		Spend:         l.spend,
		ProfitTotal:   l.profitTotal,
		Invested:      l.invested,
		Recovered:     l.recovered,
		RegretAccrued: l.regretAccrued,
		RegretDropped: l.regretDropped,
		InvestCount:   l.investCount,
		DeclinedCount: l.declinedCount,
		Queries:       l.queries,
		CacheAnswered: l.cacheAnswered,
	}
	for _, id := range l.sortedIDs() {
		e := l.entries[id]
		st.Entries = append(st.Entries, RegretEntryState{ID: id, Regret: e.regret, Touched: e.touched})
	}
	return st
}

// restoreLedger rebuilds one ledger with the economy's configured cap.
func restoreLedger(st LedgerState, cap int) *Ledger {
	l := newLedger(st.Tenant, 0, cap)
	l.credit = st.Credit
	l.clock = st.Clock
	l.spend = st.Spend
	l.profitTotal = st.ProfitTotal
	l.invested = st.Invested
	l.recovered = st.Recovered
	l.regretAccrued = st.RegretAccrued
	l.regretDropped = st.RegretDropped
	l.investCount = st.InvestCount
	l.declinedCount = st.DeclinedCount
	l.queries = st.Queries
	l.cacheAnswered = st.CacheAnswered
	for _, es := range st.Entries {
		l.entries[es.ID] = &regretEntry{regret: es.Regret, touched: es.Touched}
	}
	return l
}

// Snapshot exports the economy's state. The cache is not included: the
// economy shares it with the scheme, and the owner of both (a shard, a
// simulation) snapshots it alongside.
func (e *Economy) Snapshot() *State {
	st := &State{Provider: e.cfg.Provider}
	if e.pool != nil {
		pl := snapshotLedger(e.pool)
		st.Pool = &pl
	}
	names := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Tenants = append(st.Tenants, snapshotLedger(e.tenants[name]))
	}
	for id, tenant := range e.market.owner {
		st.Market.Owners = append(st.Market.Owners, OwnerState{ID: id, Tenant: tenant})
	}
	sort.Slice(st.Market.Owners, func(i, j int) bool { return st.Market.Owners[i].ID < st.Market.Owners[j].ID })
	for id, n := range e.market.failCount {
		st.Market.FailCounts = append(st.Market.FailCounts, FailCountState{ID: id, Count: int64(n)})
	}
	sort.Slice(st.Market.FailCounts, func(i, j int) bool { return st.Market.FailCounts[i].ID < st.Market.FailCounts[j].ID })
	st.Market.BuildUsage = e.market.buildUsage
	st.Market.FailureCount = e.market.failureCount
	return st
}

// Restore replaces the economy's mutable state with a previously
// exported one. The receiving economy must be fresh (straight from New)
// and configured with the same provider the snapshot was taken under: a
// provider change redefines whose money is whose, so the snapshot no
// longer describes this economy.
func (e *Economy) Restore(st *State) error {
	if st == nil {
		return fmt.Errorf("economy: nil state")
	}
	if st.Provider != e.cfg.Provider {
		return fmt.Errorf("economy: snapshot provider %v != configured %v", st.Provider, e.cfg.Provider)
	}
	if len(e.tenants) != 0 {
		return fmt.Errorf("economy: restore into non-fresh economy")
	}
	if (st.Pool != nil) != (e.cfg.Provider == ProviderAltruistic) {
		return fmt.Errorf("economy: snapshot pool/provider mismatch")
	}
	for _, ls := range st.Tenants {
		if _, dup := e.tenants[ls.Tenant]; dup {
			return fmt.Errorf("economy: duplicate tenant %q in snapshot", ls.Tenant)
		}
		e.tenants[ls.Tenant] = restoreLedger(ls, e.cfg.LedgerCap)
	}
	if st.Pool != nil {
		e.pool = restoreLedger(*st.Pool, e.cfg.LedgerCap)
	}
	m := e.market
	for _, os := range st.Market.Owners {
		m.owner[os.ID] = os.Tenant
	}
	for _, fs := range st.Market.FailCounts {
		m.failCount[fs.ID] = int(fs.Count)
	}
	m.buildUsage = st.Market.BuildUsage
	m.failureCount = st.Market.FailureCount
	return nil
}
