// Package economy implements the paper's primary contribution: the
// self-tuned economy of §IV, split into two layers. The Market is the
// shared structure pool — residency, build mechanics, maintenance-failure
// eviction, investment backoff — and Ledgers are the accounts played
// against it: credit, spend, regret attribution and budget settlement,
// one per tenant plus (for the altruistic provider) one communal pool.
//
// The Provider knob selects the §IV framing of who owns the money:
//
//   - ProviderAltruistic — one communal account CR and one regret ledger,
//     pooled across every tenant before the Eq. 3 `a·capital` investment
//     test. This is the paper's provider and the single-tenant
//     degenerate case reproduces the classic single-account economy
//     byte for byte.
//   - ProviderSelfish — per-tenant accounting: each tenant's ledger is
//     seeded with the initial capital on first contact, only that
//     tenant's regret triggers builds, builds are charged to (and
//     amortize back into) that tenant, and recovery for shared residents
//     flows to the tenant that financed them as other tenants use them.
//
// In both modes the economy classifies each query into case A/B/C against
// the user's budget function (§IV-C, Fig. 2), selects a plan under the
// scheme's criterion, credits profit, collects amortized build shares and
// maintenance arrears (Eq. 4–7, footnote 3), accumulates regret for
// rejected possible plans (Eq. 1–2), and invests in new structures when
// regret crosses the Eq. 3 threshold. Structures whose unpaid maintenance
// exceeds their build cost fail and are evicted (footnote 3 "structure
// failure").
package economy

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Criterion selects which affordable runnable plan the cloud picks.
type Criterion int

// The selection criteria of §VII-A.
const (
	// SelectCheapest picks the least-cost plan (econ-col, econ-cheap).
	SelectCheapest Criterion = iota
	// SelectFastest picks the fastest affordable plan (econ-fast).
	SelectFastest
	// SelectMinProfit picks the plan minimizing B_Q(t)-price, the pure
	// case-B rule of §IV-C.
	SelectMinProfit
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case SelectCheapest:
		return "cheapest"
	case SelectFastest:
		return "fastest"
	case SelectMinProfit:
		return "min-profit"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Provider selects the §IV accounting stance of the cloud.
type Provider int

const (
	// ProviderAltruistic pools all tenants into one communal account and
	// regret ledger before the Eq. 3 investment test (the paper's
	// provider; the default).
	ProviderAltruistic Provider = iota
	// ProviderSelfish accounts budgets and regret per tenant: only a
	// tenant's own regret triggers builds, charged to that tenant.
	ProviderSelfish
)

// String implements fmt.Stringer.
func (p Provider) String() string {
	switch p {
	case ProviderAltruistic:
		return "altruistic"
	case ProviderSelfish:
		return "selfish"
	default:
		return fmt.Sprintf("Provider(%d)", int(p))
	}
}

// ParseProvider parses a provider name ("altruistic" or "selfish"; ""
// means altruistic).
func ParseProvider(s string) (Provider, error) {
	switch s {
	case "", "altruistic":
		return ProviderAltruistic, nil
	case "selfish":
		return ProviderSelfish, nil
	default:
		return 0, fmt.Errorf("economy: unknown provider %q (want altruistic or selfish)", s)
	}
}

// Case is the §IV-C classification of a query against its budget.
type Case int

// The three cases of Fig. 2.
const (
	// CaseA: the budget is below every plan's price.
	CaseA Case = iota
	// CaseB: the budget covers every plan.
	CaseB
	// CaseC: the budget covers some plans.
	CaseC
)

// String implements fmt.Stringer.
func (c Case) String() string { return [...]string{"A", "B", "C"}[c] }

// Config parameterises the economy.
type Config struct {
	// Model prices maintenance and builds (the scheme's schedule).
	Model *cost.Model
	// Cache is the shared cache state.
	Cache *cache.Cache
	// Optimizer prices builds consistently with plan enumeration.
	Optimizer *optimizer.Optimizer
	// Criterion is the plan-selection rule.
	Criterion Criterion
	// Provider selects altruistic (pooled, the default) or selfish
	// (per-tenant) accounting.
	Provider Provider
	// RegretFraction is `a` of Eq. 3 (0 < a < 1).
	RegretFraction float64
	// AmortN is the amortization horizon n of Eq. 7.
	AmortN int64
	// InitialCredit seeds the cloud account so the first investments are
	// possible before profit accumulates. Under the selfish provider each
	// tenant's ledger is seeded with this capital on first contact.
	InitialCredit money.Amount
	// Conservative providers build only structures whose build price the
	// account covers ("builds structures only when her profit exceeds
	// the cost of building them", §VII-A).
	Conservative bool
	// UserAcceptsOverBudget models the §VII-A user who "accepts query
	// execution in the back-end" when no plan fits the budget: in case A
	// the user picks (and pays for) the cheapest runnable plan.
	UserAcceptsOverBudget bool
	// MaintFailureFactor triggers structure failure when rent outweighs
	// the structure's value (footnote 3). 0 disables failure eviction.
	MaintFailureFactor float64
	// FailureFloor is the minimum arrears before a *used* structure can
	// fail, protecting cheap structures from flapping at short
	// inter-query intervals.
	FailureFloor money.Amount
	// NeverUsedFloor is the minimum arrears before a structure that has
	// never been used can fail. It must be generous enough to cover the
	// window between a structure's completion and the completion of the
	// rest of its plan's structure set — partial sets are unusable, so
	// early members idle through no fault of their own.
	NeverUsedFloor money.Amount
	// InvestBackoff multiplies the Eq. 3 investment threshold for a
	// structure each time a previous build of it failed, damping
	// build-evict-rebuild cycles in rent-hostile regimes. Values <= 1
	// disable backoff.
	InvestBackoff float64
	// InvestKinds limits which structure kinds the economy may build;
	// nil means all kinds (econ-col passes only KindColumn).
	InvestKinds map[structure.Kind]bool
	// LedgerCap bounds each regret ledger; least-recently-touched
	// entries are garbage collected (§IV-B "garbage collected using LRU
	// policy"). 0 means a generous default.
	LedgerCap int
	// TenantCap bounds the number of distinct tenant ledgers. Billing
	// state must never be silently dropped, so beyond the cap new tenant
	// names fold into one shared overflow ledger — bounding both memory
	// and (under the selfish provider, where each fresh ledger opens
	// with the initial capital) the credit untrusted clients can mint by
	// inventing names. 0 means a generous default.
	TenantCap int
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Model == nil || c.Cache == nil || c.Optimizer == nil {
		return fmt.Errorf("economy: Model, Cache and Optimizer are required")
	}
	if c.RegretFraction <= 0 || c.RegretFraction >= 1 {
		return fmt.Errorf("economy: RegretFraction must be in (0,1), got %g", c.RegretFraction)
	}
	if c.AmortN <= 0 {
		return fmt.Errorf("economy: AmortN must be positive")
	}
	if c.MaintFailureFactor < 0 {
		return fmt.Errorf("economy: MaintFailureFactor must be >= 0")
	}
	if c.LedgerCap < 0 {
		return fmt.Errorf("economy: LedgerCap must be >= 0")
	}
	if c.TenantCap < 0 {
		return fmt.Errorf("economy: TenantCap must be >= 0")
	}
	if c.Provider != ProviderAltruistic && c.Provider != ProviderSelfish {
		return fmt.Errorf("economy: unknown provider %d", c.Provider)
	}
	return nil
}

// regretEntry is one ledger row.
type regretEntry struct {
	regret  money.Amount
	touched int64 // ledger logical clock for LRU GC
}

// Decision reports how one query was handled.
type Decision struct {
	// Case classification (§IV-C).
	Case Case
	// Chosen is the executed plan; nil when the query was declined.
	Chosen *plan.Plan
	// Declined reports that no plan fit the budget and the user walked.
	Declined bool
	// Charged is what the user paid.
	Charged money.Amount
	// Profit is Charged minus the plan price (credited to the account).
	Profit money.Amount
	// Investments lists structures whose construction this query
	// triggered.
	Investments []structure.ID
	// InvestConsidered counts ledger entries whose regret crossed the
	// Eq. 3 bar this query — build candidates, whether or not the build
	// went through (already resident/building, unresolvable, or too
	// expensive for a conservative provider).
	InvestConsidered int
	// RegretAccrued is the total regret this query distributed across
	// missing structures (Eq. 1–2).
	RegretAccrued money.Amount
	// Failures lists structures evicted for maintenance failure before
	// this query was planned.
	Failures []structure.ID
}

// Economy is the mutable market + ledger state. Not safe for concurrent
// use; one simulation (or one server shard) owns one economy.
type Economy struct {
	cfg    Config
	market *Market

	// pool is the communal account of the altruistic provider: the
	// single-ledger economy of §IV. Nil under the selfish provider.
	pool *Ledger
	// tenants maps tenant name -> per-tenant ledger. Under the
	// altruistic provider these are attribution mirrors (no credit);
	// under the selfish provider they are the real accounts. Bounded by
	// cfg.TenantCap; overflow names share one ledger.
	tenants map[string]*Ledger

	// events, when set, receives every invest/evict/recover as it
	// happens (see SetEvents). The market holds the same sink for the
	// events it originates.
	events func(obs.Event)

	// scratchExist/scratchPoss/scratchAfford back HandleQuery's per-query
	// plan partitions, reused across calls so the steady-state decision
	// path allocates nothing. Safe because the economy is single-owner
	// (one shard or one simulation loop) and the slices never outlive the
	// call.
	scratchExist  []*plan.Plan
	scratchPoss   []*plan.Plan
	scratchAfford []*plan.Plan
}

// SetEvents installs a sink for the economy's structured events: every
// investment, maintenance-failure eviction and settlement recovery is
// reported as it happens. Events fire synchronously on the decision
// path, so the sink must be cheap (the obs.Journal is); nil removes the
// sink. Not safe to call concurrently with HandleQuery — install it at
// wiring time, before traffic.
func (e *Economy) SetEvents(fn func(obs.Event)) {
	e.events = fn
	e.market.events = fn
}

// emit reports one event if a sink is installed, stamping the economy
// clock.
func (e *Economy) emit(ev obs.Event) {
	if e.events == nil {
		return
	}
	ev.ClockSec = e.cfg.Cache.Clock().Seconds()
	e.events(ev)
}

// OverflowTenant is the shared ledger name that tenants beyond TenantCap
// fold into. The name is not reserved at admission: a client that
// submits it joins the shared pot deliberately, which grants nothing a
// fresh name would not — the pot is seeded at most once, and its members
// already share spend, regret and capital by construction.
const OverflowTenant = "(overflow)"

// DrainBuildUsage returns the physical usage of all investments since the
// previous drain and resets the accumulator.
func (e *Economy) DrainBuildUsage() cost.Usage {
	return e.market.drainBuildUsage()
}

// New builds an economy.
func New(cfg Config) (*Economy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LedgerCap == 0 {
		cfg.LedgerCap = 4096
	}
	if cfg.TenantCap == 0 {
		cfg.TenantCap = 10_000
	}
	if cfg.NeverUsedFloor == 0 {
		cfg.NeverUsedFloor = money.FromDollars(1)
	}
	e := &Economy{
		cfg:     cfg,
		market:  newMarket(cfg),
		tenants: make(map[string]*Ledger),
	}
	if cfg.Provider == ProviderAltruistic {
		e.pool = newLedger("", cfg.InitialCredit, cfg.LedgerCap)
	}
	return e, nil
}

// Provider returns the accounting stance.
func (e *Economy) Provider() Provider { return e.cfg.Provider }

// Market exposes the shared structure pool.
func (e *Economy) Market() *Market { return e.market }

// Credit returns the total account balance CR: the communal pool under
// the altruistic provider, the sum of tenant accounts under the selfish
// one.
func (e *Economy) Credit() money.Amount {
	if e.pool != nil {
		return e.pool.credit
	}
	var total money.Amount
	for _, l := range e.tenants {
		total = total.Add(l.credit)
	}
	return total
}

// Regret returns the accumulated live regret for a structure across all
// ledgers.
func (e *Economy) Regret(id structure.ID) money.Amount {
	if e.pool != nil {
		return e.pool.regretOf(id)
	}
	var total money.Amount
	for _, l := range e.tenants {
		total = total.Add(l.regretOf(id))
	}
	return total
}

// ledgerFor returns (creating on first contact) the tenant's ledger.
// Under the selfish provider a fresh ledger opens with the initial
// capital; under the altruistic provider mirrors open empty — the
// communal pool holds the money. Beyond TenantCap, new names share the
// overflow ledger (which opens — and mints capital — exactly once).
func (e *Economy) ledgerFor(tenant string) *Ledger {
	if l, ok := e.tenants[tenant]; ok {
		return l
	}
	if len(e.tenants) >= e.cfg.TenantCap {
		if l, ok := e.tenants[OverflowTenant]; ok {
			return l
		}
		tenant = OverflowTenant
	}
	seed := money.Amount(0)
	if e.cfg.Provider == ProviderSelfish {
		seed = e.cfg.InitialCredit
	}
	l := newLedger(tenant, seed, e.cfg.LedgerCap)
	e.tenants[tenant] = l
	return l
}

// account returns the ledger whose credit and regret drive decisions for
// this tenant: the pool when altruistic, the tenant's own when selfish.
func (e *Economy) account(led *Ledger) *Ledger {
	if e.pool != nil {
		return e.pool
	}
	return led
}

// HandleQuery runs the full §IV-C pipeline for one query whose plan set has
// already been enumerated. The cache clock must already be at q.Arrival.
func (e *Economy) HandleQuery(q *workload.Query, plans []*plan.Plan) (Decision, error) {
	if q == nil || len(plans) == 0 {
		return Decision{}, fmt.Errorf("economy: query and plans are required")
	}
	var d Decision

	// Structure failure sweep (footnote 3) happens before planning so a
	// failed structure cannot be chosen.
	d.Failures = e.market.sweepFailures()

	exist, poss := plan.PartitionInto(plans, e.scratchExist[:0], e.scratchPoss[:0])
	e.scratchExist, e.scratchPoss = exist, poss
	if len(exist) == 0 {
		return Decision{}, fmt.Errorf("economy: no runnable plan (the backend plan must always exist)")
	}

	led := e.ledgerFor(q.Tenant)
	acct := e.account(led)
	led.queries++

	// Affordability and case classification over the full PQ.
	affordable := func(p *plan.Plan) bool {
		return q.Budget.At(p.Time()) >= p.Price()
	}
	nAfford := 0
	for _, p := range plans {
		if affordable(p) {
			nAfford++
		}
	}
	switch {
	case nAfford == 0:
		d.Case = CaseA
	case nAfford == len(plans):
		d.Case = CaseB
	default:
		d.Case = CaseC
	}

	// Plan selection.
	affordableExist := e.scratchAfford[:0]
	for _, p := range exist {
		if affordable(p) {
			affordableExist = append(affordableExist, p)
		}
	}
	e.scratchAfford = affordableExist
	switch {
	case len(affordableExist) > 0:
		d.Chosen = e.selectPlan(q, affordableExist)
	case e.cfg.UserAcceptsOverBudget:
		// §VII-A: the user accepts the cheapest runnable offer.
		d.Chosen = plan.Cheapest(exist)
	default:
		d.Declined = true
		led.declinedCount++
	}

	// Payment, profit and per-structure collections. Two anchor plans
	// measure the value of cache structures marginally: columns earn
	// the plain column scan's saving over the back-end plan; the index
	// and extra nodes earn only their improvement over the plain scan.
	var backendExec, scanExec money.Amount
	haveScan := false
	for _, p := range plans {
		if p.Location == plan.Backend {
			backendExec = p.ExecPrice
		}
		if p.Location == plan.Cache && !p.UsesIndex && p.Nodes == 1 {
			scanExec = p.ExecPrice
			haveScan = true
		}
	}
	if d.Chosen != nil {
		e.settle(q, d.Chosen, backendExec, scanExec, haveScan, led, &d)
		if d.Chosen.Location == plan.Cache {
			led.cacheAnswered++
		}
	}

	// Regret accrual for rejected possible plans, then investment. Regret
	// lands in the deciding account's live map (the pool when altruistic,
	// the tenant's own when selfish) and is attributed to the tenant in
	// either case.
	d.RegretAccrued = e.accrueRegret(q, plans, d.Chosen, led, acct)
	d.Investments, d.InvestConsidered = e.invest(acct)
	return d, nil
}

// selectPlan applies the scheme's criterion to the affordable runnable set.
// It delegates to selectPlanWith so the live decision and the Quote
// counterfactual can never drift apart.
func (e *Economy) selectPlan(q *workload.Query, plans []*plan.Plan) *plan.Plan {
	return e.selectPlanWith(q.Budget, plans)
}

// settle charges the user, credits profit and collects the amortized and
// maintenance components.
//
// Under the altruistic provider everything lands in the communal pool,
// exactly the single-account settlement of §IV-C. Under the selfish
// provider the money splits by role: the paying tenant's ledger keeps the
// profit, while each structure's amortized share and maintenance recovery
// flow to the ledger of the tenant that financed it — "rent for shared
// residents split by measured usage": whoever uses a resident next pays
// its accrued arrears, and that payment reimburses its owner.
//
// Value attribution is marginal: when a cache plan is chosen, its columns
// split the execution saving of the plain column scan over the back-end
// plan, while the index and extra CPU nodes split only the further saving
// the chosen plan achieves over the plain scan. This keeps base data
// "less eligible for eviction" than accelerators (§VII-B), because the
// columns carry the bulk of the measured value.
func (e *Economy) settle(q *workload.Query, p *plan.Plan, backendExec, scanExec money.Amount, haveScan bool, led *Ledger, d *Decision) {
	price := p.Price()
	budgetAt := q.Budget.At(p.Time())
	charged := price
	if budgetAt > price {
		charged = budgetAt
	}
	d.Charged = charged
	d.Profit = charged.Sub(price)

	led.spend = led.spend.Add(charged)
	led.profitTotal = led.profitTotal.Add(d.Profit)

	// Execution cost is paid through to the infrastructure; profit,
	// amortized shares and maintenance recovery stay in the accounts.
	if e.pool != nil {
		e.pool.credit = e.pool.credit.Add(charged.Sub(p.ExecPrice))
		recovery := p.AmortPrice.Add(p.MaintPrice)
		e.pool.recovered = e.pool.recovered.Add(recovery)
		if recovery != 0 {
			e.emit(obs.Event{
				Type:   obs.EventRecover,
				Amount: recovery,
				Reason: "settlement collected the plan's amortized shares and arrears for the pool",
			})
		}
	} else {
		led.credit = led.credit.Add(d.Profit)
	}

	// Marginal execution savings.
	var colShare, extraShare money.Amount
	if p.Location == plan.Cache {
		nCols, nExtras := 0, 0
		for _, st := range p.Structures.Items() {
			if st.Kind == structure.KindColumn {
				nCols++
			} else {
				nExtras++
			}
		}
		base := scanExec
		if !haveScan {
			base = p.ExecPrice
		}
		if nCols > 0 {
			if saving := backendExec.Sub(base); saving.IsPositive() {
				colShare = saving.DivInt(int64(nCols))
			}
		}
		if nExtras > 0 && haveScan {
			if saving := base.Sub(p.ExecPrice); saving.IsPositive() {
				extraShare = saving.DivInt(int64(nExtras))
			}
		}
	}

	// Per-structure bookkeeping on the chosen plan. Chosen plans were
	// runnable at enumeration time, so the per-structure amortized
	// shares and arrears below are the components the optimizer priced
	// into p.AmortPrice and p.MaintPrice — except for a structure this
	// query's own failure sweep evicted after enumeration: its cache
	// entry is gone, the Get below misses, and its priced components go
	// unreimbursed (the provider absorbs them, in both modes the rent
	// risk of a failed structure).
	for _, st := range p.Structures.Items() {
		entry, ok := e.cfg.Cache.Get(st.ID)
		if !ok {
			continue
		}
		share := cache.AmortShare(entry, e.cfg.AmortN)
		if e.pool == nil {
			// Selfish: reimburse the structure's owner for the amortized
			// build share plus the maintenance arrears this use settles.
			recovery := share.Add(e.market.maintDueOf(entry))
			owner := e.ledgerFor(e.market.owner[st.ID])
			owner.credit = owner.credit.Add(recovery)
			owner.recovered = owner.recovered.Add(recovery)
			if recovery != 0 {
				e.emit(obs.Event{
					Type:      obs.EventRecover,
					Tenant:    owner.tenant,
					Structure: string(st.ID),
					Amount:    recovery,
					Reason:    "use reimbursed the owner's amortized share and arrears",
				})
			}
		}
		entry.AmortRemaining = entry.AmortRemaining.Sub(share)
		entry.UnpaidMaint = 0
		entry.MaintPaidUntil = e.cfg.Cache.Clock()
		earned := share
		if st.Kind == structure.KindColumn {
			earned = earned.Add(colShare)
		} else {
			earned = earned.Add(extraShare)
		}
		entry.EarnedValue = entry.EarnedValue.Add(earned)
		e.cfg.Cache.Touch(st.ID)
	}
}

// accrueRegret implements Eq. 1–2 over the rejected possible plans.
//
// The two equations cover the two directions a missed structure can hurt:
// a possible plan cheaper than the chosen one is a lost cost saving
// (Eq. 1, the case-A regret), and a possible, affordable plan that is more
// expensive — on a skyline, faster — is a lost service/profit opportunity
// (Eq. 2, the case-B regret). The union applies in every case; each term
// is only ever non-negative. The return is the total regret actually
// distributed (for decision tracing).
func (e *Economy) accrueRegret(q *workload.Query, plans []*plan.Plan, chosen *plan.Plan, led, acct *Ledger) money.Amount {
	var total money.Amount
	for _, p := range plans {
		if p.Runnable() || p == chosen {
			continue
		}
		var r money.Amount
		price := p.Price()
		if chosen != nil && price <= chosen.Price() {
			// Eq. 1: regret(PQj) = B_PQ(t_i) - B_PQ(t_j).
			r = chosen.Price().Sub(price)
		} else if budgetAt := q.Budget.At(p.Time()); budgetAt >= price {
			// Eq. 2: regret(PQj) = B_Q(t_j) - B_PQ(t_j).
			r = budgetAt.Sub(price)
		}
		if !r.IsPositive() {
			continue
		}
		total = total.Add(e.distribute(p, r, led, acct))
	}
	return total
}

// distribute splits a plan's regret uniformly across its missing structures
// ("the regret ... is distributed uniformly to every physical structure
// used by the plan"; resident structures need no investment so only the
// missing ones are tracked). The share lands in the deciding account's
// live map and is attributed to the generating tenant's cumulative
// counter. The return is the regret actually landed (skipped kinds
// accrue nothing).
func (e *Economy) distribute(p *plan.Plan, r money.Amount, led, acct *Ledger) money.Amount {
	n := int64(len(p.Missing))
	if n == 0 || !r.IsPositive() {
		return 0
	}
	// Exact uniform split by largest remainder: the first r mod n shares
	// carry one extra micro-dollar, so the shares sum to r exactly.
	// Round-half-away division here minted regret — r = 1µ$ across two
	// missing structures landed 1µ$ on each, doubling the regret a
	// sprayed micro-query feeds the Eq. 3 trigger.
	base := money.Amount(int64(r) / n)
	rem := int64(r) % n
	var landed money.Amount
	for i, id := range p.Missing {
		share := base
		if int64(i) < rem {
			share++
		}
		if !share.IsPositive() {
			continue
		}
		st, _ := p.Structures.Get(id)
		if st == nil || !e.kindAllowed(st.Kind) {
			continue
		}
		acct.add(id, share)
		landed = landed.Add(share)
		if acct != led {
			led.regretAccrued = led.regretAccrued.Add(share)
		}
	}
	return landed
}

// kindAllowed reports whether the scheme may invest in this kind.
func (e *Economy) kindAllowed(k structure.Kind) bool {
	if e.cfg.InvestKinds == nil {
		return true
	}
	return e.cfg.InvestKinds[k]
}

// invest scans the account's regret ledger and builds every structure
// whose accumulated regret satisfies Eq. 3: round(regret_S / (a·CR)) >= 1,
// i.e. regret has risen to the fraction a of the account. Investments
// deduct the build price from the account; construction completes after
// the build duration. The altruistic provider tests the communal pool on
// every query; the selfish provider tests only the arriving tenant's
// ledger, so one tenant's regret never spends another tenant's money.
// The second return counts candidates whose regret crossed the bar,
// whether or not the build went through (decision tracing).
func (e *Economy) invest(acct *Ledger) ([]structure.ID, int) {
	if !acct.credit.IsPositive() {
		return nil, 0
	}
	threshold := acct.credit.MulFloat(e.cfg.RegretFraction)
	if !threshold.IsPositive() {
		return nil, 0
	}
	// Fast path for the common query that triggers nothing: the sorted
	// pass below only ever acts on entries whose regret crosses the bar,
	// so if no entry does, the whole pass is a no-op — detect that with
	// one read-only sweep of the live map (iteration order is irrelevant
	// to a boolean) and skip the per-call sorted-ID allocation.
	crossed := false
	for id, entry := range acct.entries {
		if entry.regret.MulInt(2) >= e.market.investmentBar(threshold, id) {
			crossed = true
			break
		}
	}
	if !crossed {
		return nil, 0
	}
	var built []structure.ID
	considered := 0
	for _, id := range acct.sortedIDs() {
		entry := acct.entries[id]
		// Eq. 3 with round(): triggers at regret >= 0.5·a·CR. A history
		// of failed builds raises the bar exponentially.
		bar := e.market.investmentBar(threshold, id)
		if entry.regret.MulInt(2) < bar {
			continue
		}
		considered++
		ca := e.cfg.Cache
		if ca.Has(id) || ca.Building(id) {
			delete(acct.entries, id)
			continue
		}
		st, err := e.market.resolveStructure(id)
		if err != nil {
			delete(acct.entries, id)
			continue
		}
		if e.market.buildStructure(st, acct) {
			built = append(built, id)
			delete(acct.entries, id)
		}
	}
	return built, considered
}

// Stats is a snapshot of the economy's lifetime counters, aggregated
// across all ledgers.
type Stats struct {
	Credit        money.Amount
	Invested      money.Amount
	Recovered     money.Amount
	ProfitTotal   money.Amount
	InvestCount   int64
	FailureCount  int64
	DeclinedCount int64
	LedgerSize    int
}

// Stats returns the lifetime counters.
func (e *Economy) Stats() Stats {
	s := Stats{
		Credit:       e.Credit(),
		FailureCount: e.market.failureCount,
	}
	if e.pool != nil {
		s.Invested = e.pool.invested
		s.Recovered = e.pool.recovered
		s.InvestCount = e.pool.investCount
		s.LedgerSize = len(e.pool.entries)
	}
	for _, l := range e.tenants {
		s.ProfitTotal = s.ProfitTotal.Add(l.profitTotal)
		s.DeclinedCount += l.declinedCount
		if e.pool == nil {
			s.Invested = s.Invested.Add(l.invested)
			s.Recovered = s.Recovered.Add(l.recovered)
			s.InvestCount += l.investCount
			s.LedgerSize += len(l.entries)
		}
	}
	return s
}

// TenantStats returns per-tenant ledger snapshots sorted by tenant name,
// so repeated snapshots of the same state are deterministic.
func (e *Economy) TenantStats() []TenantStats {
	out := make([]TenantStats, 0, len(e.tenants))
	for _, l := range e.tenants {
		out = append(out, l.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
