// Package economy implements the paper's primary contribution: the
// self-tuned altruistic economy of §IV. It maintains the cloud account CR,
// classifies each query into case A/B/C against the user's budget function
// (§IV-C, Fig. 2), selects a plan under the scheme's criterion, credits
// profit, collects amortized build shares and maintenance arrears
// (Eq. 4–7, footnote 3), accumulates regret for rejected possible plans
// (Eq. 1–2), and invests in new structures when regret crosses the Eq. 3
// threshold. Structures whose unpaid maintenance exceeds their build cost
// fail and are evicted (footnote 3 "structure failure").
package economy

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Criterion selects which affordable runnable plan the cloud picks.
type Criterion int

// The selection criteria of §VII-A.
const (
	// SelectCheapest picks the least-cost plan (econ-col, econ-cheap).
	SelectCheapest Criterion = iota
	// SelectFastest picks the fastest affordable plan (econ-fast).
	SelectFastest
	// SelectMinProfit picks the plan minimizing B_Q(t)-price, the pure
	// case-B rule of §IV-C.
	SelectMinProfit
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case SelectCheapest:
		return "cheapest"
	case SelectFastest:
		return "fastest"
	case SelectMinProfit:
		return "min-profit"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Case is the §IV-C classification of a query against its budget.
type Case int

// The three cases of Fig. 2.
const (
	// CaseA: the budget is below every plan's price.
	CaseA Case = iota
	// CaseB: the budget covers every plan.
	CaseB
	// CaseC: the budget covers some plans.
	CaseC
)

// String implements fmt.Stringer.
func (c Case) String() string { return [...]string{"A", "B", "C"}[c] }

// Config parameterises the economy.
type Config struct {
	// Model prices maintenance and builds (the scheme's schedule).
	Model *cost.Model
	// Cache is the shared cache state.
	Cache *cache.Cache
	// Optimizer prices builds consistently with plan enumeration.
	Optimizer *optimizer.Optimizer
	// Criterion is the plan-selection rule.
	Criterion Criterion
	// RegretFraction is `a` of Eq. 3 (0 < a < 1).
	RegretFraction float64
	// AmortN is the amortization horizon n of Eq. 7.
	AmortN int64
	// InitialCredit seeds the cloud account so the first investments are
	// possible before profit accumulates.
	InitialCredit money.Amount
	// Conservative providers build only structures whose build price the
	// account covers ("builds structures only when her profit exceeds
	// the cost of building them", §VII-A).
	Conservative bool
	// UserAcceptsOverBudget models the §VII-A user who "accepts query
	// execution in the back-end" when no plan fits the budget: in case A
	// the user picks (and pays for) the cheapest runnable plan.
	UserAcceptsOverBudget bool
	// MaintFailureFactor triggers structure failure when rent outweighs
	// the structure's value (footnote 3). 0 disables failure eviction.
	MaintFailureFactor float64
	// FailureFloor is the minimum arrears before a *used* structure can
	// fail, protecting cheap structures from flapping at short
	// inter-query intervals.
	FailureFloor money.Amount
	// NeverUsedFloor is the minimum arrears before a structure that has
	// never been used can fail. It must be generous enough to cover the
	// window between a structure's completion and the completion of the
	// rest of its plan's structure set — partial sets are unusable, so
	// early members idle through no fault of their own.
	NeverUsedFloor money.Amount
	// InvestBackoff multiplies the Eq. 3 investment threshold for a
	// structure each time a previous build of it failed, damping
	// build-evict-rebuild cycles in rent-hostile regimes. Values <= 1
	// disable backoff.
	InvestBackoff float64
	// InvestKinds limits which structure kinds the economy may build;
	// nil means all kinds (econ-col passes only KindColumn).
	InvestKinds map[structure.Kind]bool
	// LedgerCap bounds the regret ledger; least-recently-touched
	// entries are garbage collected (§IV-B "garbage collected using LRU
	// policy"). 0 means a generous default.
	LedgerCap int
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Model == nil || c.Cache == nil || c.Optimizer == nil {
		return fmt.Errorf("economy: Model, Cache and Optimizer are required")
	}
	if c.RegretFraction <= 0 || c.RegretFraction >= 1 {
		return fmt.Errorf("economy: RegretFraction must be in (0,1), got %g", c.RegretFraction)
	}
	if c.AmortN <= 0 {
		return fmt.Errorf("economy: AmortN must be positive")
	}
	if c.MaintFailureFactor < 0 {
		return fmt.Errorf("economy: MaintFailureFactor must be >= 0")
	}
	if c.LedgerCap < 0 {
		return fmt.Errorf("economy: LedgerCap must be >= 0")
	}
	return nil
}

// regretEntry is one ledger row.
type regretEntry struct {
	regret  money.Amount
	touched int64 // ledger logical clock for LRU GC
}

// Decision reports how one query was handled.
type Decision struct {
	// Case classification (§IV-C).
	Case Case
	// Chosen is the executed plan; nil when the query was declined.
	Chosen *plan.Plan
	// Declined reports that no plan fit the budget and the user walked.
	Declined bool
	// Charged is what the user paid.
	Charged money.Amount
	// Profit is Charged minus the plan price (credited to CR).
	Profit money.Amount
	// Investments lists structures whose construction this query
	// triggered.
	Investments []structure.ID
	// Failures lists structures evicted for maintenance failure before
	// this query was planned.
	Failures []structure.ID
}

// Economy is the mutable account + regret state. Not safe for concurrent
// use; one simulation owns one economy.
type Economy struct {
	cfg    Config
	credit money.Amount

	ledger      map[structure.ID]*regretEntry
	ledgerClock int64
	// failCount records how many times a structure has failed, for
	// investment backoff.
	failCount map[structure.ID]int

	// buildUsage accumulates the physical resource usage of investments
	// since the last drain, so the simulator can account true build
	// expenditure separately from the scheme's deciding prices.
	buildUsage cost.Usage

	// stats
	invested      money.Amount
	recovered     money.Amount
	profitTotal   money.Amount
	investCount   int64
	failureCount  int64
	declinedCount int64
}

// DrainBuildUsage returns the physical usage of all investments since the
// previous drain and resets the accumulator.
func (e *Economy) DrainBuildUsage() cost.Usage {
	u := e.buildUsage
	e.buildUsage = cost.Usage{}
	return u
}

// New builds an economy.
func New(cfg Config) (*Economy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LedgerCap == 0 {
		cfg.LedgerCap = 4096
	}
	if cfg.NeverUsedFloor == 0 {
		cfg.NeverUsedFloor = money.FromDollars(1)
	}
	return &Economy{
		cfg:       cfg,
		credit:    cfg.InitialCredit,
		ledger:    make(map[structure.ID]*regretEntry),
		failCount: make(map[structure.ID]int),
	}, nil
}

// Credit returns the current account balance CR.
func (e *Economy) Credit() money.Amount { return e.credit }

// Regret returns the accumulated regret for a structure.
func (e *Economy) Regret(id structure.ID) money.Amount {
	if r, ok := e.ledger[id]; ok {
		return r.regret
	}
	return 0
}

// HandleQuery runs the full §IV-C pipeline for one query whose plan set has
// already been enumerated. The cache clock must already be at q.Arrival.
func (e *Economy) HandleQuery(q *workload.Query, plans []*plan.Plan) (Decision, error) {
	if q == nil || len(plans) == 0 {
		return Decision{}, fmt.Errorf("economy: query and plans are required")
	}
	var d Decision

	// Structure failure sweep (footnote 3) happens before planning so a
	// failed structure cannot be chosen.
	d.Failures = e.sweepFailures()

	exist, _ := plan.Partition(plans)
	if len(exist) == 0 {
		return Decision{}, fmt.Errorf("economy: no runnable plan (the backend plan must always exist)")
	}

	// Affordability and case classification over the full PQ.
	affordable := func(p *plan.Plan) bool {
		return q.Budget.At(p.Time()) >= p.Price()
	}
	nAfford := 0
	for _, p := range plans {
		if affordable(p) {
			nAfford++
		}
	}
	switch {
	case nAfford == 0:
		d.Case = CaseA
	case nAfford == len(plans):
		d.Case = CaseB
	default:
		d.Case = CaseC
	}

	// Plan selection.
	var affordableExist []*plan.Plan
	for _, p := range exist {
		if affordable(p) {
			affordableExist = append(affordableExist, p)
		}
	}
	switch {
	case len(affordableExist) > 0:
		d.Chosen = e.selectPlan(q, affordableExist)
	case e.cfg.UserAcceptsOverBudget:
		// §VII-A: the user accepts the cheapest runnable offer.
		d.Chosen = plan.Cheapest(exist)
	default:
		d.Declined = true
		e.declinedCount++
	}

	// Payment, profit and per-structure collections. Two anchor plans
	// measure the value of cache structures marginally: columns earn
	// the plain column scan's saving over the back-end plan; the index
	// and extra nodes earn only their improvement over the plain scan.
	var backendExec, scanExec money.Amount
	haveScan := false
	for _, p := range plans {
		if p.Location == plan.Backend {
			backendExec = p.ExecPrice
		}
		if p.Location == plan.Cache && !p.UsesIndex && p.Nodes == 1 {
			scanExec = p.ExecPrice
			haveScan = true
		}
	}
	if d.Chosen != nil {
		e.settle(q, d.Chosen, backendExec, scanExec, haveScan, &d)
	}

	// Regret accrual for rejected possible plans, then investment.
	e.accrueRegret(q, plans, d.Chosen)
	d.Investments = e.invest()
	return d, nil
}

// selectPlan applies the scheme's criterion to the affordable runnable set.
func (e *Economy) selectPlan(q *workload.Query, plans []*plan.Plan) *plan.Plan {
	switch e.cfg.Criterion {
	case SelectFastest:
		return plan.Fastest(plans)
	case SelectMinProfit:
		var best *plan.Plan
		var bestProfit money.Amount
		for _, p := range plans {
			profit := q.Budget.At(p.Time()).Sub(p.Price())
			if best == nil || profit < bestProfit ||
				(profit == bestProfit && p.Time() < best.Time()) {
				best, bestProfit = p, profit
			}
		}
		return best
	default:
		return plan.Cheapest(plans)
	}
}

// settle charges the user, credits profit and collects the amortized and
// maintenance components into the account.
//
// Value attribution is marginal: when a cache plan is chosen, its columns
// split the execution saving of the plain column scan over the back-end
// plan, while the index and extra CPU nodes split only the further saving
// the chosen plan achieves over the plain scan. This keeps base data
// "less eligible for eviction" than accelerators (§VII-B), because the
// columns carry the bulk of the measured value.
func (e *Economy) settle(q *workload.Query, p *plan.Plan, backendExec, scanExec money.Amount, haveScan bool, d *Decision) {
	price := p.Price()
	budgetAt := q.Budget.At(p.Time())
	charged := price
	if budgetAt > price {
		charged = budgetAt
	}
	d.Charged = charged
	d.Profit = charged.Sub(price)

	// Execution cost is paid through to the infrastructure; profit,
	// amortized shares and maintenance recovery stay in the account.
	e.credit = e.credit.Add(charged.Sub(p.ExecPrice))
	e.profitTotal = e.profitTotal.Add(d.Profit)
	e.recovered = e.recovered.Add(p.AmortPrice).Add(p.MaintPrice)

	// Marginal execution savings.
	var colShare, extraShare money.Amount
	if p.Location == plan.Cache {
		nCols, nExtras := 0, 0
		for _, st := range p.Structures.Items() {
			if st.Kind == structure.KindColumn {
				nCols++
			} else {
				nExtras++
			}
		}
		base := scanExec
		if !haveScan {
			base = p.ExecPrice
		}
		if nCols > 0 {
			if saving := backendExec.Sub(base); saving.IsPositive() {
				colShare = saving.DivInt(int64(nCols))
			}
		}
		if nExtras > 0 && haveScan {
			if saving := base.Sub(p.ExecPrice); saving.IsPositive() {
				extraShare = saving.DivInt(int64(nExtras))
			}
		}
	}

	// Per-structure bookkeeping on the chosen plan.
	for _, st := range p.Structures.Items() {
		entry, ok := e.cfg.Cache.Get(st.ID)
		if !ok {
			continue
		}
		share := cache.AmortShare(entry, e.cfg.AmortN)
		entry.AmortRemaining = entry.AmortRemaining.Sub(share)
		entry.UnpaidMaint = 0
		entry.MaintPaidUntil = e.cfg.Cache.Clock()
		earned := share
		if st.Kind == structure.KindColumn {
			earned = earned.Add(colShare)
		} else {
			earned = earned.Add(extraShare)
		}
		entry.EarnedValue = entry.EarnedValue.Add(earned)
		e.cfg.Cache.Touch(st.ID)
	}
}

// accrueRegret implements Eq. 1–2 over the rejected possible plans.
//
// The two equations cover the two directions a missed structure can hurt:
// a possible plan cheaper than the chosen one is a lost cost saving
// (Eq. 1, the case-A regret), and a possible, affordable plan that is more
// expensive — on a skyline, faster — is a lost service/profit opportunity
// (Eq. 2, the case-B regret). The union applies in every case; each term
// is only ever non-negative.
func (e *Economy) accrueRegret(q *workload.Query, plans []*plan.Plan, chosen *plan.Plan) {
	for _, p := range plans {
		if p.Runnable() || p == chosen {
			continue
		}
		var r money.Amount
		price := p.Price()
		if chosen != nil && price <= chosen.Price() {
			// Eq. 1: regret(PQj) = B_PQ(t_i) - B_PQ(t_j).
			r = chosen.Price().Sub(price)
		} else if budgetAt := q.Budget.At(p.Time()); budgetAt >= price {
			// Eq. 2: regret(PQj) = B_Q(t_j) - B_PQ(t_j).
			r = budgetAt.Sub(price)
		}
		if !r.IsPositive() {
			continue
		}
		e.distribute(p, r)
	}
}

// distribute splits a plan's regret uniformly across its missing structures
// ("the regret ... is distributed uniformly to every physical structure
// used by the plan"; resident structures need no investment so only the
// missing ones are tracked).
func (e *Economy) distribute(p *plan.Plan, r money.Amount) {
	if len(p.Missing) == 0 {
		return
	}
	share := r.DivInt(int64(len(p.Missing)))
	if !share.IsPositive() {
		return
	}
	for _, id := range p.Missing {
		st, _ := p.Structures.Get(id)
		if st == nil || !e.kindAllowed(st.Kind) {
			continue
		}
		e.ledgerClock++
		entry, ok := e.ledger[id]
		if !ok {
			entry = &regretEntry{}
			e.ledger[id] = entry
			e.gcLedger()
		}
		entry.regret = entry.regret.Add(share)
		entry.touched = e.ledgerClock
	}
}

// kindAllowed reports whether the scheme may invest in this kind.
func (e *Economy) kindAllowed(k structure.Kind) bool {
	if e.cfg.InvestKinds == nil {
		return true
	}
	return e.cfg.InvestKinds[k]
}

// gcLedger enforces the LRU cap on the regret ledger (§IV-B).
func (e *Economy) gcLedger() {
	if len(e.ledger) <= e.cfg.LedgerCap {
		return
	}
	// Evict the least recently touched entry.
	var victim structure.ID
	var oldest int64 = 1<<63 - 1
	for id, entry := range e.ledger {
		if entry.touched < oldest {
			oldest, victim = entry.touched, id
		}
	}
	delete(e.ledger, victim)
}

// invest scans the ledger and builds every structure whose accumulated
// regret satisfies Eq. 3: round(regret_S / (a·CR)) >= 1, i.e. regret has
// risen to the fraction a of the account. Investments deduct the build
// price from CR; construction completes after the build duration.
func (e *Economy) invest() []structure.ID {
	if !e.credit.IsPositive() {
		return nil
	}
	threshold := e.credit.MulFloat(e.cfg.RegretFraction)
	if !threshold.IsPositive() {
		return nil
	}
	// Deterministic scan order.
	ids := make([]structure.ID, 0, len(e.ledger))
	for id := range e.ledger {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var built []structure.ID
	for _, id := range ids {
		entry := e.ledger[id]
		// Eq. 3 with round(): triggers at regret >= 0.5·a·CR. A history
		// of failed builds raises the bar exponentially.
		bar := threshold
		if e.cfg.InvestBackoff > 1 {
			for i := 0; i < e.failCount[id] && i < 30; i++ {
				bar = bar.MulFloat(e.cfg.InvestBackoff)
			}
		}
		if entry.regret.MulInt(2) < bar {
			continue
		}
		ca := e.cfg.Cache
		if ca.Has(id) || ca.Building(id) {
			delete(e.ledger, id)
			continue
		}
		st, err := e.resolveStructure(id)
		if err != nil {
			delete(e.ledger, id)
			continue
		}
		if e.buildStructure(st) {
			built = append(built, id)
			delete(e.ledger, id)
		}
	}
	return built
}

// buildStructure starts construction of st (and, for indexes, of its
// missing columns first, per Eq. 14). It reports whether the investment was
// made; a conservative provider skips builds the account cannot cover.
func (e *Economy) buildStructure(st *structure.Structure) bool {
	ca := e.cfg.Cache
	price, out, err := e.cfg.Optimizer.BuildPrice(st, ca)
	if err != nil {
		return false
	}
	if e.cfg.Conservative && e.credit < price {
		return false
	}

	now := ca.Clock()
	readyAt := now + out.Time
	if st.Kind == structure.KindIndex {
		// Build missing columns first; the index build waits for them.
		var colsReady = now
		for _, ref := range st.Index.Refs() {
			colID := structure.ColumnID(ref)
			if ca.Has(colID) {
				continue
			}
			if ca.Building(colID) {
				continue
			}
			colSt, err := structure.ColumnStructure(e.cfg.Model.Catalog(), ref)
			if err != nil {
				return false
			}
			colPrice, colOut, err := e.cfg.Optimizer.BuildPrice(colSt, ca)
			if err != nil {
				return false
			}
			if err := ca.StartBuild(colSt, now+colOut.Time, colPrice); err != nil {
				return false
			}
			e.credit = e.credit.Sub(colPrice)
			e.invested = e.invested.Add(colPrice)
			e.buildUsage.Add(colOut.Usage)
			if now+colOut.Time > colsReady {
				colsReady = now + colOut.Time
			}
		}
		// The composite BuildPrice included the missing columns, but
		// those were just charged individually; re-price the sort-only
		// component by pretending all columns are cached.
		sortOnly, sortOut, err := e.indexSortOnly(st)
		if err != nil {
			return false
		}
		price, out = sortOnly, sortOut
		readyAt = colsReady + out.Time
	}

	if err := ca.StartBuild(st, readyAt, price); err != nil {
		return false
	}
	e.credit = e.credit.Sub(price)
	e.invested = e.invested.Add(price)
	e.buildUsage.Add(out.Usage)
	e.investCount++
	return true
}

// indexSortOnly prices just the in-cache sort of an index build.
func (e *Economy) indexSortOnly(st *structure.Structure) (money.Amount, cost.Outcome, error) {
	out, err := e.cfg.Model.BuildIndex(st.Index, func(catalog.ColumnRef) bool { return true })
	if err != nil {
		return 0, cost.Outcome{}, err
	}
	return cost.Price(e.cfg.Model.Schedule(), out.Usage), out, nil
}

// resolveStructure reconstructs the Structure behind a ledger ID by asking
// the catalog. Ledger entries always originate from plans, so the ID shape
// is trusted.
func (e *Economy) resolveStructure(id structure.ID) (*structure.Structure, error) {
	return ResolveID(e.cfg.Model.Catalog(), id)
}

// sweepFailures evicts structures whose maintenance rent no longer pays
// (footnote 3 "structure failure"). Two rules apply:
//
//   - Never-used structures fail when their accrued arrears exceed
//     MaintFailureFactor × build price: the investment clearly missed.
//   - Used structures fail when their rent *rate* exceeds
//     MaintFailureFactor × their lifetime value rate
//     (EarnedValue / time since build): at long inter-query intervals the
//     rent a structure accrues outweighs the value it produces, and a
//     rational provider evicts to save disk money (§VII-B, the 10 s and
//     60 s regimes). Rates — not single gaps — are compared so a busy
//     structure survives an occasional long idle stretch.
//
// The floors suppress evictions over negligible arrears so structures do
// not flap at short intervals, and give fresh builds time to see their
// first use (partial structure sets are unusable until complete).
func (e *Economy) sweepFailures() []structure.ID {
	if e.cfg.MaintFailureFactor <= 0 {
		return nil
	}
	ca := e.cfg.Cache
	var victims []structure.ID
	ca.ForEach(func(entry *cache.Entry) {
		due := cache.MaintDue(entry, func(en *cache.Entry) money.Amount {
			return e.cfg.Model.MaintCost(en.S.Kind == structure.KindCPUNode, en.S.Bytes, ca.Clock()-en.MaintPaidUntil)
		})
		evict := false
		if entry.Uses == 0 {
			evict = due > e.cfg.NeverUsedFloor &&
				due > entry.BuildPrice.MulFloat(e.cfg.MaintFailureFactor)
		} else if due > e.cfg.FailureFloor {
			// Grace window: rates need at least an hour of post-first-
			// use history to mean anything.
			window := ca.Clock() - entry.FirstUsed
			if window >= time.Hour {
				rentPerHour := e.cfg.Model.MaintCost(
					entry.S.Kind == structure.KindCPUNode, entry.S.Bytes, time.Hour).Dollars()
				valuePerHour := entry.EarnedValue.Dollars() / window.Hours()
				evict = rentPerHour > e.cfg.MaintFailureFactor*valuePerHour
			}
		}
		if evict {
			victims = append(victims, entry.S.ID)
		}
	})
	// Eviction decisions are independent per entry, so the victim SET is
	// deterministic even though map order is not; sort for stable output.
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, id := range victims {
		ca.Evict(id)
		e.failCount[id]++
		e.failureCount++
	}
	return victims
}

// Stats is a snapshot of the economy's lifetime counters.
type Stats struct {
	Credit        money.Amount
	Invested      money.Amount
	Recovered     money.Amount
	ProfitTotal   money.Amount
	InvestCount   int64
	FailureCount  int64
	DeclinedCount int64
	LedgerSize    int
}

// Stats returns the lifetime counters.
func (e *Economy) Stats() Stats {
	return Stats{
		Credit:        e.credit,
		Invested:      e.invested,
		Recovered:     e.recovered,
		ProfitTotal:   e.profitTotal,
		InvestCount:   e.investCount,
		FailureCount:  e.failureCount,
		DeclinedCount: e.declinedCount,
		LedgerSize:    len(e.ledger),
	}
}
