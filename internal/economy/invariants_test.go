package economy

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// invariantRig drives a random-but-seeded query mix through a full economy
// and checks the accounting identities after every step. This is the
// economy's conservation law: every dollar in the account is traceable to
// the initial seed, collected margins, and investments.
type invariantRig struct {
	t       *testing.T
	model   *cost.Model
	cache   *cache.Cache
	opt     *optimizer.Optimizer
	econ    *Economy
	gen     *workload.Generator
	initial money.Amount

	chargedTotal money.Amount
	execTotal    money.Amount
}

func newInvariantRig(t *testing.T, seed int64, criterion Criterion) *invariantRig {
	t.Helper()
	cat := catalog.TPCH(20)
	model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	ca := cache.New(0)
	opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 5000, AllowIndexes: true, AllowNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	initial := money.FromDollars(25)
	econ, err := New(Config{
		Model:                 model,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             criterion,
		RegretFraction:        0.0002,
		AmortN:                5000,
		InitialCredit:         initial,
		Conservative:          true,
		UserAcceptsOverBudget: true,
		MaintFailureFactor:    1.0,
		FailureFloor:          money.FromDollars(0.0001),
		NeverUsedFloor:        money.FromDollars(0.5),
		InvestBackoff:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{
		Catalog: cat,
		Seed:    seed,
		Arrival: workload.NewFixedArrival(2 * time.Second),
		Budgets: &workload.ScaledPolicy{
			Shape:        workload.ShapeStep,
			Base:         money.FromDollars(0.0001),
			PerGBScanned: money.FromDollars(0.005),
			PerGBResult:  money.FromDollars(0.2),
			TMax:         time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &invariantRig{
		t: t, model: model, cache: ca, opt: opt, econ: econ, gen: gen, initial: initial,
	}
}

// step handles one query and re-checks every invariant.
func (r *invariantRig) step() {
	t := r.t
	q := r.gen.Next()
	if q.Arrival > r.cache.Clock() {
		r.cache.Advance(q.Arrival)
	}
	r.cache.CompleteDue()
	plans, err := r.opt.Enumerate(q, r.cache)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.econ.HandleQuery(q, plans)
	if err != nil {
		t.Fatal(err)
	}

	if d.Chosen != nil {
		r.chargedTotal = r.chargedTotal.Add(d.Charged)
		r.execTotal = r.execTotal.Add(d.Chosen.ExecPrice)
		// A chosen plan must always be runnable and non-negative.
		if !d.Chosen.Runnable() {
			t.Fatal("chosen plan is not runnable")
		}
		if d.Charged.IsNegative() || d.Profit.IsNegative() {
			t.Fatalf("negative settlement: charged=%v profit=%v", d.Charged, d.Profit)
		}
		// The user never pays more than max(budget, price).
		price := d.Chosen.Price()
		budgetAt := q.Budget.At(d.Chosen.Time())
		max := price
		if budgetAt > max {
			max = budgetAt
		}
		if d.Charged > max {
			t.Fatalf("overcharge: %v > max(%v,%v)", d.Charged, price, budgetAt)
		}
	}

	// Conservation: credit == initial + Σ(charged − exec) − invested.
	s := r.econ.Stats()
	want := r.initial.Add(r.chargedTotal).Sub(r.execTotal).Sub(s.Invested)
	if got := r.econ.Credit(); got != want {
		t.Fatalf("credit %v != initial %v + charged %v - exec %v - invested %v (= %v)",
			got, r.initial, r.chargedTotal, r.execTotal, s.Invested, want)
	}

	// Cache residency accounting: resident bytes equals the sum of
	// entries' footprints.
	var sum int64
	r.cache.ForEach(func(e *cache.Entry) { sum += e.S.Bytes })
	if sum != r.cache.ResidentBytes() {
		t.Fatalf("resident bytes %d != entry sum %d", r.cache.ResidentBytes(), sum)
	}

	// Amortization never goes negative.
	r.cache.ForEach(func(e *cache.Entry) {
		if e.AmortRemaining.IsNegative() {
			t.Fatalf("%s over-amortized: %v", e.S.ID, e.AmortRemaining)
		}
		if e.EarnedValue.IsNegative() {
			t.Fatalf("%s negative earned value", e.S.ID)
		}
	})
}

func TestEconomyInvariantsCheapest(t *testing.T) {
	r := newInvariantRig(t, 21, SelectCheapest)
	for i := 0; i < 6000; i++ {
		r.step()
	}
	// The run must have done something interesting.
	s := r.econ.Stats()
	if s.InvestCount == 0 {
		t.Error("no investments in 6000 queries")
	}
}

func TestEconomyInvariantsFastest(t *testing.T) {
	r := newInvariantRig(t, 22, SelectFastest)
	for i := 0; i < 4000; i++ {
		r.step()
	}
}

func TestEconomyInvariantsMinProfit(t *testing.T) {
	r := newInvariantRig(t, 23, SelectMinProfit)
	for i := 0; i < 4000; i++ {
		r.step()
	}
}

// TestRegretLedgerNeverNegative fuzzes random budgets against one economy:
// regret entries must stay non-negative whatever the plan/budget geometry.
func TestRegretLedgerNeverNegative(t *testing.T) {
	r := newInvariantRig(t, 24, SelectCheapest)
	rng := rand.New(rand.NewSource(99))
	cat := r.model.Catalog()
	tpls := workload.PaperTemplates()
	for i := 0; i < 2000; i++ {
		tpl := tpls[rng.Intn(len(tpls))]
		if err := tpl.Validate(cat); err != nil {
			t.Fatal(err)
		}
		sel := tpl.SelMin + rng.Float64()*(tpl.SelMax-tpl.SelMin)
		price := money.FromDollars(rng.Float64() * 0.01)
		q := &workload.Query{
			ID: int64(i), Template: tpl, Selectivity: sel,
			Arrival: r.cache.Clock() + time.Second,
			Budget:  budget.NewStep(price, time.Duration(1+rng.Intn(60))*time.Second),
		}
		r.cache.Advance(q.Arrival)
		r.cache.CompleteDue()
		plans, err := r.opt.Enumerate(q, r.cache)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.econ.HandleQuery(q, plans); err != nil {
			t.Fatal(err)
		}
		// Spot-check ledger non-negativity on this query's structures.
		for _, p := range plans {
			for _, id := range p.Missing {
				if r.econ.Regret(id).IsNegative() {
					t.Fatalf("negative regret for %s", id)
				}
			}
		}
	}
}

// TestInvestmentsAlwaysAffordable pins the conservative-provider rule under
// stress: after any step, lifetime investments never exceed initial credit
// plus collected margins.
func TestInvestmentsAlwaysAffordable(t *testing.T) {
	r := newInvariantRig(t, 25, SelectCheapest)
	for i := 0; i < 5000; i++ {
		r.step()
		s := r.econ.Stats()
		ceiling := r.initial.Add(r.chargedTotal).Sub(r.execTotal)
		if s.Invested > ceiling {
			t.Fatalf("invested %v beyond affordable %v", s.Invested, ceiling)
		}
		if r.econ.Credit().IsNegative() {
			t.Fatalf("conservative provider went into debt: %v", r.econ.Credit())
		}
	}
}

// TestFailedStructuresLeaveNoResidue ensures eviction fully detaches a
// structure: not resident, not building, and re-investable later.
func TestFailedStructuresLeaveNoResidue(t *testing.T) {
	r := newInvariantRig(t, 26, SelectCheapest)
	seenFail := false
	for i := 0; i < 8000 && !seenFail; i++ {
		q := r.gen.Next()
		if q.Arrival > r.cache.Clock() {
			r.cache.Advance(q.Arrival)
		}
		r.cache.CompleteDue()
		plans, err := r.opt.Enumerate(q, r.cache)
		if err != nil {
			t.Fatal(err)
		}
		d, err := r.econ.HandleQuery(q, plans)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range d.Failures {
			seenFail = true
			if r.cache.Has(id) {
				t.Fatalf("failed structure %s still resident", id)
			}
			if _, ok := r.cache.Get(id); ok {
				t.Fatalf("failed structure %s still fetchable", id)
			}
		}
	}
	if !seenFail {
		t.Skip("no failure occurred in this configuration; covered elsewhere")
	}
}
